(* Figure 3's wireless setting with a failing source: midway through the
   query, the lineitem stream drops its connection for good.  With a
   (lagging) mirror declared, the engine times out, retries with
   exponential backoff, declares the connection dead, and fails over
   mid-pipeline — the replica re-streams an already-consumed prefix, which
   is skipped by position (every position below the consumption cursor
   already belongs to some phase's region), so the answer is exactly the
   fault-free one.  Without a mirror, the run completes anyway and reports
   how much of the input it covered.

     dune exec examples/unreliable_sources.exe *)

open Adp_datagen
open Adp_exec
open Adp_core
open Adp_query

let wireless =
  Source.Bursty { rate = 400_000.0; mean_burst = 1000; mean_gap = 0.004 }

(* Tight policy so the demo fails over quickly: 30 ms of silence is a
   timeout, three attempts 10 ms apart (doubling), then failover. *)
let retry =
  { Retry.default_policy with
    Retry.timeout_s = 0.03; max_retries = 3; backoff_initial_s = 0.01 }

let run label ~faults ~mirrors =
  let ds =
    Tpch.generate { Tpch.scale = 0.01; distribution = Tpch.Uniform; seed = 4 }
  in
  let q = Workload.query Workload.Q10A in
  let catalog = Workload.catalog ~with_cardinalities:true ds q in
  let sources () =
    let srcs = Workload.sources ~model:wireless ds q () in
    let lineitem =
      List.find (fun s -> Source.name s = "lineitem") srcs
    in
    List.iter (Source.inject lineitem) faults;
    List.iter (Source.add_mirror lineitem) mirrors;
    srcs
  in
  let o =
    Strategy.run ~label ~retry
      (Strategy.Corrective
         { Corrective.default_config with poll_interval = 2e4 })
      q catalog ~sources
  in
  Format.printf "%a@." Report.pp_run o.Strategy.report;
  o.Strategy.report

let () =
  print_endline
    "Q10A over a bursty wireless link; lineitem dies after 3000 tuples:\n";
  let clean = run "fault-free baseline" ~faults:[] ~mirrors:[] in
  let mirrored =
    run "disconnect + lagging mirror"
      ~faults:[ Source.Disconnect { after_tuples = 3000; rejoin_after_s = None } ]
      ~mirrors:[ Source.mirror ~lag_tuples:800 () ]
  in
  let lost =
    run "disconnect, no mirror"
      ~faults:[ Source.Disconnect { after_tuples = 3000; rejoin_after_s = None } ]
      ~mirrors:[]
  in
  Printf.printf
    "\nThe mirrored run recovers every row (%d = %d) despite the mirror\n\
     re-streaming an 800-tuple overlap, at the price of %.3fs of retry and\n\
     transfer delay.  Without a mirror the engine degrades gracefully:\n\
     %.1f%% of the input still produced %d of %d result rows.\n"
    mirrored.Report.result_card clean.Report.result_card
    (mirrored.Report.time_s -. clean.Report.time_s)
    (100.0 *. lost.Report.coverage)
    lost.Report.result_card clean.Report.result_card
