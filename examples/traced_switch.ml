(* Watching the re-optimizer change its mind.  A mis-costed Q3A starts on
   the costliest candidate plan (the plan a badly mis-estimating optimizer
   would pick).  With a trace attached, every poll records the cost-to-go,
   the re-optimized alternative, the stitch-up price, and the selectivity
   evidence the monitor collected — and the moment the evidence justifies
   it, a plan_switch event marks the Figure 2 correction.

   The recorded timeline is replayed to stdout, and the raw trace is also
   written to traced_switch.jsonl: `tukwila explain traced_switch.jsonl`
   renders the same replay, and a .json sink would load in Perfetto.

     dune exec examples/traced_switch.exe *)

open Adp_datagen
open Adp_optimizer
open Adp_core
open Adp_query
module Trace = Adp_obs.Trace

let () =
  let ds =
    Tpch.generate { Tpch.scale = 0.01; distribution = Tpch.Uniform; seed = 3 }
  in
  let q = Workload.query Workload.Q3A in
  let catalog = Workload.catalog ~with_cardinalities:true ds q in
  let sources () = Workload.sources ds q () in
  (* The mis-cost: start from the worst cross-product-free plan. *)
  let sels = Adp_stats.Selectivity.create () in
  let bad = (Optimizer.pessimal q catalog sels).Optimizer.spec in
  let cfg =
    { Corrective.default_config with
      poll_interval = 5e3; switch_threshold = 0.95; min_leaf_seen = 100 }
  in
  let trace = Trace.memory () in
  let o =
    Strategy.run ~preagg:Optimizer.Auto ~label:"traced" ~initial_plan:bad
      ~trace (Strategy.Corrective cfg) q catalog ~sources
  in
  Printf.printf
    "Q3A from the pessimal plan: %d phases, %d result rows, %.3f virtual s\n\n"
    o.Strategy.report.Report.phases o.Strategy.report.Report.result_card
    o.Strategy.report.Report.time_s;
  let events = Trace.events trace in
  Format.printf "%a" Trace.explain events;
  (* The same trace as a replayable artifact. *)
  let sink = Trace.file ~format:Trace.Jsonl "traced_switch.jsonl" in
  List.iter (fun (at, ev) -> Trace.emit sink ~at ev) events;
  Trace.close sink;
  print_newline ();
  print_endline
    "wrote traced_switch.jsonl — replay it with: tukwila explain \
     traced_switch.jsonl";
  (* The whole point of the trace: the switch is on the record. *)
  assert (
    List.exists (function _, Trace.Plan_switch _ -> true | _ -> false) events)
