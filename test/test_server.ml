(* Multi-query server: the script parser's grammar and diagnostics, the
   adaptive poll controller's qcheck properties, worker kill-and-resume
   at the server level (every crash point yields the uninterrupted run's
   result multiset), admission control / cancel / drain / retry budgets,
   cross-query warm starts through the shared selectivity store, the
   server-level zero-perturbation contract, and the report JSON
   round-trip. *)

open Adp_relation
open Adp_datagen
open Helpers
module Corrective = Adp_core.Corrective
module Crash = Adp_recovery.Crash
module Diagnostic = Adp_analysis.Diagnostic
module Trace = Adp_obs.Trace
module Metrics = Adp_obs.Metrics
module Json = Adp_obs.Json
module Poll = Adp_server.Poll_controller
module Script = Adp_server.Script
module Server = Adp_server.Server

(* ---------------- script parser ---------------- *)

let test_script_grammar () =
  let text =
    "# a comment line\n\
     at 0.5 submit q1 Q3\n\
     \n\
     at 0 submit q2 SELECT * FROM x # trailing comment\n\
     at 1.25 kill q1 tuples:400\n\
     at 2 kill q2 phase:1\n\
     at 2 kill q2 stitchup\n\
     at 3 cancel q2\n\
     at 9.5 drain\n"
  in
  match Script.parse text with
  | Error ds -> Alcotest.failf "parse failed: %s" (Diagnostic.to_string ds)
  | Ok s ->
    Alcotest.(check int) "directive count" 7 (List.length s);
    (* Sorted by time, stable within equal times. *)
    Alcotest.(check bool) "sorted by time" true
      (List.for_all2
         (fun (a, _) (b, _) -> a <= b)
         (List.filteri (fun i _ -> i < List.length s - 1) s)
         (List.tl s));
    (match s with
     | (0.0, Script.Submit { qid = "q2"; spec; _ }) :: _ ->
       Alcotest.(check string) "spec is the rest of the line, comment cut"
         "SELECT * FROM x" spec
     | _ -> Alcotest.fail "q2 should sort first");
    (match List.filter (function _, Script.Kill _ -> true | _ -> false) s with
     | [ (_, Script.Kill { point = Crash.After_tuples 400; _ });
         (_, Script.Kill { point = Crash.At_phase_boundary 1; _ });
         (_, Script.Kill { point = Crash.During_stitchup; _ }) ] -> ()
     | _ -> Alcotest.fail "kill points did not parse")

let code_of (d : Diagnostic.t) = d.Diagnostic.code

let test_script_diagnostics () =
  let expect_codes text codes =
    match Script.parse text with
    | Ok _ -> Alcotest.failf "accepted: %s" text
    | Error ds ->
      Alcotest.(check (list string)) text codes (List.map code_of ds)
  in
  expect_codes "submit q1 Q3" [ "script-syntax" ];
  expect_codes "at x submit q1 Q3" [ "script-bad-time" ];
  expect_codes "at -1 submit q1 Q3" [ "script-bad-time" ];
  expect_codes "at 0 submit q%1 Q3" [ "script-bad-qid" ];
  expect_codes "at 0 submit q1 Q3\nat 1 submit q1 Q3"
    [ "script-duplicate-qid" ];
  expect_codes "at 0 submit q1 Q3\nat 1 kill q1 tuples:0"
    [ "script-bad-point" ];
  expect_codes "at 0 submit q1 Q3\nat 1 kill q2 tuples:5"
    [ "script-unknown-qid" ];
  expect_codes "at 0 frobnicate q1" [ "script-syntax" ];
  expect_codes "at 0 submit q1" [ "script-syntax" ];
  (* Every problem is reported at once, in line order. *)
  expect_codes "at 0 submit q!1 Q3\nat y drain\nat 2 cancel ghost"
    [ "script-bad-qid"; "script-bad-time"; "script-unknown-qid" ];
  match Script.parse_file "/nonexistent/workload.txt" with
  | Error [ d ] -> Alcotest.(check string) "io code" "script-io-error" (code_of d)
  | _ -> Alcotest.fail "missing file accepted"

(* ---------------- poll controller properties ---------------- *)

let poll_cfg =
  { Poll.min_interval = 1e3; max_interval = 1e5; backoff = 1.7;
    speedup = 0.6; window = 5 }

let gen_founds = QCheck2.Gen.(list_size (int_range 1 60) (int_bound 3))

let prop_interval_in_bounds =
  QCheck2.Test.make ~name:"poll interval stays within [min, max] (qcheck)"
    ~count:300 gen_founds (fun founds ->
      let t = Poll.create poll_cfg in
      List.for_all
        (fun found ->
          let i = Poll.record t ~found in
          i >= poll_cfg.Poll.min_interval && i <= poll_cfg.Poll.max_interval)
        founds)

let prop_empty_polls_monotone =
  (* Once polls come up empty, the interval never shrinks again: each
     empty poll multiplies by backoff >= 1, capped at max. *)
  QCheck2.Test.make ~name:"empty polls back off monotonically (qcheck)"
    ~count:300 gen_founds (fun founds ->
      let t = Poll.create poll_cfg in
      List.iter (fun found -> ignore (Poll.record t ~found)) founds;
      let rec drain last n ok =
        if n = 0 then ok
        else
          let i = Poll.record t ~found:0 in
          drain i (n - 1) (ok && i >= last)
      in
      drain (Poll.interval t) 20 true)

let prop_speedup_bounded_by_window =
  (* A busy poll shrinks by at most the full speedup factor — the
     sliding window damps it to speedup^(busy/window) — and never
     stretches. *)
  QCheck2.Test.make ~name:"busy speedup bounded by the window (qcheck)"
    ~count:300 gen_founds (fun founds ->
      let t = Poll.create poll_cfg in
      List.for_all
        (fun found ->
          let before = Poll.interval t in
          let after = Poll.record t ~found:(found + 1) in
          after <= before +. 1e-9
          && after >= Float.max poll_cfg.Poll.min_interval
                        (before *. poll_cfg.Poll.speedup)
                      -. 1e-9)
        founds)

let prop_deterministic =
  QCheck2.Test.make ~name:"poll controller is deterministic (qcheck)"
    ~count:300 gen_founds (fun founds ->
      let play () =
        let t = Poll.create poll_cfg in
        List.map (fun found -> Poll.record t ~found) founds
      in
      play () = play ())

let test_poll_validation () =
  let bad cfg codes =
    Alcotest.(check (list string)) "codes" codes
      (List.map code_of (Poll.validate cfg))
  in
  bad { poll_cfg with Poll.min_interval = 0.0 } [ "poll-bad-min" ];
  bad { poll_cfg with Poll.max_interval = 1.0 } [ "poll-bad-max" ];
  bad { poll_cfg with Poll.backoff = 0.5 } [ "poll-bad-backoff" ];
  bad { poll_cfg with Poll.speedup = 0.0 } [ "poll-bad-speedup" ];
  bad { poll_cfg with Poll.speedup = 1.5 } [ "poll-bad-speedup" ];
  bad { poll_cfg with Poll.window = 0 } [ "poll-bad-window" ];
  match Poll.create { poll_cfg with Poll.window = 0 } with
  | exception Diagnostic.Failed _ -> ()
  | _ -> Alcotest.fail "bad knobs accepted"

(* ---------------- server fixtures ---------------- *)

let dataset =
  Tpch.generate { Tpch.scale = 0.004; distribution = Tpch.Uniform; seed = 42 }

let resolver = Server.tpch_resolver dataset

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "server-test-ckpt-%d" !n in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_server ?(config = fun c -> c) script k =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let cfg = config (Server.default_config ~checkpoint_dir:dir) in
      let script =
        match Script.parse script with
        | Ok s -> s
        | Error ds -> Alcotest.failf "script: %s" (Diagnostic.to_string ds)
      in
      k (Server.run cfg resolver script))

let outcome_of report qid =
  match
    List.find_opt (fun q -> q.Server.qr_id = qid) report.Server.r_queries
  with
  | Some q -> q.Server.qr_outcome
  | None -> Alcotest.failf "no query %s in the report" qid

let rows_of report qid =
  match outcome_of report qid with
  | Server.Done { result; _ } -> Relation.to_list result
  | _ -> Alcotest.failf "query %s did not finish" qid

(* The uninterrupted single-query oracle: the same corrective template a
   worker uses, no checkpointing, no kill, empty statistics seed. *)
let oracle spec =
  let r = resolver spec in
  let cfg =
    (Server.default_config ~checkpoint_dir:"unused").Server.corrective
  in
  let result, _ =
    Corrective.run ~config:cfg r.Server.r_query r.Server.r_catalog
      (r.Server.r_sources ())
  in
  Relation.to_list result

(* ---------------- lifecycle & supervision ---------------- *)

let test_basic_workload () =
  with_server "at 0 submit a Q3\nat 0.2 submit b Q10" (fun r ->
      Alcotest.(check int) "both done" 2 r.Server.r_done;
      Alcotest.(check int) "no deaths" 0 r.Server.r_workers_died;
      Alcotest.(check int) "initial pool only" 2 r.Server.r_workers_spawned;
      check_bag "a matches the single-query run" (oracle "Q3") (rows_of r "a");
      check_bag "b matches the single-query run" (oracle "Q10")
        (rows_of r "b");
      (* Quiescence: the server clock stops once the last query is done. *)
      Alcotest.(check bool) "finished after the last event" true
        (r.Server.r_finished_s > 0.2))

let test_bad_query_fails_structurally () =
  with_server "at 0 submit bad SELECT nonsense\nat 0 submit ok Q3" (fun r ->
      Alcotest.(check int) "one done" 1 r.Server.r_done;
      Alcotest.(check int) "one failed" 1 r.Server.r_failed;
      match outcome_of r "bad" with
      | Server.Failed msg ->
        Alcotest.(check bool) "failure names the resolver" true
          (String.length msg > 0)
      | _ -> Alcotest.fail "bad query should fail")

(* Every crash point class: the killed worker's query is reclaimed,
   resumed from its last checkpoint, and the final multiset is exactly
   the uninterrupted run's.  A non-aggregating query keeps the
   comparison bit-exact (aggregation sums floats, whose rounding
   legitimately depends on phase structure); a single-query script keeps
   the shared store empty. *)
let spj_spec =
  "SELECT orders.o_orderkey, lineitem.l_quantity FROM orders, lineitem \
   WHERE orders.o_orderkey = lineitem.l_orderkey AND orders.o_orderdate < \
   DATE '1995-03-15'"

let test_kill_points_resume_exactly () =
  let uninterrupted = oracle spj_spec in
  List.iter
    (fun (label, point) ->
      with_server
        ~config:(fun c -> { c with Server.checkpoint_every = 500 })
        (Printf.sprintf "at 0 submit q %s\nat 0.001 kill q %s" spj_spec
           point)
        (fun r ->
          Alcotest.(check int) (label ^ ": one reclaim") 1 r.Server.r_reclaims;
          Alcotest.(check int)
            (label ^ ": replacement worker spawned")
            3 r.Server.r_workers_spawned;
          (match
             List.find (fun q -> q.Server.qr_id = "q") r.Server.r_queries
           with
           | q ->
             Alcotest.(check int) (label ^ ": two attempts") 2
               q.Server.qr_attempts);
          check_bag
            (label ^ ": multiset equals the uninterrupted run")
            uninterrupted (rows_of r "q")))
    [ "early kill, before any checkpoint", "tuples:150";
      "mid-run kill, resumes a checkpoint", "tuples:2000";
      "kill at a phase boundary", "phase:0";
      "kill during stitch-up", "stitchup" ]

(* An aggregating query killed after a checkpoint: the resume is a
   forced phase switch, so revenue sums recombine across phases — the
   multiset is the uninterrupted run's up to float summation order. *)
let test_kill_aggregate_resumes () =
  with_server
    ~config:(fun c -> { c with Server.checkpoint_every = 300 })
    "at 0 submit q Q10\nat 0.001 kill q tuples:900"
    (fun r ->
      let q = List.find (fun q -> q.Server.qr_id = "q") r.Server.r_queries in
      Alcotest.(check int) "two attempts" 2 q.Server.qr_attempts;
      (match outcome_of r "q" with
       | Server.Done { stats; _ } ->
         Alcotest.(check bool) "the resume restored phases" true
           (stats.Corrective.resumed_phases > 0)
       | _ -> Alcotest.fail "q should finish");
      Alcotest.(check bool) "same multiset as the uninterrupted run" true
        (approx_same_bag (oracle "Q10") (rows_of r "q")))

let test_retry_budget_exhausted () =
  (* Two kills armed while queued, a budget of one reclaim: the second
     death exhausts the budget and the query fails with a structured
     reason. *)
  with_server
    ~config:(fun c -> { c with Server.max_retries = 1 })
    "at 0 submit q Q10\n\
     at 0 kill q tuples:200\n\
     at 0 kill q tuples:200"
    (fun r ->
      Alcotest.(check int) "two reclaims" 2 r.Server.r_reclaims;
      Alcotest.(check int) "failed" 1 r.Server.r_failed;
      match outcome_of r "q" with
      | Server.Failed msg ->
        Alcotest.(check bool) "reason mentions the budget" true
          (let needle = "retry budget" in
           let rec go i =
             i + String.length needle <= String.length msg
             && (String.sub msg i (String.length needle) = needle
                 || go (i + 1))
           in
           go 0)
      | _ -> Alcotest.fail "should have failed")

let test_retry_backoff_delays_requeue () =
  (* The reclaimed query may not restart before now + retry_backoff. *)
  with_server
    ~config:(fun c -> { c with Server.retry_backoff = 5e5 })
    "at 0 submit q Q10\nat 0 kill q tuples:200"
    (fun r ->
      Alcotest.(check int) "done after one reclaim" 1 r.Server.r_done;
      (* death detected at ~0.2s, backoff 0.5s: nothing can finish
         before 0.7s of server time. *)
      Alcotest.(check bool) "finish waited for the backoff" true
        (r.Server.r_finished_s > 0.7))

(* ---------------- admission, cancel, drain ---------------- *)

let test_admission_queue_full () =
  with_server
    ~config:(fun c -> { c with Server.workers = 1; queue_capacity = 2 })
    "at 0 submit a Q3\n\
     at 0 submit b Q3\n\
     at 0 submit c Q3\n\
     at 0 submit d Q3"
    (fun r ->
      (* All four submissions land before the first poll drains any of
         them: a and b fill the queue, c and d shed load. *)
      Alcotest.(check int) "rejected count" 2 r.Server.r_rejected;
      Alcotest.(check int) "accepted ones finish" 2 r.Server.r_done;
      List.iter
        (fun qid ->
          match outcome_of r qid with
          | Server.Rejected reason ->
            Alcotest.(check string) "structured reason" "queue-full" reason
          | _ -> Alcotest.failf "%s should be rejected" qid)
        [ "c"; "d" ])

let test_cancel_and_drain () =
  with_server
    ~config:(fun c -> { c with Server.workers = 1 })
    "at 0 submit a Q10\n\
     at 0 submit b Q3\n\
     at 0.001 cancel b\n\
     at 0.002 drain\n\
     at 0.003 submit late Q3"
    (fun r ->
      Alcotest.(check int) "a done" 1 r.Server.r_done;
      Alcotest.(check int) "b cancelled" 1 r.Server.r_cancelled;
      Alcotest.(check int) "late rejected" 1 r.Server.r_rejected;
      (match outcome_of r "late" with
       | Server.Rejected reason ->
         Alcotest.(check string) "drain reason" "draining" reason
       | _ -> Alcotest.fail "late should be rejected");
      (* Cancelling a running or finished query is a no-op, not an
         error: 'a' still completed. *)
      check_bag "a unaffected" (oracle "Q10") (rows_of r "a"))

(* ---------------- dispatcher adaptation ---------------- *)

let test_poll_interval_adapts () =
  let poll =
    { Poll.min_interval = 1e3; max_interval = 2e4; backoff = 1.5;
      speedup = 0.7; window = 8 }
  in
  with_server
    ~config:(fun c -> { c with Server.workers = 1; poll })
    "at 0 submit a Q3\n\
     at 0 submit b Q3A\n\
     at 0 submit c Q10\n\
     at 0 submit d Q10A\n\
     at 0 submit e Q5\n\
     at 0 submit f Q3\n\
     at 2 submit g Q3"
    (fun r ->
      Alcotest.(check int) "all done" 7 r.Server.r_done;
      (* Burst: six queries through one worker drive the interval to the
         floor.  Idle gap before t=2: it stretches back to the ceiling. *)
      Alcotest.(check (float 1e-12)) "hit the configured floor"
        (poll.Poll.min_interval /. 1e6)
        r.Server.r_min_interval_s;
      Alcotest.(check (float 1e-12)) "recovered to the configured ceiling"
        (poll.Poll.max_interval /. 1e6)
        r.Server.r_max_interval_s;
      Alcotest.(check bool) "polls were mostly busy then idle" true
        (r.Server.r_busy_polls > 0
         && r.Server.r_polls > r.Server.r_busy_polls))

(* ---------------- cross-query adaptation ---------------- *)

let test_shared_selectivities_warm_start () =
  with_server "at 0 submit a Q5\nat 2 submit b Q5" (fun r ->
      Alcotest.(check int) "both done" 2 r.Server.r_done;
      let a = List.find (fun q -> q.Server.qr_id = "a") r.Server.r_queries in
      let b = List.find (fun q -> q.Server.qr_id = "b") r.Server.r_queries in
      Alcotest.(check int) "first query starts cold" 0
        a.Server.qr_warm_signatures;
      Alcotest.(check bool) "second query inherits signatures" true
        (b.Server.qr_warm_signatures > 0);
      Alcotest.(check bool) "inherited evidence changed the initial plan"
        true b.Server.qr_warm_plan_changed;
      Alcotest.(check bool) "shared store retained the evidence" true
        (r.Server.r_shared_signatures > 0);
      (* The warm plan is a different execution, but the answer is the
         same multiset (floats aggregated in a different order). *)
      Alcotest.(check bool) "warm answer matches the cold one" true
        (approx_same_bag (rows_of r "a") (rows_of r "b")))

let test_publication_is_causal () =
  (* Two queries started in the same poll round: neither can see the
     other's statistics, even though worker execution is eager. *)
  with_server "at 0 submit a Q5\nat 0 submit b Q5" (fun r ->
      let b = List.find (fun q -> q.Server.qr_id = "b") r.Server.r_queries in
      Alcotest.(check int) "concurrent query starts cold" 0
        b.Server.qr_warm_signatures;
      check_bag "identical runs, identical bits" (rows_of r "a")
        (rows_of r "b"))

(* ---------------- the acceptance workload ---------------- *)

(* Eight concurrent queries, two deterministic kills; every query's
   multiset must equal its uninterrupted single-query run (bit-identical
   where the initial plan cannot drift, rounding-tolerant where a warm
   start legitimately reorders float aggregation). *)
let acceptance_script =
  "at 0 submit q1 Q3\n\
   at 0 submit q2 Q10\n\
   at 0 submit q3 Q3A\n\
   at 0 submit q4 Q10A\n\
   at 0.001 kill q2 tuples:400\n\
   at 0.05 submit q5 Q5\n\
   at 0.05 submit q6 Q3\n\
   at 0.05 kill q6 tuples:700\n\
   at 0.3 submit q7 Q10\n\
   at 0.3 submit q8 Q3A"

let test_acceptance_workload () =
  with_server
    ~config:(fun c ->
      { c with Server.workers = 3; checkpoint_every = 300 })
    acceptance_script
    (fun r ->
      Alcotest.(check int) "eight queries" 8
        (List.length r.Server.r_queries);
      Alcotest.(check int) "all done" 8 r.Server.r_done;
      Alcotest.(check int) "two reclaims" 2 r.Server.r_reclaims;
      Alcotest.(check int) "two worker deaths" 2 r.Server.r_workers_died;
      Alcotest.(check int) "replacements spawned" 5
        r.Server.r_workers_spawned;
      (* Queries that ran cold and uninterrupted execute the exact same
         plan as the oracle: bit-identical. *)
      List.iter
        (fun (qid, spec) ->
          check_bag
            (qid ^ " bit-identical to its uninterrupted run")
            (oracle spec) (rows_of r qid))
        [ "q1", "Q3"; "q3", "Q3A" ];
      (* Killed queries resume as a forced phase switch, and warm-started
         queries may pick a different (better) initial plan; either way
         the answer is the same multiset, with float aggregates summed in
         a different order (the SPJ kill matrix above covers strict
         bit-identity). *)
      List.iter
        (fun (qid, spec) ->
          Alcotest.(check bool)
            (qid ^ " same multiset as its uninterrupted run")
            true
            (approx_same_bag (oracle spec) (rows_of r qid)))
        [ "q2", "Q10"; "q4", "Q10A"; "q5", "Q5"; "q6", "Q3"; "q7", "Q10";
          "q8", "Q3A" ];
      (* At least one query planned with inherited selectivities. *)
      Alcotest.(check bool) "some query warm-started" true
        (List.exists
           (fun q -> q.Server.qr_warm_signatures > 0)
           r.Server.r_queries))

(* ---------------- zero perturbation ---------------- *)

let test_serve_zero_perturbation () =
  let run ~observed =
    let dir = fresh_dir () in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
      (fun () ->
        let trace = if observed then Trace.memory () else Trace.null in
        let metrics = if observed then Some (Metrics.create ()) else None in
        let cfg =
          { (Server.default_config ~checkpoint_dir:dir) with
            Server.checkpoint_every = 300; trace; metrics }
        in
        let script =
          match Script.parse acceptance_script with
          | Ok s -> s
          | Error ds -> Alcotest.failf "script: %s" (Diagnostic.to_string ds)
        in
        let r = Server.run cfg resolver script in
        (r, Trace.events trace))
  in
  let plain, _ = run ~observed:false in
  let observed, events = run ~observed:true in
  (* The JSON-safe projection covers every reported number: virtual
     times, attempt counts, poll statistics, warm-start evidence. *)
  Alcotest.(check bool) "observed view = unobserved view" true
    (Server.view plain = Server.view observed);
  List.iter
    (fun q ->
      check_bag
        (q.Server.qr_id ^ ": observed result = unobserved result")
        (rows_of plain q.Server.qr_id)
        (rows_of observed q.Server.qr_id))
    (List.filter
       (fun q ->
         match q.Server.qr_outcome with Server.Done _ -> true | _ -> false)
       plain.Server.r_queries);
  (* The trace is substantive: server supervision events plus the
     workers' own adaptive records re-stamped onto the server clock. *)
  let has pred msg =
    Alcotest.(check bool) msg true
      (List.exists (fun (_, ev) -> pred ev) events)
  in
  has (function Trace.Worker_spawned _ -> true | _ -> false)
    "worker spawns traced";
  has (function Trace.Worker_died _ -> true | _ -> false)
    "worker deaths traced";
  has (function Trace.Worker_reclaimed _ -> true | _ -> false)
    "reclaims traced";
  has (function Trace.Poll_interval_changed _ -> true | _ -> false)
    "poll-interval moves traced";
  has (function Trace.Admission _ -> true | _ -> false)
    "admissions traced";
  has (function Trace.Phase_opened _ -> true | _ -> false)
    "inner phase events re-stamped";
  has (function Trace.Checkpoint_resumed _ -> true | _ -> false)
    "checkpoint resume re-stamped";
  (* Re-stamped inner timestamps stay within the serve's lifetime. *)
  Alcotest.(check bool) "timestamps within the serve" true
    (List.for_all
       (fun (ts, _) ->
         ts >= 0.0 && ts <= plain.Server.r_finished_s *. 1e6 +. 1.0)
       events)

(* ---------------- report JSON round-trip ---------------- *)

let test_view_json_roundtrip () =
  with_server
    ~config:(fun c -> { c with Server.checkpoint_every = 300 })
    (acceptance_script ^ "\nat 5 drain\nat 6 submit late Q3")
    (fun r ->
      let v = Server.view r in
      match Json.parse (Json.to_string (Server.view_to_json v)) with
      | Error e -> Alcotest.fail e
      | Ok j -> (
        match Server.view_of_json j with
        | Ok v' ->
          Alcotest.(check bool) "view roundtrips through JSON" true (v = v')
        | Error e -> Alcotest.fail e))

let test_config_validation () =
  let base = Server.default_config ~checkpoint_dir:"x" in
  let codes cfg = List.map code_of (Server.validate cfg) in
  Alcotest.(check (list string)) "default valid" [] (codes base);
  Alcotest.(check (list string)) "bad workers" [ "server-bad-workers" ]
    (codes { base with Server.workers = 0 });
  Alcotest.(check (list string)) "bad capacity" [ "server-bad-capacity" ]
    (codes { base with Server.queue_capacity = 0 });
  Alcotest.(check (list string)) "bad heartbeat" [ "server-bad-heartbeat" ]
    (codes { base with Server.heartbeat_timeout = 1.0 });
  Alcotest.(check (list string)) "bad retries" [ "server-bad-retries" ]
    (codes { base with Server.max_retries = -1 });
  Alcotest.(check bool) "poll knobs included" true
    (List.mem "poll-bad-backoff"
       (codes
          { base with
            Server.poll = { base.Server.poll with Poll.backoff = 0.9 } }));
  match
    Server.run { base with Server.workers = 0 } resolver []
  with
  | exception Diagnostic.Failed _ -> ()
  | _ -> Alcotest.fail "invalid config accepted"

let suite =
  [ Alcotest.test_case "script grammar" `Quick test_script_grammar;
    Alcotest.test_case "script diagnostics" `Quick test_script_diagnostics;
    qtest prop_interval_in_bounds;
    qtest prop_empty_polls_monotone;
    qtest prop_speedup_bounded_by_window;
    qtest prop_deterministic;
    Alcotest.test_case "poll validation" `Quick test_poll_validation;
    Alcotest.test_case "basic workload" `Quick test_basic_workload;
    Alcotest.test_case "bad query fails structurally" `Quick
      test_bad_query_fails_structurally;
    Alcotest.test_case "kill points resume exactly" `Quick
      test_kill_points_resume_exactly;
    Alcotest.test_case "aggregate kill resumes" `Quick
      test_kill_aggregate_resumes;
    Alcotest.test_case "retry budget exhausted" `Quick
      test_retry_budget_exhausted;
    Alcotest.test_case "retry backoff delays requeue" `Quick
      test_retry_backoff_delays_requeue;
    Alcotest.test_case "admission queue-full" `Quick
      test_admission_queue_full;
    Alcotest.test_case "cancel and drain" `Quick test_cancel_and_drain;
    Alcotest.test_case "poll interval adapts" `Quick
      test_poll_interval_adapts;
    Alcotest.test_case "shared selectivities warm start" `Quick
      test_shared_selectivities_warm_start;
    Alcotest.test_case "publication is causal" `Quick
      test_publication_is_causal;
    Alcotest.test_case "acceptance workload" `Quick
      test_acceptance_workload;
    Alcotest.test_case "serve zero perturbation" `Quick
      test_serve_zero_perturbation;
    Alcotest.test_case "view json roundtrip" `Quick
      test_view_json_roundtrip;
    Alcotest.test_case "config validation" `Quick test_config_validation ]
