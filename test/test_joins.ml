(* Symmetric joins (hash and merge modes) and the complementary join pair. *)

open Adp_exec
open Helpers

let lsch = keyed_schema "l"
let rsch = keyed_schema "r"

let mk_sym ctx mode =
  Sym_join.create ctx ~mode ~left_schema:lsch ~right_schema:rsch
    ~left_key:[ "l.k" ] ~right_key:[ "r.k" ]

let sorted_tuples keys = List.map (fun k -> [| vi k; vi (k * 10) |]) keys

let test_hash_mode () =
  let ctx = Ctx.create () in
  let j = mk_sym ctx `Hash in
  let l = sorted_tuples [ 1; 2; 2 ] and r = sorted_tuples [ 2; 3 ] in
  let outs =
    List.concat_map (Sym_join.insert j Sym_join.L) l
    @ List.concat_map (Sym_join.insert j Sym_join.R) r
  in
  check_bag "hash join" outs (oracle_join l r ~on:[ 0, 0 ]);
  Alcotest.(check int) "out_count" 2 (Sym_join.out_count j);
  Alcotest.(check bool) "accepts anything" true
    (Sym_join.accepts j Sym_join.L [| vi 0; vi 0 |])

let test_merge_mode_equivalence () =
  let ctx = Ctx.create () in
  let j = mk_sym ctx `Merge in
  let l = sorted_tuples [ 1; 2; 2; 5 ] and r = sorted_tuples [ 2; 2; 5; 9 ] in
  let outs =
    List.concat_map (Sym_join.insert j Sym_join.L) l
    @ List.concat_map (Sym_join.insert j Sym_join.R) r
  in
  check_bag "merge join = oracle on sorted" outs (oracle_join l r ~on:[ 0, 0 ])

let test_merge_rejects_out_of_order () =
  let ctx = Ctx.create () in
  let j = mk_sym ctx `Merge in
  ignore (Sym_join.insert j Sym_join.L [| vi 5; vi 0 |]);
  Alcotest.(check bool) "accepts equal" true
    (Sym_join.accepts j Sym_join.L [| vi 5; vi 1 |]);
  Alcotest.(check bool) "rejects smaller" false
    (Sym_join.accepts j Sym_join.L [| vi 4; vi 0 |]);
  (* The right side has its own ordering state. *)
  Alcotest.(check bool) "right side independent" true
    (Sym_join.accepts j Sym_join.R [| vi 0; vi 0 |]);
  Alcotest.check_raises "insert raises"
    (Invalid_argument "Sym_join.insert: out-of-order merge insertion")
    (fun () -> ignore (Sym_join.insert j Sym_join.L [| vi 1; vi 0 |]))

let test_merge_cheaper_than_hash () =
  let run mode =
    let ctx = Ctx.create () in
    let j = mk_sym ctx mode in
    let l = sorted_tuples (List.init 500 Fun.id) in
    let r = sorted_tuples (List.init 500 Fun.id) in
    List.iter (fun t -> ignore (Sym_join.insert j Sym_join.L t)) l;
    List.iter (fun t -> ignore (Sym_join.insert j Sym_join.R t)) r;
    Clock.cpu ctx.Ctx.clock
  in
  Alcotest.(check bool) "merge charges less CPU" true (run `Merge < run `Hash)

(* ---------------- Complementary join pair ---------------- *)

let comp_outputs variant l r =
  let ctx = Ctx.create () in
  let cj =
    Comp_join.create ctx ~variant ~left_schema:lsch ~right_schema:rsch
      ~left_key:[ "l.k" ] ~right_key:[ "r.k" ]
  in
  let outs =
    List.concat_map (Comp_join.insert cj Comp_join.L) l
    @ List.concat_map (Comp_join.insert cj Comp_join.R) r
  in
  let outs = outs @ Comp_join.finish cj in
  outs, Comp_join.stats cj

let test_comp_sorted_all_merge () =
  let l = sorted_tuples (List.init 50 Fun.id) in
  let r = sorted_tuples (List.init 50 (fun i -> i * 2)) in
  let outs, stats = comp_outputs Comp_join.Naive l r in
  check_bag "complementary = oracle" outs (oracle_join l r ~on:[ 0, 0 ]);
  Alcotest.(check (pair int int)) "all routed to merge" (50, 50)
    stats.Comp_join.merge_routed;
  Alcotest.(check (pair int int)) "none to hash" (0, 0)
    stats.Comp_join.hash_routed;
  Alcotest.(check int) "no stitch needed" 0 stats.Comp_join.stitch_out

let test_comp_naive_poisoned_by_early_high_key () =
  (* One huge key arriving early forces everything after it to the hash
     join under naive routing — the §5 degradation. *)
  let l = [| vi 1000; vi 0 |] :: sorted_tuples (List.init 50 Fun.id) in
  let r = sorted_tuples (List.init 50 Fun.id) in
  let outs, stats = comp_outputs Comp_join.Naive l r in
  check_bag "still correct" outs (oracle_join l r ~on:[ 0, 0 ]);
  let ml, _ = stats.Comp_join.merge_routed in
  let hl, _ = stats.Comp_join.hash_routed in
  Alcotest.(check int) "only the poison tuple merged" 1 ml;
  Alcotest.(check int) "rest went to hash" 50 hl

let test_comp_priority_queue_recovers () =
  let rng = Adp_datagen.Prng.create 5 in
  let base = List.init 400 Fun.id in
  let arr = Array.of_list base in
  (* Swap a few elements: "mostly sorted". *)
  for _ = 1 to 8 do
    let i = Adp_datagen.Prng.int rng 400 and j = Adp_datagen.Prng.int rng 400 in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  let l = sorted_tuples (Array.to_list arr) in
  let r = sorted_tuples base in
  let outs_n, stats_n = comp_outputs Comp_join.Naive l r in
  let outs_p, stats_p = comp_outputs (Comp_join.Priority_queue 64) l r in
  let oracle = oracle_join l r ~on:[ 0, 0 ] in
  check_bag "naive correct" outs_n oracle;
  check_bag "pq correct" outs_p oracle;
  let merged (a, b) = a + b in
  Alcotest.(check bool) "pq routes more to merge" true
    (merged stats_p.Comp_join.merge_routed
     > merged stats_n.Comp_join.merge_routed)

let test_comp_stats_account_everything () =
  let l = sorted_tuples [ 3; 1; 2; 2 ] and r = sorted_tuples [ 2; 1; 3 ] in
  let outs, stats = comp_outputs (Comp_join.Priority_queue 2) l r in
  Alcotest.(check int) "outputs = component sum"
    (List.length outs)
    (stats.Comp_join.merge_out + stats.Comp_join.hash_out
    + stats.Comp_join.stitch_out);
  let routed (a, b) = a + b in
  Alcotest.(check int) "all inputs routed" 7
    (routed stats.Comp_join.merge_routed + routed stats.Comp_join.hash_routed)

let test_comp_finish_once () =
  let ctx = Ctx.create () in
  let cj =
    Comp_join.create ctx ~variant:Comp_join.Naive ~left_schema:lsch
      ~right_schema:rsch ~left_key:[ "l.k" ] ~right_key:[ "r.k" ]
  in
  ignore (Comp_join.finish cj);
  (try
     ignore (Comp_join.finish cj);
     Alcotest.fail "double finish"
   with Invalid_argument _ -> ());
  (try
     ignore (Comp_join.insert cj Comp_join.L [| vi 1; vi 0 |]);
     Alcotest.fail "insert after finish"
   with Invalid_argument _ -> ())

(* ---------------- Overflow (§5 memory handling) ---------------- *)

let comp_overflow_outputs variant budget l r =
  let ctx = Ctx.create () in
  let cj =
    Comp_join.create ?memory_budget:budget ~regions:8 ctx ~variant
      ~left_schema:lsch ~right_schema:rsch ~left_key:[ "l.k" ]
      ~right_key:[ "r.k" ]
  in
  let outs =
    List.concat_map (Comp_join.insert cj Comp_join.L) l
    @ List.concat_map (Comp_join.insert cj Comp_join.R) r
  in
  let outs = outs @ Comp_join.finish cj in
  outs, Comp_join.stats cj, ctx

let test_overflow_exact_under_pressure () =
  let rng = Adp_datagen.Prng.create 12 in
  let l =
    List.init 400 (fun _ -> [| vi (Adp_datagen.Prng.int rng 50); vi 1 |])
  in
  let r =
    List.init 400 (fun _ -> [| vi (Adp_datagen.Prng.int rng 50); vi 2 |])
  in
  let oracle = oracle_join l r ~on:[ 0, 0 ] in
  List.iter
    (fun budget ->
      let outs, stats, _ = comp_overflow_outputs Comp_join.Naive budget l r in
      check_bag
        (Printf.sprintf "overflow budget %s exact"
           (match budget with None -> "none" | Some b -> string_of_int b))
        outs oracle;
      (match budget with
       | Some _ ->
         Alcotest.(check bool) "spilled something" true
           (stats.Comp_join.spilled_tuples > 0
           && stats.Comp_join.spilled_regions > 0)
       | None ->
         Alcotest.(check int) "no spill unbounded" 0
           stats.Comp_join.spilled_tuples))
    [ None; Some 400; Some 100; Some 10 ]

let test_overflow_with_priority_queue () =
  (* Mostly-sorted input under memory pressure: merge routing and overflow
     resolution must compose. *)
  let base = List.init 300 (fun i -> [| vi i; vi 0 |]) in
  let rng = Adp_datagen.Prng.create 9 in
  let arr = Array.of_list base in
  for _ = 1 to 6 do
    let i = Adp_datagen.Prng.int rng 300 and j = Adp_datagen.Prng.int rng 300 in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  let l = Array.to_list arr in
  let r = base in
  let outs, stats, _ =
    comp_overflow_outputs (Comp_join.Priority_queue 32) (Some 150) l r
  in
  check_bag "pq + overflow exact" outs (oracle_join l r ~on:[ 0, 0 ]);
  Alcotest.(check bool) "overflow produced results" true
    (stats.Comp_join.overflow_out > 0)

let test_overflow_charges_io () =
  let l = List.init 200 (fun i -> [| vi i; vi 0 |]) in
  let r = List.init 200 (fun i -> [| vi i; vi 0 |]) in
  let _, _, ctx_spill = comp_overflow_outputs Comp_join.Naive (Some 50) l r in
  let _, _, ctx_mem = comp_overflow_outputs Comp_join.Naive None l r in
  Alcotest.(check bool) "spilling costs more" true
    (Clock.cpu ctx_spill.Ctx.clock > Clock.cpu ctx_mem.Ctx.clock)

let comp_overflow_prop =
  QCheck2.Test.make
    ~name:"complementary join exact under any memory budget (qcheck)"
    ~count:60
    QCheck2.Gen.(
      tup4
        (gen_keyed_tuples ~key_range:10 ~max_len:60)
        (gen_keyed_tuples ~key_range:10 ~max_len:60)
        (int_bound 80)
        (int_bound 16))
    (fun (l, r, budget, qlen) ->
      let variant =
        if qlen = 0 then Comp_join.Naive else Comp_join.Priority_queue qlen
      in
      let outs, _, _ =
        comp_overflow_outputs variant (Some (budget + 1)) l r
      in
      same_bag outs (oracle_join l r ~on:[ 0, 0 ]))

let comp_budget_matches_unbounded =
  (* Stronger than comparing against the oracle: a budgeted run must
     produce exactly what the *unbounded-memory* run produces — spilling
     and overflow resolution may reorder the output but never change the
     multiset, tuple for tuple.  Inputs arrive interleaved so the budget
     bites while both sides are still growing. *)
  QCheck2.Test.make
    ~name:"overflow resolution = unbounded-memory run exactly (qcheck)"
    ~count:60
    QCheck2.Gen.(
      tup4
        (gen_keyed_tuples ~key_range:10 ~max_len:60)
        (gen_keyed_tuples ~key_range:10 ~max_len:60)
        (int_bound 100)
        (int_bound 16))
    (fun (l, r, budget, qlen) ->
      let variant =
        if qlen = 0 then Comp_join.Naive else Comp_join.Priority_queue qlen
      in
      let run budget =
        let ctx = Ctx.create () in
        let cj =
          Comp_join.create ?memory_budget:budget ~regions:8 ctx ~variant
            ~left_schema:lsch ~right_schema:rsch ~left_key:[ "l.k" ]
            ~right_key:[ "r.k" ]
        in
        let rec feed acc ls rs =
          match ls, rs with
          | [], [] -> acc
          | x :: ls', y :: rs' ->
            let acc = acc @ Comp_join.insert cj Comp_join.L x in
            let acc = acc @ Comp_join.insert cj Comp_join.R y in
            feed acc ls' rs'
          | x :: ls', [] ->
            feed (acc @ Comp_join.insert cj Comp_join.L x) ls' []
          | [], y :: rs' ->
            feed (acc @ Comp_join.insert cj Comp_join.R y) [] rs'
        in
        let outs = feed [] l r in
        outs @ Comp_join.finish cj
      in
      same_bag (run (Some (budget + 1))) (run None))

let comp_join_equivalence =
  QCheck2.Test.make
    ~name:"complementary join pair = hash join on arbitrary inputs (qcheck)"
    ~count:80
    QCheck2.Gen.(
      triple
        (gen_keyed_tuples ~key_range:12 ~max_len:50)
        (gen_keyed_tuples ~key_range:12 ~max_len:50)
        (int_bound 32))
    (fun (l, r, qlen) ->
      let variant =
        if qlen = 0 then Comp_join.Naive else Comp_join.Priority_queue qlen
      in
      (* Re-key: generator yields "t.*" columns; rebuild under l/r schemas. *)
      let outs, _ = comp_outputs variant l r in
      same_bag outs (oracle_join l r ~on:[ 0, 0 ]))

let suite =
  [ Alcotest.test_case "hash mode" `Quick test_hash_mode;
    Alcotest.test_case "merge equivalence on sorted" `Quick
      test_merge_mode_equivalence;
    Alcotest.test_case "merge order enforcement" `Quick
      test_merge_rejects_out_of_order;
    Alcotest.test_case "merge cheaper than hash" `Quick
      test_merge_cheaper_than_hash;
    Alcotest.test_case "comp join: sorted → all merge" `Quick
      test_comp_sorted_all_merge;
    Alcotest.test_case "comp join: naive poisoning" `Quick
      test_comp_naive_poisoned_by_early_high_key;
    Alcotest.test_case "comp join: priority queue recovers" `Quick
      test_comp_priority_queue_recovers;
    Alcotest.test_case "comp join: stats account everything" `Quick
      test_comp_stats_account_everything;
    Alcotest.test_case "comp join: finish exactly once" `Quick
      test_comp_finish_once;
    Alcotest.test_case "overflow: exact under pressure" `Quick
      test_overflow_exact_under_pressure;
    Alcotest.test_case "overflow: with priority queue" `Quick
      test_overflow_with_priority_queue;
    Alcotest.test_case "overflow: charges I/O" `Quick test_overflow_charges_io;
    qtest comp_overflow_prop;
    qtest comp_budget_matches_unbounded;
    qtest comp_join_equivalence ]
