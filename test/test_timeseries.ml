(* Server telemetry over time: the SLO grammar and monitor, the
   ring-buffer recorder and its windowed aggregates, JSONL export
   round-trips and byte-determinism, label-scoped registry views under
   many queries (no leaks after prune), the Prometheus exposition
   contract (one HELP + one TYPE per family, contiguous samples), the
   telemetered serve's zero-perturbation and sampling alignment, the
   per-query explain lanes, the bench-diff shape gate, and the
   longitudinal bench-history trajectories. *)

open Adp_datagen
module Diagnostic = Adp_analysis.Diagnostic
module Trace = Adp_obs.Trace
module Metrics = Adp_obs.Metrics
module Slo = Adp_obs.Slo
module Timeseries = Adp_obs.Timeseries
module Bjson = Adp_obs.Bjson
module Benchdiff = Adp_obs.Benchdiff
module Benchhistory = Adp_obs.Benchhistory
module Script = Adp_server.Script
module Server = Adp_server.Server

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---------------- SLO grammar ---------------- *)

let test_slo_parse () =
  (match Slo.parse "depth=adp_server_queue_depth p95 < 8" with
   | Error m -> Alcotest.fail m
   | Ok o ->
     Alcotest.(check string) "name" "depth" o.Slo.o_name;
     Alcotest.(check string) "metric" "adp_server_queue_depth" o.Slo.o_metric;
     Alcotest.(check bool) "agg" true (o.Slo.o_agg = Slo.P95);
     Alcotest.(check bool) "op" true (o.Slo.o_op = Slo.Lt);
     Alcotest.(check (float 0.0)) "bound" 8.0 o.Slo.o_bound;
     Alcotest.(check string) "round-trip"
       "depth=adp_server_queue_depth p95 < 8" (Slo.to_string o));
  (match Slo.parse "lat=adp_latency >= 0.5" with
   | Error m -> Alcotest.fail m
   | Ok o ->
     Alcotest.(check bool) "default agg is last" true (o.Slo.o_agg = Slo.Last);
     Alcotest.(check bool) "ge" true (o.Slo.o_op = Slo.Ge));
  List.iter
    (fun bad ->
      match Slo.parse bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "justaname"; "x="; "x=metric"; "x=metric < "; "x=metric ? 5";
      "x=metric frobnicate < 5"; "x=metric < five"; "=metric < 5" ]

let test_slo_monitor_transitions () =
  let o =
    match Slo.parse "depth=queue last < 2" with
    | Ok o -> o
    | Error m -> Alcotest.fail m
  in
  let m = Slo.monitor [ o ] in
  let eval v =
    Slo.evaluate m ~values:(fun ~metric agg ->
        ignore agg;
        if metric = "queue" then [ v ] else [])
  in
  Alcotest.(check int) "healthy start" 0 (List.length (eval 0.0));
  (match eval 5.0 with
   | [ t ] ->
     Alcotest.(check bool) "violated" true t.Slo.t_violated;
     Alcotest.(check (float 0.0)) "worst offender" 5.0 t.Slo.t_value
   | ts -> Alcotest.failf "expected one transition, got %d" (List.length ts));
  Alcotest.(check int) "no re-report while violated" 0
    (List.length (eval 9.0));
  Alcotest.(check int) "one active" 1
    (List.length (Slo.active_violations m));
  (match eval 1.0 with
   | [ t ] -> Alcotest.(check bool) "recovered" false t.Slo.t_violated
   | ts -> Alcotest.failf "expected recovery, got %d" (List.length ts));
  Alcotest.(check int) "none active" 0
    (List.length (Slo.active_violations m))

(* ---------------- recorder ---------------- *)

let test_recorder_series_and_aggregates () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"ticks" "t_ticks_total" in
  let g = Metrics.gauge m ~help:"depth" "t_depth" in
  let h = Metrics.histogram m ~help:"lat" "t_latency" in
  let ts = Timeseries.create ~capacity:4 ~window:3 () in
  for i = 1 to 6 do
    Metrics.incr c;
    Metrics.set g (float_of_int (10 - i));
    Metrics.observe h (float_of_int i);
    ignore (Timeseries.sample ts ~now_s:(float_of_int i) m)
  done;
  Alcotest.(check int) "samples" 6 (Timeseries.samples ts);
  (* counter + gauge + histogram expanded to count/p50/p95/max. *)
  Alcotest.(check int) "series" 6 (Timeseries.series_count ts);
  Alcotest.(check (option (float 1e-9))) "last counter" (Some 6.0)
    (Timeseries.aggregate ts ~metric:"t_ticks_total" Slo.Last);
  Alcotest.(check (option (float 1e-9))) "windowed min of gauge" (Some 4.0)
    (Timeseries.aggregate ts ~metric:"t_depth" Slo.Min);
  Alcotest.(check (option (float 1e-9))) "windowed median" (Some 5.0)
    (Timeseries.aggregate ts ~metric:"t_depth" Slo.Median);
  (* Rate over the window: counter went 4 -> 6 over t 4 -> 6. *)
  Alcotest.(check (option (float 1e-9))) "windowed rate" (Some 1.0)
    (Timeseries.aggregate ts ~metric:"t_ticks_total" Slo.Rate);
  Alcotest.(check (option (float 0.0))) "absent metric" None
    (Timeseries.aggregate ts ~metric:"nope" Slo.Last);
  (* The ring retains only the last [capacity] points. *)
  let doc =
    match
      Timeseries.doc_of_lines
        (String.split_on_char '\n' (Timeseries.to_jsonl ts))
    with
    | Ok d -> d
    | Error m -> Alcotest.fail m
  in
  let depth =
    List.find (fun s -> s.Timeseries.ds_name = "t_depth") doc.Timeseries.d_series
  in
  Alcotest.(check int) "ring capped" 4 (List.length depth.Timeseries.ds_points);
  Alcotest.(check int) "total recorded" 6 depth.Timeseries.ds_total;
  (match depth.Timeseries.ds_points with
   | (t0, v0) :: _ ->
     Alcotest.(check (float 1e-9)) "oldest retained t" 3.0 t0;
     Alcotest.(check (float 1e-9)) "oldest retained v" 7.0 v0
   | [] -> Alcotest.fail "no points")

let test_jsonl_roundtrip_and_determinism () =
  let record () =
    let m = Metrics.create () in
    let c = Metrics.counter m ~help:"ticks" "t_ticks_total" in
    let ts =
      Timeseries.create
        ~slos:
          [ (match Slo.parse "ticks=t_ticks_total last < 2" with
             | Ok o -> o
             | Error e -> Alcotest.fail e) ]
        ()
    in
    Timeseries.span ts ~at_s:0.0 ~query:"q1" ~state:"submitted" ();
    Metrics.incr c;
    ignore (Timeseries.sample ts ~now_s:0.5 m);
    Timeseries.span ts ~at_s:0.6 ~query:"q1" ~state:"started" ~worker:1
      ~attempt:1 ();
    Timeseries.provenance ts ~at_s:0.7 ~query:"q1" ~signatures:[ "sigA"; "sigB" ];
    Metrics.incr c ~by:3;
    ignore (Timeseries.sample ts ~now_s:1.0 m);
    Timeseries.span ts ~at_s:1.2 ~query:"q1" ~state:"done" ~worker:1
      ~attempt:1 ();
    Timeseries.to_jsonl ts
  in
  let j1 = record () and j2 = record () in
  Alcotest.(check string) "byte-identical re-recording" j1 j2;
  match Timeseries.doc_of_lines (String.split_on_char '\n' j1) with
  | Error m -> Alcotest.fail m
  | Ok doc ->
    Alcotest.(check int) "samples" 2 (List.length doc.Timeseries.d_samples);
    Alcotest.(check int) "spans" 3 (List.length doc.Timeseries.d_spans);
    Alcotest.(check int) "provs" 1 (List.length doc.Timeseries.d_provs);
    Alcotest.(check int) "slo declared" 1 (List.length doc.Timeseries.d_slos);
    (* The ticks objective violates at the second sample (4 >= 2). *)
    (match doc.Timeseries.d_slo_log with
     | [ r ] ->
       Alcotest.(check bool) "violated" true r.Timeseries.sl_violated;
       Alcotest.(check string) "slo name" "ticks" r.Timeseries.sl_slo;
       Alcotest.(check (float 1e-9)) "value" 4.0 r.Timeseries.sl_value
     | l -> Alcotest.failf "expected one ledger entry, got %d" (List.length l));
    (match doc.Timeseries.d_spans with
     | s :: _ ->
       Alcotest.(check string) "span query" "q1" s.Timeseries.sp_query;
       Alcotest.(check string) "span state" "submitted" s.Timeseries.sp_state;
       Alcotest.(check int) "absent worker" (-1) s.Timeseries.sp_worker
     | [] -> Alcotest.fail "no spans");
    (match doc.Timeseries.d_provs with
     | [ p ] ->
       Alcotest.(check (list string)) "signatures" [ "sigA"; "sigB" ]
         p.Timeseries.pv_signatures
     | _ -> Alcotest.fail "expected one provenance edge")

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Timeseries.sparkline 10 []);
  let flat = Timeseries.sparkline 4 [ (0.0, 5.0); (1.0, 5.0); (2.0, 5.0) ] in
  Alcotest.(check int) "flat width" 3 (String.length flat);
  let ramp =
    Timeseries.sparkline 3 [ (0.0, 0.0); (1.0, 1.0); (2.0, 2.0); (3.0, 3.0) ]
  in
  Alcotest.(check int) "keeps last width points" 3 (String.length ramp);
  Alcotest.(check char) "max maps to densest" '@'
    ramp.[String.length ramp - 1]

(* ---------------- registry views under many queries ---------------- *)

let test_with_labels_no_leaks () =
  let m = Metrics.create () in
  let keep = Metrics.counter m ~help:"polls" "adp_polls_total" in
  Metrics.incr keep;
  let base = Metrics.cells m in
  (* Many concurrent per-query views writing scoped cells... *)
  let views =
    List.init 50 (fun i ->
        let qid = Printf.sprintf "q%02d" i in
        let v = Metrics.with_labels m [ ("query", qid) ] in
        let c = Metrics.counter v ~help:"rows" "adp_rows_total" in
        Metrics.incr c ~by:i;
        let g = Metrics.gauge v ~help:"depth" "adp_depth" in
        Metrics.set g (float_of_int i);
        v)
  in
  Alcotest.(check int) "scoped cells live" (base + 100) (Metrics.cells m);
  (* Re-registration under the same view is idempotent, not a new cell. *)
  let v0 = List.hd views in
  ignore (Metrics.counter v0 ~help:"rows" "adp_rows_total");
  Alcotest.(check int) "idempotent" (base + 100) (Metrics.cells m);
  (* ...and pruning every view retires exactly the scoped cells. *)
  List.iter Metrics.prune views;
  Alcotest.(check int) "no leaked labels" base (Metrics.cells m);
  let leaked =
    List.exists
      (fun (_, labels, _) -> List.mem_assoc "query" labels)
      (Metrics.readings m)
  in
  Alcotest.(check bool) "no query label survives" false leaked;
  (* The unscoped cell is untouched. *)
  Alcotest.(check int) "root cell kept" 1 (Metrics.count keep)

(* ---------------- Prometheus exposition ---------------- *)

(* A minimal scrape validator: every sample line's family must have been
   introduced by exactly one HELP and one TYPE line, all samples of a
   family must be contiguous, and no family may repeat.  Histogram
   families own their conventional [_bucket]/[_sum]/[_count] samples. *)
let validate_prometheus text =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let seen = Hashtbl.create 16 in
  let kinds = Hashtbl.create 16 in
  let current = ref None in
  let family_of_sample line =
    let name_end =
      match (String.index_opt line '{', String.index_opt line ' ') with
      | Some i, Some j -> min i j
      | Some i, None -> i
      | None, Some j -> j
      | None, None -> String.length line
    in
    let name = String.sub line 0 name_end in
    let strip suffix =
      if
        String.length name > String.length suffix
        && String.sub name
             (String.length name - String.length suffix)
             (String.length suffix)
           = suffix
      then
        Some (String.sub name 0 (String.length name - String.length suffix))
      else None
    in
    let histo base = Hashtbl.find_opt kinds base = Some "histogram" in
    match (strip "_bucket", strip "_sum", strip "_count") with
    | Some base, _, _ when histo base -> base
    | _, Some base, _ when histo base -> base
    | _, _, Some base when histo base -> base
    | _ -> name
  in
  List.iter
    (fun line ->
      if String.length line > 7 && String.sub line 0 7 = "# HELP " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        let fam = String.sub rest 0 (String.index rest ' ') in
        if Hashtbl.mem seen fam then
          Alcotest.failf "family %s introduced twice" fam;
        Hashtbl.replace seen fam `Help;
        current := Some fam
      end
      else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        (match String.split_on_char ' ' rest with
         | fam :: kind :: _ ->
           Hashtbl.replace kinds fam kind;
           (match Hashtbl.find_opt seen fam with
            | Some `Help -> Hashtbl.replace seen fam `Typed
            | _ -> Alcotest.failf "TYPE for %s without preceding HELP" fam);
           if !current <> Some fam then
             Alcotest.failf "TYPE for %s interleaves another family" fam
         | _ -> Alcotest.failf "malformed TYPE line: %s" line)
      end
      else begin
        let fam = family_of_sample line in
        (match Hashtbl.find_opt seen fam with
         | Some `Typed -> ()
         | _ -> Alcotest.failf "sample for %s before its HELP/TYPE" fam);
        if !current <> Some fam then
          Alcotest.failf "samples of %s not contiguous" fam
      end)
    lines

let test_prometheus_families () =
  let m = Metrics.create () in
  ignore (Metrics.counter m ~help:"polls" "adp_polls_total");
  let nohelp = Metrics.counter m ~help:"" "adp_bare_total" in
  Metrics.incr nohelp;
  let v1 = Metrics.with_labels m [ ("query", "q1") ] in
  let v2 = Metrics.with_labels m [ ("query", "q2") ] in
  List.iter
    (fun v ->
      let h = Metrics.histogram v ~help:"latency" "adp_latency" in
      Metrics.observe h 1.0;
      Metrics.observe h 3.0;
      ignore (Metrics.gauge v ~help:"depth" "adp_depth"))
    [ v1; v2 ];
  let text = Metrics.to_prometheus m in
  validate_prometheus text;
  (* Every family appears with both headers, including the synthesized
     quantile sibling families of multi-label-set histograms. *)
  List.iter
    (fun fam ->
      let has prefix =
        List.exists
          (fun l ->
            String.length l >= String.length prefix
            && String.sub l 0 (String.length prefix) = prefix)
          (String.split_on_char '\n' text)
      in
      Alcotest.(check bool) ("HELP " ^ fam) true (has ("# HELP " ^ fam ^ " "));
      Alcotest.(check bool) ("TYPE " ^ fam) true (has ("# TYPE " ^ fam ^ " ")))
    [ "adp_polls_total"; "adp_bare_total"; "adp_depth"; "adp_latency";
      "adp_latency_p50"; "adp_latency_p95"; "adp_latency_max" ];
  (* The empty help string falls back to the family name, never an
     empty HELP line. *)
  Alcotest.(check bool) "synthesized help" true
    (List.exists
       (fun l -> l = "# HELP adp_bare_total adp_bare_total")
       (String.split_on_char '\n' text))

(* ---------------- telemetered serve ---------------- *)

let dataset =
  Tpch.generate { Tpch.scale = 0.004; distribution = Tpch.Uniform; seed = 42 }

let resolver = Server.tpch_resolver dataset

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "timeseries-test-ckpt-%d" !n in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_server ?(config = fun c -> c) script k =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let cfg = config (Server.default_config ~checkpoint_dir:dir) in
      let script =
        match Script.parse script with
        | Ok s -> s
        | Error ds -> Alcotest.failf "script: %s" (Diagnostic.to_string ds)
      in
      k (Server.run cfg resolver script))

let overload_script =
  "at 0 submit a Q3\n\
   at 0 submit b Q10\n\
   at 0 submit c Q3A\n\
   at 0.5 submit d Q3"

let overload_slos () =
  [ (match Slo.parse "depth=adp_server_queue_depth last < 1" with
     | Ok o -> o
     | Error m -> Alcotest.fail m) ]

let test_serve_sampling_alignment () =
  let run () =
    let ts = Timeseries.create ~slos:(overload_slos ()) () in
    with_server overload_script
      ~config:(fun c -> { c with Server.workers = 1; telemetry = Some ts })
      (fun r -> (r, ts))
  in
  let r1, ts1 = run () in
  let r2, ts2 = run () in
  (* Every dispatcher poll takes exactly one sample. *)
  Alcotest.(check int) "one sample per poll" r1.Server.r_polls
    (Timeseries.samples ts1);
  Alcotest.(check bool) "sampled at all" true (Timeseries.samples ts1 > 0);
  (* Repeated serves export byte-identical telemetry. *)
  Alcotest.(check string) "byte-identical JSONL"
    (Timeseries.to_jsonl ts1) (Timeseries.to_jsonl ts2);
  Alcotest.(check int) "same polls" r1.Server.r_polls r2.Server.r_polls;
  (* The one-worker burst must break the queue-depth objective and then
     recover as the queue drains. *)
  let doc =
    match
      Timeseries.doc_of_lines
        (String.split_on_char '\n' (Timeseries.to_jsonl ts1))
    with
    | Ok d -> d
    | Error m -> Alcotest.fail m
  in
  let viol, recov =
    List.partition (fun s -> s.Timeseries.sl_violated) doc.Timeseries.d_slo_log
  in
  Alcotest.(check bool) "violated" true (List.length viol >= 1);
  Alcotest.(check bool) "recovered" true (List.length recov >= 1);
  (* Spans cover every query's lifecycle on the server clock. *)
  List.iter
    (fun qid ->
      List.iter
        (fun state ->
          Alcotest.(check bool)
            (Printf.sprintf "span %s/%s" qid state)
            true
            (List.exists
               (fun s ->
                 s.Timeseries.sp_query = qid && s.Timeseries.sp_state = state)
               doc.Timeseries.d_spans))
        [ "submitted"; "started"; "done" ])
    [ "a"; "b"; "c"; "d" ]

let test_serve_zero_perturbation () =
  let serve telemetry =
    let config c =
      { c with
        Server.workers = 1;
        telemetry =
          (if telemetry then Some (Timeseries.create ~slos:(overload_slos ()) ())
           else None) }
    in
    with_server overload_script ~config (fun r -> r)
  in
  let plain = serve false and telemetered = serve true in
  Alcotest.(check bool) "views identical" true
    (Server.view plain = Server.view telemetered);
  (* Result multisets too, not just the summary projection. *)
  List.iter2
    (fun (a : Server.query_report) (b : Server.query_report) ->
      match (a.Server.qr_outcome, b.Server.qr_outcome) with
      | Server.Done { result = ra; _ }, Server.Done { result = rb; _ } ->
        Alcotest.(check bool) ("rows " ^ a.Server.qr_id) true
          (Adp_relation.Relation.equal_bag ra rb)
      | _ -> ())
    plain.Server.r_queries telemetered.Server.r_queries

(* ---------------- explain lanes ---------------- *)

let test_explain_lanes () =
  let events =
    [ (0.0, Trace.Worker_spawned { worker = 1 });
      ( 10.0,
        Trace.Query_attempt { query = "qa"; attempt = 1; worker = 1; events = 2 } );
      (10.0, Trace.Phase_opened { id = 0; plan = "scan" });
      (20.0, Trace.Phase_closed { id = 0; read = 5; emitted = 5 });
      ( 30.0,
        Trace.Slo_violation
          { slo = "depth"; metric = "adp_server_queue_depth"; agg = "last";
            op = "<"; value = 3.0; bound = 1.0 } );
      ( 40.0,
        Trace.Slo_recovered
          { slo = "depth"; metric = "adp_server_queue_depth"; agg = "last";
            op = "<"; value = 0.0; bound = 1.0 } ) ]
  in
  let text = Format.asprintf "%a" Trace.explain events in
  let lines = String.split_on_char '\n' text in
  let has f = List.exists f lines in
  (* The two inner events render inside qa's lane; the lane closes when
     its block is exhausted. *)
  Alcotest.(check bool) "lane header" true
    (has (fun l ->
         contains l "query qa attempt 1 on worker 1"
         && contains l "2 re-stamped events"));
  Alcotest.(check bool) "lane prefix on inner events" true
    (has (fun l -> contains l "qa| phase 0 opened"));
  Alcotest.(check bool) "lane prefix on second inner event" true
    (has (fun l -> contains l "qa| phase 0 closed"));
  Alcotest.(check bool) "lane closed after block" true
    (has (fun l ->
         contains l "SLO depth VIOLATED"
         && not (contains l "qa| ")));
  Alcotest.(check bool) "recovery line" true
    (has (fun l -> contains l "SLO depth recovered"));
  Alcotest.(check bool) "lanes summary" true
    (has (fun l -> contains l "lanes: 1 query-attempt block"));
  Alcotest.(check bool) "slo summary" true
    (has (fun l -> contains l "slo: violations 1; recoveries 1"));
  (* Trace JSON round-trip for the three new event classes. *)
  List.iter
    (fun (at, ev) ->
      match Trace.of_json (Trace.to_json (at, ev)) with
      | Ok (at', ev') ->
        Alcotest.(check (float 0.0)) "stamp" at at';
        Alcotest.(check bool) ("round-trip " ^ Trace.event_name ev) true
          (ev = ev')
      | Error m -> Alcotest.fail m)
    events

(* ---------------- bench-diff shape gate ---------------- *)

let doc_of cells =
  { Bjson.bench = "t"; scale = 0.004;
    cells =
      List.map
        (fun (id, kind, value) -> { Bjson.id; kind; value })
        cells }

let test_benchdiff_shape_mismatch () =
  let baseline =
    doc_of
      [ ("alpha", Bjson.Count, 1.0); ("beta", Bjson.Time, 2.0);
        ("gamma", Bjson.Bool, 1.0) ]
  in
  let current =
    doc_of [ ("alpha", Bjson.Count, 1.0); ("delta", Bjson.Count, 3.0);
             ("zeta", Bjson.Count, 9.0) ]
  in
  (match Benchdiff.diff ~baseline ~current () with
   | Ok _ -> Alcotest.fail "shape mismatch accepted"
   | Error m ->
     (* Sorted missing and extra cell names, distinct from a breach. *)
     Alcotest.(check bool) "mentions shape" true
       (contains m "shape mismatch");
     Alcotest.(check bool) "missing sorted" true
       (contains m "missing 2 cells: beta, gamma");
     Alcotest.(check bool) "extra sorted" true
       (contains m "extra 2 cells: delta, zeta"));
  (* A genuine regression on an aligned shape is a breach, not an
     Error. *)
  let baseline = doc_of [ ("alpha", Bjson.Count, 1.0) ] in
  let current = doc_of [ ("alpha", Bjson.Count, 2.0) ] in
  match Benchdiff.diff ~baseline ~current () with
  | Error m -> Alcotest.failf "regression misclassified as Error: %s" m
  | Ok o ->
    Alcotest.(check int) "one breach" 1 (List.length o.Benchdiff.o_breaches)

(* ---------------- bench history ---------------- *)

let with_history_dir k =
  let dir = "timeseries-test-history" in
  if Sys.file_exists dir then rm_rf dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> k dir)

let test_bench_history () =
  with_history_dir (fun dir ->
      let doc v t =
        { Bjson.bench = "hist"; scale = 0.004;
          cells =
            [ { Bjson.id = "flag"; kind = Bjson.Bool; value = 1.0 };
              { Bjson.id = "n"; kind = Bjson.Count; value = v };
              { Bjson.id = "elapsed"; kind = Bjson.Time; value = t };
              { Bjson.id = "w-wall-median"; kind = Bjson.Wall; value = 9.9 } ]
        }
      in
      (match Benchhistory.append ~dir (doc 5.0 1.0) with
       | Ok seq -> Alcotest.(check int) "first seq" 1 seq
       | Error m -> Alcotest.fail m);
      (match Benchhistory.append ~dir (doc 5.0 1.02) with
       | Ok seq -> Alcotest.(check int) "second seq" 2 seq
       | Error m -> Alcotest.fail m);
      let file = Benchhistory.path ~dir ~bench:"hist" in
      let entries =
        match Benchhistory.load file with
        | Ok es -> es
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check int) "two entries" 2 (List.length entries);
      (* Within tolerance of the prior median: passes. *)
      Alcotest.(check (list string)) "gate passes" []
        (Benchhistory.gate entries);
      (* A count drift breaches exactly; a wall drift never does. *)
      (match Benchhistory.append ~dir (doc 6.0 1.0) with
       | Ok _ -> ()
       | Error m -> Alcotest.fail m);
      let entries3 =
        match Benchhistory.load file with
        | Ok es -> es
        | Error m -> Alcotest.fail m
      in
      (match Benchhistory.gate entries3 with
       | [ breach ] ->
         Alcotest.(check bool) "count breach" true
           (contains breach "n")
       | bs -> Alcotest.failf "expected one breach, got %d" (List.length bs));
      (* A time excursion past the tolerance of the history median
         breaches too. *)
      (match Benchhistory.append ~dir (doc 6.0 2.0) with
       | Ok _ -> ()
       | Error m -> Alcotest.fail m);
      let entries4 =
        match Benchhistory.load file with
        | Ok es -> es
        | Error m -> Alcotest.fail m
      in
      Alcotest.(check bool) "time breach" true
        (List.exists
           (fun b -> contains b "elapsed")
           (Benchhistory.gate entries4));
      (* The render includes a sparkline row per cell of the newest
         entry. *)
      let rendered = Format.asprintf "%a" Benchhistory.render entries4 in
      List.iter
        (fun id ->
          Alcotest.(check bool) ("rendered " ^ id) true
            (contains rendered id))
        [ "flag"; "n"; "elapsed"; "w-wall-median" ])

let suite =
  [ Alcotest.test_case "slo parse" `Quick test_slo_parse;
    Alcotest.test_case "slo monitor transitions" `Quick
      test_slo_monitor_transitions;
    Alcotest.test_case "recorder series and aggregates" `Quick
      test_recorder_series_and_aggregates;
    Alcotest.test_case "jsonl roundtrip and determinism" `Quick
      test_jsonl_roundtrip_and_determinism;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "with_labels has no leaks" `Quick
      test_with_labels_no_leaks;
    Alcotest.test_case "prometheus families" `Quick test_prometheus_families;
    Alcotest.test_case "serve sampling alignment" `Quick
      test_serve_sampling_alignment;
    Alcotest.test_case "serve telemetry zero perturbation" `Quick
      test_serve_zero_perturbation;
    Alcotest.test_case "explain lanes" `Quick test_explain_lanes;
    Alcotest.test_case "bench-diff shape mismatch" `Quick
      test_benchdiff_shape_mismatch;
    Alcotest.test_case "bench history" `Quick test_bench_history ]
