open Adp_core

let test_human_int () =
  Alcotest.(check string) "small" "999" (Report.human_int 999);
  Alcotest.(check string) "thousands" "1.5K" (Report.human_int 1500);
  Alcotest.(check string) "ten-thousands" "25K" (Report.human_int 25400);
  Alcotest.(check string) "millions" "2.5M" (Report.human_int 2_500_000)

let test_seconds () =
  Alcotest.(check string) "zero is dash" "-" (Report.seconds 0.0);
  Alcotest.(check string) "sub-centisecond" "0.0050s" (Report.seconds 0.005);
  Alcotest.(check string) "normal" "1.23s" (Report.seconds 1.234);
  Alcotest.(check string) "large" "42.6s" (Report.seconds 42.61)

let test_pp_run () =
  let r =
    { Report.label = "x"; time_s = 1.0; cpu_s = 0.8; idle_s = 0.2;
      wall_s = 0.1; phases = 2; stitch_time_s = 0.3; reused = 1200;
      discarded = 5; result_card = 42; coverage = 1.0; retries = 0;
      failovers = 0; paged_out = 0; checkpoints = 0;
      degraded_reason = None }
  in
  let render r = Format.asprintf "%a" Report.pp_run r in
  let contains s needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  let s = render r in
  Alcotest.(check bool) "mentions phases" true (contains s "2 phase(s)");
  Alcotest.(check bool) "mentions reuse" true (contains s "1.2K");
  Alcotest.(check bool) "quiet when nothing paged out" false
    (contains s "paged out");
  Alcotest.(check bool) "quiet when no checkpoints" false
    (contains s "checkpoint");
  let s = render { r with Report.paged_out = 3; checkpoints = 2 } in
  Alcotest.(check bool) "mentions page-outs" true (contains s "3 paged out");
  Alcotest.(check bool) "mentions checkpoints" true
    (contains s "2 checkpoint(s)");
  Alcotest.(check bool) "quiet when not degraded" false
    (contains s "DEGRADED");
  let s = render { r with Report.degraded_reason = Some "deadline" } in
  Alcotest.(check bool) "mentions degradation" true
    (contains s "DEGRADED (deadline)")

let suite =
  [ Alcotest.test_case "human_int" `Quick test_human_int;
    Alcotest.test_case "seconds" `Quick test_seconds;
    Alcotest.test_case "pp_run" `Quick test_pp_run ]
