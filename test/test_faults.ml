(* Fault-injection and fault-tolerance layer: deterministic stalls,
   disconnects, retry/backoff schedules, mirror failover (with lagging
   replicas re-streaming an overlap), and graceful degradation to partial
   results when every mirror is gone. *)

open Adp_relation
open Adp_datagen
open Adp_exec
open Adp_core
open Adp_query
open Helpers

let mk_rel n = rel [ "t.k"; "t.p" ] (List.init n (fun i -> [ vi i; vi 0 ]))

(* Zero-cost reconnects keep the retry arithmetic exact. *)
let free_costs = { Cost_model.default with Cost_model.reconnect = 0.0 }

let policy ?(timeout = 0.2) ?(retries = 5) ?(backoff = 0.1) () =
  { Retry.default_policy with
    Retry.timeout_s = timeout; max_retries = retries;
    backoff_initial_s = backoff; backoff_multiplier = 2.0; jitter = 0.0 }

let drain ?poll ?retry ?(costs = free_costs) sources =
  let ctx = Ctx.create ~costs () in
  let seen = ref [] in
  let consume _ t = seen := t :: !seen in
  let outcome = Driver.run ctx ~sources ~consume ?poll ?retry () in
  ctx, List.rev !seen, outcome

(* ---------------- Retry controller ---------------- *)

let test_retry_schedule () =
  let c = Retry.create (policy ()) in
  Alcotest.(check (float 1e-6)) "deadline from zero" 2e5 (Retry.deadline c);
  Retry.note_progress c ~now:1e5;
  Alcotest.(check (float 1e-6)) "deadline tracks progress" 3e5
    (Retry.deadline c);
  (* Failed attempts: exponential backoff 0.1s, 0.2s, 0.4s ... *)
  Retry.record_failure c ~now:3e5;
  Alcotest.(check (option (float 1e-6))) "first backoff" (Some 4e5)
    (Retry.pending_attempt c);
  Retry.record_failure c ~now:4e5;
  Alcotest.(check (option (float 1e-6))) "second backoff doubles" (Some 6e5)
    (Retry.pending_attempt c);
  Retry.record_failure c ~now:6e5;
  Alcotest.(check (option (float 1e-6))) "third backoff doubles again"
    (Some 1e6) (Retry.pending_attempt c);
  Alcotest.(check int) "attempts counted" 3 (Retry.attempts c);
  Alcotest.(check bool) "budget not yet spent" false (Retry.exhausted c);
  Retry.record_failure c ~now:1e6;
  Retry.record_failure c ~now:1.8e6;
  Alcotest.(check bool) "budget spent" true (Retry.exhausted c);
  Retry.record_success c ~now:2e6;
  Alcotest.(check int) "success resets attempts" 0 (Retry.attempts c);
  Alcotest.(check int) "all attempts recorded" 6 (Retry.retries_total c);
  (* Backoff caps at backoff_max_s. *)
  let capped =
    Retry.create
      { (policy ~backoff:10.0 ()) with Retry.backoff_max_s = 15.0 }
  in
  Retry.record_failure capped ~now:0.0;
  Retry.record_failure capped ~now:0.0;
  Alcotest.(check (option (float 1e-6))) "backoff capped" (Some 15e6)
    (Retry.pending_attempt capped)

let test_backoff_jitter_deterministic () =
  (* Jittered backoff draws from a seeded stream: the same seed and salt
     must reproduce the exact attempt schedule, run after run. *)
  let jittered = { (policy ()) with Retry.jitter = 0.3; seed = 42 } in
  let schedule ~salt =
    let c = Retry.create ~salt jittered in
    List.map
      (fun i ->
        Retry.record_failure c ~now:(float_of_int i *. 1e5);
        Retry.pending_attempt c)
      [ 3; 4; 6; 10 ]
  in
  Alcotest.(check bool) "same seed+salt => identical schedule" true
    (schedule ~salt:1 = schedule ~salt:1);
  Alcotest.(check bool) "different salt => different jitter stream" true
    (schedule ~salt:1 <> schedule ~salt:2);
  (* End to end: two identical faulty runs with jitter enabled must agree
     on every clock counter — in particular the retry-idle charge, which
     accumulates exactly the jittered backoff waits. *)
  let run () =
    let s =
      Source.create ~name:"r"
        ~faults:
          [ Source.Disconnect { after_tuples = 2; rejoin_after_s = Some 1.0 } ]
        (mk_rel 5) (Source.Bandwidth 10.0)
    in
    let ctx, seen, outcome = drain ~retry:jittered [ s ] in
    ( Clock.retry_idle ctx.Ctx.clock, Clock.idle ctx.Ctx.clock,
      Clock.capture ctx.Ctx.clock, Adp_obs.Metrics.count ctx.Ctx.retries,
      List.length seen,
      outcome )
  in
  let (ri_a, _, _, retries_a, _, _) as a = run () in
  let b = run () in
  Alcotest.(check bool) "identical retry_idle sequence across runs" true
    (a = b);
  Alcotest.(check bool) "jittered backoff actually waited" true (ri_a > 0.0);
  Alcotest.(check bool) "retries actually happened" true (retries_a > 0)

(* ---------------- Stall ---------------- *)

let test_stall_is_transient () =
  (* Bandwidth 10 t/s: arrivals 0, 1e5, 2e5, ...; a 1 s stall after two
     tuples pushes the third to 1.2e6.  The 0.2 s timeout fires repeatedly
     but every reconnect finds the link up, so the stall never consumes
     the retry budget and never fails over. *)
  let s =
    Source.create ~name:"r"
      ~faults:[ Source.Stall { after_tuples = 2; duration_s = 1.0 } ]
      (mk_rel 5) (Source.Bandwidth 10.0)
  in
  let ctx, seen, outcome = drain ~retry:(policy ()) [ s ] in
  Alcotest.(check bool) "exhausted" true (outcome = Driver.Exhausted);
  Alcotest.(check int) "all tuples delivered" 5 (List.length seen);
  (* Reconnect probes at deadlines 3e5, 5e5, 7e5, 9e5, 1.1e6; the tuple
     lands at 1.2e6 within the next window. *)
  Alcotest.(check int) "probes during the stall" 5 (Adp_obs.Metrics.count ctx.Ctx.retries);
  Alcotest.(check int) "no failover" 0 (Adp_obs.Metrics.count ctx.Ctx.failovers);
  Alcotest.(check (float 1e-6)) "completion time" 1.4e6 (Ctx.now ctx);
  Alcotest.(check bool) "timeout waits recorded as retry idle" true
    (Clock.retry_idle ctx.Ctx.clock > 0.0)

(* ---------------- Disconnect + rejoin: exact backoff schedule -------- *)

let test_disconnect_rejoin_backoff () =
  (* Drop after tuple 2 (arrival 1e5), rejoin 1 s later at 1.1e6.
     Timeout 0.2 s => first attempt at 3e5; backoffs 0.1/0.2/0.4/0.8 s =>
     attempts at 4e5, 6e5, 1e6 all fail, the attempt at 1.8e6 succeeds.
     Arrivals rebase to 1.9e6, 2.0e6, 2.1e6. *)
  let s =
    Source.create ~name:"r"
      ~faults:
        [ Source.Disconnect { after_tuples = 2; rejoin_after_s = Some 1.0 } ]
      (mk_rel 5) (Source.Bandwidth 10.0)
  in
  let ctx, seen, _ = drain ~retry:(policy ()) [ s ] in
  Alcotest.(check int) "all tuples delivered" 5 (List.length seen);
  Alcotest.(check int) "five attempts" 5 (Adp_obs.Metrics.count ctx.Ctx.retries);
  Alcotest.(check int) "no failover needed" 0 (Adp_obs.Metrics.count ctx.Ctx.failovers);
  Alcotest.(check (float 1e-6)) "completion time" 2.1e6 (Ctx.now ctx);
  (* Retry idle: waits into the five attempt events,
     2e5 + 1e5 + 2e5 + 4e5 + 8e5. *)
  Alcotest.(check (float 1e-6)) "backoff schedule charged as retry idle"
    1.7e6
    (Clock.retry_idle ctx.Ctx.clock);
  Alcotest.(check (float 1e-6)) "idle includes retry idle" 2.1e6
    (Clock.idle ctx.Ctx.clock)

(* ---------------- Mirror failover ---------------- *)

let test_failover_to_lagging_mirror () =
  (* Permanent drop after tuple 2; budget of two attempts (3e5 and 4e5)
     fails, so the third timeout event (6e5) fails over.  The mirror lags
     one tuple: it re-streams position 1 (one 1e5 gap) before new data, so
     tuples 3..5 arrive at 8e5, 9e5, 1.0e6 — and exactly once each. *)
  let s =
    Source.create ~name:"r"
      ~faults:
        [ Source.Disconnect { after_tuples = 2; rejoin_after_s = None } ]
      ~mirrors:[ Source.mirror ~lag_tuples:1 () ]
      (mk_rel 5) (Source.Bandwidth 10.0)
  in
  let ctx, seen, _ = drain ~retry:(policy ~retries:2 ()) [ s ] in
  Alcotest.(check int) "all tuples delivered exactly once" 5
    (List.length seen);
  check_bag "no duplicates from the overlap"
    (Relation.to_list (mk_rel 5))
    seen;
  Alcotest.(check int) "two failed attempts" 2 (Adp_obs.Metrics.count ctx.Ctx.retries);
  Alcotest.(check int) "one failover" 1 (Adp_obs.Metrics.count ctx.Ctx.failovers);
  Alcotest.(check int) "overlap re-streamed" 1 (Source.redelivered s);
  Alcotest.(check (float 1e-6)) "completion time" 1e6 (Ctx.now ctx);
  Alcotest.(check bool) "source healthy on the mirror" true
    (Source.status s = Source.Up)

let test_all_mirrors_die () =
  (* The primary drops for good and the only mirror never answers: after
     both budgets are spent the source is Failed, the run completes, and
     only the prefix was delivered. *)
  let s =
    Source.create ~name:"r"
      ~faults:
        [ Source.Disconnect { after_tuples = 2; rejoin_after_s = None } ]
      ~mirrors:[ Source.mirror ~faults:[ Source.Dead_on_arrival ] () ]
      (mk_rel 5) (Source.Bandwidth 10.0)
  in
  let other = Source.create ~name:"o" (mk_rel 3) (Source.Bandwidth 10.0) in
  let ctx, seen, outcome = drain ~retry:(policy ~retries:2 ()) [ s; other ] in
  Alcotest.(check bool) "run completes" true (outcome = Driver.Exhausted);
  Alcotest.(check int) "partial delivery" (2 + 3) (List.length seen);
  Alcotest.(check bool) "source permanently failed" true
    (Source.status s = Source.Failed);
  Alcotest.(check int) "one failover attempted" 1 (Adp_obs.Metrics.count ctx.Ctx.failovers);
  Alcotest.(check int) "one source lost" 1 (Adp_obs.Metrics.count ctx.Ctx.sources_failed);
  Alcotest.(check bool) "other source unaffected" true
    (Source.exhausted other)

let test_no_timeout_policy_never_hangs () =
  (* Under the wait-forever policy a permanently dead source can never be
     detected; the driver must still terminate, leaving it behind. *)
  let s =
    Source.create ~name:"r"
      ~faults:
        [ Source.Disconnect { after_tuples = 1; rejoin_after_s = None } ]
      (mk_rel 4) Source.Local
  in
  let _, seen, outcome = drain ~retry:Retry.no_timeouts [ s ] in
  Alcotest.(check bool) "terminates" true (outcome = Driver.Exhausted);
  Alcotest.(check int) "prefix only" 1 (List.length seen)

(* ---------------- Full query: failover equals the fault-free run ----- *)

let scale = 0.004

let dataset =
  lazy (Tpch.generate { Tpch.scale; distribution = Tpch.Uniform; seed = 42 })

let q3a = lazy (Workload.query Workload.Q3A)

let faulty_sources ?(mirrors = [ Source.mirror ~lag_tuples:150 () ]) ds q () =
  let srcs = Workload.sources ~model:(Source.Bandwidth 100_000.0) ds q () in
  let lineitem = List.find (fun s -> Source.name s = "lineitem") srcs in
  Source.inject lineitem
    (Source.Disconnect { after_tuples = 300; rejoin_after_s = None });
  List.iter (Source.add_mirror lineitem) mirrors;
  srcs

let run_corrective ?mirrors () =
  let ds = Lazy.force dataset in
  let q = Lazy.force q3a in
  let catalog = Workload.catalog ~with_cardinalities:false ds q in
  let retry = policy ~timeout:0.02 ~retries:2 ~backoff:0.01 () in
  Strategy.run ~label:"faulty" ~retry
    (Strategy.Corrective
       { Corrective.default_config with
         Corrective.poll_interval = 2e4; min_leaf_seen = 50 })
    q catalog
    ~sources:(faulty_sources ?mirrors ds q)

let test_failover_query_matches_fault_free () =
  let ds = Lazy.force dataset in
  let q = Lazy.force q3a in
  let catalog = Workload.catalog ~with_cardinalities:false ds q in
  let clean =
    Strategy.reference q catalog
      ~sources:(Workload.sources ~model:Source.Local ds q)
  in
  let o = run_corrective () in
  Alcotest.(check bool) "failed over at least once" true
    (o.Strategy.report.Report.failovers >= 1);
  Alcotest.(check (float 1e-9)) "full coverage" 1.0
    o.Strategy.report.Report.coverage;
  check_approx_rel
    "mirror overlap deduplicated: result equals the fault-free answer"
    clean o.Strategy.result

let test_failover_query_deterministic () =
  let a = run_corrective () and b = run_corrective () in
  let render (o : Strategy.outcome) =
    (* wall_s is real processor time and legitimately varies. *)
    Format.asprintf "%a|%a" Report.pp_run
      { o.Strategy.report with Report.wall_s = 0.0 }
      (Relation.pp ~limit:max_int) o.Strategy.result
  in
  Alcotest.(check string) "byte-for-byte identical report and result"
    (render a) (render b)

let test_partial_results_without_mirror () =
  let o = run_corrective ~mirrors:[] () in
  let r = o.Strategy.report in
  Alcotest.(check bool) "coverage below 1" true (r.Report.coverage < 1.0);
  Alcotest.(check bool) "coverage above 0" true (r.Report.coverage > 0.0);
  Alcotest.(check int) "no failover possible" 0 r.Report.failovers;
  Alcotest.(check bool) "still produced rows" true (r.Report.result_card > 0)

let suite =
  [ Alcotest.test_case "retry schedule" `Quick test_retry_schedule;
    Alcotest.test_case "backoff jitter deterministic" `Quick
      test_backoff_jitter_deterministic;
    Alcotest.test_case "stall is transient" `Quick test_stall_is_transient;
    Alcotest.test_case "disconnect/rejoin backoff" `Quick
      test_disconnect_rejoin_backoff;
    Alcotest.test_case "failover to lagging mirror" `Quick
      test_failover_to_lagging_mirror;
    Alcotest.test_case "all mirrors die" `Quick test_all_mirrors_die;
    Alcotest.test_case "no-timeout policy terminates" `Quick
      test_no_timeout_policy_never_hangs;
    Alcotest.test_case "failover query = fault-free" `Quick
      test_failover_query_matches_fault_free;
    Alcotest.test_case "failover query deterministic" `Quick
      test_failover_query_deterministic;
    Alcotest.test_case "partial results without mirror" `Quick
      test_partial_results_without_mirror ]
