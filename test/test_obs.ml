(* Observability layer: JSON codec, trace event serialization roundtrips,
   the Chrome trace_event exporter (golden file), the metrics registry and
   its two dump formats, the explain replay, per-event-class coverage of
   the engine's instrumentation hooks, and the headline invariant — a
   traced run and an untraced run are virtual-time identical and produce
   the same answer, including across a kill-and-resume. *)

open Adp_relation
open Adp_exec
open Adp_datagen
open Adp_optimizer
open Adp_core
open Adp_query
open Helpers
module Json = Adp_obs.Json
module Trace = Adp_obs.Trace
module Metrics = Adp_obs.Metrics
module Profile = Adp_obs.Profile
module Calibrate = Adp_obs.Calibrate
module Checkpoint = Adp_recovery.Checkpoint
module Crash = Adp_recovery.Crash
module Wallclock = Adp_obs.Wallclock
module Bjson = Adp_obs.Bjson
module Benchdiff = Adp_obs.Benchdiff

(* Naive substring search (the test image has no [str] dependency). *)
let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  n = 0
  ||
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ---------------- JSON codec ---------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [ ("a", Json.Num 1.0); ("b", Json.Str "x \"quoted\" \n tab\t");
        ("c", Json.List [ Json.Bool true; Json.Null; Json.Num (-2.5) ]);
        ("d", Json.Obj [ ("nested", Json.Num 1e-3) ]);
        ("unicode", Json.Str "σ ⋈ γ") ]
  in
  (match Json.parse (Json.to_string j) with
   | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
   | Error e -> Alcotest.fail e);
  (* Floats round-trip exactly through the shortest representation. *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Num f)) with
      | Ok (Json.Num f') ->
        Alcotest.(check bool) (string_of_float f) true (f = f')
      | _ -> Alcotest.fail "float did not parse back")
    [ 0.1; 1.0 /. 3.0; 1e300; -0.0; 12345.625; Float.min_float ];
  (match Json.parse "{broken" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "garbage accepted")

let test_json_edge_cases () =
  let roundtrip j =
    match Json.parse (Json.to_string j) with
    | Ok j' -> Alcotest.(check bool) "roundtrip" true (j = j')
    | Error e -> Alcotest.fail e
  in
  (* Control characters escape as \u00XX and come back byte-identical;
     quotes, backslashes and multi-byte UTF-8 survive untouched. *)
  roundtrip (Json.Str "\x00\x01\x1f \b \012 \\ \" / σ⋈γ €");
  Alcotest.(check string) "control chars escaped"
    "\"\\u0000\\u0001\\u001f\""
    (Json.to_string (Json.Str "\x00\x01\x1f"));
  (* Foreign \u escapes decode to UTF-8 across the one/two/three-byte
     ranges. *)
  (match Json.parse "\"\\u0041 \\u00e9 \\u20ac\"" with
   | Ok (Json.Str s) ->
     Alcotest.(check string) "\\u decodes to UTF-8" "A \xc3\xa9 \xe2\x82\xac" s
   | Ok _ | Error _ -> Alcotest.fail "\\u escape did not parse");
  (match Json.parse "\"\\u00zz\"" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad \\u escape accepted");
  (* Deep nesting: a 200-level list-in-object tower round-trips. *)
  let deep =
    let rec tower n acc =
      if n = 0 then acc
      else tower (n - 1) (Json.Obj [ ("v", Json.List [ acc ]) ])
    in
    tower 200 (Json.Num 1.0)
  in
  roundtrip deep;
  (* Exotic floats round-trip through the shortest-form printer. *)
  List.iter
    (fun f ->
      match Json.parse (Json.to_string (Json.Num f)) with
      | Ok (Json.Num f') ->
        Alcotest.(check bool) (string_of_float f) true
          (f = f' || (Float.is_integer f && Float.abs f' = Float.abs f))
      | _ -> Alcotest.fail "float did not parse back")
    [ Float.max_float; Float.min_float; 4.9e-324 (* smallest denormal *);
      -0.0; 0.1 +. 0.2; 1.0 /. 3.0; Float.pi; 1e15 -. 1.0; -1e300;
      123456789.123456789 ];
  (* JSON has no non-finite numbers: they print as null by design. *)
  List.iter
    (fun f ->
      Alcotest.(check string) "non-finite prints null" "null"
        (Json.to_string (Json.Num f)))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

(* One event of every class, with distinctive values. *)
let one_of_each : Trace.stamped list =
  [ 0.0, Trace.Phase_opened { id = 0; plan = "(a ⋈ b)" };
    1.5, Trace.Reopt_poll
           { phase = 0; est_cost = 100.25; best_cost = 90.5;
             best_plan = "(b ⋈ a)"; switch_cost = 5.125;
             remaining_fraction = 0.75;
             observed_sel = [ "sig1", 0.5; "sig2", 1e-4 ];
             decision = Trace.Switch };
    2.0, Trace.Plan_switch
           { from_plan = "(a ⋈ b)"; to_plan = "(b ⋈ a)"; reason = "cheaper" };
    3.0, Trace.Comp_join_route { side = "L"; routed_to = "hash"; routed = 42 };
    4.0, Trace.Agg_window_resize
           { node = "γ[g]"; from_window = 64; to_window = 32; reduction = 0.9 };
    5.0, Trace.Retry { source = "r"; attempt = 2; ok = false;
                       next_attempt_s = 1.25 };
    6.0, Trace.Failover { source = "r"; ok = true };
    7.0, Trace.Checkpoint_written { seq = 3; path = "ckpt/3.adpck"; bytes = 512 };
    8.0, Trace.Checkpoint_resumed { seq = 3; path = "ckpt/3.adpck"; phases = 2 };
    9.0, Trace.Stitchup_begin { phases = 2; combos = 6 };
    10.0, Trace.Stitchup_end { output = 7; reused = 3; recomputed = 4 };
    11.0, Trace.Page_out { node = "⋈[a.k=b.k]" };
    12.0, Trace.Phase_closed { id = 0; read = 1000; emitted = 250 };
    13.0, Trace.Node_profile
            { phase = "phase 0"; node = "(a ⋈ b)"; depth = 1;
              self_us = 123.5; tuples_in = 10; tuples_out = 4; probes = 10;
              builds = 9; mem_hw = 7 };
    14.0, Trace.Calibration
            { phase = "stitch-up"; point = "stitch-up"; node = "σ[x](a)";
              est = 20000.0; actual = 25.0; q_error = 800.0; blame = true };
    15.0, Trace.Worker_spawned { worker = 3 };
    16.0, Trace.Worker_died
            { worker = 3; query = "q7"; last_heartbeat_s = 15.875 };
    17.0, Trace.Worker_reclaimed
            { worker = 3; query = "q7"; attempt = 2;
              resume_from = "ckpt/q7" };
    18.0, Trace.Poll_interval_changed
            { from_s = 0.5; to_s = 0.75; found = 0 };
    19.0, Trace.Admission
            { query = "q9"; accepted = false; queue_depth = 16;
              reason = "queue-full" } ]

let test_event_jsonl_roundtrip () =
  (* Through the in-memory codec... *)
  List.iter
    (fun ev ->
      match Trace.of_json (Trace.to_json ev) with
      | Ok ev' -> Alcotest.(check bool) "event roundtrip" true (ev = ev')
      | Error e -> Alcotest.fail e)
    one_of_each;
  (* ...and through an actual file sink, the way `query --trace` writes. *)
  let path = "obs-roundtrip.jsonl" in
  let t = Trace.file ~format:Trace.Jsonl path in
  Alcotest.(check bool) "file sink enabled" true (Trace.enabled t);
  Alcotest.(check bool) "null sink disabled" false (Trace.enabled Trace.null);
  List.iter (fun (at, ev) -> Trace.emit t ~at ev) one_of_each;
  Trace.close t;
  Trace.close t (* idempotent *);
  (match Trace.read_jsonl path with
   | Ok evs ->
     Alcotest.(check bool) "file roundtrip preserves every event" true
       (evs = one_of_each)
   | Error e -> Alcotest.fail e);
  Sys.remove path;
  match Trace.read_jsonl path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file accepted"

let test_chrome_export_golden () =
  let evs =
    [ 0.0, Trace.Phase_opened { id = 0; plan = "scan" };
      1.5, Trace.Page_out { node = "j" };
      2.0, Trace.Phase_closed { id = 0; read = 10; emitted = 3 } ]
  in
  let want =
    "{\"traceEvents\":["
    ^ "{\"name\":\"phase 0\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1,"
    ^ "\"args\":{\"id\":0,\"plan\":\"scan\"}},"
    ^ "{\"name\":\"page_out\",\"ph\":\"i\",\"ts\":1.5,\"pid\":1,\"tid\":1,"
    ^ "\"s\":\"t\",\"args\":{\"node\":\"j\"}},"
    ^ "{\"name\":\"phase 0\",\"ph\":\"E\",\"ts\":2,\"pid\":1,\"tid\":1,"
    ^ "\"args\":{\"id\":0,\"read\":10,\"emitted\":3}}],"
    ^ "\"displayTimeUnit\":\"ms\"}"
  in
  Alcotest.(check string) "chrome trace_event golden" want (Trace.to_chrome evs)

(* ---------------- metrics registry ---------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"tuples" "adp_test_total" in
  let c_labelled =
    Metrics.counter m ~labels:[ "node", "a \"⋈\" b\n" ] "adp_node_test_total"
  in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "counter counts" 42 (Metrics.count c);
  (* Registration is idempotent per (name, labels): the same cell. *)
  Metrics.incr (Metrics.counter m "adp_test_total");
  Alcotest.(check int) "same cell" 43 (Metrics.count c);
  Metrics.incr ~by:7 c_labelled;
  Alcotest.(check int) "labelled cell distinct" 7 (Metrics.count c_labelled);
  Alcotest.(check int) "counter_total sums label sets" 7
    (Metrics.counter_total m "adp_node_test_total");
  (* Same name, different kind: rejected. *)
  (match Metrics.gauge m "adp_test_total" with
   | _ -> Alcotest.fail "kind mismatch accepted"
   | exception Invalid_argument _ -> ());
  let g = Metrics.gauge m ~help:"a gauge" "adp_test_gauge" in
  Metrics.set g 2.5;
  let h = Metrics.histogram m ~buckets:[ 1.0; 10.0 ] "adp_test_hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0 ];
  Alcotest.(check int) "histogram count" 3 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "histogram sum" 55.5 (Metrics.histogram_sum h);
  (* Prometheus text exposition. *)
  let prom = Metrics.to_prometheus m in
  let has s =
    Alcotest.(check bool) ("prometheus has " ^ s) true
      (contains ~needle:s prom)
  in
  has "# TYPE adp_test_total counter";
  has "adp_test_total 43";
  has "adp_test_gauge 2.5";
  (* Label values are escaped. *)
  has "adp_node_test_total{node=\"a \\\"⋈\\\" b\\n\"} 7";
  (* Cumulative buckets with +Inf, _sum and _count. *)
  has "adp_test_hist_bucket{le=\"1\"} 1";
  has "adp_test_hist_bucket{le=\"10\"} 2";
  has "adp_test_hist_bucket{le=\"+Inf\"} 3";
  has "adp_test_hist_sum 55.5";
  has "adp_test_hist_count 3";
  (* Quantile estimates ride as sibling sample names.  With buckets
     [1; 10] over {0.5, 5, 50}: the p50 rank falls mid-bucket (1, 10] and
     interpolates to 5.5; p95 lands in +Inf, capped by the exact max. *)
  Alcotest.(check (float 1e-9)) "p50 interpolated" 5.5
    (Metrics.histogram_quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p95 capped by max" 50.0
    (Metrics.histogram_quantile h 0.95);
  Alcotest.(check (float 1e-9)) "exact max" 50.0 (Metrics.histogram_max h);
  has "adp_test_hist_p50 5.5";
  has "adp_test_hist_p95 50";
  has "adp_test_hist_max 50";
  (* The JSON dump parses and is sorted by name. *)
  match Json.parse (Json.to_string (Metrics.to_json m)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    let names =
      match Json.member "metrics" j with
      | Some (Json.List entries) ->
        List.filter_map
          (fun e -> Option.bind (Json.member "name" e) Json.get_str)
          entries
      | _ -> Alcotest.fail "no metrics array"
    in
    Alcotest.(check bool) "json dump sorted" true
      (names = List.sort compare names && List.length names = 4)

(* Label scopes: the multi-query regression.  Two views of one store
   scoped by different label sets must never collide on same-named
   cells, and pruning a scope retires its cells without unbounded
   accumulation across repeated scope lifetimes. *)
let test_metrics_label_scopes () =
  let m = Metrics.create () in
  let q1 = Metrics.with_labels m [ "query", "q1" ] in
  let q2 = Metrics.with_labels m [ "query", "q2" ] in
  let c0 = Metrics.counter m ~help:"tuples" "adp_scope_total" in
  let c1 = Metrics.counter q1 ~help:"tuples" "adp_scope_total" in
  let c2 = Metrics.counter q2 ~help:"tuples" "adp_scope_total" in
  Metrics.incr ~by:1 c0;
  Metrics.incr ~by:10 c1;
  Metrics.incr ~by:100 c2;
  (* Three distinct cells: the scopes did not clobber each other. *)
  Alcotest.(check int) "root cell" 1 (Metrics.count c0);
  Alcotest.(check int) "q1 cell" 10 (Metrics.count c1);
  Alcotest.(check int) "q2 cell" 100 (Metrics.count c2);
  Alcotest.(check int) "three cells registered" 3 (Metrics.cells m);
  (* Scopes compose: extra labels nest under the scope. *)
  let c1n = Metrics.counter q1 ~labels:[ "node", "j" ] "adp_scope_total" in
  Metrics.incr ~by:7 c1n;
  let prom = Metrics.to_prometheus m in
  Alcotest.(check bool) "scoped labels rendered" true
    (contains ~needle:"adp_scope_total{query=\"q1\",node=\"j\"} 7" prom);
  (* Re-registration through the same scope returns the same cell. *)
  Metrics.incr (Metrics.counter q1 "adp_scope_total");
  Alcotest.(check int) "same scoped cell" 11 (Metrics.count c1);
  (* A cell count seen through any view is the whole store's. *)
  Alcotest.(check int) "views share the store" (Metrics.cells m)
    (Metrics.cells q1);
  (* Pruning q1 retires exactly q1's cells (including nested labels);
     the root and q2 cells survive. *)
  Metrics.prune q1;
  Alcotest.(check int) "q1 cells dropped" 2 (Metrics.cells m);
  Alcotest.(check int) "root survives" 1
    (Metrics.count (Metrics.counter m "adp_scope_total"));
  Alcotest.(check int) "q2 survives" 100
    (Metrics.count (Metrics.counter q2 "adp_scope_total"));
  (* Boundedness: a re-run query that registers and is pruned each
     attempt leaves the store no bigger than a single attempt would. *)
  for attempt = 1 to 50 do
    Metrics.prune q1;
    let c = Metrics.counter q1 "adp_scope_total" in
    Metrics.incr ~by:attempt c;
    let g = Metrics.gauge q1 "adp_scope_gauge" in
    Metrics.set g (float_of_int attempt)
  done;
  Alcotest.(check int) "store stays bounded across attempts" 4
    (Metrics.cells m);
  Alcotest.(check int) "last attempt's value wins" 50
    (Metrics.count (Metrics.counter q1 "adp_scope_total"));
  (* Pruning the root scope (empty label set) clears everything. *)
  Metrics.prune m;
  Alcotest.(check int) "root prune clears the store" 0 (Metrics.cells m)

(* ---------------- traced = untraced (the headline invariant) ------- *)

let q3a_dataset =
  Tpch.generate { Tpch.scale = 0.004; distribution = Tpch.Uniform; seed = 3 }

(* A mis-costed CQP workload: pessimal initial plan over Q3A, windowed
   pre-aggregation, a tight poll — guaranteed to switch (same setup as the
   strategies suite). *)
let run_q3a ?trace ?metrics ?profile ?calibrate ?wall () =
  let q = Workload.query Workload.Q3A in
  let catalog = Workload.catalog ~with_cardinalities:true q3a_dataset q in
  let sources () = Workload.sources q3a_dataset q () in
  let sels = Adp_stats.Selectivity.create () in
  let bad = (Optimizer.pessimal q catalog sels).Optimizer.spec in
  let cfg =
    { Corrective.default_config with
      poll_interval = 5e3; switch_threshold = 0.95; min_leaf_seen = 100 }
  in
  Strategy.run ~preagg:Optimizer.Auto ~label:"obs" ~initial_plan:bad
    ?trace ?metrics ?profile ?calibrate ?wall (Strategy.Corrective cfg) q
    catalog ~sources

let normalize r = { r with Report.wall_s = 0.0 }

let check_same_report msg (a : Report.run) (b : Report.run) =
  (* wall_s is real elapsed time; everything else must be bit-identical. *)
  Alcotest.(check bool) msg true (normalize a = normalize b)

let test_tracing_is_free () =
  let plain = run_q3a () in
  let trace = Trace.memory () in
  let metrics = Metrics.create () in
  let traced = run_q3a ~trace ~metrics () in
  check_same_report "traced report = untraced report" plain.Strategy.report
    traced.Strategy.report;
  check_bag "traced result = untraced result"
    (Relation.to_list plain.Strategy.result)
    (Relation.to_list traced.Strategy.result);
  (* The trace actually recorded the adaptation... *)
  let evs = Trace.events trace in
  Alcotest.(check bool) "trace non-empty" true (evs <> []);
  Alcotest.(check bool) "records the plan switch" true
    (List.exists
       (function _, Trace.Plan_switch _ -> true | _ -> false)
       evs);
  (* ...with timestamps that never exceed the run's own virtual clock,
     in non-decreasing order. *)
  let times = List.map fst evs in
  Alcotest.(check bool) "timestamps monotone" true
    (List.for_all2 (fun a b -> a <= b)
       (List.filteri (fun i _ -> i < List.length times - 1) times)
       (List.tl times));
  Alcotest.(check bool) "timestamps within the run" true
    (List.for_all
       (fun t -> t >= 0.0 && t <= plain.Strategy.report.Report.time_s *. 1e6)
       times);
  (* Metrics agree with the report where both count the same thing. *)
  Alcotest.(check int) "result tuples counted" 0
    (Metrics.count (Metrics.counter metrics "adp_retries_total"))

(* Every adaptive decision class is exercised and emits its typed event. *)
let count_events trace pred =
  List.length (List.filter (fun (_, ev) -> pred ev) (Trace.events trace))

let test_cqp_event_classes () =
  let trace = Trace.memory () in
  let o = run_q3a ~trace () in
  let stats =
    match o.Strategy.corrective_stats with
    | Some s -> s
    | None -> Alcotest.fail "expected corrective stats"
  in
  Alcotest.(check bool) "plan actually switched" true
    (stats.Corrective.phases >= 2);
  let count p = count_events trace p in
  Alcotest.(check int) "one open per phase" stats.Corrective.phases
    (count (function Trace.Phase_opened _ -> true | _ -> false));
  Alcotest.(check int) "one close per phase" stats.Corrective.phases
    (count (function Trace.Phase_closed _ -> true | _ -> false));
  Alcotest.(check int) "one switch per extra phase"
    (stats.Corrective.phases - 1)
    (count (function Trace.Plan_switch _ -> true | _ -> false));
  Alcotest.(check bool) "polls recorded" true
    (count (function Trace.Reopt_poll _ -> true | _ -> false) > 0);
  (* Each switch is backed by a poll that decided Switch, with evidence. *)
  let switch_polls =
    List.filter
      (function
        | _, Trace.Reopt_poll { decision = Trace.Switch; _ } -> true
        | _ -> false)
      (Trace.events trace)
  in
  Alcotest.(check int) "switch decisions = switches"
    (stats.Corrective.phases - 1)
    (List.length switch_polls);
  List.iter
    (function
      | _, Trace.Reopt_poll { observed_sel; est_cost; best_cost; _ } ->
        Alcotest.(check bool) "poll carries evidence" true (observed_sel <> []);
        Alcotest.(check bool) "switch was justified" true
          (best_cost < est_cost)
      | _ -> ())
    switch_polls;
  (* Multi-phase run: the stitch-up brackets are present and paired. *)
  Alcotest.(check int) "stitchup begin" 1
    (count (function Trace.Stitchup_begin _ -> true | _ -> false));
  Alcotest.(check int) "stitchup end" 1
    (count (function Trace.Stitchup_end _ -> true | _ -> false));
  (* Phase_closed totals account for every source tuple exactly once. *)
  let closed_read =
    List.fold_left
      (fun acc -> function
        | _, Trace.Phase_closed { read; _ } -> acc + read
        | _ -> acc)
      0 (Trace.events trace)
  in
  let log_read =
    List.fold_left
      (fun acc (p : Corrective.phase_info) -> acc + p.Corrective.read)
      0 stats.Corrective.phase_log
  in
  Alcotest.(check int) "phase_closed read totals match the log" log_read
    closed_read

let mk_rel n = rel [ "t.k"; "t.p" ] (List.init n (fun i -> [ vi i; vi 0 ]))

let retry_policy =
  { Retry.default_policy with
    Retry.timeout_s = 0.2; max_retries = 2; backoff_initial_s = 0.1;
    backoff_multiplier = 2.0; jitter = 0.0 }

let test_fault_events () =
  (* Permanent disconnect with a lagging mirror: two failed reconnect
     attempts, then a successful failover (test_faults' scenario). *)
  let s =
    Source.create ~name:"r"
      ~faults:
        [ Source.Disconnect { after_tuples = 2; rejoin_after_s = None } ]
      ~mirrors:[ Source.mirror ~lag_tuples:1 () ]
      (mk_rel 5) (Source.Bandwidth 10.0)
  in
  let trace = Trace.memory () in
  let ctx =
    Ctx.create ~costs:{ Cost_model.default with Cost_model.reconnect = 0.0 }
      ~trace ()
  in
  let consume _ _ = () in
  (match Driver.run ctx ~sources:[ s ] ~consume ~retry:retry_policy () with
   | Driver.Exhausted -> ()
   | Driver.Switched | Driver.Stopped -> Alcotest.fail "unexpected switch");
  let retries =
    List.filter_map
      (function
        | _, Trace.Retry { source; attempt; ok; next_attempt_s } ->
          Some (source, attempt, ok, next_attempt_s)
        | _ -> None)
      (Trace.events trace)
  in
  Alcotest.(check int) "both failed attempts traced" 2 (List.length retries);
  List.iter
    (fun (source, _, ok, next_attempt_s) ->
      Alcotest.(check string) "retry names the source" "r" source;
      Alcotest.(check bool) "reconnects failed" false ok;
      Alcotest.(check bool) "next attempt scheduled" true
        (next_attempt_s > 0.0))
    retries;
  Alcotest.(check int) "failover traced" 1
    (count_events trace
       (function Trace.Failover { ok = true; _ } -> true | _ -> false));
  (* Attempt numbers are 1, 2. *)
  Alcotest.(check (list int)) "attempts numbered" [ 1; 2 ]
    (List.map (fun (_, attempt, _, _) -> attempt) retries)

let test_page_out_events () =
  (* Memory pressure under a pinned plan: Page_out events mirror the
     report's paged_out counter. *)
  let q = Workload.query Workload.Q3A in
  let ds =
    Tpch.generate { Tpch.scale = 0.002; distribution = Tpch.Uniform; seed = 42 }
  in
  let catalog = Workload.catalog ~with_cardinalities:true ds q in
  let sources () = Workload.sources ds q () in
  let trace = Trace.memory () in
  let cfg =
    { Corrective.default_config with
      poll_interval = 2e3; switch_threshold = 0.0; memory_budget = Some 200 }
  in
  let o =
    Strategy.run ~label:"mem" ~trace (Strategy.Corrective cfg) q catalog
      ~sources
  in
  let pages =
    count_events trace (function Trace.Page_out _ -> true | _ -> false)
  in
  Alcotest.(check bool) "memory pressure paged out" true (pages > 0);
  Alcotest.(check int) "events mirror the report counter"
    o.Strategy.report.Report.paged_out pages

let test_window_resize_events () =
  (* All-distinct groups shrink the pre-aggregation window (64 -> ... -> 1):
     every resize is traced with the observed reduction. *)
  let schema_of = function
    | "d" -> Schema.make [ "d.g"; "d.v" ]
    | name -> Alcotest.fail ("unknown relation " ^ name)
  in
  let trace = Trace.memory () in
  let ctx = Ctx.create ~trace () in
  let spec =
    Plan.preagg
      ~mode:(Plan.Windowed { initial = 64; max_window = 1024 })
      ~group_cols:[ "d.g" ]
      ~aggs:[ Aggregate.sum ~name:"s" (Expr.col "d.v") ]
      (Plan.scan "d")
  in
  let plan = Plan.instantiate ctx spec ~schema_of in
  let tuples = List.init 300 (fun i -> [| vi i; vi i |]) in
  let _ =
    List.concat_map (fun t -> Plan.push plan ~source:"d" t) tuples
    @ Plan.flush plan
  in
  let resizes =
    List.filter_map
      (function
        | _, Trace.Agg_window_resize { from_window; to_window; reduction; _ } ->
          Some (from_window, to_window, reduction)
        | _ -> None)
      (Trace.events trace)
  in
  Alcotest.(check bool) "window resizes traced" true (resizes <> []);
  List.iter
    (fun (from_window, to_window, reduction) ->
      Alcotest.(check bool) "shrinking" true (to_window < from_window);
      Alcotest.(check bool) "useless preagg observed" true (reduction > 0.5))
    resizes;
  (* The final resize lands on the pass-through window of 1. *)
  match List.rev resizes with
  | (_, to_window, _) :: _ ->
    Alcotest.(check int) "shrank to pass-through" 1 to_window
  | [] -> ()

let test_comp_join_route_events () =
  (* A poisoned early high key flips the router from merge to hash. *)
  let lsch = keyed_schema "l" and rsch = keyed_schema "r" in
  let trace = Trace.memory () in
  let ctx = Ctx.create ~trace () in
  let cj =
    Comp_join.create ctx ~variant:Comp_join.Naive ~left_schema:lsch
      ~right_schema:rsch ~left_key:[ "l.k" ] ~right_key:[ "r.k" ]
  in
  let sorted n = List.init n (fun i -> [| vi i; vi 0 |]) in
  List.iter
    (fun t -> ignore (Comp_join.insert cj Comp_join.L t))
    ([| vi 1000; vi 0 |] :: sorted 50);
  List.iter (fun t -> ignore (Comp_join.insert cj Comp_join.R t)) (sorted 50);
  ignore (Comp_join.finish cj);
  let flips =
    List.filter_map
      (function
        | _, Trace.Comp_join_route { side; routed_to; _ } ->
          Some (side, routed_to)
        | _ -> None)
      (Trace.events trace)
  in
  (* L: poison tuple routes to merge, the rest to hash = 2 decisions;
     R: everything merges = 1 decision.  Only changes are traced. *)
  Alcotest.(check bool) "routing flips traced" true
    (List.mem ("L", "hash") flips);
  Alcotest.(check bool) "steady routing is silent" true (List.length flips <= 4)

(* ---------------- profiler and calibration ---------------- *)

let test_profile_spans () =
  let p = Profile.create () in
  let root = Profile.span p ~depth:0 "root" in
  let child = Profile.span p ~depth:1 "child" in
  Profile.add_time root 10.0;
  Profile.add_time child 5.0;
  Profile.add_in child 3;
  Profile.add_out child 2;
  Profile.add_probes child 3;
  Profile.add_builds child 1;
  Profile.note_mem child 7;
  Profile.note_mem child 4 (* high-water only rises *);
  (* Idempotent per (phase, node): same span, accumulates. *)
  Profile.add_time (Profile.span p "root") 2.0;
  (* A new phase opens fresh spans for the same node names. *)
  Profile.set_phase p "phase 1";
  Alcotest.(check string) "phase renamed" "phase 1" (Profile.phase p);
  Profile.add_time (Profile.span p ~depth:0 "root") 1.0;
  let infos = Profile.spans p in
  Alcotest.(check int) "three spans" 3 (List.length infos);
  let find ph node =
    List.find
      (fun (i : Profile.info) -> i.Profile.phase = ph && i.Profile.node = node)
      infos
  in
  Alcotest.(check (float 1e-9)) "root self accumulates" 12.0
    (find "phase 0" "root").Profile.self_us;
  let c = find "phase 0" "child" in
  Alcotest.(check int) "tuples in" 3 c.Profile.tuples_in;
  Alcotest.(check int) "mem high-water kept" 7 c.Profile.mem_hw;
  Alcotest.(check (float 1e-9)) "new phase span distinct" 1.0
    (find "phase 1" "root").Profile.self_us;
  (* Cumulative time of a pre-order listing: parent + deeper run. *)
  let phase0 =
    List.filter (fun (i : Profile.info) -> i.Profile.phase = "phase 0") infos
  in
  Alcotest.(check (float 1e-9)) "cumulative = self + subtree" 17.0
    (Profile.cumulative_us phase0 0);
  Alcotest.(check (float 1e-9)) "leaf cumulative = self" 5.0
    (Profile.cumulative_us phase0 1);
  (* Totals aggregate the same node across phases. *)
  let totals = Profile.totals p in
  let root_total =
    List.find (fun (i : Profile.info) -> i.Profile.node = "root") totals
  in
  Alcotest.(check (float 1e-9)) "totals sum phases" 13.0
    root_total.Profile.self_us;
  Alcotest.(check string) "totals phase is *" "*" root_total.Profile.phase;
  (* The rendering and JSON dump include every span. *)
  let out = Format.asprintf "%a" (Profile.render ?annot:None) p in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("render has " ^ s) true (contains ~needle:s out))
    [ "phase 0:"; "phase 1:"; "root"; "child" ];
  match Json.parse (Json.to_string (Profile.to_json p)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_calibrate_ledger () =
  Alcotest.(check (float 1e-9)) "q-error symmetric over" 100.0
    (Calibrate.q_error ~est:10.0 ~actual:1000.0);
  Alcotest.(check (float 1e-9)) "q-error symmetric under" 100.0
    (Calibrate.q_error ~est:1000.0 ~actual:10.0);
  Alcotest.(check (float 1e-9)) "q-error floors empty nodes" 1.0
    (Calibrate.q_error ~est:0.0 ~actual:0.5);
  let c = Calibrate.create () in
  Calibrate.observe c ~phase:"phase 0" ~at:0.1 ~point:Calibrate.Poll
    ~node:"a" ~est:10.0 ~actual:1000.0;
  Calibrate.observe c ~phase:"phase 0" ~at:0.2 ~point:Calibrate.Phase_close
    ~node:"a" ~est:10.0 ~actual:20.0;
  Calibrate.observe c ~phase:"phase 0" ~at:0.2 ~point:Calibrate.Poll
    ~node:"b" ~est:5.0 ~actual:30.0;
  Alcotest.(check int) "all observations kept" 3
    (List.length (Calibrate.observations c));
  (* latest_by_node supersedes: node a's q-error fell from 100 to 2, so
     the worst standing misestimate is now b. *)
  Alcotest.(check int) "latest per node" 2
    (List.length (Calibrate.latest_by_node c));
  (match Calibrate.worst c with
   | Some (node, q) ->
     Alcotest.(check string) "worst node" "b" node;
     Alcotest.(check (float 1e-9)) "worst q" 6.0 q
   | None -> Alcotest.fail "no worst node");
  Calibrate.decide c ~phase:"phase 0" ~at:0.3
    ~verdict:(Calibrate.Kept_guard "max-phases") ~current_cost:100.0
    ~best_cost:90.0 ~switch_cost:120.0 ~threshold:0.8;
  (match Calibrate.decisions c with
   | [ d ] ->
     Alcotest.(check (float 1e-9)) "margin = switch - bar" 40.0
       d.Calibrate.d_margin;
     (match d.Calibrate.d_blame with
      | Some (node, _) -> Alcotest.(check string) "decision blames b" "b" node
      | None -> Alcotest.fail "decision carries no blame")
   | ds -> Alcotest.failf "expected 1 decision, got %d" (List.length ds));
  let out = Format.asprintf "%a" Calibrate.render c in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("render has " ^ s) true (contains ~needle:s out))
    [ "blame: b (q-error 6.00)"; "keep (guard: max-phases)"; "q-error" ];
  match Json.parse (Json.to_string (Calibrate.to_json c)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* The tentpole invariant: attaching the profiler and the calibration
   ledger changes nothing — bit-identical report, same answer — while the
   ledger still catches the mis-costed plan and names the blame node. *)
let test_profiling_is_free () =
  let plain = run_q3a () in
  let profile = Profile.create () in
  let calibrate = Calibrate.create () in
  let trace = Trace.memory () in
  let profiled = run_q3a ~trace ~profile ~calibrate () in
  check_same_report "profiled report = unprofiled report"
    plain.Strategy.report profiled.Strategy.report;
  check_bag "profiled result = unprofiled result"
    (Relation.to_list plain.Strategy.result)
    (Relation.to_list profiled.Strategy.result);
  (* The profile attributes real work, per phase and in stitch-up... *)
  let infos = Profile.spans profile in
  Alcotest.(check bool) "spans recorded" true (infos <> []);
  Alcotest.(check bool) "stitch-up profiled" true
    (List.exists
       (fun (i : Profile.info) -> i.Profile.phase = "stitch-up")
       infos);
  Alcotest.(check bool) "multiple phases profiled" true
    (List.exists
       (fun (i : Profile.info) -> i.Profile.phase = "phase 1")
       infos);
  (* ...and never invents time: everything attributed was also charged. *)
  let attributed =
    List.fold_left
      (fun acc (i : Profile.info) -> acc +. i.Profile.self_us)
      0.0 infos
  in
  Alcotest.(check bool) "attribution within the charged clock" true
    (attributed > 0.0
     && attributed
        <= plain.Strategy.report.Report.time_s *. 1e6 *. (1.0 +. 1e-9));
  (* The ledger saw the switch and blames a node for it. *)
  Alcotest.(check bool) "a switch was recorded" true
    (List.exists
       (fun d -> d.Calibrate.d_verdict = Calibrate.Switched)
       (Calibrate.decisions calibrate));
  Alcotest.(check bool) "blame assigned" true (Calibrate.worst calibrate <> None);
  (* Traced + profiled: the end-of-run summaries land in the trace, one
     Node_profile per span, one Calibration per node, exactly one blamed. *)
  Alcotest.(check int) "one Node_profile per span" (List.length infos)
    (count_events trace
       (function Trace.Node_profile _ -> true | _ -> false));
  Alcotest.(check int) "one Calibration per node"
    (List.length (Calibrate.latest_by_node calibrate))
    (count_events trace
       (function Trace.Calibration _ -> true | _ -> false));
  Alcotest.(check int) "exactly one blame marker" 1
    (count_events trace
       (function Trace.Calibration { blame = true; _ } -> true | _ -> false));
  (* The explain replay folds both summaries in. *)
  let out = Format.asprintf "%a" Trace.explain (Trace.events trace) in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("explain has " ^ s) true (contains ~needle:s out))
    [ "per-node profile"; "calibration (latest per node)" ]

(* ---------------- checkpoints and resume ---------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let e2e_dataset =
  Tpch.generate { Tpch.scale = 0.002; distribution = Tpch.Uniform; seed = 11 }

let e2e_query =
  Sql_parser.parse ~schema_of:Tpch.schema_of
    "SELECT orders.o_orderkey, lineitem.l_quantity FROM orders, lineitem \
     WHERE orders.o_orderkey = lineitem.l_orderkey AND orders.o_orderdate < \
     DATE '1995-03-15'"

let run_e2e ?trace ?metrics ?profile ?calibrate ?checkpoint ?resume_from
    ?(crash = []) () =
  let catalog = Workload.catalog e2e_dataset e2e_query in
  let sources () = Workload.sources e2e_dataset e2e_query () in
  let cfg =
    { Corrective.default_config with
      poll_interval = 2e4; checkpoint; resume_from; crash }
  in
  Strategy.run ~label:"e2e" ?trace ?metrics ?profile ?calibrate
    (Strategy.Corrective cfg) e2e_query catalog ~sources

let test_resume_traced_equals_untraced () =
  let dir = "obs-ckpt-test" in
  rm_rf dir;
  let policy = Checkpoint.policy ~every_tuples:500 ~dir () in
  (* A traced run that crashes mid-phase still traces its checkpoints. *)
  let crash_trace = Trace.memory () in
  (match
     run_e2e ~trace:crash_trace ~checkpoint:policy
       ~crash:[ Crash.After_tuples 2000 ] ()
   with
   | _ -> Alcotest.fail "expected crash"
   | exception Crash.Crashed _ -> ());
  Alcotest.(check bool) "checkpoint writes traced" true
    (count_events crash_trace
       (function Trace.Checkpoint_written { bytes; _ } -> bytes > 0
               | _ -> false)
     > 0);
  (* Resume untraced and traced: byte-identical reports and answers. *)
  let plain = run_e2e ~resume_from:dir () in
  let trace = Trace.memory () in
  let metrics = Metrics.create () in
  let traced = run_e2e ~trace ~metrics ~resume_from:dir () in
  check_same_report "resumed traced report = untraced" plain.Strategy.report
    traced.Strategy.report;
  check_bag "resumed traced result = untraced"
    (Relation.to_list plain.Strategy.result)
    (Relation.to_list traced.Strategy.result);
  Alcotest.(check int) "resume event traced" 1
    (count_events trace
       (function Trace.Checkpoint_resumed { phases; _ } -> phases > 0
               | _ -> false));
  (* And the resumed answer is the uninterrupted answer. *)
  let want = run_e2e () in
  check_bag "resumed = uninterrupted"
    (Relation.to_list traced.Strategy.result)
    (Relation.to_list want.Strategy.result);
  rm_rf dir

let test_resume_profiled_equals_unprofiled () =
  let dir = "obs-prof-ckpt-test" in
  rm_rf dir;
  let policy = Checkpoint.policy ~every_tuples:500 ~dir () in
  (* A profiled run that crashes mid-phase keeps its pre-crash spans. *)
  let crash_profile = Profile.create () in
  (match
     run_e2e ~profile:crash_profile ~calibrate:(Calibrate.create ())
       ~checkpoint:policy ~crash:[ Crash.After_tuples 2000 ] ()
   with
   | _ -> Alcotest.fail "expected crash"
   | exception Crash.Crashed _ -> ());
  Alcotest.(check bool) "pre-crash work attributed" true
    (Profile.spans crash_profile <> []);
  (* Resume unprofiled and profiled: byte-identical reports and answers. *)
  let plain = run_e2e ~resume_from:dir () in
  let profile = Profile.create () in
  let profiled =
    run_e2e ~profile ~calibrate:(Calibrate.create ()) ~resume_from:dir ()
  in
  check_same_report "resumed profiled report = unprofiled"
    plain.Strategy.report profiled.Strategy.report;
  check_bag "resumed profiled result = unprofiled"
    (Relation.to_list plain.Strategy.result)
    (Relation.to_list profiled.Strategy.result);
  (* The forced phase switch shows up as distinct profile phases: the
     residual phase plus the stitch-up at least. *)
  let phases =
    List.sort_uniq compare
      (List.map
         (fun (i : Profile.info) -> i.Profile.phase)
         (Profile.spans profile))
  in
  Alcotest.(check bool) "residual phase and stitch-up profiled" true
    (List.length phases >= 2 && List.mem "stitch-up" phases);
  rm_rf dir

(* ---------------- explain replay ---------------- *)

let test_explain_renders_run () =
  let trace = Trace.memory () in
  let _ = run_q3a ~trace () in
  let out = Format.asprintf "%a" Trace.explain (Trace.events trace) in
  let has s =
    Alcotest.(check bool) ("explain mentions " ^ s) true
      (contains ~needle:s out)
  in
  has "phase 0 opened";
  has "re-opt poll";
  has "evidence: sel";
  has "plan switch";
  has "stitch-up";
  has "events spanning";
  (* The summary counts agree with the events. *)
  has
    (Printf.sprintf "switches %d"
       (count_events trace
          (function Trace.Plan_switch _ -> true | _ -> false)))

(* ---------------- wall-clock sidecar ---------------- *)

(* The tentpole invariant extended to hardware time: attaching the wall
   recorder (which reads gettimeofday and Gc state at every charge)
   changes nothing the engine computes — bit-identical report, same
   answer, bit-identical decision ledger — while the recorder still
   attributes real time and allocation to the run's spans. *)
let test_wall_capture_is_free () =
  let cal_plain = Calibrate.create () in
  let plain = run_q3a ~calibrate:cal_plain () in
  let cal_wall = Calibrate.create () in
  let wall = Wallclock.create ~sample_every:4 () in
  let walled = run_q3a ~calibrate:cal_wall ~wall () in
  check_same_report "wall-captured report = bare report"
    plain.Strategy.report walled.Strategy.report;
  check_bag "wall-captured result = bare result"
    (Relation.to_list plain.Strategy.result)
    (Relation.to_list walled.Strategy.result);
  Alcotest.(check bool) "decision ledger bit-identical" true
    (Calibrate.decisions cal_plain = Calibrate.decisions cal_wall);
  (* ... and the sidecar actually recorded the run. *)
  let infos = Wallclock.spans wall in
  Alcotest.(check bool) "wall spans recorded" true (infos <> []);
  Alcotest.(check bool) "wall self-time attributed" true
    (List.exists (fun (i : Wallclock.info) -> i.Wallclock.self_s > 0.0) infos);
  Alcotest.(check bool) "sampler ticked" true (Wallclock.sample_count wall > 0);
  let g = Wallclock.gc_totals wall in
  Alcotest.(check bool) "allocation observed" true
    (g.Wallclock.g_minor_words > 0.0);
  Alcotest.(check bool) "folded export non-empty" true
    (Wallclock.to_folded wall <> "");
  (match Json.parse (Wallclock.to_perfetto wall) with
   | Error m -> Alcotest.fail ("perfetto export is not JSON: " ^ m)
   | Ok j ->
     Alcotest.(check bool) "perfetto export has events" true
       (match Json.member "traceEvents" j with
        | Some (Json.List (_ :: _)) -> true
        | _ -> false));
  let m = Metrics.create () in
  Wallclock.sync_metrics wall m;
  let prom = Metrics.to_prometheus m in
  List.iter
    (fun name ->
      Alcotest.(check bool) ("prometheus dump carries " ^ name) true
        (contains ~needle:name prom))
    [ "adp_wall_elapsed_seconds"; "adp_wall_samples"; "adp_gc_minor_words";
      "adp_gc_major_collections" ]

(* Recorder mechanics that don't need an engine run: the monotonic
   timebase, scoped phase keys, wait buckets staying out of the span
   tree, and the µs fallback for runs too short to tick the sampler. *)
let test_wall_recorder_mechanics () =
  let a = Wallclock.monotonic_s () in
  let b = Wallclock.monotonic_s () in
  Alcotest.(check bool) "monotonic probe never steps back" true (b >= a);
  let w = Wallclock.create ~sample_every:1000000 () in
  Wallclock.set_scope w "q:42";
  Wallclock.set_phase w "phase 0";
  Wallclock.attribute w None;
  Wallclock.note_wait w "(driver wait)";
  Wallclock.note_event w "poll";
  Wallclock.set_scope w "";
  (match Wallclock.spans w with
   | [] -> Alcotest.fail "no spans"
   | infos ->
     Alcotest.(check bool) "scope prefixes the phase key" true
       (List.for_all
          (fun (i : Wallclock.info) -> i.Wallclock.phase = "q:42:phase 0")
          infos));
  Alcotest.(check int) "marks recorded" 1 (List.length (Wallclock.marks w));
  Alcotest.(check int) "sampler never ticked" 0 (Wallclock.sample_count w);
  (* Zero sampler ticks still yields a folded export (µs weights). *)
  Alcotest.(check bool) "folded export falls back to self-time" true
    (Wallclock.to_folded w <> "");
  (* Buckets must not adopt children: nothing may claim a wait span as
     its stack parent. *)
  let folded = Wallclock.to_folded w in
  List.iter
    (fun line ->
      if line <> "" && contains ~needle:"(driver wait);" line then
        Alcotest.failf "wait bucket adopted a child: %s" line)
    (String.split_on_char '\n' folded)

(* ---------------- histogram quantile edges ---------------- *)

let test_histogram_quantile_edges () =
  let m = Metrics.create () in
  let empty = Metrics.histogram m ~buckets:[ 1.0; 10.0 ] "adp_empty" in
  Alcotest.(check int) "empty: count" 0 (Metrics.histogram_count empty);
  Alcotest.(check (float 0.0)) "empty: sum" 0.0 (Metrics.histogram_sum empty);
  Alcotest.(check (float 0.0)) "empty: max" 0.0 (Metrics.histogram_max empty);
  Alcotest.(check (float 0.0)) "empty: p50 is 0" 0.0
    (Metrics.histogram_quantile empty 0.5);
  let single = Metrics.histogram m ~buckets:[ 1.0; 10.0 ] "adp_single" in
  Metrics.observe single 5.0;
  Alcotest.(check int) "single: count" 1 (Metrics.histogram_count single);
  Alcotest.(check (float 0.0)) "single: max is the sample" 5.0
    (Metrics.histogram_max single);
  Alcotest.(check (float 0.0)) "single: p100 is the sample" 5.0
    (Metrics.histogram_quantile single 1.0);
  let p50 = Metrics.histogram_quantile single 0.5 in
  Alcotest.(check bool) "single: p50 within the sample's bucket" true
    (p50 > 1.0 && p50 <= 5.0);
  let equal = Metrics.histogram m ~buckets:[ 1.0; 10.0 ] "adp_equal" in
  for _ = 1 to 10 do Metrics.observe equal 7.0 done;
  Alcotest.(check int) "all-equal: count" 10 (Metrics.histogram_count equal);
  Alcotest.(check (float 1e-9)) "all-equal: sum" 70.0
    (Metrics.histogram_sum equal);
  Alcotest.(check (float 0.0)) "all-equal: p100 is the sample" 7.0
    (Metrics.histogram_quantile equal 1.0);
  List.iter
    (fun q ->
      let v = Metrics.histogram_quantile equal q in
      Alcotest.(check bool)
        (Printf.sprintf "all-equal: p%.0f bounded by the max" (100.0 *. q))
        true
        (v > 0.0 && v <= 7.0))
    [ 0.25; 0.5; 0.95 ]

(* ---------------- variance-aware bench gating ---------------- *)

let doc cells = { Bjson.bench = "t"; scale = 0.02; cells }

let trio id (mn, md, p95) =
  [ Bjson.wall (id ^ "-wall-min") mn; Bjson.wall (id ^ "-wall-median") md;
    Bjson.wall (id ^ "-wall-p95") p95 ]

let diff_ok ?time_tol ?wall_tol b c =
  match Benchdiff.diff ?time_tol ?wall_tol ~baseline:b ~current:c () with
  | Ok o -> o
  | Error m -> Alcotest.fail m

let test_benchdiff_zero_and_nan () =
  (* Regression: a zero-valued baseline time cell used to make the old
     relative-error math fragile.  Two zeros are equal... *)
  let z = doc [ Bjson.time "t/zero" 0.0; Bjson.time "t/busy" 1.0 ] in
  let o = diff_ok z z in
  Alcotest.(check (list string)) "zero baseline vs zero current passes" []
    o.Benchdiff.o_breaches;
  Alcotest.(check int) "both time cells gated" 2 o.Benchdiff.o_gated;
  (* ...and zero -> nonzero is a real breach, not a NaN pass. *)
  let n =
    doc [ Bjson.time "t/zero" 0.1; Bjson.time "t/busy" 1.0 ]
  in
  let o = diff_ok z n in
  Alcotest.(check int) "zero -> nonzero breaches" 1
    (List.length o.Benchdiff.o_breaches);
  (* A wall trio with a 0 cell must not divide by zero: spread uses the
     5 ms floor and the gate still fires on a real slowdown. *)
  let b = doc (trio "k" (0.0, 0.010, 0.010)) in
  let c = doc (trio "k" (0.0, 0.200, 0.200)) in
  let o = diff_ok b c in
  Alcotest.(check int) "zero-valued wall cell still gates" 1
    (List.length o.Benchdiff.o_breaches);
  (* Non-finite values are explicit breaches, never silent passes. *)
  let bad = doc [ Bjson.time "t/busy" Float.nan ] in
  let o = diff_ok (doc [ Bjson.time "t/busy" 1.0 ]) bad in
  Alcotest.(check int) "NaN current breaches" 1
    (List.length o.Benchdiff.o_breaches);
  let o = diff_ok bad bad in
  Alcotest.(check int) "NaN baseline breaches too" 1
    (List.length o.Benchdiff.o_breaches)

let test_benchdiff_wall_gate () =
  let base = doc (trio "k" (0.010, 0.011, 0.012)) in
  (* Unchanged rebuild: identical trio passes and is counted as gated. *)
  let o = diff_ok base base in
  Alcotest.(check (list string)) "unchanged trio passes" []
    o.Benchdiff.o_breaches;
  Alcotest.(check int) "median gated variance-aware" 1
    o.Benchdiff.o_wall_gated;
  (* A ~2x slowdown with tight repetitions breaches... *)
  let slow = doc (trio "k" (0.021, 0.022, 0.023)) in
  let o = diff_ok base slow in
  Alcotest.(check int) "2x slowdown gated" 1
    (List.length o.Benchdiff.o_breaches);
  (* ...a speedup never does (one-sided)... *)
  let fast = doc (trio "k" (0.004, 0.005, 0.006)) in
  let o = diff_ok base fast in
  Alcotest.(check (list string)) "speedup passes" [] o.Benchdiff.o_breaches;
  (* ...noisy repetitions widen the effective tolerance past the same
     2x delta... *)
  let noisy_base = doc (trio "k" (0.010, 0.011, 0.030)) in
  let o = diff_ok noisy_base slow in
  Alcotest.(check (list string)) "spread widens the tolerance" []
    o.Benchdiff.o_breaches;
  (* ...and sub-floor trios are informational noise. *)
  let tiny = doc (trio "k" (0.0005, 0.001, 0.0015)) in
  let tiny2 = doc (trio "k" (0.001, 0.002, 0.003)) in
  let o = diff_ok tiny tiny2 in
  Alcotest.(check (list string)) "sub-floor trio passes" []
    o.Benchdiff.o_breaches;
  Alcotest.(check int) "sub-floor trio not gated" 0 o.Benchdiff.o_wall_gated;
  (* Lone wall cells (no trio) stay informational, as before. *)
  let lone_b = doc [ Bjson.wall "w" 0.010 ] in
  let lone_c = doc [ Bjson.wall "w" 10.0 ] in
  let o = diff_ok lone_b lone_c in
  Alcotest.(check (list string)) "lone wall cell informational" []
    o.Benchdiff.o_breaches;
  Alcotest.(check int) "lone wall cell counted" 1 o.Benchdiff.o_wall_info;
  (* Incomparable documents are errors, not breaches. *)
  (match
     Benchdiff.diff ~baseline:base
       ~current:{ base with Bjson.bench = "other" } ()
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bench id mismatch must be an error");
  match
    Benchdiff.diff ~baseline:base ~current:{ base with Bjson.scale = 0.1 } ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "scale mismatch must be an error"

(* Bjson documents written by the harness parse back bit-equal. *)
let test_bjson_roundtrip () =
  let d =
    { Bjson.bench = "roundtrip"; scale = 0.02;
      cells =
        [ Bjson.time "a/t" 1.25; Bjson.count "a/n" 7; Bjson.flag "a/ok" true;
          Bjson.wall "a-wall-median" 0.0105; Bjson.num "a/frac" 0.75 ] }
  in
  match Bjson.of_string (Bjson.to_string d) with
  | Error m -> Alcotest.fail m
  | Ok d' ->
    Alcotest.(check bool) "document roundtrips bit-equal" true (d = d')

let suite =
  [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json edge cases" `Quick test_json_edge_cases;
    Alcotest.test_case "event jsonl roundtrip" `Quick
      test_event_jsonl_roundtrip;
    Alcotest.test_case "chrome export golden" `Quick test_chrome_export_golden;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "metrics label scopes" `Quick
      test_metrics_label_scopes;
    Alcotest.test_case "tracing is free" `Quick test_tracing_is_free;
    Alcotest.test_case "cqp event classes" `Quick test_cqp_event_classes;
    Alcotest.test_case "fault events" `Quick test_fault_events;
    Alcotest.test_case "page-out events" `Quick test_page_out_events;
    Alcotest.test_case "window resize events" `Quick
      test_window_resize_events;
    Alcotest.test_case "comp-join routing events" `Quick
      test_comp_join_route_events;
    Alcotest.test_case "profile spans" `Quick test_profile_spans;
    Alcotest.test_case "calibration ledger" `Quick test_calibrate_ledger;
    Alcotest.test_case "profiling is free" `Quick test_profiling_is_free;
    Alcotest.test_case "kill+resume traced = untraced" `Quick
      test_resume_traced_equals_untraced;
    Alcotest.test_case "kill+resume profiled = unprofiled" `Quick
      test_resume_profiled_equals_unprofiled;
    Alcotest.test_case "explain replay" `Quick test_explain_renders_run;
    Alcotest.test_case "wall capture is free" `Quick test_wall_capture_is_free;
    Alcotest.test_case "wall recorder mechanics" `Quick
      test_wall_recorder_mechanics;
    Alcotest.test_case "histogram quantile edges" `Quick
      test_histogram_quantile_edges;
    Alcotest.test_case "bench-diff zero and NaN cells" `Quick
      test_benchdiff_zero_and_nan;
    Alcotest.test_case "bench-diff variance-aware wall gate" `Quick
      test_benchdiff_wall_gate;
    Alcotest.test_case "bjson roundtrip" `Quick test_bjson_roundtrip ]
