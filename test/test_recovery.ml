(* Checkpointed execution and crash recovery: the snapshot codec and
   container format, plan state capture/restore, checkpoint files (CRC
   rejection of torn writes), and the kill-and-resume end-to-end path —
   crash at three different execution points, resume from the last
   checkpoint, and obtain exactly the uninterrupted run's result. *)

open Adp_relation
open Adp_exec
open Adp_storage
open Adp_core
open Adp_query
open Adp_datagen
open Helpers
module Checkpoint = Adp_recovery.Checkpoint
module Codec = Adp_recovery.Codec
module Crash = Adp_recovery.Crash
module Diagnostic = Adp_analysis.Diagnostic
module Analyzer = Adp_analysis.Analyzer

(* Checkpoint directories live under the test runner's cwd (the dune
   sandbox); each test gets a fresh one. *)
let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let d = Printf.sprintf "ckpt-test-%d" !dir_counter in
  rm_rf d;
  d

(* ---------------- snapshot codec ---------------- *)

let test_snapshot_scalars () =
  let module S = Snapshot in
  let b = S.encoder () in
  List.iter (S.int b)
    [ 0; 1; -1; 63; 64; -64; -65; 300; -300; max_int; min_int ];
  S.str b "hello";
  S.str b "";
  S.f64 b 3.25;
  S.f64 b (-0.0);
  S.bool b true;
  S.value b (Value.Str "x");
  S.value b Value.Null;
  S.tuple b [| vi 7; vf 1.5; vs "y" |];
  let d = S.decoder (S.contents b) in
  List.iter
    (fun want -> Alcotest.(check int) "int roundtrip" want (S.read_int d))
    [ 0; 1; -1; 63; 64; -64; -65; 300; -300; max_int; min_int ];
  Alcotest.(check string) "str" "hello" (S.read_str d);
  Alcotest.(check string) "empty str" "" (S.read_str d);
  Alcotest.(check (float 0.0)) "f64" 3.25 (S.read_f64 d);
  Alcotest.(check (float 0.0)) "neg zero" (-0.0) (S.read_f64 d);
  Alcotest.(check bool) "bool" true (S.read_bool d);
  Alcotest.(check bool) "value str" true (S.read_value d = Value.Str "x");
  Alcotest.(check bool) "value null" true (S.read_value d = Value.Null);
  Alcotest.(check bool) "tuple" true
    (Tuple.equal (S.read_tuple d) [| vi 7; vf 1.5; vs "y" |]);
  Alcotest.(check bool) "consumed everything" true (S.at_end d)

let snapshot_int_roundtrip =
  QCheck2.Test.make ~name:"snapshot varint roundtrip (qcheck)" ~count:500
    QCheck2.Gen.int
    (fun v ->
      let b = Snapshot.encoder () in
      Snapshot.int b v;
      Snapshot.read_int (Snapshot.decoder (Snapshot.contents b)) = v)

let test_snapshot_truncation_detected () =
  let b = Snapshot.encoder () in
  Snapshot.str b "a long enough payload";
  let data = Snapshot.contents b in
  let cut = String.sub data 0 (String.length data - 3) in
  (match Snapshot.read_str (Snapshot.decoder cut) with
   | _ -> Alcotest.fail "expected Corrupt on truncated input"
   | exception Snapshot.Corrupt _ -> ())

(* ---------------- container files ---------------- *)

let test_container_roundtrip () =
  let dir = fresh_dir () in
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "x.adpckpt" in
  let segments = [ "alpha", "payload-one"; "beta", String.make 1000 'z' ] in
  Snapshot.write_file ~path ~version:1 segments;
  (match Snapshot.read_file ~path with
   | Ok (1, got) ->
     Alcotest.(check bool) "segments roundtrip" true (got = segments)
   | Ok (v, _) -> Alcotest.failf "unexpected version %d" v
   | Error e ->
     Alcotest.failf "read failed: %a" Snapshot.pp_file_error e);
  rm_rf dir

let flip_byte path ~offset_from_end =
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let data = Bytes.of_string data in
  let i = Bytes.length data - offset_from_end in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc data;
  close_out oc

let test_container_corruption_detected () =
  let dir = fresh_dir () in
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "x.adpckpt" in
  Snapshot.write_file ~path ~version:1
    [ "alpha", "payload-one"; "beta", String.make 200 'z' ];
  flip_byte path ~offset_from_end:5;
  (match Snapshot.read_file ~path with
   | Error (Snapshot.Crc_mismatch "beta") -> ()
   | Error e ->
     Alcotest.failf "wrong error: %a" Snapshot.pp_file_error e
   | Ok _ -> Alcotest.fail "corruption not detected");
  let garbage = Filename.concat dir "g.adpckpt" in
  let oc = open_out_bin garbage in
  output_string oc "not a checkpoint at all";
  close_out oc;
  (match Snapshot.read_file ~path:garbage with
   | Error Snapshot.Bad_magic -> ()
   | _ -> Alcotest.fail "bad magic not detected");
  rm_rf dir

(* ---------------- plan state capture/restore ---------------- *)

let tables =
  [ "r", Schema.make [ "r.k"; "r.p" ]; "s", Schema.make [ "s.k"; "s.p" ] ]

let schema_of name = List.assoc name tables

let push_all plan src tuples =
  List.concat_map (fun t -> Plan.push plan ~source:src t) tuples

let mk_tuples n salt = List.init n (fun i -> [| vi (i mod 7); vi (i + salt) |])

let test_plan_capture_restore () =
  let spec = Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ] in
  let l = mk_tuples 40 0 and r = mk_tuples 35 100 in
  let split = 20 in
  let l1 = List.filteri (fun i _ -> i < split) l
  and l2 = List.filteri (fun i _ -> i >= split) l in
  (* Reference: one uninterrupted plan. *)
  let ctx = Ctx.create () in
  let p0 = Plan.instantiate ~record_outputs:true ctx spec ~schema_of in
  let all = push_all p0 "r" l @ push_all p0 "s" r in
  (* Capture mid-stream, restore into a fresh plan, continue there. *)
  let pa = Plan.instantiate ~record_outputs:true ctx spec ~schema_of in
  let first = push_all pa "r" l1 @ push_all pa "s" r in
  let state = Plan.capture pa in
  let pb =
    Plan.instantiate ~record_outputs:true (Ctx.create ()) spec ~schema_of
  in
  Plan.restore pb state;
  let second = push_all pb "r" l2 in
  check_bag "capture/restore = uninterrupted" all (first @ second);
  let _, recorded = Plan.root_results pb in
  check_bag "root_results records everything" all recorded;
  (* Restoring a mismatched shape is rejected. *)
  let other = Plan.instantiate (Ctx.create ()) (Plan.scan "r") ~schema_of in
  (match Plan.restore other state with
   | _ -> Alcotest.fail "shape mismatch accepted"
   | exception Invalid_argument _ -> ())

let test_plan_state_codec_roundtrip () =
  let spec =
    Plan.join
      (Plan.scan ~filter:(Predicate.lt "r.k" (vi 6)) "r")
      (Plan.scan "s")
      ~on:[ "r.k", "s.k" ]
  in
  let ctx = Ctx.create () in
  let plan = Plan.instantiate ~record_outputs:true ctx spec ~schema_of in
  ignore (push_all plan "r" (mk_tuples 25 0));
  ignore (push_all plan "s" (mk_tuples 30 50));
  let state = Plan.capture plan in
  let b = Snapshot.encoder () in
  Codec.spec b spec;
  Codec.plan_state b state;
  let d = Snapshot.decoder (Snapshot.contents b) in
  Alcotest.(check bool) "spec roundtrip" true (Codec.read_spec d = spec);
  Alcotest.(check bool) "plan state roundtrip" true
    (Codec.read_plan_state d = state);
  Alcotest.(check bool) "consumed everything" true (Snapshot.at_end d)

let test_clock_capture_restore () =
  let c = Clock.create () in
  Clock.charge c 3.0;
  Clock.wait_until c 10.0;
  Clock.wait_retry c 2.5;
  let st = Clock.capture c in
  let c2 = Clock.create () in
  Clock.restore c2 st;
  Alcotest.(check (float 1e-9)) "now" (Clock.now c) (Clock.now c2);
  Alcotest.(check (float 1e-9)) "cpu" (Clock.cpu c) (Clock.cpu c2);
  Alcotest.(check (float 1e-9)) "idle" (Clock.idle c) (Clock.idle c2);
  Alcotest.(check (float 1e-9)) "retry idle" (Clock.retry_idle c)
    (Clock.retry_idle c2)

let test_selectivity_dump_roundtrip () =
  let s = Adp_stats.Selectivity.create () in
  Adp_stats.Selectivity.observe s ~signature:"r⋈s" ~output:30.0
    ~input_product:100.0;
  Adp_stats.Selectivity.observe_output s ~signature:"r⋈s" ~cardinality:42.0;
  Adp_stats.Selectivity.observe_cardinality s ~relation:"r" ~seen:17;
  Adp_stats.Selectivity.observe_final_cardinality s ~relation:"s" ~total:99;
  Adp_stats.Selectivity.flag_multiplicative s ~predicate:"r.k=s.k"
    ~factor:2.5;
  let dump = Adp_stats.Selectivity.dump s in
  let b = Snapshot.encoder () in
  Codec.stats_dump b dump;
  let got = Codec.read_stats_dump (Snapshot.decoder (Snapshot.contents b)) in
  Alcotest.(check bool) "dump codec roundtrip" true (got = dump);
  let s2 = Adp_stats.Selectivity.load dump in
  Alcotest.(check bool) "load preserves dump" true
    (Adp_stats.Selectivity.dump s2 = dump);
  Alcotest.(check (option (float 1e-9))) "lookup survives" (Some 0.3)
    (Adp_stats.Selectivity.lookup s2 "r⋈s")

(* ---------------- checkpoint files ---------------- *)

let mini_checkpoint () =
  let spec = Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ] in
  let ctx = Ctx.create () in
  let plan = Plan.instantiate ~record_outputs:true ctx spec ~schema_of in
  ignore (push_all plan "r" (mk_tuples 10 0));
  let pr =
    { Checkpoint.pr_id = 0; pr_spec = spec; pr_state = Plan.capture plan;
      pr_emitted = 3; pr_read = 10; pr_ends = [ "r", 10; "s", 0 ] }
  in
  { Checkpoint.seq = 3; fingerprint = "fp"; clock = Clock.capture ctx.Ctx.clock;
    tuples_read = 10; tuples_output = 3; retries = 1; failovers = 0;
    sources_failed = 0; positions = [ "r", 10; "s", 0 ];
    stats = Adp_stats.Selectivity.dump (Adp_stats.Selectivity.create ());
    completed = []; current = Some pr }

let test_checkpoint_save_load () =
  let dir = fresh_dir () in
  let ck = mini_checkpoint () in
  let path = Checkpoint.save ~dir ck in
  Alcotest.(check (option string)) "latest finds it" (Some path)
    (Checkpoint.latest ~dir);
  ignore (Checkpoint.save ~dir { ck with Checkpoint.seq = 4 });
  Alcotest.(check bool) "latest prefers higher seq" true
    (Checkpoint.latest ~dir <> Some path);
  (match Checkpoint.load path with
   | Ok got ->
     Alcotest.(check int) "seq" 3 got.Checkpoint.seq;
     Alcotest.(check string) "fingerprint" "fp" got.Checkpoint.fingerprint;
     Alcotest.(check bool) "positions" true
       (got.Checkpoint.positions = ck.Checkpoint.positions);
     Alcotest.(check bool) "phase restored" true
       (match got.Checkpoint.current with
        | Some pr ->
          pr.Checkpoint.pr_read = 10
          && pr.Checkpoint.pr_state
             = (Option.get ck.Checkpoint.current).Checkpoint.pr_state
        | None -> false);
     Alcotest.(check bool) "ledger" true
       (Checkpoint.ledger got = [ 0, [ "r", 10; "s", 0 ] ])
   | Error ds -> Alcotest.failf "load failed: %s" (Diagnostic.to_string ds));
  rm_rf dir

let test_corrupt_checkpoint_rejected () =
  let dir = fresh_dir () in
  let path = Checkpoint.save ~dir (mini_checkpoint ()) in
  flip_byte path ~offset_from_end:12;
  (match Checkpoint.load path with
   | Error ds ->
     Alcotest.(check bool) "crc diagnostic" true
       (List.mem "ckpt-crc-mismatch" (Diagnostic.codes ds));
     Alcotest.(check bool) "is an error" true (Diagnostic.has_errors ds)
   | Ok _ -> Alcotest.fail "corrupt checkpoint accepted");
  (* A torn write: the file ends mid-segment. *)
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  (match Checkpoint.load path with
   | Error ds ->
     Alcotest.(check bool) "torn write detected" true
       (List.exists
          (fun c -> c = "ckpt-truncated" || c = "ckpt-crc-mismatch")
          (Diagnostic.codes ds))
   | Ok _ -> Alcotest.fail "torn checkpoint accepted");
  (match Checkpoint.load (Filename.concat dir "missing.adpckpt") with
   | Error ds ->
     Alcotest.(check bool) "io error surfaced" true
       (List.mem "ckpt-io-error" (Diagnostic.codes ds))
   | Ok _ -> Alcotest.fail "missing file accepted");
  rm_rf dir

(* ---------------- ledger validation ---------------- *)

let test_ledger_diagnostics () =
  let check ledger sources wanted =
    let codes =
      Diagnostic.codes (Analyzer.check_checkpoint_regions ~ledger ~sources)
    in
    List.iter
      (fun c ->
        Alcotest.(check bool) ("expects " ^ c) true (List.mem c codes))
      wanted;
    if wanted = [] then
      Alcotest.(check (list string)) "clean ledger" [] codes
  in
  let sources = [ "r", 100; "s", 50 ] in
  check [] sources [ "ckpt-empty-ledger" ];
  check [ 0, [ "r", 30; "s", 10 ]; 1, [ "r", 60; "s", 50 ] ] sources [];
  check [ 0, [ "r", 30; "s", 10 ]; 1, [ "r", 20; "s", 50 ] ] sources
    [ "ckpt-region-overlap" ];
  check [ 0, [ "r", 130; "s", 10 ] ] sources [ "ckpt-source-truncated" ];
  check [ 0, [ "r", 30 ] ] sources [ "ckpt-source-unknown" ];
  check [ 0, [ "r", 30; "s", 10; "x", 5 ] ] sources [ "ckpt-source-missing" ];
  check [ 1, [ "r", 30; "s", 10 ]; 0, [ "r", 60; "s", 50 ] ] sources
    [ "ckpt-phase-order" ]

(* ---------------- crash injector ---------------- *)

let test_crash_injector_fires_once () =
  let inj = Crash.injector [ Crash.After_tuples 5 ] in
  Crash.tuple_consumed inj ~total:4;
  (match Crash.tuple_consumed inj ~total:5 with
   | _ -> Alcotest.fail "expected crash"
   | exception Crash.Crashed _ -> ());
  (* The trigger is consumed: the resumed run survives the same point. *)
  Crash.tuple_consumed inj ~total:6;
  Alcotest.(check int) "no pending points" 0 (List.length (Crash.pending inj))

(* ---------------- kill-and-resume end-to-end ---------------- *)

let dataset =
  Tpch.generate { Tpch.scale = 0.002; distribution = Tpch.Uniform; seed = 11 }

let e2e_query =
  Sql_parser.parse ~schema_of:Tpch.schema_of
    "SELECT orders.o_orderkey, lineitem.l_quantity FROM orders, lineitem \
     WHERE orders.o_orderkey = lineitem.l_orderkey AND orders.o_orderdate < \
     DATE '1995-03-15'"

let e2e_catalog = Workload.catalog dataset e2e_query
let e2e_sources () = Workload.sources dataset e2e_query ()

let run_corrective ?checkpoint ?resume_from ?(crash = []) ?memory_budget () =
  let config =
    { Corrective.default_config with
      poll_interval = 2e4; checkpoint; resume_from; crash; memory_budget }
  in
  Corrective.run ~config e2e_query e2e_catalog (e2e_sources ())

let kill_and_resume point () =
  let dir = fresh_dir () in
  let policy = Checkpoint.policy ~every_tuples:500 ~dir () in
  let want, _ = run_corrective () in
  (match run_corrective ~checkpoint:policy ~crash:[ point ] () with
   | _ -> Alcotest.failf "expected crash %a" Crash.pp_point point
   | exception Crash.Crashed _ -> ());
  Alcotest.(check bool) "a checkpoint was written" true
    (Checkpoint.latest ~dir <> None);
  let result, stats = run_corrective ~resume_from:dir () in
  Alcotest.(check bool) "phases were restored" true
    (stats.Corrective.resumed_phases > 0);
  (* The recovery invariant: the resumed answer is the exact multiset of
     the uninterrupted run — no duplicated and no missing cross-phase
     combinations. *)
  check_bag "resumed result = uninterrupted (exact multiset)"
    (Relation.to_list result) (Relation.to_list want);
  (* Resuming is deterministic: a second recovery from the same
     checkpoint reproduces the same answer. *)
  let again, _ = run_corrective ~resume_from:dir () in
  check_bag "resume is deterministic" (Relation.to_list again)
    (Relation.to_list result);
  rm_rf dir

let test_resume_mid_phase = kill_and_resume (Crash.After_tuples 2000)
let test_resume_at_boundary = kill_and_resume (Crash.At_phase_boundary 0)
let test_resume_during_stitchup = kill_and_resume Crash.During_stitchup

let test_checkpoint_policies () =
  let dir = fresh_dir () in
  (* Boundary-only policy: an uninterrupted single-pass run writes its
     phase-close checkpoint and nothing else. *)
  let _, stats = run_corrective ~checkpoint:(Checkpoint.policy ~dir ()) () in
  Alcotest.(check bool) "boundary checkpoints written" true
    (stats.Corrective.checkpoints >= 1);
  (* Resuming from a checkpoint of a run that finished cleanly is legal:
     the residual input is empty and the answer unchanged. *)
  let want, _ = run_corrective () in
  let result, _ = run_corrective ~resume_from:dir () in
  check_bag "resume after clean finish" (Relation.to_list result)
    (Relation.to_list want);
  rm_rf dir;
  (* Page-out-triggered checkpoints: under memory pressure the engine
     snapshots state as it is forced out of memory. *)
  let dir = fresh_dir () in
  let policy = Checkpoint.policy ~on_page_out:true ~dir () in
  let _, stats =
    run_corrective ~checkpoint:policy ~memory_budget:500 ()
  in
  Alcotest.(check bool) "memory pressure paged state out" true
    (stats.Corrective.paged_out > 0);
  Alcotest.(check bool) "page-outs triggered checkpoints" true
    (stats.Corrective.checkpoints >= 1);
  rm_rf dir

let test_fingerprint_mismatch_rejected () =
  let dir = fresh_dir () in
  let policy = Checkpoint.policy ~dir () in
  let _ = run_corrective ~checkpoint:policy () in
  let other =
    Sql_parser.parse ~schema_of:Tpch.schema_of
      "SELECT orders.o_orderkey FROM orders WHERE orders.o_orderkey > 5"
  in
  let config =
    { Corrective.default_config with resume_from = Some dir }
  in
  (match
     Corrective.run ~config other
       (Workload.catalog dataset other)
       (Workload.sources dataset other ())
   with
   | _ -> Alcotest.fail "foreign checkpoint accepted"
   | exception Diagnostic.Failed (_, ds) ->
     Alcotest.(check bool) "fingerprint diagnostic" true
       (List.mem "ckpt-fingerprint-mismatch" (Diagnostic.codes ds)));
  rm_rf dir

let suite =
  [ Alcotest.test_case "snapshot scalars" `Quick test_snapshot_scalars;
    qtest snapshot_int_roundtrip;
    Alcotest.test_case "snapshot truncation" `Quick
      test_snapshot_truncation_detected;
    Alcotest.test_case "container roundtrip" `Quick test_container_roundtrip;
    Alcotest.test_case "container corruption" `Quick
      test_container_corruption_detected;
    Alcotest.test_case "plan capture/restore" `Quick test_plan_capture_restore;
    Alcotest.test_case "plan state codec" `Quick
      test_plan_state_codec_roundtrip;
    Alcotest.test_case "clock capture/restore" `Quick
      test_clock_capture_restore;
    Alcotest.test_case "selectivity dump" `Quick
      test_selectivity_dump_roundtrip;
    Alcotest.test_case "checkpoint save/load" `Quick test_checkpoint_save_load;
    Alcotest.test_case "corrupt checkpoint rejected" `Quick
      test_corrupt_checkpoint_rejected;
    Alcotest.test_case "ledger diagnostics" `Quick test_ledger_diagnostics;
    Alcotest.test_case "crash injector" `Quick test_crash_injector_fires_once;
    Alcotest.test_case "kill+resume: mid-phase" `Quick test_resume_mid_phase;
    Alcotest.test_case "kill+resume: phase boundary" `Quick
      test_resume_at_boundary;
    Alcotest.test_case "kill+resume: during stitch-up" `Quick
      test_resume_during_stitchup;
    Alcotest.test_case "checkpoint policies" `Quick test_checkpoint_policies;
    Alcotest.test_case "fingerprint mismatch" `Quick
      test_fingerprint_mismatch_rejected ]
