open Adp_relation
open Adp_exec
open Helpers

let schema_of_tbl tables name = List.assoc name tables

let push_all plan src tuples =
  List.concat_map (fun t -> Plan.push plan ~source:src t) tuples

let two_rels () =
  let r = [ [| vi 1; vi 10 |]; [| vi 2; vi 20 |]; [| vi 2; vi 21 |] ] in
  let s = [ [| vi 2; vi 100 |]; [| vi 3; vi 300 |]; [| vi 2; vi 200 |] ] in
  r, s

let tables =
  [ "r", keyed_schema "r"; "s", keyed_schema "s"; "u", keyed_schema "u" ]

let test_single_join () =
  let r, s = two_rels () in
  let ctx = Ctx.create () in
  let spec = Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ] in
  let plan = Plan.instantiate ctx spec ~schema_of:(schema_of_tbl tables) in
  let outs =
    push_all plan "r" r @ push_all plan "s" s @ Plan.flush plan
  in
  let want = oracle_join r s ~on:[ 0, 0 ] in
  check_bag "join = oracle" outs want;
  Alcotest.(check int) "4 matches" 4 (List.length outs)

let test_interleaved_arrival () =
  (* Symmetric join: outputs identical regardless of arrival interleaving. *)
  let r, s = two_rels () in
  let ctx = Ctx.create () in
  let spec = Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ] in
  let plan = Plan.instantiate ctx spec ~schema_of:(schema_of_tbl tables) in
  let outs = ref [] in
  List.iteri
    (fun i (rt, st) ->
      ignore i;
      outs := !outs @ Plan.push plan ~source:"r" rt;
      outs := !outs @ Plan.push plan ~source:"s" st)
    (List.combine r s);
  check_bag "interleaved = oracle" !outs (oracle_join r s ~on:[ 0, 0 ])

let test_filter_pushdown () =
  let r, s = two_rels () in
  let ctx = Ctx.create () in
  let spec =
    Plan.join
      (Plan.scan ~filter:(Predicate.eq "r.k" (vi 2)) "r")
      (Plan.scan "s") ~on:[ "r.k", "s.k" ]
  in
  let plan = Plan.instantiate ctx spec ~schema_of:(schema_of_tbl tables) in
  let outs = push_all plan "r" r @ push_all plan "s" s in
  let want =
    oracle_join (List.filter (fun t -> Value.equal t.(0) (vi 2)) r) s
      ~on:[ 0, 0 ]
  in
  check_bag "filtered join" outs want;
  (* The dropped tuple is visible in leaf_seen but not in the partition. *)
  Alcotest.(check bool) "seen all" true
    (List.assoc "r" (Plan.leaf_seen plan) = 3);
  let _, _, part, _ =
    List.find (fun (n, _, _, _) -> n = "r") (Plan.leaf_partitions plan)
  in
  Alcotest.(check int) "buffered only passing" 2 (List.length part)

let three_way_spec () =
  Plan.join
    (Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ])
    (Plan.scan "u")
    ~on:[ "s.p", "u.k" ]

let test_three_way () =
  let r = [ [| vi 1; vi 5 |]; [| vi 2; vi 5 |] ] in
  let s = [ [| vi 1; vi 7 |]; [| vi 2; vi 8 |] ] in
  let u = [ [| vi 7; vi 70 |]; [| vi 8; vi 80 |]; [| vi 7; vi 71 |] ] in
  let ctx = Ctx.create () in
  let plan =
    Plan.instantiate ctx (three_way_spec ()) ~schema_of:(schema_of_tbl tables)
  in
  let outs =
    push_all plan "u" u @ push_all plan "r" r @ push_all plan "s" s
  in
  let rs = oracle_join r s ~on:[ 0, 0 ] in
  let want = oracle_join rs u ~on:[ 3, 0 ] in
  check_bag "three way" outs want

let test_signatures_shape_invariant () =
  let a =
    Plan.join
      (Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ])
      (Plan.scan "u") ~on:[ "s.p", "u.k" ]
  in
  let b =
    Plan.join (Plan.scan "r")
      (Plan.join (Plan.scan "s") (Plan.scan "u") ~on:[ "s.p", "u.k" ])
      ~on:[ "r.k", "s.k" ]
  in
  Alcotest.(check string) "same signature" (Plan.signature_of a)
    (Plan.signature_of b);
  let filtered =
    Plan.join
      (Plan.scan ~filter:(Predicate.eq "r.k" (vi 1)) "r")
      (Plan.scan "s") ~on:[ "r.k", "s.k" ]
  in
  Alcotest.(check bool) "filter changes signature" true
    (Plan.signature_of filtered
    <> Plan.signature_of
         (Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ]))

let test_join_infos_and_node_results () =
  let r = [ [| vi 1; vi 5 |]; [| vi 2; vi 5 |] ] in
  let s = [ [| vi 1; vi 7 |] ] in
  let u = [ [| vi 7; vi 70 |] ] in
  let ctx = Ctx.create () in
  let plan =
    Plan.instantiate ctx (three_way_spec ()) ~schema_of:(schema_of_tbl tables)
  in
  ignore (push_all plan "r" r);
  ignore (push_all plan "s" s);
  ignore (push_all plan "u" u);
  let infos = Plan.join_infos plan in
  Alcotest.(check int) "two joins" 2 (List.length infos);
  let inner = List.hd infos in
  Alcotest.(check int) "inner out" 1 inner.Plan.out_count;
  Alcotest.(check (list string)) "inner rels" [ "r"; "s" ] inner.Plan.relations;
  let root = List.nth infos 1 in
  Alcotest.(check int) "root complexity" 3 root.Plan.complexity;
  let results = Plan.node_results plan in
  Alcotest.(check int) "results per join" 2 (List.length results);
  let _, _, root_tuples, _ = List.nth results 1 in
  Alcotest.(check int) "root materialized" 1 (List.length root_tuples)

let test_duplicate_source_rejected () =
  let ctx = Ctx.create () in
  let spec = Plan.join (Plan.scan "r") (Plan.scan "r") ~on:[ "r.k", "r.k" ] in
  (try
     ignore (Plan.instantiate ctx spec ~schema_of:(schema_of_tbl tables));
     Alcotest.fail "should reject duplicate source"
   with Invalid_argument _ -> ())

let test_unknown_source_push () =
  let ctx = Ctx.create () in
  let plan =
    Plan.instantiate ctx (Plan.scan "r") ~schema_of:(schema_of_tbl tables)
  in
  (try
     ignore (Plan.push plan ~source:"nope" [| vi 1; vi 2 |]);
     Alcotest.fail "should reject unknown source"
   with Invalid_argument _ -> ())

let test_costs_charged () =
  let r, s = two_rels () in
  let ctx = Ctx.create () in
  let spec = Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ] in
  let plan = Plan.instantiate ctx spec ~schema_of:(schema_of_tbl tables) in
  ignore (push_all plan "r" r);
  ignore (push_all plan "s" s);
  Alcotest.(check bool) "cpu charged" true (Clock.cpu ctx.Ctx.clock > 0.0)

let test_record_outputs_disabled () =
  (* Single-phase executions skip intermediate materialization: results
     and counters stay correct, node_results just comes back empty. *)
  let r, s = two_rels () in
  let ctx = Ctx.create () in
  let spec = Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ] in
  let plan =
    Plan.instantiate ~record_outputs:false ctx spec
      ~schema_of:(schema_of_tbl tables)
  in
  let outs = push_all plan "r" r @ push_all plan "s" s in
  check_bag "outputs unaffected" outs (oracle_join r s ~on:[ 0, 0 ]);
  (match Plan.join_infos plan with
   | [ info ] -> Alcotest.(check int) "counters kept" 4 info.Plan.out_count
   | _ -> Alcotest.fail "expected one join");
  (match Plan.node_results plan with
   | [ (_, _, tuples, _) ] ->
     Alcotest.(check int) "nothing materialized" 0 (List.length tuples)
   | _ -> Alcotest.fail "expected one node")

let test_memory_pressure () =
  let r = List.init 100 (fun i -> [| vi i; vi i |]) in
  let s = List.init 100 (fun i -> [| vi i; vi i |]) in
  let ctx = Ctx.create () in
  let spec = Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ] in
  let plan = Plan.instantiate ctx spec ~schema_of:(schema_of_tbl tables) in
  ignore (push_all plan "r" r);
  ignore (push_all plan "s" s);
  Alcotest.(check int) "memory in use" 200 (Plan.memory_in_use plan);
  let cpu_before = Clock.cpu ctx.Ctx.clock in
  let swapped = Plan.apply_memory_pressure plan ~budget:100 in
  Alcotest.(check bool) "something swapped" true (List.length swapped >= 1);
  (* The returned descriptors name the paged-out node states. *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        ("descriptor names a build side: " ^ d)
        true
        (let has suffix =
           String.length d >= String.length suffix
           && String.sub d (String.length d - String.length suffix)
                (String.length suffix)
              = suffix
         in
         has "#build-left" || has "#build-right"))
    swapped;
  Alcotest.(check bool) "resident within budget" true
    (Plan.memory_in_use plan <= 100);
  (* Probing a swapped structure pays the I/O penalty but stays correct. *)
  let outs = Plan.push plan ~source:"r" [| vi 5; vi 99 |] in
  Alcotest.(check int) "swapped probe still correct" 1 (List.length outs);
  Alcotest.(check bool) "I/O penalty charged" true
    (Clock.cpu ctx.Ctx.clock -. cpu_before
     >= ctx.Ctx.costs.Cost_model.swap_penalty);
  (* A generous budget brings everything back. *)
  let swapped = Plan.apply_memory_pressure plan ~budget:10_000 in
  Alcotest.(check int) "all resident again" 0 (List.length swapped)

let join_vs_oracle =
  QCheck2.Test.make ~name:"symmetric join tree = oracle (qcheck)" ~count:80
    QCheck2.Gen.(
      pair
        (gen_keyed_tuples ~key_range:8 ~max_len:40)
        (gen_keyed_tuples ~key_range:8 ~max_len:40))
    (fun (r, s) ->
      let ctx = Ctx.create () in
      let spec =
        Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ]
      in
      let plan = Plan.instantiate ctx spec ~schema_of:(schema_of_tbl tables) in
      let outs = push_all plan "r" r @ push_all plan "s" s in
      same_bag outs (oracle_join r s ~on:[ 0, 0 ]))

let suite =
  [ Alcotest.test_case "single join" `Quick test_single_join;
    Alcotest.test_case "interleaved arrival" `Quick test_interleaved_arrival;
    Alcotest.test_case "filter pushdown" `Quick test_filter_pushdown;
    Alcotest.test_case "three-way join" `Quick test_three_way;
    Alcotest.test_case "shape-invariant signatures" `Quick
      test_signatures_shape_invariant;
    Alcotest.test_case "join infos / node results" `Quick
      test_join_infos_and_node_results;
    Alcotest.test_case "duplicate source rejected" `Quick
      test_duplicate_source_rejected;
    Alcotest.test_case "unknown source rejected" `Quick test_unknown_source_push;
    Alcotest.test_case "costs charged" `Quick test_costs_charged;
    Alcotest.test_case "memory pressure" `Quick test_memory_pressure;
    Alcotest.test_case "record_outputs disabled" `Quick
      test_record_outputs_disabled;
    qtest join_vs_oracle ]
