open Adp_relation
open Adp_exec
open Helpers

(* ---------------- Clock & Ctx ---------------- *)

let test_clock () =
  let c = Clock.create () in
  Clock.charge c 5.0;
  Alcotest.(check (float 1e-9)) "cpu" 5.0 (Clock.cpu c);
  Clock.wait_until c 12.0;
  Alcotest.(check (float 1e-9)) "idle" 7.0 (Clock.idle c);
  Clock.wait_until c 3.0;
  Alcotest.(check (float 1e-9)) "no time travel" 12.0 (Clock.now c);
  Clock.reset c;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Clock.now c)

(* ---------------- Heap ---------------- *)

let test_heap () =
  let h = Heap.create compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 9; 0 ];
  Alcotest.(check int) "length" 6 (Heap.length h);
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some 0);
  let drained = List.init 6 (fun _ -> Heap.pop h) in
  Alcotest.(check (list int)) "heap-sort" [ 0; 1; 1; 4; 5; 9 ] drained;
  Alcotest.check_raises "pop empty" (Invalid_argument "Heap.pop: empty")
    (fun () -> ignore (Heap.pop h))

let heap_sort_prop =
  QCheck2.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck2.Gen.(list_size (int_bound 100) int)
    (fun l ->
      let h = Heap.create compare in
      List.iter (Heap.push h) l;
      let drained = List.init (List.length l) (fun _ -> Heap.pop h) in
      drained = List.sort compare l)

(* ---------------- Source ---------------- *)

let mk_rel n = rel [ "t.k"; "t.p" ] (List.init n (fun i -> [ vi i; vi 0 ]))

let test_source_local () =
  let s = Source.create ~name:"r" (mk_rel 3) Source.Local in
  Alcotest.(check bool) "arrival zero" true (Source.peek_arrival s = Some 0.0);
  Alcotest.(check int) "cardinality" 3 (Source.cardinality s);
  let rec drain n =
    match Source.next s with
    | Some (_, a) ->
      Alcotest.(check (float 0.0)) "local arrivals are 0" 0.0 a;
      drain (n + 1)
    | None -> n
  in
  Alcotest.(check int) "drained all" 3 (drain 0);
  Alcotest.(check bool) "exhausted" true (Source.exhausted s)

let test_source_bandwidth () =
  let s = Source.create ~name:"r" (mk_rel 5) (Source.Bandwidth 2.0) in
  let arrivals =
    List.init 5 (fun _ ->
        match Source.next s with Some (_, a) -> a | None -> -1.0)
  in
  (* 2 tuples/sec => 0.5s = 5e5 µs apart. *)
  Alcotest.(check bool) "spacing" true
    (arrivals = [ 0.0; 5e5; 1e6; 1.5e6; 2e6 ])

let test_source_bursty () =
  let s =
    Source.create ~seed:4 ~name:"r" (mk_rel 200)
      (Source.Bursty { rate = 100.0; mean_burst = 10; mean_gap = 0.5 })
  in
  let prev = ref (-1.0) in
  let gaps = ref 0 in
  let rec go () =
    match Source.next s with
    | None -> ()
    | Some (_, a) ->
      if a < !prev then Alcotest.fail "arrivals must be monotone";
      if a -. !prev > 1e5 then incr gaps;
      prev := a;
      go ()
  in
  go ();
  Alcotest.(check bool) "bursts produce gaps" true (!gaps > 3)

let test_source_observe_rewind () =
  let s = Source.create ~name:"r" (mk_rel 4) Source.Local in
  let count = ref 0 in
  Source.observe s (fun _ -> incr count);
  let rec drain () =
    match Source.next s with Some _ -> drain () | None -> ()
  in
  drain ();
  Alcotest.(check int) "observer saw all" 4 !count;
  Source.rewind s;
  Alcotest.(check int) "rewound" 0 (Source.consumed s);
  drain ();
  Alcotest.(check int) "observer saw again" 8 !count

(* ---------------- Driver ---------------- *)

let test_driver_order_and_idle () =
  let ctx = Ctx.create () in
  let fast = Source.create ~name:"fast" (mk_rel 3) (Source.Bandwidth 10.0) in
  let slow = Source.create ~name:"slow" (mk_rel 2) (Source.Bandwidth 1.0) in
  let log = ref [] in
  let consume src _ = log := Source.name src :: !log in
  (match Driver.run ctx ~sources:[ slow; fast ] ~consume () with
   | Driver.Exhausted -> ()
   | Driver.Switched | Driver.Stopped -> Alcotest.fail "no poll: cannot switch");
  (* fast arrivals: 0, 1e5, 2e5; slow: 0, 1e6 -> slow's second tuple last *)
  Alcotest.(check (list string)) "arrival-ordered"
    [ "slow"; "fast"; "fast"; "fast"; "slow" ]
    (List.rev !log);
  Alcotest.(check bool) "idle time accrued" true (Clock.idle ctx.Ctx.clock > 0.0)

let test_driver_poll_switch () =
  let ctx = Ctx.create () in
  let src = Source.create ~name:"r" (mk_rel 100) Source.Local in
  let consume _ _ = Ctx.charge ctx 10.0 in
  let polls = ref 0 in
  let poll () =
    incr polls;
    if !polls >= 2 then `Switch else `Continue
  in
  (match Driver.run ctx ~sources:[ src ] ~consume ~poll:(100.0, poll) () with
   | Driver.Switched -> ()
   | Driver.Exhausted | Driver.Stopped -> Alcotest.fail "should have switched");
  Alcotest.(check int) "polled twice" 2 !polls;
  Alcotest.(check bool) "source partially consumed" true
    (Source.consumed src > 0 && not (Source.exhausted src))

(* ---------------- Aggregate ---------------- *)

let agg_schema = Schema.make [ "t.g"; "t.v" ]

let specs =
  [ Aggregate.sum ~name:"s" (Expr.col "t.v");
    Aggregate.count_all ~name:"c";
    Aggregate.min_of ~name:"lo" (Expr.col "t.v");
    Aggregate.max_of ~name:"hi" (Expr.col "t.v");
    Aggregate.avg ~name:"m" (Expr.col "t.v") ]

let test_aggregate_raw () =
  let c = Aggregate.compile specs agg_schema in
  let acc = Aggregate.init c in
  List.iter
    (fun v -> Aggregate.update c acc [| vi 1; vi v |])
    [ 4; 2; 6 ];
  let final = Aggregate.finalize c acc in
  Alcotest.(check bool) "sum" true (Value.equal final.(0) (vi 12));
  Alcotest.(check bool) "count" true (Value.equal final.(1) (vi 3));
  Alcotest.(check bool) "min" true (Value.equal final.(2) (vi 2));
  Alcotest.(check bool) "max" true (Value.equal final.(3) (vi 6));
  Alcotest.(check bool) "avg" true (Value.equal final.(4) (vf 4.0))

let test_aggregate_partial_merge () =
  let raw = Aggregate.compile specs agg_schema in
  let partial_schema = Aggregate.partial_schema ~group_cols:[ "t.g" ] specs in
  let pc = Aggregate.compile_partial specs partial_schema in
  (* Two partitions aggregated separately, merged as partials. *)
  let acc1 = Aggregate.init raw and acc2 = Aggregate.init raw in
  List.iter (fun v -> Aggregate.update raw acc1 [| vi 1; vi v |]) [ 4; 2 ];
  List.iter (fun v -> Aggregate.update raw acc2 [| vi 1; vi v |]) [ 6 ];
  let p1 = Array.append [| vi 1 |] (Aggregate.to_partial raw acc1) in
  let p2 = Array.append [| vi 1 |] (Aggregate.to_partial raw acc2) in
  let merged = Aggregate.init pc in
  Aggregate.update pc merged p1;
  Aggregate.update pc merged p2;
  (* Direct aggregation over everything. *)
  let direct = Aggregate.init raw in
  List.iter (fun v -> Aggregate.update raw direct [| vi 1; vi v |]) [ 4; 2; 6 ];
  let a = Aggregate.finalize pc merged and b = Aggregate.finalize raw direct in
  Alcotest.(check bool) "merge of partials = direct" true
    (Array.for_all2 Value.equal a b)

let test_partial_names () =
  Alcotest.(check (list string)) "layout"
    [ "pa.s_sum"; "pa.c_cnt"; "pa.lo_min"; "pa.hi_max"; "pa.m_sum"; "pa.m_cnt" ]
    (Aggregate.partial_names specs)

let aggregate_distributes =
  QCheck2.Test.make ~name:"aggregation distributes over union (qcheck)"
    ~count:150
    QCheck2.Gen.(
      pair
        (list_size (int_bound 30) (pair (int_bound 3) (int_bound 100)))
        (list_size (int_bound 30) (pair (int_bound 3) (int_bound 100))))
    (fun (xs, ys) ->
      QCheck2.assume (xs <> [] || ys <> []);
      let raw = Aggregate.compile specs agg_schema in
      let partial_schema = Aggregate.partial_schema ~group_cols:[ "t.g" ] specs in
      let pc = Aggregate.compile_partial specs partial_schema in
      let fold_part part =
        let acc = Aggregate.init raw in
        List.iter (fun (g, v) -> Aggregate.update raw acc [| vi g; vi v |]) part;
        Array.append [| vi 0 |] (Aggregate.to_partial raw acc)
      in
      (* Single group (g projected out of the key here): merge two partial
         windows vs aggregate everything at once. *)
      let merged = Aggregate.init pc in
      if xs <> [] then Aggregate.update pc merged (fold_part xs);
      if ys <> [] then Aggregate.update pc merged (fold_part ys);
      let direct = Aggregate.init raw in
      List.iter
        (fun (g, v) -> Aggregate.update raw direct [| vi g; vi v |])
        (xs @ ys);
      let a = Aggregate.finalize pc merged in
      let b = Aggregate.finalize raw direct in
      Array.for_all2 value_approx a b)

(* ---------------- Agg sink ---------------- *)

let test_agg_groups () =
  let ctx = Ctx.create () in
  let agg =
    Agg.create ctx ~group_cols:[ "t.g" ]
      ~aggs:[ Aggregate.sum ~name:"s" (Expr.col "t.v") ]
      ~input:Agg.Raw agg_schema
  in
  List.iter (Agg.add agg)
    [ [| vi 1; vi 10 |]; [| vi 2; vi 5 |]; [| vi 1; vi 3 |] ];
  Alcotest.(check int) "groups" 2 (Agg.groups agg);
  Alcotest.(check int) "consumed" 3 (Agg.consumed agg);
  let out = Agg.result agg in
  Alcotest.(check bool) "schema" true
    (Schema.mem (Agg.out_schema agg) "s");
  check_bag "grouped sums"
    (Relation.to_list out)
    [ [| vi 1; vi 13 |]; [| vi 2; vi 5 |] ]

let suite =
  [ Alcotest.test_case "clock" `Quick test_clock;
    Alcotest.test_case "heap" `Quick test_heap;
    qtest heap_sort_prop;
    Alcotest.test_case "source local" `Quick test_source_local;
    Alcotest.test_case "source bandwidth" `Quick test_source_bandwidth;
    Alcotest.test_case "source bursty" `Quick test_source_bursty;
    Alcotest.test_case "source observe/rewind" `Quick test_source_observe_rewind;
    Alcotest.test_case "driver arrival order" `Quick test_driver_order_and_idle;
    Alcotest.test_case "driver poll switch" `Quick test_driver_poll_switch;
    Alcotest.test_case "aggregate raw" `Quick test_aggregate_raw;
    Alcotest.test_case "aggregate partial merge" `Quick test_aggregate_partial_merge;
    Alcotest.test_case "partial column layout" `Quick test_partial_names;
    qtest aggregate_distributes;
    Alcotest.test_case "agg sink groups" `Quick test_agg_groups ]
