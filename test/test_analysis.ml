(* Static analyzer tests: every plan the optimizer can produce must pass
   the analyzer clean (property), and every deliberately broken plan must
   yield its expected diagnostic code (mutations).  The stitch-up matrix
   checker is additionally tested against hand-damaged combination sets —
   a matrix that misses or duplicates a combination must be rejected. *)

open Adp_relation
open Adp_exec
open Adp_optimizer
open Adp_analysis
open Adp_core
open Adp_query
open Adp_datagen
open Helpers

(* ---------------- fixture: small star workload ---------------- *)

let fact_schema = Schema.make [ "f.k1"; "f.k2"; "f.v"; "f.s" ]
let dim_schema prefix = Schema.make [ prefix ^ ".k"; prefix ^ ".w" ]

let catalog () =
  let c = Catalog.create () in
  Catalog.add c "f"
    { Catalog.schema = fact_schema; cardinality = Some 10_000.0; key = None };
  Catalog.add c "a"
    { Catalog.schema = dim_schema "a"; cardinality = Some 100.0;
      key = Some "a.k" };
  Catalog.add c "b"
    { Catalog.schema = dim_schema "b"; cardinality = Some 1000.0;
      key = Some "b.k" };
  c

let lookup =
  let c = catalog () in
  fun r -> try Some (Catalog.schema_of c r) with Not_found -> None

(* f.s is a string, everything else an int. *)
let types col = if col = "f.s" then Some Value.Ty_str else Some Value.Ty_int

let query () =
  { Logical.sources =
      [ { Logical.name = "f"; filter = Predicate.tt };
        { Logical.name = "a"; filter = Predicate.gt "a.w" (vi 5) };
        { Logical.name = "b"; filter = Predicate.tt } ];
    join_preds = [ "f.k1", "a.k"; "f.k2", "b.k" ];
    group_cols = []; aggs = []; projection = [] }

let good_plan () =
  Plan.join
    (Plan.join (Plan.scan "f")
       (Plan.scan ~filter:(Predicate.gt "a.w" (vi 5)) "a")
       ~on:[ "f.k1", "a.k" ])
    (Plan.scan "b")
    ~on:[ "f.k2", "b.k" ]

let codes ds = Diagnostic.codes (Diagnostic.errors ds)
let has_code c ds = List.mem c (codes ds)

let check_code name c ds =
  Alcotest.(check bool) (name ^ " yields " ^ c) true (has_code c ds)

(* ---------------- pass 1: schema / type checking ---------------- *)

let test_clean_plan () =
  let ds = Analyzer.check_plan_for_query ~types ~lookup (query ()) (good_plan ()) in
  Alcotest.(check (list string)) "no diagnostics" [] (List.map (fun d -> d.Diagnostic.code) ds)

let test_spec_schema () =
  match Analyzer.spec_schema ~lookup (good_plan ()) with
  | Ok s ->
    Alcotest.(check int) "arity is concat of inputs" 8 (Schema.arity s)
  | Error ds -> Alcotest.fail (Diagnostic.to_string ds)

let test_unknown_source () =
  check_code "unknown scan" "unknown-source"
    (Analyzer.check_plan ~lookup (Plan.scan "nope"))

let test_unknown_filter_column () =
  check_code "bad filter column" "unknown-column"
    (Analyzer.check_plan ~lookup
       (Plan.scan ~filter:(Predicate.gt "f.zz" (vi 0)) "f"))

let test_dropped_join_key () =
  let p =
    match good_plan () with
    | Plan.Join j -> Plan.Join { j with right_key = [] }
    | _ -> assert false
  in
  check_code "dropped key" "join-key-arity-mismatch"
    (Analyzer.check_plan ~lookup p)

let test_unresolved_join_key () =
  check_code "key on wrong side" "join-key-unresolved"
    (Analyzer.check_plan ~lookup
       (Plan.join (Plan.scan "f") (Plan.scan "a") ~on:[ "a.k", "f.k1" ]))

let test_swapped_key_types () =
  (* f.s is a string; joining it with the int a.k can never match. *)
  check_code "str-int join" "join-key-type-mismatch"
    (Analyzer.check_plan ~types ~lookup
       (Plan.join (Plan.scan "f") (Plan.scan "a") ~on:[ "f.s", "a.k" ]))

let test_int_float_keys_joinable () =
  let types _ = Some Value.Ty_float in
  let ds =
    Analyzer.check_plan ~types ~lookup
      (Plan.join (Plan.scan "f") (Plan.scan "a") ~on:[ "f.k1", "a.k" ])
  in
  Alcotest.(check bool) "numeric cross-type keys are fine" false
    (has_code "join-key-type-mismatch" ds)

let test_duplicate_source_in_plan () =
  check_code "self-join without rename" "duplicate-source-in-plan"
    (Analyzer.check_plan ~lookup
       (Plan.join (Plan.scan "f") (Plan.scan "f") ~on:[ "f.k1", "f.k1" ]))

let test_cross_product_warning () =
  let ds =
    Analyzer.check_plan ~lookup
      (Plan.join (Plan.scan "f") (Plan.scan "a") ~on:[])
  in
  Alcotest.(check bool) "warns" true
    (List.exists (fun d -> d.Diagnostic.code = "cross-product-join") ds);
  Alcotest.(check bool) "only a warning" false (Diagnostic.has_errors ds)

let test_preagg_missing_column () =
  check_code "group col absent" "preagg-missing-column"
    (Analyzer.check_plan ~lookup
       (Plan.preagg ~group_cols:[ "f.zz" ]
          ~aggs:[ Aggregate.count_all ~name:"n" ]
          (Plan.scan "f")));
  check_code "agg input absent" "preagg-missing-column"
    (Analyzer.check_plan ~lookup
       (Plan.preagg ~group_cols:[ "f.k1" ]
          ~aggs:[ Aggregate.sum ~name:"s" (Expr.col "f.zz") ]
          (Plan.scan "f")))

let test_preagg_non_numeric_agg () =
  check_code "sum over string" "preagg-non-numeric-agg"
    (Analyzer.check_plan ~types ~lookup
       (Plan.preagg ~group_cols:[ "f.k1" ]
          ~aggs:[ Aggregate.sum ~name:"s" (Expr.col "f.s") ]
          (Plan.scan "f")));
  (* min/max order strings fine. *)
  let ds =
    Analyzer.check_plan ~types ~lookup
      (Plan.preagg ~group_cols:[ "f.k1" ]
         ~aggs:[ Aggregate.max_of ~name:"m" (Expr.col "f.s") ]
         (Plan.scan "f"))
  in
  Alcotest.(check bool) "max over string is fine" false
    (has_code "preagg-non-numeric-agg" ds)

let test_plan_query_mismatches () =
  let q = query () in
  check_code "missing relation" "plan-relation-mismatch"
    (Analyzer.check_plan_for_query ~lookup q
       (Plan.join (Plan.scan "f")
          (Plan.scan ~filter:(Predicate.gt "a.w" (vi 5)) "a")
          ~on:[ "f.k1", "a.k" ]));
  let p =
    match good_plan () with
    | Plan.Join j -> Plan.Join { j with left_key = [ "f.k1" ]; right_key = [ "b.k" ] }
    | _ -> assert false
  in
  check_code "altered predicate" "plan-predicate-mismatch"
    (Analyzer.check_plan_for_query ~lookup q p);
  let rec drop_filters = function
    | Plan.Scan s -> Plan.Scan { s with filter = Predicate.tt }
    | Plan.Join j ->
      Plan.Join { j with left = drop_filters j.left; right = drop_filters j.right }
    | Plan.Preagg p -> Plan.Preagg { p with child = drop_filters p.child }
  in
  check_code "dropped pushdown filter" "plan-filter-mismatch"
    (Analyzer.check_plan_for_query ~lookup q (drop_filters (good_plan ())))

(* ---------------- query checking ---------------- *)

let test_check_query () =
  let ds = Analyzer.check_query ~lookup (query ()) in
  Alcotest.(check (list string)) "clean query" [] (codes ds);
  let dup =
    { (query ()) with
      Logical.sources =
        { Logical.name = "f"; filter = Predicate.tt }
        :: (query ()).Logical.sources }
  in
  check_code "duplicate source" "duplicate-source"
    (Analyzer.check_query ~lookup dup);
  let disc = { (query ()) with Logical.join_preds = [ "f.k1", "a.k" ] } in
  check_code "disconnected" "disconnected-join-graph"
    (Analyzer.check_query ~lookup disc);
  let bad = { (query ()) with Logical.group_cols = [ "f.zz" ] } in
  check_code "unknown column" "unknown-column"
    (Analyzer.check_query ~lookup bad);
  (* All problems reported at once, not first-error-only. *)
  let multi =
    { (query ()) with
      Logical.join_preds = [ "f.k1", "a.k" ];
      group_cols = [ "f.zz" ] }
  in
  Alcotest.(check (list string)) "both reported"
    [ "disconnected-join-graph"; "unknown-column" ]
    (codes (Analyzer.check_query ~lookup multi))

let test_too_many_relations () =
  let n = Enumerate.max_relations + 1 in
  let names = List.init n (Printf.sprintf "r%d") in
  let lookup r =
    if List.mem r names then Some (Schema.make [ r ^ ".k" ]) else None
  in
  let q =
    { Logical.sources =
        List.map (fun r -> { Logical.name = r; filter = Predicate.tt }) names;
      join_preds =
        List.init (n - 1) (fun i ->
            Printf.sprintf "r%d.k" i, Printf.sprintf "r%d.k" (i + 1));
      group_cols = []; aggs = []; projection = [] }
  in
  check_code "beyond enumerator bound" "too-many-relations"
    (Analyzer.check_query ~lookup q)

(* ---------------- pass 2: ADP conformance ---------------- *)

let test_conformance () =
  let left_deep = good_plan () in
  let bushy =
    Plan.join
      (Plan.join (Plan.scan "f")
         (Plan.scan ~filter:(Predicate.gt "a.w" (vi 5)) "a")
         ~on:[ "f.k1", "a.k" ])
      (Plan.scan "b")
      ~on:[ "f.k2", "b.k" ]
  in
  Alcotest.(check (list string)) "same leaves conform" []
    (codes (Analyzer.check_conformance [ left_deep; bushy ]));
  (* Mismatched leaf sets across phases. *)
  let smaller =
    Plan.join (Plan.scan "f")
      (Plan.scan ~filter:(Predicate.gt "a.w" (vi 5)) "a")
      ~on:[ "f.k1", "a.k" ]
  in
  check_code "phase covers fewer relations" "adp-base-set-mismatch"
    (Analyzer.check_conformance [ left_deep; smaller ]);
  (* Same base set but a different pushed-down filter: the phases would
     partition *different* streams of a. *)
  let refiltered =
    Plan.join
      (Plan.join (Plan.scan "f")
         (Plan.scan ~filter:(Predicate.gt "a.w" (vi 99)) "a")
         ~on:[ "f.k1", "a.k" ])
      (Plan.scan "b")
      ~on:[ "f.k2", "b.k" ]
  in
  check_code "phase refilters a leaf" "adp-leaf-signature-mismatch"
    (Analyzer.check_conformance [ left_deep; refiltered ])

let test_equivalence () =
  let before = good_plan () in
  let after =
    Plan.join
      (Plan.join (Plan.scan "f")
         (Plan.scan ~filter:(Predicate.gt "a.w" (vi 5)) "a")
         ~on:[ "f.k1", "a.k" ])
      (Plan.preagg ~group_cols:[ "b.k" ]
         ~aggs:[ Aggregate.count_all ~name:"n" ]
         (Plan.scan "b"))
      ~on:[ "f.k2", "b.k" ]
  in
  Alcotest.(check (list string)) "preagg insertion is equivalent" []
    (codes (Analyzer.check_equivalent ~before ~after));
  let dropped =
    Plan.join (Plan.scan "f")
      (Plan.scan ~filter:(Predicate.gt "a.w" (vi 5)) "a")
      ~on:[ "f.k1", "a.k" ]
  in
  check_code "dropping a relation" "rewrite-relation-mismatch"
    (Analyzer.check_equivalent ~before ~after:dropped)

(* ---------------- pass 3: stitch-up coverage ---------------- *)

let test_symbolic_counts () =
  (* Left-deep over 3 relations, n phases → n³ − n mixed combinations. *)
  let tree = good_plan () in
  List.iter
    (fun n ->
      let combos = Stitch_matrix.symbolic ~phases:n tree in
      Alcotest.(check int)
        (Printf.sprintf "left-deep 3 leaves, %d phases" n)
        ((n * n * n) - n)
        (List.length combos);
      Alcotest.(check (list string)) "and exactly covers the matrix" []
        (codes
           (Stitch_matrix.check_cover ~relations:(Plan.relations tree)
              ~phases:n combos)))
    [ 2; 3; 4 ];
  (* Bushy over 4 relations. *)
  let bushy =
    Plan.join
      (Plan.join (Plan.scan "w") (Plan.scan "x") ~on:[ "w.k", "x.k" ])
      (Plan.join (Plan.scan "y") (Plan.scan "z") ~on:[ "y.k", "z.k" ])
      ~on:[ "w.k", "y.k" ]
  in
  List.iter
    (fun n ->
      let combos = Stitch_matrix.symbolic ~phases:n bushy in
      Alcotest.(check int)
        (Printf.sprintf "bushy 4 leaves, %d phases" n)
        ((n * n * n * n) - n)
        (List.length combos);
      Alcotest.(check (list string)) "exactly covers" []
        (codes
           (Stitch_matrix.check_cover ~relations:(Plan.relations bushy)
              ~phases:n combos)))
    [ 2; 3 ]

let test_matrix_damage () =
  let tree = good_plan () in
  let relations = Plan.relations tree in
  let combos = Stitch_matrix.symbolic ~phases:2 tree in
  (* 2³ − 2 = 6 combinations; damage them one way at a time. *)
  Alcotest.(check int) "baseline count" 6 (List.length combos);
  check_code "missing combination" "stitch-missing-combo"
    (Stitch_matrix.check_cover ~relations ~phases:2 (List.tl combos));
  check_code "duplicated combination" "stitch-duplicate-combo"
    (Stitch_matrix.check_cover ~relations ~phases:2
       (List.hd combos :: combos));
  check_code "uniform combination leaks through" "stitch-uniform-combo"
    (Stitch_matrix.check_cover ~relations ~phases:2
       (List.map (fun r -> (r, 0)) relations :: combos));
  check_code "combination outside the matrix" "stitch-alien-combo"
    (Stitch_matrix.check_cover ~relations ~phases:2
       (List.map (fun r -> (r, 7)) relations :: combos));
  (* The buggy-evaluator model (no root exclusion list) is rejected. *)
  check_code "evaluator without exclusion list" "stitch-uniform-combo"
    (Stitch_matrix.check ~exclude_root_uniform:false ~phases:2 tree)

let test_stitch_tree_checks () =
  let q = query () in
  Alcotest.(check (list string)) "good tree passes" []
    (codes (Analyzer.check_stitch_tree ~phases:3 q (good_plan ())));
  let preagg_high =
    Plan.preagg ~group_cols:[ "f.k1" ]
      ~aggs:[ Aggregate.count_all ~name:"n" ]
      (good_plan ())
  in
  check_code "preagg above a join" "stitch-preagg-above-join"
    (Analyzer.check_stitch_tree ~phases:3 q preagg_high)

let test_matrix_too_large () =
  (* 8 relations × 6 phases = 6⁸ ≈ 1.7M > bound: warn, don't enumerate. *)
  let rels = List.init 8 (Printf.sprintf "r%d") in
  let ds = Stitch_matrix.check_cover ~relations:rels ~phases:6 [] in
  Alcotest.(check bool) "warns instead" true
    (List.exists (fun d -> d.Diagnostic.code = "stitch-matrix-too-large") ds);
  Alcotest.(check bool) "not an error" false (Diagnostic.has_errors ds)

(* ---------------- pass 4: knobs and determinism ---------------- *)

let test_knobs () =
  let ok =
    Analyzer.check_knobs ~poll_interval:1e4 ~switch_threshold:0.7
      ~max_phases:4 ~min_leaf_seen:100 ~min_remaining_fraction:0.25
      ~retry:Retry.default_policy
  in
  Alcotest.(check (list string)) "defaults are clean" [] (codes ok);
  let zero =
    Analyzer.check_knobs ~poll_interval:1e4 ~switch_threshold:0.0
      ~max_phases:1 ~min_leaf_seen:0 ~min_remaining_fraction:0.0
      ~retry:Retry.no_timeouts
  in
  Alcotest.(check (list string)) "pinned-plan config is legal" [] (codes zero);
  let bad =
    Analyzer.check_knobs ~poll_interval:(-1.0) ~switch_threshold:(-0.5)
      ~max_phases:0 ~min_leaf_seen:(-1) ~min_remaining_fraction:1.5
      ~retry:{ Retry.default_policy with jitter = 1.5; backoff_multiplier = 0.5 }
  in
  Alcotest.(check bool) "every bad knob reported" true
    (List.length (Diagnostic.errors bad) >= 6);
  Alcotest.(check (list string)) "all under one code" [ "bad-knob" ] (codes bad)

(* ---------------- effect & determinism lint ----------------------- *)

module Lint = Adp_lint.Lint
module Src_unit = Adp_lint.Src_unit

let unit_of ~path src =
  match Src_unit.parse ~path src with
  | Ok u -> u
  | Error (line, msg) ->
    Alcotest.fail (Printf.sprintf "fixture %s:%d did not parse: %s" path line msg)

let has_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let lint ?entries ~path src = Lint.analyze ?entries [ unit_of ~path src ]
let lint_codes ?entries ~path src = Diagnostic.codes (lint ?entries ~path src)

let test_lint_forbidden_effect () =
  Alcotest.(check (list string)) "wall clock flagged as an escape"
    [ "lint-wallclock-escape" ]
    (lint_codes ~path:"lib/x.ml" "let f () = Sys.time ()\n");
  Alcotest.(check (list string)) "unseeded randomness flagged"
    [ "lint-forbidden-effect" ]
    (lint_codes ~path:"lib/x.ml" "let f () = Random.int 10\n");
  Alcotest.(check (list string)) "seeded Random.State is fine" []
    (lint_codes ~path:"lib/x.ml" "let f st = Random.State.int st 10\n");
  Alcotest.(check (list string)) "reasoned waiver exempts" []
    (lint_codes ~path:"lib/x.ml"
       "let f () = Sys.time () (* determinism-ok: harness timing *)\n");
  (match lint ~path:"lib/x.ml" "let a = 1\nlet t = Unix.gettimeofday ()\n" with
   | [ d ] ->
     Alcotest.(check string) "code" "lint-wallclock-escape" d.Diagnostic.code;
     Alcotest.(check string) "path" "lib/x.ml" d.Diagnostic.path;
     Alcotest.(check bool) "message carries the line" true
       (has_sub ~sub:"line 2" d.Diagnostic.message);
     Alcotest.(check bool) "message names the sanctioned module" true
       (has_sub ~sub:"obs/wallclock.ml" d.Diagnostic.message)
   | ds -> Alcotest.fail (Diagnostic.to_string ds))

(* The structural allowlist: the one sanctioned wall-reading module is
   clean by construction (no waivers needed), and the same code moved
   anywhere else — the seeded mutation — is flagged immediately. *)
let test_lint_wallclock_allowlist () =
  let probe =
    "let monotonic_s () = Unix.gettimeofday ()\n\
     let cpu_now () = Sys.time ()\n\
     let alloc () = Gc.quick_stat ()\n"
  in
  Alcotest.(check (list string)) "sanctioned module is clean, unwaived" []
    (lint_codes ~path:"lib/obs/wallclock.ml" probe);
  Alcotest.(check (list string)) "same code elsewhere escapes"
    [ "lint-wallclock-escape" ]
    (lint_codes ~path:"lib/exec/clocky.ml" probe);
  Alcotest.(check int) "all three reads reported"
    3
    (List.length (lint ~path:"lib/exec/clocky.ml" probe));
  (* GC introspection counts as a wall read: allocation totals are
     hardware state, not virtual time. *)
  Alcotest.(check (list string)) "Gc.quick_stat classified as wall read"
    [ "lint-wallclock-escape" ]
    (lint_codes ~path:"lib/x.ml" "let f () = Gc.quick_stat ()\n");
  (* Sanctioned reads must not consume waivers: a stale waiver inside
     the sanctioned module is still reported as unused. *)
  Alcotest.(check (list string)) "waiver in sanctioned module is unused"
    [ "lint-unused-waiver" ]
    (lint_codes ~path:"lib/obs/wallclock.ml"
       "let f () = Sys.time () (* determinism-ok: stale *)\n")

(* The old substring scanner flagged banned names inside strings and
   comments; the AST-based lint must not. *)
let test_lint_string_comment_immune () =
  Alcotest.(check (list string)) "strings and comments are not uses" []
    (lint_codes ~path:"lib/x.ml"
       "(* calls Sys.time and Random.int, honest *)\n\
        let doc = \"Sys.time () and Unix.gettimeofday ()\"\n\
        let f x = x + String.length doc\n")

let test_lint_waiver_audit () =
  Alcotest.(check (list string)) "used waiver without reason is an error"
    [ "lint-waiver-reason" ]
    (lint_codes ~path:"lib/x.ml"
       "let f () = Sys.time () (* determinism-ok *)\n");
  Alcotest.(check (list string)) "unused waiver is flagged"
    [ "lint-unused-waiver" ]
    (lint_codes ~path:"lib/x.ml"
       "(* determinism-ok: nothing here needs this *)\nlet f x = x + 1\n")

let test_lint_reachability () =
  let helper =
    unit_of ~path:"lib/core/helper.ml"
      "let go () = Sys.getenv_opt \"ADP_X\"\n"
  in
  let entries = [ ("Eng", Some "run") ] in
  let eng src = unit_of ~path:"lib/core/eng.ml" src in
  let ds =
    Lint.analyze ~entries [ eng "let run () = Helper.go ()\n"; helper ]
  in
  Alcotest.(check (list string)) "ambient read reachable from entry"
    [ "lint-effect-reachable" ] (Diagnostic.codes ds);
  (match ds with
   | [ d ] ->
     Alcotest.(check bool) "witness names the chain" true
       (has_sub ~sub:"Eng.run -> Helper.go -> Sys.getenv_opt" d.Diagnostic.message)
   | _ -> Alcotest.fail "expected one diagnostic");
  let waived =
    Lint.analyze ~entries
      [ eng
          "let run () =\n\
           \  (* determinism-ok: config read once at startup *)\n\
           \  Helper.go ()\n";
        unit_of ~path:"lib/core/helper.ml"
          "let go () = Sys.getenv_opt \"ADP_X\"\n" ]
  in
  Alcotest.(check (list string)) "call-site waiver cuts the edge" []
    (Diagnostic.codes waived)

let test_lint_hash_order () =
  Alcotest.(check (list string)) "fold into a list, unsorted"
    [ "lint-unsorted-hash-fold" ]
    (lint_codes ~path:"lib/x.ml"
       "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n");
  Alcotest.(check (list string)) "fold piped into a sort is fine" []
    (lint_codes ~path:"lib/x.ml"
       "let keys h =\n\
        \  Hashtbl.fold (fun k _ acc -> k :: acc) h []\n\
        \  |> List.sort compare\n");
  Alcotest.(check (list string)) "order-insensitive fold is fine" []
    (lint_codes ~path:"lib/x.ml"
       "let total h = Hashtbl.fold (fun _ v acc -> acc + v) h 0\n");
  Alcotest.(check (list string)) "iter accumulating into a ref"
    [ "lint-unsorted-hash-iter" ]
    (lint_codes ~path:"lib/x.ml"
       "let keys h =\n\
        \  let acc = ref [] in\n\
        \  Hashtbl.iter (fun k _ -> acc := k :: !acc) h;\n\
        \  !acc\n")

let test_lint_purity () =
  let engine = "lib/exec/x.ml" in
  Alcotest.(check (list string)) "unguarded emit in engine code"
    [ "lint-unguarded-emit" ]
    (lint_codes ~path:engine "let f t ev = Trace.emit t ev\n");
  Alcotest.(check (list string)) "guarded emit is fine" []
    (lint_codes ~path:engine
       "let f t ev = if Ctx.traced t then Trace.emit t ev\n");
  Alcotest.(check (list string)) "same code outside the engine is fine" []
    (lint_codes ~path:"bench/x.ml" "let f t ev = Trace.emit t ev\n");
  Alcotest.(check (list string)) "unguarded observability read"
    [ "lint-obs-read" ]
    (lint_codes ~path:engine "let n t = Trace.events t\n");
  Alcotest.(check (list string)) "guarded observability read is fine" []
    (lint_codes ~path:engine
       "let n t = if Trace.enabled t then Trace.events t else []\n");
  Alcotest.(check bool) "emission feeding a computation" true
    (List.mem "lint-emit-feedback"
       (lint_codes ~path:engine
          "let f t g ev = g (Trace.emit t ev)\n"));
  Alcotest.(check bool) "emission bound to a name" true
    (List.mem "lint-emit-feedback"
       (lint_codes ~path:engine
          "let f t ev = let x = Trace.emit t ev in x\n"))

(* Seeded mutations of real engine sources: each must be caught with its
   stable code.  The sources are read from the repo tree when it is
   visible from the test's working directory. *)
let repo_root () =
  let rec climb best dir =
    let best =
      if
        Sys.file_exists (Filename.concat dir "dune-project")
        && Sys.file_exists (Filename.concat dir "lib")
      then Some dir
      else best
    in
    let parent = Filename.dirname dir in
    if parent = dir then best else climb best parent
  in
  climb None (Sys.getcwd ())

let read_file path = In_channel.with_open_bin path In_channel.input_all

let replace ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let buf = Buffer.create n in
  let i = ref 0 in
  let hit = ref false in
  while !i < n do
    if (not !hit) && !i + m <= n && String.sub s !i m = sub then begin
      Buffer.add_string buf by;
      hit := true;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  if not !hit then Alcotest.fail ("mutation anchor not found: " ^ sub);
  Buffer.contents buf

let test_lint_catches_seeded_mutations () =
  match repo_root () with
  | None -> ()
  | Some root ->
    let path rel = Filename.concat root rel in
    let ctx = read_file (path "lib/exec/ctx.ml") in
    let unguarded =
      replace ~sub:"if traced t then begin" ~by:"begin" ctx
    in
    Alcotest.(check bool) "dropped traced guard caught" true
      (List.mem "lint-unguarded-emit"
         (lint_codes ~path:"lib/exec/ctx.ml" unguarded));
    (* The wallclock escape mutation: a hardware clock read seeded into
       engine code — outside the one sanctioned module — must be named
       as an escape. *)
    let wall_read =
      replace ~sub:"let traced t"
        ~by:"let drift () = Unix.gettimeofday ()\nlet traced t" ctx
    in
    Alcotest.(check bool) "seeded wall read caught as escape" true
      (List.mem "lint-wallclock-escape"
         (lint_codes ~path:"lib/exec/ctx.ml" wall_read));
    let jittered =
      replace ~sub:"let traced t"
        ~by:"let jitter () = Random.int 3\nlet traced t" ctx
    in
    Alcotest.(check bool) "inserted unseeded randomness caught" true
      (List.mem "lint-forbidden-effect"
         (lint_codes ~path:"lib/exec/ctx.ml" jittered));
    let matrix = read_file (path "lib/analysis/stitch_matrix.ml") in
    let unsorted =
      replace ~sub:"|> List.sort String.compare" ~by:"" matrix
    in
    Alcotest.(check bool) "deleted sort after fold caught" true
      (List.mem "lint-unsorted-hash-fold"
         (lint_codes ~path:"lib/analysis/stitch_matrix.ml" unsorted))

(* Property: the shipped tree lints clean — zero errors, zero warnings.
   This is the committed baseline the CI gate enforces. *)
let test_lint_tree_clean () =
  match repo_root () with
  | None -> ()
  | Some root ->
    let paths =
      List.filter Sys.file_exists
        (List.map (Filename.concat root) Lint.default_paths)
    in
    let r = Lint.run paths in
    Alcotest.(check (list string)) "shipped tree lints clean" []
      (List.map
         (fun (d : Diagnostic.t) -> d.code ^ " " ^ d.path ^ " " ^ d.message)
         r.Lint.r_diags)

let test_lint_json_report () =
  let u = unit_of ~path:"lib/x.ml" "let f () = Sys.time ()\n" in
  let r = { Lint.r_files = 1; r_diags = Lint.analyze [ u ] } in
  let json = Adp_obs.Json.to_string (Lint.report_json r) in
  match Adp_obs.Json.parse json with
  | Error msg -> Alcotest.fail msg
  | Ok j ->
    let num field =
      Option.bind (Adp_obs.Json.member field j) Adp_obs.Json.get_int
    in
    Alcotest.(check (option int)) "schema" (Some 1) (num "schema");
    Alcotest.(check (option int)) "errors" (Some 1) (num "errors");
    Alcotest.(check (option int)) "warnings" (Some 0) (num "warnings");
    Alcotest.(check int) "report vs itself as baseline: no regressions" 0
      (List.length (Lint.diags_not_in_baseline r j));
    Alcotest.(check int) "report vs empty baseline: all diagnostics new" 1
      (List.length
         (Lint.diags_not_in_baseline r (Adp_obs.Json.Obj [])))

(* ---------------- property: optimizer output is always clean ------- *)

let gen_chain_workload =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let* cards = list_repeat n (int_range 10 100_000) in
    let* filtered = list_repeat n bool in
    let* phases = int_range 2 4 in
    pure (n, cards, filtered, phases))

let build_chain (n, cards, filtered, _phases) =
  let name i = Printf.sprintf "r%d" i in
  let schema i = Schema.make [ name i ^ ".k"; name i ^ ".v" ] in
  let c = Catalog.create () in
  List.iteri
    (fun i card ->
      Catalog.add c (name i)
        { Catalog.schema = schema i; cardinality = Some (float_of_int card);
          key = (if i mod 2 = 0 then Some (name i ^ ".k") else None) })
    cards;
  let q =
    { Logical.sources =
        List.init n (fun i ->
            { Logical.name = name i;
              filter =
                (if List.nth filtered i then
                   Predicate.gt (name i ^ ".v") (vi 500)
                 else Predicate.tt) });
      join_preds =
        List.init (n - 1) (fun i -> (name i ^ ".k", name (i + 1) ^ ".k"));
      group_cols = []; aggs = []; projection = [] }
  in
  (q, c)

let prop_enumerated_plans_clean =
  QCheck2.Test.make ~count:60 ~name:"every enumerated plan passes the analyzer"
    gen_chain_workload (fun ((_, _, _, phases) as w) ->
      let q, c = build_chain w in
      let lookup r = try Some (Catalog.schema_of c r) with Not_found -> None in
      let sels = Adp_stats.Selectivity.create () in
      let est = Cardinality.create q c sels in
      let best, _ = Enumerate.best_join_tree q est Cost_model.default in
      let worst, _ = Enumerate.worst_join_tree q est Cost_model.default in
      let top = List.map fst (Enumerate.top_trees ~k:3 q est Cost_model.default) in
      let plans = best :: worst :: top in
      List.for_all
        (fun p ->
          Analyzer.check_plan_for_query ~lookup q p
          |> Diagnostic.has_errors |> not)
        plans
      && Analyzer.check_conformance plans |> Diagnostic.has_errors |> not
      && List.for_all
           (fun p ->
             Analyzer.check_stitch_tree ~phases q p
             |> Diagnostic.has_errors |> not)
           plans)

(* ---------------- integration: boundaries actually fire ----------- *)

let test_corrective_rejects_bad_initial_plan () =
  let ds = Tpch.generate { Tpch.scale = 0.001; distribution = Tpch.Uniform; seed = 7 } in
  let q = Workload.query Workload.Q3A in
  let catalog = Workload.catalog ds q in
  let sources () = Workload.sources ds q () in
  (* An initial plan that drops one of Q3's relations: the analyzer must
     refuse it before any tuple is read. *)
  let bad =
    Plan.join (Plan.scan "customer") (Plan.scan "orders")
      ~on:[ "customer.c_custkey", "orders.o_custkey" ]
  in
  match
    Strategy.run ~label:"bad" ~initial_plan:bad Strategy.corrective_default q
      catalog ~sources
  with
  | _ -> Alcotest.fail "bad initial plan accepted"
  | exception Diagnostic.Failed (where, diags) ->
    Alcotest.(check string) "failed at the initial-plan boundary"
      "corrective.initial-plan" where;
    Alcotest.(check bool) "reports the relation mismatch" true
      (has_code "plan-relation-mismatch" diags)

let test_strategy_rejects_bad_query () =
  let ds = Tpch.generate { Tpch.scale = 0.001; distribution = Tpch.Uniform; seed = 7 } in
  let q = Workload.query Workload.Q3A in
  let catalog = Workload.catalog ds q in
  let sources () = Workload.sources ds q () in
  let broken = { q with Logical.group_cols = [ "customer.c_nope" ] } in
  match Strategy.run ~label:"bad" Strategy.Eddying broken catalog ~sources with
  | _ -> Alcotest.fail "bad query accepted"
  | exception Diagnostic.Failed (where, diags) ->
    Alcotest.(check string) "failed at the strategy boundary" "strategy" where;
    Alcotest.(check bool) "reports the unknown column" true
      (has_code "unknown-column" diags)

let suite =
  [ Alcotest.test_case "clean plan" `Quick test_clean_plan;
    Alcotest.test_case "spec schema" `Quick test_spec_schema;
    Alcotest.test_case "unknown source" `Quick test_unknown_source;
    Alcotest.test_case "unknown filter column" `Quick test_unknown_filter_column;
    Alcotest.test_case "dropped join key" `Quick test_dropped_join_key;
    Alcotest.test_case "unresolved join key" `Quick test_unresolved_join_key;
    Alcotest.test_case "swapped key types" `Quick test_swapped_key_types;
    Alcotest.test_case "int-float keys joinable" `Quick test_int_float_keys_joinable;
    Alcotest.test_case "duplicate source in plan" `Quick test_duplicate_source_in_plan;
    Alcotest.test_case "cross product warning" `Quick test_cross_product_warning;
    Alcotest.test_case "preagg missing column" `Quick test_preagg_missing_column;
    Alcotest.test_case "preagg non-numeric agg" `Quick test_preagg_non_numeric_agg;
    Alcotest.test_case "plan-query mismatches" `Quick test_plan_query_mismatches;
    Alcotest.test_case "check query" `Quick test_check_query;
    Alcotest.test_case "too many relations" `Quick test_too_many_relations;
    Alcotest.test_case "ADP conformance" `Quick test_conformance;
    Alcotest.test_case "rewrite equivalence" `Quick test_equivalence;
    Alcotest.test_case "symbolic matrix counts" `Quick test_symbolic_counts;
    Alcotest.test_case "damaged matrix rejected" `Quick test_matrix_damage;
    Alcotest.test_case "stitch tree checks" `Quick test_stitch_tree_checks;
    Alcotest.test_case "oversized matrix warns" `Quick test_matrix_too_large;
    Alcotest.test_case "knob ranges" `Quick test_knobs;
    Alcotest.test_case "lint: forbidden effects" `Quick
      test_lint_forbidden_effect;
    Alcotest.test_case "lint: wallclock structural allowlist" `Quick
      test_lint_wallclock_allowlist;
    Alcotest.test_case "lint: strings and comments immune" `Quick
      test_lint_string_comment_immune;
    Alcotest.test_case "lint: waiver audit" `Quick test_lint_waiver_audit;
    Alcotest.test_case "lint: entry-point reachability" `Quick
      test_lint_reachability;
    Alcotest.test_case "lint: hash-order sensitivity" `Quick
      test_lint_hash_order;
    Alcotest.test_case "lint: perturbation purity" `Quick test_lint_purity;
    Alcotest.test_case "lint: catches seeded mutations" `Quick
      test_lint_catches_seeded_mutations;
    Alcotest.test_case "lint: shipped tree is clean" `Quick
      test_lint_tree_clean;
    Alcotest.test_case "lint: JSON report and baseline" `Quick
      test_lint_json_report;
    qtest prop_enumerated_plans_clean;
    Alcotest.test_case "corrective rejects bad initial plan" `Quick
      test_corrective_rejects_bad_initial_plan;
    Alcotest.test_case "strategy rejects bad query" `Quick
      test_strategy_rejects_bad_query ]
