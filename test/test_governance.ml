(* Resource governance: circuit-breaker state-machine properties
   (qcheck), driver-level breaker integration, the deliberate-degradation
   contract (a deadline- or memory-limited run exits cleanly with a
   partial answer that is a subset-multiset of the uninterrupted run's,
   bit-identically across repeats and under tracing), the governance knob
   analyzer, the serve-script class=/deadline= grammar, and server-level
   overload protection (class quotas, priority dispatch, deadline
   shedding, report round-trip). *)

open Adp_relation
open Adp_datagen
open Adp_exec
open Helpers
module Corrective = Adp_core.Corrective
module Analyzer = Adp_analysis.Analyzer
module Diagnostic = Adp_analysis.Diagnostic
module Trace = Adp_obs.Trace
module Metrics = Adp_obs.Metrics
module Workload = Adp_query.Workload
module Sql_parser = Adp_query.Sql_parser
module Script = Adp_server.Script
module Server = Adp_server.Server

(* ---------------- breaker properties ---------------- *)

let bp =
  { Breaker.window_s = 2.0; failure_threshold = 3; cooldown_s = 0.5;
    probe_jitter = 0.1; seed = 7 }

(* Random observation schedules: (virtual-µs gap, failure?) pairs. *)
let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 80) (pair (int_bound 3_000_000) (int_bound 4))
    |> map (List.map (fun (dt, k) -> (float_of_int dt, k < 3))))

let prop_trip_needs_threshold =
  (* A breaker never leaves Closed for Open without at least
     [failure_threshold] failures inside the sliding window at the moment
     of the trip. *)
  QCheck2.Test.make
    ~name:"closed->open only with threshold failures in window (qcheck)"
    ~count:300 gen_ops (fun ops ->
      let b = Breaker.create bp in
      let now = ref 0.0 in
      List.for_all
        (fun (dt, fail) ->
          now := !now +. dt;
          let before = Breaker.state b in
          let changed =
            if fail then Breaker.record_failure b ~now:!now
            else Breaker.record_success b ~now:!now
          in
          if changed && before = Breaker.Closed && Breaker.state b = Breaker.Open
          then Breaker.failure_count b ~now:!now >= bp.Breaker.failure_threshold
          else true)
        ops)

let prop_half_open_single_probe =
  (* Once open, the breaker refuses until its probe time, then admits
     exactly one attempt; while that probe is in flight every further
     [allow] refuses, whatever the clock says. *)
  QCheck2.Test.make ~name:"half-open admits exactly one probe (qcheck)"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 20) (int_bound 2_000_000))
    (fun gaps ->
      let b = Breaker.create bp in
      (* Trip it: threshold failures in a burst at t=0. *)
      for _ = 1 to bp.Breaker.failure_threshold do
        ignore (Breaker.record_failure b ~now:0.0)
      done;
      Breaker.state b = Breaker.Open
      &&
      let pa = Breaker.probe_at b in
      (not (Breaker.allow b ~now:(pa -. 1.0)))
      && Breaker.allow b ~now:pa
      && Breaker.state b = Breaker.Half_open
      &&
      (Breaker.note_probe b;
       let now = ref pa in
       List.for_all
         (fun dt ->
           now := !now +. float_of_int dt;
           not (Breaker.allow b ~now:!now))
         gaps
       &&
       (* The failed probe re-opens with a fresh cooldown in the future. *)
       Breaker.record_failure b ~now:!now
       && Breaker.state b = Breaker.Open
       && Breaker.probe_at b > !now))

let prop_breaker_deterministic =
  (* Same policy, same salt, same observations: identical trips,
     transitions and probe schedule — the jitter stream is seeded. *)
  QCheck2.Test.make ~name:"breaker trip/reset schedule is seeded (qcheck)"
    ~count:300 gen_ops (fun ops ->
      let play () =
        let b = Breaker.create ~salt:3 bp in
        let now = ref 0.0 in
        List.map
          (fun (dt, fail) ->
            now := !now +. dt;
            let changed =
              if fail then Breaker.record_failure b ~now:!now
              else Breaker.record_success b ~now:!now
            in
            ( changed, Breaker.state b, Breaker.trips b,
              Breaker.transitions b, Breaker.probe_at b ))
          ops
      in
      play () = play ())

let test_breaker_success_closes_and_clears () =
  let b = Breaker.create bp in
  for _ = 1 to bp.Breaker.failure_threshold do
    ignore (Breaker.record_failure b ~now:0.0)
  done;
  Alcotest.(check bool) "tripped" true (Breaker.state b = Breaker.Open);
  (* Live data arriving while open closes the breaker directly and clears
     the failure window — no probe needed. *)
  Alcotest.(check bool) "success while open changes state" true
    (Breaker.record_success b ~now:1e5);
  Alcotest.(check bool) "closed" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "window cleared" 0 (Breaker.failure_count b ~now:1e5);
  Alcotest.(check int) "one trip" 1 (Breaker.trips b)

(* ---------------- driver-level breaker integration ---------------- *)

let mk_rel n = rel [ "t.k"; "t.p" ] (List.init n (fun i -> [ vi i; vi 0 ]))
let free_costs = { Cost_model.default with Cost_model.reconnect = 0.0 }

let retry_fast =
  { Retry.default_policy with
    Retry.timeout_s = 0.2; max_retries = 10; backoff_initial_s = 0.1;
    backoff_multiplier = 2.0; jitter = 0.0 }

let test_driver_breaker_recovers () =
  (* A disconnect burns failures until the breaker opens; a later probe
     finds the source rejoined, closes the breaker, and the run still
     delivers every tuple. *)
  let run () =
    let s =
      Source.create ~name:"r"
        ~faults:
          [ Source.Disconnect { after_tuples = 2; rejoin_after_s = Some 2.0 } ]
        (mk_rel 6) (Source.Bandwidth 10.0)
    in
    let brs =
      [| Breaker.create ~salt:0
           { Breaker.window_s = 60.0; failure_threshold = 2; cooldown_s = 1.0;
             probe_jitter = 0.0; seed = 5 } |]
    in
    let ctx = Ctx.create ~costs:free_costs () in
    let seen = ref 0 in
    let outcome =
      Driver.run ctx ~sources:[ s ] ~consume:(fun _ _ -> incr seen)
        ~retry:retry_fast ~breakers:brs ()
    in
    (outcome, !seen, Breaker.trips brs.(0), Breaker.state brs.(0),
     Metrics.count ctx.Ctx.breaker_trips,
     Metrics.count ctx.Ctx.breaker_transitions)
  in
  let ((outcome, seen, trips, st, m_trips, m_transitions) as a) = run () in
  Alcotest.(check bool) "exhausted" true (outcome = Driver.Exhausted);
  Alcotest.(check int) "all tuples delivered" 6 seen;
  Alcotest.(check bool) "breaker tripped" true (trips >= 1);
  Alcotest.(check bool) "closed again at the end" true (st = Breaker.Closed);
  Alcotest.(check int) "ctx counter matches the breaker" trips m_trips;
  Alcotest.(check bool) "transitions counted" true (m_transitions >= 2);
  Alcotest.(check bool) "deterministic across runs" true (a = run ())

(* ---------------- deliberate degradation ---------------- *)

(* An SPJ query (no aggregation): only for these is "partial input in,
   partial answer out" a subset-multiset — an aggregate over partial
   input produces different tuples, not fewer. *)
let spj_sql =
  "SELECT orders.o_orderkey, lineitem.l_quantity FROM orders, lineitem \
   WHERE orders.o_orderkey = lineitem.l_orderkey \
   AND orders.o_orderdate < DATE '1995-03-15'"

let dataset =
  Tpch.generate { Tpch.scale = 0.002; distribution = Tpch.Uniform; seed = 11 }

let spj_query = lazy (Sql_parser.parse ~schema_of:Tpch.schema_of spj_sql)

let spj_run ?(config = Corrective.default_config) () =
  let q = Lazy.force spj_query in
  let catalog = Workload.catalog dataset q in
  let sources = Workload.sources ~model:(Source.Bandwidth 2000.0) dataset q () in
  let result, stats = Corrective.run ~config q catalog sources in
  (Relation.to_list result, stats)

(* Is [small] a subset-multiset of [big]? *)
let bag_subset small big =
  let rec go s b =
    match (s, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: s', y :: b' ->
      let c = Tuple.compare x y in
      if c = 0 then go s' b' else if c > 0 then go s b' else false
  in
  go (List.sort Tuple.compare small) (List.sort Tuple.compare big)

let full_run = lazy (spj_run ())

let test_deadline_degrades_to_subset () =
  let full_rows, full = Lazy.force full_run in
  Alcotest.(check (option string)) "full run is complete" None
    full.Corrective.degraded_reason;
  let deadline = 0.3 *. full.Corrective.total_time in
  let config = { Corrective.default_config with deadline = Some deadline } in
  let rows, stats = spj_run ~config () in
  Alcotest.(check (option string)) "degraded by the deadline"
    (Some "deadline") stats.Corrective.degraded_reason;
  Alcotest.(check bool) "partial coverage reported" true
    (stats.Corrective.coverage < 1.0);
  Alcotest.(check bool) "finished before the full run" true
    (stats.Corrective.total_time < full.Corrective.total_time);
  Alcotest.(check bool) "degraded rows are a subset-multiset" true
    (bag_subset rows full_rows);
  Alcotest.(check bool) "strictly partial" true
    (List.length rows < List.length full_rows);
  (* Same seed, same knobs: bit-identical repeat. *)
  let rows2, stats2 = spj_run ~config () in
  Alcotest.(check bool) "repeat run is bit-identical" true
    (List.for_all2 Tuple.equal rows rows2
     && stats.Corrective.total_time = stats2.Corrective.total_time
     && stats.Corrective.result_card = stats2.Corrective.result_card
     && stats.Corrective.coverage = stats2.Corrective.coverage)

let test_ceiling_degrades_to_subset () =
  let full_rows, _ = Lazy.force full_run in
  let config =
    { Corrective.default_config with memory_ceiling = Some 200 }
  in
  let rows, stats = spj_run ~config () in
  Alcotest.(check (option string)) "degraded by the memory ceiling"
    (Some "memory") stats.Corrective.degraded_reason;
  Alcotest.(check bool) "rows are a subset-multiset" true
    (bag_subset rows full_rows)

let test_degraded_zero_perturbation () =
  (* Tracing and metrics must not move the clock or the rows of a
     degraded run — same contract as for complete runs. *)
  let full, _ = Lazy.force full_run in
  ignore full;
  let _, base = Lazy.force full_run in
  let deadline = 0.3 *. base.Corrective.total_time in
  let plain_rows, plain =
    spj_run ~config:{ Corrective.default_config with deadline = Some deadline }
      ()
  in
  let trace = Trace.memory () in
  let metrics = Metrics.create () in
  let traced_rows, traced =
    spj_run
      ~config:
        { Corrective.default_config with
          deadline = Some deadline; trace; metrics = Some metrics }
      ()
  in
  Alcotest.(check bool) "rows identical under tracing" true
    (List.length plain_rows = List.length traced_rows
     && List.for_all2 Tuple.equal plain_rows traced_rows);
  Alcotest.(check (float 0.0)) "clock identical under tracing"
    plain.Corrective.total_time traced.Corrective.total_time;
  let has pred =
    List.exists (fun (_, ev) -> pred ev) (Trace.events trace)
  in
  Alcotest.(check bool) "deadline event emitted" true
    (has (function Trace.Deadline_exceeded _ -> true | _ -> false));
  Alcotest.(check bool) "degradation event emitted" true
    (has (function
      | Trace.Query_degraded { reason = "deadline"; _ } -> true
      | _ -> false))

(* ---------------- governance knob analyzer ---------------- *)

let gov_codes ?deadline ?memory_budget ?memory_ceiling ?breaker () =
  List.map
    (fun (d : Diagnostic.t) -> d.Diagnostic.code)
    (Analyzer.check_governance ~deadline ~memory_budget ~memory_ceiling
       ~breaker)

let test_governance_knob_validation () =
  let check msg want got = Alcotest.(check (list string)) msg want got in
  check "all absent is fine" [] (gov_codes ());
  check "sane knobs are fine" []
    (gov_codes ~deadline:1e6 ~memory_budget:1000 ~memory_ceiling:2000
       ~breaker:Breaker.default_policy ());
  check "deadline must be positive" [ "gov-bad-deadline" ]
    (gov_codes ~deadline:0.0 ());
  check "budget must be positive" [ "gov-bad-budget" ]
    (gov_codes ~memory_budget:0 ());
  check "ceiling must be positive" [ "gov-bad-ceiling" ]
    (gov_codes ~memory_ceiling:(-5) ());
  check "ceiling below budget" [ "gov-ceiling-below-budget" ]
    (gov_codes ~memory_budget:1000 ~memory_ceiling:500 ());
  check "breaker window must be positive" [ "gov-bad-breaker" ]
    (gov_codes ~breaker:{ Breaker.default_policy with window_s = 0.0 } ());
  check "breaker threshold at least 1" [ "gov-bad-breaker" ]
    (gov_codes ~breaker:{ Breaker.default_policy with failure_threshold = 0 }
       ());
  check "breaker cooldown must be positive" [ "gov-bad-breaker" ]
    (gov_codes ~breaker:{ Breaker.default_policy with cooldown_s = -1.0 } ());
  check "breaker jitter in [0,1)" [ "gov-bad-breaker" ]
    (gov_codes ~breaker:{ Breaker.default_policy with probe_jitter = 1.0 } ());
  check "window shorter than cooldown flaps" [ "gov-breaker-window" ]
    (gov_codes
       ~breaker:{ Breaker.default_policy with window_s = 2.0; cooldown_s = 5.0 }
       ())

(* ---------------- serve-script grammar ---------------- *)

let test_script_governance_grammar () =
  let text =
    "at 0 submit plain Q3\n\
     at 0.5 submit tagged class=interactive deadline=2.5 Q10\n\
     at 1 submit sql deadline=0.25 SELECT * FROM x\n"
  in
  match Script.parse text with
  | Error ds -> Alcotest.failf "parse failed: %s" (Diagnostic.to_string ds)
  | Ok s ->
    (match List.map snd s with
     | [ Script.Submit { klass = None; deadline_s = None; spec = "Q3"; _ };
         Script.Submit
           { klass = Some "interactive"; deadline_s = Some 2.5;
             spec = "Q10"; _ };
         Script.Submit
           { klass = None; deadline_s = Some 0.25;
             spec = "SELECT * FROM x"; _ } ] -> ()
     | _ -> Alcotest.fail "class=/deadline= tokens did not parse")

let test_script_governance_diagnostics () =
  let expect_codes text codes =
    match Script.parse text with
    | Ok _ -> Alcotest.failf "accepted: %s" text
    | Error ds ->
      Alcotest.(check (list string)) text codes
        (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) ds)
  in
  expect_codes "at 0 submit q1 class=b@d Q3" [ "script-bad-class" ];
  expect_codes "at 0 submit q1 deadline=0 Q3" [ "script-bad-deadline" ];
  expect_codes "at 0 submit q1 deadline=soon Q3" [ "script-bad-deadline" ];
  (* Governance tokens alone leave no query spec. *)
  expect_codes "at 0 submit q1 class=interactive" [ "script-syntax" ]

(* ---------------- server-level overload protection ---------------- *)

let server_dataset =
  Tpch.generate { Tpch.scale = 0.004; distribution = Tpch.Uniform; seed = 42 }

let resolver = Server.tpch_resolver server_dataset

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "gov-test-ckpt-%d" !n in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_server ?(config = fun c -> c) script k =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let cfg = config (Server.default_config ~checkpoint_dir:dir) in
      let script =
        match Script.parse script with
        | Ok s -> s
        | Error ds -> Alcotest.failf "script: %s" (Diagnostic.to_string ds)
      in
      k (Server.run cfg resolver script))

let find_query r qid =
  match
    List.find_opt (fun q -> q.Server.qr_id = qid) r.Server.r_queries
  with
  | Some q -> q
  | None -> Alcotest.failf "no query %s in the report" qid

(* The single-query duration oracle: used to scale script deadlines so
   the tests do not hard-code virtual timings. *)
let q3_duration_s =
  lazy
    (let r = resolver "Q3" in
     let cfg =
       (Server.default_config ~checkpoint_dir:"unused").Server.corrective
     in
     let _, stats =
       Corrective.run ~config:cfg r.Server.r_query r.Server.r_catalog
         (r.Server.r_sources ())
     in
     stats.Corrective.total_time /. 1e6)

let test_server_validate_governance () =
  let codes cfg =
    List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code)
      (Server.validate cfg)
  in
  let base = Server.default_config ~checkpoint_dir:"unused" in
  Alcotest.(check (list string)) "defaults are fine" [] (codes base);
  Alcotest.(check (list string)) "empty class name"
    [ "server-bad-class" ]
    (codes { base with Server.class_quotas = [ ("", 1) ] });
  Alcotest.(check (list string)) "zero quota"
    [ "server-bad-class" ]
    (codes { base with Server.class_quotas = [ ("a", 0) ] });
  Alcotest.(check (list string)) "duplicate class"
    [ "server-bad-class" ]
    (codes { base with Server.class_quotas = [ ("a", 1); ("a", 2) ] });
  Alcotest.(check (list string)) "budget below one tuple per worker"
    [ "server-bad-memory" ]
    (codes { base with Server.memory_budget = Some 1 })

let test_class_quotas_and_priority () =
  let d = Lazy.force q3_duration_s in
  let t i = d *. 0.02 *. float_of_int i in
  let script =
    Printf.sprintf
      "at 0 submit busy Q3\n\
       at %.6f submit b1 class=batch Q3\n\
       at %.6f submit b2 class=batch Q3\n\
       at %.6f submit i1 class=interactive Q3\n\
       at %.6f submit b3 class=batch Q3\n\
       at %.6f submit p1 class=premium Q3\n"
      (t 1) (t 2) (t 3) (t 4) (t 5)
  in
  with_server
    ~config:(fun c ->
      { c with
        Server.workers = 1;
        class_quotas = [ ("interactive", 2); ("batch", 2) ] })
    script
    (fun r ->
      (* Quota: a third batch submission finds two batch queries already
         waiting and is turned away even though the queue has room. *)
      (match (find_query r "b3").Server.qr_outcome with
       | Server.Rejected reason ->
         Alcotest.(check string) "quota reject names the class"
           "class-quota:batch" reason
       | _ -> Alcotest.fail "b3 should be rejected by its class quota");
      (* A class the server was not configured with is rejected. *)
      (match (find_query r "p1").Server.qr_outcome with
       | Server.Rejected reason ->
         Alcotest.(check string) "unknown class named"
           "unknown-class:premium" reason
       | _ -> Alcotest.fail "p1 should be rejected as unknown class");
      (* Priority: interactive dispatches before batch work submitted
         earlier. *)
      let fin qid = (find_query r qid).Server.qr_finished_s in
      Alcotest.(check bool) "interactive overtakes batch" true
        (fin "i1" < fin "b1");
      Alcotest.(check string) "class recorded in the report" "interactive"
        (Option.value ~default:"" (find_query r "i1").Server.qr_class);
      Alcotest.(check int) "everything else completes" 4 r.Server.r_done)

let test_deadline_shed_and_degrade () =
  let d = Lazy.force q3_duration_s in
  (* Shedding: with one worker busy, a queued query whose deadline passes
     before dispatch is dropped at a poll, not executed. *)
  let shed_script =
    Printf.sprintf "at 0 submit busy Q3\nat %.6f submit doomed deadline=%.6f Q3"
      (d *. 0.05) (d *. 0.05)
  in
  with_server ~config:(fun c -> { c with Server.workers = 1 }) shed_script
    (fun r ->
      (match (find_query r "doomed").Server.qr_outcome with
       | Server.Rejected reason ->
         Alcotest.(check string) "shed reason" "deadline-shed" reason
       | _ -> Alcotest.fail "doomed should be shed");
      Alcotest.(check int) "shed counted" 1 r.Server.r_shed;
      Alcotest.(check int) "shed counts among rejected" 1 r.Server.r_rejected;
      Alcotest.(check int) "busy still completes" 1 r.Server.r_done);
  (* Mid-flight degradation: a dispatched query whose deadline hits
     during execution finishes as a partial answer, not a failure. *)
  let degrade_script = Printf.sprintf "at 0 submit slow deadline=%.6f Q3" (d *. 0.3) in
  with_server ~config:(fun c -> { c with Server.workers = 1 }) degrade_script
    (fun r ->
      let q = find_query r "slow" in
      (match q.Server.qr_outcome with
       | Server.Done { stats; _ } ->
         Alcotest.(check (option string)) "degraded in-flight"
           (Some "deadline") stats.Corrective.degraded_reason;
         Alcotest.(check bool) "partial coverage" true
           (stats.Corrective.coverage < 1.0)
       | _ -> Alcotest.fail "slow should finish degraded, not fail");
      (* The script text carries the deadline rounded to µs precision. *)
      Alcotest.(check (option (float 1e-6))) "deadline recorded"
        (Some (d *. 0.3)) q.Server.qr_deadline_s;
      (* The view carries the governance columns and round-trips. *)
      let v = Server.view r in
      let qv = List.hd v.Server.vr_queries in
      Alcotest.(check string) "view degraded column" "deadline"
        qv.Server.v_degraded;
      match Server.view_of_json (Server.view_to_json v) with
      | Ok v' -> Alcotest.(check bool) "JSON round-trip" true (v = v')
      | Error e -> Alcotest.failf "view round-trip failed: %s" e)

let suite =
  [ Alcotest.test_case "breaker: success while open closes and clears" `Quick
      test_breaker_success_closes_and_clears;
    qtest prop_trip_needs_threshold;
    qtest prop_half_open_single_probe;
    qtest prop_breaker_deterministic;
    Alcotest.test_case "driver: breaker trips, probes and recovers" `Quick
      test_driver_breaker_recovers;
    Alcotest.test_case "deadline degrades to a subset-multiset" `Slow
      test_deadline_degrades_to_subset;
    Alcotest.test_case "memory ceiling degrades to a subset-multiset" `Slow
      test_ceiling_degrades_to_subset;
    Alcotest.test_case "degraded runs are zero-perturbation" `Slow
      test_degraded_zero_perturbation;
    Alcotest.test_case "governance knob validation" `Quick
      test_governance_knob_validation;
    Alcotest.test_case "script: class=/deadline= grammar" `Quick
      test_script_governance_grammar;
    Alcotest.test_case "script: governance diagnostics" `Quick
      test_script_governance_diagnostics;
    Alcotest.test_case "server: governance knob validation" `Quick
      test_server_validate_governance;
    Alcotest.test_case "server: class quotas and priority dispatch" `Slow
      test_class_quotas_and_priority;
    Alcotest.test_case "server: deadline shedding and degradation" `Slow
      test_deadline_shed_and_degrade ]
