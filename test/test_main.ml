let () =
  Alcotest.run "tukwila-adp"
    [ "value", Test_value.suite;
      "schema", Test_schema.suite;
      "tuple", Test_tuple.suite;
      "predicate", Test_predicate.suite;
      "expr", Test_expr.suite;
      "relation", Test_relation.suite;
      "datagen", Test_datagen.suite;
      "stats", Test_stats.suite;
      "storage", Test_storage.suite;
      "exec", Test_exec.suite;
      "faults", Test_faults.suite;
      "plan", Test_plan.suite;
      "joins", Test_joins.suite;
      "eddy", Test_eddy.suite;
      "preagg", Test_preagg.suite;
      "optimizer", Test_optimizer.suite;
      "stitchup", Test_stitchup.suite;
      "analysis", Test_analysis.suite;
      "strategies", Test_strategies.suite;
      "sql", Test_sql.suite;
      "report", Test_report.suite;
      "obs", Test_obs.suite;
      "recovery", Test_recovery.suite;
      "server", Test_server.suite;
      "governance", Test_governance.suite;
      "timeseries", Test_timeseries.suite ]
