(* Tukwila ADP command-line interface.

   Subcommands:
     generate   print rows of a generated TPC-H-style table
     plan       show the optimizer's plan for a SQL query
     query      execute a SQL query under a chosen adaptive strategy
                (--trace/--metrics attach observability sinks)
     explain    parse a SQL query and print its logical structure, or
                replay a recorded JSONL trace as a decision timeline
     check      statically analyze a query/plan without executing it
     profile    EXPLAIN-ANALYZE-style run: per-node virtual time and
                tuple counts, estimate-vs-actual calibration, blame
     bench-diff compare two BENCH_<id>.json files with per-kind
                thresholds (regression gate for CI)
     top        render a telemetry JSONL file written by
                serve --telemetry as a text dashboard
     bench-history
                append BENCH_<id>.json documents to longitudinal
                per-bench histories and render/gate the trends *)

open Cmdliner
open Adp_relation
open Adp_datagen
open Adp_exec
open Adp_optimizer
open Adp_core
open Adp_query

(* ---------------- shared arguments ---------------- *)

let scale_arg =
  let doc = "TPC-H scale factor (0.1 reproduces the paper's 100 MB)." in
  Arg.(value & opt float 0.01 & info [ "scale" ] ~docv:"SF" ~doc)

let skew_arg =
  let doc = "Zipf skew factor for the generated data (0 = uniform)." in
  Arg.(value & opt float 0.0 & info [ "skew" ] ~docv:"Z" ~doc)

let seed_arg =
  let doc = "Random seed for data generation." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let sql_arg =
  let doc = "The SQL query (select-project-join-aggregate subset)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)

let cards_arg =
  let doc =
    "Give the optimizer the true source cardinalities (otherwise it \
     assumes the default 20,000)."
  in
  Arg.(value & flag & info [ "cardinalities"; "cards" ] ~doc)

let dataset scale skew seed =
  let distribution = if skew > 0.0 then Tpch.Skewed skew else Tpch.Uniform in
  Tpch.generate { Tpch.scale; distribution; seed }

let parse_query sql =
  try Sql_parser.parse ~schema_of:Tpch.schema_of sql
  with Sql_parser.Parse_error m ->
    Printf.eprintf "parse error: %s\n" m;
    exit 2

let parse_query_with_order sql =
  try Sql_parser.parse_with_order ~schema_of:Tpch.schema_of sql
  with Sql_parser.Parse_error m ->
    Printf.eprintf "parse error: %s\n" m;
    exit 2

(* ---------------- generate ---------------- *)

let generate_cmd =
  let table_arg =
    let doc = "Table to print (region, nation, supplier, customer, orders, lineitem)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TABLE" ~doc)
  in
  let limit_arg =
    let doc = "Rows to print." in
    Arg.(value & opt int 20 & info [ "limit"; "n" ] ~docv:"N" ~doc)
  in
  let run table limit scale skew seed =
    match Tpch.table (dataset scale skew seed) table with
    | rel -> Format.printf "%a" (Relation.pp ~limit) rel
    | exception Not_found ->
      Printf.eprintf "unknown table %s (expected one of: %s)\n" table
        (String.concat ", " Tpch.table_names);
      exit 2
  in
  let doc = "Generate and print rows of a TPC-H-style table." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const run $ table_arg $ limit_arg $ scale_arg $ skew_arg $ seed_arg)

(* ---------------- explain ---------------- *)

let explain_sql sql =
  let q = parse_query sql in
  Format.printf "%a@." Logical.pp q;
  Format.printf "sources:@.";
  List.iter
    (fun (s : Logical.source) ->
      Format.printf "  %s%s@." s.Logical.name
        (if s.Logical.filter = Predicate.tt then ""
         else " σ[" ^ Predicate.to_string s.Logical.filter ^ "]"))
    q.Logical.sources;
  if q.Logical.join_preds <> [] then begin
    Format.printf "join predicates:@.";
    List.iter
      (fun (a, b) -> Format.printf "  %s = %s@." a b)
      q.Logical.join_preds
  end;
  match Optimizer.preagg_point q with
  | Some (rel, groups) ->
    Format.printf "pre-aggregation point: %s grouped by %s@." rel
      (String.concat ", " groups)
  | None -> ()

let explain_trace path =
  match Adp_obs.Trace.read_jsonl path with
  | Ok events -> Format.printf "%a" Adp_obs.Trace.explain events
  | Error msg ->
    Printf.eprintf "%s\n" msg;
    exit 2

let explain_cmd =
  let run arg =
    if Sys.file_exists arg && not (Sys.is_directory arg) then explain_trace arg
    else explain_sql arg
  in
  let doc =
    "Parse a SQL query and print its logical structure; or, given the \
     path of a JSONL trace recorded with $(b,query --trace), replay \
     every adaptive decision as a human-readable timeline."
  in
  let arg =
    let doc = "A SQL query, or the path of a recorded JSONL trace file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL|TRACE" ~doc)
  in
  Cmd.v (Cmd.info "explain" ~doc) Term.(const run $ arg)

(* ---------------- plan ---------------- *)

let plan_cmd =
  let run sql scale skew seed cards =
    let ds = dataset scale skew seed in
    let q = parse_query sql in
    let catalog = Workload.catalog ~with_cardinalities:cards ds q in
    let sels = Adp_stats.Selectivity.create () in
    let r = Optimizer.optimize ~preagg:Optimizer.Auto q catalog sels in
    Format.printf "plan: %a@." Plan.pp_spec r.Optimizer.spec;
    Format.printf "estimated cost: %.0f, estimated output: %.0f rows@."
      r.Optimizer.est_cost r.Optimizer.est_card;
    Format.printf "alternatives:@.";
    List.iter
      (fun (alt : Optimizer.result) ->
        Format.printf "  %a  (cost %.0f)@." Plan.pp_spec alt.Optimizer.spec
          alt.Optimizer.est_cost)
      (Optimizer.alternatives ~k:3 q catalog sels)
  in
  let doc = "Show the optimizer's plan for a SQL query over generated data." in
  Cmd.v
    (Cmd.info "plan" ~doc)
    Term.(const run $ sql_arg $ scale_arg $ skew_arg $ seed_arg $ cards_arg)

(* ---------------- query ---------------- *)

let strategy_arg =
  let strategy_conv =
    Arg.enum
      [ "static", `Static; "corrective", `Corrective; "planpart", `Planpart;
        "competitive", `Competitive; "eddy", `Eddy ]
  in
  let doc =
    "Execution strategy: static, corrective, planpart, competitive, eddy."
  in
  Arg.(value & opt strategy_conv `Corrective
       & info [ "strategy"; "s" ] ~docv:"STRAT" ~doc)

let preagg_arg =
  let preagg_conv =
    Arg.enum
      [ "none", Optimizer.No_preagg; "auto", Optimizer.Auto;
        "windowed",
        Optimizer.Force (Plan.Windowed { initial = 64; max_window = 65536 });
        "traditional", Optimizer.Force Plan.Traditional ]
  in
  let doc = "Pre-aggregation strategy: none, auto, windowed, traditional." in
  Arg.(value & opt preagg_conv Optimizer.No_preagg
       & info [ "preagg" ] ~docv:"MODE" ~doc)

let model_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ "local" ] -> Ok Source.Local
    | [ "bandwidth"; r ] ->
      (try Ok (Source.Bandwidth (float_of_string r))
       with Failure _ -> Error (`Msg "bandwidth:<tuples-per-second>"))
    | [ "wireless" ] ->
      Ok (Source.Bursty { rate = 120_000.0; mean_burst = 600; mean_gap = 0.03 })
    | _ -> Error (`Msg "expected local, bandwidth:<rate>, or wireless")
  in
  let print fmt = function
    | Source.Local -> Format.fprintf fmt "local"
    | Source.Bandwidth r -> Format.fprintf fmt "bandwidth:%g" r
    | Source.Bursty _ -> Format.fprintf fmt "wireless"
  in
  let doc = "Source arrival model: local, bandwidth:RATE, wireless." in
  let model_conv = Arg.conv (parse, print) in
  Arg.(value & opt model_conv Source.Local
       & info [ "model" ] ~docv:"MODEL" ~doc)

let limit_arg =
  let doc = "Result rows to print." in
  Arg.(value & opt int 20 & info [ "limit"; "n" ] ~docv:"N" ~doc)

(* ---------------- fault injection ---------------- *)

let fault_arg =
  let parse s =
    let trigger kind spec =
      match String.split_on_char '@' spec with
      | [ k; n ] when k = kind ->
        (try Some (int_of_string n) with Failure _ -> None)
      | _ -> None
    in
    match String.split_on_char ':' s with
    | [ name; "doa" ] -> Ok (name, Source.Dead_on_arrival)
    | [ name; spec; d ] when trigger "stall" spec <> None ->
      (try
         Ok
           (name,
            Source.Stall
              { after_tuples = Option.get (trigger "stall" spec);
                duration_s = float_of_string d })
       with Failure _ -> Error (`Msg "stall duration must be a number"))
    | [ name; spec ] when trigger "disconnect" spec <> None ->
      Ok
        (name,
         Source.Disconnect
           { after_tuples = Option.get (trigger "disconnect" spec);
             rejoin_after_s = None })
    | [ name; spec; r ] when trigger "disconnect" spec <> None ->
      (try
         Ok
           (name,
            Source.Disconnect
              { after_tuples = Option.get (trigger "disconnect" spec);
                rejoin_after_s = Some (float_of_string r) })
       with Failure _ -> Error (`Msg "rejoin delay must be a number"))
    | _ ->
      Error
        (`Msg
           "expected SRC:stall@N:DUR, SRC:disconnect@N[:REJOIN], or SRC:doa")
  in
  let print fmt (name, f) =
    match f with
    | Source.Stall { after_tuples; duration_s } ->
      Format.fprintf fmt "%s:stall@%d:%g" name after_tuples duration_s
    | Source.Disconnect { after_tuples; rejoin_after_s = None } ->
      Format.fprintf fmt "%s:disconnect@%d" name after_tuples
    | Source.Disconnect { after_tuples; rejoin_after_s = Some r } ->
      Format.fprintf fmt "%s:disconnect@%d:%g" name after_tuples r
    | Source.Dead_on_arrival -> Format.fprintf fmt "%s:doa" name
  in
  let doc =
    "Inject a fault into source $(i,SRC): $(b,SRC:stall@N:DUR) goes silent \
     for DUR virtual seconds after N tuples; $(b,SRC:disconnect@N) drops \
     the connection after N tuples (append $(b,:REJOIN) seconds to make it \
     recoverable); $(b,SRC:doa) never answers.  Repeatable."
  in
  Arg.(value & opt_all (conv (parse, print)) []
       & info [ "fault" ] ~docv:"SPEC" ~doc)

let mirror_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ name ] -> Ok (name, 0)
    | [ name; lag ] ->
      (try Ok (name, int_of_string lag)
       with Failure _ -> Error (`Msg "mirror lag must be an integer"))
    | _ -> Error (`Msg "expected SRC or SRC:LAG")
  in
  let print fmt (name, lag) = Format.fprintf fmt "%s:%d" name lag in
  let doc =
    "Give source $(i,SRC) a failover mirror that resumes $(i,LAG) tuples \
     behind the failure point (default 0).  Repeatable; mirrors are tried \
     in order."
  in
  Arg.(value & opt_all (conv (parse, print)) []
       & info [ "mirror" ] ~docv:"SRC[:LAG]" ~doc)

let retry_arg =
  let doc = "Source silence timeout in virtual seconds." in
  let timeout =
    Arg.(value & opt float Retry.default_policy.Retry.timeout_s
         & info [ "retry-timeout" ] ~docv:"S" ~doc)
  in
  let doc = "Reconnect attempts before declaring a source dead." in
  let retries =
    Arg.(value & opt int Retry.default_policy.Retry.max_retries
         & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let doc = "Initial retry backoff in virtual seconds (doubles per attempt)." in
  let backoff =
    Arg.(value & opt float Retry.default_policy.Retry.backoff_initial_s
         & info [ "backoff" ] ~docv:"S" ~doc)
  in
  let combine timeout_s max_retries backoff_initial_s =
    { Retry.default_policy with timeout_s; max_retries; backoff_initial_s }
  in
  Term.(const combine $ timeout $ retries $ backoff)

(* ---------------- checkpointing / crash recovery ---------------- *)

let checkpoint_dir_arg =
  let doc =
    "Write execution checkpoints (phase ledger, operator state, stream \
     positions, observed statistics) into $(i,DIR).  By default one \
     checkpoint is written at every phase boundary; add \
     $(b,--checkpoint-every) for mid-phase snapshots."
  in
  Arg.(value & opt (some string) None
       & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let checkpoint_every_arg =
  let doc =
    "Also checkpoint every $(i,N) consumed source tuples (requires \
     $(b,--checkpoint-dir))."
  in
  Arg.(value & opt (some int) None
       & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let resume_arg =
  let doc =
    "Resume an interrupted run from $(i,PATH) (a checkpoint file or a \
     directory holding them; with no value, the latest checkpoint in \
     $(b,--checkpoint-dir)).  The interrupted phase is closed at its \
     recorded positions and the residual input continues in a new, \
     re-optimized phase; stitch-up makes the answer equal an \
     uninterrupted run's."
  in
  Arg.(value & opt ~vopt:(Some "") (some string) None
       & info [ "resume" ] ~docv:"PATH" ~doc)

let crash_arg =
  let parse s =
    match String.split_on_char ':' s with
    | [ "tuples"; n ] ->
      (try Ok (Adp_recovery.Crash.After_tuples (int_of_string n))
       with Failure _ -> Error (`Msg "tuples:<count>"))
    | [ "phase"; k ] ->
      (try Ok (Adp_recovery.Crash.At_phase_boundary (int_of_string k))
       with Failure _ -> Error (`Msg "phase:<id>"))
    | [ "stitchup" ] -> Ok Adp_recovery.Crash.During_stitchup
    | _ -> Error (`Msg "expected tuples:N, phase:K, or stitchup")
  in
  let print fmt = function
    | Adp_recovery.Crash.After_tuples n -> Format.fprintf fmt "tuples:%d" n
    | Adp_recovery.Crash.At_phase_boundary k -> Format.fprintf fmt "phase:%d" k
    | Adp_recovery.Crash.During_stitchup -> Format.fprintf fmt "stitchup"
  in
  let doc =
    "Kill the engine at an execution point (after any due checkpoint is \
     written): $(b,tuples:N) after N consumed tuples, $(b,phase:K) while \
     closing phase K, $(b,stitchup) once result assembly starts.  The \
     process exits 3; a later $(b,--resume) run picks up from the last \
     checkpoint.  Repeatable."
  in
  Arg.(value & opt_all (conv (parse, print)) []
       & info [ "crash-after"; "crash" ] ~docv:"POINT" ~doc)

(* ---------------- resource governance ---------------- *)

let breaker_arg =
  let doc =
    "Give every source a circuit breaker: $(b,--breaker-threshold) \
     connection failures within $(b,--breaker-window) trip it open — \
     retries stop burning the retry budget and the re-optimizer treats \
     the source as stalled, steering joins toward the healthy sources \
     and mirrors.  After $(b,--breaker-cooldown) (with seeded jitter) a \
     single half-open probe is admitted; a successful probe, or live \
     data, closes the breaker."
  in
  let enabled = Arg.(value & flag & info [ "breaker" ] ~doc) in
  let doc = "Breaker sliding failure window, virtual seconds." in
  let window =
    Arg.(value & opt float Breaker.default_policy.Breaker.window_s
         & info [ "breaker-window" ] ~docv:"S" ~doc)
  in
  let doc = "Connection failures within the window that trip the breaker." in
  let threshold =
    Arg.(value & opt int Breaker.default_policy.Breaker.failure_threshold
         & info [ "breaker-threshold" ] ~docv:"N" ~doc)
  in
  let doc = "Cooldown before a half-open probe, virtual seconds." in
  let cooldown =
    Arg.(value & opt float Breaker.default_policy.Breaker.cooldown_s
         & info [ "breaker-cooldown" ] ~docv:"S" ~doc)
  in
  let combine enabled window_s failure_threshold cooldown_s =
    if enabled then
      Some
        { Breaker.default_policy with
          Breaker.window_s; failure_threshold; cooldown_s }
    else None
  in
  Term.(const combine $ enabled $ window $ threshold $ cooldown)

let deadline_arg =
  let doc =
    "Deadline for the whole query, virtual seconds.  At every \
     re-optimizer poll the running plan's cost-to-go is compared against \
     the remaining budget; once the deadline cannot be met (or has \
     passed) the run degrades deliberately — the phase closes early, \
     stitch-up assembles what arrived, and the partial answer is \
     reported as DEGRADED (deadline) with its coverage."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)

let mem_budget_arg =
  let doc =
    "Soft memory budget in resident tuples: past it, join state pages \
     out most-complex-first and its probes pay the I/O penalty."
  in
  Arg.(value & opt (some int) None & info [ "mem-budget" ] ~docv:"N" ~doc)

let mem_ceiling_arg =
  let doc =
    "Hard memory ceiling in resident tuples, counting join state \
     $(i,plus) pre-aggregation windows.  Past it the run degrades to a \
     partial answer (DEGRADED (memory))."
  in
  Arg.(value & opt (some int) None & info [ "mem-ceiling" ] ~docv:"N" ~doc)

(* ---------------- observability ---------------- *)

let trace_arg =
  let doc =
    "Record every adaptive decision (re-optimizer polls, plan switches, \
     routing flips, retries, checkpoints, stitch-up, ...) as a \
     virtual-clock-stamped event trace in $(i,FILE).  A $(b,.json) \
     extension selects the Chrome trace_event format (loadable in \
     Perfetto); anything else writes JSONL, replayable with \
     $(b,tukwila explain FILE).  Tracing never perturbs the virtual \
     clock: the reported times are identical with and without it."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Dump the engine's metrics registry (global and per-plan-node \
     counters, clock gauges) into $(i,FILE) when the run ends.  A \
     $(b,.prom) extension selects the Prometheus text exposition format; \
     anything else writes JSON."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let wall_flag_arg =
  let doc =
    "Attach the wall-clock sidecar, so the $(b,--metrics) dump gains the \
     $(b,adp_wall_*) and $(b,adp_gc_*) gauges (wall/CPU seconds, sampler \
     ticks, allocation and collection totals).  The sidecar only reads \
     hardware time; the reported virtual times and results are identical \
     with and without it."
  in
  Arg.(value & flag & info [ "wall" ] ~doc)

let query_cmd =
  let run sql scale skew seed cards strategy preagg model faults mirrors
      retry limit ckpt_dir ckpt_every resume crash trace_file metrics_file
      with_wall deadline_s memory_budget memory_ceiling breaker =
    let ds = dataset scale skew seed in
    let q, order = parse_query_with_order sql in
    let catalog = Workload.catalog ~with_cardinalities:cards ds q in
    let warned = ref false in
    let sources () =
      let srcs = Workload.sources ~model ds q () in
      List.iter
        (fun src ->
          let name = Source.name src in
          List.iter
            (fun (n, f) -> if n = name then Source.inject src f)
            faults;
          List.iter
            (fun (n, lag) ->
              if n = name then
                Source.add_mirror src (Source.mirror ~lag_tuples:lag ()))
            mirrors)
        srcs;
      if not !warned then begin
        warned := true;
        let known = List.map Source.name srcs in
        List.iter
          (fun (flag, n) ->
            if not (List.mem n known) then
              Printf.eprintf "warning: %s %s: no such source in this query\n%!"
                flag n)
          (List.map (fun (n, _) -> "--fault", n) faults
           @ List.map (fun (n, _) -> "--mirror", n) mirrors)
      end;
      srcs
    in
    let checkpoint =
      match ckpt_dir with
      | Some dir ->
        Some
          (Adp_recovery.Checkpoint.policy ?every_tuples:ckpt_every ~dir ())
      | None ->
        if ckpt_every <> None then
          Printf.eprintf
            "warning: --checkpoint-every needs --checkpoint-dir\n%!";
        None
    in
    let resume_from =
      match resume with
      | None -> None
      | Some "" -> (
        match ckpt_dir with
        | Some dir -> Some dir
        | None ->
          Printf.eprintf "--resume with no path needs --checkpoint-dir\n%!";
          exit 2)
      | Some path -> Some path
    in
    let deadline = Option.map (fun s -> s *. 1e6) deadline_s in
    let recovery_cfg c =
      { c with
        Corrective.checkpoint; resume_from; crash; deadline; memory_budget;
        memory_ceiling; breaker }
    in
    let governed =
      deadline <> None || memory_budget <> None || memory_ceiling <> None
      || breaker <> None
    in
    let strategy =
      match strategy with
      | `Static ->
        if checkpoint = None && resume_from = None && crash = []
           && not governed
        then Strategy.Static
        else
          (* Static is corrective that never switches on its own; recovery
             can still force a phase switch across a crash. *)
          Strategy.Corrective
            (recovery_cfg
               { Corrective.default_config with
                 poll_interval = infinity; max_phases = 1 })
      | `Corrective ->
        Strategy.Corrective
          (recovery_cfg
             { Corrective.default_config with poll_interval = 2e4 })
      | `Planpart -> Strategy.Plan_partitioned { break_after = 3 }
      | `Competitive ->
        Strategy.Competitive { candidates = 3; explore_budget = 5e4 }
      | `Eddy -> Strategy.Eddying
    in
    (match strategy with
     | Strategy.Corrective _ | Strategy.Static -> ()
     | _ ->
       if checkpoint <> None || resume_from <> None || crash <> [] then
         Printf.eprintf
           "warning: checkpointing applies only to static/corrective runs\n%!";
       if governed then
         Printf.eprintf
           "warning: resource governance (--deadline/--mem-budget/\
            --mem-ceiling/--breaker) applies only to static/corrective \
            runs\n%!");
    let trace =
      match trace_file with
      | None -> None
      | Some path ->
        let fmt =
          if Filename.check_suffix path ".json" then Adp_obs.Trace.Chrome
          else Adp_obs.Trace.Jsonl
        in
        Some (Adp_obs.Trace.file ~format:fmt path)
    in
    let metrics =
      match metrics_file with Some _ -> Some (Adp_obs.Metrics.create ()) | None -> None
    in
    let wall = if with_wall then Some (Adp_obs.Wallclock.create ()) else None in
    (* Flush the observability sinks even when --crash kills the run: the
       trace of an interrupted run is exactly what --resume explains. *)
    let finish () =
      Option.iter Adp_obs.Trace.close trace;
      match metrics_file, metrics with
      | Some path, Some m ->
        (* The engine syncs wall gauges at its own boundaries; a final
           sync here covers crashed runs, whose registry would otherwise
           miss the last deltas. *)
        (match wall with
         | Some w -> Adp_obs.Wallclock.sync_metrics w m
         | None -> ());
        let contents =
          if Filename.check_suffix path ".prom" then
            Adp_obs.Metrics.to_prometheus m
          else Adp_obs.Json.to_string (Adp_obs.Metrics.to_json m) ^ "\n"
        in
        Adp_storage.Snapshot.write_text ~path contents
      | _ -> ()
    in
    let o =
      match
        Strategy.run ~preagg ~label:"query" ~retry ?trace ?metrics ?wall
          strategy q catalog ~sources
      with
      | o ->
        finish ();
        o
      | exception Adp_recovery.Crash.Crashed msg ->
        finish ();
        Printf.eprintf "%s\n%!" msg;
        exit 3
      | exception Adp_analysis.Diagnostic.Failed (where, ds) ->
        finish ();
        Printf.eprintf "%s: %d problem(s)\n%s\n%!" where (List.length ds)
          (Adp_analysis.Diagnostic.to_string ds);
        exit 1
    in
    Format.printf "%a@.@." Report.pp_run o.Strategy.report;
    (match wall with
     | None -> ()
     | Some w ->
       let g = Adp_obs.Wallclock.gc_totals w in
       Format.printf
         "wall %.1f ms (cpu %.1f ms); GC %s minor + %s major words@.@."
         (Adp_obs.Wallclock.elapsed_s w *. 1e3)
         (Adp_obs.Wallclock.cpu_s w *. 1e3)
         (Report.human_int (int_of_float g.Adp_obs.Wallclock.g_minor_words))
         (Report.human_int (int_of_float g.Adp_obs.Wallclock.g_major_words)));
    (match o.Strategy.corrective_stats with
     | Some stats when stats.Corrective.phases > 1 ->
       List.iter
         (fun (p : Corrective.phase_info) ->
           Format.printf "phase %d (read %d, emitted %d): %s@." p.Corrective.id
             p.Corrective.read p.Corrective.emitted p.Corrective.plan_desc)
         stats.Corrective.phase_log;
       Format.printf "@."
     | Some _ | None -> ());
    (* The engine pipelines unordered answers; the front end (this CLI)
       performs any final sorting, as in the paper's architecture. *)
    let result =
      if order = [] then o.Strategy.result
      else Relation.order_by o.Strategy.result order
    in
    Format.printf "%a" (Relation.pp ~limit) result
  in
  let doc = "Execute a SQL query over generated data under an adaptive strategy." in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(const run $ sql_arg $ scale_arg $ skew_arg $ seed_arg $ cards_arg
          $ strategy_arg $ preagg_arg $ model_arg $ fault_arg $ mirror_arg
          $ retry_arg $ limit_arg $ checkpoint_dir_arg $ checkpoint_every_arg
          $ resume_arg $ crash_arg $ trace_arg $ metrics_arg $ wall_flag_arg
          $ deadline_arg $ mem_budget_arg $ mem_ceiling_arg $ breaker_arg)

(* ---------------- check ---------------- *)

module Analyzer = Adp_analysis.Analyzer
module Diagnostic = Adp_analysis.Diagnostic
module Stitch_matrix = Adp_analysis.Stitch_matrix
module Lint = Adp_lint.Lint

(* Deliberate plan mutations, for demonstrating the analyzer and for
   exercising it in CI: each introduces one class of bug the analyzer must
   catch before execution would. *)
let break_arg =
  let mutation_conv =
    Arg.enum
      [ "drop-join-key", `Drop_join_key; "swap-join-keys", `Swap_join_keys;
        "unknown-source", `Unknown_source; "preagg-on-join", `Preagg_on_join;
        "uniform-leak", `Uniform_leak ]
  in
  let doc =
    "Mutate the optimized plan before analysis (repeatable): \
     $(b,drop-join-key) drops one key column from the top join, \
     $(b,swap-join-keys) swaps the top join's key sides, \
     $(b,unknown-source) renames a scan to a nonexistent source, \
     $(b,preagg-on-join) puts a pre-aggregation above a join in the \
     stitch-up tree, $(b,uniform-leak) models a stitch-up evaluator that \
     forgets the root exclusion list."
  in
  Arg.(value & opt_all mutation_conv [] & info [ "break" ] ~docv:"MUTATION" ~doc)

let phases_arg =
  let doc =
    "Phase count for the stitch-up coverage check (the nᵐ − n matrix)."
  in
  Arg.(value & opt int 2 & info [ "phases" ] ~docv:"N" ~doc)

let audit_arg =
  let doc =
    "Also run the effect & determinism lint over the given file or \
     directory (repeatable): flags wall-clock reads, unseeded randomness, \
     hash-order-sensitive folds and unguarded trace emission in OCaml \
     sources (same passes as $(b,tukwila lint))."
  in
  Arg.(value & opt_all string [] & info [ "audit" ] ~docv:"PATH" ~doc)

let workloads_arg =
  let doc = "Check every bundled workload (TPC-H Q3/3A/10/10A/5, flights)." in
  Arg.(value & flag & info [ "workloads" ] ~doc)

let check_sql_arg =
  let doc = "The SQL query to check (omit with $(b,--workloads))." in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)

let rec apply_mutation m spec =
  match m, spec with
  | `Drop_join_key, Plan.Join ({ left_key = _ :: _ as ks; _ } as j) ->
    Plan.Join { j with left_key = List.tl ks }
  | `Swap_join_keys, Plan.Join j ->
    Plan.Join { j with left_key = j.right_key; right_key = j.left_key }
  | (`Drop_join_key | `Swap_join_keys), Plan.Preagg ({ child; _ } as p) ->
    Plan.Preagg { p with child = apply_mutation m child }
  | `Unknown_source, _ ->
    let rec rename done_ spec =
      match spec with
      | Plan.Scan s when not !done_ ->
        done_ := true;
        Plan.Scan { s with source = s.source ^ "_missing" }
      | Plan.Scan _ -> spec
      | Plan.Join j ->
        let left = rename done_ j.left in
        Plan.Join { j with left; right = rename done_ j.right }
      | Plan.Preagg p -> Plan.Preagg { p with child = rename done_ p.child }
    in
    rename (ref false) spec
  | `Preagg_on_join, (Plan.Join { left_key = k :: _; _ } as root) ->
    Plan.preagg ~group_cols:[ k ]
      ~aggs:[ Aggregate.count_all ~name:"n" ]
      root
  | _, spec -> spec

let check_cmd =
  let run sql_opt scale skew seed phases workloads breaks audits =
    let ds = dataset scale skew seed in
    let exit_code = ref 0 in
    let report label diags =
      let errs = Diagnostic.errors diags in
      if diags = [] then Format.printf "%s: OK@." label
      else begin
        Format.printf "%s: %d error%s, %d warning%s@." label
          (List.length errs)
          (if List.length errs = 1 then "" else "s")
          (List.length diags - List.length errs)
          (if List.length diags - List.length errs = 1 then "" else "s");
        List.iter (fun d -> Format.printf "  %a@." Diagnostic.pp d) diags
      end;
      if errs <> [] then exit_code := 1
    in
    let check_one label q ~catalog ~table =
      let lookup r =
        try Some (Catalog.schema_of catalog r) with Not_found -> None
      in
      let types =
        Analyzer.types_of_relations
          (List.filter_map
             (fun r ->
               try Some (r, table r) with Not_found -> None)
             (Logical.source_names q))
      in
      let qds = Analyzer.check_query ~lookup q in
      (* A broken query has no meaningful plan to check. *)
      if Diagnostic.has_errors qds then report label qds
      else begin
        let sels = Adp_stats.Selectivity.create () in
        let plan =
          List.fold_left
            (fun spec m -> apply_mutation m spec)
            (Optimizer.optimize ~preagg:Optimizer.Auto q catalog sels)
              .Optimizer.spec
            breaks
        in
        let uniform_leak =
          if List.mem `Uniform_leak breaks then
            Stitch_matrix.check ~exclude_root_uniform:false ~phases plan
          else []
        in
        report label
          (qds
          @ Analyzer.check_plan_for_query ~types ~lookup q plan
          @ Analyzer.check_stitch_tree ~phases q plan
          @ uniform_leak)
      end
    in
    (match sql_opt with
     | Some sql ->
       let q = parse_query sql in
       check_one "query" q
         ~catalog:(Workload.catalog ~with_cardinalities:true ds q)
         ~table:(Tpch.table ds)
     | None ->
       if not workloads && audits = [] then begin
         Printf.eprintf
           "nothing to check: give a SQL query, --workloads, or --audit\n";
         exit 2
       end);
    if workloads then begin
      List.iter
        (fun wq ->
          let q = Workload.query wq in
          check_one (Workload.name wq) q
            ~catalog:(Workload.catalog ~with_cardinalities:true ds q)
            ~table:(Tpch.table ds))
        Workload.evaluated;
      let fds = Flights.generate Flights.default_config in
      let flights_table = function
        | "f" -> fds.Flights.flights
        | "t" -> fds.Flights.travelers
        | "c" -> fds.Flights.children
        | _ -> raise Not_found
      in
      check_one "flights" Workload.flights_query
        ~catalog:(Workload.flights_catalog fds)
        ~table:flights_table
    end;
    if audits <> [] then report "audit" (Lint.audit_paths audits);
    exit !exit_code
  in
  let doc =
    "Statically analyze a query and its plan without executing anything: \
     schema and join-key type checks, ADP conformance, symbolic stitch-up \
     coverage (the nᵐ − n matrix), and an optional determinism audit of \
     the source tree.  Exits 1 when any error-severity diagnostic is \
     found."
  in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const run $ check_sql_arg $ scale_arg $ skew_arg $ seed_arg
          $ phases_arg $ workloads_arg $ break_arg $ audit_arg)

(* ---------------- profile ---------------- *)

module Profile = Adp_obs.Profile
module Calibrate = Adp_obs.Calibrate

let profile_cmd =
  let workload_of_string s =
    let lc = String.lowercase_ascii s in
    List.find_opt
      (fun wq -> String.lowercase_ascii (Workload.name wq) = lc)
      Workload.evaluated
  in
  let run arg scale skew seed cards model trace_file with_wall folded_file
      perfetto_file =
    let with_wall = with_wall || folded_file <> None || perfetto_file <> None in
    let ds = dataset scale skew seed in
    let q =
      match workload_of_string arg with
      | Some wq -> Workload.query wq
      | None -> parse_query arg
    in
    let catalog = Workload.catalog ~with_cardinalities:cards ds q in
    (* The default reproduces the paper's mis-costed situation: the
       optimizer plans without statistics AND starts from the costliest
       candidate ordering (the plan an unlucky mis-estimate selects), so
       the calibration ledger has something to catch.  With --cards the
       run starts from the optimizer's own choice under true
       cardinalities. *)
    let initial_plan =
      if cards then None
      else begin
        let true_catalog = Workload.catalog ~with_cardinalities:true ds q in
        let sels = Adp_stats.Selectivity.create () in
        Some (Optimizer.pessimal q true_catalog sels).Optimizer.spec
      end
    in
    let profile = Profile.create () in
    let calibrate = Calibrate.create () in
    let wall = if with_wall then Some (Adp_obs.Wallclock.create ()) else None in
    let trace =
      match trace_file with
      | None -> None
      | Some path ->
        let fmt =
          if Filename.check_suffix path ".json" then Adp_obs.Trace.Chrome
          else Adp_obs.Trace.Jsonl
        in
        Some (Adp_obs.Trace.file ~format:fmt path)
    in
    let config =
      { Corrective.default_config with
        poll_interval = 2e4; min_leaf_seen = 200; switch_threshold = 0.8 }
    in
    let o =
      Strategy.run ~label:"profile" ?initial_plan ?trace ~profile ~calibrate
        ?wall (Strategy.Corrective config) q catalog
        ~sources:(Workload.sources ~model ds q)
    in
    Option.iter Adp_obs.Trace.close trace;
    Format.printf "%a@.@." Report.pp_run o.Strategy.report;
    let latest = Calibrate.latest_by_node calibrate in
    let blame = Option.map fst (Calibrate.worst calibrate) in
    (* Wall shadow per node, aggregated across phases: appended to the
       calibration annotation so the tree shows virtual time and its
       hardware cost side by side. *)
    let wall_by_node =
      match wall with
      | None -> []
      | Some w ->
        List.map
          (fun (i : Adp_obs.Wallclock.info) -> (i.Adp_obs.Wallclock.node, i))
          (Adp_obs.Wallclock.totals w)
    in
    let annot ~node =
      let cal =
        match List.assoc_opt node latest with
        | None -> None
        | Some ob ->
          Some
            (Printf.sprintf "est %.0f / actual %.0f (q %.2f)%s"
               ob.Calibrate.o_est ob.Calibrate.o_actual ob.Calibrate.o_q
               (if blame = Some node then "  <- blame" else ""))
      in
      let wl =
        match List.assoc_opt node wall_by_node with
        | None -> None
        | Some i ->
          Some
            (Printf.sprintf "wall %.2fms, %s minor words"
               (i.Adp_obs.Wallclock.self_s *. 1e3)
               (Report.human_int
                  (int_of_float i.Adp_obs.Wallclock.minor_words)))
      in
      match (cal, wl) with
      | None, None -> None
      | Some a, None -> Some a
      | None, Some b -> Some b
      | Some a, Some b -> Some (a ^ "; " ^ b)
    in
    Format.printf "%a@." (Profile.render ~annot) profile;
    Format.printf "%a@." Calibrate.render calibrate;
    (match wall with
     | None -> ()
     | Some w ->
       let g = Adp_obs.Wallclock.gc_totals w in
       Printf.printf
         "wall %.1f ms (cpu %.1f ms), %d sampler ticks; GC: %s minor + %s \
          major words, %d minor / %d major collections\n"
         (Adp_obs.Wallclock.elapsed_s w *. 1e3)
         (Adp_obs.Wallclock.cpu_s w *. 1e3)
         (Adp_obs.Wallclock.sample_count w)
         (Report.human_int
            (int_of_float g.Adp_obs.Wallclock.g_minor_words))
         (Report.human_int
            (int_of_float g.Adp_obs.Wallclock.g_major_words))
         g.Adp_obs.Wallclock.g_minor_collections
         g.Adp_obs.Wallclock.g_major_collections;
       let export file contents what =
         match file with
         | None -> ()
         | Some path ->
           Adp_storage.Snapshot.write_text ~path contents;
           Printf.printf "[wrote %s (%s)]\n" path what
       in
       export folded_file (Adp_obs.Wallclock.to_folded w) "collapsed stacks";
       export perfetto_file (Adp_obs.Wallclock.to_perfetto w) "Perfetto trace")
  in
  let doc =
    "Execute a query under the corrective strategy with the per-node \
     profiler and the calibration ledger attached, then print an \
     EXPLAIN-ANALYZE-style annotated plan tree (self/cumulative virtual \
     time, tuples in/out, hash probes/builds, memory high-water, \
     estimated vs. observed cardinality, the blame node of each switch \
     decision) followed by the full calibration ledger.  Profiling never \
     perturbs the run: virtual clocks and results are identical with and \
     without it.  By default the run reproduces the paper's mis-costed \
     case (no statistics, costliest initial ordering); pass \
     $(b,--cards) for a well-informed run."
  in
  let arg =
    let doc =
      "A bundled workload id (Q3, Q3A, Q10, Q10A, Q5; case-insensitive) \
       or a SQL query."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc)
  in
  let wall_arg =
    let doc =
      "Attach the wall-clock sidecar: the plan tree gains per-node wall \
       self-time and allocation annotations, and a wall/GC summary \
       follows the calibration ledger.  The sidecar only reads hardware \
       time — virtual clocks and results stay bit-identical."
    in
    Arg.(value & flag & info [ "wall" ] ~doc)
  in
  let folded_arg =
    let doc =
      "Write collapsed-stack flamegraph lines to $(i,FILE) (render with \
       $(b,tukwila flame) or any flamegraph tool).  Implies $(b,--wall)."
    in
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE" ~doc)
  in
  let perfetto_arg =
    let doc =
      "Write a Perfetto/Chrome trace with GC counter tracks and event \
       marks to $(i,FILE).  Implies $(b,--wall)."
    in
    Arg.(value & opt (some string) None & info [ "perfetto" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(const run $ arg $ scale_arg $ skew_arg $ seed_arg $ cards_arg
          $ model_arg $ trace_arg $ wall_arg $ folded_arg $ perfetto_arg)

(* ---------------- serve / server-report ---------------- *)

module Server = Adp_server.Server
module Server_script = Adp_server.Script
module Poll_controller = Adp_server.Poll_controller

let serve_cmd =
  let script_arg =
    let doc =
      "The workload script: timestamped $(b,submit)/$(b,kill)/$(b,cancel)/\
       $(b,drain) directives over server virtual time (see the README for \
       the grammar)."
    in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc)
  in
  let workers_arg =
    let doc = "Worker pool size." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let queue_cap_arg =
    let doc = "Admission bound: submissions beyond this many waiting queries \
               are rejected (load shedding)." in
    Arg.(value & opt int 16 & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let poll_min_arg =
    let doc = "Smallest dispatcher poll interval, virtual seconds." in
    Arg.(value & opt float 0.01 & info [ "poll-min" ] ~docv:"S" ~doc)
  in
  let poll_max_arg =
    let doc = "Largest dispatcher poll interval, virtual seconds." in
    Arg.(value & opt float 1.0 & info [ "poll-max" ] ~docv:"S" ~doc)
  in
  let poll_backoff_arg =
    let doc = "Interval multiplier after an empty poll (>= 1)." in
    Arg.(value & opt float 1.5 & info [ "poll-backoff" ] ~docv:"F" ~doc)
  in
  let poll_speedup_arg =
    let doc = "Interval multiplier after a busy poll (in (0, 1]), damped \
               by the busy fraction of the sliding window." in
    Arg.(value & opt float 0.7 & info [ "poll-speedup" ] ~docv:"F" ~doc)
  in
  let poll_window_arg =
    let doc = "Sliding window of recent polls damping the speedup." in
    Arg.(value & opt int 8 & info [ "poll-window" ] ~docv:"N" ~doc)
  in
  let hb_interval_arg =
    let doc = "Worker heartbeat period, virtual seconds." in
    Arg.(value & opt float 0.05 & info [ "hb-interval" ] ~docv:"S" ~doc)
  in
  let hb_timeout_arg =
    let doc = "Heartbeat silence after which the supervisor declares a \
               worker dead, virtual seconds." in
    Arg.(value & opt float 0.2 & info [ "hb-timeout" ] ~docv:"S" ~doc)
  in
  let max_retries_arg =
    let doc = "Worker-death reclaims tolerated per query before failing it." in
    Arg.(value & opt int 3 & info [ "max-retries" ] ~docv:"N" ~doc)
  in
  let retry_backoff_arg =
    let doc = "Requeue delay after a reclaim, virtual seconds (doubles per \
               subsequent reclaim of the same query)." in
    Arg.(value & opt float 0.1 & info [ "retry-backoff" ] ~docv:"S" ~doc)
  in
  let serve_ckpt_dir_arg =
    let doc = "Checkpoint root; each query checkpoints in its own subdirectory \
               (this is what worker recovery resumes from)." in
    Arg.(required & opt (some string) None
         & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)
  in
  let serve_ckpt_every_arg =
    let doc = "Also checkpoint worker runs every $(i,N) consumed source \
               tuples (0 = phase boundaries only)." in
    Arg.(value & opt int 500 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let class_arg =
    let parse s =
      match String.index_opt s '=' with
      | Some i -> (
        let name = String.sub s 0 i in
        let quota = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt quota with
        | Some q when name <> "" -> Ok (name, q)
        | _ -> Error (`Msg "expected NAME=QUOTA with an integer quota"))
      | None -> Error (`Msg "expected NAME=QUOTA")
    in
    let print fmt (n, q) = Format.fprintf fmt "%s=%d" n q in
    let doc =
      "Declare admission priority class $(i,NAME) with at most \
       $(i,QUOTA) waiting queries (beyond it, submissions under the \
       class are rejected with $(b,class-quota:NAME) even when the \
       global queue has room).  Repeatable; order is priority — earlier \
       classes dispatch first, unclassified work last.  Submitting \
       under an undeclared class is rejected ($(b,unknown-class:NAME))."
    in
    Arg.(value & opt_all (conv (parse, print)) []
         & info [ "class" ] ~docv:"NAME=QUOTA" ~doc)
  in
  let serve_mem_arg =
    let doc =
      "Global memory budget in resident tuples, partitioned evenly \
       across the pool: every worker run pages its join state under \
       $(i,N)/workers."
    in
    Arg.(value & opt (some int) None
         & info [ "memory-budget" ] ~docv:"N" ~doc)
  in
  let report_arg =
    let doc = "Write the JSON server report to $(i,FILE) (render it later \
               with $(b,tukwila server-report))." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let results_arg =
    let doc =
      "Write each completed query's full result rows to \
       $(i,DIR)/<qid>.rows — the same row syntax $(b,tukwila query) \
       prints, for multiset comparison against single-query runs."
    in
    Arg.(value & opt (some string) None & info [ "results" ] ~docv:"DIR" ~doc)
  in
  let telemetry_arg =
    let doc =
      "Record server telemetry over time into $(i,FILE) (JSONL): one \
       sample of every metric cell per dispatcher poll on the server's \
       virtual clock, per-query lifecycle spans, warm-start provenance \
       edges, and the SLO violation/recovery ledger.  Render the file \
       with $(b,tukwila top).  Sampling only reads — the reported times \
       and results are identical with and without it, and repeated \
       serves of the same script write byte-identical files."
    in
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"FILE" ~doc)
  in
  let slo_arg =
    let parse s =
      match Adp_obs.Slo.parse s with
      | Ok o -> Ok o
      | Error m -> Error (`Msg m)
    in
    let print fmt o = Format.pp_print_string fmt (Adp_obs.Slo.to_string o) in
    let doc =
      "Declare a service-level objective, evaluated at every telemetry \
       sample: $(b,NAME=METRIC [AGG] OP BOUND) where $(i,AGG) is one of \
       $(b,last) (default), $(b,rate), $(b,min), $(b,median), $(b,p95), \
       $(b,max) over the trailing window, and $(i,OP) is $(b,<), \
       $(b,<=), $(b,>) or $(b,>=) — e.g. \
       $(b,depth=adp_server_queue_depth p95 < 8).  Transitions are \
       recorded in the telemetry ledger, emitted as trace events, and \
       counted in the $(b,adp_slo_*) metrics.  Repeatable; requires \
       $(b,--telemetry)."
    in
    Arg.(value & opt_all (conv (parse, print)) []
         & info [ "slo" ] ~docv:"NAME=EXPR" ~doc)
  in
  let telemetry_wall_arg =
    let doc =
      "Attach a wall-clock shadow to every telemetry sample (through the \
       sanctioned Wallclock module).  Off by default: wall shadows make \
       the telemetry file vary across runs, breaking its byte-for-byte \
       reproducibility."
    in
    Arg.(value & flag & info [ "telemetry-wall" ] ~doc)
  in
  let run script_path scale skew seed cards workers queue_cap poll_min
      poll_max poll_backoff poll_speedup poll_window hb_interval hb_timeout
      max_retries retry_backoff ckpt_dir ckpt_every trace_file metrics_file
      report_file results_dir classes memory_budget breaker faults
      telemetry_file slos telemetry_wall =
    let script =
      match Server_script.parse_file script_path with
      | Ok s -> s
      | Error ds ->
        Printf.eprintf "%s: %d problem(s)\n%s\n" script_path (List.length ds)
          (Diagnostic.to_string ds);
        exit 2
    in
    let ds = dataset scale skew seed in
    let trace =
      match trace_file with
      | None -> Adp_obs.Trace.null
      | Some path ->
        let fmt =
          if Filename.check_suffix path ".json" then Adp_obs.Trace.Chrome
          else Adp_obs.Trace.Jsonl
        in
        Adp_obs.Trace.file ~format:fmt path
    in
    let metrics =
      match metrics_file with
      | Some _ -> Some (Adp_obs.Metrics.create ())
      | None -> None
    in
    let telemetry =
      match telemetry_file with
      | Some _ -> Some (Adp_obs.Timeseries.create ~slos ())
      | None ->
        if slos <> [] then
          Printf.eprintf "warning: --slo needs --telemetry\n%!";
        if telemetry_wall then
          Printf.eprintf "warning: --telemetry-wall needs --telemetry\n%!";
        None
    in
    let base = Server.default_config ~checkpoint_dir:ckpt_dir in
    let config =
      { base with
        Server.workers; queue_capacity = queue_cap;
        poll =
          { Poll_controller.min_interval = poll_min *. 1e6;
            max_interval = poll_max *. 1e6; backoff = poll_backoff;
            speedup = poll_speedup; window = poll_window };
        heartbeat_interval = hb_interval *. 1e6;
        heartbeat_timeout = hb_timeout *. 1e6; max_retries;
        retry_backoff = retry_backoff *. 1e6; checkpoint_every = ckpt_every;
        class_quotas = classes; memory_budget;
        corrective = { base.Server.corrective with Corrective.breaker };
        trace; metrics; telemetry; telemetry_wall }
    in
    let resolver spec =
      let r = Server.tpch_resolver ~with_cardinalities:cards ds spec in
      if faults = [] then r
      else
        { r with
          Server.r_sources =
            (fun () ->
              let srcs = r.Server.r_sources () in
              List.iter
                (fun src ->
                  List.iter
                    (fun (n, f) ->
                      if n = Source.name src then Source.inject src f)
                    faults)
                srcs;
              srcs) }
    in
    let finish () =
      Adp_obs.Trace.close trace;
      (match telemetry_file, telemetry with
       | Some path, Some ts -> Adp_obs.Timeseries.write ts ~path
       | _ -> ());
      match metrics_file, metrics with
      | Some path, Some m ->
        let contents =
          if Filename.check_suffix path ".prom" then
            Adp_obs.Metrics.to_prometheus m
          else Adp_obs.Json.to_string (Adp_obs.Metrics.to_json m) ^ "\n"
        in
        Adp_storage.Snapshot.write_text ~path contents
      | _ -> ()
    in
    let report =
      match Server.run config resolver script with
      | r ->
        finish ();
        r
      | exception Diagnostic.Failed (where, ds) ->
        finish ();
        Printf.eprintf "%s: %d problem(s)\n%s\n%!" where (List.length ds)
          (Diagnostic.to_string ds);
        exit 1
    in
    let v = Server.view report in
    Format.printf "%a" Server.pp_view v;
    Option.iter
      (fun path ->
        Adp_storage.Snapshot.write_text ~path
          (Adp_obs.Json.to_string (Server.view_to_json v) ^ "\n"))
      report_file;
    Option.iter
      (fun dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (q : Server.query_report) ->
            match q.Server.qr_outcome with
            | Server.Done { result; _ } ->
              Adp_storage.Snapshot.write_text
                ~path:(Filename.concat dir (q.Server.qr_id ^ ".rows"))
                (Format.asprintf "%a"
                   (Relation.pp ~limit:(Relation.cardinality result))
                   result)
            | _ -> ())
          report.Server.r_queries)
      results_dir;
    if report.Server.r_failed > 0 then exit 1
  in
  let doc =
    "Run a script-driven multi-query workload through the supervised \
     worker-pool server: a durable queue with admission control, an \
     adaptive-interval dispatcher, deterministic worker kills recovered \
     from checkpoints (the query resumes as a forced phase switch and its \
     result multiset equals an uninterrupted run's), and a shared \
     selectivity store letting later queries plan with earlier queries' \
     observed statistics.  The whole serve runs on a virtual clock: \
     tracing and metrics never change any reported time or result.  \
     Exits 1 if any query ends in the failed outcome."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(const run $ script_arg $ scale_arg $ skew_arg $ seed_arg
          $ cards_arg $ workers_arg $ queue_cap_arg $ poll_min_arg
          $ poll_max_arg $ poll_backoff_arg $ poll_speedup_arg
          $ poll_window_arg $ hb_interval_arg $ hb_timeout_arg
          $ max_retries_arg $ retry_backoff_arg $ serve_ckpt_dir_arg
          $ serve_ckpt_every_arg $ trace_arg $ metrics_arg $ report_arg
          $ results_arg $ class_arg $ serve_mem_arg $ breaker_arg
          $ fault_arg $ telemetry_arg $ slo_arg $ telemetry_wall_arg)

let server_report_cmd =
  let run path =
    let text =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 2
    in
    match Adp_obs.Json.parse text with
    | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      exit 2
    | Ok j -> (
      match Server.view_of_json j with
      | Ok v -> Format.printf "%a" Server.pp_view v
      | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 2)
  in
  let doc =
    "Render a JSON server report written by $(b,tukwila serve --report) \
     back into the human-readable summary."
  in
  let arg =
    let doc = "The JSON report file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"REPORT" ~doc)
  in
  Cmd.v (Cmd.info "server-report" ~doc) Term.(const run $ arg)

(* ---------------- top ---------------- *)

let top_cmd =
  let run path =
    match Adp_obs.Timeseries.read path with
    | Ok doc -> Format.printf "%a" Adp_obs.Timeseries.top doc
    | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 2
  in
  let doc =
    "Render a telemetry file written by $(b,tukwila serve --telemetry) \
     as a text dashboard: per-query span lanes on the server's virtual \
     clock (submitted/started/reclaimed/finished), a sparkline per \
     metric series with its trailing-window aggregates, the SLO status \
     and violation/recovery ledger, and warm-start provenance edges."
  in
  let arg =
    let doc = "The telemetry JSONL file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TELEMETRY" ~doc)
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(const run $ arg)

(* ---------------- bench-history ---------------- *)

let bench_history_cmd =
  let module Bench_history = Adp_obs.Benchhistory in
  let run files dir gate time_tol =
    let failed = ref false in
    List.iter
      (fun file ->
        match Adp_obs.Bjson.load file with
        | Error m ->
          Printf.eprintf "%s: %s\n" file m;
          exit 2
        | Ok doc -> (
          match Bench_history.append ~dir doc with
          | Error m ->
            Printf.eprintf "%s: %s\n" file m;
            exit 2
          | Ok _seq -> (
            let hist = Bench_history.path ~dir ~bench:doc.Adp_obs.Bjson.bench in
            match Bench_history.load hist with
            | Error m ->
              Printf.eprintf "%s: %s\n" hist m;
              exit 2
            | Ok entries ->
              Format.printf "%a" (fun ppf -> Bench_history.render ppf) entries;
              if gate then begin
                let breaches = Bench_history.gate ~time_tol entries in
                List.iter print_endline breaches;
                if breaches <> [] then begin
                  Printf.printf "FAIL %s: %d breach(es) against history\n"
                    doc.Adp_obs.Bjson.bench (List.length breaches);
                  failed := true
                end
              end)))
      files;
    if !failed then exit 1
  in
  let doc =
    "Append freshly produced $(b,BENCH_<id>.json) documents to their \
     longitudinal histories ($(i,DIR)/<id>.jsonl, one seq-numbered line \
     per run) and render each cell's trend as a sparkline with \
     first/last/median values.  With $(b,--gate), the newest run also \
     gates against its history: $(b,time) cells within $(b,--time-tol) \
     relative of the $(i,median of the prior runs), $(b,count)/$(b,bool) \
     cells exactly against the most recent prior run, $(b,wall) cells \
     never (histories may span machines).  Exits 1 on any breach."
  in
  let files_arg =
    let doc = "BENCH_<id>.json files to append and render." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"BENCH" ~doc)
  in
  let dir_arg =
    let doc = "History directory." in
    Arg.(value & opt string "bench/history" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let gate_arg =
    let doc = "Gate the newest run against its history." in
    Arg.(value & flag & info [ "gate" ] ~doc)
  in
  let tol_arg =
    let doc = "Relative tolerance for time-kind cells vs the history median." in
    Arg.(value & opt float 0.10 & info [ "time-tol" ] ~docv:"FRAC" ~doc)
  in
  Cmd.v
    (Cmd.info "bench-history" ~doc)
    Term.(const run $ files_arg $ dir_arg $ gate_arg $ tol_arg)

(* ---------------- bench-diff ---------------- *)

let bench_diff_cmd =
  let module Benchdiff = Adp_obs.Benchdiff in
  let read path =
    match Adp_obs.Bjson.load path with
    | Ok doc -> doc
    | Error m ->
      Printf.eprintf "%s: %s\n" path m;
      exit 2
  in
  let run base_path new_path time_tol wall_tol =
    let baseline = read base_path and current = read new_path in
    match Benchdiff.diff ~time_tol ~wall_tol ~baseline ~current () with
    | Error m ->
      Printf.eprintf "%s\n" m;
      exit 2
    | Ok o ->
      List.iter print_endline o.Benchdiff.o_notes;
      List.iter print_endline o.Benchdiff.o_breaches;
      if o.Benchdiff.o_breaches <> [] then begin
        Printf.printf "FAIL %s: %d breach(es) over %d gated cells\n"
          o.Benchdiff.o_bench
          (List.length o.Benchdiff.o_breaches)
          (o.Benchdiff.o_gated + o.Benchdiff.o_wall_gated);
        exit 1
      end
      else
        Printf.printf
          "OK %s: %d gated cells within thresholds (%d wall medians gated \
           variance-aware, %d wall cells informational)\n"
          o.Benchdiff.o_bench
          (o.Benchdiff.o_gated + o.Benchdiff.o_wall_gated)
          o.Benchdiff.o_wall_gated o.Benchdiff.o_wall_info
  in
  let doc =
    "Compare a freshly produced $(b,BENCH_<id>.json) against a committed \
     baseline with per-metric-kind thresholds: $(b,time) cells (virtual \
     seconds) must stay within $(b,--time-tol) relative, $(b,count) and \
     $(b,bool) cells must match exactly, and $(b,wall) cells gate \
     variance-aware when present as repetition trios \
     ($(b,<id>-wall-min/-median/-p95) in both documents): median vs. \
     median, one-sided (only slowdowns breach), with the $(b,--wall-tol) \
     tolerance automatically widened to twice the larger document's \
     repetition spread and a 5 ms noise floor.  Lone wall cells stay \
     informational.  Exits 1 on any breach, 2 on malformed or \
     incomparable inputs (schema, bench id, or scale mismatch)."
  in
  let base_arg =
    let doc = "The committed baseline BENCH_<id>.json." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc)
  in
  let new_arg =
    let doc = "The freshly produced BENCH_<id>.json to gate." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc)
  in
  let tol_arg =
    let doc = "Relative tolerance for time-kind cells." in
    Arg.(value & opt float 0.10 & info [ "time-tol" ] ~docv:"FRAC" ~doc)
  in
  let wall_tol_arg =
    let doc =
      "Base relative tolerance for wall-median comparisons (widened by \
       repetition spread)."
    in
    Arg.(value & opt float 0.5 & info [ "wall-tol" ] ~docv:"FRAC" ~doc)
  in
  Cmd.v
    (Cmd.info "bench-diff" ~doc)
    Term.(const run $ base_arg $ new_arg $ tol_arg $ wall_tol_arg)

(* ---------------- flame ---------------- *)

let flame_cmd =
  let run path min_pct =
    let text =
      try In_channel.with_open_bin path In_channel.input_all
      with Sys_error m ->
        Printf.eprintf "%s\n" m;
        exit 2
    in
    let entries =
      List.filter_map
        (fun line ->
          let line = String.trim line in
          match String.rindex_opt line ' ' with
          | None -> None
          | Some i -> (
            let stack = String.sub line 0 i in
            match
              int_of_string_opt
                (String.trim
                   (String.sub line (i + 1) (String.length line - i - 1)))
            with
            | Some c when c > 0 && stack <> "" ->
              Some (String.split_on_char ';' stack, c)
            | _ -> None))
        (String.split_on_char '\n' text)
    in
    if entries = [] then begin
      Printf.eprintf "%s: no stacks (empty or malformed folded file)\n" path;
      exit 2
    end;
    (* Fold the stacks into a prefix tree kept as flat tables: the
       cumulative weight of every stack prefix, the self weight of every
       full stack, and each prefix's child frames. *)
    let total = Hashtbl.create 64 in
    let self = Hashtbl.create 64 in
    let kids = Hashtbl.create 64 in
    let bump tbl k c =
      Hashtbl.replace tbl k
        ((match Hashtbl.find_opt tbl k with Some v -> v | None -> 0) + c)
    in
    let child parent frame =
      let cur =
        match Hashtbl.find_opt kids parent with Some l -> l | None -> []
      in
      if not (List.mem frame cur) then Hashtbl.replace kids parent (frame :: cur)
    in
    List.iter
      (fun (stack, c) ->
        let rec go parent = function
          | [] -> ()
          | frame :: rest ->
            let key = if parent = "" then frame else parent ^ ";" ^ frame in
            bump total key c;
            child parent frame;
            if rest = [] then bump self key c;
            go key rest
        in
        go "" stack)
      entries;
    let grand = List.fold_left (fun a (_, c) -> a + c) 0 entries in
    let pct c = 100.0 *. float_of_int c /. float_of_int grand in
    let bar p =
      String.make (max 1 (int_of_float (p *. 0.32 +. 0.5))) '#'
    in
    Printf.printf "%s: %d samples across %d stacks\n\n" path grand
      (List.length entries);
    let rec render indent parent =
      let children =
        List.sort
          (fun a b ->
            let ka = if parent = "" then a else parent ^ ";" ^ a in
            let kb = if parent = "" then b else parent ^ ";" ^ b in
            match
              compare (Hashtbl.find total kb) (Hashtbl.find total ka)
            with
            | 0 -> String.compare a b
            | c -> c)
          (match Hashtbl.find_opt kids parent with Some l -> l | None -> [])
      in
      List.iter
        (fun frame ->
          let key = if parent = "" then frame else parent ^ ";" ^ frame in
          let t = Hashtbl.find total key in
          let s =
            match Hashtbl.find_opt self key with Some v -> v | None -> 0
          in
          if pct t >= min_pct then begin
            Printf.printf "%6.1f%% %10d  %s%s%s  %s\n" (pct t) t indent frame
              (if s > 0 && s <> t then Printf.sprintf " (self %d)" s else "")
              (bar (pct t));
            render (indent ^ "  ") key
          end)
        children
    in
    render "" ""
  in
  let doc =
    "Render a collapsed-stack file (as written by $(b,tukwila profile \
     --folded) or any flamegraph tool: one $(i,frame;frame;...;frame \
     count) line per stack) as an indented text flamegraph, heaviest \
     subtrees first, with cumulative percentage, sample count and self \
     weight per frame."
  in
  let arg =
    let doc = "The .folded collapsed-stack file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FOLDED" ~doc)
  in
  let min_arg =
    let doc = "Hide frames below this cumulative percentage." in
    Arg.(value & opt float 0.5 & info [ "min-pct" ] ~docv:"PCT" ~doc)
  in
  Cmd.v (Cmd.info "flame" ~doc) Term.(const run $ arg $ min_arg)

(* ---------------- lint ---------------- *)

let lint_cmd =
  let run paths strict json_out baseline =
    let paths =
      match paths with
      | [] -> List.filter Sys.file_exists Lint.default_paths
      | ps -> ps
    in
    if paths = [] then begin
      Printf.eprintf "lint: no input paths (run from the repo root, or \
                      pass paths explicitly)\n";
      exit 2
    end;
    let r = Lint.run paths in
    let shown =
      match baseline with
      | None -> r.Lint.r_diags
      | Some file -> (
        match Adp_obs.Json.parse (In_channel.with_open_bin file
                                    In_channel.input_all) with
        | Ok base -> Lint.diags_not_in_baseline r base
        | Error msg ->
          Printf.eprintf "lint: unreadable baseline %s: %s\n" file msg;
          exit 2)
    in
    List.iter (fun d -> Format.printf "%a@." Diagnostic.pp d) shown;
    (match json_out with
     | None -> ()
     | Some file ->
       Out_channel.with_open_bin file (fun oc ->
           Out_channel.output_string oc
             (Adp_obs.Json.to_string (Lint.report_json r));
           Out_channel.output_char oc '\n'));
    let errs = List.length (Diagnostic.errors shown) in
    let warns = List.length shown - errs in
    Format.printf "lint: %d file%s, %d error%s, %d warning%s%s@."
      r.Lint.r_files
      (if r.Lint.r_files = 1 then "" else "s")
      errs
      (if errs = 1 then "" else "s")
      warns
      (if warns = 1 then "" else "s")
      (match baseline with None -> "" | Some _ -> " (vs baseline)");
    if errs > 0 || (strict && warns > 0) then exit 1 else exit 0
  in
  let doc =
    "Statically check the effect & determinism contracts over OCaml \
     sources: wall-clock reads and unseeded randomness (errors anywhere, \
     and traced to engine entry points with a witness chain), ambient \
     environment reads reachable from the engine, hash-order-sensitive \
     $(b,Hashtbl.fold)/$(b,iter) results, and trace emission outside a \
     traced guard.  Findings are waived per-site with a \
     $(b,(* determinism-ok: reason *)) comment; the reason is mandatory \
     and unused waivers are flagged.  Exits 1 on errors (with \
     $(b,--strict), also on warnings)."
  in
  let paths_arg =
    let doc =
      "Files or directories to lint (default: lib bin bench test)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let strict_arg =
    let doc = "Treat warnings as fatal." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let json_arg =
    let doc = "Write the full report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let baseline_arg =
    let doc =
      "Only report diagnostics absent from this previously written \
       $(b,--json) report."
    in
    Arg.(value & opt (some file) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(const run $ paths_arg $ strict_arg $ json_arg $ baseline_arg)

let () =
  let doc =
    "Tukwila-style adaptive query processing over generated data-integration \
     workloads (reproduction of Ives, Halevy & Weld, SIGMOD 2004)"
  in
  let info = Cmd.info "tukwila" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; explain_cmd; plan_cmd; query_cmd; check_cmd;
            profile_cmd; flame_cmd; serve_cmd; server_report_cmd; top_cmd;
            bench_diff_cmd; bench_history_cmd; lint_cmd ]))
