bench/bench_common.ml: Adp_core Adp_datagen Adp_exec Adp_optimizer Adp_query Adp_stats Corrective Hashtbl Lazy Printf Report Source Strategy Sys Tpch Workload
