bench/bench_figure2.ml: Adp_core Adp_query Bench_common List Printf Report Workload
