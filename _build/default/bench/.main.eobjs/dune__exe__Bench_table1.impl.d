bench/bench_table1.ml: Adp_core Adp_exec Adp_query Bench_common Corrective List Report Stitchup Strategy Workload
