bench/main.ml: Array Bench_ablation Bench_common Bench_figure2 Bench_figure3 Bench_figure5 Bench_figure6 Bench_micro Bench_sec45 Bench_table1 Bench_table2 List Printf Sys
