bench/main.mli:
