bench/bench_figure3.ml: Adp_core Adp_query Bench_common List Printf String Workload
