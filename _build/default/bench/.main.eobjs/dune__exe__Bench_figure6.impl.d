bench/bench_figure6.ml: Adp_core Adp_exec Adp_optimizer Adp_query Bench_common Lazy List Optimizer Printf Report Source Strategy Workload
