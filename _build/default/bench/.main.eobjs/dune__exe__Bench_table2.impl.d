bench/bench_table2.ml: Bench_common Bench_table1
