bench/bench_figure5.ml: Adp_core Adp_datagen Adp_exec Adp_relation Bench_common Comp_join Ctx Driver Lazy List Perturb Printf Prng Relation Report Source String Sym_join Tpch
