open Adp_relation

(** Source-description catalog.

    In data integration, a source description typically records only the
    schema; cardinalities, orderings and keys may be absent.  When a
    cardinality is missing, the optimizer assumes {!default_cardinality}
    (the paper uses 20,000 — roughly the median table size of its TPC
    datasets). *)

type info = {
  schema : Schema.t;
  cardinality : float option;  (** [None] = unknown *)
  key : string option;  (** primary-key column, when declared *)
}

type t

val create : unit -> t

val add : t -> string -> info -> unit

(** @raise Not_found for unknown relations. *)
val info : t -> string -> info

val schema_of : t -> string -> Schema.t

val default_cardinality : float

(** Cardinality with the default assumption applied. *)
val cardinality : t -> string -> float

(** Whether the column is the declared key of its relation. *)
val is_key : t -> relation:string -> column:string -> bool

val relations : t -> string list
