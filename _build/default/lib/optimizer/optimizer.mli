open Adp_exec

(** The query (re-)optimizer: System-R-style bushy enumeration with the
    re-estimation features of §4.2, plus pre-aggregation push-down
    (after Chaudhuri & Shim).

    Re-optimization is the same entry point with a refreshed
    {!Adp_stats.Selectivity} registry: the estimator prefers observed
    selectivities, so the "best" tree shifts as execution reveals the
    data. *)

type preagg_strategy =
  | No_preagg
  | Auto  (** systematically insert adjustable-window pre-aggregation at
              every legal point — it is low-risk (§6) *)
  | Force of Plan.preagg_mode
      (** insert the given operator at the legal point (experiments) *)

type result = {
  spec : Plan.spec;
  est_cost : float;  (** estimated virtual-clock cost, incl. final agg *)
  est_card : float;  (** estimated root output cardinality *)
}

(** [optimize ?preagg ?costs q catalog sels] picks the best bushy join
    tree for [q].  @raise Invalid_argument on malformed queries. *)
val optimize :
  ?preagg:preagg_strategy ->
  ?costs:Cost_model.t ->
  Logical.query ->
  Catalog.t ->
  Adp_stats.Selectivity.t ->
  result

(** Apply a pre-aggregation strategy to an existing join tree (inserting
    the operator at the query's push-down point, if any).  Idempotent.
    Every plan participating in one adaptive execution must receive the
    same strategy so that equivalent subexpressions share schemas across
    plans (§3.2). *)
val apply_preagg_strategy :
  preagg_strategy -> Logical.query -> Plan.spec -> Plan.spec

(** The costliest cross-product-free candidate plan under the given
    statistics — deterministic stand-in for the "poor plan" a
    mis-estimating optimizer picks (used by the Figure 2/3 reproduction
    and by adversarial tests). *)
val pessimal :
  ?costs:Cost_model.t ->
  Logical.query ->
  Catalog.t ->
  Adp_stats.Selectivity.t ->
  result

(** Up to [k] alternative root plans, best first (for redundant
    computation). *)
val alternatives :
  ?k:int ->
  ?costs:Cost_model.t ->
  Logical.query ->
  Catalog.t ->
  Adp_stats.Selectivity.t ->
  result list

(** The scan branch (relation name) eligible for pre-aggregation
    push-down, with the pre-aggregation group columns: all aggregate input
    columns must come from one relation; the partial groups include that
    relation's group-by columns and every join column it contributes
    (§2.2).  [None] when the query has no aggregates or they span
    relations. *)
val preagg_point : Logical.query -> (string * string list) option
