open Adp_relation

type info = {
  schema : Schema.t;
  cardinality : float option;
  key : string option;
}

type t = { table : (string, info) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }

let add t name info = Hashtbl.replace t.table name info

let info t name =
  match Hashtbl.find_opt t.table name with
  | Some i -> i
  | None -> raise Not_found

let schema_of t name = (info t name).schema

let default_cardinality = 20_000.0

let cardinality t name =
  match (info t name).cardinality with
  | Some c -> c
  | None -> default_cardinality

let is_key t ~relation ~column =
  match (info t relation).key with
  | Some k -> k = column
  | None -> false

let relations t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table []
  |> List.sort String.compare
