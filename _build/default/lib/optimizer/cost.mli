open Adp_exec

(** Plan cost estimation, commensurable with the executor's virtual clock:
    the same {!Adp_exec.Cost_model} constants price the same per-tuple
    operations the runtime charges, so "estimated cost" and "observed
    progress" live on one scale — which is what lets the corrective
    processor compare cost-to-go of the running plan against
    alternatives. *)

(** [plan_cost costs est spec] returns (estimated CPU cost, estimated
    output cardinality) of executing [spec] to completion with symmetric
    hash joins. *)
val plan_cost : Cost_model.t -> Cardinality.t -> Plan.spec -> float * float

(** Cost of the full query: the plan plus the final aggregation over its
    output. *)
val query_cost : Cost_model.t -> Cardinality.t -> Plan.spec -> float
