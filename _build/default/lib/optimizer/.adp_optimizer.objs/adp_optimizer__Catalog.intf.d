lib/optimizer/catalog.mli: Adp_relation Schema
