lib/optimizer/enumerate.ml: Adp_exec Array Cardinality Cost Cost_model Float List Logical Plan
