lib/optimizer/cardinality.mli: Adp_relation Adp_stats Catalog Logical Predicate
