lib/optimizer/cost.mli: Adp_exec Cardinality Cost_model Plan
