lib/optimizer/logical.mli: Adp_exec Adp_relation Aggregate Format Predicate Schema
