lib/optimizer/enumerate.mli: Adp_exec Cardinality Cost_model Logical Plan
