lib/optimizer/cost.ml: Adp_exec Adp_relation Cardinality Cost_model Plan Predicate
