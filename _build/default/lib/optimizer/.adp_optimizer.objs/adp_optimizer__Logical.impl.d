lib/optimizer/logical.ml: Adp_exec Adp_relation Aggregate Expr Format Hashtbl List Plan Predicate Printf Schema String
