lib/optimizer/catalog.ml: Adp_relation Hashtbl List Schema String
