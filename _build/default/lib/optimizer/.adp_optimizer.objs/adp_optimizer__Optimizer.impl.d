lib/optimizer/optimizer.ml: Adp_exec Adp_relation Cardinality Catalog Cost Cost_model Enumerate List Logical Plan
