lib/optimizer/cardinality.ml: Adp_relation Adp_stats Catalog Hashtbl List Logical Option Predicate String
