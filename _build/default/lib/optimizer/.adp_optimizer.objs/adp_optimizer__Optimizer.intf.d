lib/optimizer/optimizer.mli: Adp_exec Adp_stats Catalog Cost_model Logical Plan
