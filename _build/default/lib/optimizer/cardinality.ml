open Adp_relation

type t = {
  query : Logical.query;
  catalog : Catalog.t;
  sels : Adp_stats.Selectivity.t;
  memo : (string, float) Hashtbl.t;
}

let create query catalog sels = { query; catalog; sels; memo = Hashtbl.create 64 }

let refresh t = Hashtbl.reset t.memo

let rec filter_selectivity = function
  | Predicate.True -> 1.0
  | Predicate.Cmp (op, _, _) | Predicate.Col_cmp (op, _, _) ->
    (match op with
     | Predicate.Eq -> 0.1
     | Predicate.Ne -> 0.9
     | Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge -> 1.0 /. 3.0)
  | Predicate.Between _ -> 0.25
  | Predicate.In (_, vs) -> min 1.0 (0.1 *. float_of_int (List.length vs))
  | Predicate.Not p -> 1.0 -. filter_selectivity p
  | Predicate.And (a, b) -> filter_selectivity a *. filter_selectivity b
  | Predicate.Or (a, b) -> min 1.0 (filter_selectivity a +. filter_selectivity b)

(* Exact cardinality once the source is exhausted; otherwise the catalog
   value, floored by what has already been read (a sound lower bound). *)
let raw_cardinality t name =
  match Adp_stats.Selectivity.final_cardinality t.sels name with
  | Some total -> float_of_int (max 1 total)
  | None ->
    let seen =
      Option.value ~default:0 (Adp_stats.Selectivity.cardinality t.sels name)
    in
    max (Catalog.cardinality t.catalog name) (float_of_int seen)

let leaf_cardinality t name =
  let sg = Logical.signature_of_set t.query [ name ] in
  match Adp_stats.Selectivity.lookup t.sels sg with
  | Some sel -> max 1.0 (sel *. raw_cardinality t name)
  | None ->
    let src = List.find (fun s -> s.Logical.name = name) t.query.sources in
    max 1.0 (filter_selectivity src.Logical.filter *. raw_cardinality t name)

(* Default selectivity of one equi-join predicate: 1/card(key side) when a
   declared key participates (key–FK), else 1/max. *)
let pred_selectivity t (a, b) =
  let ra = Logical.relation_of_column a
  and rb = Logical.relation_of_column b in
  let ca = raw_cardinality t ra and cb = raw_cardinality t rb in
  let canon = if String.compare a b <= 0 then a ^ "=" ^ b else b ^ "=" ^ a in
  match Adp_stats.Selectivity.multiplicative_factor t.sels canon with
  | Some f -> f /. max 1.0 (min ca cb)
  | None ->
    let key_a = Catalog.is_key t.catalog ~relation:ra ~column:a in
    let key_b = Catalog.is_key t.catalog ~relation:rb ~column:b in
    if key_a && key_b then 1.0 /. max 1.0 (max ca cb)
    else if key_a then 1.0 /. max 1.0 ca
    else if key_b then 1.0 /. max 1.0 cb
    else 1.0 /. max 1.0 (max ca cb)

let rec set_cardinality t rels =
  let rels = List.sort String.compare rels in
  match rels with
  | [] -> 0.0
  | [ r ] -> leaf_cardinality t r
  | _ ->
    let memo_key = String.concat ";" rels in
    (match Hashtbl.find_opt t.memo memo_key with
     | Some v -> v
     | None ->
       let v = estimate_set t rels in
       Hashtbl.replace t.memo memo_key v;
       v)

and estimate_set t rels =
  let sg = Logical.signature_of_set t.query rels in
  (* A direct output prediction (linear extrapolation by the monitor)
     beats everything; observed selectivity applied to raw cardinalities
     is the fallback. *)
  match Adp_stats.Selectivity.lookup_output t.sels sg with
  | Some card -> max 1.0 card
  | None ->
  match Adp_stats.Selectivity.lookup t.sels sg with
  | Some sel ->
    let prod =
      List.fold_left (fun acc r -> acc *. raw_cardinality t r) 1.0 rels
    in
    max 0.0 (sel *. prod)
  | None ->
    (* System-R candidate: product of filtered leaves times predicate
       selectivities, each predicate corrected from filtered to raw basis
       by construction of [pred_selectivity] (which uses raw cards). *)
    let sys_r =
      let leaves =
        List.fold_left (fun acc r -> acc *. leaf_cardinality t r) 1.0 rels
      in
      let preds =
        List.filter
          (fun (a, b) ->
            List.mem (Logical.relation_of_column a) rels
            && List.mem (Logical.relation_of_column b) rels)
          t.query.Logical.join_preds
      in
      List.fold_left (fun acc p -> acc *. pred_selectivity t p) leaves preds
    in
    (* Key–FK speculation: for each relation attached to the rest through
       its own key, the join should preserve the rest's cardinality.  Only
       sound when the rest stays connected — a disconnected rest contains
       a cross product and its estimate would poison the average. *)
    let speculations =
      List.filter_map
        (fun r ->
          let rest = List.filter (( <> ) r) rels in
          let connecting =
            Logical.preds_between t.query ~inside:[ r ] ~outside:rest
          in
          let keyed =
            List.exists
              (fun (inside_col, _) ->
                Catalog.is_key t.catalog ~relation:r ~column:inside_col)
              connecting
          in
          if keyed && connecting <> [] && Logical.connected t.query rest then
            Some (set_cardinality t rest)
          else None)
        rels
    in
    let candidates = sys_r :: speculations in
    let sum = List.fold_left ( +. ) 0.0 candidates in
    max 1.0 (sum /. float_of_int (List.length candidates))
