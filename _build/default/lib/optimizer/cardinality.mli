open Adp_relation

(** Cardinality and selectivity (re-)estimation (§4.2).

    Estimates prefer, in order:

    + the selectivity observed at run time for a logically equivalent
      subexpression (shared across plan shapes via canonical signatures);
    + for join predicates flagged as "multiplicative" (observed output
      exceeding both inputs), the pinned expansion factor;
    + the average of the System-R-style estimate and, for each key–foreign
      key edge attaching a relation to the rest of the subexpression, the
      speculation that the join preserves the foreign-key side's
      cardinality.

    All estimates are memoized per relation set; {!refresh} clears the
    memo after new observations arrive. *)

type t

val create : Logical.query -> Catalog.t -> Adp_stats.Selectivity.t -> t

(** Static selectivity of a selection predicate (System-R constants). *)
val filter_selectivity : Predicate.t -> float

(** Raw (catalog) cardinality of a base relation. *)
val raw_cardinality : t -> string -> float

(** Post-filter cardinality of a scan, using observed leaf selectivity
    when available. *)
val leaf_cardinality : t -> string -> float

(** Estimated output cardinality of the join over exactly this relation
    set (with all applicable predicates and leaf filters). *)
val set_cardinality : t -> string list -> float

(** Drop memoized estimates (call after updating the selectivity
    registry). *)
val refresh : t -> unit
