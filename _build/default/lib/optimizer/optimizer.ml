open Adp_exec

type preagg_strategy = No_preagg | Auto | Force of Plan.preagg_mode

type result = { spec : Plan.spec; est_cost : float; est_card : float }

let uniq xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] xs

let preagg_point (q : Logical.query) =
  if q.aggs = [] then None
  else begin
    let agg_rels =
      List.concat_map
        (fun (a : Adp_exec.Aggregate.spec) ->
          List.map Logical.relation_of_column (Adp_relation.Expr.columns a.expr))
        q.aggs
      |> uniq
    in
    match agg_rels with
    | [ r ] when List.length q.sources > 1 ->
      let group_from_r =
        List.filter (fun c -> Logical.relation_of_column c = r) q.group_cols
      in
      let join_cols_of_r =
        List.concat_map
          (fun (a, b) ->
            List.filter (fun c -> Logical.relation_of_column c = r) [ a; b ])
          q.join_preds
      in
      let groups = uniq (group_from_r @ join_cols_of_r) in
      if groups = [] then None else Some (r, groups)
    | _ -> None
  end

let rec insert_preagg spec relation ~group_cols ~aggs ~mode =
  match spec with
  | Plan.Scan s when s.source = relation ->
    Plan.preagg ~mode ~group_cols ~aggs spec
  | Plan.Scan _ -> spec
  | Plan.Join j ->
    Plan.Join
      { j with
        left = insert_preagg j.left relation ~group_cols ~aggs ~mode;
        right = insert_preagg j.right relation ~group_cols ~aggs ~mode }
  | Plan.Preagg _ -> spec

let apply_preagg strategy q spec =
  let mode =
    match strategy with
    | No_preagg -> None
    | Auto -> Some (Plan.Windowed { initial = 64; max_window = 65536 })
    | Force m -> Some m
  in
  match mode, preagg_point q with
  | Some mode, Some (relation, group_cols) ->
    insert_preagg spec relation ~group_cols ~aggs:q.Logical.aggs ~mode
  | (None | Some _), _ -> spec

let apply_preagg_strategy strategy q spec = apply_preagg strategy q spec

let finish ?(preagg = No_preagg) costs q est (tree, _enum_cost) =
  let spec = apply_preagg preagg q tree in
  let est_cost = Cost.query_cost costs est spec in
  let est_card =
    Cardinality.set_cardinality est (Logical.source_names q)
  in
  { spec; est_cost; est_card }

let optimize ?(preagg = No_preagg) ?(costs = Cost_model.default) q catalog sels =
  Logical.validate ~schema_of:(Catalog.schema_of catalog) q;
  let est = Cardinality.create q catalog sels in
  let best = Enumerate.best_join_tree q est costs in
  finish ~preagg costs q est best

let pessimal ?(costs = Cost_model.default) q catalog sels =
  Logical.validate ~schema_of:(Catalog.schema_of catalog) q;
  let est = Cardinality.create q catalog sels in
  let worst = Enumerate.worst_join_tree q est costs in
  finish costs q est worst

let alternatives ?(k = 3) ?(costs = Cost_model.default) q catalog sels =
  Logical.validate ~schema_of:(Catalog.schema_of catalog) q;
  let est = Cardinality.create q catalog sels in
  Enumerate.top_trees ~k q est costs
  |> List.map (fun cand -> finish costs q est cand)
