open Adp_relation
open Adp_exec

let rec plan_cost (c : Cost_model.t) est = function
  | Plan.Scan { source; filter } ->
    let raw = Cardinality.raw_cardinality est source in
    let out = Cardinality.leaf_cardinality est source in
    let atoms = float_of_int (max 1 (Predicate.size filter)) in
    raw *. c.filter_atom *. atoms, out
  | Plan.Join { left; right; _ } ->
    let lc, ln = plan_cost c est left in
    let rc, rn = plan_cost c est right in
    let rels = Plan.relations left @ Plan.relations right in
    let out = Cardinality.set_cardinality est rels in
    let work =
      ((ln +. rn) *. (c.hash_build +. c.hash_probe)) +. (out *. c.per_match)
    in
    lc +. rc +. work, out
  | Plan.Preagg { child; _ } ->
    let cc, cn = plan_cost c est child in
    (* The adjustable window is speculative: the optimizer assumes no
       collapse (worst case) and only the small per-tuple update cost. *)
    cc +. (cn *. c.preagg_update), cn

let query_cost c est spec =
  let cost, out = plan_cost c est spec in
  cost +. (out *. c.agg_update)
