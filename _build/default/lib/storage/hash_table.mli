open Adp_relation

(** Multimap hash table from composite keys to tuples — the state structure
    behind pipelined hash joins, hybrid hash joins, aggregation, and
    stitch-up reuse.

    The table knows which columns of its tuples form the key, so it can be
    {!rehash}ed on a different key for stitch-up (§3.4.3 rehashes one
    structure "if necessary for performance") and exposes its contents for
    sharing across plans (§3.1 "exposing state").

    Overflow: {!swap_out}/{!swap_in} model spilling to disk.  Contents stay
    addressable (this is a simulation, not an actual spill); the flag is
    consulted by the cost model, which charges I/O for probes against
    swapped structures, and by the memory-pressure heuristic of §3.4.2. *)

type t

(** [create schema ~key_cols] with [key_cols] resolvable in [schema]. *)
val create : Schema.t -> key_cols:string list -> t

val schema : t -> Schema.t
val key_columns : t -> string list
val length : t -> int

val insert : t -> Tuple.t -> unit

(** Matches for the probe key (most recently inserted first). *)
val probe : t -> Value.t array -> Tuple.t list

(** Key of a tuple under this table's key columns. *)
val key_of : t -> Tuple.t -> Value.t array

val iter : (Tuple.t -> unit) -> t -> unit
val to_list : t -> Tuple.t list

(** Number of distinct keys currently present. *)
val distinct_keys : t -> int

(** Rebuild on different key columns (contents preserved). *)
val rehash : t -> key_cols:string list -> t

val swap_out : t -> unit
val swap_in : t -> unit
val swapped : t -> bool

val clear : t -> unit
