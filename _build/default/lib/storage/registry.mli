open Adp_relation

(** State-structure registry (§3.4.2).

    Each phase plan "registers" the intermediate result of every join node
    it maintains: the plan id (phase number), the expression signature (a
    canonical string naming the base-relation set and predicates, produced
    by the logical algebra), the schema, and the materialized tuples.  The
    stitch-up optimizer consults the registry to build its exclusion list
    and to reuse results instead of recomputing them; the reuse and discard
    counters reproduce Tables 1 and 2. *)

type entry = {
  signature : string;
  phase : int;
  schema : Schema.t;
  tuples : Tuple.t list;
  cardinality : int;
  complexity : int;  (** number of base relations in the expression *)
  mutable reused : bool;
}

type t

val create : unit -> t

val register :
  t ->
  signature:string ->
  phase:int ->
  schema:Schema.t ->
  complexity:int ->
  Tuple.t list ->
  unit

val find : t -> signature:string -> phase:int -> entry option

(** Phases that registered the given expression. *)
val phases_with : t -> signature:string -> int list

val mark_reused : entry -> unit

val entries : t -> entry list

(** Sum of cardinalities of entries whose [reused] flag is set / unset —
    the "reused tuples" and "discarded tuples" columns of Tables 1–2.
    Only entries with [complexity >= 2] count: base-relation buffers are
    inputs, not reusable intermediate results. *)
val reused_tuples : t -> int

val discarded_tuples : t -> int

(** Page-out order under memory pressure: most-complex expression first
    (§3.4.2's heuristic — larger expressions are less likely to be
    shared). *)
val page_out_order : t -> entry list

val clear : t -> unit
