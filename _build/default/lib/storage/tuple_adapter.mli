open Adp_relation

(** Tuple adapters (§3.2 "state structure compatibility").

    The physical layout of an equivalent subexpression differs between
    plans: [(A ⋈ (B ⋈ C))] concatenates attributes in a different order
    than [(B ⋈ (C ⋈ A))].  An adapter is the precomputed permutation that
    reads tuples stored under one schema into another schema with the same
    column set, so stitch-up can reuse a registered state structure built
    by a differently-shaped plan. *)

type t

(** [create ~from ~into] — both schemas must have the same column set.
    @raise Invalid_argument otherwise. *)
val create : from:Schema.t -> into:Schema.t -> t

(** True when the adapter is the identity (no copying needed). *)
val is_identity : t -> bool

val adapt : t -> Tuple.t -> Tuple.t

val adapt_all : t -> Tuple.t list -> Tuple.t list
