open Adp_relation

type t = {
  schema : Schema.t;
  key_idx : int array;
  mutable data : Tuple.t array;
  mutable len : int;
}

let create schema ~key_cols =
  let key_idx = Array.of_list (List.map (Schema.index schema) key_cols) in
  { schema; key_idx; data = [||]; len = 0 }

let schema t = t.schema
let length t = t.len

let key_of t tuple = Tuple.key tuple t.key_idx

let last_key t =
  if t.len = 0 then None else Some (key_of t t.data.(t.len - 1))

let accepts t tuple =
  match last_key t with
  | None -> true
  | Some k -> Tuple.compare_key k (key_of t tuple) <= 0

let append t tuple =
  if not (accepts t tuple) then
    invalid_arg "Sorted_run.append: out-of-order insertion";
  if t.len >= Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let data = Array.make cap [||] in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- tuple;
  t.len <- t.len + 1

(* Index of the first element with key >= k, in [0, len]. *)
let lower_bound t k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Tuple.compare_key (key_of t t.data.(mid)) k >= 0 then go lo mid
      else go (mid + 1) hi
  in
  go 0 t.len

let range t klo khi =
  let start = lower_bound t klo in
  let rec collect i acc =
    if i >= t.len then List.rev acc
    else
      let k = key_of t t.data.(i) in
      if Tuple.compare_key k khi > 0 then List.rev acc
      else collect (i + 1) (t.data.(i) :: acc)
  in
  collect start []

let find t k = range t k k

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Sorted_run.get: out of bounds";
  t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t = List.init t.len (fun i -> t.data.(i))
