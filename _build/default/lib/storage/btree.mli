open Adp_relation

(** B+ tree state structure over composite keys.

    Tukwila's state-structure palette includes a B+ tree for keyed,
    order-preserving access when insertions do not arrive sorted.  Leaves
    are linked for range scans; duplicate keys are allowed (multimap). *)

type t

(** [create ?fanout schema ~key_cols] — [fanout >= 4] (default 32) is the
    maximum number of children of an interior node. *)
val create : ?fanout:int -> Schema.t -> key_cols:string list -> t

val schema : t -> Schema.t
val length : t -> int
val depth : t -> int

val insert : t -> Tuple.t -> unit

val key_of : t -> Tuple.t -> Value.t array

(** All tuples with exactly this key. *)
val find : t -> Value.t array -> Tuple.t list

(** Tuples with keys in the inclusive range, in key order. *)
val range : t -> Value.t array -> Value.t array -> Tuple.t list

(** In-order iteration. *)
val iter : (Tuple.t -> unit) -> t -> unit

val to_list : t -> Tuple.t list

(** Internal structural invariants (sortedness, balanced depth, node
    occupancy); used by tests. *)
val check_invariants : t -> bool
