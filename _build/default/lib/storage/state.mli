open Adp_relation

(** Unified view of Tukwila's state-structure palette (§3.1): list, sorted
    list, hash, hash over sorted data (binary-searchable hash buckets,
    represented as a hash table paired with a sorted run), and B+ tree.

    Every structure stores tuples of one schema; each advertises its
    properties so iterator modules and the router can pick compatible
    structures: whether it supports key-based access and whether it
    requires sorted insertion. *)

type kind = List_buffer | Sorted_list | Hash | Hash_over_sorted | Btree_index

type properties = {
  keyed_access : bool;  (** supports {!find} by key *)
  requires_sorted : bool;  (** {!insert} demands non-decreasing keys *)
  ordered_scan : bool;  (** {!iter} yields key order *)
}

val properties_of : kind -> properties

type t

(** [create kind schema ~key_cols].  [List_buffer] ignores [key_cols] for
    access but remembers them for {!key_of}. *)
val create : kind -> Schema.t -> key_cols:string list -> t

val kind : t -> kind
val properties : t -> properties
val schema : t -> Schema.t
val length : t -> int
val key_of : t -> Tuple.t -> Value.t array

(** @raise Invalid_argument on out-of-order insertion into a structure
    whose properties require sorted input. *)
val insert : t -> Tuple.t -> unit

(** True when inserting this tuple cannot fail. *)
val accepts : t -> Tuple.t -> bool

(** Tuples matching the key.  For [List_buffer] this is a scan.  *)
val find : t -> Value.t array -> Tuple.t list

val iter : (Tuple.t -> unit) -> t -> unit
val to_list : t -> Tuple.t list
