lib/storage/hash_table.mli: Adp_relation Schema Tuple Value
