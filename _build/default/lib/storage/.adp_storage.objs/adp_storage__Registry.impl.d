lib/storage/registry.ml: Adp_relation Hashtbl Int List Schema String Tuple
