lib/storage/state.mli: Adp_relation Schema Tuple Value
