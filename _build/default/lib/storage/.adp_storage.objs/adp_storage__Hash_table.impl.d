lib/storage/hash_table.ml: Adp_relation Array Hashtbl List Schema Tuple Value
