lib/storage/sorted_run.mli: Adp_relation Schema Tuple Value
