lib/storage/registry.mli: Adp_relation Schema Tuple
