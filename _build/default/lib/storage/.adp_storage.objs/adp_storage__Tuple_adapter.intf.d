lib/storage/tuple_adapter.mli: Adp_relation Schema Tuple
