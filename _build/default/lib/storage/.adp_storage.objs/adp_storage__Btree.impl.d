lib/storage/btree.ml: Adp_relation Array List Schema Tuple Value
