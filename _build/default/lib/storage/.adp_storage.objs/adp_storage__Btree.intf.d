lib/storage/btree.mli: Adp_relation Schema Tuple Value
