lib/storage/state.ml: Adp_relation Array Btree Hash_table List Schema Sorted_run Tuple
