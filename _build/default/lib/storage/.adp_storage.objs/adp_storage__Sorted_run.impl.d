lib/storage/sorted_run.ml: Adp_relation Array List Schema Tuple
