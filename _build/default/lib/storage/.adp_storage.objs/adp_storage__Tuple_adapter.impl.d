lib/storage/tuple_adapter.ml: Adp_relation Array Format List Schema Tuple
