open Adp_relation

(** Sorted-list state structure: an append-only run whose insertions must
    arrive in key order (the merge join's buffer).  Lookup is binary
    search; the "hash over sorted data" structure of the paper corresponds
    to pairing this with {!Hash_table} keyed on the same columns. *)

type t

val create : Schema.t -> key_cols:string list -> t

val schema : t -> Schema.t
val length : t -> int

(** Append a tuple; its key must be >= the last key.
    @raise Invalid_argument on out-of-order insertion. *)
val append : t -> Tuple.t -> unit

(** Whether the tuple may be appended without violating order. *)
val accepts : t -> Tuple.t -> bool

val key_of : t -> Tuple.t -> Value.t array

(** All tuples whose key equals the probe key. *)
val find : t -> Value.t array -> Tuple.t list

(** Tuples with keys in the inclusive range. *)
val range : t -> Value.t array -> Value.t array -> Tuple.t list

val last_key : t -> Value.t array option
val get : t -> int -> Tuple.t
val iter : (Tuple.t -> unit) -> t -> unit
val to_list : t -> Tuple.t list
