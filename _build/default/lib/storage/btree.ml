open Adp_relation

type key = Value.t array

type node =
  | Leaf of leaf
  | Interior of interior

and leaf = {
  mutable keys : key array;  (* distinct, sorted *)
  mutable vals : Tuple.t list array;  (* newest first per key *)
  mutable next : leaf option;
}

and interior = {
  mutable seps : key array;  (* seps.(i) = smallest key in child i+1 *)
  mutable children : node array;
}

type t = {
  schema : Schema.t;
  key_idx : int array;
  fanout : int;
  mutable root : node;
  mutable size : int;
}

let create ?(fanout = 32) schema ~key_cols =
  if fanout < 4 then invalid_arg "Btree.create: fanout < 4";
  let key_idx = Array.of_list (List.map (Schema.index schema) key_cols) in
  { schema; key_idx; fanout;
    root = Leaf { keys = [||]; vals = [||]; next = None }; size = 0 }

let schema t = t.schema
let length t = t.size
let key_of t tuple = Tuple.key tuple t.key_idx

let rec depth_of = function
  | Leaf _ -> 1
  | Interior n -> 1 + depth_of n.children.(0)

let depth t = depth_of t.root

(* Position of first key >= k in a sorted key array. *)
let lower_bound keys k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Tuple.compare_key keys.(mid) k >= 0 then go lo mid
      else go (mid + 1) hi
  in
  go 0 (Array.length keys)

(* Child index to descend into for key k: first separator > k. *)
let child_index seps k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Tuple.compare_key seps.(mid) k > 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length seps)

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

(* Returns [Some (sep, right_node)] when the node split. *)
let rec insert_node t node k tuple =
  match node with
  | Leaf lf ->
    let i = lower_bound lf.keys k in
    if i < Array.length lf.keys && Tuple.compare_key lf.keys.(i) k = 0 then begin
      lf.vals.(i) <- tuple :: lf.vals.(i);
      None
    end
    else begin
      lf.keys <- array_insert lf.keys i k;
      lf.vals <- array_insert lf.vals i [ tuple ];
      if Array.length lf.keys < t.fanout then None
      else begin
        (* Split the leaf. *)
        let mid = Array.length lf.keys / 2 in
        let rkeys = Array.sub lf.keys mid (Array.length lf.keys - mid) in
        let rvals = Array.sub lf.vals mid (Array.length lf.vals - mid) in
        let right = { keys = rkeys; vals = rvals; next = lf.next } in
        lf.keys <- Array.sub lf.keys 0 mid;
        lf.vals <- Array.sub lf.vals 0 mid;
        lf.next <- Some right;
        Some (rkeys.(0), Leaf right)
      end
    end
  | Interior it ->
    let ci = child_index it.seps k in
    (match insert_node t it.children.(ci) k tuple with
     | None -> None
     | Some (sep, right) ->
       it.seps <- array_insert it.seps ci sep;
       it.children <- array_insert it.children (ci + 1) right;
       if Array.length it.children <= t.fanout then None
       else begin
         (* Split the interior node; the middle separator moves up. *)
         let midc = Array.length it.children / 2 in
         let up = it.seps.(midc - 1) in
         let rseps =
           Array.sub it.seps midc (Array.length it.seps - midc)
         in
         let rchildren =
           Array.sub it.children midc (Array.length it.children - midc)
         in
         it.seps <- Array.sub it.seps 0 (midc - 1);
         it.children <- Array.sub it.children 0 midc;
         Some (up, Interior { seps = rseps; children = rchildren })
       end)

let insert t tuple =
  let k = key_of t tuple in
  (match insert_node t t.root k tuple with
   | None -> ()
   | Some (sep, right) ->
     t.root <- Interior { seps = [| sep |]; children = [| t.root; right |] });
  t.size <- t.size + 1

let rec leaf_for node k =
  match node with
  | Leaf lf -> lf
  | Interior it -> leaf_for it.children.(child_index it.seps k) k

let find t k =
  let lf = leaf_for t.root k in
  let i = lower_bound lf.keys k in
  if i < Array.length lf.keys && Tuple.compare_key lf.keys.(i) k = 0 then
    lf.vals.(i)
  else []

let range t klo khi =
  let lf = leaf_for t.root klo in
  let acc = ref [] in
  let rec walk lf i =
    if i >= Array.length lf.keys then
      match lf.next with None -> () | Some nxt -> walk nxt 0
    else begin
      let k = lf.keys.(i) in
      if Tuple.compare_key k khi > 0 then ()
      else begin
        if Tuple.compare_key k klo >= 0 then
          acc := List.rev_append lf.vals.(i) !acc;
        walk lf (i + 1)
      end
    end
  in
  walk lf (lower_bound lf.keys klo);
  List.rev !acc

let rec leftmost = function
  | Leaf lf -> lf
  | Interior it -> leftmost it.children.(0)

let iter f t =
  let rec walk = function
    | None -> ()
    | Some lf ->
      Array.iter (fun vs -> List.iter f (List.rev vs)) lf.vals;
      walk lf.next
  in
  walk (Some (leftmost t.root))

let to_list t =
  let acc = ref [] in
  iter (fun tup -> acc := tup :: !acc) t;
  List.rev !acc

let check_invariants t =
  let ok = ref true in
  (* Uniform depth. *)
  let rec depths = function
    | Leaf _ -> [ 1 ]
    | Interior it ->
      Array.to_list it.children
      |> List.concat_map (fun c -> List.map (( + ) 1) (depths c))
  in
  (match depths t.root with
   | [] -> ()
   | d :: rest -> if not (List.for_all (( = ) d) rest) then ok := false);
  (* Keys globally sorted via leaf chain, and leaf keys locally sorted. *)
  let prev = ref None in
  let rec walk = function
    | None -> ()
    | Some lf ->
      Array.iter
        (fun k ->
          (match !prev with
           | Some p when Tuple.compare_key p k >= 0 -> ok := false
           | Some _ | None -> ());
          prev := Some k)
        lf.keys;
      walk lf.next
  in
  walk (Some (leftmost t.root));
  (* Size agrees. *)
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  if !n <> t.size then ok := false;
  !ok
