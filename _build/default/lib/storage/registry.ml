open Adp_relation

type entry = {
  signature : string;
  phase : int;
  schema : Schema.t;
  tuples : Tuple.t list;
  cardinality : int;
  complexity : int;
  mutable reused : bool;
}

type t = { table : (string * int, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let register t ~signature ~phase ~schema ~complexity tuples =
  let entry =
    { signature; phase; schema; tuples; cardinality = List.length tuples;
      complexity; reused = false }
  in
  Hashtbl.replace t.table (signature, phase) entry

let find t ~signature ~phase = Hashtbl.find_opt t.table (signature, phase)

let phases_with t ~signature =
  Hashtbl.fold
    (fun (sg, ph) _ acc -> if sg = signature then ph :: acc else acc)
    t.table []
  |> List.sort Int.compare

let mark_reused entry = entry.reused <- true

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.table []
  |> List.sort (fun a b ->
         match String.compare a.signature b.signature with
         | 0 -> Int.compare a.phase b.phase
         | c -> c)

let reused_tuples t =
  Hashtbl.fold
    (fun _ e acc ->
      if e.reused && e.complexity >= 2 then acc + e.cardinality else acc)
    t.table 0

let discarded_tuples t =
  Hashtbl.fold
    (fun _ e acc ->
      if (not e.reused) && e.complexity >= 2 then acc + e.cardinality else acc)
    t.table 0

let page_out_order t =
  entries t
  |> List.sort (fun a b -> Int.compare b.complexity a.complexity)

let clear t = Hashtbl.reset t.table
