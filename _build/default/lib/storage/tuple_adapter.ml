open Adp_relation

type t = { perm : int array; identity : bool }

let create ~from ~into =
  if not (Schema.same_columns from into) then
    invalid_arg
      (Format.asprintf "Tuple_adapter.create: %a vs %a" Schema.pp from
         Schema.pp into);
  let perm = Schema.permutation ~from ~into in
  let identity =
    let id = ref true in
    Array.iteri (fun i j -> if i <> j then id := false) perm;
    !id
  in
  { perm; identity }

let is_identity t = t.identity

let adapt t tuple = if t.identity then tuple else Tuple.project tuple t.perm

let adapt_all t tuples =
  if t.identity then tuples else List.map (adapt t) tuples
