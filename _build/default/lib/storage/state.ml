open Adp_relation

type kind = List_buffer | Sorted_list | Hash | Hash_over_sorted | Btree_index

type properties = {
  keyed_access : bool;
  requires_sorted : bool;
  ordered_scan : bool;
}

let properties_of = function
  | List_buffer ->
    { keyed_access = false; requires_sorted = false; ordered_scan = false }
  | Sorted_list ->
    { keyed_access = true; requires_sorted = true; ordered_scan = true }
  | Hash ->
    { keyed_access = true; requires_sorted = false; ordered_scan = false }
  | Hash_over_sorted ->
    { keyed_access = true; requires_sorted = true; ordered_scan = true }
  | Btree_index ->
    { keyed_access = true; requires_sorted = false; ordered_scan = true }

type impl =
  | L of Tuple.t list ref * int ref
  | S of Sorted_run.t
  | H of Hash_table.t
  | HS of Hash_table.t * Sorted_run.t
  | B of Btree.t

type t = {
  kind : kind;
  schema : Schema.t;
  key_idx : int array;
  impl : impl;
}

let create kind schema ~key_cols =
  let key_idx = Array.of_list (List.map (Schema.index schema) key_cols) in
  let impl =
    match kind with
    | List_buffer -> L (ref [], ref 0)
    | Sorted_list -> S (Sorted_run.create schema ~key_cols)
    | Hash -> H (Hash_table.create schema ~key_cols)
    | Hash_over_sorted ->
      HS (Hash_table.create schema ~key_cols, Sorted_run.create schema ~key_cols)
    | Btree_index -> B (Btree.create schema ~key_cols)
  in
  { kind; schema; key_idx; impl }

let kind t = t.kind
let properties t = properties_of t.kind
let schema t = t.schema
let key_of t tuple = Tuple.key tuple t.key_idx

let length t =
  match t.impl with
  | L (_, n) -> !n
  | S r -> Sorted_run.length r
  | H h -> Hash_table.length h
  | HS (h, _) -> Hash_table.length h
  | B b -> Btree.length b

let insert t tuple =
  match t.impl with
  | L (cell, n) ->
    cell := tuple :: !cell;
    incr n
  | S r -> Sorted_run.append r tuple
  | H h -> Hash_table.insert h tuple
  | HS (h, r) ->
    Sorted_run.append r tuple;
    Hash_table.insert h tuple
  | B b -> Btree.insert b tuple

let accepts t tuple =
  match t.impl with
  | L _ | H _ | B _ -> true
  | S r -> Sorted_run.accepts r tuple
  | HS (_, r) -> Sorted_run.accepts r tuple

let find t k =
  match t.impl with
  | L (cell, _) ->
    List.filter (fun tup -> Tuple.equal_key (key_of t tup) k) !cell
  | S r -> Sorted_run.find r k
  | H h -> Hash_table.probe h k
  | HS (h, _) -> Hash_table.probe h k
  | B b -> Btree.find b k

let iter f t =
  match t.impl with
  | L (cell, _) -> List.iter f (List.rev !cell)
  | S r -> Sorted_run.iter f r
  | H h -> Hash_table.iter f h
  | HS (_, r) -> Sorted_run.iter f r
  | B b -> Btree.iter f b

let to_list t =
  let acc = ref [] in
  iter (fun tup -> acc := tup :: !acc) t;
  List.rev !acc
