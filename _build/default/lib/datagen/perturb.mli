open Adp_relation

(** Order perturbation for the §5 complementary-join experiments.

    The paper builds "mostly sorted" variants of LINEITEM and ORDERS by
    randomly swapping 1 %, 10 % or 50 % of the data. *)

(** [swap_fraction rng rel frac] returns a copy of [rel] in which roughly
    [frac] of the tuples have been displaced (pairs of random positions are
    exchanged until [frac * n] tuples have moved).  [frac = 0.] is the
    identity; [frac] must be in [0, 1]. *)
val swap_fraction : Prng.t -> Relation.t -> float -> Relation.t

(** Fully random permutation of the tuples. *)
val shuffle : Prng.t -> Relation.t -> Relation.t

(** Fraction of adjacent tuple pairs that are non-decreasing on the given
    column — 1.0 for sorted input, ~0.5 for random.  Used by tests and by
    order speculation heuristics. *)
val sortedness : Relation.t -> string -> float
