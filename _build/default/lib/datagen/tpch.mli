open Adp_relation

(** TPC-H-style dataset generator.

    The paper evaluates on TPC-H scale factor 0.1 (uniform, from dbgen) and
    on a same-sized skewed variant produced with a TPC-D generator using Zipf
    factor z = 0.5 on the major attributes.  This module generates both
    in-process: the same table shapes, primary-key / foreign-key structure
    and selection attributes, at a configurable scale factor.

    Generated base tables come out sorted by primary key (as dbgen emits
    them), which is what makes the complementary-join speculation of §5
    plausible; use {!Perturb} to destroy order.

    Cardinalities at scale factor [sf]: REGION 5, NATION 25, SUPPLIER
    10,000·sf, CUSTOMER 150,000·sf, ORDERS 10 per customer, LINEITEM 1–7 per
    order. *)

type distribution =
  | Uniform
  | Skewed of float  (** Zipf z on foreign keys and value attributes *)

type config = {
  scale : float;  (** TPC-H scale factor; 0.1 reproduces the paper *)
  distribution : distribution;
  seed : int;
}

val default_config : config
(** [scale = 0.01], [Uniform], seed 42. *)

type t = {
  config : config;
  region : Relation.t;
  nation : Relation.t;
  supplier : Relation.t;
  customer : Relation.t;
  orders : Relation.t;
  lineitem : Relation.t;
}

val generate : config -> t

(** Look up a base table by its TPC-H name ("region", ..., "lineitem").
    @raise Not_found on unknown names. *)
val table : t -> string -> Relation.t

val table_names : string list

(** Schema of a base table without generating data. *)
val schema_of : string -> Schema.t

(** Primary-key column of a base table (["lineitem"] has a composite key;
    this returns the l_orderkey prefix, which is what join analysis needs). *)
val key_of : string -> string

val mktsegments : string array
val region_names : string array
val nation_names : string array
