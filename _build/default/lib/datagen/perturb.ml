open Adp_relation

let relation_of_array schema arr =
  Relation.of_list schema (Array.to_list arr)

let swap_fraction rng rel frac =
  if frac < 0.0 || frac > 1.0 then invalid_arg "Perturb.swap_fraction";
  let n = Relation.cardinality rel in
  let arr = Array.init n (Relation.get rel) in
  let target = int_of_float (frac *. float_of_int n) in
  let moved = ref 0 in
  (* Each swap displaces two tuples (almost surely). *)
  while !moved < target && n > 1 do
    let i = Prng.int rng n and j = Prng.int rng n in
    if i <> j then begin
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp;
      moved := !moved + 2
    end
  done;
  relation_of_array (Relation.schema rel) arr

let shuffle rng rel =
  let n = Relation.cardinality rel in
  let arr = Array.init n (Relation.get rel) in
  Prng.shuffle rng arr;
  relation_of_array (Relation.schema rel) arr

let sortedness rel col =
  let n = Relation.cardinality rel in
  if n < 2 then 1.0
  else begin
    let i = Schema.index (Relation.schema rel) col in
    let ok = ref 0 in
    for k = 0 to n - 2 do
      if Value.compare (Relation.get rel k).(i) (Relation.get rel (k + 1)).(i)
         <= 0
      then incr ok
    done;
    float_of_int !ok /. float_of_int (n - 1)
  end
