(** Deterministic splitmix64 pseudo-random generator.

    All workload generation is seeded through this module so that every
    experiment is exactly reproducible (the paper reruns each experiment 4+
    times; we instead fix seeds and report deterministic virtual-cost numbers
    alongside wall-clock times). *)

type t

val create : int -> t

(** Independent stream derived from [t]; advancing one does not perturb the
    other. *)
val split : t -> t

(** Uniform in [0, bound). @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

val bool : t -> bool

(** Exponentially distributed with the given mean. *)
val exponential : t -> mean:float -> float

(** Uniform choice from a non-empty array. *)
val choice : t -> 'a array -> 'a

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit
