open Adp_relation

(** The running example of the paper (Example 2.1): flights
    [F(fid, from_city, to_city, when_day)], travelers [T(ssn, flight)] and
    children-per-traveler [C(parent, num)], stored in randomly distributed
    order.  The query asks for the flight whose traveler has the most
    children:

    {v Group[fid, from] max(num) (F ⋈ T ⋈ C) v}

    The generator can skew how often travelers fly ([frequent_flyers]),
    which is what makes pre-aggregation before the join pay off
    (Example 2.3). *)

type config = {
  n_flights : int;
  n_travelers : int;
  trips_per_traveler : int;  (** average; actual counts are randomized *)
  frequent_flyers : bool;
      (** when set, trip counts follow a Zipf distribution so a few
          travelers fly very often *)
  seed : int;
}

val default_config : config

type t = {
  config : config;
  flights : Relation.t;  (** F(fid, from_city, to_city, when_day) *)
  travelers : Relation.t;  (** T(ssn, flight) *)
  children : Relation.t;  (** C(parent, num) *)
}

val generate : config -> t

val flights_schema : Schema.t
val travelers_schema : Schema.t
val children_schema : Schema.t
