open Adp_relation

type distribution = Uniform | Skewed of float

type config = { scale : float; distribution : distribution; seed : int }

let default_config = { scale = 0.01; distribution = Uniform; seed = 42 }

type t = {
  config : config;
  region : Relation.t;
  nation : Relation.t;
  supplier : Relation.t;
  customer : Relation.t;
  orders : Relation.t;
  lineitem : Relation.t;
}

let region_names = [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

let nation_names =
  [| "ALGERIA"; "ARGENTINA"; "BRAZIL"; "CANADA"; "EGYPT"; "ETHIOPIA";
     "FRANCE"; "GERMANY"; "INDIA"; "INDONESIA"; "IRAN"; "IRAQ"; "JAPAN";
     "JORDAN"; "KENYA"; "MOROCCO"; "MOZAMBIQUE"; "PERU"; "CHINA";
     "ROMANIA"; "SAUDI ARABIA"; "VIETNAM"; "RUSSIA"; "UNITED KINGDOM";
     "UNITED STATES" |]

(* Region of each nation, mirroring dbgen's fixed mapping. *)
let nation_regions =
  [| 0; 1; 1; 1; 4; 0; 3; 3; 2; 2; 4; 4; 2; 4; 0; 0; 0; 1; 2; 3; 4; 2; 3;
     3; 1 |]

let mktsegments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let order_statuses = [| "F"; "O"; "P" |]
let return_flags = [| "R"; "A"; "N"; "N" |]

let schemas =
  [ "region", [ "region.r_regionkey"; "region.r_name" ];
    "nation", [ "nation.n_nationkey"; "nation.n_name"; "nation.n_regionkey" ];
    "supplier",
    [ "supplier.s_suppkey"; "supplier.s_name"; "supplier.s_nationkey";
      "supplier.s_acctbal" ];
    "customer",
    [ "customer.c_custkey"; "customer.c_name"; "customer.c_nationkey";
      "customer.c_acctbal"; "customer.c_mktsegment" ];
    "orders",
    [ "orders.o_orderkey"; "orders.o_custkey"; "orders.o_orderstatus";
      "orders.o_totalprice"; "orders.o_orderdate"; "orders.o_shippriority" ];
    "lineitem",
    [ "lineitem.l_orderkey"; "lineitem.l_partkey"; "lineitem.l_suppkey";
      "lineitem.l_linenumber"; "lineitem.l_quantity";
      "lineitem.l_extendedprice"; "lineitem.l_discount";
      "lineitem.l_returnflag"; "lineitem.l_shipdate" ] ]

let table_names = List.map fst schemas

let schema_of name =
  match List.assoc_opt name schemas with
  | Some cols -> Schema.make cols
  | None -> raise Not_found

let keys =
  [ "region", "region.r_regionkey"; "nation", "nation.n_nationkey";
    "supplier", "supplier.s_suppkey"; "customer", "customer.c_custkey";
    "orders", "orders.o_orderkey"; "lineitem", "lineitem.l_orderkey" ]

let key_of name =
  match List.assoc_opt name keys with
  | Some k -> k
  | None -> raise Not_found

(* TPC-H dates span 1992-01-01 .. 1998-08-02 (day 0 .. day 2405). *)
let max_orderdate = 2284 (* leave room for shipdate = orderdate + <= 121 *)

let skew_pick rng dist ~n ~uniform_pick =
  (* Foreign keys: uniform draws under [Uniform]; Zipf ranks mapped onto the
     key space under [Skewed].  The Zipf table is memoized per (n, z) by the
     caller. *)
  match dist with
  | None -> uniform_pick ()
  | Some zipf -> (Zipf.sample zipf rng - 1) mod n + 1

let generate config =
  let rng = Prng.create config.seed in
  let n_supplier = max 10 (int_of_float (10_000.0 *. config.scale)) in
  let n_customer = max 30 (int_of_float (150_000.0 *. config.scale)) in
  let n_orders = 10 * n_customer in
  let zipf_for n =
    match config.distribution with
    | Uniform -> None
    | Skewed z -> Some (Zipf.create ~n ~z)
  in
  let cust_zipf = zipf_for n_customer in
  let supp_zipf = zipf_for n_supplier in
  let nation_zipf = zipf_for (Array.length nation_names) in
  let price_zipf = zipf_for 1000 in

  let region =
    Relation.of_list (schema_of "region")
      (List.init (Array.length region_names) (fun i ->
           [| Value.Int i; Value.Str region_names.(i) |]))
  in
  let nation =
    Relation.of_list (schema_of "nation")
      (List.init (Array.length nation_names) (fun i ->
           [| Value.Int i; Value.Str nation_names.(i);
              Value.Int nation_regions.(i) |]))
  in
  let supplier = Relation.create (schema_of "supplier") in
  let s_rng = Prng.split rng in
  for k = 1 to n_supplier do
    let nk =
      skew_pick s_rng nation_zipf ~n:(Array.length nation_names)
        ~uniform_pick:(fun () -> 1 + Prng.int s_rng (Array.length nation_names))
      - 1
    in
    Relation.append supplier
      [| Value.Int k; Value.Str (Printf.sprintf "Supplier#%09d" k);
         Value.Int nk; Value.Float (Prng.float s_rng *. 9999.0 -. 999.0) |]
  done;
  let customer = Relation.create (schema_of "customer") in
  let c_rng = Prng.split rng in
  for k = 1 to n_customer do
    let nk =
      skew_pick c_rng nation_zipf ~n:(Array.length nation_names)
        ~uniform_pick:(fun () -> 1 + Prng.int c_rng (Array.length nation_names))
      - 1
    in
    Relation.append customer
      [| Value.Int k; Value.Str (Printf.sprintf "Customer#%09d" k);
         Value.Int nk; Value.Float (Prng.float c_rng *. 9999.0 -. 999.0);
         Value.Str (Prng.choice c_rng mktsegments) |]
  done;
  let orders = Relation.create (schema_of "orders") in
  let lineitem = Relation.create (schema_of "lineitem") in
  let o_rng = Prng.split rng in
  let l_rng = Prng.split rng in
  for ok = 1 to n_orders do
    let ck =
      skew_pick o_rng cust_zipf ~n:n_customer ~uniform_pick:(fun () ->
          1 + Prng.int o_rng n_customer)
    in
    let odate = Prng.int o_rng max_orderdate in
    let price_rank =
      skew_pick o_rng price_zipf ~n:1000 ~uniform_pick:(fun () ->
          1 + Prng.int o_rng 1000)
    in
    let total = float_of_int price_rank *. 181.13 +. 857.71 in
    Relation.append orders
      [| Value.Int ok; Value.Int ck;
         Value.Str (Prng.choice o_rng order_statuses); Value.Float total;
         Value.Date odate; Value.Int (Prng.int o_rng 5) |];
    (* Return flags correlate within an order (as dbgen ties them to the
       order's receipt date), so selections on l_returnflag keep whole
       orders — which is what makes pre-aggregation on l_orderkey
       worthwhile after such a filter. *)
    let order_flag = Prng.choice l_rng return_flags in
    let n_lines = 1 + Prng.int l_rng 7 in
    for ln = 1 to n_lines do
      let sk =
        skew_pick l_rng supp_zipf ~n:n_supplier ~uniform_pick:(fun () ->
            1 + Prng.int l_rng n_supplier)
      in
      let qty_rank =
        skew_pick l_rng price_zipf ~n:1000 ~uniform_pick:(fun () ->
            1 + Prng.int l_rng 1000)
      in
      let qty = float_of_int ((qty_rank mod 50) + 1) in
      let eprice = qty *. (900.0 +. float_of_int (Prng.int l_rng 10_0000) /. 100.0) in
      Relation.append lineitem
        [| Value.Int ok; Value.Int (1 + Prng.int l_rng 20000); Value.Int sk;
           Value.Int ln; Value.Float qty; Value.Float eprice;
           Value.Float (float_of_int (Prng.int l_rng 11) /. 100.0);
           Value.Str order_flag;
           Value.Date (odate + 1 + Prng.int l_rng 121) |]
    done
  done;
  { config; region; nation; supplier; customer; orders; lineitem }

let table t = function
  | "region" -> t.region
  | "nation" -> t.nation
  | "supplier" -> t.supplier
  | "customer" -> t.customer
  | "orders" -> t.orders
  | "lineitem" -> t.lineitem
  | _ -> raise Not_found
