type t = { n : int; z : float; cdf : float array }

let create ~n ~z =
  if n <= 0 then invalid_arg "Zipf.create: n <= 0";
  if z < 0.0 then invalid_arg "Zipf.create: z < 0";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for rank = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int rank) z);
    cdf.(rank - 1) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { n; z; cdf }

let n t = t.n
let z t = t.z

let sample t rng =
  let u = Prng.float rng in
  (* First index whose cdf >= u. *)
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 (t.n - 1) + 1

let prob t rank =
  if rank < 1 || rank > t.n then invalid_arg "Zipf.prob: rank out of range";
  if rank = 1 then t.cdf.(0) else t.cdf.(rank - 1) -. t.cdf.(rank - 2)
