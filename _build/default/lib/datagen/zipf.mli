(** Zipf-distributed sampling over ranks [1..n].

    The skewed TPC-D dataset in the paper was generated with a Zipf factor
    z = 0.5 on the major attributes; this module reproduces that by sampling
    ranks with probability proportional to [1 / rank^z].  Sampling uses a
    precomputed cumulative table with binary search, O(log n) per draw. *)

type t

(** [create ~n ~z] prepares a sampler over ranks 1..n with exponent [z >= 0]
    (z = 0 is uniform). *)
val create : n:int -> z:float -> t

val n : t -> int
val z : t -> float

(** Draw a rank in [1..n]. *)
val sample : t -> Prng.t -> int

(** Exact probability of a rank, for test assertions. *)
val prob : t -> int -> float
