open Adp_relation

type config = {
  n_flights : int;
  n_travelers : int;
  trips_per_traveler : int;
  frequent_flyers : bool;
  seed : int;
}

let default_config =
  { n_flights = 2000; n_travelers = 1000; trips_per_traveler = 3;
    frequent_flyers = false; seed = 7 }

type t = {
  config : config;
  flights : Relation.t;
  travelers : Relation.t;
  children : Relation.t;
}

let flights_schema =
  Schema.make [ "f.fid"; "f.from_city"; "f.to_city"; "f.when_day" ]

let travelers_schema = Schema.make [ "t.ssn"; "t.flight" ]
let children_schema = Schema.make [ "c.parent"; "c.num" ]

let cities =
  [| "SEA"; "SFO"; "LAX"; "ORD"; "JFK"; "BOS"; "PHL"; "IAD"; "ATL"; "DFW" |]

let generate config =
  let rng = Prng.create config.seed in
  let flights = Relation.create flights_schema in
  for fid = 1 to config.n_flights do
    let from_city = Prng.choice rng cities in
    let to_city = ref (Prng.choice rng cities) in
    while !to_city = from_city do
      to_city := Prng.choice rng cities
    done;
    Relation.append flights
      [| Value.Int fid; Value.Str from_city; Value.Str !to_city;
         Value.Int (Prng.int rng 365) |]
  done;
  let travelers = Relation.create travelers_schema in
  let trips_zipf =
    if config.frequent_flyers then
      Some (Zipf.create ~n:(8 * config.trips_per_traveler) ~z:1.2)
    else None
  in
  let trips = ref [] in
  for ssn = 1 to config.n_travelers do
    let count =
      match trips_zipf with
      | Some zipf -> Zipf.sample zipf rng
      | None -> 1 + Prng.int rng (2 * config.trips_per_traveler - 1)
    in
    for _ = 1 to count do
      trips := (ssn, 1 + Prng.int rng config.n_flights) :: !trips
    done
  done;
  (* Random distribution order, per the example's premise. *)
  let trips_arr = Array.of_list !trips in
  Prng.shuffle rng trips_arr;
  Array.iter
    (fun (ssn, flight) ->
      Relation.append travelers [| Value.Int ssn; Value.Int flight |])
    trips_arr;
  let children = Relation.create children_schema in
  let parents = Array.init config.n_travelers (fun i -> i + 1) in
  Prng.shuffle rng parents;
  Array.iter
    (fun p ->
      Relation.append children [| Value.Int p; Value.Int (Prng.int rng 6) |])
    parents;
  { config; flights; travelers; children }
