lib/datagen/zipf.mli: Prng
