lib/datagen/tpch.ml: Adp_relation Array List Printf Prng Relation Schema Value Zipf
