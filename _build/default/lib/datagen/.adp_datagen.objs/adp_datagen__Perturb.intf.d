lib/datagen/perturb.mli: Adp_relation Prng Relation
