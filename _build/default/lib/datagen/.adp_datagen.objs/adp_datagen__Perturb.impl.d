lib/datagen/perturb.ml: Adp_relation Array Prng Relation Schema Value
