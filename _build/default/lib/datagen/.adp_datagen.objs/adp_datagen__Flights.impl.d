lib/datagen/flights.ml: Adp_relation Array Prng Relation Schema Value Zipf
