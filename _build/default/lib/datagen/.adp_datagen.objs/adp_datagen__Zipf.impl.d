lib/datagen/zipf.ml: Array Float Prng
