lib/datagen/prng.mli:
