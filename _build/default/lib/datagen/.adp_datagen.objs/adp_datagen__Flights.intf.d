lib/datagen/flights.mli: Adp_relation Relation Schema
