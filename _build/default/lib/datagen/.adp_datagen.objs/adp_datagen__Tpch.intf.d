lib/datagen/tpch.mli: Adp_relation Relation Schema
