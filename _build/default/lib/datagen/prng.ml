type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_u64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  { state = next_u64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* Keep the value within OCaml's 63-bit native int range (non-negative). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2) in
  v mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_u64 t) 1L = 1L

let exponential t ~mean =
  let u = float t in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
