type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Cmp of cmp * string * Value.t
  | Col_cmp of cmp * string * string
  | Between of string * Value.t * Value.t
  | In of string * Value.t list
  | Not of t
  | And of t * t
  | Or of t * t

let tt = True
let ( &&& ) a b = match a, b with True, x | x, True -> x | _ -> And (a, b)
let ( ||| ) a b = Or (a, b)
let eq c v = Cmp (Eq, c, v)
let lt c v = Cmp (Lt, c, v)
let le c v = Cmp (Le, c, v)
let gt c v = Cmp (Gt, c, v)
let ge c v = Cmp (Ge, c, v)
let between c lo hi = Between (c, lo, hi)

let rec columns = function
  | True -> []
  | Cmp (_, c, _) | Between (c, _, _) | In (c, _) -> [ c ]
  | Col_cmp (_, a, b) -> [ a; b ]
  | Not p -> columns p
  | And (a, b) | Or (a, b) -> columns a @ columns b

let eval_cmp op a b =
  if Value.is_null a || Value.is_null b then false
  else
    let c = Value.compare a b in
    match op with
    | Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0

let compile p schema =
  (* Resolve all column indices once; the returned closure does no string
     lookups. *)
  let rec build = function
    | True -> fun _ -> true
    | Cmp (op, c, v) ->
      let i = Schema.index schema c in
      fun t -> eval_cmp op t.(i) v
    | Col_cmp (op, a, b) ->
      let ia = Schema.index schema a and ib = Schema.index schema b in
      fun t -> eval_cmp op t.(ia) t.(ib)
    | Between (c, lo, hi) ->
      let i = Schema.index schema c in
      fun t -> eval_cmp Ge t.(i) lo && eval_cmp Le t.(i) hi
    | In (c, vs) ->
      let i = Schema.index schema c in
      fun t -> List.exists (fun v -> Value.eq_sql t.(i) v) vs
    | Not p ->
      let f = build p in
      fun t -> not (f t)
    | And (a, b) ->
      let fa = build a and fb = build b in
      fun t -> fa t && fb t
    | Or (a, b) ->
      let fa = build a and fb = build b in
      fun t -> fa t || fb t
  in
  build p

let rec size = function
  | True -> 0
  | Cmp _ | Col_cmp _ | In _ -> 1
  | Between _ -> 2
  | Not p -> size p
  | And (a, b) | Or (a, b) -> size a + size b

let cmp_str = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | Cmp (op, c, v) -> Format.fprintf fmt "%s %s %a" c (cmp_str op) Value.pp v
  | Col_cmp (op, a, b) -> Format.fprintf fmt "%s %s %s" a (cmp_str op) b
  | Between (c, lo, hi) ->
    Format.fprintf fmt "%s between %a and %a" c Value.pp lo Value.pp hi
  | In (c, vs) ->
    Format.fprintf fmt "%s in (%s)" c
      (String.concat ", " (List.map Value.to_string vs))
  | Not p -> Format.fprintf fmt "not (%a)" pp p
  | And (a, b) -> Format.fprintf fmt "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf fmt "(%a or %a)" pp a pp b

let to_string p = Format.asprintf "%a" pp p
