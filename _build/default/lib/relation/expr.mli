(** Scalar arithmetic expressions over a tuple, used by aggregation inputs
    (e.g. TPC-H revenue [l_extendedprice * (1 - l_discount)]) and computed
    projections. *)

type t =
  | Col of string
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

val col : string -> t
val const : Value.t -> t
val int : int -> t
val float : float -> t

(** Columns referenced. *)
val columns : t -> string list

(** [compile e schema] resolves columns and returns an evaluator producing
    a {!Value.t} ([Null] is absorbing through arithmetic). *)
val compile : t -> Schema.t -> Tuple.t -> Value.t

(** Number of arithmetic nodes, for the cost model. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
