lib/relation/value.ml: Array Format Hashtbl Printf Scanf Stdlib
