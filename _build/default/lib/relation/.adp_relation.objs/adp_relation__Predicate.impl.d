lib/relation/predicate.ml: Array Format List Schema String Value
