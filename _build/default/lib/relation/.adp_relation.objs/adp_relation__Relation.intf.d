lib/relation/relation.mli: Format Schema Seq Tuple
