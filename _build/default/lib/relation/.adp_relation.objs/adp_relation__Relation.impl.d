lib/relation/relation.ml: Array Format List Schema Seq Tuple Value
