lib/relation/expr.ml: Array Format Schema Value
