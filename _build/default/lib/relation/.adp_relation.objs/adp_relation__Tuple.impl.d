lib/relation/tuple.ml: Array Format Stdlib String Value
