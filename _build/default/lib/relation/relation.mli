(** In-memory relations: a schema plus a growable tuple buffer.

    Source relations are accessed sequentially (the data-integration
    contract assumed in the paper): operators read them through
    {!to_seq}/{!iter} and may not index into them.  Relations are also the
    materialization target for intermediate results and test oracles. *)

type t

val create : Schema.t -> t
val of_list : Schema.t -> Tuple.t list -> t
val schema : t -> Schema.t
val cardinality : t -> int
val append : t -> Tuple.t -> unit
val append_all : t -> Tuple.t list -> unit
val get : t -> int -> Tuple.t
val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Tuple.t list
val to_seq : t -> Tuple.t Seq.t

(** Stable sort by the given column names. *)
val sort_by : t -> string list -> t

(** Stable sort with per-column direction. *)
val order_by : t -> (string * [ `Asc | `Desc ]) list -> t

(** Multiset equality, for test oracles. *)
val equal_bag : t -> t -> bool

(** Pretty-print at most [limit] rows (default 20) with a header. *)
val pp : ?limit:int -> Format.formatter -> t -> unit
