(** Selection predicates over a single schema.

    Predicates are kept as a small AST (not closures) so the optimizer can
    inspect them for selectivity estimation and push-down, and are compiled
    to an evaluator against a concrete schema.  Join predicates are
    represented separately (equi-join column pairs) by the logical algebra in
    [adp_optimizer]. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | Cmp of cmp * string * Value.t  (** [column <op> constant] *)
  | Col_cmp of cmp * string * string  (** [column <op> column] *)
  | Between of string * Value.t * Value.t  (** inclusive range *)
  | In of string * Value.t list
  | Not of t
  | And of t * t
  | Or of t * t

val tt : t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val eq : string -> Value.t -> t
val lt : string -> Value.t -> t
val le : string -> Value.t -> t
val gt : string -> Value.t -> t
val ge : string -> Value.t -> t
val between : string -> Value.t -> Value.t -> t

(** Columns referenced by the predicate. *)
val columns : t -> string list

(** [compile p schema] resolves column references and returns an
    evaluator.  @raise Not_found if a column is missing. *)
val compile : t -> Schema.t -> Tuple.t -> bool

(** Number of atomic comparisons, used by the cost model to charge
    per-tuple evaluation cost. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
