(** Relation schemas.

    A schema is an ordered list of qualified column names
    (["orders.o_orderkey"]).  Column lookup accepts either the qualified name
    or the bare column name when it is unambiguous, mirroring SQL name
    resolution.  Schemas are value-compared; two equivalent subexpressions in
    different plans may produce the same columns in different orders, which
    {!Tuple_adapter} (in [adp_storage]) reconciles via {!permutation}. *)

type t

(** [make names] builds a schema; names must be distinct.
    @raise Invalid_argument on duplicates. *)
val make : string list -> t

val columns : t -> string array
val arity : t -> int

(** Index of a column.  Accepts qualified ("t.c") or unqualified ("c")
    names; unqualified lookup must be unambiguous.
    @raise Not_found if absent or ambiguous. *)
val index : t -> string -> int

val mem : t -> string -> bool

(** Concatenation, used by joins: columns of [a] then columns of [b].
    @raise Invalid_argument on duplicate qualified names. *)
val concat : t -> t -> t

(** [project s cols] keeps the named columns, in the given order. *)
val project : t -> string list -> t

(** [rename_qualifier s q] requalifies every column as ["q.bare"]. *)
val rename_qualifier : t -> string -> t

(** [permutation ~from ~into] is the index mapping such that
    [(permutation ~from ~into).(i)] is the position in [from] of
    [into]'s i-th column.  @raise Not_found when [into] has a column
    absent from [from]. *)
val permutation : from:t -> into:t -> int array

(** Set equality of column names (order-insensitive). *)
val same_columns : t -> t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
