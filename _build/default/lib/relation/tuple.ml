type t = Value.t array

let arity = Array.length
let get t i = t.(i)
let concat = Array.append
let project t idxs = Array.map (fun i -> t.(i)) idxs
let key = project

let compare_key a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la || i >= lb then Stdlib.compare la lb
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash_key k =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k

let equal_key a b = compare_key a b = 0
let compare = compare_key
let equal a b = compare a b = 0

let pp fmt t =
  Format.fprintf fmt "[%s]"
    (String.concat "; "
       (Array.to_list (Array.map Value.to_string t)))

let to_string t = Format.asprintf "%a" pp t
