type t = {
  cols : string array;
  by_name : (string, int) Hashtbl.t;  (* qualified name -> index *)
  by_bare : (string, int list) Hashtbl.t;  (* bare name -> indices *)
}

let bare_of name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let make names =
  let cols = Array.of_list names in
  let by_name = Hashtbl.create (Array.length cols) in
  let by_bare = Hashtbl.create (Array.length cols) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem by_name name then
        invalid_arg ("Schema.make: duplicate column " ^ name);
      Hashtbl.replace by_name name i;
      let bare = bare_of name in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_bare bare) in
      Hashtbl.replace by_bare bare (prev @ [ i ]))
    cols;
  { cols; by_name; by_bare }

let columns t = t.cols
let arity t = Array.length t.cols

let index t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None ->
    (* Fall back to bare-name resolution only for unqualified references:
       a qualified name must match its qualifier exactly. *)
    if String.contains name '.' then raise Not_found
    else
      (match Hashtbl.find_opt t.by_bare name with
       | Some [ i ] -> i
       | Some (_ :: _ :: _) ->
         raise Not_found (* ambiguous bare reference *)
       | Some [] | None -> raise Not_found)

let mem t name =
  match index t name with _ -> true | exception Not_found -> false

let concat a b =
  make (Array.to_list a.cols @ Array.to_list b.cols)

let project t names =
  List.iter (fun n -> ignore (index t n)) names;
  (* Preserve the caller's spelling but requalify from the source column so
     downstream lookups keep working. *)
  make (List.map (fun n -> t.cols.(index t n)) names)

let rename_qualifier t q =
  make (Array.to_list (Array.map (fun c -> q ^ "." ^ bare_of c) t.cols))

let permutation ~from ~into =
  Array.map (fun c -> index from c) into.cols

let same_columns a b =
  arity a = arity b
  && (let sa = List.sort String.compare (Array.to_list a.cols) in
      let sb = List.sort String.compare (Array.to_list b.cols) in
      sa = sb)

let equal a b = a.cols = b.cols

let pp fmt t =
  Format.fprintf fmt "(%s)" (String.concat ", " (Array.to_list t.cols))
