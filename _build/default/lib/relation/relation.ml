type t = {
  schema : Schema.t;
  mutable data : Tuple.t array;
  mutable len : int;
}

let create schema = { schema; data = [||]; len = 0 }

let schema t = t.schema
let cardinality t = t.len

let ensure_capacity t n =
  if n > Array.length t.data then begin
    let cap = max 16 (max n (2 * Array.length t.data)) in
    let data = Array.make cap [||] in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let append t tuple =
  ensure_capacity t (t.len + 1);
  t.data.(t.len) <- tuple;
  t.len <- t.len + 1

let append_all t tuples = List.iter (append t) tuples

let of_list schema tuples =
  let t = create schema in
  append_all t tuples;
  t

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Relation.get: out of bounds";
  t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun tup -> acc := f !acc tup) t;
  !acc

let to_list t = List.rev (fold (fun acc tup -> tup :: acc) [] t)
let to_seq t = Seq.init t.len (fun i -> t.data.(i))

let sort_by t cols =
  let idxs = Array.of_list (List.map (Schema.index t.schema) cols) in
  let arr = Array.sub t.data 0 t.len in
  let cmp a b = Tuple.compare_key (Tuple.key a idxs) (Tuple.key b idxs) in
  Array.stable_sort cmp arr;
  { schema = t.schema; data = arr; len = t.len }

let order_by t specs =
  let resolved =
    List.map (fun (col, dir) -> Schema.index t.schema col, dir) specs
  in
  let cmp a b =
    let rec go = function
      | [] -> 0
      | (i, dir) :: rest ->
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then (match dir with `Asc -> c | `Desc -> -c)
        else go rest
    in
    go resolved
  in
  let arr = Array.sub t.data 0 t.len in
  Array.stable_sort cmp arr;
  { schema = t.schema; data = arr; len = t.len }

let equal_bag a b =
  cardinality a = cardinality b
  &&
  let sa = Array.sub a.data 0 a.len and sb = Array.sub b.data 0 b.len in
  Array.sort Tuple.compare sa;
  Array.sort Tuple.compare sb;
  let rec go i = i >= a.len || (Tuple.equal sa.(i) sb.(i) && go (i + 1)) in
  go 0

let pp ?(limit = 20) fmt t =
  Format.fprintf fmt "%a (%d rows)@." Schema.pp t.schema t.len;
  let n = min limit t.len in
  for i = 0 to n - 1 do
    Format.fprintf fmt "  %a@." Tuple.pp t.data.(i)
  done;
  if t.len > n then Format.fprintf fmt "  ... (%d more)@." (t.len - n)
