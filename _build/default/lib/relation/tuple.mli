(** Tuples: immutable value arrays positioned against a {!Schema.t}.

    The Tukwila paper represents tuples as vectors of pointers to attribute
    containers so that state structures can store values in one physical
    order while operators read them in another; in OCaml the value array is
    already a vector of boxed values, and re-ordering is performed by the
    [Tuple_adapter] permutation in [adp_storage]. *)

type t = Value.t array

val arity : t -> int
val get : t -> int -> Value.t

(** [concat a b] is the join concatenation of the two tuples. *)
val concat : t -> t -> t

(** [project t idxs] extracts the values at the given positions, in order. *)
val project : t -> int array -> t

(** [key t idxs] is the composite key at the given positions, for use in
    hash and sorted state structures. *)
val key : t -> int array -> Value.t array

val compare_key : Value.t array -> Value.t array -> int
val hash_key : Value.t array -> int
val equal_key : Value.t array -> Value.t array -> bool

(** Total order on whole tuples (lexicographic). *)
val compare : t -> t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
