type t =
  | Col of string
  | Const of Value.t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

let col c = Col c
let const v = Const v
let int i = Const (Value.Int i)
let float f = Const (Value.Float f)

let rec columns = function
  | Col c -> [ c ]
  | Const _ -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> columns a @ columns b

let arith f a b =
  if Value.is_null a || Value.is_null b then Value.Null
  else
    match a, b with
    | Value.Int x, Value.Int y ->
      (* Integer arithmetic stays integral except division. *)
      (match f with
       | `Add -> Value.Int (x + y)
       | `Sub -> Value.Int (x - y)
       | `Mul -> Value.Int (x * y)
       | `Div -> Value.Float (float_of_int x /. float_of_int y))
    | _ ->
      let x = Value.to_float a and y = Value.to_float b in
      (match f with
       | `Add -> Value.Float (x +. y)
       | `Sub -> Value.Float (x -. y)
       | `Mul -> Value.Float (x *. y)
       | `Div -> Value.Float (x /. y))

let compile e schema =
  let rec build = function
    | Col c ->
      let i = Schema.index schema c in
      fun t -> t.(i)
    | Const v -> fun _ -> v
    | Add (a, b) -> bin `Add a b
    | Sub (a, b) -> bin `Sub a b
    | Mul (a, b) -> bin `Mul a b
    | Div (a, b) -> bin `Div a b
  and bin op a b =
    let fa = build a and fb = build b in
    fun t -> arith op (fa t) (fb t)
  in
  build e

let rec size = function
  | Col _ | Const _ -> 1
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> 1 + size a + size b

let rec pp fmt = function
  | Col c -> Format.pp_print_string fmt c
  | Const v -> Value.pp fmt v
  | Add (a, b) -> Format.fprintf fmt "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf fmt "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf fmt "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf fmt "(%a / %a)" pp a pp b

let to_string e = Format.asprintf "%a" pp e
