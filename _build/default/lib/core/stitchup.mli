open Adp_exec
open Adp_storage
open Adp_optimizer

(** The stitch-up phase (§3.4).

    After n phases have partitioned each of the m base relations into
    regions R⁰…Rⁿ⁻¹, the query answer still lacks the nᵐ − n cross-phase
    combinations.  The stitch-up phase evaluates exactly those, bottom-up
    along an optimizer-chosen join tree, with structure-to-structure
    granularity (§3.4.3): each side of every stitch-up join keeps one
    state structure per lineage (phase p, or "mixed"), and a combination
    of two same-phase structures is skipped when the registry already
    holds that subexpression for that phase (reusing its tuples instead —
    through a tuple adapter when the registered plan laid the columns out
    differently) or, at the root, unconditionally (the exclusion list:
    every phase already emitted its own uniform combination). *)

type stats = {
  combos_possible : int;  (** nᵐ − n *)
  output : int;  (** cross-phase result tuples emitted to the sink *)
  reused : int;  (** tuples reused from registered intermediates *)
  recomputed_uniform : int;
      (** uniform-combination tuples the registry could not supply *)
  time : float;  (** virtual time spent in stitch-up *)
}

(** [run ctx q ~join_tree ~phases ~registry ~sink] evaluates the stitch-up
    expression and feeds the results to the shared sink.  [join_tree]
    gives the stitch-up join order/shape (scans and joins; pre-aggregation
    only directly above scans), typically a fresh optimizer result under
    the selectivities observed during execution. *)
val run :
  Ctx.t ->
  Logical.query ->
  join_tree:Plan.spec ->
  phases:Phase.t list ->
  registry:Registry.t ->
  sink:Sink.t ->
  stats
