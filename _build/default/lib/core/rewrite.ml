open Adp_relation

let rec expr f = function
  | Expr.Col c -> Expr.Col (f c)
  | Expr.Const v -> Expr.Const v
  | Expr.Add (a, b) -> Expr.Add (expr f a, expr f b)
  | Expr.Sub (a, b) -> Expr.Sub (expr f a, expr f b)
  | Expr.Mul (a, b) -> Expr.Mul (expr f a, expr f b)
  | Expr.Div (a, b) -> Expr.Div (expr f a, expr f b)

let rec predicate f = function
  | Predicate.True -> Predicate.True
  | Predicate.Cmp (op, c, v) -> Predicate.Cmp (op, f c, v)
  | Predicate.Col_cmp (op, a, b) -> Predicate.Col_cmp (op, f a, f b)
  | Predicate.Between (c, lo, hi) -> Predicate.Between (f c, lo, hi)
  | Predicate.In (c, vs) -> Predicate.In (f c, vs)
  | Predicate.Not p -> Predicate.Not (predicate f p)
  | Predicate.And (a, b) -> Predicate.And (predicate f a, predicate f b)
  | Predicate.Or (a, b) -> Predicate.Or (predicate f a, predicate f b)
