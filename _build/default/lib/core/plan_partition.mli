open Adp_relation
open Adp_exec
open Adp_optimizer

(** Plan partitioning with mid-query re-optimization (the Kabra–DeWitt
    style baseline of §4.4).

    With no statistics there is no good metric for placing the
    materialization point, so — like the paper — we break the plan after a
    fixed number of joins (3 by default): a first stage joins
    [break_after + 1] relations (picked greedily by estimated
    cardinality), materializes the result, and the remainder of the query
    is re-optimized with the materialization's now-exact cardinality
    before the second stage runs.  Queries small enough to fit in one
    stage degenerate to static execution. *)

type stats = {
  stages : int;
  materialized_card : int;  (** tuples materialized between stages *)
  total_time : float;
  cpu : float;
  idle : float;
  result_card : int;
}

(** [initial_plan] forces the first stage to execute a cut of the given
    plan (the larger subtree is followed until it fits in
    [break_after + 1] relations) instead of an optimized one — used to
    reproduce the paper's scenario where the materialization point lands
    after the costly subexpression. *)
val run :
  ?preagg:Optimizer.preagg_strategy ->
  ?costs:Cost_model.t ->
  ?break_after:int ->
  ?initial_plan:Adp_exec.Plan.spec ->
  Logical.query ->
  Catalog.t ->
  Source.t list ->
  Relation.t * stats
