open Adp_relation
open Adp_exec
open Adp_optimizer

(** The shared query sink: Figure 1's "shared group-by operator".

    All phase plans and the stitch-up plan of one query feed the same sink.
    Because different plan shapes concatenate attributes in different
    orders, the sink fixes a canonical schema (the first plan's root
    schema) and adapts every feed through a {!Adp_storage.Tuple_adapter}
    (§3.2).  Aggregation queries run a blocking hash aggregate that
    coalesces raw or partial (pre-aggregated) inputs; pure SPJ queries
    collect and project. *)

type t

(** [create ctx q ~canonical] — [canonical] is the root schema of the
    first plan instantiated for [q]. *)
val create : Ctx.t -> Logical.query -> canonical:Schema.t -> t

(** Feed root output tuples produced under schema [from]. *)
val feed : t -> from:Schema.t -> Tuple.t list -> unit

(** Tuples consumed so far. *)
val consumed : t -> int

(** Finalized query result. *)
val result : t -> Relation.t
