open Adp_relation
open Adp_exec
open Adp_storage
open Adp_optimizer

type mode =
  | Aggregating of Agg.t
  | Collecting of { out : Relation.t; project : int array option }

type t = {
  canonical : Schema.t;
  mode : mode;
  mutable consumed : int;
  mutable cached_adapter : (Schema.t * Tuple_adapter.t) option;
      (* feeds arrive in long runs from one plan; cache its adapter *)
}

let create ctx (q : Logical.query) ~canonical =
  let mode =
    if q.aggs = [] && q.group_cols = [] then begin
      let project =
        match q.projection with
        | [] -> None
        | cols ->
          Some (Array.of_list (List.map (Schema.index canonical) cols))
      in
      let out_schema =
        match q.projection with
        | [] -> canonical
        | cols -> Schema.project canonical cols
      in
      Collecting { out = Relation.create out_schema; project }
    end
    else begin
      (* Partial inputs are detected by the presence of the partial
         accumulator columns in the canonical schema. *)
      let input =
        match Aggregate.partial_names q.aggs with
        | first :: _ when Schema.mem canonical first -> Agg.Partial
        | _ :: _ | [] -> Agg.Raw
      in
      Aggregating
        (Agg.create ctx ~group_cols:q.group_cols ~aggs:q.aggs ~input canonical)
    end
  in
  { canonical; mode; consumed = 0; cached_adapter = None }

let adapter_for t from =
  match t.cached_adapter with
  | Some (s, a) when s == from -> a
  | Some _ | None ->
    let a = Tuple_adapter.create ~from ~into:t.canonical in
    t.cached_adapter <- Some (from, a);
    a

let feed t ~from tuples =
  if tuples <> [] then begin
    let adapter = adapter_for t from in
    let tuples = Tuple_adapter.adapt_all adapter tuples in
    t.consumed <- t.consumed + List.length tuples;
    match t.mode with
    | Aggregating agg -> Agg.add_all agg tuples
    | Collecting c ->
      List.iter
        (fun tuple ->
          match c.project with
          | None -> Relation.append c.out tuple
          | Some idx -> Relation.append c.out (Tuple.project tuple idx))
        tuples
  end

let consumed t = t.consumed

let result t =
  match t.mode with
  | Aggregating agg -> Agg.result agg
  | Collecting c -> c.out
