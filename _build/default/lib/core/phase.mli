open Adp_relation
open Adp_exec
open Adp_storage

(** One execution phase of adaptive data partitioning (§2.1, §3).

    A phase is a plan instance plus the region of source data it consumed:
    the k-th phase reads the sources from wherever phase k−1 stopped, so
    each base relation R is implicitly partitioned into R⁰, R¹, … Rⁿ.  On
    completion (exhaustion or mid-stream suspension) the phase registers
    every join node's intermediate result in the state-structure registry
    for the stitch-up phase to reuse. *)

type t = {
  id : int;
  spec : Plan.spec;
  plan : Plan.t;
  mutable emitted : int;  (** root tuples this phase emitted *)
}

(** [record_outputs] defaults to true; pass false for executions that
    will never stitch (single-phase runs) to avoid materializing
    intermediates nobody can reuse. *)
val create :
  ?record_outputs:bool ->
  id:int -> Ctx.t -> Plan.spec -> schema_of:(string -> Schema.t) -> t

(** Register the phase's strictly intermediate join results (the root's
    output already reached the shared sink) under its plan id. *)
val register : t -> Registry.t -> unit

(** The phase's partition of each effective leaf: (source name, schema,
    tuples, leaf signature). *)
val partitions : t -> (string * Schema.t * Tuple.t list * string) list
