lib/core/stitchup.ml: Adp_exec Adp_optimizer Adp_relation Adp_storage Array Ctx Hash_table List Logical Phase Plan Printf Registry Schema Sink String Sys Tuple Tuple_adapter
