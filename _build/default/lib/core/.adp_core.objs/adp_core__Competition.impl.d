lib/core/competition.ml: Adp_exec Adp_optimizer Adp_relation Adp_stats Catalog Clock Cost_model Ctx Driver Format List Optimizer Plan Relation Sink Source
