lib/core/sink.mli: Adp_exec Adp_optimizer Adp_relation Ctx Logical Relation Schema Tuple
