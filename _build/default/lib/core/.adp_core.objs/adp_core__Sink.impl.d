lib/core/sink.ml: Adp_exec Adp_optimizer Adp_relation Adp_storage Agg Aggregate Array List Logical Relation Schema Tuple Tuple_adapter
