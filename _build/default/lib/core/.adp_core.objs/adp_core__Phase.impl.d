lib/core/phase.ml: Adp_exec Adp_storage List Plan Registry
