lib/core/rewrite.ml: Adp_relation Expr Predicate
