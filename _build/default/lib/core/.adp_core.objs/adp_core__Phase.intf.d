lib/core/phase.mli: Adp_exec Adp_relation Adp_storage Ctx Plan Registry Schema Tuple
