lib/core/plan_partition.mli: Adp_exec Adp_optimizer Adp_relation Catalog Cost_model Logical Optimizer Relation Source
