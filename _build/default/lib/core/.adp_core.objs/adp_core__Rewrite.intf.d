lib/core/rewrite.mli: Adp_relation Expr Predicate
