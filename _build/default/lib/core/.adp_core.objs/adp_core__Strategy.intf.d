lib/core/strategy.mli: Adp_exec Adp_optimizer Adp_relation Catalog Corrective Cost_model Logical Optimizer Plan Relation Report Source
