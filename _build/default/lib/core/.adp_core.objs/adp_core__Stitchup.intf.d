lib/core/stitchup.mli: Adp_exec Adp_optimizer Adp_storage Ctx Logical Phase Plan Registry Sink
