lib/core/competition.mli: Adp_exec Adp_optimizer Adp_relation Catalog Cost_model Logical Relation Source
