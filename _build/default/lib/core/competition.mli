open Adp_relation
open Adp_exec
open Adp_optimizer

(** Redundant computation (§2.1): several competing plans process the same
    data until a time threshold, then all but the furthest-progressed plan
    are terminated and the winner finishes the query.  Each competitor
    reads its own cursor over the sources (supplied by a factory), so the
    exploration cost — charged in full to the shared clock — is the
    technique's defining overhead. *)

type stats = {
  candidates : int;
  winner : int;  (** index of the winning plan, 0 = optimizer's choice *)
  winner_desc : string;
  explore_time : float;  (** virtual time spent before the decision *)
  total_time : float;
  cpu : float;
  idle : float;
  result_card : int;
}

val run :
  ?costs:Cost_model.t ->
  ?candidates:int ->
  ?explore_budget:float ->
  Logical.query ->
  Catalog.t ->
  sources:(unit -> Source.t list) ->
  Relation.t * stats
