open Adp_relation

(** Column-renaming rewrites over expressions and predicates, used when a
    materialization point turns an intermediate result into a base source
    for the remainder of the query (plan partitioning, §2.1). *)

val expr : (string -> string) -> Expr.t -> Expr.t
val predicate : (string -> string) -> Predicate.t -> Predicate.t
