open Adp_exec
open Adp_storage

type t = {
  id : int;
  spec : Plan.spec;
  plan : Plan.t;
  mutable emitted : int;
}

let create ?record_outputs ~id ctx spec ~schema_of =
  { id; spec; plan = Plan.instantiate ?record_outputs ctx spec ~schema_of;
    emitted = 0 }

let register t registry =
  (* The root's results were already emitted to the shared sink; only the
     strictly intermediate join nodes are worth registering for reuse. *)
  let total = List.length (Plan.relations t.spec) in
  List.iter
    (fun (signature, schema, tuples, complexity) ->
      if complexity < total then
        Registry.register registry ~signature ~phase:t.id ~schema ~complexity
          tuples)
    (Plan.node_results t.plan)

let partitions t = Plan.leaf_partitions t.plan
