open Adp_relation

(** Simulated autonomous data sources.

    Data-integration sources are sequential-access only and deliver tuples
    over a network whose bandwidth and burstiness the engine does not
    control.  A source pairs a relation with an arrival model that assigns
    each tuple a virtual arrival time:

    - [Local]: all tuples available immediately (the paper's local
      experiments, which isolate computation cost);
    - [Bandwidth r]: steady stream at [r] tuples per virtual second;
    - [Bursty]: 802.11b-style on/off behaviour — during a burst, tuples
      arrive at [rate]; between bursts the stream goes silent for an
      exponentially distributed gap (Figure 3's wireless network).

    Observers may be attached (e.g. §4.5's incremental histograms); they
    see every tuple as it is consumed and their cost is the caller's to
    charge. *)

type model =
  | Local
  | Bandwidth of float  (** tuples per virtual second *)
  | Bursty of { rate : float; mean_burst : int; mean_gap : float }
      (** [rate] tuples/s while on; bursts of ~[mean_burst] tuples
          separated by exponential gaps of mean [mean_gap] virtual
          seconds *)

type t

(** [create ?seed ?name relation model] — [name] defaults to a fresh
    label; [seed] controls burst randomness. *)
val create : ?seed:int -> ?name:string -> Relation.t -> model -> t

val name : t -> string
val schema : t -> Schema.t

(** Total tuples in the underlying relation. *)
val cardinality : t -> int

(** Tuples consumed so far. *)
val consumed : t -> int

val exhausted : t -> bool

(** Arrival time of the next tuple, if any. *)
val peek_arrival : t -> float option

(** Consume the next tuple; returns it with its arrival time and feeds
    observers. *)
val next : t -> (Tuple.t * float) option

(** Attach an observer called on every consumed tuple. *)
val observe : t -> (Tuple.t -> unit) -> unit

(** Reset consumption to the beginning (observers retained). *)
val rewind : t -> unit
