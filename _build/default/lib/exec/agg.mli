open Adp_relation

(** Final (blocking) hash aggregation — the shared group-by operator of
    Figure 1.  One instance is shared by all phase plans and the stitch-up
    plan of a query: every plan's root output is fed into it, and the final
    result is emitted once all plans complete.

    The operator consumes either raw tuples (evaluating aggregate input
    expressions directly) or partial-aggregate tuples produced by
    pre-aggregation / pseudogroup operators, which it "coalesces". *)

type input = Raw | Partial

type t

(** [create ctx ~group_cols ~aggs ~input schema] — [schema] is the schema
    of the tuples that will be fed in. *)
val create :
  Ctx.t ->
  group_cols:string list ->
  aggs:Aggregate.spec list ->
  input:input ->
  Schema.t ->
  t

val add : t -> Tuple.t -> unit
val add_all : t -> Tuple.t list -> unit

(** Tuples consumed so far. *)
val consumed : t -> int

(** Current number of groups. *)
val groups : t -> int

(** Output schema: group columns followed by aggregate output names. *)
val out_schema : t -> Schema.t

(** Finalized result (can be called repeatedly; does not clear state). *)
val result : t -> Relation.t
