(** Binary min-heap, used by the priority-queue tuple re-ordering router of
    §5 and by the driver's source event queue. *)

type 'a t

(** [create cmp] — min element according to [cmp] is popped first. *)
val create : ('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

(** @raise Invalid_argument when empty. *)
val pop : 'a t -> 'a

val peek : 'a t -> 'a option
