open Adp_relation
open Adp_storage

type side = L | R

type t = {
  ctx : Ctx.t;
  mode : [ `Hash | `Merge ];
  schema : Schema.t;
  ltbl : Hash_table.t;
  rtbl : Hash_table.t;
  mutable last_l : Value.t array option;
  mutable last_r : Value.t array option;
  mutable out : int;
  mutable in_l : int;
  mutable in_r : int;
}

let create ctx ~mode ~left_schema ~right_schema ~left_key ~right_key =
  { ctx; mode; schema = Schema.concat left_schema right_schema;
    ltbl = Hash_table.create left_schema ~key_cols:left_key;
    rtbl = Hash_table.create right_schema ~key_cols:right_key;
    last_l = None; last_r = None; out = 0; in_l = 0; in_r = 0 }

let schema t = t.schema

let accepts t side tuple =
  match t.mode with
  | `Hash -> true
  | `Merge ->
    let tbl, last = match side with L -> t.ltbl, t.last_l | R -> t.rtbl, t.last_r in
    (match last with
     | None -> true
     | Some k -> Tuple.compare_key k (Hash_table.key_of tbl tuple) <= 0)

let insert t side tuple =
  if not (accepts t side tuple) then
    invalid_arg "Sym_join.insert: out-of-order merge insertion";
  let c = t.ctx.Ctx.costs in
  let build, probe =
    match t.mode with
    | `Hash -> c.hash_build, c.hash_probe
    | `Merge -> c.merge_append, c.merge_probe
  in
  Ctx.charge t.ctx build;
  let outs =
    match side with
    | L ->
      t.in_l <- t.in_l + 1;
      Hash_table.insert t.ltbl tuple;
      let k = Hash_table.key_of t.ltbl tuple in
      if t.mode = `Merge then t.last_l <- Some k;
      let matches = Hash_table.probe t.rtbl k in
      Ctx.charge t.ctx
        (probe +. (c.per_match *. float_of_int (List.length matches)));
      List.rev_map (fun m -> Tuple.concat tuple m) matches
    | R ->
      t.in_r <- t.in_r + 1;
      Hash_table.insert t.rtbl tuple;
      let k = Hash_table.key_of t.rtbl tuple in
      if t.mode = `Merge then t.last_r <- Some k;
      let matches = Hash_table.probe t.ltbl k in
      Ctx.charge t.ctx
        (probe +. (c.per_match *. float_of_int (List.length matches)));
      List.rev_map (fun m -> Tuple.concat m tuple) matches
  in
  t.out <- t.out + List.length outs;
  outs

let left_table t = t.ltbl
let right_table t = t.rtbl
let out_count t = t.out
let inserted t = t.in_l, t.in_r
