open Adp_relation

type fn = Count | Sum | Min | Max | Avg

type spec = { fn : fn; expr : Expr.t; name : string }

let count_all ~name = { fn = Count; expr = Expr.int 1; name }
let sum ~name expr = { fn = Sum; expr; name }
let min_of ~name expr = { fn = Min; expr; name }
let max_of ~name expr = { fn = Max; expr; name }
let avg ~name expr = { fn = Avg; expr; name }

type slot = Acc_sum | Acc_cnt | Acc_min | Acc_max

let slots_of = function
  | Count -> [ Acc_cnt ]
  | Sum -> [ Acc_sum ]
  | Min -> [ Acc_min ]
  | Max -> [ Acc_max ]
  | Avg -> [ Acc_sum; Acc_cnt ]

let slot_suffix = function
  | Acc_sum -> "_sum"
  | Acc_cnt -> "_cnt"
  | Acc_min -> "_min"
  | Acc_max -> "_max"

let partial_names specs =
  List.concat_map
    (fun s ->
      List.map (fun sl -> "pa." ^ s.name ^ slot_suffix sl) (slots_of s.fn))
    specs

let partial_schema ~group_cols specs =
  Schema.make (group_cols @ partial_names specs)

type input_kind =
  | Raw of (Tuple.t -> Value.t) array  (* one eval per slot's spec *)
  | Partial of int array  (* source column index per slot *)

type compiled = {
  specs : spec list;
  slots : slot array;
  spec_of_slot : int array;  (* slot index -> spec index *)
  input : input_kind;
}

let layout specs =
  let slots = ref [] and owners = ref [] in
  List.iteri
    (fun si s ->
      List.iter
        (fun sl ->
          slots := sl :: !slots;
          owners := si :: !owners)
        (slots_of s.fn))
    specs;
  Array.of_list (List.rev !slots), Array.of_list (List.rev !owners)

let compile specs schema =
  let slots, spec_of_slot = layout specs in
  let spec_arr = Array.of_list specs in
  let evals =
    Array.map (fun si -> Expr.compile spec_arr.(si).expr schema) spec_of_slot
  in
  { specs; slots; spec_of_slot; input = Raw evals }

let compile_partial specs schema =
  let slots, spec_of_slot = layout specs in
  let idx =
    Array.of_list (List.map (Schema.index schema) (partial_names specs))
  in
  { specs; slots; spec_of_slot; input = Partial idx }

let width c = Array.length c.slots

let neutral = function
  | Acc_sum -> Value.Int 0
  | Acc_cnt -> Value.Int 0
  | Acc_min | Acc_max -> Value.Null

let init c = Array.map neutral c.slots

let combine slot acc v =
  match slot with
  | Acc_sum -> Value.add acc v
  | Acc_cnt -> Value.add acc v
  | Acc_min -> Value.min_v acc v
  | Acc_max -> Value.max_v acc v

let update c acc tuple =
  match c.input with
  | Raw evals ->
    Array.iteri
      (fun i slot ->
        let v =
          match slot with Acc_cnt -> Value.Int 1 | _ -> evals.(i) tuple
        in
        acc.(i) <- combine slot acc.(i) v)
      c.slots
  | Partial idx ->
    Array.iteri
      (fun i slot -> acc.(i) <- combine slot acc.(i) tuple.(idx.(i)))
      c.slots

let to_partial _c acc = Array.copy acc

let finalize c acc =
  let spec_arr = Array.of_list c.specs in
  let slot_for si kind =
    let found = ref None in
    Array.iteri
      (fun i owner ->
        if owner = si && c.slots.(i) = kind && !found = None then
          found := Some i)
      c.spec_of_slot;
    match !found with
    | Some i -> acc.(i)
    | None -> invalid_arg "Aggregate.finalize: missing slot"
  in
  Array.mapi
    (fun si s ->
      match s.fn with
      | Count -> slot_for si Acc_cnt
      | Sum -> slot_for si Acc_sum
      | Min -> slot_for si Acc_min
      | Max -> slot_for si Acc_max
      | Avg ->
        let s_ = slot_for si Acc_sum and cnt = slot_for si Acc_cnt in
        if Value.is_null s_ || Value.is_null cnt then Value.Null
        else begin
          let n = Value.to_float cnt in
          if n = 0.0 then Value.Null
          else Value.Float (Value.to_float s_ /. n)
        end)
    spec_arr
