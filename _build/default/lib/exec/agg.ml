open Adp_relation

type input = Raw | Partial

module Ktbl = Hashtbl.Make (struct
  type t = Value.t array

  let equal = Tuple.equal_key
  let hash = Tuple.hash_key
end)

type t = {
  ctx : Ctx.t;
  group_idx : int array;
  comp : Aggregate.compiled;
  out_schema : Schema.t;
  table : Value.t array Ktbl.t;
  mutable order : Value.t array list;  (* first-seen order, newest first *)
  mutable consumed : int;
}

let create ctx ~group_cols ~aggs ~input schema =
  let group_idx =
    Array.of_list (List.map (Schema.index schema) group_cols)
  in
  let comp =
    match input with
    | Raw -> Aggregate.compile aggs schema
    | Partial -> Aggregate.compile_partial aggs schema
  in
  let out_names =
    List.map (fun c -> (Schema.columns schema).(Schema.index schema c)) group_cols
    @ List.map (fun (a : Aggregate.spec) -> a.name) aggs
  in
  { ctx; group_idx; comp; out_schema = Schema.make out_names;
    table = Ktbl.create 256; order = []; consumed = 0 }

let add t tuple =
  Ctx.charge t.ctx t.ctx.Ctx.costs.agg_update;
  t.consumed <- t.consumed + 1;
  let k = Tuple.key tuple t.group_idx in
  match Ktbl.find_opt t.table k with
  | Some acc -> Aggregate.update t.comp acc tuple
  | None ->
    let acc = Aggregate.init t.comp in
    Aggregate.update t.comp acc tuple;
    Ktbl.replace t.table k acc;
    t.order <- k :: t.order

let add_all t tuples = List.iter (add t) tuples

let consumed t = t.consumed
let groups t = Ktbl.length t.table
let out_schema t = t.out_schema

let result t =
  let rel = Relation.create t.out_schema in
  List.iter
    (fun k ->
      let acc = Ktbl.find t.table k in
      Ctx.charge t.ctx t.ctx.Ctx.costs.output;
      Relation.append rel (Array.append k (Aggregate.finalize t.comp acc)))
    (List.rev t.order);
  rel
