type t = {
  clock : Clock.t;
  costs : Cost_model.t;
  mutable tuples_read : int;
  mutable tuples_output : int;
}

let create ?(costs = Cost_model.default) () =
  { clock = Clock.create (); costs; tuples_read = 0; tuples_output = 0 }

let charge t c = Clock.charge t.clock c
let now t = Clock.now t.clock
