open Adp_relation
open Adp_storage

type stem = {
  s_name : string;
  s_schema : Schema.t;
  s_tables : (string * Hash_table.t) list;  (* join column -> hash index *)
  mutable s_probes : int;
  mutable s_matches : int;
}

type t = {
  ctx : Ctx.t;
  stems : stem array;
  filters : (Tuple.t -> bool) array;
  filter_atoms : int array;
  (* (left rel index, left col index, right rel index, right col index,
     right col name) per join predicate *)
  preds : (int * int * int * int * string) list;
  out_schema : Schema.t;
  mutable decisions : int;
}

let rel_of_col col =
  match String.index_opt col '.' with
  | Some i -> String.sub col 0 i
  | None -> invalid_arg ("Eddy: unqualified column " ^ col)

let create ctx ~sources ~filters ~preds =
  let names = Array.of_list (List.map fst sources) in
  let index_of name =
    let found = ref (-1) in
    Array.iteri (fun i n -> if n = name then found := i) names;
    if !found < 0 then invalid_arg ("Eddy: unknown relation " ^ name);
    !found
  in
  let join_cols_of name =
    List.concat_map
      (fun (a, b) ->
        List.filter (fun c -> rel_of_col c = name) [ a; b ])
      preds
    |> List.sort_uniq String.compare
  in
  let stems =
    Array.of_list
      (List.map
         (fun (name, schema) ->
           { s_name = name; s_schema = schema;
             s_tables =
               List.map
                 (fun col -> col, Hash_table.create schema ~key_cols:[ col ])
                 (join_cols_of name);
             s_probes = 0; s_matches = 0 })
         sources)
  in
  let filter_of name =
    match List.assoc_opt name filters with
    | Some p -> p
    | None -> Predicate.tt
  in
  let filters_arr =
    Array.map
      (fun stem -> Predicate.compile (filter_of stem.s_name) stem.s_schema)
      stems
  in
  let filter_atoms =
    Array.map
      (fun stem -> max 1 (Predicate.size (filter_of stem.s_name)))
      stems
  in
  let resolved_preds =
    List.map
      (fun (a, b) ->
        let ra = index_of (rel_of_col a) and rb = index_of (rel_of_col b) in
        ( ra, Schema.index stems.(ra).s_schema a,
          rb, Schema.index stems.(rb).s_schema b, b ))
      preds
  in
  let out_schema =
    List.fold_left
      (fun acc (_, schema) -> Schema.concat acc schema)
      (Schema.make [])
      sources
  in
  { ctx; stems; filters = filters_arr; filter_atoms; preds = resolved_preds;
    out_schema; decisions = 0 }

let schema t = t.out_schema

(* Predicates linking relation [j] to the covered set, as
   (covered rel, covered col idx, j's col idx, j's col name). *)
let links t covered j =
  List.filter_map
    (fun (ra, ca, rb, cb, col_b) ->
      if ra = j && covered.(rb) then
        (* Orient so the covered side comes first; probing key is j's
           column, which for this orientation is column ca of relation
           ra = j.  Find ra's column name from its schema. *)
        Some (rb, cb, ca, (Schema.columns t.stems.(j).s_schema).(ca))
      else if rb = j && covered.(ra) then Some (ra, ca, cb, col_b)
      else None)
    t.preds

let emit _t parts =
  let pieces =
    Array.to_list
      (Array.map
         (function Some tup -> tup | None -> invalid_arg "Eddy: hole")
         parts)
  in
  Array.concat pieces

(* Route a partial combination to completion, depth-first. *)
let rec route t parts covered acc =
  let n = Array.length t.stems in
  let all = Array.for_all Fun.id covered in
  if all then emit t parts :: acc
  else begin
    (* Candidate relations connected to the covered set. *)
    let candidates = ref [] in
    for j = n - 1 downto 0 do
      if (not covered.(j)) && links t covered j <> [] then
        candidates := j :: !candidates
    done;
    match !candidates with
    | [] -> acc (* disconnected query fragment: nothing to produce *)
    | cands ->
      (* Local greedy policy: lowest observed expansion ratio first. *)
      t.decisions <- t.decisions + 1;
      Ctx.charge t.ctx t.ctx.Ctx.costs.route;
      let ratio j =
        let stem = t.stems.(j) in
        float_of_int (stem.s_matches + 1) /. float_of_int (stem.s_probes + 1)
      in
      let j =
        List.fold_left
          (fun best cand -> if ratio cand < ratio best then cand else best)
          (List.hd cands) cands
      in
      let stem = t.stems.(j) in
      let conns = links t covered j in
      (match conns with
       | [] -> acc
       | (src_rel, src_col, _, probe_col) :: rest ->
         let key =
           match parts.(src_rel) with
           | Some tup -> [| tup.(src_col) |]
           | None -> invalid_arg "Eddy: missing part"
         in
         let table = List.assoc probe_col stem.s_tables in
         let matches = Hash_table.probe table key in
         stem.s_probes <- stem.s_probes + 1;
         Ctx.charge t.ctx
           (t.ctx.Ctx.costs.hash_probe
           +. (t.ctx.Ctx.costs.per_match *. float_of_int (List.length matches)));
         (* Residual predicates between j and the covered set. *)
         let survives m =
           List.for_all
             (fun (r, c, jc, _) ->
               match parts.(r) with
               | Some tup -> Value.eq_sql tup.(c) m.(jc)
               | None -> false)
             rest
         in
         List.fold_left
           (fun acc m ->
             if survives m then begin
               stem.s_matches <- stem.s_matches + 1;
               parts.(j) <- Some m;
               covered.(j) <- true;
               let acc = route t parts covered acc in
               parts.(j) <- None;
               covered.(j) <- false;
               acc
             end
             else acc)
           acc matches)
  end

let insert t ~source tuple =
  let n = Array.length t.stems in
  let idx = ref (-1) in
  Array.iteri (fun i stem -> if stem.s_name = source then idx := i) t.stems;
  if !idx < 0 then invalid_arg ("Eddy.insert: unknown source " ^ source);
  let i = !idx in
  Ctx.charge t.ctx
    (t.ctx.Ctx.costs.filter_atom *. float_of_int t.filter_atoms.(i));
  if not (t.filters.(i) tuple) then []
  else begin
    (* Build into every access method of the SteM. *)
    List.iter
      (fun (_, table) ->
        Ctx.charge t.ctx t.ctx.Ctx.costs.hash_build;
        Hash_table.insert table tuple)
      t.stems.(i).s_tables;
    let parts = Array.make n None in
    let covered = Array.make n false in
    parts.(i) <- Some tuple;
    covered.(i) <- true;
    List.rev (route t parts covered [])
  end

let routing_stats t =
  Array.to_list
    (Array.map (fun s -> s.s_name, s.s_probes, s.s_matches) t.stems)

let decisions t = t.decisions
