lib/exec/ctx.ml: Clock Cost_model
