lib/exec/source.ml: Adp_datagen Adp_relation List Printf Prng Relation Tuple
