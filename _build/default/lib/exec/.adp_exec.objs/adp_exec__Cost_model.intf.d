lib/exec/cost_model.mli:
