lib/exec/plan.ml: Adp_relation Adp_storage Aggregate Array Ctx Expr Format Hash_table Hashtbl Int List Predicate Printf Schema String Tuple Value
