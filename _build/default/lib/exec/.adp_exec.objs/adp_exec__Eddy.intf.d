lib/exec/eddy.mli: Adp_relation Ctx Predicate Schema Tuple
