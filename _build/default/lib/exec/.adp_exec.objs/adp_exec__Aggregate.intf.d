lib/exec/aggregate.mli: Adp_relation Expr Schema Tuple Value
