lib/exec/sym_join.mli: Adp_relation Adp_storage Ctx Hash_table Schema Tuple
