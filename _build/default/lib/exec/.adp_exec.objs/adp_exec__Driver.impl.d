lib/exec/driver.ml: Array Clock Ctx Source
