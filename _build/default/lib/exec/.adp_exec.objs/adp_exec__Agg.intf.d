lib/exec/agg.mli: Adp_relation Aggregate Ctx Relation Schema Tuple
