lib/exec/aggregate.ml: Adp_relation Array Expr List Schema Tuple Value
