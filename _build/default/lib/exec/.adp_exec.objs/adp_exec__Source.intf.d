lib/exec/source.mli: Adp_relation Relation Schema Tuple
