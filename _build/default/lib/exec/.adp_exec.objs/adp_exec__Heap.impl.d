lib/exec/heap.ml: Array
