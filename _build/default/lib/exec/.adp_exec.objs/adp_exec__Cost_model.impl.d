lib/exec/cost_model.ml:
