lib/exec/plan.mli: Adp_relation Aggregate Ctx Format Predicate Schema Tuple
