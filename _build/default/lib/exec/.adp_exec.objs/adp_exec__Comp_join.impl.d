lib/exec/comp_join.ml: Adp_relation Adp_storage Array Ctx Hash_table Hashtbl Heap List Option Schema Sym_join Tuple Value
