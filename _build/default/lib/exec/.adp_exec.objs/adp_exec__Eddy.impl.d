lib/exec/eddy.ml: Adp_relation Adp_storage Array Ctx Fun Hash_table List Predicate Schema String Tuple Value
