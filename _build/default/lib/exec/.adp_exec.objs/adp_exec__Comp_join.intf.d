lib/exec/comp_join.mli: Adp_relation Ctx Schema Tuple
