lib/exec/heap.mli:
