lib/exec/sym_join.ml: Adp_relation Adp_storage Ctx Hash_table List Schema Tuple Value
