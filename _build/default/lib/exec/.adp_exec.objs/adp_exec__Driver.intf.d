lib/exec/driver.mli: Adp_relation Ctx Source
