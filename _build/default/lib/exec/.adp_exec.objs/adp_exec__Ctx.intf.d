lib/exec/ctx.mli: Clock Cost_model
