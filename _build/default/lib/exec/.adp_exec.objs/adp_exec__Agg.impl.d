lib/exec/agg.ml: Adp_relation Aggregate Array Ctx Hashtbl List Relation Schema Tuple Value
