lib/exec/clock.mli:
