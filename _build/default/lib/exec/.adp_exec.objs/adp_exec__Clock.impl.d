lib/exec/clock.ml:
