open Adp_relation
open Adp_datagen

type model =
  | Local
  | Bandwidth of float
  | Bursty of { rate : float; mean_burst : int; mean_gap : float }

type t = {
  name : string;
  relation : Relation.t;
  model : model;
  seed : int;
  mutable pos : int;
  mutable observers : (Tuple.t -> unit) list;
  (* Arrival-time generator state. *)
  mutable rng : Prng.t;
  mutable next_arrival : float;
  mutable burst_left : int;
}

let counter = ref 0

let fresh_burst t =
  match t.model with
  | Bursty b ->
    t.burst_left <- max 1 (1 + Prng.int t.rng (2 * b.mean_burst - 1))
  | Local | Bandwidth _ -> ()

let create ?(seed = 1) ?name relation model =
  incr counter;
  let name =
    match name with Some n -> n | None -> Printf.sprintf "src%d" !counter
  in
  let t =
    { name; relation; model; seed; pos = 0; observers = [];
      rng = Prng.create seed; next_arrival = 0.0; burst_left = 0 }
  in
  fresh_burst t;
  t

let name t = t.name
let schema t = Relation.schema t.relation
let cardinality t = Relation.cardinality t.relation
let consumed t = t.pos
let exhausted t = t.pos >= Relation.cardinality t.relation

let peek_arrival t = if exhausted t then None else Some t.next_arrival

let advance_arrival t =
  match t.model with
  | Local -> ()
  | Bandwidth r -> t.next_arrival <- t.next_arrival +. (1e6 /. r)
  | Bursty b ->
    t.burst_left <- t.burst_left - 1;
    if t.burst_left <= 0 then begin
      fresh_burst t;
      let gap = Prng.exponential t.rng ~mean:(b.mean_gap *. 1e6) in
      t.next_arrival <- t.next_arrival +. gap
    end
    else t.next_arrival <- t.next_arrival +. (1e6 /. b.rate)

let next t =
  if exhausted t then None
  else begin
    let tuple = Relation.get t.relation t.pos in
    let arrival = t.next_arrival in
    t.pos <- t.pos + 1;
    advance_arrival t;
    List.iter (fun f -> f tuple) t.observers;
    Some (tuple, arrival)
  end

let observe t f = t.observers <- t.observers @ [ f ]

let rewind t =
  t.pos <- 0;
  t.rng <- Prng.create t.seed;
  t.next_arrival <- 0.0;
  fresh_burst t
