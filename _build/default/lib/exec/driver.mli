(** Event loop driving sources into a consumer.

    The driver repeatedly picks the unexhausted source whose next tuple has
    the earliest arrival time (round-robin among ties, which implements
    data-availability-driven adaptive scheduling: a delayed source never
    blocks work available on another), advances the virtual clock, and
    hands the tuple to the consumer.

    An optional poll hook fires whenever the given virtual-time interval
    has elapsed — this is the corrective query processor's background
    re-optimizer (§4.1), whose invocation cost is charged to the clock.
    Returning [`Switch] suspends the loop (sources keep their positions, so
    a new plan resumes reading exactly where the old one stopped). *)

type outcome = Exhausted | Switched

val run :
  Ctx.t ->
  sources:Source.t list ->
  consume:(Source.t -> Adp_relation.Tuple.t -> unit) ->
  ?poll:float * (unit -> [ `Continue | `Switch ]) ->
  unit ->
  outcome
