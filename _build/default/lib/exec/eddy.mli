open Adp_relation

(** An eddy with state modules (SteMs) — the data-partitioning baseline the
    paper positions ADP against (§2.1, §7: Avnur & Hellerstein's eddies,
    Raman et al.'s SteMs).

    Each base relation has a state module: its tuples, hash-indexed on
    every join column the query mentions.  Every arriving tuple is filtered,
    inserted into its SteM, and then routed through the remaining relations
    one probe at a time; the routing policy picks, per tuple, the next
    relation with the lowest observed expansion ratio (a local, greedy
    decision — exactly the contrast with ADP's global, long-term planning).
    A result is emitted when a routed combination covers every relation.

    Correctness follows the n-ary symmetric hash join argument: probes only
    see previously-arrived tuples, so each result combination is produced
    exactly once, at the arrival of its last component, regardless of probe
    order.

    Output tuples use the canonical schema: the concatenation of the source
    schemas in query-source order, independent of routing order. *)

type t

(** [create ctx ~sources ~filters ~preds] — [sources] in canonical order
    with their schemas; [filters] per-source selection predicates;
    [preds] the equi-join column pairs (each column qualified). *)
val create :
  Ctx.t ->
  sources:(string * Schema.t) list ->
  filters:(string * Predicate.t) list ->
  preds:(string * string) list ->
  t

(** Canonical output schema. *)
val schema : t -> Schema.t

(** Feed one source tuple; returns completed result tuples. *)
val insert : t -> source:string -> Tuple.t -> Tuple.t list

(** Routing statistics: per relation, (probes into it, matches produced),
    exposing where the eddy spent its exploration. *)
val routing_stats : t -> (string * int * int) list

(** Tuples routed (routing decisions taken). *)
val decisions : t -> int
