type outcome = Exhausted | Switched

let run ctx ~sources ~consume ?poll () =
  let srcs = Array.of_list sources in
  let n = Array.length srcs in
  let cursor = ref 0 in
  let next_poll =
    ref (match poll with Some (iv, _) -> Ctx.now ctx +. iv | None -> infinity)
  in
  let pick () =
    (* Earliest arrival among unexhausted sources; ties broken round-robin
       starting after the last pick. *)
    let best = ref None in
    for off = 0 to n - 1 do
      let i = (!cursor + off) mod n in
      match Source.peek_arrival srcs.(i) with
      | None -> ()
      | Some a ->
        (match !best with
         | Some (_, ba) when ba <= a -> ()
         | Some _ | None -> best := Some (i, a))
    done;
    !best
  in
  let rec loop () =
    match pick () with
    | None -> Exhausted
    | Some (i, arrival) ->
      cursor := (i + 1) mod n;
      Clock.wait_until ctx.Ctx.clock arrival;
      (match Source.next srcs.(i) with
       | None -> ()
       | Some (tuple, _) ->
         ctx.Ctx.tuples_read <- ctx.Ctx.tuples_read + 1;
         consume srcs.(i) tuple);
      (match poll with
       | Some (iv, cb) when Ctx.now ctx >= !next_poll ->
         Ctx.charge ctx ctx.Ctx.costs.reopt;
         next_poll := Ctx.now ctx +. iv;
         (match cb () with `Continue -> loop () | `Switch -> Switched)
       | Some _ | None -> loop ())
  in
  loop ()
