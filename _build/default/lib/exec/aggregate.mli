open Adp_relation

(** Aggregate functions and partial-aggregate plumbing.

    The common aggregates distribute over union (average via sum+count,
    §2.2 footnote), which is what makes both adaptive data partitioning and
    pre-aggregation sound: partial results computed over any partition of
    the input can be merged.  A partial accumulator is a flat value vector
    whose layout is derived from the aggregate list; pre-aggregation
    operators emit tuples of [group columns @ partial columns], and the
    final aggregation merges either raw input tuples or such partials. *)

type fn = Count | Sum | Min | Max | Avg

type spec = {
  fn : fn;
  expr : Expr.t;  (** ignored by [Count] *)
  name : string;  (** output column name, e.g. ["revenue"] *)
}

val count_all : name:string -> spec
val sum : name:string -> Expr.t -> spec
val min_of : name:string -> Expr.t -> spec
val max_of : name:string -> Expr.t -> spec
val avg : name:string -> Expr.t -> spec

(** Names of the partial-accumulator columns, e.g. ["pa.revenue_sum"].
    Their order defines the accumulator layout. *)
val partial_names : spec list -> string list

(** Schema of a pre-aggregated stream: the group columns (unchanged names,
    so joins above the pre-aggregation still resolve) followed by
    {!partial_names}. *)
val partial_schema : group_cols:string list -> spec list -> Schema.t

type compiled

(** [compile specs schema] resolves aggregate input expressions against the
    raw input schema. *)
val compile : spec list -> Schema.t -> compiled

(** [compile_partial specs schema] prepares merging of partial tuples whose
    schema contains {!partial_names}. *)
val compile_partial : spec list -> Schema.t -> compiled

(** Fresh neutral accumulator. *)
val init : compiled -> Value.t array

(** Fold one input tuple (raw or partial, according to how the aggregator
    was compiled) into the accumulator. *)
val update : compiled -> Value.t array -> Tuple.t -> unit

(** Accumulator as a partial-column vector (layout of {!partial_names}). *)
val to_partial : compiled -> Value.t array -> Value.t array

(** Final aggregate values, one per spec ([Avg] divides sum by count). *)
val finalize : compiled -> Value.t array -> Value.t array

(** Number of value slots in the accumulator. *)
val width : compiled -> int
