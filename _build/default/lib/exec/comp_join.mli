open Adp_relation

(** Complementary join pair (§5, Figure 4).

    The pair speculates that both inputs are (mostly) sorted on the join
    key.  Memory is divided into four hash tables — h(R) and h(S) inside a
    merge join, and h(R) and h(S) inside a pipelined hash join.  A split
    (router) operator sends each arriving tuple to the merge join when it
    conforms to that side's current ordering, otherwise to the hash join.
    The [Priority_queue] variant first passes tuples through a bounded
    min-heap that re-orders recently received elements (the paper uses
    1024 entries), dramatically increasing the share of data the merge
    join can consume on mostly-sorted inputs.

    When both inputs are exhausted, {!finish} runs the mini stitch-up:
    the merge join's h(R) is combined with the hash join's h(S) and
    vice versa (the two same-operator combinations were already produced
    during execution).

    Overflow (§5): when [memory_budget] is set and the four tables exceed
    it, the pair lazily partitions all four hash tables along the same
    hash boundaries and spills whole regions; tuples of spilled regions
    arriving later go straight to the overflow partitions.  At {!finish}
    the spilled regions are joined XJoin-style: every left/right pair of
    a region is produced except pairs that were both memory-resident
    before the spill (those were already joined — the epoch check
    replaces XJoin's timestamps). *)

type variant =
  | Naive  (** route on raw arrival order *)
  | Priority_queue of int  (** re-order through a bounded min-heap *)

type side = L | R

type t

(** [memory_budget] caps the tuples resident across the four hash tables
    (default unbounded); [regions] is the number of overflow partitions
    (default 8). *)
val create :
  ?memory_budget:int ->
  ?regions:int ->
  Ctx.t ->
  variant:variant ->
  left_schema:Schema.t ->
  right_schema:Schema.t ->
  left_key:string list ->
  right_key:string list ->
  t

val schema : t -> Schema.t

(** Feed one input tuple; returns join outputs produced immediately. *)
val insert : t -> side -> Tuple.t -> Tuple.t list

(** Drain priority queues and run the mini stitch-up; returns the
    remaining outputs.  Call exactly once, after both inputs end. *)
val finish : t -> Tuple.t list

type stats = {
  merge_routed : int * int;  (** tuples routed to the merge join (L, R) *)
  hash_routed : int * int;  (** tuples routed to the hash join (L, R) *)
  merge_out : int;  (** outputs produced by the merge join *)
  hash_out : int;  (** outputs produced by the hash join *)
  stitch_out : int;  (** outputs produced by the mini stitch-up *)
  spilled_regions : int;  (** overflow partitions spilled to disk *)
  spilled_tuples : int;  (** tuples written to overflow partitions *)
  overflow_out : int;  (** outputs produced by overflow resolution *)
}

val stats : t -> stats
