open Adp_relation
open Adp_storage

(** Symmetric streaming binary equi-join.

    In [`Hash] mode this is the pipelined (symmetric) hash join: each
    arriving tuple is buffered in its side's hash table and probed against
    the opposite table, so every matching pair is emitted exactly once, by
    whichever tuple arrives later.

    In [`Merge] mode it is the streaming merge join of §5: both inputs
    must arrive in key order ({!accepts} tells the router whether a tuple
    conforms); tuples are stored in hash tables over sorted data, and
    probes are charged at the merge join's (cheaper) rate.

    Both modes expose their side tables so that complementary join pairs
    can run their mini stitch-up across operators, and so that plans can
    share state structures (§3.1). *)

type side = L | R

type t

val create :
  Ctx.t ->
  mode:[ `Hash | `Merge ] ->
  left_schema:Schema.t ->
  right_schema:Schema.t ->
  left_key:string list ->
  right_key:string list ->
  t

val schema : t -> Schema.t

(** Whether inserting the tuple on that side is legal (always true in
    [`Hash] mode; in-order check in [`Merge] mode). *)
val accepts : t -> side -> Tuple.t -> bool

(** Insert and return the join outputs produced.
    @raise Invalid_argument on out-of-order [`Merge] insertion. *)
val insert : t -> side -> Tuple.t -> Tuple.t list

val left_table : t -> Hash_table.t
val right_table : t -> Hash_table.t

(** Join output count so far. *)
val out_count : t -> int

(** Tuples inserted on each side. *)
val inserted : t -> int * int
