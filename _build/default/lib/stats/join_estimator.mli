open Adp_relation

(** Join-size prediction from stream prefixes (§4.5).

    The experiment in the paper shows that neither incremental histograms
    nor order detection alone predicts join output cardinality: histograms
    assume the prefix is a random sample (wrong for sorted data, where the
    prefix covers only part of the domain), and order detection only helps
    when the data is sorted.  Combining them works: a side whose stream is
    strictly ascending is modeled as a key whose full range is
    extrapolated from the seen prefix; other sides are modeled by scaling
    their histograms to the predicted full cardinality. *)

type side

(** [side ~buckets ()] creates the per-stream summary (histogram + order
    detector).  The paper uses 50 buckets. *)
val side : ?buckets:int -> unit -> side

(** Observe the join attribute of one arriving tuple. *)
val observe : side -> Value.t -> unit

(** Values seen so far. *)
val seen : side -> int

(** Whether the stream has been perfectly sorted ascending so far (its
    prefix covers only part of the domain, so the full range is
    extrapolated rather than the histogram scaled). *)
val detected_sorted : side -> bool

(** {!detected_sorted} and strictly ascending — a key. *)
val detected_key : side -> bool

(** Average duplicates per distinct value in the prefix. *)
val multiplicity : side -> float

(** [estimate ~left ~right] predicts the full equi-join output size, where
    each side is paired with the fraction of its stream consumed so far
    (in (0, 1]). *)
val estimate : left:side * float -> right:side * float -> float
