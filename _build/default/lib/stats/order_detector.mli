open Adp_relation

(** Streaming order detection (§4.5, §5).

    Watches an attribute stream and reports whether it is ascending,
    descending, or unsorted, how sorted it is (fraction of in-order adjacent
    pairs), and — in the special case of a strictly ascending stream —
    whether the attribute is so far unique (a candidate key, which the
    cardinality estimator exploits). *)

type verdict = Ascending | Descending | Unsorted

type t

val create : unit -> t

val add : t -> Value.t -> unit

val count : t -> int

(** Verdict once at least two values have been seen; a stream is declared
    [Unsorted] when the in-order fraction drops below [threshold]
    (default 0.95). *)
val verdict : ?threshold:float -> t -> verdict

(** Fraction of adjacent pairs in ascending order (1.0 until two values are
    seen). *)
val ascending_fraction : t -> float

(** True while the stream has been strictly ascending — implies all values
    distinct. *)
val strictly_ascending : t -> bool

(** True when no adjacent violation has occurred yet in either direction. *)
val perfectly_sorted : t -> bool
