open Adp_relation

module Vset = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type mode = Exact of unit Vset.t | Sketch of Bytes.t

type t = {
  exact_budget : int;
  bits : int;
  mutable seen : int;
  mutable mode : mode;
}

let create ?(exact_budget = 4096) ?(sketch_bits = 16) () =
  { exact_budget; bits = sketch_bits; seen = 0;
    mode = Exact (Vset.create 256) }

let bitmap_set bm i =
  let byte = i lsr 3 and bit = i land 7 in
  let c = Char.code (Bytes.get bm byte) in
  Bytes.set bm byte (Char.chr (c lor (1 lsl bit)))

let bitmap_zeros bm =
  let zeros = ref 0 in
  Bytes.iter
    (fun c ->
      let c = Char.code c in
      for b = 0 to 7 do
        if c land (1 lsl b) = 0 then incr zeros
      done)
    bm;
  !zeros

let to_sketch t set =
  let m = 1 lsl t.bits in
  let bm = Bytes.make (m lsr 3) '\000' in
  Vset.iter (fun v () -> bitmap_set bm (Value.hash v land (m - 1))) set;
  t.mode <- Sketch bm

let add t v =
  t.seen <- t.seen + 1;
  match t.mode with
  | Exact set ->
    if not (Vset.mem set v) then begin
      Vset.replace set v ();
      if Vset.length set > t.exact_budget then to_sketch t set
    end
  | Sketch bm ->
    let m = 1 lsl t.bits in
    bitmap_set bm (Value.hash v land (m - 1))

let count t = t.seen

let estimate t =
  match t.mode with
  | Exact set -> float_of_int (Vset.length set)
  | Sketch bm ->
    let m = float_of_int (1 lsl t.bits) in
    let z = float_of_int (bitmap_zeros bm) in
    if z <= 0.0 then m *. log m (* saturated: crude upper bound *)
    else -.m *. log (z /. m)

let is_exact t = match t.mode with Exact _ -> true | Sketch _ -> false
