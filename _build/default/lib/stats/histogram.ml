open Adp_relation

type bucket = {
  mutable lo : float;
  mutable hi : float;  (* inclusive bounds *)
  mutable count : float;
  mutable distinct : float;
}

module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  buckets : int;
  mutable total : int;
  mutable nulls : int;
  singles : float Vtbl.t;  (* heavy hitters, exact-ish counts *)
  mutable ranges : bucket array;  (* numeric remainder *)
  mutable other : float;  (* non-numeric remainder count *)
  mutable other_distinct : float;
  mutable pending : int;  (* adds since last restructure *)
  dsketch : Distinct.t;  (* distinct estimation rides a compact sketch *)
}

let create ~buckets =
  if buckets < 4 then invalid_arg "Histogram.create: buckets < 4";
  { buckets; total = 0; nulls = 0; singles = Vtbl.create 64; ranges = [||];
    other = 0.0; other_distinct = 0.0; pending = 0;
    dsketch = Distinct.create () }

let count t = t.total
let null_count t = t.nulls

let numeric = function
  | Value.Int _ | Value.Float _ | Value.Date _ -> true
  | Value.Null | Value.Str _ -> false

let find_bucket t x =
  let n = Array.length t.ranges in
  let rec go i =
    if i >= n then None
    else
      let b = t.ranges.(i) in
      if x >= b.lo && x <= b.hi then Some b else go (i + 1)
  in
  go 0

let add_to_ranges t v =
  let x = Value.to_float v in
  match find_bucket t x with
  | Some b ->
    b.count <- b.count +. 1.0;
    (* New-distinct heuristic: the chance the value is new decreases with
       bucket density. *)
    b.distinct <- b.distinct +. (1.0 /. (1.0 +. (b.count /. 16.0)))
  | None ->
    (* Outside current boundaries: extend the nearest edge bucket. *)
    let n = Array.length t.ranges in
    if n = 0 then
      t.ranges <- [| { lo = x; hi = x; count = 1.0; distinct = 1.0 } |]
    else begin
      let first = t.ranges.(0) and last = t.ranges.(n - 1) in
      if x < first.lo then begin
        first.lo <- x;
        first.count <- first.count +. 1.0;
        first.distinct <- first.distinct +. 1.0
      end
      else begin
        last.hi <- max last.hi x;
        last.count <- last.count +. 1.0;
        last.distinct <- last.distinct +. 1.0
      end
    end

(* Fold the lightest singletons into range buckets, keeping at most
   [buckets/2] heavy hitters, and re-balance range boundaries into
   equi-width buckets over the observed numeric span. *)
let restructure t =
  let keep = t.buckets / 2 in
  let entries =
    Vtbl.fold (fun v c acc -> (v, c) :: acc) t.singles []
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  if List.length entries > keep then begin
    let rec split i = function
      | [] -> [], []
      | x :: rest when i < keep ->
        let k, f = split (i + 1) rest in
        x :: k, f
      | rest -> [], rest
    in
    let kept, folded = split 0 entries in
    Vtbl.reset t.singles;
    List.iter (fun (v, c) -> Vtbl.replace t.singles v c) kept;
    (* Gather numeric folded values plus existing range mass. *)
    let numerics =
      List.filter_map
        (fun (v, c) -> if numeric v then Some (Value.to_float v, c) else None)
        folded
    in
    List.iter
      (fun (v, c) ->
        if not (numeric v) then begin
          t.other <- t.other +. c;
          t.other_distinct <- t.other_distinct +. 1.0
        end)
      folded;
    let old = t.ranges in
    let lo = ref infinity and hi = ref neg_infinity in
    Array.iter
      (fun b ->
        if b.count > 0.0 then begin
          lo := min !lo b.lo;
          hi := max !hi b.hi
        end)
      old;
    List.iter
      (fun (x, _) ->
        lo := min !lo x;
        hi := max !hi x)
      numerics;
    if !lo <= !hi then begin
      let nb = max 1 (t.buckets - List.length kept) in
      let width = (!hi -. !lo) /. float_of_int nb in
      let width = if width <= 0.0 then 1.0 else width in
      let fresh =
        Array.init nb (fun i ->
            { lo = !lo +. (float_of_int i *. width);
              hi =
                (if i = nb - 1 then !hi
                 else !lo +. (float_of_int (i + 1) *. width) -. epsilon_float);
              count = 0.0; distinct = 0.0 })
      in
      let deposit x c d =
        let idx =
          min (nb - 1)
            (max 0 (int_of_float ((x -. !lo) /. width)))
        in
        fresh.(idx).count <- fresh.(idx).count +. c;
        fresh.(idx).distinct <- fresh.(idx).distinct +. d
      in
      (* Spread old bucket mass over the new grid proportionally to the
         overlap with each new bucket (uniformity within the old bucket). *)
      Array.iter
        (fun b ->
          if b.count > 0.0 then begin
            let span = b.hi -. b.lo in
            if span <= 0.0 then deposit b.lo b.count b.distinct
            else
              Array.iter
                (fun nb_ ->
                  let olo = max b.lo nb_.lo and ohi = min b.hi nb_.hi in
                  if ohi >= olo then begin
                    let f = (ohi -. olo) /. span in
                    nb_.count <- nb_.count +. (b.count *. f);
                    nb_.distinct <- nb_.distinct +. (b.distinct *. f)
                  end)
                fresh
          end)
        old;
      List.iter (fun (x, c) -> deposit x c 1.0) numerics;
      t.ranges <- fresh
    end
  end

let add t v =
  t.total <- t.total + 1;
  if Value.is_null v then t.nulls <- t.nulls + 1
  else begin
    Distinct.add t.dsketch v;
    (match Vtbl.find_opt t.singles v with
     | Some c -> Vtbl.replace t.singles v (c +. 1.0)
     | None ->
       if Vtbl.length t.singles < 4 * t.buckets then
         Vtbl.replace t.singles v 1.0
       else if numeric v then add_to_ranges t v
       else begin
         t.other <- t.other +. 1.0;
         t.other_distinct <- t.other_distinct +. 0.1
       end);
    t.pending <- t.pending + 1;
    if t.pending >= 8 * t.buckets then begin
      t.pending <- 0;
      restructure t
    end
  end

let estimate_distinct t = Distinct.estimate t.dsketch

let estimate_freq t v =
  match Vtbl.find_opt t.singles v with
  | Some c -> c
  | None ->
    if not (numeric v) then
      if t.other_distinct > 0.0 then t.other /. t.other_distinct else 0.0
    else
      (match find_bucket t (Value.to_float v) with
       | Some b when b.distinct >= 1.0 -> b.count /. b.distinct
       | Some b -> b.count
       | None -> 0.0)

let estimate_range t lo hi =
  let xlo = Value.to_float lo and xhi = Value.to_float hi in
  let singles =
    Vtbl.fold
      (fun v c acc ->
        if numeric v then begin
          let x = Value.to_float v in
          if x >= xlo && x <= xhi then acc +. c else acc
        end
        else acc)
      t.singles 0.0
  in
  let ranges =
    Array.fold_left
      (fun acc b ->
        if b.hi < xlo || b.lo > xhi || b.count = 0.0 then acc
        else begin
          let span = b.hi -. b.lo in
          let overlap =
            if span <= 0.0 then 1.0
            else (min b.hi xhi -. max b.lo xlo) /. span
          in
          acc +. (b.count *. max 0.0 (min 1.0 overlap))
        end)
      0.0 t.ranges
  in
  singles +. ranges

(* Frequency-density of a range bucket over a numeric interval. *)
let bucket_overlap b1 b2 =
  let lo = max b1.lo b2.lo and hi = min b1.hi b2.hi in
  if hi < lo then None else Some (lo, hi)

let fraction b lo hi =
  let span = b.hi -. b.lo in
  if span <= 0.0 then 1.0 else max 0.0 (min 1.0 ((hi -. lo) /. span))

let estimate_join t1 t2 =
  (* Heavy hitters of t1 against all of t2. *)
  let s1 =
    Vtbl.fold
      (fun v c acc -> acc +. (c *. estimate_freq t2 v))
      t1.singles 0.0
  in
  (* Range buckets of t1 against heavy hitters of t2 (t2 singletons falling
     inside t1 ranges). *)
  let s2 =
    Vtbl.fold
      (fun v c acc ->
        if not (numeric v) then acc
        else
          match find_bucket t1 (Value.to_float v) with
          | Some b when b.distinct >= 1.0 -> acc +. (c *. (b.count /. b.distinct))
          | Some _ | None -> acc)
      t2.singles 0.0
  in
  (* Range buckets pairwise under containment + uniformity assumptions. *)
  let s3 = ref 0.0 in
  Array.iter
    (fun b1 ->
      Array.iter
        (fun b2 ->
          match bucket_overlap b1 b2 with
          | None -> ()
          | Some (lo, hi) ->
            let f1 = fraction b1 lo hi and f2 = fraction b2 lo hi in
            let n1 = b1.count *. f1 and n2 = b2.count *. f2 in
            let d =
              max 1.0 (max (b1.distinct *. f1) (b2.distinct *. f2))
            in
            s3 := !s3 +. (n1 *. n2 /. d))
        t2.ranges)
    t1.ranges;
  s1 +. s2 +. !s3

let scale t f =
  let copy =
    { t with
      total = int_of_float (float_of_int t.total *. f);
      nulls = int_of_float (float_of_int t.nulls *. f);
      singles = Vtbl.copy t.singles;
      ranges =
        Array.map
          (fun b -> { b with count = b.count *. f; distinct = b.distinct })
          t.ranges;
      other = t.other *. f }
  in
  Vtbl.iter (fun v c -> Vtbl.replace copy.singles v (c *. f)) t.singles;
  copy

let pp fmt t =
  Format.fprintf fmt "histogram: %d tuples, %d nulls, %d singletons, %d ranges"
    t.total t.nulls (Vtbl.length t.singles) (Array.length t.ranges)
