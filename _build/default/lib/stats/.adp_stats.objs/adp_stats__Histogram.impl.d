lib/stats/histogram.ml: Adp_relation Array Distinct Float Format Hashtbl List Value
