lib/stats/distinct.ml: Adp_relation Bytes Char Hashtbl Value
