lib/stats/selectivity.ml: Hashtbl List Option String
