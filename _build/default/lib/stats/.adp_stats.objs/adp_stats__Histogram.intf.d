lib/stats/histogram.mli: Adp_relation Format Value
