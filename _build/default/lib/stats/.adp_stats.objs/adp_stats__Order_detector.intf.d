lib/stats/order_detector.mli: Adp_relation Value
