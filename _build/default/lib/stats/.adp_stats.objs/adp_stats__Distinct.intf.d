lib/stats/distinct.mli: Adp_relation Value
