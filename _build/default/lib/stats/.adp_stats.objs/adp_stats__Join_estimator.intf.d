lib/stats/join_estimator.mli: Adp_relation Value
