lib/stats/join_estimator.ml: Adp_relation Histogram Order_detector Value
