lib/stats/order_detector.ml: Adp_relation Value
