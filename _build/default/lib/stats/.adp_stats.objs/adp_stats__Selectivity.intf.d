lib/stats/selectivity.mli:
