open Adp_relation

type verdict = Ascending | Descending | Unsorted

type t = {
  mutable seen : int;
  mutable last : Value.t option;
  mutable asc_pairs : int;
  mutable desc_pairs : int;
  mutable strict_asc : bool;
  mutable any_violation : bool;
}

let create () =
  { seen = 0; last = None; asc_pairs = 0; desc_pairs = 0; strict_asc = true;
    any_violation = false }

let add t v =
  (match t.last with
   | None -> ()
   | Some prev ->
     let c = Value.compare prev v in
     if c <= 0 then t.asc_pairs <- t.asc_pairs + 1;
     if c >= 0 then t.desc_pairs <- t.desc_pairs + 1;
     if c >= 0 then t.strict_asc <- false;
     ());
  t.seen <- t.seen + 1;
  t.last <- Some v;
  let pairs = t.seen - 1 in
  if pairs > 0 && t.asc_pairs < pairs && t.desc_pairs < pairs then
    t.any_violation <- true

let count t = t.seen

let ascending_fraction t =
  let pairs = t.seen - 1 in
  if pairs <= 0 then 1.0 else float_of_int t.asc_pairs /. float_of_int pairs

let verdict ?(threshold = 0.95) t =
  let pairs = t.seen - 1 in
  if pairs <= 0 then Ascending
  else begin
    let asc = float_of_int t.asc_pairs /. float_of_int pairs in
    let desc = float_of_int t.desc_pairs /. float_of_int pairs in
    if asc >= threshold && asc >= desc then Ascending
    else if desc >= threshold then Descending
    else Unsorted
  end

let strictly_ascending t = t.strict_asc

let perfectly_sorted t =
  let pairs = t.seen - 1 in
  pairs <= 0 || t.asc_pairs = pairs || t.desc_pairs = pairs
