open Adp_relation

type side = {
  hist : Histogram.t;
  order : Order_detector.t;
  mutable min_v : float;
  mutable max_v : float;
}

let side ?(buckets = 50) () =
  { hist = Histogram.create ~buckets; order = Order_detector.create ();
    min_v = infinity; max_v = neg_infinity }

let observe s v =
  Histogram.add s.hist v;
  Order_detector.add s.order v;
  if not (Value.is_null v) then begin
    match v with
    | Value.Int _ | Value.Float _ | Value.Date _ ->
      let x = Value.to_float v in
      if x < s.min_v then s.min_v <- x;
      if x > s.max_v then s.max_v <- x
    | Value.Null | Value.Str _ -> ()
  end

let seen s = Histogram.count s.hist

(* A sorted stream's prefix covers only the low part of the attribute
   domain, so its histogram must not be treated as a random sample; the
   order detector tells us to extrapolate the range instead.  A strictly
   ascending stream is additionally a key (multiplicity 1). *)
let detected_sorted s =
  Order_detector.count s.order >= 2
  && Order_detector.perfectly_sorted s.order
  && Order_detector.ascending_fraction s.order >= 0.5

let detected_key s = detected_sorted s && Order_detector.strictly_ascending s.order

(* Multiplicity: average duplicates per distinct value in the prefix. *)
let multiplicity s =
  let d = Histogram.estimate_distinct s.hist in
  if d <= 0.0 then 1.0 else float_of_int (seen s) /. d

(* Predicted full range of a sorted stream: the prefix covers [min, max];
   the remaining (1 - frac) continues past max at the same density. *)
let extrapolated_range s frac =
  let span = s.max_v -. s.min_v in
  s.min_v, s.min_v +. (span /. max frac 1e-6)

let estimate ~left:(l, fl) ~right:(r, fr) =
  let scale_l = 1.0 /. max fl 1e-6 and scale_r = 1.0 /. max fr 1e-6 in
  match detected_sorted l, detected_sorted r with
  | true, true ->
    (* Both sorted: matches live in the overlap of the predicted ranges;
       per unit of range, each side contributes its value density times
       its multiplicity. *)
    let lo1, hi1 = extrapolated_range l fl
    and lo2, hi2 = extrapolated_range r fr in
    let lo = max lo1 lo2 and hi = min hi1 hi2 in
    if hi < lo then 0.0
    else begin
      let dens1 =
        float_of_int (seen l) *. scale_l /. max 1.0 (hi1 -. lo1)
      in
      let dens2 =
        float_of_int (seen r) *. scale_r /. max 1.0 (hi2 -. lo2)
      in
      (* Distinct-value density is bounded by the sparser side; each
         common value pairs multiplicities. *)
      let m1 = multiplicity l and m2 = multiplicity r in
      let key_density = min (dens1 /. m1) (dens2 /. m2) in
      (hi -. lo) *. key_density *. m1 *. m2
    end
  | true, false ->
    (* Left sorted: right tuples falling in the predicted range match
       [multiplicity l] times each. *)
    let lo, hi = extrapolated_range l fl in
    let scaled = Histogram.scale r.hist scale_r in
    Histogram.estimate_range scaled (Value.Float lo) (Value.Float hi)
    *. multiplicity l
  | false, true ->
    let lo, hi = extrapolated_range r fr in
    let scaled = Histogram.scale l.hist scale_l in
    Histogram.estimate_range scaled (Value.Float lo) (Value.Float hi)
    *. multiplicity r
  | false, false ->
    (* Neither sorted: the prefixes behave like random samples, so scaled
       histograms compose directly. *)
    Histogram.estimate_join
      (Histogram.scale l.hist scale_l)
      (Histogram.scale r.hist scale_r)
