open Adp_relation

(** Streaming distinct-value estimation.

    Exact counting through a hash set up to a configurable budget, then a
    linear-counting bitmap sketch (Whang et al.) — the low-overhead synopsis
    family the paper's §7 points at for predicting intermediate result
    sizes. *)

type t

(** [create ?exact_budget ?sketch_bits ()] — exact up to [exact_budget]
    distinct values (default 4096), then a [2^sketch_bits]-bit linear
    counter (default 16). *)
val create : ?exact_budget:int -> ?sketch_bits:int -> unit -> t

val add : t -> Value.t -> unit
val count : t -> int

(** Current distinct estimate. *)
val estimate : t -> float

(** True while the estimate is exact. *)
val is_exact : t -> bool
