open Adp_relation

(** Incremental "dynamic compressed" histograms (after Donjerkovic,
    Ioannidis & Ramakrishnan, ICDE '00), used by the §4.5 predictability
    experiment.

    A compressed histogram keeps the heaviest values in singleton buckets
    and spreads the remainder over range buckets; the dynamic variant
    maintains this incrementally over a stream, restructuring periodically
    as the value range and heavy-hitter set evolve.  The paper attaches one
    to each source with 50 buckets and reports ~50 % runtime overhead —
    which our cost model charges per insert. *)

type t

(** [create ~buckets] with [buckets >= 4]. *)
val create : buckets:int -> t

(** Observe one attribute value (nulls are counted separately and ignored
    by estimation). *)
val add : t -> Value.t -> unit

val count : t -> int
val null_count : t -> int

(** Estimated number of occurrences of a value. *)
val estimate_freq : t -> Value.t -> float

(** Estimated number of values in the inclusive range [lo, hi] (numeric
    attributes only). *)
val estimate_range : t -> Value.t -> Value.t -> float

(** Estimated distinct-value count. *)
val estimate_distinct : t -> float

(** Estimated size of the equi-join of the two attributes whose streams the
    histograms summarize: Σ_v f1(v)·f2(v), computed bucket-wise with
    uniformity assumptions inside range buckets. *)
val estimate_join : t -> t -> float

(** [scale t f] extrapolates the histogram to [f] times the data seen so
    far (used to predict full-relation join sizes after seeing a prefix). *)
val scale : t -> float -> t

val pp : Format.formatter -> t -> unit
