(** Tokenizer for the SQL subset accepted by {!Sql_parser}. *)

type token =
  | IDENT of string  (** identifiers are lower-cased; keywords excluded *)
  | KW of string  (** upper-cased keyword: SELECT, FROM, WHERE, ... *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | SYM of string  (** one of ( ) , . * + - / = <> < <= > >= *)
  | EOF

exception Lex_error of string * int  (** message, position *)

val tokenize : string -> token list

val pp_token : Format.formatter -> token -> unit
