open Adp_datagen
open Adp_exec
open Adp_optimizer

(** The paper's evaluation workload (§3.5, §4.4): the TPC-H queries that
    fit the select-project-join-aggregation model — Q3, Q10, Q5 — plus the
    variants 3A and 10A with their date-based selection predicates removed
    (making them much more expensive), and the flights query of
    Example 2.1.  All queries are expressed in SQL and parsed through
    {!Sql_parser}. *)

type tpch_query = Q3 | Q3A | Q10 | Q10A | Q5

(** The four queries of Figures 2/3/6 and Tables 1/2. *)
val evaluated : tpch_query list

val name : tpch_query -> string
val sql : tpch_query -> string
val query : tpch_query -> Logical.query

(** Build a catalog for the query's relations over a generated dataset.
    [with_cardinalities] controls whether the optimizer is given source
    cardinalities (the paper's "Cardinalities" vs "No Statistics" bars);
    declared keys are always available (they are schema-level knowledge). *)
val catalog : ?with_cardinalities:bool -> Tpch.t -> Logical.query -> Catalog.t

(** Source factory over the dataset for the query's relations; the same
    arrival [model] applies to all sources (default [Local]). *)
val sources :
  ?model:Source.model -> ?seed:int -> Tpch.t -> Logical.query ->
  unit -> Source.t list

(** {2 Example 2.1 (flights)} *)

val flights_sql : string
val flights_query : Logical.query
val flights_catalog : ?with_cardinalities:bool -> Flights.t -> Catalog.t

val flights_sources :
  ?model:Source.model -> ?seed:int -> Flights.t -> unit -> Source.t list
