open Adp_relation
open Adp_exec
open Adp_optimizer
open Sql_lexer

exception Parse_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

(* ---------------- raw AST ---------------- *)

type scalar =
  | Rcol of string
  | Rlit of Value.t
  | Rbin of char * scalar * scalar  (* + - * / *)

type item =
  | Istar
  | Iexpr of scalar * string option
  | Iagg of string * scalar option * string option
      (* fn, arg (None means count-star), alias *)

type cond =
  | Ccmp of Predicate.cmp * scalar * scalar
  | Cbetween of scalar * Value.t * Value.t
  | Cin of scalar * Value.t list

type stmt = {
  items : item list;
  tables : string list;
  conds : cond list;
  group : string list;
  order : (string * [ `Asc | `Desc ]) list;
}

(* ---------------- parsing ---------------- *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %a, found %a" pp_token tok pp_token (peek st)

let ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | t -> fail "expected identifier, found %a" pp_token t

(* Column reference: ident or ident.ident *)
let column st =
  let first = ident st in
  if peek st = SYM "." then begin
    advance st;
    first ^ "." ^ ident st
  end
  else first

let literal st =
  match peek st with
  | INT i ->
    advance st;
    Value.Int i
  | FLOAT f ->
    advance st;
    Value.Float f
  | STRING s ->
    advance st;
    Value.Str s
  | KW "DATE" ->
    advance st;
    (match peek st with
     | STRING s ->
       advance st;
       Value.date_of_string s
     | t -> fail "expected date literal, found %a" pp_token t)
  | t -> fail "expected literal, found %a" pp_token t

let agg_kws = [ "SUM"; "COUNT"; "MIN"; "MAX"; "AVG" ]

let rec scalar st =
  let lhs = term st in
  match peek st with
  | SYM ("+" | "-") ->
    let op = match peek st with SYM s -> s.[0] | _ -> assert false in
    advance st;
    Rbin (op, lhs, scalar st)
  | _ -> lhs

and term st =
  let lhs = factor st in
  match peek st with
  | SYM ("*" | "/") ->
    let op = match peek st with SYM s -> s.[0] | _ -> assert false in
    advance st;
    Rbin (op, lhs, term st)
  | _ -> lhs

and factor st =
  match peek st with
  | SYM "(" ->
    advance st;
    let e = scalar st in
    expect st (SYM ")");
    e
  | INT _ | FLOAT _ | STRING _ | KW "DATE" -> Rlit (literal st)
  | IDENT _ -> Rcol (column st)
  | t -> fail "expected scalar, found %a" pp_token t

let alias st =
  if peek st = KW "AS" then begin
    advance st;
    Some (ident st)
  end
  else None

let select_item st =
  match peek st with
  | SYM "*" ->
    advance st;
    Istar
  | KW kw when List.mem kw agg_kws ->
    advance st;
    expect st (SYM "(");
    let arg =
      if kw = "COUNT" && peek st = SYM "*" then begin
        advance st;
        None
      end
      else Some (scalar st)
    in
    expect st (SYM ")");
    Iagg (kw, arg, alias st)
  | _ ->
    let e = scalar st in
    Iexpr (e, alias st)

let cmp_of = function
  | "=" -> Predicate.Eq
  | "<>" -> Predicate.Ne
  | "<" -> Predicate.Lt
  | "<=" -> Predicate.Le
  | ">" -> Predicate.Gt
  | ">=" -> Predicate.Ge
  | s -> fail "unknown comparison %s" s

let condition st =
  let lhs = scalar st in
  match peek st with
  | SYM (("=" | "<>" | "<" | "<=" | ">" | ">=") as op) ->
    advance st;
    Ccmp (cmp_of op, lhs, scalar st)
  | KW "BETWEEN" ->
    advance st;
    let lo = literal st in
    expect st (KW "AND");
    let hi = literal st in
    Cbetween (lhs, lo, hi)
  | KW "IN" ->
    advance st;
    expect st (SYM "(");
    let rec lits acc =
      let v = literal st in
      if peek st = SYM "," then begin
        advance st;
        lits (v :: acc)
      end
      else List.rev (v :: acc)
    in
    let vs = lits [] in
    expect st (SYM ")");
    Cin (lhs, vs)
  | t -> fail "expected condition operator, found %a" pp_token t

let rec comma_list st parse =
  let x = parse st in
  if peek st = SYM "," then begin
    advance st;
    x :: comma_list st parse
  end
  else [ x ]

let statement st =
  expect st (KW "SELECT");
  let items = comma_list st select_item in
  expect st (KW "FROM");
  let tables = comma_list st ident in
  let conds =
    if peek st = KW "WHERE" then begin
      advance st;
      let rec conj acc =
        let c = condition st in
        if peek st = KW "AND" then begin
          advance st;
          conj (c :: acc)
        end
        else List.rev (c :: acc)
      in
      conj []
    end
    else []
  in
  let group =
    if peek st = KW "GROUP" then begin
      advance st;
      expect st (KW "BY");
      comma_list st column
    end
    else []
  in
  let order =
    if peek st = KW "ORDER" then begin
      advance st;
      expect st (KW "BY");
      comma_list st (fun st ->
          let col = column st in
          match peek st with
          | KW "ASC" ->
            advance st;
            col, `Asc
          | KW "DESC" ->
            advance st;
            col, `Desc
          | _ -> col, `Asc)
    end
    else []
  in
  (match peek st with
   | EOF -> ()
   | t -> fail "trailing input: %a" pp_token t);
  { items; tables; conds; group; order }

(* ---------------- resolution ---------------- *)

let parse_with_order ~schema_of sql =
  let st = { toks = tokenize sql } in
  let raw =
    try statement st with
    | Lex_error (m, i) -> fail "lex error at %d: %s" i m
  in
  let schemas =
    List.map
      (fun t ->
        match schema_of t with
        | s -> t, s
        | exception Not_found -> fail "unknown table %s" t)
      raw.tables
  in
  let qualify col =
    match String.index_opt col '.' with
    | Some _ ->
      let rel = Logical.relation_of_column col in
      (match List.assoc_opt rel schemas with
       | Some schema when Schema.mem schema col -> col
       | Some _ -> fail "no column %s in %s" col rel
       | None -> fail "unknown table in column %s" col)
    | None ->
      (match
         List.filter (fun (_, schema) -> Schema.mem schema col) schemas
       with
       | [ (rel, schema) ] ->
         (Schema.columns schema).(Schema.index schema col)
         |> fun qualified ->
         ignore rel;
         qualified
       | [] -> fail "unknown column %s" col
       | _ :: _ :: _ -> fail "ambiguous column %s" col)
  in
  let rec to_expr = function
    | Rcol c -> Expr.Col (qualify c)
    | Rlit v -> Expr.Const v
    | Rbin ('+', a, b) -> Expr.Add (to_expr a, to_expr b)
    | Rbin ('-', a, b) -> Expr.Sub (to_expr a, to_expr b)
    | Rbin ('*', a, b) -> Expr.Mul (to_expr a, to_expr b)
    | Rbin ('/', a, b) -> Expr.Div (to_expr a, to_expr b)
    | Rbin (op, _, _) -> fail "unknown operator %c" op
  in
  let rec rels_of_scalar = function
    | Rcol c -> [ Logical.relation_of_column (qualify c) ]
    | Rlit _ -> []
    | Rbin (_, a, b) -> rels_of_scalar a @ rels_of_scalar b
  in
  (* Split conditions into join predicates and per-relation filters. *)
  let joins = ref [] in
  let filters = Hashtbl.create 8 in
  let add_filter rel p =
    let prev =
      Option.value ~default:Predicate.tt (Hashtbl.find_opt filters rel)
    in
    Hashtbl.replace filters rel Predicate.(prev &&& p)
  in
  let single_rel scalar_ =
    match List.sort_uniq String.compare (rels_of_scalar scalar_) with
    | [ r ] -> r
    | [] -> fail "condition references no column"
    | _ -> fail "condition spans multiple relations (only equi-joins may)"
  in
  List.iter
    (fun cond ->
      match cond with
      | Ccmp (Predicate.Eq, Rcol a, Rcol b)
        when Logical.relation_of_column (qualify a)
             <> Logical.relation_of_column (qualify b) ->
        joins := (qualify a, qualify b) :: !joins
      | Ccmp (op, Rcol a, Rlit v) ->
        add_filter
          (Logical.relation_of_column (qualify a))
          (Predicate.Cmp (op, qualify a, v))
      | Ccmp (op, Rlit v, Rcol a) ->
        let flip =
          match op with
          | Predicate.Eq -> Predicate.Eq
          | Predicate.Ne -> Predicate.Ne
          | Predicate.Lt -> Predicate.Gt
          | Predicate.Le -> Predicate.Ge
          | Predicate.Gt -> Predicate.Lt
          | Predicate.Ge -> Predicate.Le
        in
        add_filter
          (Logical.relation_of_column (qualify a))
          (Predicate.Cmp (flip, qualify a, v))
      | Ccmp (op, Rcol a, Rcol b) ->
        let rel = single_rel (Rbin ('+', Rcol a, Rcol b)) in
        add_filter rel (Predicate.Col_cmp (op, qualify a, qualify b))
      | Ccmp (_, _, _) -> fail "unsupported comparison form"
      | Cbetween (Rcol a, lo, hi) ->
        add_filter
          (Logical.relation_of_column (qualify a))
          (Predicate.Between (qualify a, lo, hi))
      | Cbetween (_, _, _) -> fail "BETWEEN requires a column"
      | Cin (Rcol a, vs) ->
        add_filter
          (Logical.relation_of_column (qualify a))
          (Predicate.In (qualify a, vs))
      | Cin (_, _) -> fail "IN requires a column")
    raw.conds;
  (* Select list. *)
  let has_agg =
    List.exists (function Iagg _ -> true | Istar | Iexpr _ -> false) raw.items
  in
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  let group_cols = List.map qualify raw.group in
  let aggs =
    List.filter_map
      (function
        | Iagg (fn, arg, name) ->
          let name =
            match name with
            | Some n -> n
            | None -> fresh (String.lowercase_ascii fn)
          in
          let expr =
            match arg with Some s -> to_expr s | None -> Expr.int 1
          in
          Some
            (match fn with
             | "SUM" -> Aggregate.sum ~name expr
             | "COUNT" -> Aggregate.count_all ~name
             | "MIN" -> Aggregate.min_of ~name expr
             | "MAX" -> Aggregate.max_of ~name expr
             | "AVG" -> Aggregate.avg ~name expr
             | _ -> fail "unknown aggregate %s" fn)
        | Istar | Iexpr _ -> None)
      raw.items
  in
  if has_agg || group_cols <> [] then begin
    (* Non-aggregate items must be grouping columns. *)
    List.iter
      (function
        | Iexpr (Rcol c, _) when List.mem (qualify c) group_cols -> ()
        | Iexpr _ -> fail "non-aggregate select item must be a GROUP BY column"
        | Istar -> fail "SELECT * cannot be combined with GROUP BY"
        | Iagg _ -> ())
      raw.items
  end;
  let projection =
    if has_agg || group_cols <> [] then []
    else
      List.concat_map
        (function
          | Istar -> []
          | Iexpr (Rcol c, _) -> [ qualify c ]
          | Iexpr _ -> fail "projection supports only columns and *"
          | Iagg _ -> [])
        raw.items
  in
  let query =
    { Logical.sources =
        List.map
          (fun t ->
            { Logical.name = t;
              filter =
                Option.value ~default:Predicate.tt
                  (Hashtbl.find_opt filters t) })
          raw.tables;
      join_preds = List.rev !joins;
      group_cols;
      aggs;
      projection }
  in
  (* ORDER BY resolves against the query's output columns. *)
  let agg_names = List.map (fun (a : Aggregate.spec) -> a.name) aggs in
  let order =
    List.map
      (fun (col, dir) ->
        if List.mem col agg_names then col, dir
        else begin
          let qualified = qualify col in
          let output_cols =
            if has_agg || group_cols <> [] then group_cols
            else if projection = [] then
              List.concat_map
                (fun (tbl, schema) ->
                  ignore tbl;
                  Array.to_list (Schema.columns schema))
                schemas
            else projection
          in
          if List.mem qualified output_cols then qualified, dir
          else fail "ORDER BY column %s is not an output column" col
        end)
      raw.order
  in
  query, order

let parse ~schema_of sql = fst (parse_with_order ~schema_of sql)
