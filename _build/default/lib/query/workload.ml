open Adp_relation
open Adp_datagen
open Adp_exec
open Adp_optimizer

type tpch_query = Q3 | Q3A | Q10 | Q10A | Q5

let evaluated = [ Q3A; Q10; Q10A; Q5 ]

let name = function
  | Q3 -> "Q3"
  | Q3A -> "Q3A"
  | Q10 -> "Q10"
  | Q10A -> "Q10A"
  | Q5 -> "Q5"

let revenue =
  "SUM(lineitem.l_extendedprice * (1 - lineitem.l_discount)) AS revenue"

let sql = function
  | Q3 ->
    "SELECT lineitem.l_orderkey, orders.o_orderdate, orders.o_shippriority, "
    ^ revenue
    ^ " FROM customer, orders, lineitem\
       \ WHERE customer.c_mktsegment = 'BUILDING'\
       \ AND customer.c_custkey = orders.o_custkey\
       \ AND lineitem.l_orderkey = orders.o_orderkey\
       \ AND orders.o_orderdate < DATE '1995-03-15'\
       \ AND lineitem.l_shipdate > DATE '1995-03-15'\
       \ GROUP BY lineitem.l_orderkey, orders.o_orderdate, orders.o_shippriority"
  | Q3A ->
    (* Q3 with the date-based selection predicates removed (§4.4). *)
    "SELECT lineitem.l_orderkey, orders.o_orderdate, orders.o_shippriority, "
    ^ revenue
    ^ " FROM customer, orders, lineitem\
       \ WHERE customer.c_mktsegment = 'BUILDING'\
       \ AND customer.c_custkey = orders.o_custkey\
       \ AND lineitem.l_orderkey = orders.o_orderkey\
       \ GROUP BY lineitem.l_orderkey, orders.o_orderdate, orders.o_shippriority"
  | Q10 ->
    "SELECT customer.c_custkey, customer.c_name, customer.c_acctbal, \
     nation.n_name, "
    ^ revenue
    ^ " FROM customer, orders, lineitem, nation\
       \ WHERE customer.c_custkey = orders.o_custkey\
       \ AND lineitem.l_orderkey = orders.o_orderkey\
       \ AND orders.o_orderdate >= DATE '1993-10-01'\
       \ AND orders.o_orderdate < DATE '1994-01-01'\
       \ AND lineitem.l_returnflag = 'R'\
       \ AND customer.c_nationkey = nation.n_nationkey\
       \ GROUP BY customer.c_custkey, customer.c_name, customer.c_acctbal, \
       nation.n_name"
  | Q10A ->
    (* Q10 with the date-based selection predicates removed (§4.4). *)
    "SELECT customer.c_custkey, customer.c_name, customer.c_acctbal, \
     nation.n_name, "
    ^ revenue
    ^ " FROM customer, orders, lineitem, nation\
       \ WHERE customer.c_custkey = orders.o_custkey\
       \ AND lineitem.l_orderkey = orders.o_orderkey\
       \ AND lineitem.l_returnflag = 'R'\
       \ AND customer.c_nationkey = nation.n_nationkey\
       \ GROUP BY customer.c_custkey, customer.c_name, customer.c_acctbal, \
       nation.n_name"
  | Q5 ->
    "SELECT nation.n_name, "
    ^ revenue
    ^ " FROM customer, orders, lineitem, supplier, nation, region\
       \ WHERE customer.c_custkey = orders.o_custkey\
       \ AND lineitem.l_orderkey = orders.o_orderkey\
       \ AND lineitem.l_suppkey = supplier.s_suppkey\
       \ AND customer.c_nationkey = supplier.s_nationkey\
       \ AND supplier.s_nationkey = nation.n_nationkey\
       \ AND nation.n_regionkey = region.r_regionkey\
       \ AND region.r_name = 'ASIA'\
       \ AND orders.o_orderdate >= DATE '1994-01-01'\
       \ AND orders.o_orderdate < DATE '1995-01-01'\
       \ GROUP BY nation.n_name"

let query q = Sql_parser.parse ~schema_of:Tpch.schema_of (sql q)

let catalog ?(with_cardinalities = false) dataset (q : Logical.query) =
  let cat = Catalog.create () in
  List.iter
    (fun (s : Logical.source) ->
      let rel = Tpch.table dataset s.name in
      Catalog.add cat s.name
        { Catalog.schema = Tpch.schema_of s.name;
          cardinality =
            (if with_cardinalities then
               Some (float_of_int (Relation.cardinality rel))
             else None);
          key = Some (Tpch.key_of s.name) })
    q.sources;
  cat

let sources ?(model = Source.Local) ?(seed = 17) dataset (q : Logical.query) () =
  List.mapi
    (fun i (s : Logical.source) ->
      Source.create ~seed:(seed + i) ~name:s.name (Tpch.table dataset s.name)
        model)
    q.sources

(* ---------------- Example 2.1 ---------------- *)

let flights_sql =
  "SELECT f.fid, f.from_city, MAX(c.num) AS most_children\
   \ FROM f, t, c\
   \ WHERE f.fid = t.flight AND t.ssn = c.parent\
   \ GROUP BY f.fid, f.from_city"

let flights_schema_of = function
  | "f" -> Flights.flights_schema
  | "t" -> Flights.travelers_schema
  | "c" -> Flights.children_schema
  | _ -> raise Not_found

let flights_query = Sql_parser.parse ~schema_of:flights_schema_of flights_sql

let flights_catalog ?(with_cardinalities = false) (d : Flights.t) =
  let cat = Catalog.create () in
  let add name rel key =
    Catalog.add cat name
      { Catalog.schema = Relation.schema rel;
        cardinality =
          (if with_cardinalities then
             Some (float_of_int (Relation.cardinality rel))
           else None);
        key }
  in
  add "f" d.flights (Some "f.fid");
  add "t" d.travelers None;
  add "c" d.children (Some "c.parent");
  cat

let flights_sources ?(model = Source.Local) ?(seed = 23) (d : Flights.t) () =
  [ Source.create ~seed ~name:"f" d.flights model;
    Source.create ~seed:(seed + 1) ~name:"t" d.travelers model;
    Source.create ~seed:(seed + 2) ~name:"c" d.children model ]
