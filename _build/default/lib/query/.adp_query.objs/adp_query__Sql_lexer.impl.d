lib/query/sql_lexer.ml: Format List Printf String
