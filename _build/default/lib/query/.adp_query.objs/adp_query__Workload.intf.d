lib/query/workload.mli: Adp_datagen Adp_exec Adp_optimizer Catalog Flights Logical Source Tpch
