lib/query/workload.ml: Adp_datagen Adp_exec Adp_optimizer Adp_relation Catalog Flights List Logical Relation Source Sql_parser Tpch
