lib/query/sql_parser.mli: Adp_optimizer Adp_relation Logical Schema
