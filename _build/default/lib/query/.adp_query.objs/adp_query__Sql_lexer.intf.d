lib/query/sql_lexer.mli: Format
