lib/query/sql_parser.ml: Adp_exec Adp_optimizer Adp_relation Aggregate Array Expr Format Hashtbl List Logical Option Predicate Printf Schema Sql_lexer String Value
