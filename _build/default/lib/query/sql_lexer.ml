type token =
  | IDENT of string
  | KW of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | SYM of string
  | EOF

exception Lex_error of string * int

let keywords =
  [ "select"; "from"; "where"; "and"; "or"; "not"; "group"; "by"; "as";
    "between"; "in"; "date"; "sum"; "count"; "min"; "max"; "avg"; "asc";
    "desc"; "order" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let rec go i =
    if i >= n then emit EOF
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        let word = String.lowercase_ascii (String.sub s i (!j - i)) in
        if List.mem word keywords then emit (KW (String.uppercase_ascii word))
        else emit (IDENT word);
        go !j
      end
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit s.[!j] do
          incr j
        done;
        if !j < n && s.[!j] = '.' && !j + 1 < n && is_digit s.[!j + 1] then begin
          incr j;
          while !j < n && is_digit s.[!j] do
            incr j
          done;
          emit (FLOAT (float_of_string (String.sub s i (!j - i))))
        end
        else emit (INT (int_of_string (String.sub s i (!j - i))));
        go !j
      end
      else if c = '\'' then begin
        let j = ref (i + 1) in
        while !j < n && s.[!j] <> '\'' do
          incr j
        done;
        if !j >= n then raise (Lex_error ("unterminated string", i));
        emit (STRING (String.sub s (i + 1) (!j - i - 1)));
        go (!j + 1)
      end
      else begin
        let two = if i + 1 < n then String.sub s i 2 else "" in
        match two with
        | "<=" | ">=" | "<>" | "!=" ->
          emit (SYM (if two = "!=" then "<>" else two));
          go (i + 2)
        | _ ->
          (match c with
           | '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '=' | '<' | '>' ->
             emit (SYM (String.make 1 c));
             go (i + 1)
           | _ -> raise (Lex_error (Printf.sprintf "unexpected '%c'" c, i)))
      end
  in
  go 0;
  List.rev !toks

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "ident(%s)" s
  | KW s -> Format.fprintf fmt "%s" s
  | INT i -> Format.fprintf fmt "%d" i
  | FLOAT f -> Format.fprintf fmt "%g" f
  | STRING s -> Format.fprintf fmt "'%s'" s
  | SYM s -> Format.fprintf fmt "%s" s
  | EOF -> Format.fprintf fmt "<eof>"
