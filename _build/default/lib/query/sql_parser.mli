open Adp_relation
open Adp_optimizer

(** Recursive-descent parser for the SQL subset matching the paper's query
    model (§4.3: select-project-join-aggregation, no subqueries):

    {v
    SELECT item [, item]*
    FROM table [, table]*
    [WHERE cond [AND cond]*]
    [GROUP BY column [, column]*]
    v}

    where [item] is [*], a column, an arithmetic expression with optional
    [AS name], or [SUM|COUNT|MIN|MAX|AVG(expr)] (count-star allowed) with
    optional [AS name]; and [cond] is [scalar op scalar] (op in
    =, <>, <, <=, >, >=), [column BETWEEN lit AND lit], or
    [column IN (lit, ...)].  Literals: integers, floats, ['strings'],
    [DATE 'yyyy-mm-dd'].

    Name resolution is performed against the given schemas: unqualified
    columns must be unambiguous; equality conditions between columns of
    two different relations become join predicates; other conditions must
    be single-relation and are pushed down to that relation's scan. *)

exception Parse_error of string

(** [parse ~schema_of sql] — [schema_of] maps each FROM table to its
    schema.  Any ORDER BY clause is accepted and ignored (ordering is a
    front-end concern in the Tukwila architecture — use
    {!parse_with_order} to retrieve it).
    @raise Parse_error on syntax or resolution errors. *)
val parse : schema_of:(string -> Schema.t) -> string -> Logical.query

(** Like {!parse}, also returning the ORDER BY specification resolved
    against the query's *output* columns (group/projection columns keep
    their qualified names; aggregates are referred to by their output
    name).  The engine pipelines unordered answers; the caller applies
    this with {!Adp_relation.Relation.order_by} — exactly the paper's
    split, where the front end performs any final sorting. *)
val parse_with_order :
  schema_of:(string -> Schema.t) ->
  string ->
  Logical.query * (string * [ `Asc | `Desc ]) list
