(* Example 2.1 from the paper: the flight whose traveler has the most
   children, over three autonomous sources with no statistics.

   The execution starts exactly at the paper's Phase 0 plan,
   F ⋈ (T ⋈ C).  The children source is messy — travelers appear once per
   child, as integrated sources often duplicate records — so T ⋈ C
   multiplies, which the monitor observes (the predicate gets flagged as
   multiplicative).  The re-optimizer then routes the remaining data into
   (F ⋈ T) ⋈ C, and the stitch-up phase joins the regions across the two
   plans, reusing the registered hash tables.

     dune exec examples/corrective_flights.exe *)

open Adp_relation
open Adp_datagen
open Adp_exec
open Adp_core
open Adp_query

let () =
  let data =
    Flights.generate
      { Flights.n_flights = 4000; n_travelers = 2500; trips_per_traveler = 4;
        frequent_flyers = false; seed = 2024 }
  in
  (* The messy children source: one record per child rather than one
     aggregate row per traveler. *)
  let children = Relation.create Flights.children_schema in
  let rng = Prng.create 77 in
  Relation.iter
    (fun t ->
      match t.(0) with
      | Value.Int parent ->
        let kids = Prng.int rng 6 in
        for child = 1 to max 1 kids do
          Relation.append children [| Value.Int parent; Value.Int child |]
        done
      | _ -> assert false)
    data.Flights.children;

  Format.printf "Example 2.1 query:@.  %s@.@." Workload.flights_sql;
  let query = Workload.flights_query in
  let catalog = Workload.flights_catalog data in
  (* c.parent is *not* a key in this messy source; the description lied. *)
  Adp_optimizer.Catalog.add catalog "c"
    { Adp_optimizer.Catalog.schema = Flights.children_schema;
      cardinality = None; key = None };
  let sources () =
    [ Source.create ~name:"f" data.Flights.flights Source.Local;
      Source.create ~name:"t" data.Flights.travelers Source.Local;
      Source.create ~name:"c" children Source.Local ]
  in

  (* Phase 0 is the paper's: Group[fid,from] max(num) (F ⋈ (T ⋈ C)). *)
  let phase0 =
    Plan.join (Plan.scan "f")
      (Plan.join (Plan.scan "t") (Plan.scan "c") ~on:[ "t.ssn", "c.parent" ])
      ~on:[ "f.fid", "t.flight" ]
  in
  let config =
    { Corrective.default_config with
      poll_interval = 5e3; min_leaf_seen = 300; switch_threshold = 0.85;
      initial_plan = Some phase0 }
  in
  let result, stats = Corrective.run ~config query catalog (sources ()) in

  Format.printf "Execution used %d phase(s):@." stats.Corrective.phases;
  List.iter
    (fun (p : Corrective.phase_info) ->
      Format.printf
        "  phase %d: read %d source tuples, emitted %d results@.    %s@."
        p.Corrective.id p.Corrective.read p.Corrective.emitted
        p.Corrective.plan_desc)
    stats.Corrective.phase_log;
  let stitch = stats.Corrective.stitch in
  Format.printf
    "Stitch-up: %d cross-phase combinations, %d tuples emitted in %.3f \
     virtual s;@.%d intermediate tuples reused from prior phases, %d \
     registered but not reused@.@."
    stitch.Stitchup.combos_possible stitch.Stitchup.output
    (stitch.Stitchup.time /. 1e6) stats.Corrective.reused_tuples
    stats.Corrective.discarded_tuples;

  let by_children =
    Relation.sort_by result [ "most_children" ] |> Relation.to_list |> List.rev
  in
  Format.printf "Top answers (fid, origin, max children):@.";
  List.iteri
    (fun i t -> if i < 5 then Format.printf "  %a@." Tuple.pp t)
    by_children;
  Format.printf "@.Total: %d flights with travelers, %.2f virtual seconds@."
    (Relation.cardinality result)
    (stats.Corrective.total_time /. 1e6)
