(* Figure 3's setting in miniature: sources arrive over a bursty,
   bandwidth-limited (802.11b-style) link.  Adaptive scheduling — the
   driver always consumes whichever source has data — overlaps the burst
   gaps with computation, so completion time approaches
   max(arrival, computation) instead of their sum.

     dune exec examples/wireless_overlap.exe *)

open Adp_datagen
open Adp_exec
open Adp_core
open Adp_query

let run label model =
  let ds =
    Tpch.generate { Tpch.scale = 0.01; distribution = Tpch.Uniform; seed = 4 }
  in
  let q = Workload.query Workload.Q10A in
  let catalog = Workload.catalog ~with_cardinalities:true ds q in
  let sources () = Workload.sources ~model ds q () in
  let o = Strategy.run ~label Strategy.Static q catalog ~sources in
  let r = o.Strategy.report in
  Printf.printf "%-28s total %6.3fs = cpu %6.3fs + idle %6.3fs\n" label
    r.Report.time_s r.Report.cpu_s r.Report.idle_s;
  r

let () =
  print_endline "Q10A under three source models (static plan, true stats):\n";
  let local = run "local (computation only)" Source.Local in
  let steady = run "steady 300K tuples/s" (Source.Bandwidth 300_000.0) in
  let bursty =
    run "bursty wireless"
      (Source.Bursty { rate = 400_000.0; mean_burst = 1000; mean_gap = 0.004 })
  in
  ignore steady;
  Printf.printf
    "\nEvery variant does the same %.3fs of computation; over the bursty\n\
     link, only %.3fs of its silences could not be overlapped with work —\n\
     completion stays near max(arrival, computation), not their sum.\n"
    local.Report.cpu_s bursty.Report.idle_s
