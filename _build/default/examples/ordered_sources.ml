(* §5: exploiting order that the source descriptions never promised.
   Two sources are "mostly sorted" (bulk-loaded in key order, then lightly
   updated).  A complementary join pair speculates on that order: a merge
   join consumes the conforming tuples, a pipelined hash join catches the
   violations, and a mini stitch-up combines the four hash tables at the
   end.

     dune exec examples/ordered_sources.exe *)

open Adp_relation
open Adp_datagen
open Adp_exec

let describe label (stats : Comp_join.stats) time =
  let ml, mr = stats.Comp_join.merge_routed in
  let hl, hr = stats.Comp_join.hash_routed in
  Printf.printf "%-28s %7.3fs   merge:%7d hash:%7d   outputs m/h/stitch: %d/%d/%d\n"
    label time (ml + mr) (hl + hr) stats.Comp_join.merge_out
    stats.Comp_join.hash_out stats.Comp_join.stitch_out

let run_variant variant li orders =
  let ctx = Ctx.create () in
  let j =
    Comp_join.create ctx ~variant ~left_schema:(Relation.schema li)
      ~right_schema:(Relation.schema orders)
      ~left_key:[ "lineitem.l_orderkey" ] ~right_key:[ "orders.o_orderkey" ]
  in
  let l_src = Source.create ~name:"lineitem" li Source.Local in
  let o_src = Source.create ~name:"orders" orders Source.Local in
  let outputs = ref 0 in
  let consume src t =
    let side = if Source.name src = "lineitem" then Comp_join.L else Comp_join.R in
    outputs := !outputs + List.length (Comp_join.insert j side t)
  in
  ignore (Driver.run ctx ~sources:[ l_src; o_src ] ~consume ());
  outputs := !outputs + List.length (Comp_join.finish j);
  Comp_join.stats j, Ctx.now ctx /. 1e6, !outputs

let () =
  let ds =
    Tpch.generate { Tpch.scale = 0.01; distribution = Tpch.Uniform; seed = 5 }
  in
  let rng = Prng.create 17 in
  print_endline "LINEITEM ⋈ ORDERS with mostly-sorted sources (1% displaced):";
  let li = Perturb.swap_fraction rng ds.Tpch.lineitem 0.01 in
  let orders = Perturb.swap_fraction rng ds.Tpch.orders 0.01 in
  Printf.printf "  lineitem sortedness: %.3f, orders sortedness: %.3f\n\n"
    (Perturb.sortedness li "lineitem.l_orderkey")
    (Perturb.sortedness orders "orders.o_orderkey");
  let reference = ref None in
  List.iter
    (fun (label, variant) ->
      let stats, time, outputs = run_variant variant li orders in
      describe label stats time;
      (match !reference with
       | None -> reference := Some outputs
       | Some r -> assert (r = outputs)))
    [ "naive routing", Comp_join.Naive;
      "priority queue (1024)", Comp_join.Priority_queue 1024 ];
  print_endline
    "\nThe naive router is poisoned by the first out-of-place high key;\n\
     the bounded priority queue re-orders the stream locally, so nearly\n\
     everything flows through the (cheaper) merge join.";
  (* Speculation is safe: on fully random data the pair degrades into an
     ordinary pipelined hash join, still producing the exact answer. *)
  print_endline "\nSame join over fully shuffled inputs:";
  let li_r = Perturb.shuffle rng ds.Tpch.lineitem in
  let orders_r = Perturb.shuffle rng ds.Tpch.orders in
  List.iter
    (fun (label, variant) ->
      let stats, time, _ = run_variant variant li_r orders_r in
      describe label stats time)
    [ "naive routing", Comp_join.Naive;
      "priority queue (1024)", Comp_join.Priority_queue 1024 ]
