(* Quickstart: generate a small TPC-H-style dataset, write a query in SQL,
   run it under the static optimizer, and print the answer.

     dune exec examples/quickstart.exe *)

open Adp_relation
open Adp_datagen
open Adp_core
open Adp_query

let () =
  (* 1. Generate data: scale factor 0.005 ≈ 1500 customers worth of
     orders/lineitems, uniformly distributed, fully deterministic. *)
  let dataset =
    Tpch.generate { Tpch.scale = 0.005; distribution = Tpch.Uniform; seed = 1 }
  in

  (* 2. Write the query in SQL.  The parser resolves names against the
     TPC-H schemas and splits WHERE into pushed-down selections and
     equi-join predicates. *)
  let sql =
    "SELECT nation.n_name, COUNT(*) AS customers, SUM(customer.c_acctbal) AS \
     balance FROM customer, nation WHERE customer.c_nationkey = \
     nation.n_nationkey AND customer.c_acctbal > 0 GROUP BY nation.n_name"
  in
  let query = Sql_parser.parse ~schema_of:Tpch.schema_of sql in
  Format.printf "Query: %a@.@." Adp_optimizer.Logical.pp query;

  (* 3. Describe the sources.  A catalog entry carries the schema, an
     optional cardinality, and an optional declared key — in data
     integration, cardinalities are usually unknown, and the optimizer
     falls back to its default assumption. *)
  let catalog = Workload.catalog ~with_cardinalities:false dataset query in

  (* 4. Run.  [sources] is a factory of sequential-access source cursors;
     here they deliver instantly (Source.Local). *)
  let sources () = Workload.sources dataset query () in
  let outcome =
    Strategy.run ~label:"quickstart" Strategy.Static query catalog ~sources
  in

  Format.printf "%a@.@." Report.pp_run outcome.Strategy.report;
  Format.printf "%a@."
    (Relation.pp ~limit:30)
    (Relation.sort_by outcome.Strategy.result [ "nation.n_name" ])
