(* §6: adjustable-window pre-aggregation.  A revenue-per-order report over
   a streamed LINEITEM: when the stream repeats order keys, pre-aggregating
   before the join collapses tuples and the window grows; when every key is
   unique, the window shrinks to a pass-through and the operator costs
   almost nothing.

     dune exec examples/adaptive_preagg.exe *)

open Adp_relation
open Adp_datagen
open Adp_exec
open Adp_optimizer
open Adp_core
open Adp_query

let run_with preagg label q catalog sources =
  let o = Strategy.run ~preagg ~label Strategy.Static q catalog ~sources in
  Printf.printf "  %-34s %7.3f virtual s  (%d result rows)\n" label
    o.Strategy.report.Report.time_s o.Strategy.report.Report.result_card;
  o.Strategy.result

let compare_modes title q catalog sources =
  print_endline title;
  let base = run_with Optimizer.No_preagg "single final aggregation" q catalog sources in
  let windowed =
    run_with
      (Optimizer.Force (Plan.Windowed { initial = 64; max_window = 65536 }))
      "adjustable-window pre-aggregation" q catalog sources
  in
  let traditional =
    run_with (Optimizer.Force Plan.Traditional)
      "traditional (blocking) pre-agg" q catalog sources
  in
  assert (Relation.cardinality base = Relation.cardinality windowed);
  assert (Relation.cardinality base = Relation.cardinality traditional);
  print_newline ()

let () =
  let ds =
    Tpch.generate { Tpch.scale = 0.01; distribution = Tpch.Skewed 0.5; seed = 9 }
  in
  (* Q10A joins the full ORDERS table — lots of repetition to collapse. *)
  let q = Workload.query Workload.Q10A in
  let catalog = Workload.catalog ~with_cardinalities:true ds q in
  let sources () =
    Workload.sources ~model:(Source.Bandwidth 600_000.0) ds q ()
  in
  compare_modes
    "Q10A (skewed, streamed): pre-aggregation collapses repeated orders"
    q catalog sources;
  (* Q5 groups by nation but pre-aggregates on (l_orderkey, l_suppkey) —
     nearly unique, so pre-aggregation finds nothing to collapse.  The
     adjustable window detects that and shrinks to a pass-through, adding
     only ~1% overhead where the blocking operator would still buffer
     everything. *)
  let q5 = Workload.query Workload.Q5 in
  let catalog5 = Workload.catalog ~with_cardinalities:true ds q5 in
  let sources5 () =
    Workload.sources ~model:(Source.Bandwidth 600_000.0) ds q5 ()
  in
  compare_modes
    "Q5 (skewed, streamed): nothing to collapse - the window backs off"
    q5 catalog5 sources5
