examples/wireless_overlap.ml: Adp_core Adp_datagen Adp_exec Adp_query Printf Report Source Strategy Tpch Workload
