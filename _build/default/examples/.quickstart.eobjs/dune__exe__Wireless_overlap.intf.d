examples/wireless_overlap.mli:
