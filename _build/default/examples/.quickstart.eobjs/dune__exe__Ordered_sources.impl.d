examples/ordered_sources.ml: Adp_datagen Adp_exec Adp_relation Comp_join Ctx Driver List Perturb Printf Prng Relation Source Tpch
