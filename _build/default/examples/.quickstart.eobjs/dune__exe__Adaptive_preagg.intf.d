examples/adaptive_preagg.mli:
