examples/ordered_sources.mli:
