examples/quickstart.mli:
