examples/quickstart.ml: Adp_core Adp_datagen Adp_optimizer Adp_query Adp_relation Format Relation Report Sql_parser Strategy Tpch Workload
