examples/corrective_flights.mli:
