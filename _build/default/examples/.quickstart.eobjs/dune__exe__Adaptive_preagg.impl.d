examples/adaptive_preagg.ml: Adp_core Adp_datagen Adp_exec Adp_optimizer Adp_query Adp_relation Optimizer Plan Printf Relation Report Source Strategy Tpch Workload
