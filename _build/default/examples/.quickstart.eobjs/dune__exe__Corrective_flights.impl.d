examples/corrective_flights.ml: Adp_core Adp_datagen Adp_exec Adp_optimizer Adp_query Adp_relation Array Corrective Flights Format List Plan Prng Relation Source Stitchup Tuple Value Workload
