(* The fundamental ADP identity (§2.3): executing phase plans over disjoint
   regions of the sources plus the stitch-up expression yields exactly the
   single-plan join — no missing answers, no duplicates. *)

open Adp_relation
open Adp_exec
open Adp_storage
open Adp_optimizer
open Adp_core
open Helpers

let tables =
  [ "r", keyed_schema "r"; "s", Schema.make [ "s.k"; "s.p" ];
    "u", keyed_schema "u" ]

let schema_of name = List.assoc name tables

(* Chain query r.k = s.k, s.p = u.k with no aggregation: the sink collects
   raw join results. *)
let chain_query =
  { Logical.sources =
      [ { Logical.name = "r"; filter = Predicate.tt };
        { Logical.name = "s"; filter = Predicate.tt };
        { Logical.name = "u"; filter = Predicate.tt } ];
    join_preds = [ "r.k", "s.k"; "s.p", "u.k" ];
    group_cols = []; aggs = []; projection = [] }

let left_deep =
  Plan.join
    (Plan.join (Plan.scan "r") (Plan.scan "s") ~on:[ "r.k", "s.k" ])
    (Plan.scan "u") ~on:[ "s.p", "u.k" ]

let right_deep =
  Plan.join (Plan.scan "r")
    (Plan.join (Plan.scan "s") (Plan.scan "u") ~on:[ "s.p", "u.k" ])
    ~on:[ "r.k", "s.k" ]

(* Split a list into exactly n contiguous segments (some possibly empty). *)
let segments n l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  List.init n (fun i ->
      let lo = i * len / n and hi = (i + 1) * len / n in
      Array.to_list (Array.sub arr lo (hi - lo)))

(* Run [shapes] as successive phases over segmented inputs, then stitch. *)
let run_phased ~shapes ~stitch_tree ~r ~s ~u =
  let n = List.length shapes in
  let ctx = Ctx.create () in
  let registry = Registry.create () in
  let rsegs = segments n r and ssegs = segments n s and usegs = segments n u in
  let phases =
    List.mapi (fun i spec -> Phase.create ~id:i ctx spec ~schema_of) shapes
  in
  let sink =
    Sink.create ctx chain_query
      ~canonical:(Plan.schema (List.hd phases).Phase.plan)
  in
  List.iteri
    (fun i ph ->
      let feed src tuples =
        List.iter
          (fun t ->
            let outs = Plan.push ph.Phase.plan ~source:src t in
            Sink.feed sink ~from:(Plan.schema ph.Phase.plan) outs)
          tuples
      in
      feed "r" (List.nth rsegs i);
      feed "s" (List.nth ssegs i);
      feed "u" (List.nth usegs i);
      Sink.feed sink ~from:(Plan.schema ph.Phase.plan) (Plan.flush ph.Phase.plan);
      Phase.register ph registry)
    phases;
  let stats =
    Stitchup.run ctx chain_query ~join_tree:stitch_tree ~phases ~registry ~sink
  in
  Sink.result sink, stats, registry

let oracle ~r ~s ~u =
  oracle_join (oracle_join r s ~on:[ 0, 0 ]) u ~on:[ 3, 0 ]

let gen_inputs seed size =
  let rng = Adp_datagen.Prng.create seed in
  let mk n krange =
    List.init n (fun _ ->
        [| vi (Adp_datagen.Prng.int rng krange);
           vi (Adp_datagen.Prng.int rng krange) |])
  in
  mk size 6, mk size 6, mk size 6

let test_two_phases_same_shape () =
  let r, s, u = gen_inputs 1 30 in
  let got, stats, _ =
    run_phased ~shapes:[ left_deep; left_deep ] ~stitch_tree:left_deep ~r ~s ~u
  in
  check_bag "phases + stitchup = oracle" (Relation.to_list got) (oracle ~r ~s ~u);
  Alcotest.(check int) "combos" (8 - 2) stats.Stitchup.combos_possible;
  Alcotest.(check bool) "stitch-up reused inner results" true
    (stats.Stitchup.reused > 0)

let test_two_phases_different_shapes () =
  let r, s, u = gen_inputs 2 30 in
  let got, _, _ =
    run_phased ~shapes:[ left_deep; right_deep ] ~stitch_tree:right_deep ~r ~s ~u
  in
  check_bag "different shapes stitch correctly" (Relation.to_list got)
    (oracle ~r ~s ~u)

let test_three_phases () =
  let r, s, u = gen_inputs 3 40 in
  let got, stats, _ =
    run_phased
      ~shapes:[ left_deep; right_deep; left_deep ]
      ~stitch_tree:left_deep ~r ~s ~u
  in
  check_bag "three phases" (Relation.to_list got) (oracle ~r ~s ~u);
  Alcotest.(check int) "combos 3^3-3" 24 stats.Stitchup.combos_possible

let test_single_phase_no_stitch () =
  let r, s, u = gen_inputs 4 20 in
  let got, stats, _ =
    run_phased ~shapes:[ left_deep ] ~stitch_tree:left_deep ~r ~s ~u
  in
  check_bag "single phase complete" (Relation.to_list got) (oracle ~r ~s ~u);
  Alcotest.(check int) "no stitch work" 0 stats.Stitchup.combos_possible;
  Alcotest.(check int) "no stitch output" 0 stats.Stitchup.output

let test_empty_phase_segments () =
  (* A phase that read nothing (immediate switch) must not break stitch-up. *)
  (* 2 tuples over 4 phases leaves some segments empty. *)
  let r, s, u = gen_inputs 5 2 in
  let got, _, _ =
    run_phased
      ~shapes:[ left_deep; right_deep; right_deep; left_deep ]
      ~stitch_tree:left_deep ~r ~s ~u
  in
  check_bag "empty segments ok" (Relation.to_list got) (oracle ~r ~s ~u)

let test_registry_reuse_accounting () =
  let r, s, u = gen_inputs 6 40 in
  let _, stats, registry =
    run_phased ~shapes:[ left_deep; left_deep ] ~stitch_tree:left_deep ~r ~s ~u
  in
  (* Same shape everywhere: every inner uniform (r⋈s)^p is registered and
     must be reused, so nothing is recomputed. *)
  Alcotest.(check int) "nothing recomputed" 0 stats.Stitchup.recomputed_uniform;
  Alcotest.(check int) "registry reuse matches stats"
    stats.Stitchup.reused
    (Registry.reused_tuples registry)

let test_shape_mismatch_recomputes () =
  let r, s, u = gen_inputs 7 40 in
  (* Phase 1 registers (s⋈u); stitch tree needs (r⋈s) for phase 1 —
     unavailable, hence recomputed. *)
  let _, stats, _ =
    run_phased ~shapes:[ left_deep; right_deep ] ~stitch_tree:left_deep ~r ~s ~u
  in
  Alcotest.(check bool) "phase-0 intermediates reused" true
    (stats.Stitchup.reused > 0)

let stitchup_identity =
  QCheck2.Test.make
    ~name:"ADP identity: phases ∪ stitch-up = single plan (qcheck)" ~count:40
    QCheck2.Gen.(
      tup4 (int_range 1 1000) (int_range 1 4) bool bool)
    (fun (seed, n_phases, shape0, stitch_shape) ->
      let r, s, u = gen_inputs seed 25 in
      let shape b = if b then left_deep else right_deep in
      let shapes =
        List.init n_phases (fun i -> shape (if i mod 2 = 0 then shape0 else not shape0))
      in
      let got, _, _ =
        run_phased ~shapes ~stitch_tree:(shape stitch_shape) ~r ~s ~u
      in
      same_bag (Relation.to_list got) (oracle ~r ~s ~u))

let suite =
  [ Alcotest.test_case "two phases, same shape" `Quick test_two_phases_same_shape;
    Alcotest.test_case "two phases, different shapes" `Quick
      test_two_phases_different_shapes;
    Alcotest.test_case "three phases" `Quick test_three_phases;
    Alcotest.test_case "single phase" `Quick test_single_phase_no_stitch;
    Alcotest.test_case "empty phase segments" `Quick test_empty_phase_segments;
    Alcotest.test_case "registry reuse accounting" `Quick
      test_registry_reuse_accounting;
    Alcotest.test_case "shape mismatch recomputes" `Quick
      test_shape_mismatch_recomputes;
    qtest stitchup_identity ]
