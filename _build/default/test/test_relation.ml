open Adp_relation
open Helpers

let r () =
  rel [ "t.k"; "t.v" ]
    [ [ vi 3; vs "c" ]; [ vi 1; vs "a" ]; [ vi 2; vs "b" ]; [ vi 1; vs "z" ] ]

let test_basics () =
  let r = r () in
  Alcotest.(check int) "card" 4 (Relation.cardinality r);
  Alcotest.(check bool) "get" true (Value.equal (Relation.get r 1).(1) (vs "a"));
  Alcotest.check_raises "oob" (Invalid_argument "Relation.get: out of bounds")
    (fun () -> ignore (Relation.get r 4))

let test_append_growth () =
  let r = Relation.create (schema [ "t.x" ]) in
  for i = 1 to 1000 do
    Relation.append r [| vi i |]
  done;
  Alcotest.(check int) "grew" 1000 (Relation.cardinality r);
  Alcotest.(check bool) "last" true (Value.equal (Relation.get r 999).(0) (vi 1000))

let test_sort_by () =
  let s = Relation.sort_by (r ()) [ "t.k" ] in
  let keys = List.map (fun t -> t.(0)) (Relation.to_list s) in
  Alcotest.(check bool) "sorted" true
    (keys = [ vi 1; vi 1; vi 2; vi 3 ]);
  (* Stability: the two k=1 rows keep their original relative order. *)
  Alcotest.(check bool) "stable" true
    (Value.equal (Relation.get s 0).(1) (vs "a"))

let test_equal_bag () =
  let a = rel [ "t.x" ] [ [ vi 1 ]; [ vi 2 ] ] in
  let b = rel [ "t.x" ] [ [ vi 2 ]; [ vi 1 ] ] in
  let c = rel [ "t.x" ] [ [ vi 1 ]; [ vi 1 ] ] in
  Alcotest.(check bool) "perm equal" true (Relation.equal_bag a b);
  Alcotest.(check bool) "different" false (Relation.equal_bag a c)

let test_seq_fold () =
  let r = r () in
  Alcotest.(check int) "seq length" 4 (Seq.length (Relation.to_seq r));
  let sum =
    Relation.fold
      (fun acc t -> match t.(0) with Value.Int i -> acc + i | _ -> acc)
      0 r
  in
  Alcotest.(check int) "fold" 7 sum

let suite =
  [ Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "append growth" `Quick test_append_growth;
    Alcotest.test_case "sort_by stable" `Quick test_sort_by;
    Alcotest.test_case "equal_bag" `Quick test_equal_bag;
    Alcotest.test_case "seq and fold" `Quick test_seq_fold ]
