open Adp_relation

let s = Schema.make [ "t.a"; "t.b"; "u.c" ]

let test_basics () =
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check int) "qualified index" 1 (Schema.index s "t.b");
  Alcotest.(check int) "bare index" 2 (Schema.index s "c");
  Alcotest.(check bool) "mem" true (Schema.mem s "t.a");
  Alcotest.(check bool) "not mem" false (Schema.mem s "t.z")

let test_duplicates () =
  Alcotest.check_raises "dup" (Invalid_argument "Schema.make: duplicate column t.a")
    (fun () -> ignore (Schema.make [ "t.a"; "t.a" ]))

let test_ambiguous_bare () =
  let s2 = Schema.make [ "t.x"; "u.x" ] in
  Alcotest.check_raises "ambiguous" Not_found (fun () ->
      ignore (Schema.index s2 "x"));
  Alcotest.(check int) "qualified works" 1 (Schema.index s2 "u.x")

let test_concat () =
  let a = Schema.make [ "t.a" ] and b = Schema.make [ "u.b" ] in
  let c = Schema.concat a b in
  Alcotest.(check int) "concat arity" 2 (Schema.arity c);
  Alcotest.(check int) "left first" 0 (Schema.index c "t.a");
  Alcotest.check_raises "concat dup"
    (Invalid_argument "Schema.make: duplicate column t.a") (fun () ->
      ignore (Schema.concat a a))

let test_project () =
  let p = Schema.project s [ "u.c"; "t.a" ] in
  Alcotest.(check int) "reordered" 0 (Schema.index p "u.c");
  Alcotest.(check int) "second" 1 (Schema.index p "t.a")

let test_rename_qualifier () =
  let r = Schema.rename_qualifier s "m" in
  Alcotest.(check bool) "renamed" true (Schema.mem r "m.a");
  Alcotest.(check bool) "renamed c" true (Schema.mem r "m.c");
  Alcotest.(check bool) "old gone" false (Schema.mem r "t.a")

let test_permutation () =
  let from = Schema.make [ "t.a"; "t.b"; "t.c" ] in
  let into = Schema.make [ "t.c"; "t.a"; "t.b" ] in
  let perm = Schema.permutation ~from ~into in
  Alcotest.(check (array int)) "perm" [| 2; 0; 1 |] perm

let test_same_columns () =
  let a = Schema.make [ "t.a"; "t.b" ] in
  let b = Schema.make [ "t.b"; "t.a" ] in
  Alcotest.(check bool) "same set" true (Schema.same_columns a b);
  Alcotest.(check bool) "not equal" false (Schema.equal a b);
  Alcotest.(check bool) "equal self" true (Schema.equal a a)

let suite =
  [ Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "duplicate detection" `Quick test_duplicates;
    Alcotest.test_case "ambiguous bare lookup" `Quick test_ambiguous_bare;
    Alcotest.test_case "concat" `Quick test_concat;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "rename qualifier" `Quick test_rename_qualifier;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "column-set equality" `Quick test_same_columns ]
