open Adp_relation
open Adp_datagen
open Helpers

(* ---------------- Prng ---------------- *)

let test_prng_deterministic () =
  let a = Prng.create 1 and b = Prng.create 1 in
  let seq rng = List.init 20 (fun _ -> Prng.int rng 1000) in
  Alcotest.(check (list int)) "same seed same stream" (seq a) (seq b);
  let c = Prng.create 2 in
  Alcotest.(check bool) "different seed differs" true (seq (Prng.create 1) <> seq c)

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 13 in
    if v < 0 || v >= 13 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let v = Prng.range rng (-5) 5 in
    if v < -5 || v > 5 then Alcotest.fail "range out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of bounds"
  done

let test_prng_split_independent () =
  let rng = Prng.create 3 in
  let s1 = Prng.split rng in
  let before = List.init 5 (fun _ -> Prng.int s1 100) in
  (* Advancing the parent must not change the child's future stream. *)
  let rng' = Prng.create 3 in
  let s1' = Prng.split rng' in
  ignore (Prng.int rng' 100);
  let after = List.init 5 (fun _ -> Prng.int s1' 100) in
  Alcotest.(check (list int)) "child stream stable" before after

let test_shuffle_permutation () =
  let rng = Prng.create 11 in
  let arr = Array.init 100 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check bool) "multiset preserved" true
    (sorted = Array.init 100 Fun.id);
  Alcotest.(check bool) "actually moved" true (arr <> Array.init 100 Fun.id)

let test_exponential_mean () =
  let rng = Prng.create 5 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng ~mean:4.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (Float.abs (mean -. 4.0) < 0.2)

(* ---------------- Zipf ---------------- *)

let test_zipf_probs () =
  let z = Zipf.create ~n:100 ~z:0.5 in
  let total = ref 0.0 in
  for r = 1 to 100 do
    total := !total +. Zipf.prob z r
  done;
  Alcotest.(check (float 1e-9)) "probs sum to 1" 1.0 !total;
  Alcotest.(check bool) "rank 1 heaviest" true (Zipf.prob z 1 > Zipf.prob z 100)

let test_zipf_uniform_degenerate () =
  let z = Zipf.create ~n:50 ~z:0.0 in
  Alcotest.(check (float 1e-9)) "uniform prob" 0.02 (Zipf.prob z 25)

let test_zipf_sampling_skew () =
  let z = Zipf.create ~n:1000 ~z:1.0 in
  let rng = Prng.create 9 in
  let top = ref 0 and n = 20000 in
  for _ = 1 to n do
    if Zipf.sample z rng <= 10 then incr top
  done;
  (* With z=1 over 1000 ranks the top-10 mass is ~39%. *)
  let frac = float_of_int !top /. float_of_int n in
  Alcotest.(check bool) "skewed mass" true (frac > 0.3 && frac < 0.5)

let test_zipf_sample_bounds () =
  let z = Zipf.create ~n:7 ~z:0.5 in
  let rng = Prng.create 13 in
  for _ = 1 to 1000 do
    let r = Zipf.sample z rng in
    if r < 1 || r > 7 then Alcotest.fail "rank out of bounds"
  done

(* ---------------- Tpch ---------------- *)

let small = Tpch.generate { Tpch.scale = 0.002; distribution = Tpch.Uniform; seed = 1 }

let test_tpch_cardinalities () =
  Alcotest.(check int) "region" 5 (Relation.cardinality small.Tpch.region);
  Alcotest.(check int) "nation" 25 (Relation.cardinality small.Tpch.nation);
  let c = Relation.cardinality small.Tpch.customer in
  Alcotest.(check int) "customer" 300 c;
  Alcotest.(check int) "orders 10x customers" (10 * c)
    (Relation.cardinality small.Tpch.orders);
  let l = Relation.cardinality small.Tpch.lineitem in
  Alcotest.(check bool) "lineitem 1-7 per order" true
    (l >= 10 * c && l <= 70 * c)

let test_tpch_sorted_by_key () =
  Alcotest.(check (float 0.0)) "orders sorted" 1.0
    (Perturb.sortedness small.Tpch.orders "orders.o_orderkey");
  Alcotest.(check (float 0.0)) "lineitem sorted" 1.0
    (Perturb.sortedness small.Tpch.lineitem "lineitem.l_orderkey")

let test_tpch_fk_integrity () =
  let max_cust = Relation.cardinality small.Tpch.customer in
  Relation.iter
    (fun t ->
      match t.(1) with
      | Value.Int ck ->
        if ck < 1 || ck > max_cust then Alcotest.fail "bad o_custkey"
      | _ -> Alcotest.fail "o_custkey not int")
    small.Tpch.orders;
  let n_orders = Relation.cardinality small.Tpch.orders in
  Relation.iter
    (fun t ->
      match t.(0) with
      | Value.Int ok ->
        if ok < 1 || ok > n_orders then Alcotest.fail "bad l_orderkey"
      | _ -> Alcotest.fail "l_orderkey not int")
    small.Tpch.lineitem

let test_tpch_determinism () =
  let again = Tpch.generate { Tpch.scale = 0.002; distribution = Tpch.Uniform; seed = 1 } in
  Alcotest.(check bool) "same seed same data" true
    (Relation.equal_bag small.Tpch.lineitem again.Tpch.lineitem)

let test_tpch_skew () =
  let skewed =
    Tpch.generate { Tpch.scale = 0.002; distribution = Tpch.Skewed 1.0; seed = 1 }
  in
  (* Count orders of the most popular customer: should far exceed uniform. *)
  let count rel =
    let tbl = Hashtbl.create 64 in
    Relation.iter
      (fun t ->
        let k = t.(1) in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      rel;
    Hashtbl.fold (fun _ v acc -> max v acc) tbl 0
  in
  Alcotest.(check bool) "skew concentrates foreign keys" true
    (count skewed.Tpch.orders > 2 * count small.Tpch.orders)

let test_tpch_schema_api () =
  Alcotest.(check bool) "table lookup" true
    (Relation.cardinality (Tpch.table small "orders")
     = Relation.cardinality small.Tpch.orders);
  Alcotest.(check string) "key" "orders.o_orderkey" (Tpch.key_of "orders");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Tpch.table small "nope"));
  List.iter
    (fun name ->
      let sch = Tpch.schema_of name in
      Alcotest.(check bool) (name ^ " key in schema") true
        (Schema.mem sch (Tpch.key_of name)))
    Tpch.table_names

(* ---------------- Perturb ---------------- *)

let test_perturb () =
  let rng = Prng.create 3 in
  let sorted =
    rel [ "t.k" ] (List.init 1000 (fun i -> [ vi i ]))
  in
  Alcotest.(check (float 0.0)) "sorted" 1.0 (Perturb.sortedness sorted "t.k");
  let p1 = Perturb.swap_fraction rng sorted 0.01 in
  let s1 = Perturb.sortedness p1 "t.k" in
  Alcotest.(check bool) "1% mostly sorted" true (s1 > 0.95 && s1 < 1.0);
  let p50 = Perturb.swap_fraction rng sorted 0.5 in
  let s50 = Perturb.sortedness p50 "t.k" in
  Alcotest.(check bool) "50% heavily permuted" true (s50 < 0.9);
  Alcotest.(check bool) "multiset preserved" true (Relation.equal_bag sorted p50);
  let sh = Perturb.shuffle rng sorted in
  let ssh = Perturb.sortedness sh "t.k" in
  Alcotest.(check bool) "shuffle ~ random" true (ssh > 0.3 && ssh < 0.7);
  Alcotest.(check bool) "identity" true
    (Relation.to_list (Perturb.swap_fraction rng sorted 0.0)
     = Relation.to_list sorted)

(* ---------------- Flights ---------------- *)

let test_flights () =
  let d = Flights.generate { Flights.default_config with n_flights = 100; n_travelers = 50 } in
  Alcotest.(check int) "flights" 100 (Relation.cardinality d.Flights.flights);
  Alcotest.(check int) "children one per traveler" 50
    (Relation.cardinality d.Flights.children);
  Alcotest.(check bool) "travelers nonempty" true
    (Relation.cardinality d.Flights.travelers > 0);
  (* Every trip references a valid flight. *)
  Relation.iter
    (fun t ->
      match t.(1) with
      | Value.Int f -> if f < 1 || f > 100 then Alcotest.fail "bad flight fk"
      | _ -> Alcotest.fail "flight fk not int")
    d.Flights.travelers

let test_flights_frequent_flyers () =
  let base = { Flights.default_config with n_flights = 200; n_travelers = 400 } in
  let uni = Flights.generate base in
  let ff = Flights.generate { base with frequent_flyers = true } in
  let max_trips (d : Flights.t) =
    let tbl = Hashtbl.create 64 in
    Relation.iter
      (fun t ->
        let k = t.(0) in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      d.Flights.travelers;
    Hashtbl.fold (fun _ v acc -> max v acc) tbl 0
  in
  Alcotest.(check bool) "frequent flyers skew trips" true
    (max_trips ff > max_trips uni)

let suite =
  [ Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split independence" `Quick test_prng_split_independent;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "zipf probabilities" `Quick test_zipf_probs;
    Alcotest.test_case "zipf z=0 uniform" `Quick test_zipf_uniform_degenerate;
    Alcotest.test_case "zipf sampling skew" `Quick test_zipf_sampling_skew;
    Alcotest.test_case "zipf sample bounds" `Quick test_zipf_sample_bounds;
    Alcotest.test_case "tpch cardinalities" `Quick test_tpch_cardinalities;
    Alcotest.test_case "tpch emitted sorted" `Quick test_tpch_sorted_by_key;
    Alcotest.test_case "tpch fk integrity" `Quick test_tpch_fk_integrity;
    Alcotest.test_case "tpch determinism" `Quick test_tpch_determinism;
    Alcotest.test_case "tpch skew" `Quick test_tpch_skew;
    Alcotest.test_case "tpch schema api" `Quick test_tpch_schema_api;
    Alcotest.test_case "perturbation" `Quick test_perturb;
    Alcotest.test_case "flights generator" `Quick test_flights;
    Alcotest.test_case "flights frequent flyers" `Quick test_flights_frequent_flyers ]
