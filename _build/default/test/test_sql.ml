open Adp_relation
open Adp_exec
open Adp_optimizer
open Adp_query

let schema_of = function
  | "emp" -> Schema.make [ "emp.id"; "emp.dept"; "emp.salary"; "emp.hired" ]
  | "dept" -> Schema.make [ "dept.id"; "dept.name" ]
  | name -> Adp_datagen.Tpch.schema_of name

let parse s = Sql_parser.parse ~schema_of s

(* ---------------- Lexer ---------------- *)

let test_lexer () =
  let toks = Sql_lexer.tokenize "SELECT a.b, 'x y' FROM t WHERE c >= 1.5" in
  Alcotest.(check int) "token count" 13 (List.length toks);
  (match toks with
   | Sql_lexer.KW "SELECT" :: Sql_lexer.IDENT "a" :: Sql_lexer.SYM "." :: _ -> ()
   | _ -> Alcotest.fail "unexpected token stream");
  Alcotest.(check bool) "string literal" true
    (List.mem (Sql_lexer.STRING "x y") toks);
  Alcotest.(check bool) "float" true (List.mem (Sql_lexer.FLOAT 1.5) toks)

let test_lexer_errors () =
  (try
     ignore (Sql_lexer.tokenize "SELECT 'unterminated");
     Alcotest.fail "unterminated string accepted"
   with Sql_lexer.Lex_error _ -> ());
  (try
     ignore (Sql_lexer.tokenize "SELECT #");
     Alcotest.fail "bad char accepted"
   with Sql_lexer.Lex_error _ -> ())

(* ---------------- Parser & resolution ---------------- *)

let test_simple_select () =
  let q = parse "SELECT emp.id FROM emp WHERE emp.salary > 1000" in
  Alcotest.(check (list string)) "projection" [ "emp.id" ] q.Logical.projection;
  Alcotest.(check int) "one source" 1 (List.length q.Logical.sources);
  let src = List.hd q.Logical.sources in
  Alcotest.(check bool) "filter pushed" true (src.Logical.filter <> Predicate.tt)

let test_unqualified_resolution () =
  let q = parse "SELECT salary FROM emp WHERE dept = 3" in
  Alcotest.(check (list string)) "qualified" [ "emp.salary" ] q.Logical.projection

let test_join_extraction () =
  let q =
    parse
      "SELECT emp.id, dept.name FROM emp, dept WHERE emp.dept = dept.id AND \
       emp.salary > 10"
  in
  Alcotest.(check (list (pair string string))) "join pred"
    [ "emp.dept", "dept.id" ] q.Logical.join_preds;
  Alcotest.(check int) "two sources" 2 (List.length q.Logical.sources)

let test_aggregation () =
  let q =
    parse
      "SELECT emp.dept, SUM(emp.salary) AS payroll, COUNT(*) AS heads FROM emp \
       GROUP BY emp.dept"
  in
  Alcotest.(check (list string)) "group" [ "emp.dept" ] q.Logical.group_cols;
  Alcotest.(check int) "two aggs" 2 (List.length q.Logical.aggs);
  let names = List.map (fun (a : Aggregate.spec) -> a.name) q.Logical.aggs in
  Alcotest.(check (list string)) "agg names" [ "payroll"; "heads" ] names

let test_arith_in_agg () =
  let q =
    parse
      "SELECT emp.dept, SUM(emp.salary * (1 - emp.dept)) AS x FROM emp GROUP \
       BY emp.dept"
  in
  (match q.Logical.aggs with
   | [ a ] ->
     Alcotest.(check (list string)) "expr cols" [ "emp.salary"; "emp.dept" ]
       (Expr.columns a.expr)
   | _ -> Alcotest.fail "expected one aggregate")

let test_between_in_date () =
  let q =
    parse
      "SELECT emp.id FROM emp WHERE emp.salary BETWEEN 10 AND 20 AND emp.dept \
       IN (1, 2, 3) AND emp.hired < DATE '1995-03-15'"
  in
  let src = List.hd q.Logical.sources in
  Alcotest.(check int) "three filter atoms in conjunction" 4
    (Predicate.size src.Logical.filter)

let test_flipped_literal () =
  let q = parse "SELECT emp.id FROM emp WHERE 1000 < emp.salary" in
  let src = List.hd q.Logical.sources in
  (match src.Logical.filter with
   | Predicate.Cmp (Predicate.Gt, "emp.salary", Value.Int 1000) -> ()
   | p -> Alcotest.fail ("unexpected filter " ^ Predicate.to_string p))

let test_errors () =
  let expect_fail s =
    try
      ignore (parse s);
      Alcotest.fail ("accepted: " ^ s)
    with Sql_parser.Parse_error _ -> ()
  in
  expect_fail "SELECT";
  expect_fail "SELECT x FROM nosuchtable";
  expect_fail "SELECT nosuchcol FROM emp";
  expect_fail "SELECT emp.id FROM emp WHERE";
  expect_fail "SELECT emp.id FROM emp, dept WHERE emp.id = dept.id AND id > 3";
  (* ambiguous: id exists in both *)
  expect_fail "SELECT emp.id, SUM(emp.salary) FROM emp GROUP BY emp.dept";
  (* non-aggregate item not in GROUP BY *)
  expect_fail "SELECT emp.salary + 1 FROM emp"
(* expression projections unsupported *)

let test_order_by () =
  let q, order =
    Sql_parser.parse_with_order ~schema_of
      "SELECT emp.dept, SUM(emp.salary) AS payroll FROM emp GROUP BY emp.dept \
       ORDER BY payroll DESC, emp.dept"
  in
  Alcotest.(check int) "query unaffected" 1 (List.length q.Logical.aggs);
  Alcotest.(check bool) "agg name + direction" true
    (order = [ "payroll", `Desc; "emp.dept", `Asc ]);
  (* plain parse ignores ORDER BY *)
  let q2 =
    parse "SELECT emp.id FROM emp ORDER BY emp.id DESC"
  in
  Alcotest.(check (list string)) "projection" [ "emp.id" ] q2.Logical.projection;
  (try
     ignore
       (Sql_parser.parse_with_order ~schema_of
          "SELECT emp.dept, SUM(emp.salary) AS p FROM emp GROUP BY emp.dept \
           ORDER BY emp.salary");
     Alcotest.fail "non-output ORDER BY accepted"
   with Sql_parser.Parse_error _ -> ())

let test_order_by_applied () =
  let rel =
    Relation.of_list
      (Schema.make [ "t.a"; "t.b" ])
      [ [| Value.Int 1; Value.Int 9 |]; [| Value.Int 2; Value.Int 9 |];
        [| Value.Int 1; Value.Int 3 |] ]
  in
  let sorted = Relation.order_by rel [ "t.b", `Desc; "t.a", `Asc ] in
  Alcotest.(check bool) "desc-then-asc" true
    (Relation.to_list sorted
    = [ [| Value.Int 1; Value.Int 9 |]; [| Value.Int 2; Value.Int 9 |];
        [| Value.Int 1; Value.Int 3 |] ])

let test_workload_queries_parse () =
  List.iter
    (fun qid ->
      let q = Workload.query qid in
      Logical.validate ~schema_of q;
      Alcotest.(check bool)
        (Workload.name qid ^ " has joins")
        true
        (List.length q.Logical.join_preds >= 2))
    [ Workload.Q3; Workload.Q3A; Workload.Q10; Workload.Q10A; Workload.Q5 ]

let test_workload_shapes () =
  let q3a = Workload.query Workload.Q3A in
  Alcotest.(check int) "Q3A: 3 relations" 3 (List.length q3a.Logical.sources);
  let q5 = Workload.query Workload.Q5 in
  Alcotest.(check int) "Q5: 6 relations" 6 (List.length q5.Logical.sources);
  Alcotest.(check int) "Q5: 6 join predicates" 6
    (List.length q5.Logical.join_preds);
  (* Q3 has date filters that Q3A lacks. *)
  let filter_atoms (q : Logical.query) =
    List.fold_left
      (fun acc (s : Logical.source) -> acc + Predicate.size s.Logical.filter)
      0 q.Logical.sources
  in
  Alcotest.(check bool) "Q3 more selective than Q3A" true
    (filter_atoms (Workload.query Workload.Q3) > filter_atoms q3a);
  let fl = Workload.flights_query in
  Alcotest.(check (list string)) "flights grouping"
    [ "f.fid"; "f.from_city" ] fl.Logical.group_cols

let suite =
  [ Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "simple select" `Quick test_simple_select;
    Alcotest.test_case "unqualified resolution" `Quick
      test_unqualified_resolution;
    Alcotest.test_case "join extraction" `Quick test_join_extraction;
    Alcotest.test_case "aggregation" `Quick test_aggregation;
    Alcotest.test_case "arithmetic in aggregates" `Quick test_arith_in_agg;
    Alcotest.test_case "between/in/date" `Quick test_between_in_date;
    Alcotest.test_case "flipped literal comparison" `Quick test_flipped_literal;
    Alcotest.test_case "error cases" `Quick test_errors;
    Alcotest.test_case "order by parsing" `Quick test_order_by;
    Alcotest.test_case "order by application" `Quick test_order_by_applied;
    Alcotest.test_case "workload queries parse" `Quick
      test_workload_queries_parse;
    Alcotest.test_case "workload query shapes" `Quick test_workload_shapes ]
