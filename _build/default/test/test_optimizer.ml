open Adp_relation
open Adp_exec
open Adp_optimizer
open Helpers

(* A small star query: fact f(k1, k2, v) joins dims a(k, ...) and b(k, ...). *)

let fact_schema = Schema.make [ "f.k1"; "f.k2"; "f.v" ]
let dim_schema prefix = Schema.make [ prefix ^ ".k"; prefix ^ ".w" ]

let catalog ?(fact_card = 10_000.0) () =
  let c = Catalog.create () in
  Catalog.add c "f"
    { Catalog.schema = fact_schema; cardinality = Some fact_card; key = None };
  Catalog.add c "a"
    { Catalog.schema = dim_schema "a"; cardinality = Some 100.0;
      key = Some "a.k" };
  Catalog.add c "b"
    { Catalog.schema = dim_schema "b"; cardinality = Some 1000.0;
      key = Some "b.k" };
  c

let query ?(a_filter = Predicate.tt) () =
  { Logical.sources =
      [ { Logical.name = "f"; filter = Predicate.tt };
        { Logical.name = "a"; filter = a_filter };
        { Logical.name = "b"; filter = Predicate.tt } ];
    join_preds = [ "f.k1", "a.k"; "f.k2", "b.k" ];
    group_cols = [ "a.w" ];
    aggs = [ Aggregate.sum ~name:"s" (Expr.col "f.v") ];
    projection = [] }

(* ---------------- Logical ---------------- *)

let test_logical_helpers () =
  let q = query () in
  Alcotest.(check (list string)) "sources" [ "f"; "a"; "b" ]
    (Logical.source_names q);
  Alcotest.(check string) "relation of column" "f"
    (Logical.relation_of_column "f.k1");
  Alcotest.(check (list (pair string string))) "preds between"
    [ "f.k1", "a.k" ]
    (Logical.preds_between q ~inside:[ "f" ] ~outside:[ "a" ]);
  Alcotest.(check (list string)) "preds within" [ "a.k=f.k1" ]
    (Logical.preds_within q [ "f"; "a" ]);
  Alcotest.(check string) "signature matches executor"
    (Plan.signature_of
       (Plan.join (Plan.scan "f") (Plan.scan "a") ~on:[ "f.k1", "a.k" ]))
    (Logical.signature_of_set q [ "f"; "a" ])

let test_logical_validate () =
  let schema_of = Catalog.schema_of (catalog ()) in
  Logical.validate ~schema_of (query ());
  let bad_col = { (query ()) with Logical.group_cols = [ "a.zz" ] } in
  (try
     Logical.validate ~schema_of bad_col;
     Alcotest.fail "bad column accepted"
   with Invalid_argument _ -> ());
  let disconnected = { (query ()) with Logical.join_preds = [ "f.k1", "a.k" ] } in
  (try
     Logical.validate ~schema_of disconnected;
     Alcotest.fail "disconnected accepted"
   with Invalid_argument _ -> ())

(* ---------------- Catalog & cardinality ---------------- *)

let test_catalog_defaults () =
  let c = Catalog.create () in
  Catalog.add c "x"
    { Catalog.schema = dim_schema "x"; cardinality = None; key = None };
  Alcotest.(check (float 0.0)) "default card" 20000.0 (Catalog.cardinality c "x");
  Alcotest.(check bool) "is_key false" false
    (Catalog.is_key c ~relation:"x" ~column:"x.k");
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Catalog.info c "nope"))

let test_cardinality_key_fk () =
  let sels = Adp_stats.Selectivity.create () in
  let est = Cardinality.create (query ()) (catalog ()) sels in
  (* f ⋈ a through a's key: output ≈ |f|. *)
  let c = Cardinality.set_cardinality est [ "f"; "a" ] in
  Alcotest.(check bool)
    (Printf.sprintf "key-FK preserves fact card (got %.0f)" c)
    true
    (c > 5000.0 && c < 20000.0)

let test_cardinality_filter () =
  let q = query ~a_filter:(Predicate.eq "a.w" (vi 1)) () in
  let sels = Adp_stats.Selectivity.create () in
  let est = Cardinality.create q (catalog ()) sels in
  Alcotest.(check (float 1e-6)) "filtered leaf" 10.0
    (Cardinality.leaf_cardinality est "a");
  Alcotest.(check (float 1e-6)) "raw leaf" 100.0 (Cardinality.raw_cardinality est "a")

let test_cardinality_observed_override () =
  let q = query () in
  let sels = Adp_stats.Selectivity.create () in
  let est = Cardinality.create q (catalog ()) sels in
  let before = Cardinality.set_cardinality est [ "f"; "a" ] in
  (* Observe a selectivity that makes the join 10x bigger. *)
  Adp_stats.Selectivity.observe sels
    ~signature:(Logical.signature_of_set q [ "f"; "a" ])
    ~output:(before *. 10.0)
    ~input_product:(10_000.0 *. 100.0);
  Cardinality.refresh est;
  let after = Cardinality.set_cardinality est [ "f"; "a" ] in
  Alcotest.(check bool) "observation overrides" true
    (Float.abs (after -. (before *. 10.0)) < 1.0)

let test_cardinality_multiplicative_flag () =
  let q = query () in
  let sels = Adp_stats.Selectivity.create () in
  let est = Cardinality.create q (catalog ()) sels in
  let before = Cardinality.set_cardinality est [ "f"; "b" ] in
  Adp_stats.Selectivity.flag_multiplicative sels ~predicate:"b.k=f.k2"
    ~factor:5.0;
  Cardinality.refresh est;
  let after = Cardinality.set_cardinality est [ "f"; "b" ] in
  Alcotest.(check bool) "flag inflates estimate" true (after > before)

let test_filter_selectivity () =
  Alcotest.(check (float 1e-9)) "true" 1.0
    (Cardinality.filter_selectivity Predicate.tt);
  Alcotest.(check (float 1e-9)) "eq" 0.1
    (Cardinality.filter_selectivity (Predicate.eq "c" (vi 1)));
  Alcotest.(check bool) "and multiplies" true
    (Cardinality.filter_selectivity
       Predicate.(eq "c" (vi 1) &&& eq "d" (vi 2))
     < 0.02)

(* ---------------- Enumeration / optimizer ---------------- *)

let test_optimizer_orders_by_size () =
  (* With a tiny filtered dimension, the best plan joins it early. *)
  let q = query ~a_filter:(Predicate.eq "a.w" (vi 1)) () in
  let sels = Adp_stats.Selectivity.create () in
  let r = Optimizer.optimize q (catalog ()) sels in
  (* The join tree must attach "a" below the root (joined before b). *)
  (match r.Optimizer.spec with
   | Plan.Join { left; right; _ } ->
     let rels_l = Plan.relations left and rels_r = Plan.relations right in
     Alcotest.(check bool) "a joined with f before b" true
       (rels_l = [ "a"; "f" ] || rels_r = [ "a"; "f" ]
       || rels_l = [ "b" ] || rels_r = [ "b" ])
   | Plan.Scan _ | Plan.Preagg _ -> Alcotest.fail "expected join at root");
  Alcotest.(check bool) "cost positive" true (r.Optimizer.est_cost > 0.0)

let test_optimizer_no_cross_products () =
  let q = query () in
  let sels = Adp_stats.Selectivity.create () in
  let r = Optimizer.optimize q (catalog ()) sels in
  let rec check = function
    | Plan.Scan _ -> ()
    | Plan.Preagg p -> check p.child
    | Plan.Join j ->
      Alcotest.(check bool) "join has predicates" true (j.left_key <> []);
      check j.left;
      check j.right
  in
  check r.Optimizer.spec

let test_alternatives () =
  let q = query () in
  let sels = Adp_stats.Selectivity.create () in
  let alts = Optimizer.alternatives ~k:3 q (catalog ()) sels in
  Alcotest.(check bool) "at least 2 alternatives" true (List.length alts >= 2);
  let costs = List.map (fun r -> r.Optimizer.est_cost) alts in
  Alcotest.(check bool) "sorted by cost" true
    (costs = List.sort Float.compare costs)

let test_preagg_point () =
  let q = query () in
  (match Optimizer.preagg_point q with
   | Some (rel, groups) ->
     Alcotest.(check string) "aggregated relation" "f" rel;
     Alcotest.(check bool) "join cols included" true
       (List.mem "f.k1" groups && List.mem "f.k2" groups)
   | None -> Alcotest.fail "expected a preagg point");
  (* Aggregates spanning relations admit no push-down. *)
  let spanning =
    { (query ()) with
      Logical.aggs =
        [ Aggregate.sum ~name:"s" Expr.(Add (col "f.v", col "a.w")) ] }
  in
  Alcotest.(check bool) "no point when spanning" true
    (Optimizer.preagg_point spanning = None)

let test_optimize_with_preagg () =
  let q = query () in
  let sels = Adp_stats.Selectivity.create () in
  let r = Optimizer.optimize ~preagg:Optimizer.Auto q (catalog ()) sels in
  let rec has_preagg = function
    | Plan.Scan _ -> false
    | Plan.Preagg _ -> true
    | Plan.Join j -> has_preagg j.left || has_preagg j.right
  in
  Alcotest.(check bool) "preagg inserted" true (has_preagg r.Optimizer.spec)

let test_pessimal () =
  let q = query ~a_filter:(Predicate.eq "a.w" (vi 1)) () in
  let sels = Adp_stats.Selectivity.create () in
  let best = Optimizer.optimize q (catalog ()) sels in
  let worst = Optimizer.pessimal q (catalog ()) sels in
  Alcotest.(check bool) "worst costs at least best" true
    (worst.Optimizer.est_cost >= best.Optimizer.est_cost);
  (* The pessimal plan never contains a cross product. *)
  let rec no_cross = function
    | Plan.Scan _ -> true
    | Plan.Preagg p -> no_cross p.child
    | Plan.Join j -> j.left_key <> [] && no_cross j.left && no_cross j.right
  in
  Alcotest.(check bool) "no cross products" true (no_cross worst.Optimizer.spec)

let test_final_cardinality_learning () =
  (* Once a source is exhausted, its true cardinality overrides the
     catalog — even when the catalog lied. *)
  let q = query () in
  let sels = Adp_stats.Selectivity.create () in
  let est = Cardinality.create q (catalog ~fact_card:5.0 ()) sels in
  Alcotest.(check (float 1e-6)) "catalog lie believed" 5.0
    (Cardinality.raw_cardinality est "f");
  Adp_stats.Selectivity.observe_cardinality sels ~relation:"f" ~seen:400;
  Cardinality.refresh est;
  Alcotest.(check (float 1e-6)) "seen is a lower bound" 400.0
    (Cardinality.raw_cardinality est "f");
  Adp_stats.Selectivity.observe_final_cardinality sels ~relation:"f"
    ~total:10_000;
  Cardinality.refresh est;
  Alcotest.(check (float 1e-6)) "exhaustion reveals the truth" 10_000.0
    (Cardinality.raw_cardinality est "f")

let optimizer_plans_agree =
  QCheck2.Test.make
    ~name:"all enumerated plans produce the same result (qcheck)" ~count:25
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let rng = Adp_datagen.Prng.create seed in
      let f =
        List.init 60 (fun _ ->
            [| vi (1 + Adp_datagen.Prng.int rng 10);
               vi (1 + Adp_datagen.Prng.int rng 20); vi 1 |])
      in
      let a = List.init 10 (fun i -> [| vi (i + 1); vi (i mod 3) |]) in
      let b = List.init 20 (fun i -> [| vi (i + 1); vi i |]) in
      let q = query () in
      let sels = Adp_stats.Selectivity.create () in
      let alts = Optimizer.alternatives ~k:3 q (catalog ()) sels in
      let data = [ "f", f; "a", a; "b", b ] in
      let run (r : Optimizer.result) =
        let ctx = Ctx.create () in
        let plan =
          Plan.instantiate ctx r.Optimizer.spec
            ~schema_of:(Catalog.schema_of (catalog ()))
        in
        let outs =
          List.concat_map
            (fun (name, tuples) ->
              List.concat_map (fun t -> Plan.push plan ~source:name t) tuples)
            data
          @ Plan.flush plan
        in
        (* Compare on a canonical column order. *)
        let into =
          Schema.make
            [ "f.k1"; "f.k2"; "f.v"; "a.k"; "a.w"; "b.k"; "b.w" ]
        in
        let ad = Adp_storage.Tuple_adapter.create ~from:(Plan.schema plan) ~into in
        Adp_storage.Tuple_adapter.adapt_all ad outs
      in
      match List.map run alts with
      | [] -> false
      | first :: rest -> List.for_all (same_bag first) rest)

let suite =
  [ Alcotest.test_case "logical helpers" `Quick test_logical_helpers;
    Alcotest.test_case "logical validation" `Quick test_logical_validate;
    Alcotest.test_case "catalog defaults" `Quick test_catalog_defaults;
    Alcotest.test_case "key-FK estimate" `Quick test_cardinality_key_fk;
    Alcotest.test_case "filter estimate" `Quick test_cardinality_filter;
    Alcotest.test_case "observed selectivity overrides" `Quick
      test_cardinality_observed_override;
    Alcotest.test_case "multiplicative flags" `Quick
      test_cardinality_multiplicative_flag;
    Alcotest.test_case "filter selectivity constants" `Quick
      test_filter_selectivity;
    Alcotest.test_case "optimizer prefers small joins" `Quick
      test_optimizer_orders_by_size;
    Alcotest.test_case "no cross products" `Quick test_optimizer_no_cross_products;
    Alcotest.test_case "alternatives" `Quick test_alternatives;
    Alcotest.test_case "preagg point detection" `Quick test_preagg_point;
    Alcotest.test_case "optimize with preagg" `Quick test_optimize_with_preagg;
    Alcotest.test_case "pessimal plan" `Quick test_pessimal;
    Alcotest.test_case "final cardinality learning" `Quick
      test_final_cardinality_learning;
    qtest optimizer_plans_agree ]
