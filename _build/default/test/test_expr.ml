open Adp_relation
open Helpers

let s = schema [ "t.a"; "t.b" ]
let ev e t = Expr.compile e s t

let test_arith () =
  let e = Expr.(Mul (col "t.a", Sub (int 1, col "t.b"))) in
  Alcotest.(check bool) "int arith" true
    (Value.equal (ev e [| vi 4; vi 0 |]) (vi 4));
  let e2 = Expr.(Add (col "t.a", float 0.5)) in
  Alcotest.(check bool) "mixed" true
    (Value.equal (ev e2 [| vi 1; vi 0 |]) (vf 1.5));
  let e3 = Expr.(Div (int 7, int 2)) in
  Alcotest.(check bool) "int div is float" true
    (Value.equal (ev e3 [| vi 0; vi 0 |]) (vf 3.5))

let test_null_absorbing () =
  let e = Expr.(Add (col "t.a", col "t.b")) in
  Alcotest.(check bool) "null + x" true
    (Value.is_null (ev e [| Value.Null; vi 3 |]))

let test_meta () =
  let e = Expr.(Mul (col "t.a", Sub (int 1, col "t.b"))) in
  Alcotest.(check (list string)) "columns" [ "t.a"; "t.b" ] (Expr.columns e);
  Alcotest.(check int) "size" 5 (Expr.size e);
  Alcotest.(check string) "pp" "(t.a * (1 - t.b))" (Expr.to_string e)

let tpch_revenue =
  QCheck2.Test.make ~name:"revenue expression matches direct formula"
    ~count:200
    QCheck2.Gen.(pair (float_bound_exclusive 10000.0) (float_bound_exclusive 1.0))
    (fun (price, disc) ->
      let e = Expr.(Mul (col "t.a", Sub (int 1, col "t.b"))) in
      match ev e [| vf price; vf disc |] with
      | Value.Float got -> Float.abs (got -. (price *. (1.0 -. disc))) < 1e-9
      | _ -> false)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "null absorption" `Quick test_null_absorbing;
    Alcotest.test_case "metadata" `Quick test_meta;
    qtest tpch_revenue ]
