open Adp_relation
open Adp_exec
open Helpers

let sources =
  [ "r", Schema.make [ "r.k"; "r.p" ]; "s", Schema.make [ "s.k"; "s.p" ];
    "u", Schema.make [ "u.k"; "u.p" ] ]

let two_way_preds = [ "r.k", "s.k" ]
let chain_preds = [ "r.k", "s.k"; "s.p", "u.k" ]

let mk ?(preds = two_way_preds) ?(srcs = [ "r"; "s" ]) ?(filters = []) () =
  let ctx = Ctx.create () in
  let eddy =
    Eddy.create ctx
      ~sources:(List.filter (fun (n, _) -> List.mem n srcs) sources)
      ~filters ~preds
  in
  ctx, eddy

let feed eddy src tuples =
  List.concat_map (fun t -> Eddy.insert eddy ~source:src t) tuples

let test_two_way () =
  let _, eddy = mk () in
  let r = [ [| vi 1; vi 10 |]; [| vi 2; vi 20 |]; [| vi 2; vi 21 |] ] in
  let s = [ [| vi 2; vi 100 |]; [| vi 3; vi 300 |]; [| vi 2; vi 200 |] ] in
  let outs = feed eddy "r" r @ feed eddy "s" s in
  check_bag "eddy two-way = oracle" outs (oracle_join r s ~on:[ 0, 0 ])

let test_interleaved_no_duplicates () =
  let _, eddy = mk () in
  let r = List.init 20 (fun i -> [| vi (i mod 4); vi i |]) in
  let s = List.init 20 (fun i -> [| vi (i mod 4); vi (100 + i) |]) in
  let outs = ref [] in
  List.iter2
    (fun rt st ->
      outs := !outs @ Eddy.insert eddy ~source:"r" rt;
      outs := !outs @ Eddy.insert eddy ~source:"s" st)
    r s;
  check_bag "interleaved arrival exact" !outs (oracle_join r s ~on:[ 0, 0 ])

let test_three_way_chain () =
  let _, eddy = mk ~preds:chain_preds ~srcs:[ "r"; "s"; "u" ] () in
  let r = [ [| vi 1; vi 0 |]; [| vi 2; vi 0 |] ] in
  let s = [ [| vi 1; vi 7 |]; [| vi 2; vi 8 |]; [| vi 1; vi 8 |] ] in
  let u = [ [| vi 7; vi 70 |]; [| vi 8; vi 80 |]; [| vi 8; vi 81 |] ] in
  (* Scramble arrival order across sources. *)
  let outs =
    feed eddy "u" u @ feed eddy "r" r @ feed eddy "s" s
  in
  let want = oracle_join (oracle_join r s ~on:[ 0, 0 ]) u ~on:[ 3, 0 ] in
  (* Eddy emits in canonical (r, s, u) column order, same as the oracle. *)
  check_bag "eddy three-way chain" outs want

let test_filters_applied () =
  let _, eddy =
    mk ~filters:[ "r", Predicate.gt "r.p" (vi 10) ] ()
  in
  let r = [ [| vi 1; vi 5 |]; [| vi 1; vi 15 |] ] in
  let s = [ [| vi 1; vi 100 |] ] in
  let outs = feed eddy "r" r @ feed eddy "s" s in
  Alcotest.(check int) "filtered out" 1 (List.length outs)

let test_routing_stats () =
  let _, eddy = mk ~preds:chain_preds ~srcs:[ "r"; "s"; "u" ] () in
  let r = List.init 30 (fun i -> [| vi i; vi i |]) in
  let s = List.init 30 (fun i -> [| vi i; vi i |]) in
  let u = List.init 30 (fun i -> [| vi i; vi i |]) in
  ignore (feed eddy "r" r);
  ignore (feed eddy "s" s);
  ignore (feed eddy "u" u);
  Alcotest.(check bool) "made routing decisions" true (Eddy.decisions eddy > 0);
  let total_probes =
    List.fold_left (fun acc (_, p, _) -> acc + p) 0 (Eddy.routing_stats eddy)
  in
  Alcotest.(check bool) "probes recorded" true (total_probes > 0)

let test_costs_charged () =
  let ctx, eddy = mk () in
  ignore (feed eddy "r" [ [| vi 1; vi 1 |] ]);
  Alcotest.(check bool) "cpu charged" true (Clock.cpu ctx.Ctx.clock > 0.0)

let eddy_vs_oracle =
  QCheck2.Test.make ~name:"eddy = oracle under random interleaving (qcheck)"
    ~count:60
    QCheck2.Gen.(
      triple
        (gen_keyed_tuples ~key_range:6 ~max_len:25)
        (gen_keyed_tuples ~key_range:6 ~max_len:25)
        (gen_keyed_tuples ~key_range:6 ~max_len:25))
    (fun (r, s, u) ->
      let _, eddy = mk ~preds:chain_preds ~srcs:[ "r"; "s"; "u" ] () in
      let outs =
        feed eddy "s" s @ feed eddy "u" u @ feed eddy "r" r
      in
      let want = oracle_join (oracle_join r s ~on:[ 0, 0 ]) u ~on:[ 3, 0 ] in
      same_bag outs want)

let suite =
  [ Alcotest.test_case "two-way join" `Quick test_two_way;
    Alcotest.test_case "interleaved, no duplicates" `Quick
      test_interleaved_no_duplicates;
    Alcotest.test_case "three-way chain" `Quick test_three_way_chain;
    Alcotest.test_case "filters applied" `Quick test_filters_applied;
    Alcotest.test_case "routing stats" `Quick test_routing_stats;
    Alcotest.test_case "costs charged" `Quick test_costs_charged;
    qtest eddy_vs_oracle ]
