(* Windowed pre-aggregation (§6): correctness through the plan tree, window
   adaptation behaviour, and pseudogroup pass-through. *)

open Adp_relation
open Adp_exec
open Helpers

let tables = [ "d", Schema.make [ "d.g"; "d.v" ]; "k", keyed_schema "k" ]
let schema_of name = List.assoc name tables

let aggs = [ Aggregate.sum ~name:"s" (Expr.col "d.v") ]

let preagg_plan mode =
  Plan.preagg ~mode ~group_cols:[ "d.g" ] ~aggs (Plan.scan "d")

let run_preagg mode tuples =
  let ctx = Ctx.create () in
  let plan = Plan.instantiate ctx (preagg_plan mode) ~schema_of in
  (* Bind pushes before flushing: [@] evaluates right to left. *)
  let streamed = List.concat_map (fun t -> Plan.push plan ~source:"d" t) tuples in
  let outs = streamed @ Plan.flush plan in
  plan, outs

let final_sum_by_group outs out_schema =
  let ctx = Ctx.create () in
  let agg =
    Agg.create ctx ~group_cols:[ "d.g" ] ~aggs ~input:Agg.Partial out_schema
  in
  Agg.add_all agg outs;
  Agg.result agg

let direct_sum_by_group tuples =
  let ctx = Ctx.create () in
  let agg =
    Agg.create ctx ~group_cols:[ "d.g" ] ~aggs ~input:Agg.Raw
      (schema_of "d")
  in
  List.iter (Agg.add agg) tuples;
  Agg.result agg

let modes =
  [ "windowed", Plan.Windowed { initial = 4; max_window = 64 };
    "traditional", Plan.Traditional;
    "pseudogroup", Plan.Pseudogroup;
    "punctuated", Plan.Punctuated ]

let test_equivalence_all_modes () =
  let rng = Adp_datagen.Prng.create 2 in
  let tuples =
    List.init 500 (fun _ ->
        [| vi (Adp_datagen.Prng.int rng 20); vi (Adp_datagen.Prng.int rng 100) |])
  in
  let want = direct_sum_by_group tuples in
  List.iter
    (fun (name, mode) ->
      let plan, outs = run_preagg mode tuples in
      let got = final_sum_by_group outs (Plan.schema plan) in
      Alcotest.(check bool)
        (name ^ " preagg + final = single agg")
        true
        (Relation.equal_bag got want))
    modes

let test_window_grows_on_collapse () =
  (* Single group: every window collapses to one tuple — window must grow. *)
  let tuples = List.init 300 (fun i -> [| vi 7; vi i |]) in
  let plan, _ = run_preagg (Plan.Windowed { initial = 4; max_window = 1024 }) tuples in
  match Plan.preagg_stats plan with
  | [ (_, in_total, out_total, window) ] ->
    Alcotest.(check int) "saw all input" 300 in_total;
    Alcotest.(check bool) "collapsed heavily" true (out_total < 100);
    Alcotest.(check bool) "window grew" true (window > 4)
  | _ -> Alcotest.fail "expected one preagg"

let test_window_shrinks_on_unique () =
  (* All-distinct groups: pre-aggregation is useless — window must shrink
     to the pseudogroup pass-through size of 1. *)
  let tuples = List.init 300 (fun i -> [| vi i; vi i |]) in
  let plan, outs = run_preagg (Plan.Windowed { initial = 64; max_window = 1024 }) tuples in
  Alcotest.(check int) "pass-through emits all" 300 (List.length outs);
  match Plan.preagg_stats plan with
  | [ (_, _, _, window) ] ->
    Alcotest.(check int) "window shrank to 1" 1 window
  | _ -> Alcotest.fail "expected one preagg"

let test_traditional_blocks () =
  let tuples = List.init 100 (fun i -> [| vi (i mod 5); vi i |]) in
  let ctx = Ctx.create () in
  let plan = Plan.instantiate ctx (preagg_plan Plan.Traditional) ~schema_of in
  let during =
    List.concat_map (fun t -> Plan.push plan ~source:"d" t) tuples
  in
  Alcotest.(check int) "nothing emitted while streaming" 0 (List.length during);
  let at_flush = Plan.flush plan in
  Alcotest.(check int) "everything at flush" 5 (List.length at_flush)

let test_pseudogroup_streams () =
  let tuples = List.init 10 (fun i -> [| vi (i mod 5); vi i |]) in
  let ctx = Ctx.create () in
  let plan = Plan.instantiate ctx (preagg_plan Plan.Pseudogroup) ~schema_of in
  let during =
    List.concat_map (fun t -> Plan.push plan ~source:"d" t) tuples
  in
  Alcotest.(check int) "one partial per input" 10 (List.length during)

let test_preagg_under_join () =
  (* γ[d.g]sum(d.v) (d) ⋈ k on d.g = k.k : early aggregation before a join;
     final agg coalesces. *)
  let d = List.init 200 (fun i -> [| vi (i mod 4); vi 1 |]) in
  let k = List.init 4 (fun i -> [| vi i; vi (100 + i) |]) in
  let ctx = Ctx.create () in
  let spec =
    Plan.join
      (preagg_plan (Plan.Windowed { initial = 8; max_window = 256 }))
      (Plan.scan "k") ~on:[ "d.g", "k.k" ]
  in
  let plan = Plan.instantiate ctx spec ~schema_of in
  let from_d = List.concat_map (fun t -> Plan.push plan ~source:"d" t) d in
  let from_k = List.concat_map (fun t -> Plan.push plan ~source:"k" t) k in
  let outs = from_d @ from_k @ Plan.flush plan in
  let agg_ctx = Ctx.create () in
  let agg =
    Agg.create agg_ctx ~group_cols:[ "d.g" ] ~aggs ~input:Agg.Partial
      (Plan.schema plan)
  in
  Agg.add_all agg outs;
  let got = Agg.result agg in
  (* Each group has 50 tuples of v=1. *)
  check_bag "preagg under join"
    (Relation.to_list got)
    [ [| vi 0; vi 50 |]; [| vi 1; vi 50 |]; [| vi 2; vi 50 |];
      [| vi 3; vi 50 |] ]

let test_punctuated_on_sorted () =
  (* Group-sorted input: one partial per group, emitted at each boundary. *)
  let tuples =
    List.concat_map
      (fun g -> List.init 10 (fun i -> [| vi g; vi i |]))
      [ 1; 2; 3; 4 ]
  in
  let ctx = Ctx.create () in
  let plan = Plan.instantiate ctx (preagg_plan Plan.Punctuated) ~schema_of in
  let streamed =
    List.concat_map (fun t -> Plan.push plan ~source:"d" t) tuples
  in
  (* Three boundaries crossed while streaming; the last group at flush. *)
  Alcotest.(check int) "streaming emissions" 3 (List.length streamed);
  let final = Plan.flush plan in
  Alcotest.(check int) "last group at flush" 1 (List.length final);
  let got = final_sum_by_group (streamed @ final) (Plan.schema plan) in
  Alcotest.(check bool) "punctuated equals direct" true
    (Relation.equal_bag got (direct_sum_by_group tuples))

let test_punctuated_on_unsorted_still_correct () =
  let rng = Adp_datagen.Prng.create 4 in
  let tuples =
    List.init 200 (fun _ ->
        [| vi (Adp_datagen.Prng.int rng 5); vi (Adp_datagen.Prng.int rng 10) |])
  in
  let plan, outs = run_preagg Plan.Punctuated tuples in
  let got = final_sum_by_group outs (Plan.schema plan) in
  Alcotest.(check bool) "duplicated partials coalesce" true
    (Relation.equal_bag got (direct_sum_by_group tuples));
  (* Unsorted input punctuates on nearly every tuple — many partials. *)
  Alcotest.(check bool) "degrades to many partials" true (List.length outs > 100)

let preagg_union_prop =
  QCheck2.Test.make
    ~name:"windowed preagg + coalesce = single aggregation (qcheck)" ~count:60
    QCheck2.Gen.(
      pair (int_range 1 64)
        (list_size (int_bound 200) (pair (int_bound 6) (int_bound 50))))
    (fun (w, pairs) ->
      let tuples = List.map (fun (g, v) -> [| vi g; vi v |]) pairs in
      let plan, outs =
        run_preagg (Plan.Windowed { initial = w; max_window = 512 }) tuples
      in
      let got = final_sum_by_group outs (Plan.schema plan) in
      let want = direct_sum_by_group tuples in
      Relation.equal_bag got want)

let suite =
  [ Alcotest.test_case "equivalence across modes" `Quick
      test_equivalence_all_modes;
    Alcotest.test_case "window grows on collapse" `Quick
      test_window_grows_on_collapse;
    Alcotest.test_case "window shrinks to pass-through" `Quick
      test_window_shrinks_on_unique;
    Alcotest.test_case "traditional blocks until flush" `Quick
      test_traditional_blocks;
    Alcotest.test_case "pseudogroup streams" `Quick test_pseudogroup_streams;
    Alcotest.test_case "preagg under join" `Quick test_preagg_under_join;
    Alcotest.test_case "punctuated on sorted input" `Quick
      test_punctuated_on_sorted;
    Alcotest.test_case "punctuated safe on unsorted" `Quick
      test_punctuated_on_unsorted_still_correct;
    qtest preagg_union_prop ]
