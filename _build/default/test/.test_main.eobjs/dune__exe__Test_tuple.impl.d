test/test_tuple.ml: Adp_relation Alcotest Array Helpers List QCheck2 Tuple Value
