test/test_storage.ml: Adp_relation Adp_storage Alcotest Array Btree Fun Hash_table Helpers List Printf QCheck2 Registry Schema Sorted_run State Tuple_adapter Value
