test/test_schema.ml: Adp_relation Alcotest Schema
