test/test_exec.ml: Adp_exec Adp_relation Agg Aggregate Alcotest Array Clock Ctx Driver Expr Heap Helpers List QCheck2 Relation Schema Source Value
