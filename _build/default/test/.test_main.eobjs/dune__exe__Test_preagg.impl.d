test/test_preagg.ml: Adp_datagen Adp_exec Adp_relation Agg Aggregate Alcotest Ctx Expr Helpers List Plan QCheck2 Relation Schema
