test/test_expr.ml: Adp_relation Alcotest Expr Float Helpers QCheck2 Value
