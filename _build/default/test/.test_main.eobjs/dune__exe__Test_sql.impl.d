test/test_sql.ml: Adp_datagen Adp_exec Adp_optimizer Adp_query Adp_relation Aggregate Alcotest Expr List Logical Predicate Relation Schema Sql_lexer Sql_parser Value Workload
