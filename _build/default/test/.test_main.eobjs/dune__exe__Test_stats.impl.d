test/test_stats.ml: Adp_datagen Adp_relation Adp_stats Alcotest Array Distinct Float Fun Hashtbl Helpers Histogram Join_estimator List Option Order_detector Printf Prng Selectivity Value
