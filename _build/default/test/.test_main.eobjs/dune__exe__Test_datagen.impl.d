test/test_datagen.ml: Adp_datagen Adp_relation Alcotest Array Flights Float Fun Hashtbl Helpers List Option Perturb Prng Relation Schema Tpch Value Zipf
