test/test_predicate.ml: Adp_relation Alcotest Helpers Predicate QCheck2 Value
