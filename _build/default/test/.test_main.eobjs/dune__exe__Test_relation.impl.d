test/test_relation.ml: Adp_relation Alcotest Array Helpers List Relation Seq Value
