test/test_joins.ml: Adp_datagen Adp_exec Alcotest Array Clock Comp_join Ctx Fun Helpers List Printf QCheck2 Sym_join
