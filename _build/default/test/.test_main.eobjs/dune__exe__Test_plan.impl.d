test/test_plan.ml: Adp_exec Adp_relation Alcotest Array Clock Cost_model Ctx Helpers List Plan Predicate QCheck2 Value
