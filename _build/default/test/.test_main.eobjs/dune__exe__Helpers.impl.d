test/helpers.ml: Adp_relation Alcotest Array Float List QCheck2 QCheck_alcotest Relation Schema Tuple Value
