test/test_report.ml: Adp_core Alcotest Format Report String
