test/test_stitchup.ml: Adp_core Adp_datagen Adp_exec Adp_optimizer Adp_relation Adp_storage Alcotest Array Ctx Helpers List Logical Phase Plan Predicate QCheck2 Registry Relation Schema Sink Stitchup
