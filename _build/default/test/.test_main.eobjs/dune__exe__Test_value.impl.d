test/test_value.ml: Adp_relation Alcotest Helpers QCheck2 Value
