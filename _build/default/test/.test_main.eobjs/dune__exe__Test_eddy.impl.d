test/test_eddy.ml: Adp_exec Adp_relation Alcotest Clock Ctx Eddy Helpers List Predicate QCheck2 Schema
