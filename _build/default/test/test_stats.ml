open Adp_relation
open Adp_stats
open Adp_datagen
open Helpers

(* ---------------- Histogram ---------------- *)

let test_histogram_exact_small () =
  let h = Histogram.create ~buckets:10 in
  for _ = 1 to 5 do
    Histogram.add h (vi 42)
  done;
  Histogram.add h (vi 7);
  Alcotest.(check int) "count" 6 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "freq heavy" 5.0 (Histogram.estimate_freq h (vi 42));
  Alcotest.(check (float 1e-9)) "freq light" 1.0 (Histogram.estimate_freq h (vi 7))

let test_histogram_nulls () =
  let h = Histogram.create ~buckets:10 in
  Histogram.add h Value.Null;
  Histogram.add h (vi 1);
  Alcotest.(check int) "null tracked" 1 (Histogram.null_count h);
  Alcotest.(check int) "total includes null" 2 (Histogram.count h)

let test_histogram_join_estimate () =
  (* Exact join size on small key domains: sum over v of f1(v) * f2(v). *)
  let rng = Prng.create 3 in
  let h1 = Histogram.create ~buckets:50 and h2 = Histogram.create ~buckets:50 in
  let c1 = Array.make 20 0 and c2 = Array.make 20 0 in
  for _ = 1 to 2000 do
    let k = Prng.int rng 20 in
    c1.(k) <- c1.(k) + 1;
    Histogram.add h1 (vi k)
  done;
  for _ = 1 to 1000 do
    let k = Prng.int rng 20 in
    c2.(k) <- c2.(k) + 1;
    Histogram.add h2 (vi k)
  done;
  let exact = ref 0 in
  for k = 0 to 19 do
    exact := !exact + (c1.(k) * c2.(k))
  done;
  let est = Histogram.estimate_join h1 h2 in
  let err = Float.abs (est -. float_of_int !exact) /. float_of_int !exact in
  Alcotest.(check bool)
    (Printf.sprintf "join estimate within 25%% (est %.0f exact %d)" est !exact)
    true (err < 0.25)

let test_histogram_range () =
  let h = Histogram.create ~buckets:8 in
  (* Wide domain so values overflow singletons into range buckets. *)
  for i = 1 to 2000 do
    Histogram.add h (vi i)
  done;
  let est = Histogram.estimate_range h (vi 1) (vi 1000) in
  Alcotest.(check bool)
    (Printf.sprintf "range estimate near half (got %.0f)" est)
    true (est > 600.0 && est < 1400.0)

let test_histogram_scale () =
  let h = Histogram.create ~buckets:10 in
  for _ = 1 to 100 do
    Histogram.add h (vi 1)
  done;
  let doubled = Histogram.scale h 2.0 in
  Alcotest.(check (float 1e-6)) "freq doubled" 200.0
    (Histogram.estimate_freq doubled (vi 1));
  Alcotest.(check (float 1e-6)) "original untouched" 100.0
    (Histogram.estimate_freq h (vi 1))

let test_histogram_distinct () =
  let h = Histogram.create ~buckets:50 in
  for i = 1 to 5000 do
    Histogram.add h (vi (i mod 500))
  done;
  let d = Histogram.estimate_distinct h in
  Alcotest.(check bool)
    (Printf.sprintf "distinct within 2x (got %.0f)" d)
    true (d > 250.0 && d < 1000.0)

(* ---------------- Order detector ---------------- *)

let feed_list od l = List.iter (fun v -> Order_detector.add od (vi v)) l

let test_order_ascending () =
  let od = Order_detector.create () in
  feed_list od [ 1; 2; 2; 5; 9 ];
  Alcotest.(check bool) "ascending" true (Order_detector.verdict od = Order_detector.Ascending);
  Alcotest.(check bool) "perfect" true (Order_detector.perfectly_sorted od);
  Alcotest.(check bool) "not strict (dup)" false (Order_detector.strictly_ascending od)

let test_order_strict () =
  let od = Order_detector.create () in
  feed_list od [ 1; 2; 3; 10 ];
  Alcotest.(check bool) "strict implies unique" true
    (Order_detector.strictly_ascending od)

let test_order_descending () =
  let od = Order_detector.create () in
  feed_list od [ 9; 7; 7; 1 ];
  Alcotest.(check bool) "descending" true
    (Order_detector.verdict od = Order_detector.Descending)

let test_order_unsorted () =
  let od = Order_detector.create () in
  feed_list od [ 1; 9; 2; 8; 3; 7; 0; 5 ];
  Alcotest.(check bool) "unsorted" true
    (Order_detector.verdict od = Order_detector.Unsorted);
  Alcotest.(check bool) "fraction sensible" true
    (Order_detector.ascending_fraction od > 0.0
     && Order_detector.ascending_fraction od < 1.0)

let test_order_mostly_sorted_threshold () =
  let od = Order_detector.create () in
  feed_list od (List.init 100 Fun.id @ [ 5 ] @ List.init 50 (fun i -> 101 + i));
  Alcotest.(check bool) "98% in-order is Ascending at default threshold" true
    (Order_detector.verdict od = Order_detector.Ascending);
  Alcotest.(check bool) "strict threshold flags it" true
    (Order_detector.verdict ~threshold:0.999 od = Order_detector.Unsorted)

(* ---------------- Distinct ---------------- *)

let test_distinct_exact () =
  let d = Distinct.create ~exact_budget:100 () in
  for i = 1 to 50 do
    Distinct.add d (vi (i mod 10))
  done;
  Alcotest.(check bool) "exact" true (Distinct.is_exact d);
  Alcotest.(check (float 0.0)) "ten distinct" 10.0 (Distinct.estimate d)

let test_distinct_sketch () =
  let d = Distinct.create ~exact_budget:64 ~sketch_bits:16 () in
  let n = 20000 in
  for i = 1 to n do
    Distinct.add d (vi i)
  done;
  Alcotest.(check bool) "switched to sketch" false (Distinct.is_exact d);
  let est = Distinct.estimate d in
  let err = Float.abs (est -. float_of_int n) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "linear counting within 10%% (got %.0f)" est)
    true (err < 0.1)

(* ---------------- Join estimator (§4.5) ---------------- *)

let feed_prefix side values frac =
  let n = int_of_float (frac *. float_of_int (List.length values)) in
  List.iteri
    (fun i v -> if i < n then Join_estimator.observe side (vi v))
    values

let test_estimator_key_detection () =
  let s = Join_estimator.side () in
  List.iter (fun v -> Join_estimator.observe s (vi v)) [ 1; 2; 5; 9 ];
  Alcotest.(check bool) "sorted" true (Join_estimator.detected_sorted s);
  Alcotest.(check bool) "key" true (Join_estimator.detected_key s);
  Join_estimator.observe s (vi 9);
  Alcotest.(check bool) "duplicate kills key" false (Join_estimator.detected_key s);
  Alcotest.(check bool) "still sorted" true (Join_estimator.detected_sorted s);
  Join_estimator.observe s (vi 3);
  Alcotest.(check bool) "violation kills sorted" false
    (Join_estimator.detected_sorted s)

let test_estimator_sorted_vs_random () =
  (* A sorted key stream joined with a random FK stream: the estimate
     should approximate the FK count even from a 25% prefix. *)
  let n = 4000 in
  let keys = List.init n (fun i -> i + 1) in
  let rng = Prng.create 21 in
  let fks = List.init n (fun _ -> 1 + Prng.int rng n) in
  let sk = Join_estimator.side () and sf = Join_estimator.side () in
  feed_prefix sk keys 0.25;
  feed_prefix sf fks 0.25;
  let est = Join_estimator.estimate ~left:(sk, 0.25) ~right:(sf, 0.25) in
  let err = Float.abs (est -. float_of_int n) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "key-vs-random estimate within 20%% (got %.0f)" est)
    true (err < 0.2)

let test_estimator_random_vs_random () =
  let n = 5000 and domain = 50 in
  let rng = Prng.create 22 in
  let mk () = List.init n (fun _ -> Prng.int rng domain) in
  let a = mk () and b = mk () in
  let exact =
    let count l =
      let t = Hashtbl.create 64 in
      List.iter
        (fun v ->
          Hashtbl.replace t v (1 + Option.value ~default:0 (Hashtbl.find_opt t v)))
        l;
      t
    in
    let ca = count a and cb = count b in
    Hashtbl.fold
      (fun v n acc ->
        acc + (n * Option.value ~default:0 (Hashtbl.find_opt cb v)))
      ca 0
  in
  let sa = Join_estimator.side () and sb = Join_estimator.side () in
  feed_prefix sa a 0.5;
  feed_prefix sb b 0.5;
  let est = Join_estimator.estimate ~left:(sa, 0.5) ~right:(sb, 0.5) in
  let err = Float.abs (est -. float_of_int exact) /. float_of_int exact in
  Alcotest.(check bool)
    (Printf.sprintf "random-vs-random within 30%% (got %.0f vs %d)" est exact)
    true (err < 0.3)

let test_estimator_multiplicity () =
  let s = Join_estimator.side () in
  (* Sorted with 3 duplicates per value. *)
  List.iter
    (fun v -> Join_estimator.observe s (vi v))
    (List.concat_map (fun v -> [ v; v; v ]) (List.init 200 Fun.id));
  Alcotest.(check bool) "sorted non-key" true
    (Join_estimator.detected_sorted s && not (Join_estimator.detected_key s));
  let m = Join_estimator.multiplicity s in
  Alcotest.(check bool)
    (Printf.sprintf "multiplicity near 3 (got %.2f)" m)
    true (m > 2.0 && m < 4.5)

(* ---------------- Selectivity ---------------- *)

let test_selectivity_registry () =
  let s = Selectivity.create () in
  Alcotest.(check bool) "empty" true (Selectivity.lookup s "sig" = None);
  Selectivity.observe s ~signature:"sig" ~output:50.0 ~input_product:1000.0;
  Alcotest.(check bool) "observed" true (Selectivity.lookup s "sig" = Some 0.05);
  Selectivity.observe s ~signature:"sig" ~output:100.0 ~input_product:1000.0;
  Alcotest.(check bool) "overwritten" true (Selectivity.lookup s "sig" = Some 0.1);
  Selectivity.observe s ~signature:"zero" ~output:1.0 ~input_product:0.0;
  Alcotest.(check bool) "zero product ignored" true
    (Selectivity.lookup s "zero" = None);
  Alcotest.(check int) "size" 1 (Selectivity.size s)

let test_selectivity_cards_and_flags () =
  let s = Selectivity.create () in
  Selectivity.observe_cardinality s ~relation:"r" ~seen:123;
  Alcotest.(check bool) "card" true (Selectivity.cardinality s "r" = Some 123);
  Selectivity.flag_multiplicative s ~predicate:"a=b" ~factor:3.0;
  Selectivity.flag_multiplicative s ~predicate:"a=b" ~factor:2.0;
  Alcotest.(check bool) "keeps max factor" true
    (Selectivity.multiplicative_factor s "a=b" = Some 3.0)

let suite =
  [ Alcotest.test_case "histogram exact small" `Quick test_histogram_exact_small;
    Alcotest.test_case "histogram nulls" `Quick test_histogram_nulls;
    Alcotest.test_case "histogram join estimate" `Quick test_histogram_join_estimate;
    Alcotest.test_case "histogram range" `Quick test_histogram_range;
    Alcotest.test_case "histogram scale" `Quick test_histogram_scale;
    Alcotest.test_case "histogram distinct" `Quick test_histogram_distinct;
    Alcotest.test_case "order ascending" `Quick test_order_ascending;
    Alcotest.test_case "order strict" `Quick test_order_strict;
    Alcotest.test_case "order descending" `Quick test_order_descending;
    Alcotest.test_case "order unsorted" `Quick test_order_unsorted;
    Alcotest.test_case "order mostly-sorted threshold" `Quick
      test_order_mostly_sorted_threshold;
    Alcotest.test_case "distinct exact" `Quick test_distinct_exact;
    Alcotest.test_case "distinct sketch" `Quick test_distinct_sketch;
    Alcotest.test_case "selectivity registry" `Quick test_selectivity_registry;
    Alcotest.test_case "selectivity cards/flags" `Quick
      test_selectivity_cards_and_flags ]
