open Adp_relation
open Helpers

let t1 = [| vi 1; vs "x"; vf 2.5 |]
let t2 = [| vi 2; vs "y" |]

let test_concat_project () =
  let c = Tuple.concat t1 t2 in
  Alcotest.(check int) "arity" 5 (Tuple.arity c);
  Alcotest.(check bool) "order" true (Value.equal (Tuple.get c 3) (vi 2));
  let p = Tuple.project c [| 4; 0 |] in
  Alcotest.(check bool) "proj" true (Value.equal p.(0) (vs "y"));
  Alcotest.(check bool) "proj2" true (Value.equal p.(1) (vi 1))

let test_key_compare () =
  let k1 = Tuple.key t1 [| 0 |] and k2 = Tuple.key t2 [| 0 |] in
  Alcotest.(check bool) "k1 < k2" true (Tuple.compare_key k1 k2 < 0);
  Alcotest.(check bool) "reflexive" true (Tuple.compare_key k1 k1 = 0);
  (* Prefix ordering: shorter key sorts first when it is a prefix. *)
  Alcotest.(check bool) "prefix" true
    (Tuple.compare_key [| vi 1 |] [| vi 1; vi 2 |] < 0)

let test_hash_key () =
  Alcotest.(check int) "same key same hash"
    (Tuple.hash_key [| vi 3; vs "a" |])
    (Tuple.hash_key [| vi 3; vs "a" |]);
  Alcotest.(check int) "numeric widening"
    (Tuple.hash_key [| vi 3 |])
    (Tuple.hash_key [| vf 3.0 |])

let compare_total_order =
  QCheck2.Test.make ~name:"tuple compare is a total order" ~count:200
    QCheck2.Gen.(
      triple (list_size (int_bound 4) small_int)
        (list_size (int_bound 4) small_int)
        (list_size (int_bound 4) small_int))
    (fun (a, b, c) ->
      let t l = Array.of_list (List.map vi l) in
      let a = t a and b = t b and c = t c in
      let sgn x = compare x 0 in
      (* antisymmetry *)
      sgn (Tuple.compare a b) = -sgn (Tuple.compare b a)
      (* transitivity spot-check *)
      && (not (Tuple.compare a b <= 0 && Tuple.compare b c <= 0)
          || Tuple.compare a c <= 0))

let suite =
  [ Alcotest.test_case "concat and project" `Quick test_concat_project;
    Alcotest.test_case "keys and comparison" `Quick test_key_compare;
    Alcotest.test_case "key hashing" `Quick test_hash_key;
    qtest compare_total_order ]
