open Adp_relation
open Helpers

let s = schema [ "t.a"; "t.b"; "t.s" ]
let tup a b str = [| vi a; vi b; vs str |]

let ev p t = Predicate.compile p s t

let test_cmp () =
  Alcotest.(check bool) "eq hit" true (ev (Predicate.eq "t.a" (vi 1)) (tup 1 0 "x"));
  Alcotest.(check bool) "eq miss" false (ev (Predicate.eq "t.a" (vi 1)) (tup 2 0 "x"));
  Alcotest.(check bool) "lt" true (ev (Predicate.lt "t.a" (vi 5)) (tup 4 0 "x"));
  Alcotest.(check bool) "ge" true (ev (Predicate.ge "t.a" (vi 4)) (tup 4 0 "x"));
  Alcotest.(check bool) "bare col" true (ev (Predicate.eq "s" (vs "x")) (tup 0 0 "x"))

let test_null_semantics () =
  let null_tup = [| Value.Null; vi 1; vs "x" |] in
  Alcotest.(check bool) "null eq false" false
    (ev (Predicate.eq "t.a" (vi 1)) null_tup);
  Alcotest.(check bool) "null ne false" false
    (ev (Predicate.Cmp (Predicate.Ne, "t.a", vi 1)) null_tup);
  Alcotest.(check bool) "not (null eq) true" true
    (ev (Predicate.Not (Predicate.eq "t.a" (vi 1))) null_tup)

let test_combinators () =
  let p = Predicate.(eq "t.a" (vi 1) &&& gt "t.b" (vi 5)) in
  Alcotest.(check bool) "and hit" true (ev p (tup 1 6 "x"));
  Alcotest.(check bool) "and miss" false (ev p (tup 1 5 "x"));
  let q = Predicate.(eq "t.a" (vi 1) ||| eq "t.a" (vi 2)) in
  Alcotest.(check bool) "or" true (ev q (tup 2 0 "x"));
  Alcotest.(check bool) "tt absorbed" true
    Predicate.(tt &&& eq "t.a" (vi 1) = eq "t.a" (vi 1))

let test_between_in () =
  Alcotest.(check bool) "between lo" true
    (ev (Predicate.between "t.a" (vi 1) (vi 3)) (tup 1 0 "x"));
  Alcotest.(check bool) "between hi" true
    (ev (Predicate.between "t.a" (vi 1) (vi 3)) (tup 3 0 "x"));
  Alcotest.(check bool) "between out" false
    (ev (Predicate.between "t.a" (vi 1) (vi 3)) (tup 4 0 "x"));
  Alcotest.(check bool) "in" true
    (ev (Predicate.In ("t.s", [ vs "x"; vs "y" ])) (tup 0 0 "y"))

let test_col_cmp () =
  Alcotest.(check bool) "col eq" true
    (ev (Predicate.Col_cmp (Predicate.Eq, "t.a", "t.b")) (tup 3 3 "x"));
  Alcotest.(check bool) "col lt" true
    (ev (Predicate.Col_cmp (Predicate.Lt, "t.a", "t.b")) (tup 2 3 "x"))

let test_meta () =
  let p = Predicate.(between "t.a" (vi 0) (vi 9) &&& eq "t.s" (vs "q")) in
  Alcotest.(check int) "size" 3 (Predicate.size p);
  Alcotest.(check (list string)) "columns" [ "t.a"; "t.s" ] (Predicate.columns p);
  Alcotest.check_raises "missing col" Not_found (fun () ->
      let f = Predicate.compile (Predicate.eq "t.zz" (vi 0)) s in
      ignore (f (tup 0 0 "x")))

let negation_involution =
  QCheck2.Test.make ~name:"not (not p) = p pointwise" ~count:300
    QCheck2.Gen.(pair (int_bound 10) (int_bound 10))
    (fun (a, b) ->
      let p = Predicate.(eq "t.a" (vi 3) ||| gt "t.b" (vi 5)) in
      let t = tup a b "x" in
      ev (Predicate.Not (Predicate.Not p)) t = ev p t)

let suite =
  [ Alcotest.test_case "comparisons" `Quick test_cmp;
    Alcotest.test_case "null semantics" `Quick test_null_semantics;
    Alcotest.test_case "combinators" `Quick test_combinators;
    Alcotest.test_case "between/in" `Quick test_between_in;
    Alcotest.test_case "column comparisons" `Quick test_col_cmp;
    Alcotest.test_case "size/columns/errors" `Quick test_meta;
    qtest negation_involution ]
