open Adp_relation

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let test_compare_same_type () =
  check_bool "int lt" true (Value.compare (Value.Int 1) (Value.Int 2) < 0);
  check_int "int eq" 0 (Value.compare (Value.Int 5) (Value.Int 5));
  check_bool "float" true (Value.compare (Value.Float 1.5) (Value.Float 2.5) < 0);
  check_bool "str" true (Value.compare (Value.Str "a") (Value.Str "b") < 0);
  check_bool "date" true (Value.compare (Value.Date 10) (Value.Date 20) < 0)

let test_compare_mixed_numeric () =
  check_int "int vs float eq" 0 (Value.compare (Value.Int 2) (Value.Float 2.0));
  check_bool "int lt float" true (Value.compare (Value.Int 1) (Value.Float 1.5) < 0);
  check_bool "float gt int" true (Value.compare (Value.Float 3.5) (Value.Int 3) > 0)

let test_null_ordering () =
  check_bool "null first vs int" true (Value.compare Value.Null (Value.Int 0) < 0);
  check_bool "null first vs str" true (Value.compare Value.Null (Value.Str "") < 0);
  check_int "null eq null" 0 (Value.compare Value.Null Value.Null)

let test_eq_sql () =
  check_bool "null <> null" false (Value.eq_sql Value.Null Value.Null);
  check_bool "null <> 1" false (Value.eq_sql Value.Null (Value.Int 1));
  check_bool "1 = 1" true (Value.eq_sql (Value.Int 1) (Value.Int 1));
  check_bool "1 = 1.0" true (Value.eq_sql (Value.Int 1) (Value.Float 1.0))

let test_hash_consistency () =
  (* Equal values (across numeric representations) must hash equally. *)
  check_int "int/float hash" (Value.hash (Value.Int 7))
    (Value.hash (Value.Float 7.0))

let test_arith () =
  check_bool "add ints" true (Value.add (Value.Int 2) (Value.Int 3) = Value.Int 5);
  check_bool "add mixed" true
    (Value.add (Value.Int 2) (Value.Float 0.5) = Value.Float 2.5);
  check_bool "add null" true (Value.add Value.Null (Value.Int 1) = Value.Null);
  check_bool "min ignores null" true
    (Value.min_v Value.Null (Value.Int 4) = Value.Int 4);
  check_bool "max ignores null" true
    (Value.max_v (Value.Int 4) Value.Null = Value.Int 4);
  check_bool "min" true (Value.min_v (Value.Int 1) (Value.Int 2) = Value.Int 1);
  check_bool "max" true (Value.max_v (Value.Int 1) (Value.Int 2) = Value.Int 2)

let test_dates () =
  check_str "epoch" "1992-01-01" (Value.to_string (Value.date_of_string "1992-01-01"));
  check_str "roundtrip" "1995-03-15"
    (Value.to_string (Value.date_of_string "1995-03-15"));
  check_str "leap day" "1996-02-29"
    (Value.to_string (Value.date_of_string "1996-02-29"));
  check_str "end of range" "1998-08-02"
    (Value.to_string (Value.date_of_string "1998-08-02"));
  check_bool "date order" true
    (Value.compare
       (Value.date_of_string "1994-12-31")
       (Value.date_of_string "1995-01-01")
    < 0);
  (* 1992 is a leap year: Jan 1 + 366 days = Jan 1 1993. *)
  (match Value.date_of_string "1993-01-01" with
   | Value.Date d -> check_int "leap 1992" 366 d
   | _ -> Alcotest.fail "expected date")

let test_to_float () =
  Alcotest.(check (float 1e-9)) "int" 3.0 (Value.to_float (Value.Int 3));
  Alcotest.check_raises "null" (Invalid_argument "Value.to_float: Null")
    (fun () -> ignore (Value.to_float Value.Null))

let date_roundtrip =
  QCheck2.Test.make ~name:"date day-number roundtrip" ~count:500
    QCheck2.Gen.(int_bound 2405)
    (fun d ->
      let s = Value.to_string (Value.Date d) in
      Value.date_of_string s = Value.Date d)

let suite =
  [ Alcotest.test_case "compare same type" `Quick test_compare_same_type;
    Alcotest.test_case "compare mixed numerics" `Quick test_compare_mixed_numeric;
    Alcotest.test_case "null sorts first" `Quick test_null_ordering;
    Alcotest.test_case "SQL equality" `Quick test_eq_sql;
    Alcotest.test_case "hash consistency" `Quick test_hash_consistency;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "dates" `Quick test_dates;
    Alcotest.test_case "to_float" `Quick test_to_float;
    Helpers.qtest date_roundtrip ]
