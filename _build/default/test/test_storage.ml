open Adp_relation
open Adp_storage
open Helpers

let ks = keyed_schema "t"

(* ---------------- Hash table ---------------- *)

let test_hash_basic () =
  let h = Hash_table.create ks ~key_cols:[ "t.k" ] in
  Hash_table.insert h [| vi 1; vi 10 |];
  Hash_table.insert h [| vi 1; vi 11 |];
  Hash_table.insert h [| vi 2; vi 20 |];
  Alcotest.(check int) "length" 3 (Hash_table.length h);
  Alcotest.(check int) "distinct" 2 (Hash_table.distinct_keys h);
  Alcotest.(check int) "probe multi" 2 (List.length (Hash_table.probe h [| vi 1 |]));
  Alcotest.(check int) "probe miss" 0 (List.length (Hash_table.probe h [| vi 9 |]))

let test_hash_rehash () =
  let h = Hash_table.create ks ~key_cols:[ "t.k" ] in
  Hash_table.insert h [| vi 1; vi 10 |];
  Hash_table.insert h [| vi 2; vi 10 |];
  let r = Hash_table.rehash h ~key_cols:[ "t.p" ] in
  Alcotest.(check int) "contents kept" 2 (Hash_table.length r);
  Alcotest.(check int) "new key works" 2
    (List.length (Hash_table.probe r [| vi 10 |]))

let test_hash_swap () =
  let h = Hash_table.create ks ~key_cols:[ "t.k" ] in
  Alcotest.(check bool) "in memory" false (Hash_table.swapped h);
  Hash_table.swap_out h;
  Alcotest.(check bool) "swapped" true (Hash_table.swapped h);
  Hash_table.swap_in h;
  Alcotest.(check bool) "back in" false (Hash_table.swapped h)

let hash_model =
  QCheck2.Test.make ~name:"hash table matches assoc model" ~count:100
    (gen_keyed_tuples ~key_range:10 ~max_len:60)
    (fun tuples ->
      let h = Hash_table.create ks ~key_cols:[ "t.k" ] in
      List.iter (Hash_table.insert h) tuples;
      List.for_all
        (fun k ->
          let got = Hash_table.probe h [| vi k |] in
          let want =
            List.filter (fun t -> Value.equal t.(0) (vi k)) tuples
          in
          same_bag got want)
        (List.init 10 Fun.id)
      && Hash_table.length h = List.length tuples
      && same_bag (Hash_table.to_list h) tuples)

(* ---------------- Sorted run ---------------- *)

let test_sorted_run () =
  let r = Sorted_run.create ks ~key_cols:[ "t.k" ] in
  Sorted_run.append r [| vi 1; vi 0 |];
  Sorted_run.append r [| vi 3; vi 0 |];
  Sorted_run.append r [| vi 3; vi 1 |];
  Sorted_run.append r [| vi 7; vi 0 |];
  Alcotest.(check bool) "accepts equal" true (Sorted_run.accepts r [| vi 7; vi 9 |]);
  Alcotest.(check bool) "rejects smaller" false (Sorted_run.accepts r [| vi 2; vi 0 |]);
  Alcotest.check_raises "out of order raises"
    (Invalid_argument "Sorted_run.append: out-of-order insertion") (fun () ->
      Sorted_run.append r [| vi 0; vi 0 |]);
  Alcotest.(check int) "find dups" 2 (List.length (Sorted_run.find r [| vi 3 |]));
  Alcotest.(check int) "range" 3
    (List.length (Sorted_run.range r [| vi 2 |] [| vi 7 |]));
  Alcotest.(check bool) "last key" true
    (Sorted_run.last_key r = Some [| vi 7 |])

let sorted_run_model =
  QCheck2.Test.make ~name:"sorted run find matches filter" ~count:100
    (gen_keyed_tuples ~key_range:15 ~max_len:60)
    (fun tuples ->
      let sorted =
        List.stable_sort (fun a b -> Value.compare a.(0) b.(0)) tuples
      in
      let r = Sorted_run.create ks ~key_cols:[ "t.k" ] in
      List.iter (Sorted_run.append r) sorted;
      List.for_all
        (fun k ->
          same_bag
            (Sorted_run.find r [| vi k |])
            (List.filter (fun t -> Value.equal t.(0) (vi k)) tuples))
        (List.init 15 Fun.id))

(* ---------------- B+ tree ---------------- *)

let test_btree_basics () =
  let b = Btree.create ~fanout:4 ks ~key_cols:[ "t.k" ] in
  for i = 100 downto 1 do
    Btree.insert b [| vi i; vi (i * 10) |]
  done;
  Alcotest.(check int) "length" 100 (Btree.length b);
  Alcotest.(check bool) "balanced & sorted" true (Btree.check_invariants b);
  Alcotest.(check bool) "depth grew" true (Btree.depth b > 1);
  Alcotest.(check int) "find" 1 (List.length (Btree.find b [| vi 42 |]));
  Alcotest.(check int) "find miss" 0 (List.length (Btree.find b [| vi 999 |]));
  Alcotest.(check int) "range" 11
    (List.length (Btree.range b [| vi 20 |] [| vi 30 |]));
  (* In-order iteration. *)
  let keys = List.map (fun t -> t.(0)) (Btree.to_list b) in
  Alcotest.(check bool) "iteration sorted" true
    (keys = List.init 100 (fun i -> vi (i + 1)))

let test_btree_duplicates () =
  let b = Btree.create ~fanout:4 ks ~key_cols:[ "t.k" ] in
  for i = 1 to 20 do
    Btree.insert b [| vi (i mod 3); vi i |]
  done;
  Alcotest.(check int) "dups" 7 (List.length (Btree.find b [| vi 1 |]));
  Alcotest.(check bool) "invariants with dups" true (Btree.check_invariants b)

let btree_model =
  QCheck2.Test.make ~name:"btree matches filter model" ~count:60
    (gen_keyed_tuples ~key_range:50 ~max_len:200)
    (fun tuples ->
      let b = Btree.create ~fanout:5 ks ~key_cols:[ "t.k" ] in
      List.iter (Btree.insert b) tuples;
      Btree.check_invariants b
      && same_bag (Btree.to_list b) tuples
      && List.for_all
           (fun k ->
             same_bag
               (Btree.find b [| vi k |])
               (List.filter (fun t -> Value.equal t.(0) (vi k)) tuples))
           [ 0; 7; 23; 49 ]
      && same_bag
           (Btree.range b [| vi 10 |] [| vi 20 |])
           (List.filter
              (fun t ->
                Value.compare t.(0) (vi 10) >= 0
                && Value.compare t.(0) (vi 20) <= 0)
              tuples))

(* ---------------- Tuple adapter ---------------- *)

let test_adapter () =
  let from = Schema.make [ "t.a"; "t.b"; "t.c" ] in
  let into = Schema.make [ "t.c"; "t.a"; "t.b" ] in
  let ad = Tuple_adapter.create ~from ~into in
  Alcotest.(check bool) "not identity" false (Tuple_adapter.is_identity ad);
  let t = Tuple_adapter.adapt ad [| vi 1; vi 2; vi 3 |] in
  Alcotest.(check bool) "permuted" true (t = [| vi 3; vi 1; vi 2 |]);
  let idad = Tuple_adapter.create ~from ~into:from in
  Alcotest.(check bool) "identity" true (Tuple_adapter.is_identity idad);
  Alcotest.check_raises "different columns"
    (Invalid_argument
       "Tuple_adapter.create: (t.a, t.b, t.c) vs (t.a, t.b)") (fun () ->
      ignore (Tuple_adapter.create ~from ~into:(Schema.make [ "t.a"; "t.b" ])))

let adapter_roundtrip =
  QCheck2.Test.make ~name:"adapter there-and-back is identity" ~count:100
    QCheck2.Gen.(list_size (int_bound 6) small_int)
    (fun payload ->
      let n = List.length payload in
      QCheck2.assume (n > 0);
      let cols = List.init n (fun i -> Printf.sprintf "t.c%d" i) in
      let from = Schema.make cols in
      let into = Schema.make (List.rev cols) in
      let t = Array.of_list (List.map vi payload) in
      let there = Tuple_adapter.adapt (Tuple_adapter.create ~from ~into) t in
      let back =
        Tuple_adapter.adapt (Tuple_adapter.create ~from:into ~into:from) there
      in
      back = t)

(* ---------------- Registry ---------------- *)

let test_registry () =
  let r = Registry.create () in
  let sch = keyed_schema "e" in
  Registry.register r ~signature:"e1" ~phase:0 ~schema:sch ~complexity:2
    [ [| vi 1; vi 2 |]; [| vi 3; vi 4 |] ];
  Registry.register r ~signature:"e1" ~phase:1 ~schema:sch ~complexity:2
    [ [| vi 5; vi 6 |] ];
  Registry.register r ~signature:"e2" ~phase:0 ~schema:sch ~complexity:3 [];
  Alcotest.(check (list int)) "phases_with" [ 0; 1 ]
    (Registry.phases_with r ~signature:"e1");
  (match Registry.find r ~signature:"e1" ~phase:0 with
   | None -> Alcotest.fail "entry missing"
   | Some e ->
     Alcotest.(check int) "cardinality" 2 e.Registry.cardinality;
     Registry.mark_reused e);
  Alcotest.(check int) "reused" 2 (Registry.reused_tuples r);
  Alcotest.(check int) "discarded" 1 (Registry.discarded_tuples r);
  (match Registry.page_out_order r with
   | first :: _ ->
     Alcotest.(check int) "most complex paged first" 3 first.Registry.complexity
   | [] -> Alcotest.fail "empty page-out order");
  Registry.clear r;
  Alcotest.(check int) "cleared" 0 (List.length (Registry.entries r))

let test_registry_complexity_filter () =
  let r = Registry.create () in
  let sch = keyed_schema "e" in
  (* Base-relation buffers (complexity 1) never count as reused/discarded. *)
  Registry.register r ~signature:"leaf" ~phase:0 ~schema:sch ~complexity:1
    [ [| vi 1; vi 2 |] ];
  Alcotest.(check int) "leaf not discarded" 0 (Registry.discarded_tuples r)

(* ---------------- State (unified) ---------------- *)

let test_state_kinds () =
  let check_kind kind =
    let st = State.create kind ks ~key_cols:[ "t.k" ] in
    State.insert st [| vi 1; vi 10 |];
    State.insert st [| vi 2; vi 20 |];
    State.insert st [| vi 2; vi 21 |];
    Alcotest.(check int) "length" 3 (State.length st);
    Alcotest.(check int) "find" 2 (List.length (State.find st [| vi 2 |]));
    Alcotest.(check int) "to_list" 3 (List.length (State.to_list st))
  in
  List.iter check_kind
    [ State.List_buffer; State.Sorted_list; State.Hash; State.Hash_over_sorted;
      State.Btree_index ]

let test_state_properties () =
  let p = State.properties_of State.Sorted_list in
  Alcotest.(check bool) "sorted requires order" true p.State.requires_sorted;
  Alcotest.(check bool) "hash keyed" true
    (State.properties_of State.Hash).State.keyed_access;
  Alcotest.(check bool) "list not keyed" false
    (State.properties_of State.List_buffer).State.keyed_access;
  Alcotest.(check bool) "btree ordered scan" true
    (State.properties_of State.Btree_index).State.ordered_scan;
  (* Order enforcement surfaces through the unified API. *)
  let st = State.create State.Sorted_list ks ~key_cols:[ "t.k" ] in
  State.insert st [| vi 5; vi 0 |];
  Alcotest.(check bool) "rejects out of order" false
    (State.accepts st [| vi 1; vi 0 |]);
  let ordered = State.create State.Btree_index ks ~key_cols:[ "t.k" ] in
  State.insert ordered [| vi 5; vi 0 |];
  State.insert ordered [| vi 1; vi 0 |];
  let keys = List.map (fun t -> t.(0)) (State.to_list ordered) in
  Alcotest.(check bool) "btree scan ordered" true (keys = [ vi 1; vi 5 ])

let suite =
  [ Alcotest.test_case "hash basics" `Quick test_hash_basic;
    Alcotest.test_case "hash rehash" `Quick test_hash_rehash;
    Alcotest.test_case "hash swap flags" `Quick test_hash_swap;
    qtest hash_model;
    Alcotest.test_case "sorted run" `Quick test_sorted_run;
    qtest sorted_run_model;
    Alcotest.test_case "btree basics" `Quick test_btree_basics;
    Alcotest.test_case "btree duplicates" `Quick test_btree_duplicates;
    qtest btree_model;
    Alcotest.test_case "tuple adapter" `Quick test_adapter;
    qtest adapter_roundtrip;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "registry complexity filter" `Quick
      test_registry_complexity_filter;
    Alcotest.test_case "state kinds" `Quick test_state_kinds;
    Alcotest.test_case "state properties" `Quick test_state_properties ]
