(* Shared test utilities: tiny relation builders, a nested-loop join oracle,
   and qcheck generators for random relations. *)

open Adp_relation

let vi i = Value.Int i
let vs s = Value.Str s
let vf f = Value.Float f

let schema cols = Schema.make cols

let rel cols rows =
  Relation.of_list (schema cols) (List.map Array.of_list rows)

(* Multiset equality of tuple lists. *)
let same_bag a b =
  let sort l = List.sort Tuple.compare l in
  List.length a = List.length b
  && List.for_all2 Tuple.equal (sort a) (sort b)

let check_bag msg a b = Alcotest.(check bool) msg true (same_bag a b)

(* Bag equality with relative tolerance on floats — aggregation over floats
   is sensitive to summation order, and the engine and the oracle visit
   tuples in different orders. *)
let value_approx a b =
  match a, b with
  | Value.Float x, Value.Float y ->
    let scale = max 1.0 (max (Float.abs x) (Float.abs y)) in
    Float.abs (x -. y) /. scale < 1e-9
  | _ -> Value.equal a b

let tuple_approx a b =
  Array.length a = Array.length b
  &&
  let ok = ref true in
  Array.iteri (fun i v -> if not (value_approx v b.(i)) then ok := false) a;
  !ok

let approx_same_bag a b =
  let sort l = List.sort Tuple.compare l in
  List.length a = List.length b
  && List.for_all2 tuple_approx (sort a) (sort b)

let approx_same_relations a b =
  approx_same_bag (Relation.to_list a) (Relation.to_list b)

let check_approx_rel msg a b =
  Alcotest.(check bool) msg true (approx_same_relations a b)

(* Nested-loop equi-join oracle: left ⋈ right on (li, ri) index pairs. *)
let oracle_join left right ~on =
  List.concat_map
    (fun l ->
      List.filter_map
        (fun r ->
          if List.for_all (fun (li, ri) -> Value.eq_sql l.(li) r.(ri)) on then
            Some (Tuple.concat l r)
          else None)
        right)
    left

(* qcheck generator: list of (k, payload) tuples with keys in [0, key_range). *)
let gen_keyed_tuples ~key_range ~max_len =
  QCheck2.Gen.(
    list_size (int_bound max_len)
      (pair (int_bound (key_range - 1)) (int_bound 1000))
    |> map
         (List.map (fun (k, p) -> [| Value.Int k; Value.Int p |])))

let keyed_schema prefix =
  Schema.make [ prefix ^ ".k"; prefix ^ ".p" ]

let qtest = QCheck_alcotest.to_alcotest
