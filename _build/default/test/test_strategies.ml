(* End-to-end strategy tests: every strategy must agree with the naive
   reference evaluator on real workloads, and corrective query processing
   must actually switch plans when fed misleading statistics. *)

open Adp_relation
open Adp_exec
open Adp_optimizer
open Adp_core
open Adp_query
open Adp_datagen
open Helpers

let dataset =
  Tpch.generate { Tpch.scale = 0.002; distribution = Tpch.Uniform; seed = 11 }

let skewed_dataset =
  Tpch.generate { Tpch.scale = 0.002; distribution = Tpch.Skewed 0.5; seed = 11 }

let strategies =
  [ "static", Strategy.Static;
    "corrective",
    Strategy.Corrective
      { Corrective.default_config with poll_interval = 2e4 };
    "plan-partitioned", Strategy.Plan_partitioned { break_after = 3 };
    "competitive",
    Strategy.Competitive { candidates = 2; explore_budget = 2e4 };
    "eddy", Strategy.Eddying ]

let check_query ?(ds = dataset) ?(with_cardinalities = false) q_id =
  let q = Workload.query q_id in
  let catalog = Workload.catalog ~with_cardinalities ds q in
  let sources () = Workload.sources ds q () in
  let want = Strategy.reference q catalog ~sources in
  List.iter
    (fun (label, strat) ->
      let o = Strategy.run ~label strat q catalog ~sources in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s matches reference" (Workload.name q_id) label)
        true
        (approx_same_relations o.Strategy.result want))
    strategies

let test_q3a () = check_query Workload.Q3A
let test_q3_dates () = check_query Workload.Q3
let test_q10 () = check_query Workload.Q10
let test_q10a_skewed () = check_query ~ds:skewed_dataset Workload.Q10A
let test_q5 () = check_query Workload.Q5
let test_q5_with_cards () = check_query ~with_cardinalities:true Workload.Q5

let test_flights_example () =
  let d =
    Flights.generate
      { Flights.default_config with n_flights = 300; n_travelers = 200 }
  in
  let q = Workload.flights_query in
  let catalog = Workload.flights_catalog d in
  let sources () = Workload.flights_sources d () in
  let want = Strategy.reference q catalog ~sources in
  List.iter
    (fun (label, strat) ->
      let o = Strategy.run ~label strat q catalog ~sources in
      Alcotest.(check bool)
        (Printf.sprintf "flights/%s matches reference" label)
        true
        (approx_same_relations o.Strategy.result want))
    strategies

let test_preagg_strategies_agree () =
  let q = Workload.query Workload.Q3A in
  let catalog = Workload.catalog dataset q in
  let sources () = Workload.sources dataset q () in
  let want = Strategy.reference q catalog ~sources in
  List.iter
    (fun preagg ->
      let o = Strategy.run ~preagg Strategy.Static q catalog ~sources in
      Alcotest.(check bool) "preagg result matches" true
        (approx_same_relations o.Strategy.result want))
    [ Optimizer.Auto; Optimizer.Force Plan.Traditional;
      Optimizer.Force Plan.Pseudogroup;
      Optimizer.Force (Plan.Windowed { initial = 16; max_window = 4096 }) ]

(* A scenario engineered to force corrective switching: the catalog lies —
   it claims the multiplying relation is tiny and the selective one huge,
   so the optimizer starts with the bad plan and must correct. *)
let forced_switch_setup () =
  let rng = Prng.create 99 in
  let f =
    List.init 3000 (fun _ ->
        [| vi (1 + Prng.int rng 40); vi (1 + Prng.int rng 40); vi 1 |])
  in
  (* "bad" has 40 key values, each duplicated 50 times: f ⋈ bad multiplies
     50x.  "good" is a real key table. *)
  let bad =
    List.concat_map
      (fun k -> List.init 50 (fun i -> [| vi (k + 1); vi i |]))
      (List.init 40 Fun.id)
  in
  let good = List.init 40 (fun i -> [| vi (i + 1); vi i |]) in
  let f_schema = Schema.make [ "f.k1"; "f.k2"; "f.v" ] in
  let bad_schema = Schema.make [ "bad.k"; "bad.w" ] in
  let good_schema = Schema.make [ "good.k"; "good.w" ] in
  let q =
    { Logical.sources =
        [ { Logical.name = "f"; filter = Predicate.tt };
          { Logical.name = "bad"; filter = Predicate.tt };
          { Logical.name = "good"; filter = Predicate.tt } ];
      join_preds = [ "f.k1", "bad.k"; "f.k2", "good.k" ];
      group_cols = []; aggs = []; projection = [] }
  in
  let catalog = Catalog.create () in
  Catalog.add catalog "f"
    { Catalog.schema = f_schema; cardinality = Some 3000.0; key = None };
  (* The lie: "bad" is declared a tiny key table, "good" a huge one. *)
  Catalog.add catalog "bad"
    { Catalog.schema = bad_schema; cardinality = Some 10.0; key = Some "bad.k" };
  Catalog.add catalog "good"
    { Catalog.schema = good_schema; cardinality = Some 100000.0;
      key = Some "good.k" };
  let sources () =
    [ Source.create ~name:"f" (Relation.of_list f_schema f) Source.Local;
      Source.create ~name:"bad" (Relation.of_list bad_schema bad) Source.Local;
      Source.create ~name:"good" (Relation.of_list good_schema good) Source.Local ]
  in
  q, catalog, sources

let test_corrective_switches () =
  let q, catalog, sources = forced_switch_setup () in
  let want = Strategy.reference q catalog ~sources in
  let cfg =
    { Corrective.default_config with
      poll_interval = 5e3; switch_threshold = 0.9; min_leaf_seen = 50 }
  in
  let o = Strategy.run ~label:"forced" (Strategy.Corrective cfg) q catalog ~sources in
  Alcotest.(check bool) "result correct despite switching" true
    (approx_same_relations o.Strategy.result want);
  match o.Strategy.corrective_stats with
  | None -> Alcotest.fail "expected corrective stats"
  | Some stats ->
    Alcotest.(check bool)
      (Printf.sprintf "switched at least once (phases=%d)" stats.Corrective.phases)
      true (stats.Corrective.phases >= 2);
    Alcotest.(check bool) "stitch-up did work" true
      (stats.Corrective.stitch.Stitchup.combos_possible > 0);
    (* The phase log accounts for every source tuple exactly once. *)
    let total_read =
      List.fold_left
        (fun acc (p : Corrective.phase_info) -> acc + p.Corrective.read)
        0 stats.Corrective.phase_log
    in
    Alcotest.(check int) "all tuples read once" (3000 + 2000 + 40) total_read

(* CQP composed with pre-aggregation: phases emit *partial* tuples, the
   leaf partitions visible to stitch-up are pre-aggregated, and the shared
   sink coalesces partials from every phase and from stitch-up.  The paper
   defers the combined numbers to [16] but the mechanism must compose. *)
let test_corrective_with_preagg_switches () =
  let ds = Tpch.generate { Tpch.scale = 0.004; distribution = Tpch.Uniform; seed = 3 } in
  let q = Workload.query Workload.Q3A in
  let catalog = Workload.catalog ~with_cardinalities:true ds q in
  let sources () = Workload.sources ds q () in
  let want = Strategy.reference q catalog ~sources in
  let sels = Adp_stats.Selectivity.create () in
  let bad = (Optimizer.pessimal q catalog sels).Optimizer.spec in
  (* Re-apply the windowed pre-aggregation to the forced bad plan the same
     way the optimizer would, so every phase and the stitch-up agree. *)
  let preagg = Optimizer.Auto in
  let cfg =
    { Corrective.default_config with
      poll_interval = 5e3; switch_threshold = 0.95; min_leaf_seen = 100 }
  in
  let o =
    Strategy.run ~preagg ~label:"cqp+preagg" ~initial_plan:bad
      (Strategy.Corrective cfg) q catalog ~sources
  in
  Alcotest.(check bool) "cqp + preagg matches reference" true
    (approx_same_relations o.Strategy.result want);
  match o.Strategy.corrective_stats with
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "switched from the bad plan (phases=%d)" s.Corrective.phases)
      true (s.Corrective.phases >= 2)
  | None -> Alcotest.fail "expected corrective stats"

let test_corrective_memory_budget () =
  (* Interleaved streams keep probing the structures that memory pressure
     paged out, so the swap penalty must show up in the virtual time while
     the answer stays exact.  switch_threshold 0 pins the plan. *)
  let q = Workload.query Workload.Q3A in
  let catalog = Workload.catalog ~with_cardinalities:true dataset q in
  let sources () = Workload.sources dataset q () in
  let want = Strategy.reference q catalog ~sources in
  let run budget =
    let cfg =
      { Corrective.default_config with
        poll_interval = 2e3; switch_threshold = 0.0; memory_budget = budget }
    in
    Strategy.run ~label:"mem" (Strategy.Corrective cfg) q catalog ~sources
  in
  let unconstrained = run None in
  let constrained = run (Some 200) in
  Alcotest.(check bool) "constrained result still exact" true
    (approx_same_relations constrained.Strategy.result want);
  Alcotest.(check bool) "paging costs time" true
    (constrained.Strategy.report.Report.time_s
     > unconstrained.Strategy.report.Report.time_s)

let test_plan_partition_stages () =
  let q = Workload.query Workload.Q5 in
  let catalog = Workload.catalog dataset q in
  let sources = Workload.sources dataset q in
  let result, stats =
    Plan_partition.run ~break_after:3 q catalog (sources ())
  in
  Alcotest.(check int) "two stages on 6 relations" 2 stats.Plan_partition.stages;
  Alcotest.(check bool) "materialized something" true
    (stats.Plan_partition.materialized_card > 0);
  let want = Strategy.reference q catalog ~sources in
  Alcotest.(check bool) "plan partitioning correct" true
    (approx_same_relations result want)

let test_competition_details () =
  let q = Workload.query Workload.Q3A in
  let catalog = Workload.catalog dataset q in
  let sources = Workload.sources dataset q in
  let _, stats =
    Competition.run ~candidates:3 ~explore_budget:3e4 q catalog ~sources
  in
  Alcotest.(check bool) "winner in range" true
    (stats.Competition.winner >= 0
    && stats.Competition.winner < stats.Competition.candidates);
  Alcotest.(check bool) "explore time recorded" true
    (stats.Competition.explore_time > 0.0)

(* Paper's Figure 2, "Adaptive - Cardinalities" vs "Static - Cardinalities":
   when estimates are right, corrective processing must cost only its
   re-optimization overhead — it must not churn through needless switches
   (a regression we hit when observed selectivities were extrapolated
   multiplicatively over aligned sorted prefixes). *)
let test_adaptivity_harmless_with_good_estimates () =
  List.iter
    (fun qid ->
      let q = Workload.query qid in
      let catalog = Workload.catalog ~with_cardinalities:true dataset q in
      let sources () = Workload.sources dataset q () in
      let static = Strategy.run ~label:"s" Strategy.Static q catalog ~sources in
      let adaptive =
        Strategy.run ~label:"a"
          (Strategy.Corrective
             { Corrective.default_config with poll_interval = 5e3 })
          q catalog ~sources
      in
      let s = static.Strategy.report.Report.time_s in
      let a = adaptive.Strategy.report.Report.time_s in
      Alcotest.(check bool)
        (Printf.sprintf "%s: adaptive (%.3fs) within 30%% of static (%.3fs)"
           (Workload.name qid) a s)
        true
        (a <= 1.3 *. s))
    Workload.evaluated

let test_histogram_assisted_corrective () =
  (* The §4.5 extension must stay correct and keep switching. *)
  let q = Workload.query Workload.Q3A in
  let catalog = Workload.catalog ~with_cardinalities:false dataset q in
  let sources () = Workload.sources dataset q () in
  let want = Strategy.reference q catalog ~sources in
  let sels = Adp_stats.Selectivity.create () in
  let true_catalog = Workload.catalog ~with_cardinalities:true dataset q in
  let bad = (Optimizer.pessimal q true_catalog sels).Optimizer.spec in
  let cfg =
    { Corrective.default_config with
      poll_interval = 5e3; use_histograms = true; min_leaf_seen = 100 }
  in
  let o =
    Strategy.run ~label:"hist" ~initial_plan:bad (Strategy.Corrective cfg) q
      catalog ~sources
  in
  Alcotest.(check bool) "histogram-assisted result exact" true
    (approx_same_relations o.Strategy.result want)

let test_plan_partition_with_initial_plan () =
  (* Forcing the poor starting plan: for a 4-relation query the single
     stage IS that plan; for Q5 the first stage cuts it after 3 joins. *)
  let q = Workload.query Workload.Q5 in
  let catalog = Workload.catalog dataset q in
  let sources = Workload.sources dataset q in
  let sels = Adp_stats.Selectivity.create () in
  let true_catalog = Workload.catalog ~with_cardinalities:true dataset q in
  let bad = (Optimizer.pessimal q true_catalog sels).Optimizer.spec in
  let result, stats =
    Plan_partition.run ~break_after:3 ~initial_plan:bad q catalog (sources ())
  in
  Alcotest.(check int) "two stages" 2 stats.Plan_partition.stages;
  let want = Strategy.reference q catalog ~sources in
  Alcotest.(check bool) "correct from poor start" true
    (approx_same_relations result want)

let test_sink_adapts_schemas () =
  (* Feeding the sink under two column orders must agree. *)
  let ctx = Ctx.create () in
  let q =
    { Logical.sources = [ { Logical.name = "r"; filter = Predicate.tt } ];
      join_preds = []; group_cols = []; aggs = []; projection = [] }
  in
  let canonical = Schema.make [ "r.a"; "r.b" ] in
  let sink = Sink.create ctx q ~canonical in
  Sink.feed sink ~from:canonical [ [| vi 1; vi 2 |] ];
  Sink.feed sink ~from:(Schema.make [ "r.b"; "r.a" ]) [ [| vi 20; vi 10 |] ];
  check_bag "adapted"
    (Relation.to_list (Sink.result sink))
    [ [| vi 1; vi 2 |]; [| vi 10; vi 20 |] ]

let test_rewrite () =
  let f c = "m." ^ c in
  let e = Rewrite.expr f Expr.(Add (col "a", int 1)) in
  Alcotest.(check string) "expr renamed" "(m.a + 1)" (Expr.to_string e);
  let p =
    Rewrite.predicate f Predicate.(eq "a" (vi 1) &&& between "b" (vi 0) (vi 9))
  in
  Alcotest.(check (list string)) "pred renamed" [ "m.a"; "m.b" ]
    (Predicate.columns p)

let suite =
  [ Alcotest.test_case "Q3A all strategies" `Slow test_q3a;
    Alcotest.test_case "Q3 (with dates) all strategies" `Slow test_q3_dates;
    Alcotest.test_case "Q10 all strategies" `Slow test_q10;
    Alcotest.test_case "Q10A skewed all strategies" `Slow test_q10a_skewed;
    Alcotest.test_case "Q5 all strategies" `Slow test_q5;
    Alcotest.test_case "Q5 with cardinalities" `Slow test_q5_with_cards;
    Alcotest.test_case "flights example" `Slow test_flights_example;
    Alcotest.test_case "preagg strategies agree" `Slow
      test_preagg_strategies_agree;
    Alcotest.test_case "corrective actually switches" `Quick
      test_corrective_switches;
    Alcotest.test_case "corrective + preagg across phases" `Slow
      test_corrective_with_preagg_switches;
    Alcotest.test_case "corrective under memory pressure" `Quick
      test_corrective_memory_budget;
    Alcotest.test_case "adaptivity harmless with good estimates" `Slow
      test_adaptivity_harmless_with_good_estimates;
    Alcotest.test_case "histogram-assisted corrective" `Slow
      test_histogram_assisted_corrective;
    Alcotest.test_case "plan partitioning from poor start" `Slow
      test_plan_partition_with_initial_plan;
    Alcotest.test_case "plan partitioning stages" `Slow
      test_plan_partition_stages;
    Alcotest.test_case "competition details" `Quick test_competition_details;
    Alcotest.test_case "sink adapts schemas" `Quick test_sink_adapts_schemas;
    Alcotest.test_case "rewrite helpers" `Quick test_rewrite ]
