module Diagnostic = Adp_analysis.Diagnostic
module Crash = Adp_recovery.Crash

type directive =
  | Submit of {
      qid : string;
      spec : string;
      klass : string option;
      deadline_s : float option;
    }
  | Kill of { qid : string; point : Crash.point }
  | Cancel of string
  | Drain

type t = (float * directive) list

let pp_directive ppf = function
  | Submit { qid; spec; klass; deadline_s } ->
    Format.fprintf ppf "submit %s%s%s %s" qid
      (match klass with Some c -> " class=" ^ c | None -> "")
      (match deadline_s with
       | Some d -> Printf.sprintf " deadline=%g" d
       | None -> "")
      spec
  | Kill { qid; point } ->
    Format.fprintf ppf "kill %s %a" qid Crash.pp_point point
  | Cancel qid -> Format.fprintf ppf "cancel %s" qid
  | Drain -> Format.fprintf ppf "drain"

let is_qid s =
  s <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

let parse_point s =
  let prefixed p =
    if String.length s > String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match prefixed "tuples:" with
  | Some n -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Some (Crash.After_tuples n)
    | _ -> None)
  | None -> (
    match prefixed "phase:" with
    | Some k -> (
      match int_of_string_opt k with
      | Some k when k >= 0 -> Some (Crash.At_phase_boundary k)
      | _ -> None)
    | None -> if s = "stitchup" then Some Crash.During_stitchup else None)

(* Split on runs of spaces/tabs. *)
let tokens line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun s -> s <> "")

let parse ?(file = "<script>") text =
  let diags = ref [] in
  let err ~code ~line fmt =
    Format.kasprintf
      (fun msg ->
        diags :=
          Diagnostic.error ~code ~path:(Printf.sprintf "%s:%d" file line) msg
          :: !diags)
      fmt
  in
  let directives = ref [] in
  let submitted = Hashtbl.create 16 in
  let referenced = ref [] in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let body =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      if String.trim body = "" then ()
      else begin
        match tokens body with
        | "at" :: time :: rest -> (
          match float_of_string_opt time with
          | None ->
            err ~code:"script-bad-time" ~line
              "bad virtual timestamp %S (want a finite number of seconds >= 0)"
              time
          | Some at when not (Float.is_finite at) || at < 0.0 ->
            err ~code:"script-bad-time" ~line
              "bad virtual timestamp %S (want a finite number of seconds >= 0)"
              time
          | Some at -> (
            match rest with
            | "submit" :: qid :: spec when spec <> [] ->
              if not (is_qid qid) then
                err ~code:"script-bad-qid" ~line
                  "bad query id %S (letters, digits, '_', '-')" qid
              else if Hashtbl.mem submitted qid then
                err ~code:"script-duplicate-qid" ~line
                  "query id %S submitted twice" qid
              else begin
                (* Optional governance tokens sit between the qid and the
                   query text: class=<name>, deadline=<seconds>. *)
                let opt prefix tok =
                  let pl = String.length prefix in
                  if String.length tok > pl && String.sub tok 0 pl = prefix
                  then Some (String.sub tok pl (String.length tok - pl))
                  else None
                in
                let klass = ref None and deadline_s = ref None in
                let ok = ref true in
                let rec peel = function
                  | tok :: tl as all -> (
                    match opt "class=" tok with
                    | Some c ->
                      if is_qid c then klass := Some c
                      else begin
                        ok := false;
                        err ~code:"script-bad-class" ~line
                          "bad priority class %S (letters, digits, '_', '-')"
                          c
                      end;
                      peel tl
                    | None -> (
                      match opt "deadline=" tok with
                      | Some d -> (
                        (match float_of_string_opt d with
                         | Some d when Float.is_finite d && d > 0.0 ->
                           deadline_s := Some d
                         | Some _ | None ->
                           ok := false;
                           err ~code:"script-bad-deadline" ~line
                             "bad deadline %S (want a finite number of \
                              seconds > 0)"
                             d);
                        peel tl)
                      | None -> all))
                  | [] -> []
                in
                let spec = peel spec in
                if spec = [] then
                  err ~code:"script-syntax" ~line
                    "submit wants: at <seconds> submit <qid> [class=<name>] \
                     [deadline=<seconds>] <query>"
                else if !ok then begin
                  Hashtbl.replace submitted qid ();
                  directives :=
                    ( at,
                      Submit
                        { qid; spec = String.concat " " spec;
                          klass = !klass; deadline_s = !deadline_s } )
                    :: !directives
                end
              end
            | "submit" :: _ ->
              err ~code:"script-syntax" ~line
                "submit wants: at <seconds> submit <qid> <query>"
            | [ "kill"; qid; point ] -> (
              referenced := (qid, line) :: !referenced;
              match parse_point point with
              | Some p -> directives := (at, Kill { qid; point = p }) :: !directives
              | None ->
                err ~code:"script-bad-point" ~line
                  "bad crash point %S (want tuples:<n>, phase:<k> or stitchup)"
                  point)
            | [ "cancel"; qid ] ->
              referenced := (qid, line) :: !referenced;
              directives := (at, Cancel qid) :: !directives
            | [ "drain" ] -> directives := (at, Drain) :: !directives
            | verb :: _ ->
              err ~code:"script-syntax" ~line "unknown directive %S" verb
            | [] ->
              err ~code:"script-syntax" ~line
                "missing directive after the timestamp"))
        | _ ->
          err ~code:"script-syntax" ~line
            "every directive starts with: at <seconds> ..."
      end)
    (String.split_on_char '\n' text);
  List.iter
    (fun (qid, line) ->
      if not (Hashtbl.mem submitted qid) then
        err ~code:"script-unknown-qid" ~line
          "query id %S is never submitted in this script" qid)
    (List.rev !referenced);
  match List.rev !diags with
  | [] ->
    Ok
      (List.stable_sort
         (fun (a, _) (b, _) -> Float.compare a b)
         (List.rev !directives))
  | diags -> Error diags

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse ~file:path text
  | exception Sys_error msg ->
    Error [ Diagnostic.error ~code:"script-io-error" ~path msg ]
