module Diagnostic = Adp_analysis.Diagnostic

(** Adaptive dispatcher polling (after solid_queue's dispatcher): the
    poll interval stretches multiplicatively while polls come back empty
    and shrinks while they find work, with the shrink rate damped by a
    sliding window of recent poll results so one lucky poll cannot slam
    the interval to the floor.

    The controller is pure state-machine arithmetic over whatever time
    unit the caller uses (the server feeds it virtual µs): it never reads
    a clock, so a fixed sequence of poll results always produces the same
    interval sequence — which is what the qcheck determinism property
    pins down. *)

type config = {
  min_interval : float;  (** floor; the interval under sustained load *)
  max_interval : float;  (** ceiling; the interval when fully idle *)
  backoff : float;  (** stretch factor per empty poll (>= 1) *)
  speedup : float;
      (** full shrink factor per busy poll (0 < s <= 1), reached only
          when the whole window is busy *)
  window : int;  (** sliding window of recent poll results (>= 1) *)
}

(** 0.01 s floor, 1 s ceiling, stretch 1.5, shrink 0.7, window 8 —
    solid_queue's shape, scaled to the virtual-µs clock. *)
val default : config

(** All knob problems at once, with stable [poll-*] codes. *)
val validate : config -> Diagnostic.t list

type t

(** Fresh controller at [max_interval] (an idle server should not
    thrash; the first busy poll starts pulling it down).
    @raise Diagnostic.Failed on invalid knobs. *)
val create : config -> t

(** Current interval. *)
val interval : t -> float

(** [record t ~found] feeds one poll result (how many ready jobs the
    poll observed) and returns the new interval.  Empty polls stretch
    monotonically toward [max_interval]; busy polls shrink toward
    [min_interval] by [speedup ^ (busy fraction of the window)], so a
    single busy poll moves the interval by at most a [speedup] factor
    and sustained load converges to the floor. *)
val record : t -> found:int -> float
