module Diagnostic = Adp_analysis.Diagnostic
module Crash = Adp_recovery.Crash

(** Script-driven server workloads: a text file of timestamped
    directives, one per line, driving [tukwila serve] deterministically.

    Grammar (blank lines and [#] comments ignored):
    {v
    at <seconds> submit <qid> [class=<name>] [deadline=<seconds>] <query>
    at <seconds> kill <qid> tuples:<n> | phase:<k> | stitchup
    at <seconds> cancel <qid>
    at <seconds> drain
    v}

    [<seconds>] is server virtual time.  [<query>] is the rest of the
    line: a bundled workload name (Q3, Q10A, ...) or a SQL text —
    whatever the server's resolver accepts.  [class=] names the
    admission priority class the server must know (its quotas bound
    each class's share of the queue); [deadline=] is a per-query budget
    in virtual seconds from submission — queued work whose deadline has
    already passed is shed instead of dispatched, and a dispatched
    query degrades to a partial answer when the deadline hits
    mid-execution.  [kill] arms a deterministic {!Adp_recovery.Crash}
    point for the named query's worker; [drain] stops admissions,
    letting accepted work finish. *)

type directive =
  | Submit of {
      qid : string;
      spec : string;
      klass : string option;  (** admission priority class *)
      deadline_s : float option;  (** budget from submission, seconds *)
    }
  | Kill of { qid : string; point : Crash.point }
  | Cancel of string
  | Drain

(** Directives sorted by time; equal times keep file order. *)
type t = (float * directive) list

val pp_directive : Format.formatter -> directive -> unit

(** Parse a script text.  Every problem is reported at once as
    diagnostics with stable [script-*] codes ([script-syntax],
    [script-bad-time], [script-bad-qid], [script-bad-point],
    [script-bad-class], [script-bad-deadline], [script-duplicate-qid],
    [script-unknown-qid]); the path of each is [<file>:<line>]. *)
val parse : ?file:string -> string -> (t, Diagnostic.t list) result

(** {!parse} on a file's contents ([script-io-error] when unreadable). *)
val parse_file : string -> (t, Diagnostic.t list) result
