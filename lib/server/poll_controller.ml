module Diagnostic = Adp_analysis.Diagnostic

type config = {
  min_interval : float;
  max_interval : float;
  backoff : float;
  speedup : float;
  window : int;
}

let default =
  { min_interval = 1e4; max_interval = 1e6; backoff = 1.5; speedup = 0.7;
    window = 8 }

let validate cfg =
  let bad fmt = Diagnostic.errorf ~path:"poll" fmt in
  List.concat
    [ (if cfg.min_interval > 0.0 && Float.is_finite cfg.min_interval then []
       else
         [ bad ~code:"poll-bad-min" "min_interval must be finite and > 0 (got %g)"
             cfg.min_interval ]);
      (if cfg.max_interval >= cfg.min_interval
          && Float.is_finite cfg.max_interval
       then []
       else
         [ bad ~code:"poll-bad-max"
             "max_interval must be finite and >= min_interval (got %g)"
             cfg.max_interval ]);
      (if cfg.backoff >= 1.0 && Float.is_finite cfg.backoff then []
       else
         [ bad ~code:"poll-bad-backoff" "backoff must be >= 1 (got %g)"
             cfg.backoff ]);
      (if cfg.speedup > 0.0 && cfg.speedup <= 1.0 then []
       else
         [ bad ~code:"poll-bad-speedup"
             "speedup must be in (0, 1] (got %g)" cfg.speedup ]);
      (if cfg.window >= 1 then []
       else [ bad ~code:"poll-bad-window" "window must be >= 1 (got %d)"
                cfg.window ]) ]

type t = {
  cfg : config;
  mutable current : float;
  mutable recent : bool list;  (* newest first, at most [window] entries *)
}

let create cfg =
  Diagnostic.raise_if_errors ~where:"poll-controller" (validate cfg);
  { cfg; current = cfg.max_interval; recent = [] }

let interval t = t.current

let rec take n = function
  | x :: tl when n > 0 -> x :: take (n - 1) tl
  | _ -> []

let record t ~found =
  let busy = found > 0 in
  t.recent <- take t.cfg.window (busy :: t.recent);
  let next =
    if busy then begin
      let busy_n = List.length (List.filter Fun.id t.recent) in
      let frac = float_of_int busy_n /. float_of_int t.cfg.window in
      Float.max t.cfg.min_interval (t.current *. (t.cfg.speedup ** frac))
    end
    else Float.min t.cfg.max_interval (t.current *. t.cfg.backoff)
  in
  t.current <- next;
  next
