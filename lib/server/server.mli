open Adp_relation
open Adp_exec
open Adp_optimizer
module Corrective = Adp_core.Corrective
module Diagnostic = Adp_analysis.Diagnostic

(** The multi-query server: a durable query queue, a supervised worker
    pool executing queries through {!Adp_core.Strategy}, an adaptive
    dispatcher ({!Poll_controller}), and checkpoint-backed recovery from
    deterministic worker kills.

    The server is a discrete-event simulation over its own virtual clock
    (µs, reported in seconds), entirely separate from each query's
    virtual clock: directives, dispatcher polls, worker completions and
    supervisor detections are events; a worker "runs" a query by
    executing it through the ordinary corrective entry point and
    scheduling its completion at [start + virtual duration].  Everything
    that moves the server clock derives from the script, the knobs and
    the queries' own virtual durations — never from tracing or metrics —
    so the zero-perturbation contract extends to the whole serve run.

    {b Lifecycle.}  queued -> running -> done | failed | cancelled, plus
    the admission outcome rejected (bounded queue or draining).  A killed
    worker misses heartbeats; the supervisor declares it dead at
    [last heartbeat + heartbeat_timeout], reclaims the query, spawns a
    replacement worker and requeues the query with exponential backoff —
    resuming from its last checkpoint as a forced phase switch, so the
    final result multiset equals an uninterrupted run's.  A query that
    exhausts [max_retries] reclaims is failed.

    {b Cross-query adaptation.}  Completed queries publish everything
    their monitor observed into a shared {!Adp_stats.Selectivity} store
    keyed by node signature; each attempt starts seeded with a snapshot
    of the store, so later queries optimize their initial plans with
    earlier queries' evidence (publication happens at completion events,
    keeping causality deterministic). *)

type config = {
  workers : int;  (** pool size (>= 1) *)
  queue_capacity : int;  (** admission bound on waiting queries *)
  poll : Poll_controller.config;  (** dispatcher knobs, virtual µs *)
  heartbeat_interval : float;  (** worker heartbeat period, virtual µs *)
  heartbeat_timeout : float;
      (** silence after which the supervisor declares a worker dead
          (>= heartbeat_interval) *)
  max_retries : int;  (** reclaims tolerated per query before failing it *)
  retry_backoff : float;
      (** requeue delay after the first reclaim, virtual µs; doubles per
          subsequent reclaim of the same query *)
  checkpoint_dir : string;  (** root; each query checkpoints in a subdir *)
  checkpoint_every : int;
      (** tuple-count checkpoint trigger for worker runs (0 = phase
          boundaries only) *)
  class_quotas : (string * int) list;
      (** priority-aware admission: each class's maximum share of the
          waiting queue, in priority order (earlier = dispatched first;
          unclassified work dispatches last and is bounded only by
          [queue_capacity]).  Submitting under a class not listed here is
          rejected ([unknown-class:<name>]); exceeding a class's quota is
          rejected ([class-quota:<name>]) even when the global queue has
          room, so one chatty class cannot crowd out the others *)
  memory_budget : int option;
      (** global tuple budget partitioned evenly across the pool: every
          worker run executes under [budget / workers] as its paging
          budget, so co-resident queries cannot collectively exceed the
          server's memory *)
  corrective : Corrective.config;
      (** template for worker runs; the server supplies checkpoint,
          resume, crash, stats-seed, trace and metrics per attempt *)
  trace : Adp_obs.Trace.t;
      (** server trace sink: worker spawn/death/reclaim, poll-interval
          moves and admission decisions, plus every kept attempt's inner
          events re-stamped onto the server clock *)
  metrics : Adp_obs.Metrics.t option;
      (** registry for the queue-depth/poll-interval gauges, per-outcome
          counters, and every worker run's cells scoped by
          [("query", qid)] *)
  telemetry : Adp_obs.Timeseries.t option;
      (** when present (and [metrics] is too), the dispatcher samples
          every registry cell into the recorder at each poll, records
          query span transitions and warm-start provenance, and
          evaluates the recorder's SLO objectives — emitting
          [Slo_violation]/[Slo_recovered] trace events and bumping the
          [adp_slo_*] cells on transitions.  Sampling only reads; the
          serve stays bit-identical to an untelemetered one *)
  telemetry_wall : bool;
      (** attach a {!Adp_obs.Wallclock} shadow to each telemetry sample.
          Off by default: wall shadows make the exported JSONL
          non-reproducible byte-for-byte across serves *)
}

val default_config : checkpoint_dir:string -> config

(** All knob problems at once ([server-*] and [poll-*] codes). *)
val validate : config -> Diagnostic.t list

(** What a submitted query spec resolves to.  [r_sources] is a factory:
    every attempt re-reads the sources from the start (positions are
    restored from the checkpoint on resume). *)
type resolved = {
  r_query : Logical.query;
  r_catalog : Catalog.t;
  r_sources : unit -> Source.t list;
}

(** Resolve a script's query spec (workload name or SQL).  May raise
    {!Diagnostic.Failed}; the server records the failure as the query's
    outcome instead of crashing. *)
type resolver = string -> resolved

type outcome =
  | Done of { result : Relation.t; stats : Corrective.stats }
  | Failed of string
  | Cancelled
  | Rejected of string

type query_report = {
  qr_id : string;
  qr_spec : string;
  qr_class : string option;  (** admission priority class *)
  qr_deadline_s : float option;
      (** deadline in server virtual seconds (absolute), when one was
          submitted *)
  qr_outcome : outcome;
  qr_submitted_s : float;  (** server virtual seconds *)
  qr_finished_s : float;
  qr_attempts : int;  (** executions started (1 = never interrupted) *)
  qr_warm_signatures : int;
      (** shared-store selectivity signatures matching this query's
          subexpressions when its first attempt started *)
  qr_warm_plan_changed : bool;
      (** would the optimizer have picked a different initial plan
          without the inherited evidence? *)
}

type report = {
  r_queries : query_report list;  (** submission order *)
  r_done : int;
  r_failed : int;
  r_cancelled : int;
  r_rejected : int;
  r_shed : int;
      (** queued queries dropped at a dispatcher poll because their
          deadline had already passed (counted among [r_rejected]) *)
  r_workers_spawned : int;  (** initial pool + replacements *)
  r_workers_died : int;
  r_reclaims : int;
  r_polls : int;
  r_busy_polls : int;
  r_min_interval_s : float;  (** smallest dispatcher interval reached *)
  r_max_interval_s : float;  (** largest dispatcher interval reached *)
  r_finished_s : float;  (** server virtual time at quiescence *)
  r_shared_signatures : int;
      (** selectivity entries in the shared store at shutdown *)
}

(** Run a workload script to quiescence.
    @raise Diagnostic.Failed on invalid knobs. *)
val run : config -> resolver -> Script.t -> report

(** Resolver over a generated TPC-H dataset: bundled workload names
    (Q3, Q3A, Q10, Q10A, Q5) or SQL over the TPC-H schema.
    [with_cardinalities] defaults to [false] — the serve story is the
    paper's no-statistics regime, where inherited selectivities matter
    most. *)
val tpch_resolver :
  ?with_cardinalities:bool -> ?seed:int -> Adp_datagen.Tpch.t -> resolver

(** {2 Report rendering}

    A [view] is the JSON-safe projection of a {!report} (outcome names
    and cardinalities instead of result relations): what [tukwila serve]
    writes with [--report] and [tukwila server-report] renders back. *)

type query_view = {
  v_id : string;
  v_spec : string;
  v_class : string;  (** admission priority class ("" = unclassified) *)
  v_deadline_s : float;  (** absolute server deadline (0 = none) *)
  v_outcome : string;  (** "done" | "failed" | "cancelled" | "rejected" *)
  v_reason : string;  (** failure/rejection reason ("" otherwise) *)
  v_submitted_s : float;
  v_finished_s : float;
  v_attempts : int;
  v_result_card : int;
  v_time_s : float;  (** the query's own virtual duration *)
  v_coverage : float;
  v_degraded : string;
      (** "deadline" / "memory" when governance degraded the run to a
          partial answer ("" = complete) *)
  v_breaker_trips : int;  (** circuit-breaker trips during the run *)
  v_resumed_phases : int;
  v_checkpoints : int;
  v_warm_signatures : int;
  v_warm_plan_changed : bool;
}

type view = {
  vr_queries : query_view list;
  vr_done : int;
  vr_failed : int;
  vr_cancelled : int;
  vr_rejected : int;
  vr_shed : int;
  vr_workers_spawned : int;
  vr_workers_died : int;
  vr_reclaims : int;
  vr_polls : int;
  vr_busy_polls : int;
  vr_min_interval_s : float;
  vr_max_interval_s : float;
  vr_finished_s : float;
  vr_shared_signatures : int;
}

val view : report -> view
val view_to_json : view -> Adp_obs.Json.t
val view_of_json : Adp_obs.Json.t -> (view, string) result
val pp_view : Format.formatter -> view -> unit
