open Adp_relation
open Adp_exec
open Adp_optimizer
module Corrective = Adp_core.Corrective
module Diagnostic = Adp_analysis.Diagnostic
module Trace = Adp_obs.Trace
module Metrics = Adp_obs.Metrics
module Timeseries = Adp_obs.Timeseries
module Slo = Adp_obs.Slo
module Json = Adp_obs.Json
module Selectivity = Adp_stats.Selectivity
module Checkpoint = Adp_recovery.Checkpoint
module Crash = Adp_recovery.Crash
module Workload = Adp_query.Workload
module Sql_parser = Adp_query.Sql_parser
module Tpch = Adp_datagen.Tpch

type config = {
  workers : int;
  queue_capacity : int;
  poll : Poll_controller.config;
  heartbeat_interval : float;
  heartbeat_timeout : float;
  max_retries : int;
  retry_backoff : float;
  checkpoint_dir : string;
  checkpoint_every : int;
  class_quotas : (string * int) list;
  memory_budget : int option;
  corrective : Corrective.config;
  trace : Trace.t;
  metrics : Metrics.t option;
  telemetry : Timeseries.t option;
  telemetry_wall : bool;
}

let default_config ~checkpoint_dir =
  { workers = 2; queue_capacity = 16; poll = Poll_controller.default;
    heartbeat_interval = 5e4; heartbeat_timeout = 2e5; max_retries = 3;
    retry_backoff = 1e5; checkpoint_dir; checkpoint_every = 500;
    class_quotas = []; memory_budget = None;
    corrective =
      { Corrective.default_config with poll_interval = 2e4;
        min_leaf_seen = 200; switch_threshold = 0.8 };
    trace = Trace.null; metrics = None; telemetry = None;
    telemetry_wall = false }

let validate cfg =
  let bad fmt = Diagnostic.errorf ~path:"server" fmt in
  Poll_controller.validate cfg.poll
  @ List.concat
      [ (if cfg.workers >= 1 then []
         else [ bad ~code:"server-bad-workers" "workers must be >= 1 (got %d)"
                  cfg.workers ]);
        (if cfg.queue_capacity >= 1 then []
         else
           [ bad ~code:"server-bad-capacity"
               "queue_capacity must be >= 1 (got %d)" cfg.queue_capacity ]);
        (if cfg.heartbeat_interval > 0.0 then []
         else
           [ bad ~code:"server-bad-heartbeat"
               "heartbeat_interval must be > 0 (got %g)" cfg.heartbeat_interval
           ]);
        (if cfg.heartbeat_timeout >= cfg.heartbeat_interval then []
         else
           [ bad ~code:"server-bad-heartbeat"
               "heartbeat_timeout must be >= heartbeat_interval (got %g < %g)"
               cfg.heartbeat_timeout cfg.heartbeat_interval ]);
        (if cfg.max_retries >= 0 then []
         else [ bad ~code:"server-bad-retries"
                  "max_retries must be >= 0 (got %d)" cfg.max_retries ]);
        (if cfg.retry_backoff >= 0.0 then []
         else [ bad ~code:"server-bad-backoff"
                  "retry_backoff must be >= 0 (got %g)" cfg.retry_backoff ]);
        (if cfg.checkpoint_every >= 0 then []
         else
           [ bad ~code:"server-bad-checkpoint-every"
               "checkpoint_every must be >= 0 (got %d)" cfg.checkpoint_every ]);
        (if cfg.checkpoint_dir <> "" then []
         else [ bad ~code:"server-bad-checkpoint-dir"
                  "checkpoint_dir must not be empty" ]);
        List.concat_map
          (fun (name, quota) ->
            (if name <> "" then []
             else [ bad ~code:"server-bad-class"
                      "priority class names must not be empty" ])
            @
            if quota >= 1 then []
            else
              [ bad ~code:"server-bad-class"
                  "class %S quota must be >= 1 (got %d)" name quota ])
          cfg.class_quotas;
        (let names = List.map fst cfg.class_quotas in
         if List.length (List.sort_uniq String.compare names)
            = List.length names
         then []
         else [ bad ~code:"server-bad-class"
                  "priority class names must be distinct" ]);
        (match cfg.memory_budget with
         | Some b when b < cfg.workers ->
           [ bad ~code:"server-bad-memory"
               "global memory budget %d cannot be partitioned across %d \
                workers (need at least one tuple per worker)"
               b cfg.workers ]
         | Some _ | None -> []) ]

type resolved = {
  r_query : Logical.query;
  r_catalog : Catalog.t;
  r_sources : unit -> Source.t list;
}

type resolver = string -> resolved

type outcome =
  | Done of { result : Relation.t; stats : Corrective.stats }
  | Failed of string
  | Cancelled
  | Rejected of string

type query_report = {
  qr_id : string;
  qr_spec : string;
  qr_class : string option;
  qr_deadline_s : float option;
  qr_outcome : outcome;
  qr_submitted_s : float;
  qr_finished_s : float;
  qr_attempts : int;
  qr_warm_signatures : int;
  qr_warm_plan_changed : bool;
}

type report = {
  r_queries : query_report list;
  r_done : int;
  r_failed : int;
  r_cancelled : int;
  r_rejected : int;
  r_shed : int;
  r_workers_spawned : int;
  r_workers_died : int;
  r_reclaims : int;
  r_polls : int;
  r_busy_polls : int;
  r_min_interval_s : float;
  r_max_interval_s : float;
  r_finished_s : float;
  r_shared_signatures : int;
}

(* ------------------------------------------------------------------ *)
(* Internal state                                                     *)
(* ------------------------------------------------------------------ *)

(* Everything an in-flight attempt needs to be re-executed bit-identically
   (a kill directive landing mid-attempt replays it with the crash armed)
   and to map the inner run's virtual clock onto the server clock. *)
type attempt = {
  a_worker : int;
  a_t0 : float;  (* server time the attempt started *)
  a_base : float;  (* inner clock at start (resume point), µs *)
  a_resume : string option;
  a_seed : Selectivity.dump;  (* shared-store snapshot the attempt saw *)
  a_snapshot : string list;  (* checkpoint files present at start *)
}

(* What the eagerly-executed attempt produced, held until the server
   clock reaches the completion (or supervisor-detection) event. *)
type pending =
  | P_done of Relation.t * Corrective.stats * Trace.stamped list
  | P_error of string * Trace.stamped list
  | P_crashed of { last_hb : float; msg : string; events : Trace.stamped list }

type jstate = Queued | Running | Terminal

type job = {
  j_id : string;
  j_spec : string;
  j_class : string option;
  j_deadline : float option;  (* absolute server µs *)
  j_resolved : resolved option;
  j_submitted : float;
  mutable j_state : jstate;
  mutable j_attempts : int;  (* executions started *)
  mutable j_failures : int;  (* attempts reclaimed after a worker death *)
  mutable j_not_before : float;
  mutable j_armed : Crash.point list;  (* kills waiting for an attempt *)
  mutable j_gen : int;  (* invalidates stale completion/death events *)
  mutable j_params : attempt option;
  mutable j_pending : pending option;
  mutable j_outcome : outcome option;
  mutable j_finished : float;
  mutable j_warm_sigs : int;
  mutable j_warm_list : string list;  (* the inherited signatures *)
  mutable j_warm_changed : bool;
}

type ev =
  | E_submit of string * string * string option * float option
  | E_kill of string * Crash.point
  | E_cancel of string
  | E_drain
  | E_poll
  | E_complete of string * int
  | E_death of string * int

(* ------------------------------------------------------------------ *)
(* The run                                                            *)
(* ------------------------------------------------------------------ *)

let ckpt_files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    (* determinism-ok: listing is sorted below before any choice is made *)
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".adpckpt")
    |> List.sort String.compare
  else []

let latest_clock dir ~base =
  match Checkpoint.latest ~dir with
  | None -> None
  | Some path -> (
    match Checkpoint.load path with
    | Ok ck -> Some (Float.max base ck.Checkpoint.clock.Clock.s_now)
    | Error _ -> None)

let rec subsets = function
  | [] -> [ [] ]
  | x :: tl ->
    let s = subsets tl in
    s @ List.map (fun y -> x :: y) s

let plan_desc spec = Format.asprintf "%a" Plan.pp_spec spec

let run config resolver script =
  Diagnostic.raise_if_errors ~where:"server" (validate config);
  let trace_on = Trace.enabled config.trace in
  let emit ~at ev = if trace_on then Trace.emit config.trace ~at ev in
  let metrics =
    match config.metrics with Some m -> m | None -> Metrics.create ()
  in
  let depth_g =
    Metrics.gauge metrics ~help:"waiting queries" "adp_server_queue_depth"
  in
  let interval_g =
    Metrics.gauge metrics ~help:"dispatcher poll interval (virtual s)"
      "adp_server_poll_interval_seconds"
  in
  let alive_g =
    Metrics.gauge metrics ~help:"live pool workers" "adp_server_workers_alive"
  in
  let outcome_c name =
    Metrics.counter metrics
      ~labels:[ ("outcome", name) ]
      ~help:"queries by final outcome" "adp_server_queries_total"
  in
  let done_c = outcome_c "done"
  and failed_c = outcome_c "failed"
  and cancelled_c = outcome_c "cancelled"
  and rejected_c = outcome_c "rejected" in
  let polls_c =
    Metrics.counter metrics ~help:"dispatcher polls" "adp_server_polls_total"
  in
  let reclaims_c =
    Metrics.counter metrics ~help:"queries reclaimed from dead workers"
      "adp_server_reclaims_total"
  in
  let shed_c =
    Metrics.counter metrics
      ~help:"queued queries shed because their deadline passed"
      "adp_server_shed_total"
  in
  (* SLO families are registered up front, one labelled cell per declared
     objective, so their series exist from the first telemetry sample. *)
  let slo_cells =
    match config.telemetry with
    | None -> []
    | Some ts ->
      List.map
        (fun (o : Slo.objective) ->
          let labels = [ ("slo", o.Slo.o_name) ] in
          ( o.Slo.o_name,
            ( Metrics.counter metrics ~labels
                ~help:"SLO violation transitions" "adp_slo_violations_total",
              Metrics.counter metrics ~labels
                ~help:"SLO recovery transitions" "adp_slo_recoveries_total",
              Metrics.gauge metrics ~labels
                ~help:"1 while the SLO is in violation" "adp_slo_active" ) ))
        (Timeseries.objectives ts)
  in
  (* Event heap: a sorted association list is plenty at workload scale;
     the sequence number keeps equal-time events in insertion order. *)
  let heap : (float * int * ev) list ref = ref [] in
  let seq = ref 0 in
  let schedule at ev =
    incr seq;
    let rec ins = function
      | [] -> [ (at, !seq, ev) ]
      | ((t, s, _) as hd) :: tl ->
        if t < at || (t = at && s < !seq) then hd :: ins tl
        else (at, !seq, ev) :: hd :: tl
    in
    heap := ins !heap
  in
  (* State. *)
  let jobs : (string, job) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let waiting = ref [] in
  let draining = ref false in
  let shared = Selectivity.create () in
  let workers : (int, string option) Hashtbl.t = Hashtbl.create 8 in
  let next_worker = ref 0 in
  let spawned = ref 0 and died = ref 0 and reclaims = ref 0 in
  let sheds = ref 0 in
  let polls = ref 0 and busy_polls = ref 0 in
  let min_seen = ref infinity and max_seen = ref 0.0 in
  let now = ref 0.0 in
  let spawn_worker () =
    incr next_worker;
    incr spawned;
    Hashtbl.replace workers !next_worker None;
    Metrics.set alive_g (float_of_int (Hashtbl.length workers));
    emit ~at:!now (Trace.Worker_spawned { worker = !next_worker });
    !next_worker
  in
  let pc = Poll_controller.create config.poll in
  let job_dir job = Filename.concat config.checkpoint_dir job.j_id in
  let set_depth () =
    Metrics.set depth_g (float_of_int (List.length !waiting))
  in
  (* Telemetry journal hooks: pure appends to the recorder, never touching
     the clock or the heap. *)
  let record_span job state ?worker ?attempt () =
    match config.telemetry with
    | None -> ()
    | Some ts ->
      Timeseries.span ts ~at_s:(!now /. 1e6) ~query:job.j_id ~state ?worker
        ?attempt ()
  in
  let finish job outcome =
    job.j_state <- Terminal;
    job.j_outcome <- Some outcome;
    job.j_finished <- !now;
    record_span job
      (match outcome with
       | Done _ -> "done"
       | Failed _ -> "failed"
       | Cancelled -> "cancelled"
       | Rejected _ -> "rejected")
      ?worker:(Option.map (fun p -> p.a_worker) job.j_params)
      ~attempt:job.j_attempts ();
    job.j_params <- None;
    job.j_pending <- None;
    Metrics.incr
      (match outcome with
       | Done _ -> done_c
       | Failed _ -> failed_c
       | Cancelled -> cancelled_c
       | Rejected _ -> rejected_c)
  in
  (* Each re-stamped block is preceded by a [Query_attempt] marker
     carrying its length, which is what lets [tukwila explain] group a
     serve trace into per-query lanes. *)
  let emit_shifted job (params : attempt) events =
    if trace_on && events <> [] then begin
      emit ~at:params.a_t0
        (Trace.Query_attempt
           { query = job.j_id; attempt = job.j_attempts;
             worker = params.a_worker; events = List.length events });
      List.iter
        (fun (ts, ev) ->
          emit ~at:(params.a_t0 +. Float.max 0.0 (ts -. params.a_base)) ev)
        events
    end
  in
  (* Warm-start evidence: how many of the shared store's selectivity
     signatures match a connected subexpression of this query, and
     whether that evidence flips the optimizer's initial plan.  Both go
     through the estimator only, which never touches any clock. *)
  let warm_start job (r : resolved) seed =
    let names = Logical.source_names r.r_query in
    let sigs =
      subsets names
      |> List.filter (fun s -> s <> [] && Logical.connected r.r_query s)
      |> List.map (Logical.signature_of_set r.r_query)
      |> List.sort_uniq String.compare
    in
    let known sg =
      List.mem_assoc sg seed.Selectivity.d_sels
      || List.mem_assoc sg seed.Selectivity.d_outs
    in
    job.j_warm_list <- List.filter known sigs;
    job.j_warm_sigs <- List.length job.j_warm_list;
    if job.j_warm_sigs > 0 then begin
      let cc = config.corrective in
      let plan_under sels =
        plan_desc
          (Optimizer.optimize ~preagg:cc.Corrective.preagg
             ~costs:cc.Corrective.costs r.r_query r.r_catalog sels)
            .Optimizer.spec
      in
      match
        plan_under (Selectivity.create ()) <> plan_under (Selectivity.load seed)
      with
      | changed -> job.j_warm_changed <- changed
      | exception _ -> job.j_warm_changed <- false
    end
  in
  (* Execute one attempt eagerly through the ordinary corrective entry
     point; the outcome is parked on the job and surfaces when the
     server clock reaches the completion/detection event. *)
  let execute job (params : attempt) ~crash =
    let r = Option.get job.j_resolved in
    let dir = job_dir job in
    let qm = Metrics.with_labels metrics [ ("query", job.j_id) ] in
    (* Drop cells of a discarded or reclaimed prior attempt: the cells
       left behind equal what a single fresh process would have
       produced, and the store stays bounded per query. *)
    Metrics.prune qm;
    let inner = if trace_on then Trace.memory () else Trace.null in
    let policy =
      Checkpoint.policy
        ?every_tuples:
          (if config.checkpoint_every > 0 then Some config.checkpoint_every
           else None)
        ~dir ()
    in
    (* Map the job's absolute server-clock deadline onto the attempt's
       inner clock (which starts at the resume point [a_base]): the run
       must stop when server time reaches the deadline, i.e. when its own
       clock reaches [a_base + (deadline - a_t0)]. *)
    let deadline =
      match job.j_deadline with
      | Some dl -> Some (params.a_base +. Float.max 0.0 (dl -. params.a_t0))
      | None -> config.corrective.Corrective.deadline
    in
    (* The global memory budget is partitioned evenly across the pool:
       every worker pages under its slice regardless of what its
       neighbours run, so one heavy query cannot starve the others. *)
    let memory_budget =
      match config.memory_budget with
      | Some b -> Some (max 1 (b / config.workers))
      | None -> config.corrective.Corrective.memory_budget
    in
    let cc =
      { config.corrective with
        Corrective.checkpoint = Some policy; resume_from = params.a_resume;
        crash; stats_seed = Some params.a_seed; trace = inner;
        metrics = Some qm; deadline; memory_budget }
    in
    (* A shared wall recorder separates concurrent queries by scope:
       their wall spans key as "q:<id>:phase ..." instead of colliding
       on bare phase names. *)
    let set_wall_scope s =
      match cc.Corrective.wall with
      | None -> ()
      | Some w -> Adp_obs.Wallclock.set_scope w s
    in
    set_wall_scope ("q:" ^ job.j_id);
    Fun.protect ~finally:(fun () -> set_wall_scope "") @@ fun () ->
    match Corrective.run ~config:cc r.r_query r.r_catalog (r.r_sources ()) with
    | result, stats ->
      (* determinism-ok: draining the job's own capture trace ([] when
         tracing is off) into the reply, not back into execution *)
      job.j_pending <- Some (P_done (result, stats, Trace.events inner));
      schedule
        (params.a_t0
        +. Float.max 0.0 (stats.Corrective.total_time -. params.a_base))
        (E_complete (job.j_id, job.j_gen))
    | exception Crash.Crashed msg ->
      (* The worker died at the virtual moment of its last checkpoint (the
         best deterministic anchor the survivors can ever learn); its last
         heartbeat is the latest beat before that, and the supervisor
         notices one heartbeat-timeout later. *)
      let death_off =
        match latest_clock dir ~base:params.a_base with
        | Some s_now -> s_now -. params.a_base
        | None -> 0.0
      in
      let death_at = params.a_t0 +. death_off in
      let hb = config.heartbeat_interval in
      let beats = Float.of_int (int_of_float (death_off /. hb)) in
      let last_hb = params.a_t0 +. (beats *. hb) in
      job.j_pending <-
        (* determinism-ok: draining the job's own capture trace into the
           crash record, not back into execution *)
        Some (P_crashed { last_hb; msg; events = Trace.events inner });
      ignore death_at;
      schedule (last_hb +. config.heartbeat_timeout)
        (E_death (job.j_id, job.j_gen))
    | exception Diagnostic.Failed (where, diags) ->
      job.j_pending <-
        Some
          (P_error
             ( Printf.sprintf "%s: %s" where
                 (String.trim (Diagnostic.to_string diags)),
               (* determinism-ok: draining the job's own capture trace into
                  the error record, not back into execution *)
               Trace.events inner ));
      schedule params.a_t0 (E_complete (job.j_id, job.j_gen))
  in
  let start_attempt job worker =
    let dir = job_dir job in
    if job.j_attempts = 0 then
      (* a previous server run's checkpoints must not leak into this one *)
      List.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (ckpt_files dir);
    let resume =
      if job.j_failures > 0 && Checkpoint.latest ~dir <> None then Some dir
      else None
    in
    let base =
      match resume with
      | None -> 0.0
      | Some _ -> (
        match latest_clock dir ~base:0.0 with Some s -> s | None -> 0.0)
    in
    let seed = Selectivity.dump shared in
    if job.j_attempts = 0 then begin
      Option.iter (fun r -> warm_start job r seed) job.j_resolved;
      (* Warm-start provenance edge: which inherited signatures fed this
         query's initial plan. *)
      match config.telemetry with
      | Some ts when job.j_warm_list <> [] ->
        Timeseries.provenance ts ~at_s:(!now /. 1e6) ~query:job.j_id
          ~signatures:job.j_warm_list
      | _ -> ()
    end;
    job.j_attempts <- job.j_attempts + 1;
    job.j_gen <- job.j_gen + 1;
    job.j_state <- Running;
    record_span job "started" ~worker ~attempt:job.j_attempts ();
    Hashtbl.replace workers worker (Some job.j_id);
    let params =
      { a_worker = worker; a_t0 = !now; a_base = base; a_resume = resume;
        a_seed = seed; a_snapshot = ckpt_files dir }
    in
    job.j_params <- Some params;
    let crash =
      match job.j_armed with
      | [] -> []
      | p :: tl ->
        job.j_armed <- tl;
        [ p ]
    in
    execute job params ~crash
  in
  let reject job reason =
    emit ~at:!now
      (Trace.Admission
         { query = job.j_id; accepted = false;
           queue_depth = List.length !waiting; reason });
    finish job (Rejected reason)
  in
  (* Priority rank of a class: its position in [class_quotas] (earlier =
     higher priority); unclassified work dispatches after every class. *)
  let class_rank klass =
    match klass with
    | None -> max_int
    | Some c ->
      let rec idx i = function
        | [] -> max_int
        | (n, _) :: tl -> if n = c then i else idx (i + 1) tl
      in
      idx 0 config.class_quotas
  in
  let waiting_in_class c =
    List.length
      (List.filter
         (fun qid ->
           match Hashtbl.find_opt jobs qid with
           | Some j -> j.j_class = Some c
           | None -> false)
         !waiting)
  in
  let handle = function
    | E_submit (qid, spec, klass, deadline_s) ->
      let resolved, resolve_error =
        match resolver spec with
        | r -> (Some r, None)
        | exception Diagnostic.Failed (where, diags) ->
          ( None,
            Some
              (Printf.sprintf "%s: %s" where
                 (String.trim (Diagnostic.to_string diags))) )
      in
      let job =
        { j_id = qid; j_spec = spec; j_class = klass;
          j_deadline = Option.map (fun d -> !now +. (d *. 1e6)) deadline_s;
          j_resolved = resolved;
          j_submitted = !now; j_state = Queued; j_attempts = 0;
          j_failures = 0; j_not_before = !now; j_armed = []; j_gen = 0;
          j_params = None; j_pending = None; j_outcome = None;
          j_finished = !now; j_warm_sigs = 0; j_warm_list = [];
          j_warm_changed = false }
      in
      Hashtbl.replace jobs qid job;
      order := qid :: !order;
      record_span job "submitted" ();
      let quota_full =
        match klass with
        | Some c -> (
          match List.assoc_opt c config.class_quotas with
          | Some quota -> waiting_in_class c >= quota
          | None -> false)
        | None -> false
      in
      if !draining then reject job "draining"
      else if
        (match klass with
         | Some c -> not (List.mem_assoc c config.class_quotas)
         | None -> false)
      then
        reject job
          (Printf.sprintf "unknown-class:%s" (Option.get klass))
      else if List.length !waiting >= config.queue_capacity then
        reject job "queue-full"
      else if quota_full then
        reject job
          (Printf.sprintf "class-quota:%s" (Option.get klass))
      else begin
        match resolve_error with
        | Some msg ->
          emit ~at:!now
            (Trace.Admission
               { query = qid; accepted = true;
                 queue_depth = List.length !waiting; reason = "" });
          finish job (Failed msg)
        | None ->
          waiting := !waiting @ [ qid ];
          set_depth ();
          emit ~at:!now
            (Trace.Admission
               { query = qid; accepted = true;
                 queue_depth = List.length !waiting; reason = "" })
      end
    | E_kill (qid, point) -> (
      match Hashtbl.find_opt jobs qid with
      | None -> ()
      | Some job -> (
        match job.j_state with
        | Queued -> job.j_armed <- job.j_armed @ [ point ]
        | Terminal -> ()
        | Running -> (
          match job.j_pending with
          | Some (P_done _) -> (
            (* The in-flight attempt would have completed; replay it with
               the crash armed.  Same seed, same resume point, same
               checkpoint dir state: deterministic. *)
            match job.j_params with
            | None -> job.j_armed <- job.j_armed @ [ point ]
            | Some params ->
              job.j_gen <- job.j_gen + 1;
              let dir = job_dir job in
              List.iter
                (fun f ->
                  if not (List.mem f params.a_snapshot) then
                    Sys.remove (Filename.concat dir f))
                (ckpt_files dir);
              execute job params ~crash:[ point ])
          | Some (P_error _) | Some (P_crashed _) | None ->
            (* already failing or already dying; arm for a later attempt *)
            job.j_armed <- job.j_armed @ [ point ])))
    | E_cancel qid -> (
      match Hashtbl.find_opt jobs qid with
      | Some job when job.j_state = Queued ->
        waiting := List.filter (fun id -> id <> qid) !waiting;
        set_depth ();
        finish job Cancelled
      | Some _ | None -> ())
    | E_drain -> draining := true
    | E_complete (qid, gen) -> (
      match Hashtbl.find_opt jobs qid with
      | Some job when job.j_gen = gen -> (
        let params = Option.get job.j_params in
        Hashtbl.replace workers params.a_worker None;
        match job.j_pending with
        | Some (P_done (result, stats, events)) ->
          emit_shifted job params events;
          (* publish what this run learned only now, at its completion
             event: a later-starting attempt must not see statistics from
             a run that (on the server clock) had not finished yet *)
          Selectivity.absorb shared stats.Corrective.learned;
          finish job (Done { result; stats })
        | Some (P_error (msg, events)) ->
          emit_shifted job params events;
          finish job (Failed msg)
        | Some (P_crashed _) | None -> ())
      | Some _ | None -> ())
    | E_death (qid, gen) -> (
      match Hashtbl.find_opt jobs qid with
      | Some job when job.j_gen = gen -> (
        match (job.j_pending, job.j_params) with
        | Some (P_crashed { last_hb; msg; events }), Some params ->
          emit_shifted job params events;
          let w = params.a_worker in
          Hashtbl.remove workers w;
          incr died;
          Metrics.set alive_g (float_of_int (Hashtbl.length workers));
          emit ~at:!now
            (Trace.Worker_died
               { worker = w; query = qid; last_heartbeat_s = last_hb /. 1e6 });
          let dir = job_dir job in
          let resume_from =
            match Checkpoint.latest ~dir with Some _ -> dir | None -> ""
          in
          emit ~at:!now
            (Trace.Worker_reclaimed
               { worker = w; query = qid; attempt = job.j_attempts;
                 resume_from });
          incr reclaims;
          Metrics.incr reclaims_c;
          record_span job "reclaimed" ~worker:w ~attempt:job.j_attempts ();
          ignore (spawn_worker ());
          job.j_failures <- job.j_failures + 1;
          job.j_params <- None;
          job.j_pending <- None;
          if job.j_failures > config.max_retries then
            finish job
              (Failed
                 (Printf.sprintf
                    "retry budget exhausted after %d attempts (last: %s)"
                    job.j_attempts msg))
          else begin
            job.j_state <- Queued;
            job.j_not_before <-
              !now
              +. config.retry_backoff
                 *. (2.0 ** float_of_int (job.j_failures - 1));
            waiting := !waiting @ [ qid ];
            set_depth ()
          end
        | _ -> ())
      | Some _ | None -> ())
    | E_poll ->
      (* Deadline shedding: queued work whose deadline already passed can
         only waste a worker — drop it now rather than dispatch it. *)
      List.iter
        (fun qid ->
          match Hashtbl.find_opt jobs qid with
          | Some job
            when (match job.j_deadline with
                  | Some dl -> dl <= !now
                  | None -> false) ->
            waiting := List.filter (fun id -> id <> qid) !waiting;
            incr sheds;
            Metrics.incr shed_c;
            reject job "deadline-shed"
          | Some _ | None -> ())
        !waiting;
      let ready =
        List.filter
          (fun qid ->
            match Hashtbl.find_opt jobs qid with
            | Some job -> job.j_not_before <= !now
            | None -> false)
          !waiting
        (* Class priority decides dispatch order; FIFO breaks ties (the
           sort is stable and [waiting] is in submission order). *)
        |> List.stable_sort (fun a b ->
               let rank qid =
                 match Hashtbl.find_opt jobs qid with
                 | Some j -> class_rank j.j_class
                 | None -> max_int
               in
               compare (rank a) (rank b))
      in
      let idle =
        Hashtbl.fold (fun w s acc -> if s = None then w :: acc else acc)
          workers []
        |> List.sort compare
      in
      let rec assign ws qs =
        match (ws, qs) with
        | w :: ws', qid :: qs' ->
          waiting := List.filter (fun id -> id <> qid) !waiting;
          start_attempt (Hashtbl.find jobs qid) w;
          assign ws' qs'
        | _ -> ()
      in
      assign idle ready;
      set_depth ();
      let found = List.length ready in
      incr polls;
      if found > 0 then incr busy_polls;
      Metrics.incr polls_c;
      let before = Poll_controller.interval pc in
      let interval = Poll_controller.record pc ~found in
      if interval < !min_seen then min_seen := interval;
      if interval > !max_seen then max_seen := interval;
      Metrics.set interval_g (interval /. 1e6);
      if interval <> before then
        emit ~at:!now
          (Trace.Poll_interval_changed
             { from_s = before /. 1e6; to_s = interval /. 1e6; found });
      (* Telemetry sampling rides the dispatcher: exactly one sample per
         poll, stamped with the server's virtual clock.  Sampling only
         reads the registry, so the serve is bit-identical with or
         without it; the optional wall shadow goes through the one
         sanctioned Wallclock module and is off by default because it
         (by design) varies across runs. *)
      (match config.telemetry with
       | None -> ()
       | Some ts ->
         let wall_s =
           if config.telemetry_wall then
             Some (Adp_obs.Wallclock.monotonic_s ())
           else None
         in
         let transitions =
           Timeseries.sample ts ~now_s:(!now /. 1e6) ?wall_s metrics
         in
         List.iter
           (fun (tr : Slo.transition) ->
             let o = tr.Slo.t_objective in
             emit ~at:!now
               (if tr.Slo.t_violated then
                  Trace.Slo_violation
                    { slo = o.Slo.o_name; metric = o.Slo.o_metric;
                      agg = Slo.agg_name o.Slo.o_agg;
                      op = Slo.op_name o.Slo.o_op; value = tr.Slo.t_value;
                      bound = o.Slo.o_bound }
                else
                  Trace.Slo_recovered
                    { slo = o.Slo.o_name; metric = o.Slo.o_metric;
                      agg = Slo.agg_name o.Slo.o_agg;
                      op = Slo.op_name o.Slo.o_op; value = tr.Slo.t_value;
                      bound = o.Slo.o_bound });
             match List.assoc_opt o.Slo.o_name slo_cells with
             | None -> ()
             | Some (viol_c, recov_c, active_g) ->
               if tr.Slo.t_violated then begin
                 Metrics.incr viol_c;
                 Metrics.set active_g 1.0
               end
               else begin
                 Metrics.incr recov_c;
                 Metrics.set active_g 0.0
               end)
           transitions);
      let busy_worker =
        Hashtbl.fold (fun _ s acc -> acc || s <> None) workers false
      in
      if !waiting <> [] || busy_worker || !heap <> [] then
        schedule (!now +. interval) E_poll
  in
  (* Boot: the pool comes up at time zero, the script is enqueued, and
     the dispatcher starts polling. *)
  for _ = 1 to config.workers do
    ignore (spawn_worker ())
  done;
  List.iter
    (fun (at_s, d) ->
      let at = at_s *. 1e6 in
      match d with
      | Script.Submit { qid; spec; klass; deadline_s } ->
        schedule at (E_submit (qid, spec, klass, deadline_s))
      | Script.Kill { qid; point } -> schedule at (E_kill (qid, point))
      | Script.Cancel qid -> schedule at (E_cancel qid)
      | Script.Drain -> schedule at E_drain)
    script;
  schedule 0.0 E_poll;
  let rec loop () =
    match !heap with
    | [] -> ()
    | (at, _, ev) :: rest ->
      heap := rest;
      now := Float.max !now at;
      handle ev;
      loop ()
  in
  loop ();
  let queries =
    List.rev_map
      (fun qid ->
        let j = Hashtbl.find jobs qid in
        { qr_id = j.j_id; qr_spec = j.j_spec; qr_class = j.j_class;
          qr_deadline_s = Option.map (fun d -> d /. 1e6) j.j_deadline;
          qr_outcome =
            (match j.j_outcome with
             | Some o -> o
             | None -> Failed "server stopped before the query finished");
          qr_submitted_s = j.j_submitted /. 1e6;
          qr_finished_s = j.j_finished /. 1e6; qr_attempts = j.j_attempts;
          qr_warm_signatures = j.j_warm_sigs;
          qr_warm_plan_changed = j.j_warm_changed })
      !order
  in
  let count f = List.length (List.filter f queries) in
  let initial = config.poll.Poll_controller.max_interval in
  { r_queries = queries;
    r_done = count (fun q -> match q.qr_outcome with Done _ -> true | _ -> false);
    r_failed =
      count (fun q -> match q.qr_outcome with Failed _ -> true | _ -> false);
    r_cancelled = count (fun q -> q.qr_outcome = Cancelled);
    r_rejected =
      count (fun q -> match q.qr_outcome with Rejected _ -> true | _ -> false);
    r_shed = !sheds;
    r_workers_spawned = !spawned; r_workers_died = !died;
    r_reclaims = !reclaims; r_polls = !polls; r_busy_polls = !busy_polls;
    r_min_interval_s =
      (if !polls = 0 then initial /. 1e6 else !min_seen /. 1e6);
    r_max_interval_s =
      (if !polls = 0 then initial /. 1e6 else !max_seen /. 1e6);
    r_finished_s = !now /. 1e6;
    r_shared_signatures = Selectivity.size shared }

(* ------------------------------------------------------------------ *)
(* Resolver                                                           *)
(* ------------------------------------------------------------------ *)

let tpch_resolver ?(with_cardinalities = false) ?seed ds spec =
  let spec = String.trim spec in
  let bundled =
    List.find_opt
      (fun wq ->
        String.lowercase_ascii (Workload.name wq)
        = String.lowercase_ascii spec)
      [ Workload.Q3; Workload.Q3A; Workload.Q10; Workload.Q10A; Workload.Q5 ]
  in
  let q =
    match bundled with
    | Some wq -> Workload.query wq
    | None -> (
      try Sql_parser.parse ~schema_of:Tpch.schema_of spec
      with Sql_parser.Parse_error m ->
        raise
          (Diagnostic.Failed
             ( "server.resolve",
               [ Diagnostic.error ~code:"server-bad-query" ~path:spec m ] )))
  in
  { r_query = q; r_catalog = Workload.catalog ~with_cardinalities ds q;
    r_sources = Workload.sources ?seed ds q }

(* ------------------------------------------------------------------ *)
(* Report views                                                       *)
(* ------------------------------------------------------------------ *)

type query_view = {
  v_id : string;
  v_spec : string;
  v_class : string;
  v_deadline_s : float;
  v_outcome : string;
  v_reason : string;
  v_submitted_s : float;
  v_finished_s : float;
  v_attempts : int;
  v_result_card : int;
  v_time_s : float;
  v_coverage : float;
  v_degraded : string;
  v_breaker_trips : int;
  v_resumed_phases : int;
  v_checkpoints : int;
  v_warm_signatures : int;
  v_warm_plan_changed : bool;
}

type view = {
  vr_queries : query_view list;
  vr_done : int;
  vr_failed : int;
  vr_cancelled : int;
  vr_rejected : int;
  vr_shed : int;
  vr_workers_spawned : int;
  vr_workers_died : int;
  vr_reclaims : int;
  vr_polls : int;
  vr_busy_polls : int;
  vr_min_interval_s : float;
  vr_max_interval_s : float;
  vr_finished_s : float;
  vr_shared_signatures : int;
}

let view r =
  let qv (q : query_report) =
    let outcome, reason =
      match q.qr_outcome with
      | Done _ -> ("done", "")
      | Failed m -> ("failed", m)
      | Cancelled -> ("cancelled", "")
      | Rejected m -> ("rejected", m)
    in
    let card, time_s, coverage, resumed, ckpts, degraded, trips =
      match q.qr_outcome with
      | Done { stats; _ } ->
        ( stats.Corrective.result_card,
          stats.Corrective.total_time /. 1e6, stats.Corrective.coverage,
          stats.Corrective.resumed_phases, stats.Corrective.checkpoints,
          Option.value ~default:"" stats.Corrective.degraded_reason,
          stats.Corrective.breaker_trips )
      | _ -> (0, 0.0, 0.0, 0, 0, "", 0)
    in
    { v_id = q.qr_id; v_spec = q.qr_spec;
      v_class = Option.value ~default:"" q.qr_class;
      v_deadline_s = Option.value ~default:0.0 q.qr_deadline_s;
      v_outcome = outcome;
      v_reason = reason; v_submitted_s = q.qr_submitted_s;
      v_finished_s = q.qr_finished_s; v_attempts = q.qr_attempts;
      v_result_card = card; v_time_s = time_s; v_coverage = coverage;
      v_degraded = degraded; v_breaker_trips = trips;
      v_resumed_phases = resumed; v_checkpoints = ckpts;
      v_warm_signatures = q.qr_warm_signatures;
      v_warm_plan_changed = q.qr_warm_plan_changed }
  in
  { vr_queries = List.map qv r.r_queries; vr_done = r.r_done;
    vr_failed = r.r_failed; vr_cancelled = r.r_cancelled;
    vr_rejected = r.r_rejected; vr_shed = r.r_shed;
    vr_workers_spawned = r.r_workers_spawned;
    vr_workers_died = r.r_workers_died; vr_reclaims = r.r_reclaims;
    vr_polls = r.r_polls; vr_busy_polls = r.r_busy_polls;
    vr_min_interval_s = r.r_min_interval_s;
    vr_max_interval_s = r.r_max_interval_s; vr_finished_s = r.r_finished_s;
    vr_shared_signatures = r.r_shared_signatures }

let view_to_json v =
  let num f = Json.Num f in
  let int i = Json.Num (float_of_int i) in
  let str s = Json.Str s in
  let q (x : query_view) =
    Json.Obj
      [ ("id", str x.v_id); ("spec", str x.v_spec);
        ("class", str x.v_class); ("deadline_s", num x.v_deadline_s);
        ("outcome", str x.v_outcome); ("reason", str x.v_reason);
        ("submitted_s", num x.v_submitted_s);
        ("finished_s", num x.v_finished_s); ("attempts", int x.v_attempts);
        ("result_card", int x.v_result_card); ("time_s", num x.v_time_s);
        ("coverage", num x.v_coverage); ("degraded", str x.v_degraded);
        ("breaker_trips", int x.v_breaker_trips);
        ("resumed_phases", int x.v_resumed_phases);
        ("checkpoints", int x.v_checkpoints);
        ("warm_signatures", int x.v_warm_signatures);
        ("warm_plan_changed", Json.Bool x.v_warm_plan_changed) ]
  in
  Json.Obj
    [ ("schema", int 2); ("kind", str "tukwila-server-report");
      ("queries", Json.List (List.map q v.vr_queries));
      ("done", int v.vr_done); ("failed", int v.vr_failed);
      ("cancelled", int v.vr_cancelled); ("rejected", int v.vr_rejected);
      ("shed", int v.vr_shed);
      ("workers_spawned", int v.vr_workers_spawned);
      ("workers_died", int v.vr_workers_died);
      ("reclaims", int v.vr_reclaims); ("polls", int v.vr_polls);
      ("busy_polls", int v.vr_busy_polls);
      ("min_interval_s", num v.vr_min_interval_s);
      ("max_interval_s", num v.vr_max_interval_s);
      ("finished_s", num v.vr_finished_s);
      ("shared_signatures", int v.vr_shared_signatures) ]

let view_of_json j =
  let get j k f =
    match Option.bind (Json.member k j) f with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or malformed field %S" k)
  in
  (* Governance fields arrived with schema 2; defaulting keeps schema-1
     reports loadable. *)
  let opt j k f ~default =
    match Option.bind (Json.member k j) f with Some v -> v | None -> default
  in
  let ( let* ) = Result.bind in
  let* kind = get j "kind" Json.get_str in
  if kind <> "tukwila-server-report" then
    Error "not a tukwila server report"
  else
    let* qs = get j "queries" Json.get_list in
    let* queries =
      List.fold_left
        (fun acc qj ->
          let* acc = acc in
          let* v_id = get qj "id" Json.get_str in
          let* v_spec = get qj "spec" Json.get_str in
          let v_class = opt qj "class" Json.get_str ~default:"" in
          let v_deadline_s = opt qj "deadline_s" Json.get_num ~default:0.0 in
          let v_degraded = opt qj "degraded" Json.get_str ~default:"" in
          let v_breaker_trips =
            opt qj "breaker_trips" Json.get_int ~default:0
          in
          let* v_outcome = get qj "outcome" Json.get_str in
          let* v_reason = get qj "reason" Json.get_str in
          let* v_submitted_s = get qj "submitted_s" Json.get_num in
          let* v_finished_s = get qj "finished_s" Json.get_num in
          let* v_attempts = get qj "attempts" Json.get_int in
          let* v_result_card = get qj "result_card" Json.get_int in
          let* v_time_s = get qj "time_s" Json.get_num in
          let* v_coverage = get qj "coverage" Json.get_num in
          let* v_resumed_phases = get qj "resumed_phases" Json.get_int in
          let* v_checkpoints = get qj "checkpoints" Json.get_int in
          let* v_warm_signatures = get qj "warm_signatures" Json.get_int in
          let* v_warm_plan_changed =
            get qj "warm_plan_changed" Json.get_bool
          in
          Ok
            ({ v_id; v_spec; v_class; v_deadline_s; v_outcome; v_reason;
               v_submitted_s; v_finished_s; v_attempts; v_result_card;
               v_time_s; v_coverage; v_degraded; v_breaker_trips;
               v_resumed_phases; v_checkpoints; v_warm_signatures;
               v_warm_plan_changed }
            :: acc))
        (Ok []) qs
    in
    let* vr_done = get j "done" Json.get_int in
    let* vr_failed = get j "failed" Json.get_int in
    let* vr_cancelled = get j "cancelled" Json.get_int in
    let* vr_rejected = get j "rejected" Json.get_int in
    let vr_shed = opt j "shed" Json.get_int ~default:0 in
    let* vr_workers_spawned = get j "workers_spawned" Json.get_int in
    let* vr_workers_died = get j "workers_died" Json.get_int in
    let* vr_reclaims = get j "reclaims" Json.get_int in
    let* vr_polls = get j "polls" Json.get_int in
    let* vr_busy_polls = get j "busy_polls" Json.get_int in
    let* vr_min_interval_s = get j "min_interval_s" Json.get_num in
    let* vr_max_interval_s = get j "max_interval_s" Json.get_num in
    let* vr_finished_s = get j "finished_s" Json.get_num in
    let* vr_shared_signatures = get j "shared_signatures" Json.get_int in
    Ok
      { vr_queries = List.rev queries; vr_done; vr_failed; vr_cancelled;
        vr_rejected; vr_shed; vr_workers_spawned; vr_workers_died;
        vr_reclaims; vr_polls; vr_busy_polls; vr_min_interval_s;
        vr_max_interval_s; vr_finished_s; vr_shared_signatures }

let pp_view ppf v =
  let fnum = Json.float_str in
  Format.fprintf ppf "server report:@.";
  List.iter
    (fun (q : query_view) ->
      let status =
        match q.v_outcome with
        | "done" ->
          Printf.sprintf "done: %d rows in %s virtual s, coverage %.1f%%"
            q.v_result_card (fnum q.v_time_s) (100.0 *. q.v_coverage)
        | o when q.v_reason <> "" -> Printf.sprintf "%s: %s" o q.v_reason
        | o -> o
      in
      Format.fprintf ppf "  %-8s [%s]  %s@." q.v_id q.v_spec status;
      if q.v_class <> "" || q.v_deadline_s > 0.0 then
        Format.fprintf ppf "           %s%s%s@."
          (if q.v_class <> "" then "class " ^ q.v_class else "")
          (if q.v_class <> "" && q.v_deadline_s > 0.0 then ", " else "")
          (if q.v_deadline_s > 0.0 then
             Printf.sprintf "deadline %s s" (fnum q.v_deadline_s)
           else "");
      if q.v_degraded <> "" then
        Format.fprintf ppf
          "           DEGRADED (%s): partial answer, coverage %.1f%%@."
          q.v_degraded (100.0 *. q.v_coverage);
      if q.v_breaker_trips > 0 then
        Format.fprintf ppf "           circuit breaker tripped %d time%s@."
          q.v_breaker_trips (if q.v_breaker_trips = 1 then "" else "s");
      if q.v_attempts > 1 || q.v_resumed_phases > 0 then
        Format.fprintf ppf
          "           attempts %d, resumed phases %d, checkpoints %d@."
          q.v_attempts q.v_resumed_phases q.v_checkpoints;
      if q.v_warm_signatures > 0 then
        Format.fprintf ppf
          "           warm start: %d inherited signature%s%s@."
          q.v_warm_signatures
          (if q.v_warm_signatures = 1 then "" else "s")
          (if q.v_warm_plan_changed then " (initial plan changed)" else ""))
    v.vr_queries;
  Format.fprintf ppf
    "outcomes: %d done, %d failed, %d cancelled, %d rejected@." v.vr_done
    v.vr_failed v.vr_cancelled v.vr_rejected;
  if v.vr_shed > 0 then
    Format.fprintf ppf
      "deadline shedding: %d queued quer%s dropped past deadline@."
      v.vr_shed
      (if v.vr_shed = 1 then "y" else "ies");
  Format.fprintf ppf
    "workers: %d spawned, %d died, %d queries reclaimed@."
    v.vr_workers_spawned v.vr_workers_died v.vr_reclaims;
  Format.fprintf ppf
    "dispatcher: %d polls (%d busy), interval %s..%s s@." v.vr_polls
    v.vr_busy_polls (fnum v.vr_min_interval_s) (fnum v.vr_max_interval_s);
  Format.fprintf ppf
    "shared statistics: %d selectivity signature%s; finished at %s virtual \
     s@."
    v.vr_shared_signatures
    (if v.vr_shared_signatures = 1 then "" else "s")
    (fnum v.vr_finished_s)
