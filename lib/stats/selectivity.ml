type t = {
  sels : (string, float) Hashtbl.t;
  outs : (string, float) Hashtbl.t;
  cards : (string, int) Hashtbl.t;
  finals : (string, int) Hashtbl.t;
  mult : (string, float) Hashtbl.t;
}

let create () =
  { sels = Hashtbl.create 64; outs = Hashtbl.create 64;
    cards = Hashtbl.create 16; finals = Hashtbl.create 16;
    mult = Hashtbl.create 16 }

let observe t ~signature ~output ~input_product =
  if input_product > 0.0 then
    Hashtbl.replace t.sels signature (output /. input_product)

let lookup t signature = Hashtbl.find_opt t.sels signature

let observe_output t ~signature ~cardinality =
  Hashtbl.replace t.outs signature cardinality

let lookup_output t signature = Hashtbl.find_opt t.outs signature

let observe_cardinality t ~relation ~seen =
  Hashtbl.replace t.cards relation seen

let cardinality t relation = Hashtbl.find_opt t.cards relation

let observe_final_cardinality t ~relation ~total =
  Hashtbl.replace t.finals relation total

let final_cardinality t relation = Hashtbl.find_opt t.finals relation

let flag_multiplicative t ~predicate ~factor =
  let prev = Option.value ~default:1.0 (Hashtbl.find_opt t.mult predicate) in
  Hashtbl.replace t.mult predicate (max prev factor)

let multiplicative_factor t predicate = Hashtbl.find_opt t.mult predicate

let size t = Hashtbl.length t.sels

let entries t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sels []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Dump / load (checkpointing)                                        *)
(* ------------------------------------------------------------------ *)

type dump = {
  d_sels : (string * float) list;
  d_outs : (string * float) list;
  d_cards : (string * int) list;
  d_finals : (string * int) list;
  d_mult : (string * float) list;
}

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let dump t =
  { d_sels = sorted_bindings t.sels; d_outs = sorted_bindings t.outs;
    d_cards = sorted_bindings t.cards; d_finals = sorted_bindings t.finals;
    d_mult = sorted_bindings t.mult }

let load d =
  let t = create () in
  List.iter (fun (k, v) -> Hashtbl.replace t.sels k v) d.d_sels;
  List.iter (fun (k, v) -> Hashtbl.replace t.outs k v) d.d_outs;
  List.iter (fun (k, v) -> Hashtbl.replace t.cards k v) d.d_cards;
  List.iter (fun (k, v) -> Hashtbl.replace t.finals k v) d.d_finals;
  List.iter (fun (k, v) -> Hashtbl.replace t.mult k v) d.d_mult;
  t

let absorb t d =
  let other = load d in
  let merge dst src = Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src in
  merge t.sels other.sels;
  merge t.outs other.outs;
  merge t.cards other.cards;
  merge t.finals other.finals;
  merge t.mult other.mult
