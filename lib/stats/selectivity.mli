(** Observed-selectivity registry (§4.2).

    The monitor records, for every join subexpression evaluated so far, one
    selectivity shared across all logically equivalent subexpressions
    regardless of the algorithms used: the ratio of the subexpression's
    output cardinality over the product of its input relation
    cardinalities.  The re-optimizer consults these before falling back to
    System-R heuristics.

    Keys are canonical signatures — produced by the logical algebra in
    [adp_optimizer] — so that [(A ⋈ B) ⋈ C] and [A ⋈ (B ⋈ C)] share one
    entry.

    The registry also carries the paper's "multiplicative join" flags: a
    join predicate observed to produce more output than either input gets
    its measured expansion factor pinned, so future estimates involving it
    stay conservative. *)

type t

val create : unit -> t

(** [observe t ~signature ~output ~input_product] records/overwrites the
    observed selectivity of a subexpression. *)
val observe : t -> signature:string -> output:float -> input_product:float -> unit

(** Observed selectivity if available. *)
val lookup : t -> string -> float option

(** [observe_output t ~signature ~cardinality] records a direct prediction
    of a subexpression's final output cardinality.  The corrective monitor
    derives it by linear extrapolation — output seen so far times the
    largest remaining input ratio — which matches the paper's assumption
    that query performance stays consistent and that key–foreign-key join
    outputs grow with the foreign-key side, not with the input product
    (§4.2).  Product-based extrapolation misfires badly when sources are
    sorted on the join key (aligned prefixes over-match; cf. §4.5). *)
val observe_output : t -> signature:string -> cardinality:float -> unit

val lookup_output : t -> string -> float option

(** [observe_cardinality t ~relation ~seen] tracks how many tuples of a
    source have been consumed so far (a lower bound on its cardinality). *)
val observe_cardinality : t -> relation:string -> seen:int -> unit

val cardinality : t -> string -> int option

(** [observe_final_cardinality t ~relation ~total] records the exact
    cardinality once a sequential source has been exhausted — at that
    point the engine knows it precisely, whatever the source description
    claimed. *)
val observe_final_cardinality : t -> relation:string -> total:int -> unit

val final_cardinality : t -> string -> int option

(** [flag_multiplicative t ~predicate ~factor] marks a join predicate whose
    output exceeded both inputs, with its expansion factor. *)
val flag_multiplicative : t -> predicate:string -> factor:float -> unit

val multiplicative_factor : t -> string -> float option

(** Number of selectivity entries, for reporting. *)
val size : t -> int

(** All (signature, selectivity) pairs, for reporting/tests. *)
val entries : t -> (string * float) list

(** {2 Dump / load}

    The checkpoint layer serializes the registry so a recovered execution
    re-optimizes with everything the interrupted one had observed.  A
    dump is plain data with deterministically ordered bindings. *)

type dump = {
  d_sels : (string * float) list;
  d_outs : (string * float) list;
  d_cards : (string * int) list;
  d_finals : (string * int) list;
  d_mult : (string * float) list;
}

(** Snapshot every table, sorted by key. *)
val dump : t -> dump

(** Fresh registry holding exactly the dump's contents. *)
val load : dump -> t

(** Merge a dump into an existing registry (dump entries win). *)
val absorb : t -> dump -> unit
