(** Atomic attribute values.

    Tukwila integrates heterogeneous sources, so the value domain is a small
    dynamically-typed universe: integers, floats, strings, dates (days since
    an epoch) and SQL-style nulls.  All comparisons are three-valued only in
    the sense that [Null] never equals anything, including itself, under
    {!eq_sql}; the total order {!compare} is used by sorted state structures
    and places [Null] first. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** days since 1992-01-01, the TPC-H epoch *)

(** Runtime type tag of a non-null value, used by the static analyzer to
    type-check join keys and aggregate inputs before execution. *)
type ty = Ty_int | Ty_float | Ty_str | Ty_date

(** [ty_of v] is [None] for [Null] (a null reveals nothing about the
    column's type). *)
val ty_of : t -> ty option

val ty_to_string : ty -> string

(** Whether values of the two types can ever compare equal under
    {!eq_sql} — integers and floats compare numerically, every other
    cross-type pair never matches. *)
val ty_joinable : ty -> ty -> bool

(** Whether aggregation arithmetic ([sum]/[avg]) accepts the type. *)
val ty_numeric : ty -> bool

(** Total order over values, usable by sorted structures.  Values of
    different types are ordered by type tag; [Null] sorts first. *)
val compare : t -> t -> int

(** Structural equality ([Null] equals [Null]). *)
val equal : t -> t -> bool

(** SQL equality: any comparison involving [Null] is false. *)
val eq_sql : t -> t -> bool

val is_null : t -> bool

(** Hash suitable for hash-based state structures; equal values hash
    equally. *)
val hash : t -> int

(** Numeric coercions used by aggregation.  @raise Invalid_argument on
    non-numeric input. *)
val to_float : t -> float

val add : t -> t -> t
(** Numeric addition used by [sum]; [Null] is absorbing. *)

val min_v : t -> t -> t
val max_v : t -> t -> t
(** SQL [min]/[max]: ignore nulls ([min_v Null x = x]). *)

(** Parse a date literal ["YYYY-MM-DD"] into [Date]. *)
val date_of_string : string -> t

(** Inverse of {!date_of_string} for [Date]; other values use {!pp}'s
    syntax. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
