type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Date of int

type ty = Ty_int | Ty_float | Ty_str | Ty_date

let ty_of = function
  | Null -> None
  | Int _ -> Some Ty_int
  | Float _ -> Some Ty_float
  | Str _ -> Some Ty_str
  | Date _ -> Some Ty_date

let ty_to_string = function
  | Ty_int -> "int"
  | Ty_float -> "float"
  | Ty_str -> "string"
  | Ty_date -> "date"

let ty_joinable a b =
  match a, b with
  | Ty_int, Ty_float | Ty_float, Ty_int -> true
  | _ -> a = b

let ty_numeric = function
  | Ty_int | Ty_float -> true
  | Ty_str | Ty_date -> false

let type_rank = function
  | Null -> 0
  | Int _ -> 1
  | Float _ -> 1
  | Date _ -> 2
  | Str _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | Str x, Str y -> Stdlib.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | (Null | Int _ | Float _ | Str _ | Date _), _ ->
    Stdlib.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let is_null = function Null -> true | Int _ | Float _ | Str _ | Date _ -> false

let eq_sql a b = (not (is_null a)) && (not (is_null b)) && equal a b

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash (float_of_int x)
  | Float x -> Hashtbl.hash x
  | Str s -> Hashtbl.hash s
  | Date d -> Hashtbl.hash (1000003 * d)

let to_float = function
  | Int x -> float_of_int x
  | Float x -> x
  | Date d -> float_of_int d
  | Null -> invalid_arg "Value.to_float: Null"
  | Str s -> invalid_arg ("Value.to_float: string " ^ s)

let add a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (x + y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (to_float a +. to_float b)
  | _ -> invalid_arg "Value.add: non-numeric"

let min_v a b =
  if is_null a then b else if is_null b then a
  else if compare a b <= 0 then a else b

let max_v a b =
  if is_null a then b else if is_null b then a
  else if compare a b >= 0 then a else b

(* Days in each month of a non-leap year, cumulative. *)
let cum_days = [| 0; 31; 59; 90; 120; 151; 181; 212; 243; 273; 304; 334 |]

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_from_civil ~y ~m ~d =
  (* days since 1992-01-01 *)
  let rec years acc yy = if yy >= y then acc
    else years (acc + (if is_leap yy then 366 else 365)) (yy + 1)
  in
  let base = years 0 1992 in
  let leap_extra = if m > 2 && is_leap y then 1 else 0 in
  base + cum_days.(m - 1) + leap_extra + (d - 1)

let date_of_string s =
  try Scanf.sscanf s "%d-%d-%d" (fun y m d -> Date (days_from_civil ~y ~m ~d))
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    invalid_arg ("Value.date_of_string: " ^ s)

let civil_of_days days =
  let rec find_year y rem =
    let len = if is_leap y then 366 else 365 in
    if rem < len then y, rem else find_year (y + 1) (rem - len)
  in
  let y, doy = find_year 1992 days in
  let leap = is_leap y in
  let month_len m =
    let base = cum_days.(m) - cum_days.(m - 1) in
    if m = 2 && leap then base + 1
    else if m = 12 then 31
    else base
  in
  (* month_len above works for m in 1..11 via cumulative diffs; December
     handled explicitly. *)
  let rec find_month m rem =
    let len =
      if m = 12 then 31
      else month_len m
    in
    if rem < len then m, rem else find_month (m + 1) (rem - len)
  in
  let m, dom = find_month 1 doy in
  y, m, dom + 1

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%.4f" x
  | Str s -> s
  | Date d ->
    let y, m, dd = civil_of_days d in
    Printf.sprintf "%04d-%02d-%02d" y m dd

let pp fmt v =
  match v with
  | Str s -> Format.fprintf fmt "%S" s
  | Null | Int _ | Float _ | Date _ -> Format.pp_print_string fmt (to_string v)
