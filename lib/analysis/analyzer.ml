open Adp_relation
open Adp_exec
open Adp_optimizer

type schema_lookup = string -> Schema.t option
type type_lookup = string -> Value.ty option

let no_types _ = None

let type_sample_limit = 100

let types_of_relations rels =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (_, rel) ->
      let schema = Relation.schema rel in
      let cols = Schema.columns schema in
      let n = min type_sample_limit (Relation.cardinality rel) in
      for i = 0 to n - 1 do
        let tup = Relation.get rel i in
        Array.iteri
          (fun j col ->
            if not (Hashtbl.mem table col) then
              match Value.ty_of tup.(j) with
              | Some ty -> Hashtbl.add table col ty
              | None -> ())
          cols
      done)
    rels;
  fun col -> Hashtbl.find_opt table col

(* ------------------------------------------------------------------ *)
(* Pass 1: schema / type checking                                     *)
(* ------------------------------------------------------------------ *)

let string_set xs = List.sort_uniq String.compare xs

let agg_input_columns (a : Aggregate.spec) =
  match a.fn with Count -> [] | Sum | Min | Max | Avg -> Expr.columns a.expr

(* Walk the plan bottom-up computing each node's output schema exactly as
   Plan.instantiate would, accumulating diagnostics instead of raising.
   A node whose schema cannot be determined propagates None upward so one
   root cause does not cascade into spurious downstream reports. *)
let rec walk ~types ~lookup ~path spec :
  Schema.t option * Diagnostic.t list =
  match spec with
  | Plan.Scan { source; filter } -> (
    match lookup source with
    | None ->
      ( None,
        [ Diagnostic.errorf ~code:"unknown-source" ~path
            "scan source %S is not in the catalog" source ] )
    | Some schema ->
      let ds =
        List.filter_map
          (fun col ->
            if Schema.mem schema col then None
            else
              Some
                (Diagnostic.errorf ~code:"unknown-column" ~path
                   "filter column %S does not resolve in source %S" col
                   source))
          (string_set (Predicate.columns filter))
      in
      ((if ds = [] then Some schema else None), ds))
  | Plan.Join { left; right; left_key; right_key } ->
    let ls, dl = walk ~types ~lookup ~path:(path ^ ".left") left in
    let rs, dr = walk ~types ~lookup ~path:(path ^ ".right") right in
    let ds = ref (dl @ dr) in
    let add d = ds := !ds @ [ d ] in
    let overlap =
      List.filter
        (fun r -> List.mem r (Plan.relations right))
        (string_set (Plan.relations left))
    in
    List.iter
      (fun r ->
        add
          (Diagnostic.errorf ~code:"duplicate-source-in-plan" ~path
             "source %S appears on both sides of the join" r))
      overlap;
    if List.length left_key <> List.length right_key then
      add
        (Diagnostic.errorf ~code:"join-key-arity-mismatch" ~path
           "left key has %d columns, right key has %d"
           (List.length left_key) (List.length right_key))
    else if left_key = [] then
      add
        (Diagnostic.warning ~code:"cross-product-join" ~path
           "join has no key columns: every pair of inputs matches");
    let key_ty side schema col =
      match schema with
      | None -> None
      | Some schema ->
        if Schema.mem schema col then types col
        else begin
          add
            (Diagnostic.errorf ~code:"join-key-unresolved" ~path
               "%s join key %S does not resolve in the %s input" side col
               side);
          None
        end
    in
    let lt = List.map (key_ty "left" ls) left_key in
    let rt = List.map (key_ty "right" rs) right_key in
    if List.length lt = List.length rt then
      List.iteri
        (fun i (a, b) ->
          match (a, b) with
          | Some ta, Some tb when not (Value.ty_joinable ta tb) ->
            add
              (Diagnostic.errorf ~code:"join-key-type-mismatch" ~path
                 "key pair %d joins %s %s with %s %s: no value of one type \
                  ever equals the other"
                 i
                 (List.nth left_key i)
                 (Value.ty_to_string ta)
                 (List.nth right_key i)
                 (Value.ty_to_string tb))
          | _ -> ())
        (List.combine lt rt);
    let schema =
      match (ls, rs) with
      | Some a, Some b -> (
        try Some (Schema.concat a b)
        with Invalid_argument msg ->
          add
            (Diagnostic.errorf ~code:"bad-schema" ~path
               "join output schema is malformed: %s" msg);
          None)
      | _ -> None
    in
    (schema, !ds)
  | Plan.Preagg { child; group_cols; aggs; _ } ->
    let cs, dc = walk ~types ~lookup ~path:(path ^ ".child") child in
    let ds = ref dc in
    let add d = ds := !ds @ [ d ] in
    (match cs with
     | None -> ()
     | Some child_schema ->
       List.iter
         (fun col ->
           if not (Schema.mem child_schema col) then
             add
               (Diagnostic.errorf ~code:"preagg-missing-column" ~path
                  "group column %S does not resolve in the \
                   pre-aggregation input"
                  col))
         (string_set group_cols);
       List.iter
         (fun (a : Aggregate.spec) ->
           List.iter
             (fun col ->
               if not (Schema.mem child_schema col) then
                 add
                   (Diagnostic.errorf ~code:"preagg-missing-column" ~path
                      "aggregate %S reads column %S, absent from the \
                       pre-aggregation input"
                      a.name col)
               else
                 match a.fn with
                 | Sum | Avg -> (
                   match types col with
                   | Some ty when not (Value.ty_numeric ty) ->
                     add
                       (Diagnostic.errorf ~code:"preagg-non-numeric-agg"
                          ~path
                          "aggregate %S applies %s to %s column %S"
                          a.name
                          (match a.fn with Sum -> "sum" | _ -> "avg")
                          (Value.ty_to_string ty) col)
                   | _ -> ())
                 | Count | Min | Max -> ())
             (agg_input_columns a))
         aggs);
    let schema =
      match cs with
      | None -> None
      | Some _ -> (
        try Some (Aggregate.partial_schema ~group_cols aggs)
        with Invalid_argument msg ->
          add
            (Diagnostic.errorf ~code:"bad-schema" ~path
               "pre-aggregation output schema is malformed: %s" msg);
          None)
    in
    (schema, !ds)

let spec_schema ~lookup spec =
  match walk ~types:no_types ~lookup ~path:"root" spec with
  | Some schema, _ -> Ok schema
  | None, ds -> Error ds

let check_plan ?(types = no_types) ~lookup spec =
  snd (walk ~types ~lookup ~path:"root" spec)

(* ------------------------------------------------------------------ *)
(* Query checking                                                     *)
(* ------------------------------------------------------------------ *)

let check_query ~lookup (q : Logical.query) =
  let schema_of name =
    match lookup name with Some s -> s | None -> raise Not_found
  in
  let base =
    List.map
      (fun (code, message) -> Diagnostic.error ~code ~path:"query" message)
      (Logical.validate_list ~schema_of q)
  in
  let n = List.length q.sources in
  if n > Enumerate.max_relations then
    base
    @ [ Diagnostic.errorf ~code:"too-many-relations" ~path:"query"
          "query joins %d relations; the optimizer enumerates at most %d" n
          Enumerate.max_relations ]
  else base

(* ------------------------------------------------------------------ *)
(* Plan-for-query conformance                                         *)
(* ------------------------------------------------------------------ *)

let pp_set names = String.concat ", " names

let rec scan_filters = function
  | Plan.Scan { source; filter } -> [ (source, filter) ]
  | Plan.Join { left; right; _ } -> scan_filters left @ scan_filters right
  | Plan.Preagg { child; _ } -> scan_filters child

let check_plan_for_query ?(types = no_types) ~lookup (q : Logical.query)
    spec =
  let ds = check_plan ~types ~lookup spec in
  let plan_rels = string_set (Plan.relations spec) in
  let query_rels = string_set (Logical.source_names q) in
  if plan_rels <> query_rels then
    ds
    @ [ Diagnostic.errorf ~code:"plan-relation-mismatch" ~path:"root"
          "plan joins {%s} but the query names {%s}" (pp_set plan_rels)
          (pp_set query_rels) ]
  else begin
    (* Only comparable when the relation sets agree. *)
    let plan_preds = string_set (Plan.predicates spec) in
    let query_preds =
      string_set (Logical.preds_within q (Logical.source_names q))
    in
    let pred_ds =
      if plan_preds <> query_preds then
        [ Diagnostic.errorf ~code:"plan-predicate-mismatch" ~path:"root"
            "plan applies predicates {%s} but the query requires {%s}"
            (pp_set plan_preds) (pp_set query_preds) ]
      else []
    in
    let filter_ds =
      List.filter_map
        (fun (source, filter) ->
          match
            List.find_opt
              (fun (s : Logical.source) -> s.name = source)
              q.sources
          with
          | Some s when s.filter = filter -> None
          | Some s ->
            Some
              (Diagnostic.errorf ~code:"plan-filter-mismatch" ~path:source
                 "scan of %S filters on [%s] but the query pushes down \
                  [%s]"
                 source
                 (Predicate.to_string filter)
                 (Predicate.to_string s.filter))
          | None -> None (* already reported as plan-relation-mismatch *))
        (scan_filters spec)
    in
    ds @ pred_ds @ filter_ds
  end

(* ------------------------------------------------------------------ *)
(* Pass 2: ADP conformance                                            *)
(* ------------------------------------------------------------------ *)

(* The effective leaf of a source is the unit whose buffered partition the
   stitch-up phase reuses: the scan itself, or the pre-aggregation sitting
   directly above it (Plan.leaf_partitions makes the same choice at run
   time).  Phases may only be combined when these signatures agree — the
   regions of each relation must partition the *same* stream. *)
let effective_leaf_signatures spec =
  let rec go spec =
    match spec with
    | Plan.Scan { source; filter } ->
      [ (source, Plan.scan_token ~source ~filter) ]
    | Plan.Preagg { child = Plan.Scan { source; _ }; _ } ->
      [ (source, Plan.signature_of spec) ]
    | Plan.Preagg { child; _ } -> go child
    | Plan.Join { left; right; _ } -> go left @ go right
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (go spec)

let check_conformance specs =
  match specs with
  | [] | [ _ ] -> []
  | first :: rest ->
    let base0 = string_set (Plan.relations first) in
    let sigs0 = effective_leaf_signatures first in
    List.concat
      (List.mapi
         (fun i spec ->
           let path = Printf.sprintf "phase-%d" (i + 1) in
           let base = string_set (Plan.relations spec) in
           if base <> base0 then
             [ Diagnostic.errorf ~code:"adp-base-set-mismatch" ~path
                 "phase plan covers {%s} but phase 0 covers {%s}: regions \
                  of different relation sets cannot be stitched"
                 (pp_set base) (pp_set base0) ]
           else
             List.filter_map
               (fun ((source, s), (_, s0)) ->
                 if s = s0 then None
                 else
                   Some
                     (Diagnostic.errorf
                        ~code:"adp-leaf-signature-mismatch" ~path
                        "leaf %S has signature %s but phase 0 has %s: the \
                         phases partition different streams"
                        source s s0))
               (List.combine (effective_leaf_signatures spec) sigs0))
         rest)

let check_equivalent ~before ~after =
  let rb = string_set (Plan.relations before)
  and ra = string_set (Plan.relations after) in
  let rel_ds =
    if rb <> ra then
      [ Diagnostic.errorf ~code:"rewrite-relation-mismatch" ~path:"root"
          "rewrite changed the base relations from {%s} to {%s}"
          (pp_set rb) (pp_set ra) ]
    else []
  in
  let pb = string_set (Plan.predicates before)
  and pa = string_set (Plan.predicates after) in
  let pred_ds =
    if pb <> pa then
      [ Diagnostic.errorf ~code:"rewrite-predicate-mismatch" ~path:"root"
          "rewrite changed the join predicates from {%s} to {%s}"
          (pp_set pb) (pp_set pa) ]
    else []
  in
  rel_ds @ pred_ds

(* ------------------------------------------------------------------ *)
(* Pass 3: stitch-up trees                                            *)
(* ------------------------------------------------------------------ *)

let check_stitch_tree ~phases (q : Logical.query) spec =
  let rec preagg_placement ~path spec =
    match spec with
    | Plan.Scan _ -> []
    | Plan.Preagg { child = Plan.Scan _; _ } -> []
    | Plan.Preagg { child; _ } ->
      Diagnostic.errorf ~code:"stitch-preagg-above-join" ~path
        "stitch-up pre-aggregation must sit directly above a scan so leaf \
         partitions stay reusable"
      :: preagg_placement ~path:(path ^ ".child") child
    | Plan.Join { left; right; _ } ->
      preagg_placement ~path:(path ^ ".left") left
      @ preagg_placement ~path:(path ^ ".right") right
  in
  let placement = preagg_placement ~path:"root" spec in
  let tree_rels = string_set (Plan.relations spec) in
  let query_rels = string_set (Logical.source_names q) in
  let coverage =
    if tree_rels <> query_rels then
      [ Diagnostic.errorf ~code:"plan-relation-mismatch" ~path:"root"
          "stitch-up tree joins {%s} but the query names {%s}"
          (pp_set tree_rels) (pp_set query_rels) ]
    else []
  in
  placement @ coverage @ Stitch_matrix.check ~phases spec

(* ------------------------------------------------------------------ *)
(* Pass 4: configuration audit                                        *)
(* ------------------------------------------------------------------ *)

let check_knobs ~poll_interval ~switch_threshold ~max_phases ~min_leaf_seen
    ~min_remaining_fraction ~(retry : Retry.policy) =
  let ds = ref [] in
  let bad path fmt =
    Printf.ksprintf
      (fun message ->
        ds := !ds @ [ Diagnostic.error ~code:"bad-knob" ~path message ])
      fmt
  in
  if not (poll_interval > 0.) then
    bad "poll_interval" "poll interval must be positive, got %g"
      poll_interval;
  (* 0 is legal: it pins the initial plan (switching never pays off). *)
  if not (switch_threshold >= 0.) then
    bad "switch_threshold"
      "switch threshold must be non-negative (a ratio of estimated costs; \
       0 disables switching), got %g"
      switch_threshold;
  if max_phases < 1 then
    bad "max_phases" "at least one phase is required, got %d" max_phases;
  if min_leaf_seen < 0 then
    bad "min_leaf_seen" "minimum leaf-seen count cannot be negative, got %d"
      min_leaf_seen;
  if not (min_remaining_fraction >= 0. && min_remaining_fraction <= 1.)
  then
    bad "min_remaining_fraction"
      "remaining-work fraction must lie in [0, 1], got %g"
      min_remaining_fraction;
  if not (retry.timeout_s > 0.) then
    bad "retry.timeout_s" "timeout must be positive, got %g"
      retry.timeout_s;
  if retry.max_retries < 0 then
    bad "retry.max_retries" "retry budget cannot be negative, got %d"
      retry.max_retries;
  if not (retry.backoff_initial_s > 0.) then
    bad "retry.backoff_initial_s" "initial backoff must be positive, got %g"
      retry.backoff_initial_s;
  if not (retry.backoff_multiplier >= 1.) then
    bad "retry.backoff_multiplier"
      "backoff multiplier below 1 shrinks the backoff, got %g"
      retry.backoff_multiplier;
  if not (retry.backoff_max_s >= retry.backoff_initial_s) then
    bad "retry.backoff_max_s"
      "backoff cap %g is below the initial backoff %g" retry.backoff_max_s
      retry.backoff_initial_s;
  if not (retry.jitter >= 0. && retry.jitter < 1.) then
    bad "retry.jitter" "jitter must lie in [0, 1), got %g" retry.jitter;
  !ds

let check_governance ~deadline ~memory_budget ~memory_ceiling
    ~(breaker : Breaker.policy option) =
  let ds = ref [] in
  let bad code path fmt =
    Printf.ksprintf
      (fun message -> ds := !ds @ [ Diagnostic.error ~code ~path message ])
      fmt
  in
  (match deadline with
   | Some d when not (d > 0.) ->
     bad "gov-bad-deadline" "deadline"
       "deadline must be a positive virtual-µs budget, got %g" d
   | Some _ | None -> ());
  (match memory_budget with
   | Some b when b <= 0 ->
     bad "gov-bad-budget" "memory_budget"
       "memory budget must be a positive tuple count, got %d" b
   | Some _ | None -> ());
  (match memory_ceiling with
   | Some c when c <= 0 ->
     bad "gov-bad-ceiling" "memory_ceiling"
       "memory ceiling must be a positive tuple count, got %d" c
   | Some _ | None -> ());
  (match memory_budget, memory_ceiling with
   | Some b, Some c when b > 0 && c > 0 && c < b ->
     bad "gov-ceiling-below-budget" "memory_ceiling"
       "hard ceiling %d is below the soft paging budget %d, so the query \
        would degrade before paging ever triggers"
       c b
   | _ -> ());
  (match breaker with
   | None -> ()
   | Some p ->
     if not (p.window_s > 0.) then
       bad "gov-bad-breaker" "breaker.window_s"
         "failure window must be positive, got %g" p.window_s;
     if p.failure_threshold < 1 then
       bad "gov-bad-breaker" "breaker.failure_threshold"
         "at least one failure must be required to trip, got %d"
         p.failure_threshold;
     if not (p.cooldown_s > 0.) then
       bad "gov-bad-breaker" "breaker.cooldown_s"
         "cooldown must be positive, got %g" p.cooldown_s;
     if p.window_s > 0. && p.cooldown_s > 0. && p.window_s < p.cooldown_s
     then
       bad "gov-breaker-window" "breaker.window_s"
         "failure window %g s is shorter than the probe cooldown %g s: \
          recorded failures expire before the breaker can re-trip, so it \
          flaps instead of holding open"
         p.window_s p.cooldown_s;
     if not (p.probe_jitter >= 0. && p.probe_jitter < 1.) then
       bad "gov-bad-breaker" "breaker.probe_jitter"
         "probe jitter must lie in [0, 1), got %g" p.probe_jitter);
  !ds

(* ------------------------------------------------------------------ *)
(* Umbrella                                                           *)
(* ------------------------------------------------------------------ *)

let check_workload ?(types = no_types) ?(phases = 2) ~lookup q specs =
  let qds = check_query ~lookup q in
  (* A broken query makes plan-vs-query comparisons meaningless. *)
  if Diagnostic.has_errors qds then qds
  else
    let pds =
      List.concat
        (List.mapi
           (fun i spec ->
             List.map
               (fun (d : Diagnostic.t) ->
                 if List.length specs > 1 then
                   { d with path = Printf.sprintf "plan-%d.%s" i d.path }
                 else d)
               (check_plan_for_query ~types ~lookup q spec))
           specs)
    in
    let cds = check_conformance specs in
    let sds =
      match specs with
      | spec :: _ when phases > 1 -> check_stitch_tree ~phases q spec
      | _ -> []
    in
    qds @ pds @ cds @ sds

(* ------------------------------------------------------------------ *)
(* Pass 5: checkpoint phase ledger                                    *)
(* ------------------------------------------------------------------ *)

let check_checkpoint_regions ~ledger ~sources =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  (match ledger with
   | [] -> add (Diagnostic.error ~code:"ckpt-empty-ledger" ~path:"ledger"
                  "checkpoint carries no phase regions")
   | _ -> ());
  (* Phase ids must be strictly increasing: the ledger's order *is* the
     region order (phase k's region is (end_{k-1}, end_k]). *)
  let rec ids_ok = function
    | (a, _) :: ((b, _) :: _ as rest) ->
      if b <= a then
        add
          (Diagnostic.errorf ~code:"ckpt-phase-order"
             ~path:(Printf.sprintf "phase-%d" b)
             "phase ids out of order in the ledger (%d after %d)" b a);
      ids_ok rest
    | [ _ ] | [] -> ()
  in
  ids_ok ledger;
  let source_names = List.map fst sources in
  (* Every phase entry must speak about the same source set the recovered
     execution will read, and end positions must be monotone per source
     (otherwise the regions overlap or leave gaps) and within the
     re-created source's cardinality (otherwise the stream shrank and the
     recorded regions no longer partition it). *)
  List.iter
    (fun (phase_id, ends) ->
      let path = Printf.sprintf "phase-%d" phase_id in
      List.iter
        (fun (src, pos) ->
          match List.assoc_opt src sources with
          | None ->
            add
              (Diagnostic.errorf ~code:"ckpt-source-missing"
                 ~path:(path ^ "." ^ src)
                 "checkpoint records positions for source %S, which the \
                  recovered execution does not have" src)
          | Some card ->
            if pos < 0 then
              add
                (Diagnostic.errorf ~code:"ckpt-region-overlap"
                   ~path:(path ^ "." ^ src)
                   "negative stream position %d" pos);
            if pos > card then
              add
                (Diagnostic.errorf ~code:"ckpt-source-truncated"
                   ~path:(path ^ "." ^ src)
                   "checkpoint position %d exceeds source %S's cardinality \
                    %d: the stream shrank and the recorded regions no \
                    longer partition it" pos src card))
        ends;
      List.iter
        (fun name ->
          if not (List.mem_assoc name ends) then
            add
              (Diagnostic.errorf ~code:"ckpt-source-unknown"
                 ~path:(path ^ "." ^ name)
                 "source %S has no recorded position in this phase entry"
                 name))
        source_names)
    ledger;
  (* Monotone end positions across consecutive phases. *)
  let rec monotone = function
    | (pa, ea) :: (((pb, eb) :: _) as rest) ->
      List.iter
        (fun (src, pos_a) ->
          match List.assoc_opt src eb with
          | Some pos_b when pos_b < pos_a ->
            add
              (Diagnostic.errorf ~code:"ckpt-region-overlap"
                 ~path:(Printf.sprintf "phase-%d.%s" pb src)
                 "source %S position regresses from %d (phase %d) to %d \
                  (phase %d): phase regions would overlap" src pos_a pa
                 pos_b pb)
          | Some _ | None -> ())
        ea;
      monotone rest
    | [ _ ] | [] -> ()
  in
  monotone ledger;
  List.rev !ds
