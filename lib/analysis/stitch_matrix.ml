open Adp_exec

type combo = (string * int) list

let combo_to_string c =
  String.concat ","
    (List.map (fun (r, p) -> Printf.sprintf "%s=%d" r p) c)

let enumeration_bound = 65536

let matrix_size ~relations ~phases =
  float_of_int phases ** float_of_int (List.length relations)

let all_combos ~relations ~phases =
  let relations = List.sort String.compare relations in
  List.fold_left
    (fun acc r ->
      List.concat_map
        (fun combo -> List.init phases (fun p -> (r, p) :: combo))
        acc)
    [ [] ] (List.rev relations)
  |> List.map (List.sort (fun (a, _) (b, _) -> String.compare a b))

(* Symbolic mirror of Stitchup.eval: a node's value is the set of uniform
   lineages (one structure per phase) plus the multiset of mixed lineage
   vectors its evaluation emits. *)
type sym = {
  rels : string list;  (* sorted *)
  uniform : int list;
  mixed : combo list;
}

let uvec rels p = List.map (fun r -> (r, p)) rels

let merge a b =
  List.sort (fun (x, _) (y, _) -> String.compare x y) (a @ b)

let rec eval ~phases ~is_root spec =
  match spec with
  | Plan.Scan { source; _ } ->
    { rels = [ source ]; uniform = List.init phases Fun.id; mixed = [] }
  | Plan.Preagg { child; _ } ->
    (* Pre-aggregation never mixes lineages; transparent here.  Its legal
       placement (directly above a scan) is Analyzer.check_stitch_tree's
       concern. *)
    eval ~phases ~is_root child
  | Plan.Join { left; right; _ } ->
    let l = eval ~phases ~is_root:false left in
    let r = eval ~phases ~is_root:false right in
    let rels = List.sort String.compare (l.rels @ r.rels) in
    let uniform =
      if is_root then []
      else List.filter (fun p -> List.mem p r.uniform) l.uniform
    in
    let mixed = ref [] in
    (* Mirrors the probe order of Stitchup.eval: each uniform left
       structure against every differently-phased uniform right structure
       and the mixed right structure; then the mixed left structure
       against every right structure. *)
    List.iter
      (fun pl ->
        List.iter
          (fun pr ->
            if pl <> pr then
              mixed := merge (uvec l.rels pl) (uvec r.rels pr) :: !mixed)
          r.uniform;
        List.iter
          (fun mv -> mixed := merge (uvec l.rels pl) mv :: !mixed)
          r.mixed)
      l.uniform;
    List.iter
      (fun pr ->
        List.iter
          (fun mv -> mixed := merge mv (uvec r.rels pr) :: !mixed)
          l.mixed)
      r.uniform;
    List.iter
      (fun ml ->
        List.iter (fun mr -> mixed := merge ml mr :: !mixed) l.mixed)
      r.mixed;
    { rels; uniform; mixed = !mixed }

let symbolic ?(exclude_root_uniform = true) ~phases spec =
  let root = eval ~phases ~is_root:true spec in
  if exclude_root_uniform then root.mixed
  else root.mixed @ List.init phases (fun p -> uvec root.rels p)

(* Cap per-code diagnostic volume: a badly broken matrix misses thousands
   of combinations; the first few plus a count tell the whole story. *)
let cap = 8

let capped code path msgs =
  let n = List.length msgs in
  let shown = List.filteri (fun i _ -> i < cap) msgs in
  let ds = List.map (Diagnostic.error ~code ~path) shown in
  if n > cap then
    ds
    @ [ Diagnostic.error ~code ~path
          (Printf.sprintf "... and %d more combinations" (n - cap)) ]
  else ds

let check_cover ~relations ~phases combos =
  let relations = List.sort String.compare relations in
  let m = List.length relations in
  if phases <= 1 then
    (* A single phase needs no stitch-up; anything emitted is spurious. *)
    (match combos with
     | [] -> []
     | _ ->
       [ Diagnostic.error ~code:"stitch-duplicate-combo" ~path:"stitchup"
           "single-phase execution must emit no stitch-up combinations" ])
  else if matrix_size ~relations ~phases > float_of_int enumeration_bound
  then
    [ Diagnostic.warning ~code:"stitch-matrix-too-large" ~path:"stitchup"
        (Printf.sprintf
           "%d^%d combinations exceed the enumeration bound (%d); coverage \
            not verified"
           phases m enumeration_bound) ]
  else begin
    let counts = Hashtbl.create 256 in
    List.iter
      (fun c ->
        let c = List.sort (fun (a, _) (b, _) -> String.compare a b) c in
        Hashtbl.replace counts c
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
      combos;
    let is_uniform c =
      match c with
      | [] -> true
      | (_, p0) :: rest -> List.for_all (fun (_, p) -> p = p0) rest
    in
    let missing = ref [] and dup = ref [] and uniform = ref [] and alien = ref [] in
    List.iter
      (fun c ->
        let n = Option.value ~default:0 (Hashtbl.find_opt counts c) in
        Hashtbl.remove counts c;
        if is_uniform c then begin
          if n > 0 then
            uniform :=
              Printf.sprintf "uniform combination %s must be excluded"
                (combo_to_string c)
              :: !uniform
        end
        else if n = 0 then
          missing :=
            Printf.sprintf "combination %s is never produced"
              (combo_to_string c)
            :: !missing
        else if n > 1 then
          dup :=
            Printf.sprintf "combination %s produced %d times"
              (combo_to_string c) n
            :: !dup)
      (all_combos ~relations ~phases);
    (* Whatever is left in [counts] covers relations or phases outside the
       expected matrix; report them in key order, not hash order. *)
    let aliens =
      Hashtbl.fold (fun c _ acc -> combo_to_string c :: acc) counts []
      |> List.sort String.compare
    in
    alien :=
      List.rev_map
        (fun c ->
          Printf.sprintf "combination %s is outside the %d-phase matrix" c
            phases)
        aliens;
    capped "stitch-missing-combo" "stitchup" (List.rev !missing)
    @ capped "stitch-duplicate-combo" "stitchup" (List.rev !dup)
    @ capped "stitch-uniform-combo" "stitchup" (List.rev !uniform)
    @ capped "stitch-alien-combo" "stitchup" (List.rev !alien)
  end

let check ?exclude_root_uniform ~phases spec =
  let relations = Plan.relations spec in
  if phases <= 1 then []
  else if
    matrix_size ~relations ~phases > float_of_int enumeration_bound
  then
    [ Diagnostic.warning ~code:"stitch-matrix-too-large" ~path:"stitchup"
        (Printf.sprintf
           "%d^%d combinations exceed the enumeration bound (%d); coverage \
            not verified"
           phases (List.length relations) enumeration_bound) ]
  else
    check_cover ~relations ~phases
      (symbolic ?exclude_root_uniform ~phases spec)
