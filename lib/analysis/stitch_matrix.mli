open Adp_exec

(** Symbolic verification of stitch-up coverage (§3.4).

    After n phases over m base relations, the stitch-up phase must
    produce exactly the nᵐ − n cross-phase lineage combinations — each
    once, and never a uniform combination (those were already emitted by
    their phases; the root-level exclusion list skips them).  This module
    replays the stitch-up evaluator's structure-to-structure enumeration
    {e symbolically}: instead of tuples, each state structure carries the
    lineage vector (relation → phase) it would produce, so the full
    combination matrix of a candidate stitch-up tree can be checked
    without executing anything. *)

(** One lineage combination: phase id per base relation, sorted by
    relation name. *)
type combo = (string * int) list

val combo_to_string : combo -> string

(** Every assignment of a phase in [0, phases) to each relation —
    the full nᵐ matrix, uniform rows included. *)
val all_combos : relations:string list -> phases:int -> combo list

(** The multiset of lineage combinations the stitch-up evaluator emits at
    the root of [tree] for the given phase count, mirroring its
    uniform/mixed structure-to-structure enumeration.  Pre-aggregation
    nodes are lineage-transparent.  [exclude_root_uniform] (default true)
    models the root exclusion list; pass [false] to model a buggy
    evaluator that re-emits uniform combinations. *)
val symbolic :
  ?exclude_root_uniform:bool -> phases:int -> Plan.spec -> combo list

(** [check_cover ~relations ~phases combos] verifies that [combos] covers
    exactly the nᵐ − n cross-phase combinations, each once.  Diagnostics:
    ["stitch-missing-combo"], ["stitch-duplicate-combo"],
    ["stitch-uniform-combo"], ["stitch-alien-combo"] (a combination whose
    relations or phases lie outside the matrix).  Combination counts beyond
    {!enumeration_bound} yield a single ["stitch-matrix-too-large"]
    warning instead of enumerating. *)
val check_cover :
  relations:string list -> phases:int -> combo list -> Diagnostic.t list

(** {!symbolic} composed with {!check_cover} over the tree's own base
    relations: verifies the tree's stitch-up matrix is exactly covered. *)
val check :
  ?exclude_root_uniform:bool -> phases:int -> Plan.spec -> Diagnostic.t list

(** Matrices larger than this many combinations are not enumerated. *)
val enumeration_bound : int
