(** Structured diagnostics produced by the static plan analyzer.

    Every problem the analyzer finds is reported as one of these instead
    of a mid-run [Invalid_argument]: a stable kebab-case code (what went
    wrong), a severity, a path locating the problem (a plan-tree path
    like ["root.left.right"], a source name, or a file:line for the
    determinism audit), and a human-readable message.  Codes are part of
    the tool's interface — tests and scripts match on them — so existing
    codes must not be renamed. *)

type severity = Error | Warning

type t = {
  code : string;  (** stable kebab-case identifier, e.g. ["unknown-column"] *)
  severity : severity;
  path : string;  (** where: plan path, source name, or file:line *)
  message : string;
}

val error : code:string -> path:string -> string -> t
val warning : code:string -> path:string -> string -> t

(** [errorf ~code ~path fmt ...] — formatted {!error}. *)
val errorf :
  code:string -> path:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool
val has_errors : t list -> bool

(** Only the [Error]-severity entries. *)
val errors : t list -> t list

(** Distinct codes present, sorted. *)
val codes : t list -> string list

val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
val to_string : t list -> string

(** Raised by plan-boundary hooks when analysis finds errors; carries the
    boundary name and every diagnostic so the failure reports all
    problems at once. *)
exception Failed of string * t list

(** [raise_if_errors ~where diags] raises {!Failed} when [diags] contains
    at least one error ([where] prefixes the exception message context);
    warnings alone never raise. *)
val raise_if_errors : where:string -> t list -> unit
