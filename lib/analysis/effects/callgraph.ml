(* Per-module call graph over the parsed units, and the taint fixpoint
   behind the forbidden-effect reachability pass.

   Defs are the top-level value bindings of each file-module (nested
   module values are flattened as "Sub.name").  References are collected
   syntactically: every identifier mentioned in a def's body is either a
   forbidden primitive (recorded as a direct effect use) or resolved,
   best-effort, against the def table — "Corrective.run" resolves through
   the file-module table, a bare "helper" resolves within its own module.
   First-class uses (storing a function in a record) count as calls,
   which errs on the conservative side.

   Taint: a def is tainted by every effect kind it uses *unwaived*, and
   by the taint of every callee whose call site is unwaived.  A waiver on
   the primitive line declares the effect harmless at its source; a
   waiver on a call line cuts the flow at that edge — the "scoped waiver
   on the call site" of the zero-perturbation contract. *)

type prim_use = {
  p_kind : Effect_table.kind;
  p_path : string;  (* "Sys.time" *)
  p_line : int;
  p_waived : bool;
  p_sanctioned : bool;
      (* a wall read inside the structurally allowlisted
         lib/obs/wallclock module: not a finding, generates no taint *)
}

type call = {
  c_ref : string list;  (* raw identifier path as written *)
  c_line : int;
  c_waiver : Src_unit.waiver option;
}

type def = {
  d_module : string;
  d_name : string;
  d_unit : Src_unit.t;
  mutable d_prims : prim_use list;
  mutable d_refs : (string list * int) list;
  mutable d_calls : (def * call) list;
  mutable d_taint : (Effect_table.kind * witness) list;
}

(* How the taint got there, for rendering a witness chain. *)
and witness =
  | W_prim of string * string * int  (* primitive path, file, line *)
  | W_call of def * int              (* via this callee, called at line *)

let qualified d = d.d_module ^ "." ^ d.d_name

(* ---------------- collection ---------------- *)

let collect_unit (u : Src_unit.t) =
  let defs : (string, def) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let find_or_add name =
    match Hashtbl.find_opt defs name with
    | Some d -> d
    | None ->
      let d =
        { d_module = u.u_module; d_name = name; d_unit = u; d_prims = [];
          d_refs = []; d_calls = []; d_taint = [] }
      in
      Hashtbl.add defs name d;
      order := d :: !order;
      d
  in
  let collect_expr d e =
    let it =
      { Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.Parsetree.pexp_desc with
             | Parsetree.Pexp_ident { txt; loc } ->
               let path = Longident.flatten txt in
               let line = loc.Location.loc_start.Lexing.pos_lnum in
               (match Effect_table.classify path with
                | Some kind ->
                  let sanctioned =
                    kind = Effect_table.Wall_clock
                    && Effect_table.sanctioned_wall_path u.Src_unit.u_path
                  in
                  (* Sanctioned reads never consume a waiver, so a
                     pointless waiver inside the allowlisted module is
                     still flagged as unused. *)
                  let w =
                    if sanctioned then None else Src_unit.waiver_for u ~line
                  in
                  Option.iter (fun w -> w.Src_unit.w_used <- true) w;
                  d.d_prims <-
                    { p_kind = kind; p_path = Effect_table.dotted path;
                      p_line = line; p_waived = w <> None;
                      p_sanctioned = sanctioned }
                    :: d.d_prims
                | None -> d.d_refs <- (path, line) :: d.d_refs)
             | _ -> ());
            Ast_iterator.default_iterator.expr it e) }
    in
    it.expr it e
  in
  let binding_name vb =
    match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
    | Parsetree.Ppat_var { txt; _ } -> Some txt
    | _ -> None
  in
  let rec collect_structure prefix structure =
    List.iter
      (fun (si : Parsetree.structure_item) ->
        match si.pstr_desc with
        | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let name =
                match binding_name vb with
                | Some n -> prefix ^ n
                | None -> prefix ^ "(toplevel)"
              in
              collect_expr (find_or_add name) vb.Parsetree.pvb_expr)
            vbs
        | Parsetree.Pstr_eval (e, _) ->
          collect_expr (find_or_add (prefix ^ "(toplevel)")) e
        | Parsetree.Pstr_module mb -> collect_module prefix mb
        | Parsetree.Pstr_recmodule mbs -> List.iter (collect_module prefix) mbs
        | _ -> ())
      structure
  and collect_module prefix (mb : Parsetree.module_binding) =
    let sub =
      match mb.pmb_name.Location.txt with
      | Some n -> prefix ^ n ^ "."
      | None -> prefix
    in
    match mb.pmb_expr.Parsetree.pmod_desc with
    | Parsetree.Pmod_structure s -> collect_structure sub s
    | _ -> ()
  in
  collect_structure "" u.u_ast;
  List.rev !order

(* ---------------- resolution ---------------- *)

type graph = {
  g_defs : def list;
  g_by_id : (string * string, def) Hashtbl.t;
  g_modules : (string, unit) Hashtbl.t;
}

let build units =
  let defs = List.concat_map collect_unit units in
  let by_id = Hashtbl.create 256 in
  let modules = Hashtbl.create 64 in
  List.iter
    (fun d ->
      Hashtbl.replace modules d.d_module ();
      if not (Hashtbl.mem by_id (d.d_module, d.d_name)) then
        Hashtbl.add by_id (d.d_module, d.d_name) d)
    defs;
  let g = { g_defs = defs; g_by_id = by_id; g_modules = modules } in
  (* Resolve raw references into call edges.  A path is looked up (a)
     from the first component that names a known file-module, taking the
     path's last component as the value ("Adp_exec.Ctx.emit" -> Ctx.emit);
     (b) locally, joined on dots, so nested-module values resolve within
     their own file. *)
  let resolve d path =
    match path with
    | [] -> None
    | [ name ] -> Hashtbl.find_opt by_id (d.d_module, name)
    | _ -> (
      let last = List.nth path (List.length path - 1) in
      let rec from_module = function
        | [] -> None
        | m :: _ when Hashtbl.mem modules m ->
          Hashtbl.find_opt by_id (m, last)
        | _ :: rest -> from_module rest
      in
      match from_module path with
      | Some d -> Some d
      | None -> Hashtbl.find_opt by_id (d.d_module, String.concat "." path))
  in
  List.iter
    (fun d ->
      d.d_calls <-
        List.filter_map
          (fun (path, line) ->
            match resolve d path with
            | Some callee when callee != d ->
              Some
                ( callee,
                  { c_ref = path; c_line = line;
                    c_waiver = Src_unit.waiver_for d.d_unit ~line } )
            | _ -> None)
          (List.rev d.d_refs))
    defs;
  g

(* ---------------- taint fixpoint ---------------- *)

let propagate g =
  List.iter
    (fun d ->
      d.d_taint <-
        List.filter_map
          (fun p ->
            if p.p_waived || p.p_sanctioned then None
            else
              Some (p.p_kind, W_prim (p.p_path, d.d_unit.Src_unit.u_path,
                                      p.p_line)))
          d.d_prims)
    g.g_defs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun d ->
        List.iter
          (fun (callee, c) ->
            if c.c_waiver = None then
              List.iter
                (fun (k, _) ->
                  if not (List.mem_assoc k d.d_taint) then begin
                    d.d_taint <- (k, W_call (callee, c.c_line)) :: d.d_taint;
                    changed := true
                  end)
                callee.d_taint)
          d.d_calls)
      g.g_defs
  done;
  (* An edge waiver did real work iff its callee is tainted. *)
  List.iter
    (fun d ->
      List.iter
        (fun (callee, c) ->
          match c.c_waiver with
          | Some w when callee.d_taint <> [] -> w.Src_unit.w_used <- true
          | _ -> ())
        d.d_calls)
    g.g_defs

(* Render "f -> g -> Sys.time (file:line)" from the witness chain. *)
let witness_chain d kind =
  let buf = Buffer.create 64 in
  let rec go d depth =
    Buffer.add_string buf (qualified d);
    if depth < 8 then
      match List.assoc_opt kind d.d_taint with
      | Some (W_call (callee, _)) ->
        Buffer.add_string buf " -> ";
        go callee (depth + 1)
      | Some (W_prim (path, file, line)) ->
        Buffer.add_string buf (Printf.sprintf " -> %s (%s:%d)" path file line)
      | None -> ()
  in
  go d 0;
  Buffer.contents buf

(* Entry points: (module, Some value) for one function, (module, None)
   for every top-level value of the module. *)
let entry_defs g entries =
  List.concat_map
    (fun (m, v) ->
      match v with
      | Some v -> (
        match Hashtbl.find_opt g.g_by_id (m, v) with
        | Some d -> [ d ]
        | None -> [])
      | None -> List.filter (fun d -> d.d_module = m) g.g_defs)
    entries
