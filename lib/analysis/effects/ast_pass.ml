(* Single-file AST passes: hash-order sensitivity and perturbation
   purity.

   Hash-order: a [Hashtbl.fold] whose folding function builds an
   order-carrying value (list cons/append) inherits the table's
   iteration order — a function of hashing and insertion history, not of
   the keys — so unless the result is piped into a deterministic sort in
   the same expression ([|> List.sort], [List.sort _ (fold ...)],
   [sort @@ fold ...]), any list, trace, report or serialized output it
   flows into silently depends on insertion order.  [Hashtbl.iter]
   accumulating into a ref via cons is the same hazard.  Folds with
   order-insensitive accumulators (sums, or-flags, table-to-table
   copies) are ignored, as are non-literal folding functions (nothing to
   inspect).

   Purity (engine directories only — lib/exec, lib/core, lib/server):
   every [Trace.emit]/[Ctx.emit] call site must be dominated by a traced
   guard ([if Ctx.traced ...], [if Trace.enabled ...], a [trace_on]
   flag), emission results must not feed other expressions, and
   observability reads ([Trace.events], [Profile.spans], ...) may appear
   only under such a guard — decisions must not depend on whether the
   run is observed. *)

type kind =
  | Unsorted_fold of string
  | Unsorted_iter of string
  | Unguarded_emit of string
  | Obs_read of string
  | Emit_feedback of string

type finding = { f_kind : kind; f_line : int }

let engine_dirs = [ "lib/exec"; "lib/core"; "lib/server" ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let in_engine path =
  List.exists (fun d -> contains ~sub:d path) engine_dirs

(* ---------------- small expression queries ---------------- *)

let expr_mem pred e =
  let found = ref false in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.Parsetree.pexp_desc with
           | Parsetree.Pexp_ident { txt; _ }
             when pred (`Ident (Longident.flatten txt)) ->
             found := true
           | Parsetree.Pexp_construct ({ txt = Longident.Lident "::"; _ }, _)
             when pred `Cons ->
             found := true
           | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e) }
  in
  it.expr it e;
  !found

let is_guard_cond e =
  expr_mem
    (function
      | `Ident path -> Effect_table.is_guard_ident path
      | `Cons -> false)
    e

let builds_list e =
  expr_mem
    (function
      | `Cons -> true
      | `Ident path -> (
        match List.rev path with
        | ("@" | "append" | "rev_append" | "cons" | "concat") :: _ ->
          (match path with
           | [ "@" ] | "List" :: _ -> true
           | _ -> false)
        | _ -> false))
    e

let assigns e =
  expr_mem
    (function `Ident [ ":=" ] -> true | `Ident _ | `Cons -> false)
    e

let ident_path e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | _ -> None

let rec fun_body e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun (_, _, _, body) -> fun_body body
  | _ -> e

let is_fun e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ -> true
  | _ -> false

(* an expression that is, or partially applies, a sort *)
let sortish e =
  match ident_path e with
  | Some p -> Effect_table.is_sort p
  | None -> (
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_apply (f, _) -> (
      match ident_path f with
      | Some p -> Effect_table.is_sort p
      | None -> false)
    | _ -> false)

let line_of e = e.Parsetree.pexp_loc.Location.loc_start.Lexing.pos_lnum

(* ---------------- the pass ---------------- *)

let run (u : Src_unit.t) =
  let findings = ref [] in
  let engine = in_engine u.u_path in
  let add kind line = findings := { f_kind = kind; f_line = line } :: !findings in
  let guarded = ref false in
  let sorted = ref false in
  let saving r v f =
    let s = !r in
    r := v;
    f ();
    r := s
  in
  let rec visit e =
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ifthenelse (c, t, eo) when is_guard_cond c ->
      visit c;
      saving guarded true (fun () -> visit t);
      Option.iter visit eo
    | Parsetree.Pexp_fun (_, default, _, body) ->
      Option.iter visit default;
      (* a closure body is a new evaluation context: an enclosing sort
         says nothing about folds performed inside it *)
      saving sorted false (fun () -> visit body)
    | Parsetree.Pexp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          (match (vb.pvb_pat.Parsetree.ppat_desc, vb.pvb_expr) with
           | Parsetree.Ppat_var _, bound when engine -> (
             match bound.Parsetree.pexp_desc with
             | Parsetree.Pexp_apply (f, _)
               when (match ident_path f with
                     | Some p -> Effect_table.is_emit p
                     | None -> false) ->
               add (Emit_feedback "emission result bound to a name")
                 (line_of bound)
             | _ -> ())
           | _ -> ());
          visit vb.pvb_expr)
        vbs;
      visit body
    | Parsetree.Pexp_apply (f, args) -> visit_apply e f args
    | _ -> Ast_iterator.default_iterator.expr deeper e
  and deeper =
    (* default traversal that re-enters [visit] on sub-expressions *)
    { Ast_iterator.default_iterator with expr = (fun _ e -> visit e) }
  and visit_apply e f args =
    let fpath = ident_path f in
    let arg_exprs = List.map snd args in
    (* emission results must not feed other computations *)
    if engine then
      List.iter
        (fun a ->
          match a.Parsetree.pexp_desc with
          | Parsetree.Pexp_apply (g, _)
            when (match ident_path g with
                  | Some p -> Effect_table.is_emit p
                  | None -> false) ->
            add (Emit_feedback "emission used as an argument") (line_of a)
          | _ -> ())
        arg_exprs;
    match fpath with
    | Some [ "|>" ] -> (
      match arg_exprs with
      | [ lhs; rhs ] when sortish rhs ->
        visit rhs;
        saving sorted true (fun () -> visit lhs)
      | _ ->
        visit f;
        List.iter visit arg_exprs)
    | Some [ "@@" ] -> (
      match arg_exprs with
      | [ lhs; rhs ] when sortish lhs ->
        visit lhs;
        saving sorted true (fun () -> visit rhs)
      | _ ->
        visit f;
        List.iter visit arg_exprs)
    | Some p when Effect_table.is_sort p ->
      saving sorted true (fun () -> List.iter visit arg_exprs)
    | Some p when Effect_table.is_hash_fold p ->
      (match arg_exprs with
       | fn :: _ when is_fun fn ->
         if builds_list (fun_body fn) && not !sorted then
           add (Unsorted_fold (Effect_table.dotted p)) (line_of e)
       | _ -> ());
      List.iter visit arg_exprs
    | Some p when Effect_table.is_hash_iter p ->
      (match arg_exprs with
       | fn :: _ when is_fun fn ->
         let body = fun_body fn in
         if assigns body && builds_list body && not !sorted then
           add (Unsorted_iter (Effect_table.dotted p)) (line_of e)
       | _ -> ());
      List.iter visit arg_exprs
    | Some p when engine && Effect_table.is_emit p ->
      if not !guarded then
        add (Unguarded_emit (Effect_table.dotted p)) (line_of e);
      List.iter visit arg_exprs
    | Some p when engine && Effect_table.is_obs_read p ->
      if not !guarded then add (Obs_read (Effect_table.dotted p)) (line_of e);
      List.iter visit arg_exprs
    | _ ->
      visit f;
      List.iter visit arg_exprs
  in
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ e -> visit e) }
  in
  it.structure it u.u_ast;
  List.rev !findings
