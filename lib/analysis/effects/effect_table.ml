(* The forbidden-effect table and the identifier classifiers shared by
   the lint passes.  Everything here works on flattened [Longident]
   paths (["Sys"; "time"]), so a mention inside a string or comment can
   never match — classification happens strictly on the AST. *)

type kind =
  | Wall_clock       (* real-time reads; the engine runs on Clock's virtual time *)
  | Unseeded_random  (* the global Random module; Random.State is sanctioned *)
  | Ambient_read     (* environment/process reads whose result the run can't control *)

let kind_name = function
  | Wall_clock -> "wall-clock read"
  | Unseeded_random -> "unseeded randomness"
  | Ambient_read -> "ambient environment read"

let strip_stdlib = function "Stdlib" :: p -> p | p -> p

(* [classify path] is the effect a *use* of [path] performs, if any.
   Wall-clock and unseeded-randomness uses are errors wherever they
   appear (the zero-perturbation contract is global); ambient reads are
   errors only when reachable from an engine entry point — a bench
   harness may read ADP_SCALE, the hot path may not. *)
let classify path =
  match strip_stdlib path with
  | [ "Sys"; "time" ]
  | [ "Unix"; ("time" | "gettimeofday" | "localtime" | "gmtime" | "times") ]
  (* GC counter reads are machine-state reads, same contract as the
     clock: real allocation totals must never steer the engine. *)
  | [ "Gc";
      ( "quick_stat" | "stat" | "counters" | "minor_words"
      | "allocated_bytes" ) ] ->
    Some Wall_clock
  | "Random" :: ("State" | "Seed") :: _ -> None
  | [ "Random"; _ ] -> Some Unseeded_random
  | [ "Sys"; ("getenv" | "getenv_opt" | "command" | "readdir") ]
  | [ "Unix";
      ("getenv" | "environment" | "getpid" | "gethostname" | "system"
      | "sleep" | "sleepf") ] ->
    Some Ambient_read
  | _ -> None

let dotted path = String.concat "." path

(* The one module allowed to read the wall clock and GC state: the
   allowlist is structural (a path suffix), not a pile of per-site
   waivers.  Suffix matching keeps it working from any checkout root
   and for the synthetic paths the lint tests use. *)
let sanctioned_wall_suffix = "obs/wallclock.ml"

let sanctioned_wall_path path =
  let n = String.length path and m = String.length sanctioned_wall_suffix in
  n >= m && String.sub path (n - m) m = sanctioned_wall_suffix

(* last two components, for suffix matching of module-qualified names *)
let tail2 path =
  match List.rev path with
  | b :: a :: _ -> [ a; b ]
  | p -> List.rev p

(* Hash-table modules whose fold/iter order is a function of hashing and
   insertion history, not of the keys: the stdlib's, and the engine's
   own Hash_table (whose Ktbl alias is the stdlib's). *)
let is_hash_fold path =
  match tail2 path with
  | [ ("Hashtbl" | "Ktbl" | "Hash_table"); "fold" ] -> true
  | _ -> false

let is_hash_iter path =
  match tail2 path with
  | [ ("Hashtbl" | "Ktbl" | "Hash_table"); "iter" ] -> true
  | _ -> false

let is_sort path =
  match tail2 path with
  | [ ("List" | "Array"); ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ]
    ->
    true
  | _ -> false

(* Trace emission points: the zero-perturbation contract requires every
   one of these, in engine code, to sit under a traced guard. *)
let is_emit path =
  match tail2 path with
  | [ ("Trace" | "Ctx"); "emit" ] -> true
  | _ -> false

(* Observability *reads*: values computed by the trace/profile/
   calibration layer.  Engine decisions must never depend on them, so in
   engine code they may only appear under a traced guard (where they can
   only flow back out through the trace) or under a waiver. *)
let is_obs_read path =
  match tail2 path with
  | [ "Trace"; "events" ]
  | [ "Profile"; ("spans" | "totals") ]
  | [ "Calibrate"; ("worst" | "latest_by_node") ] ->
    true
  | _ -> false

(* Identifiers that make an [if] condition a tracing guard. *)
let is_guard_ident path =
  match List.rev path with
  | ("traced" | "enabled" | "profiled") :: _ -> true
  | [ name ] -> name = "trace_on"
  | _ -> false
