(* One parsed OCaml source file: the compiler-libs AST plus the comment
   layer the parser drops.  The lint works on the AST — a banned
   identifier inside a string literal or a comment is *not* a finding,
   which is exactly what the old substring scanner got wrong — but the
   waiver grammar lives in comments, so the raw text is re-scanned here
   with a small lexer that makes the same string/comment distinctions
   the real one does. *)

type comment = {
  c_text : string;
  c_line : int;      (* line the comment opens on (1-based) *)
  c_end_line : int;  (* line the comment closes on *)
}

(* A waiver is a comment carrying the [marker] string below, followed by
   a colon and a reason.  It exempts findings on the lines the comment
   spans and on the line directly below it (so it can sit at the end of
   the offending line or alone on the line above).  The reason is
   mandatory: a used waiver without one is itself an error, and a waiver
   that exempts nothing is flagged as unused. *)
type waiver = {
  w_line : int;
  w_end_line : int;
  w_reason : string option;
  mutable w_used : bool;
}

type t = {
  u_path : string;
  u_module : string;  (* "Corrective" for lib/core/corrective.ml *)
  u_ast : Parsetree.structure;
  u_comments : comment list;
  u_waivers : waiver list;
}

let module_name path =
  String.capitalize_ascii Filename.(remove_extension (basename path))

(* ---------------- comment scanner ---------------- *)

let scan_comments text =
  let n = String.length text in
  let comments = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some text.[!i + k] else None in
  let advance () =
    if text.[!i] = '\n' then incr line;
    incr i
  in
  (* positioned at an opening '"' *)
  let skip_escaped_string () =
    advance ();
    let fin = ref false in
    while (not !fin) && !i < n do
      match text.[!i] with
      | '\\' ->
        advance ();
        if !i < n then advance ()
      | '"' ->
        advance ();
        fin := true
      | _ -> advance ()
    done
  in
  (* positioned at '{': skip {id|...|id} quoted strings *)
  let skip_quoted_string () =
    let j = ref (!i + 1) in
    while
      !j < n && (text.[!j] = '_' || (text.[!j] >= 'a' && text.[!j] <= 'z'))
    do
      incr j
    done;
    if !j < n && text.[!j] = '|' then begin
      let id = String.sub text (!i + 1) (!j - !i - 1) in
      let closer = "|" ^ id ^ "}" in
      let m = String.length closer in
      while !i <= !j do advance () done;
      let fin = ref false in
      while (not !fin) && !i < n do
        if !i + m <= n && String.sub text !i m = closer then begin
          for _ = 1 to m do advance () done;
          fin := true
        end
        else advance ()
      done
    end
    else advance ()
  in
  (* positioned at the '(' of an opening "(*" *)
  let read_comment () =
    let start_line = !line in
    let buf = Buffer.create 64 in
    advance ();
    advance ();
    let depth = ref 1 in
    while !depth > 0 && !i < n do
      if !i + 1 < n && text.[!i] = '(' && text.[!i + 1] = '*' then begin
        Buffer.add_string buf "(*";
        advance ();
        advance ();
        incr depth
      end
      else if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = ')' then begin
        decr depth;
        if !depth > 0 then Buffer.add_string buf "*)";
        advance ();
        advance ()
      end
      else if text.[!i] = '"' then begin
        (* comments track string literals, so "*)" inside one is text *)
        let s0 = !i in
        skip_escaped_string ();
        Buffer.add_string buf (String.sub text s0 (!i - s0))
      end
      else begin
        Buffer.add_char buf text.[!i];
        advance ()
      end
    done;
    comments :=
      { c_text = Buffer.contents buf; c_line = start_line;
        c_end_line = !line }
      :: !comments
  in
  while !i < n do
    match text.[!i] with
    | '"' -> skip_escaped_string ()
    | '{' -> skip_quoted_string ()
    | '\'' -> (
      (* distinguish char literals from type variables *)
      match (peek 1, peek 2) with
      | Some '\\', _ ->
        advance ();
        advance ();
        let fin = ref false in
        let guard = ref 0 in
        while (not !fin) && !i < n && !guard < 5 do
          if text.[!i] = '\'' then fin := true;
          advance ();
          incr guard
        done
      | Some _, Some '\'' ->
        advance ();
        advance ();
        advance ()
      | _ -> advance ())
    | '(' when peek 1 = Some '*' -> read_comment ()
    | _ -> advance ()
  done;
  List.rev !comments

(* ---------------- waivers ---------------- *)

let marker = "determinism-ok"

let find_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let waiver_of_comment c =
  match find_sub ~sub:marker c.c_text with
  | None -> None
  | Some off ->
    let tail_off = off + String.length marker in
    let rest =
      String.trim
        (String.sub c.c_text tail_off (String.length c.c_text - tail_off))
    in
    let reason =
      if String.length rest > 0 && rest.[0] = ':' then
        let r = String.trim (String.sub rest 1 (String.length rest - 1)) in
        if r = "" then None else Some r
      else None
    in
    Some { w_line = c.c_line; w_end_line = c.c_end_line; w_reason = reason;
           w_used = false }

(* The waiver covering [line], if any: its own lines plus the line
   directly below the comment. *)
let waiver_for u ~line =
  List.find_opt
    (fun w -> line >= w.w_line && line <= w.w_end_line + 1)
    u.u_waivers

(* ---------------- parsing ---------------- *)

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast ->
    let comments = scan_comments text in
    Ok
      { u_path = path; u_module = module_name path; u_ast = ast;
        u_comments = comments;
        u_waivers = List.filter_map waiver_of_comment comments }
  | exception exn ->
    let line = lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum in
    Error (line, Printexc.to_string exn)
