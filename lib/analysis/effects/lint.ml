(* The lint driver: load sources, run the three passes, audit waivers,
   and render reports.

   Passes, in order:
   1. forbidden effects — wall-clock reads and unseeded randomness are
      errors at every unwaived use site, and any effect (including
      ambient environment reads) transitively reachable from an engine
      entry point is an error carrying its witness chain;
   2. hash-order sensitivity — [Hashtbl.fold]/[iter] results flowing
      into order-carrying values without a deterministic sort;
   3. perturbation purity — unguarded trace emission, observability
      reads, and emission results feeding back into engine values.

   Everything is reported through [Diagnostic] under stable [lint-*]
   codes so tests, CI and the bench baseline can match on them. *)

module Diagnostic = Adp_analysis.Diagnostic
module Json = Adp_obs.Json

let code_parse_error = "lint-parse-error"
let code_forbidden_effect = "lint-forbidden-effect"
let code_wallclock_escape = "lint-wallclock-escape"
let code_effect_reachable = "lint-effect-reachable"
let code_waiver_reason = "lint-waiver-reason"
let code_unused_waiver = "lint-unused-waiver"
let code_unsorted_fold = "lint-unsorted-hash-fold"
let code_unsorted_iter = "lint-unsorted-hash-iter"
let code_unguarded_emit = "lint-unguarded-emit"
let code_obs_read = "lint-obs-read"
let code_emit_feedback = "lint-emit-feedback"

let all_codes =
  [ code_parse_error; code_forbidden_effect; code_wallclock_escape;
    code_effect_reachable; code_waiver_reason; code_unused_waiver;
    code_unsorted_fold; code_unsorted_iter; code_unguarded_emit;
    code_obs_read; code_emit_feedback ]

(* Engine entry points: taint reaching any of these is an error even for
   effect kinds (ambient reads) that are tolerated in harness code. *)
let default_entries =
  [ ("Corrective", Some "run"); ("Server", Some "run"); ("Driver", None);
    ("Plan", None) ]

let default_paths = [ "lib"; "bin"; "bench"; "test" ]

(* ---------------- source loading ---------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let rec walk acc path =
  if Sys.file_exists path && Sys.is_directory path then
    let entries = Sys.readdir path in
    (* a deterministic linter must not depend on directory order *)
    let () = Array.sort String.compare entries in
    Array.fold_left
      (fun acc e ->
        if e = "" || e.[0] = '.' || e.[0] = '_' then acc
        else walk acc (Filename.concat path e))
      acc entries
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let ml_files paths =
  List.sort_uniq String.compare
    (List.concat_map (fun p -> walk [] p) paths)

(* Parse every .ml under [paths]; unparseable files become diagnostics,
   not crashes — the lint must degrade gracefully mid-edit. *)
let load_paths paths =
  List.fold_left
    (fun (units, diags) file ->
      match Src_unit.parse ~path:file (read_file file) with
      | Ok u -> (u :: units, diags)
      | Error (line, msg) ->
        ( units,
          Diagnostic.errorf ~code:code_parse_error ~path:file
            "line %d: could not parse: %s" line msg
          :: diags ))
    ([], []) (ml_files paths)
  |> fun (units, diags) -> (List.rev units, List.rev diags)

(* ---------------- analysis ---------------- *)

let kind_hint = function
  | Effect_table.Wall_clock ->
    "the engine runs on Clock's virtual time"
  | Effect_table.Unseeded_random ->
    "seed explicitly via Random.State to keep runs replayable"
  | Effect_table.Ambient_read ->
    "engine behaviour must not depend on the ambient environment"

let analyze ?(entries = default_entries) (units : Src_unit.t list) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let g = Callgraph.build units in
  (* pass 1a: direct uses of globally forbidden effects.  Wall reads
     have a structural allowlist — the one sanctioned lib/obs/wallclock
     module — and escaping it is its own code, so the fix ("route the
     read through Wallclock") is named rather than inviting a waiver. *)
  List.iter
    (fun (d : Callgraph.def) ->
      List.iter
        (fun (p : Callgraph.prim_use) ->
          match p.p_kind with
          | _ when p.p_waived || p.p_sanctioned -> ()
          | Effect_table.Wall_clock ->
            add
              (Diagnostic.errorf ~code:code_wallclock_escape
                 ~path:d.d_unit.Src_unit.u_path
                 "line %d: %s via %s in %s escapes the sanctioned %s module \
                  — route it through Adp_obs.Wallclock, or waive with \
                  (* %s: reason *)"
                 p.p_line
                 (Effect_table.kind_name p.p_kind)
                 p.p_path (Callgraph.qualified d)
                 Effect_table.sanctioned_wall_suffix Src_unit.marker)
          | Effect_table.Unseeded_random ->
            add
              (Diagnostic.errorf ~code:code_forbidden_effect
                 ~path:d.d_unit.Src_unit.u_path
                 "line %d: %s via %s in %s — %s, or waive with (* %s: reason *)"
                 p.p_line
                 (Effect_table.kind_name p.p_kind)
                 p.p_path (Callgraph.qualified d) (kind_hint p.p_kind)
                 Src_unit.marker)
          | Effect_table.Ambient_read -> ())
        d.d_prims)
    g.g_defs;
  Callgraph.propagate g;
  (* pass 1b: effects reachable from engine entry points *)
  List.iter
    (fun (d : Callgraph.def) ->
      List.iter
        (fun (k, _) ->
          add
            (Diagnostic.errorf ~code:code_effect_reachable
               ~path:d.d_unit.Src_unit.u_path
               "entry point %s reaches %s: %s — %s"
               (Callgraph.qualified d) (Effect_table.kind_name k)
               (Callgraph.witness_chain d k) (kind_hint k)))
        d.d_taint)
    (Callgraph.entry_defs g entries);
  (* passes 2 and 3: per-file AST findings, waivable at the site *)
  List.iter
    (fun u ->
      List.iter
        (fun (f : Ast_pass.finding) ->
          match Src_unit.waiver_for u ~line:f.f_line with
          | Some w -> w.Src_unit.w_used <- true
          | None ->
            let code, msg =
              match f.f_kind with
              | Ast_pass.Unsorted_fold what ->
                ( code_unsorted_fold,
                  Printf.sprintf
                    "%s builds an order-carrying value in hash iteration \
                     order; sort the result (iteration order is a function \
                     of hashing and insertion history, not of the keys)"
                    what )
              | Ast_pass.Unsorted_iter what ->
                ( code_unsorted_iter,
                  Printf.sprintf
                    "%s accumulates into a list in hash iteration order; \
                     collect then sort deterministically" what )
              | Ast_pass.Unguarded_emit what ->
                ( code_unguarded_emit,
                  Printf.sprintf
                    "%s outside a traced guard; wrap in [if Ctx.traced ...] \
                     so bare runs stay bit-identical" what )
              | Ast_pass.Obs_read what ->
                ( code_obs_read,
                  Printf.sprintf
                    "%s read in engine code outside a traced guard; engine \
                     decisions must not depend on observability state" what )
              | Ast_pass.Emit_feedback what ->
                ( code_emit_feedback,
                  Printf.sprintf
                    "%s; trace emission is fire-and-forget and must not \
                     feed values back into the engine" what )
            in
            add
              (Diagnostic.errorf ~code ~path:u.Src_unit.u_path "line %d: %s"
                 f.f_line msg))
        (Ast_pass.run u))
    units;
  (* waiver audit — after every pass has had the chance to use them *)
  List.iter
    (fun (u : Src_unit.t) ->
      List.iter
        (fun (w : Src_unit.waiver) ->
          if w.w_used && w.w_reason = None then
            add
              (Diagnostic.errorf ~code:code_waiver_reason ~path:u.u_path
                 "line %d: waiver without a reason; write (* %s: reason *)"
                 w.w_line Src_unit.marker)
          else if not w.w_used then
            add
              (Diagnostic.warning ~code:code_unused_waiver ~path:u.u_path
                 (Printf.sprintf
                    "line %d: waiver exempts nothing; delete it or move it \
                     onto the offending line" w.w_line)))
        u.u_waivers)
    units;
  List.sort
    (fun (a : Diagnostic.t) b ->
      match String.compare a.path b.path with
      | 0 -> (
        match String.compare a.code b.code with
        | 0 -> String.compare a.message b.message
        | c -> c)
      | c -> c)
    (List.rev !diags)

(* ---------------- reports ---------------- *)

type report = { r_files : int; r_diags : Diagnostic.t list }

let run ?entries paths =
  let units, parse_diags = load_paths paths in
  { r_files = List.length units + List.length parse_diags;
    r_diags = parse_diags @ analyze ?entries units }

let error_count r = List.length (Diagnostic.errors r.r_diags)
let warning_count r = List.length r.r_diags - error_count r

let severity_name = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"

let report_json r =
  Json.Obj
    [ ("schema", Json.Num 1.);
      ("files", Json.Num (float_of_int r.r_files));
      ("errors", Json.Num (float_of_int (error_count r)));
      ("warnings", Json.Num (float_of_int (warning_count r)));
      ( "diagnostics",
        Json.List
          (List.map
             (fun (d : Diagnostic.t) ->
               Json.Obj
                 [ ("code", Json.Str d.code);
                   ("severity", Json.Str (severity_name d.severity));
                   ("path", Json.Str d.path);
                   ("message", Json.Str d.message) ])
             r.r_diags) ) ]

(* Diagnostics present in [r] but absent from a previously written JSON
   report — the regression set a baseline gate cares about. *)
let diags_not_in_baseline r baseline =
  let key (code, path, message) = code ^ "\x00" ^ path ^ "\x00" ^ message in
  let known = Hashtbl.create 16 in
  (match Json.member "diagnostics" baseline with
   | Some (Json.List ds) ->
     List.iter
       (fun d ->
         let get f = Option.bind (Json.member f d) Json.get_str in
         match (get "code", get "path", get "message") with
         | Some c, Some p, Some m -> Hashtbl.replace known (key (c, p, m)) ()
         | _ -> ())
       ds
   | _ -> ());
  List.filter
    (fun (d : Diagnostic.t) ->
      not (Hashtbl.mem known (key (d.code, d.path, d.message))))
    r.r_diags

(* The [check --audit] entry point: same passes, boolean verdict, used
   where the old substring scanner used to be. *)
let audit_paths paths = (run paths).r_diags
