open Adp_relation
open Adp_exec
open Adp_optimizer

(** Static plan analyzer: pre-execution verification of queries, physical
    plans, ADP invariants, and stitch-up trees (§3.4's correctness
    requirements, checked before any tuple flows).

    Every pass returns a list of {!Diagnostic.t} — empty means clean —
    instead of raising, so a driver or the [tukwila check] CLI can report
    all problems at once.  Plan boundaries ({!Adp_core.Corrective},
    [tukwila]) call these passes and fail fast via
    {!Diagnostic.raise_if_errors}. *)

(** Schema of a source, [None] when unknown (itself a diagnostic). *)
type schema_lookup = string -> Schema.t option

(** Value type of a qualified column, [None] when unknown; unknown types
    skip type checks rather than fail them. *)
type type_lookup = string -> Value.ty option

val no_types : type_lookup

(** Infer a {!type_lookup} from materialized relations by sampling each
    column's first non-null value (bounded scan). *)
val types_of_relations : (string * Relation.t) list -> type_lookup

(** {2 Pass 1: schema / type checking} *)

(** Bottom-up output schema of a plan, mirroring what [Plan.instantiate]
    builds ([Schema.concat] at joins, [Aggregate.partial_schema] at
    pre-aggregations).  [Error diags] when any node fails to type. *)
val spec_schema :
  lookup:schema_lookup -> Plan.spec -> (Schema.t, Diagnostic.t list) result

(** Verify one physical plan: scan sources known and distinct, filter and
    join-key columns resolve in their input schemas, key lists of equal
    length and pairwise-joinable types, pre-aggregation group/agg columns
    present and [sum]/[avg] inputs numeric, output schemas well formed.
    Codes include ["unknown-source"], ["duplicate-source-in-plan"],
    ["unknown-column"], ["join-key-arity-mismatch"],
    ["join-key-unresolved"], ["join-key-type-mismatch"],
    ["preagg-missing-column"], ["preagg-non-numeric-agg"],
    ["bad-schema"], and warning ["cross-product-join"]. *)
val check_plan :
  ?types:type_lookup -> lookup:schema_lookup -> Plan.spec -> Diagnostic.t list

(** {!check_plan} plus conformance of the plan to its query: base
    relations equal the query's source set (["plan-relation-mismatch"]),
    join predicates equal the query's predicates over that set
    (["plan-predicate-mismatch"]), and each scan carries exactly the
    query's pushed-down filter (["plan-filter-mismatch"]).  Guards the
    executor's [Plan.push: unknown source] failure mode statically. *)
val check_plan_for_query :
  ?types:type_lookup -> lookup:schema_lookup -> Logical.query -> Plan.spec ->
  Diagnostic.t list

(** Verify a logical query (every {!Logical.validate_list} code, plus
    ["too-many-relations"] beyond {!Enumerate.max_relations}).  Covers the
    [Eddy: unknown relation / unqualified column] failure modes. *)
val check_query : lookup:schema_lookup -> Logical.query -> Diagnostic.t list

(** {2 Pass 2: ADP conformance} *)

(** All plans participating in one adaptive data partitioning execution
    must cover the same base-relation set (["adp-base-set-mismatch"]) with
    identical effective leaf signatures (["adp-leaf-signature-mismatch"])
    — §3.4's condition for phases to partition each relation into
    combinable regions.  (Both-input buffering, the paper's other
    condition, is structural in this engine: every join is a symmetric
    hash join.) *)
val check_conformance : Plan.spec list -> Diagnostic.t list

(** Effective leaf signature per source: the scan's signature, or the
    pre-aggregation's when one sits directly above the scan. *)
val effective_leaf_signatures : Plan.spec -> (string * string) list

(** A rewritten plan (e.g. after pre-aggregation insertion) must stay
    equivalent to its source: same base relations
    (["rewrite-relation-mismatch"]) and same join predicates
    (["rewrite-predicate-mismatch"]). *)
val check_equivalent :
  before:Plan.spec -> after:Plan.spec -> Diagnostic.t list

(** {2 Pass 3: stitch-up trees} *)

(** Verify a candidate stitch-up join tree: pre-aggregation only directly
    above scans (["stitch-preagg-above-join"]), the tree covers the
    query's relation set, and — via {!Stitch_matrix.check} — its
    combination matrix covers exactly the nᵐ − n cross-phase
    combinations. *)
val check_stitch_tree :
  phases:int -> Logical.query -> Plan.spec -> Diagnostic.t list

(** {2 Pass 4: determinism / configuration audit} *)

(** Range-check the adaptive-execution knobs (["bad-knob"]): poll
    interval and thresholds positive, phase budget at least one, retry
    policy well formed (timeout and backoffs positive, jitter in [0, 1),
    multiplier at least 1). *)
val check_knobs :
  poll_interval:float -> switch_threshold:float -> max_phases:int ->
  min_leaf_seen:int -> min_remaining_fraction:float -> retry:Retry.policy ->
  Diagnostic.t list

(** Range-check the resource-governance knobs.  Invalid values are
    structured diagnostics, never silently clamped.  Codes:
    ["gov-bad-deadline"] (deadline must be a positive budget),
    ["gov-bad-budget"] / ["gov-bad-ceiling"] (tuple caps must be
    positive), ["gov-ceiling-below-budget"] (hard ceiling below the soft
    paging budget would degrade before paging triggers),
    ["gov-bad-breaker"] (window/cooldown positive, threshold ≥ 1, jitter
    in [0, 1)), and ["gov-breaker-window"] (a failure window shorter than
    the probe cooldown makes the breaker flap — failures expire before it
    can re-trip). *)
val check_governance :
  deadline:float option -> memory_budget:int option ->
  memory_ceiling:int option -> breaker:Breaker.policy option ->
  Diagnostic.t list

(** {2 Umbrella} *)

(** The full pre-execution work-up used by [tukwila check] and the
    drivers: {!check_query}, then {!check_plan_for_query} on every plan,
    {!check_conformance} across them, and {!check_stitch_tree} on the
    first plan for the given phase count. *)
val check_workload :
  ?types:type_lookup -> ?phases:int -> lookup:schema_lookup ->
  Logical.query -> Plan.spec list -> Diagnostic.t list

(** {2 Pass 5: checkpoint phase ledger}

    Recovery-time validation that a checkpoint's phase regions still
    partition the source streams it is being resumed against.  [ledger]
    is the checkpoint's phase ledger, oldest phase first: each entry is
    the phase id and the per-source cumulative end position at the moment
    the phase closed (the last entry is the in-flight phase at capture
    time).  [sources] are the re-created sources with their current
    cardinalities.  Codes: ["ckpt-empty-ledger"], ["ckpt-phase-order"],
    ["ckpt-source-missing"] (ledger names a source the recovered run
    lacks), ["ckpt-source-unknown"] (a recovered source has no recorded
    position), ["ckpt-source-truncated"] (recorded position beyond the
    stream's end — the source shrank), and ["ckpt-region-overlap"]
    (positions regress between phases). *)
val check_checkpoint_regions :
  ledger:(int * (string * int) list) list ->
  sources:(string * int) list ->
  Diagnostic.t list
