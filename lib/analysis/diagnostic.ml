type severity = Error | Warning

type t = {
  code : string;
  severity : severity;
  path : string;
  message : string;
}

let error ~code ~path message = { code; severity = Error; path; message }
let warning ~code ~path message = { code; severity = Warning; path; message }

let errorf ~code ~path fmt =
  Format.kasprintf (fun message -> error ~code ~path message) fmt

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let errors ds = List.filter is_error ds

let codes ds =
  List.sort_uniq String.compare (List.map (fun d -> d.code) ds)

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.code d.path d.message

let pp_list fmt ds =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp fmt ds

let to_string ds = Format.asprintf "%a" pp_list ds

exception Failed of string * t list

let () =
  Printexc.register_printer (function
    | Failed (where, ds) ->
      Some
        (Printf.sprintf "Analysis failed at %s:\n%s" where
           (to_string (errors ds)))
    | _ -> None)

let raise_if_errors ~where ds =
  if has_errors ds then raise (Failed (where, ds))
