let banned =
  (* determinism-ok: this is the pattern table itself *)
  [ "unseeded-randomness", "Random.self_init"; (* determinism-ok *)
    "unseeded-randomness", "Random.init"; (* determinism-ok *)
    "unseeded-randomness", "Random.int"; (* determinism-ok *)
    "unseeded-randomness", "Random.float"; (* determinism-ok *)
    "unseeded-randomness", "Random.bool"; (* determinism-ok *)
    "unseeded-randomness", "Random.bits"; (* determinism-ok *)
    "wall-clock", "Sys.time"; (* determinism-ok *)
    "wall-clock", "Unix.time"; (* determinism-ok *)
    "wall-clock", "Unix.gettimeofday" (* determinism-ok *) ]

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let audit_line line =
  if contains ~sub:"determinism-ok" line then None
  else
    List.find_map
      (fun (code, token) ->
        if contains ~sub:token line then Some (code, token) else None)
      banned

let audit_source ~path text =
  let diags = ref [] in
  List.iteri
    (fun i line ->
      match audit_line line with
      | Some (code, token) ->
        diags :=
          Diagnostic.error ~code
            ~path:(Printf.sprintf "%s:%d" path (i + 1))
            (Printf.sprintf
               "%s breaks virtual-time reproducibility (mark the line \
                determinism-ok if intentional)"
               token)
          :: !diags
      | None -> ())
    (String.split_on_char '\n' text);
  List.rev !diags

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec audit_path path =
  match Sys.is_directory path with
  | true ->
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> audit_path (Filename.concat path entry))
  | false ->
    (* Only .ml: interfaces carry no executable code, and doc comments
       legitimately name the banned primitives. *)
    if Filename.check_suffix path ".ml" then
      audit_source ~path (read_file path)
    else []
  | exception Sys_error _ ->
    [ Diagnostic.warning ~code:"unreadable-path" ~path
        "path does not exist or cannot be read" ]

let audit_paths paths = List.concat_map audit_path paths
