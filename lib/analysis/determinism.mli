(** Determinism audit (part of the static analyzer).

    The whole reproduction accounts time on the {!Adp_exec.Clock} virtual
    clock and draws randomness from seeded generators ({!Adp_datagen.Prng},
    seeded [Random.State]); a single call to the global [Random] module or
    to a wall clock silently breaks run-to-run reproducibility.  This pass
    scans OCaml sources for such calls.

    A line carrying the marker comment ["determinism-ok"] is exempt —
    used where wall-clock time is read deliberately (e.g. reporting real
    elapsed time alongside virtual time). *)

(** [audit_line line] is [Some (code, token)] when the line calls a
    banned primitive: code ["unseeded-randomness"] for global [Random]
    calls ([Random.self_init], [Random.int], ... — [Random.State] is
    fine), code ["wall-clock"] for [Sys.time], [Unix.time],
    [Unix.gettimeofday].  [None] for clean or marker-exempt lines. *)
val audit_line : string -> (string * string) option

(** Scan one source text; [path] labels the diagnostics ([path:line]). *)
val audit_source : path:string -> string -> Diagnostic.t list

(** Audit files and directories (recursively, [*.ml] only).  Unreadable
    paths yield an ["unreadable-path"] warning. *)
val audit_paths : string list -> Diagnostic.t list
