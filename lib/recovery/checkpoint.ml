open Adp_exec
open Adp_storage
open Adp_optimizer
module Diagnostic = Adp_analysis.Diagnostic
module S = Snapshot

let format_version = 1

type phase_record = {
  pr_id : int;
  pr_spec : Plan.spec;
  pr_state : Plan.state;
  pr_emitted : int;
  pr_read : int;
  pr_ends : (string * int) list;
}

type t = {
  seq : int;
  fingerprint : string;
  clock : Clock.state;
  tuples_read : int;
  tuples_output : int;
  retries : int;
  failovers : int;
  sources_failed : int;
  positions : (string * int) list;
  stats : Adp_stats.Selectivity.dump;
  completed : phase_record list;
  current : phase_record option;
}

let fingerprint query = Digest.to_hex (Digest.string (Format.asprintf "%a" Logical.pp query))

let ledger t =
  let entries = List.map (fun pr -> (pr.pr_id, pr.pr_ends)) t.completed in
  match t.current with
  | None -> entries
  | Some pr -> entries @ [ (pr.pr_id, pr.pr_ends) ]

(* ---------------- segment encoding ---------------- *)

let enc_phase pr =
  let b = S.encoder () in
  S.int b pr.pr_id;
  Codec.spec b pr.pr_spec;
  Codec.plan_state b pr.pr_state;
  S.int b pr.pr_emitted;
  S.int b pr.pr_read;
  S.list (S.pair S.str S.int) b pr.pr_ends;
  S.contents b

let dec_phase payload =
  let d = S.decoder payload in
  let pr_id = S.read_int d in
  let pr_spec = Codec.read_spec d in
  let pr_state = Codec.read_plan_state d in
  let pr_emitted = S.read_int d in
  let pr_read = S.read_int d in
  let pr_ends = S.read_list (S.read_pair S.read_str S.read_int) d in
  if not (S.at_end d) then raise (S.Corrupt "phase: trailing bytes");
  { pr_id; pr_spec; pr_state; pr_emitted; pr_read; pr_ends }

let enc_manifest t =
  let b = S.encoder () in
  S.int b t.seq;
  S.str b t.fingerprint;
  S.int b t.tuples_read;
  S.int b t.tuples_output;
  S.int b t.retries;
  S.int b t.failovers;
  S.int b t.sources_failed;
  S.list (S.pair S.str S.int) b t.positions;
  S.list S.int b (List.map (fun pr -> pr.pr_id) t.completed);
  S.option S.int b (Option.map (fun pr -> pr.pr_id) t.current);
  S.contents b

let segments t =
  let phases = t.completed @ Option.to_list t.current in
  ("manifest", enc_manifest t)
  :: ( "clock",
       let b = S.encoder () in
       Codec.clock_state b t.clock;
       S.contents b )
  :: ( "stats",
       let b = S.encoder () in
       Codec.stats_dump b t.stats;
       S.contents b )
  :: List.map
       (fun pr -> (Printf.sprintf "phase-%d" pr.pr_id, enc_phase pr))
       phases

(* ---------------- files ---------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let file_name seq = Printf.sprintf "ckpt-%08d.adpckpt" seq

let save ~dir t =
  mkdir_p dir;
  let path = Filename.concat dir (file_name t.seq) in
  S.write_file ~path ~version:format_version (segments t);
  path

let latest ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then None
  else
    (* determinism-ok: listing is sorted below before any choice is made *)
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".adpckpt")
    |> List.sort compare
    |> List.rev
    |> function
    | [] -> None
    | f :: _ -> Some (Filename.concat dir f)

(* ---------------- loading ---------------- *)

let err ~path code fmt = Diagnostic.errorf ~code ~path fmt

let of_file_error ~path = function
  | S.Bad_magic ->
    err ~path "ckpt-bad-magic" "not a checkpoint file (bad magic)"
  | S.Unsupported_version v ->
    err ~path "ckpt-version" "unsupported checkpoint format version %d" v
  | S.Truncated what -> err ~path "ckpt-truncated" "truncated checkpoint: %s" what
  | S.Crc_mismatch seg ->
    err ~path "ckpt-crc-mismatch" "segment %S failed CRC verification" seg
  | S.Io_error msg -> err ~path "ckpt-io-error" "cannot read checkpoint: %s" msg

let load path =
  match S.read_file ~path with
  | Error e -> Error [ of_file_error ~path e ]
  | Ok (_version, segs) -> (
    let segment name =
      match List.assoc_opt name segs with
      | Some payload -> payload
      | None ->
        raise
          (Diagnostic.Failed
             ( "checkpoint",
               [ err ~path "ckpt-segment-missing" "segment %S missing" name ] ))
    in
    try
      let d = S.decoder (segment "manifest") in
      let seq = S.read_int d in
      let fingerprint = S.read_str d in
      let tuples_read = S.read_int d in
      let tuples_output = S.read_int d in
      let retries = S.read_int d in
      let failovers = S.read_int d in
      let sources_failed = S.read_int d in
      let positions = S.read_list (S.read_pair S.read_str S.read_int) d in
      let completed_ids = S.read_list S.read_int d in
      let current_id = S.read_option S.read_int d in
      if not (S.at_end d) then raise (S.Corrupt "manifest: trailing bytes");
      let clock = Codec.read_clock_state (S.decoder (segment "clock")) in
      let stats = Codec.read_stats_dump (S.decoder (segment "stats")) in
      let phase id = dec_phase (segment (Printf.sprintf "phase-%d" id)) in
      let completed = List.map phase completed_ids in
      let current = Option.map phase current_id in
      Ok
        { seq; fingerprint; clock; tuples_read; tuples_output; retries;
          failovers; sources_failed; positions; stats; completed; current }
    with
    | S.Corrupt msg ->
      Error [ err ~path "ckpt-malformed" "malformed checkpoint: %s" msg ]
    | Diagnostic.Failed (_, diags) -> Error diags)

(* ---------------- policies ---------------- *)

type policy = {
  dir : string;
  every_tuples : int option;
  at_phase_boundary : bool;
  on_page_out : bool;
}

let policy ?every_tuples ?(at_phase_boundary = true) ?(on_page_out = false)
    ~dir () =
  { dir; every_tuples; at_phase_boundary; on_page_out }
