open Adp_exec
open Adp_optimizer
module Diagnostic = Adp_analysis.Diagnostic

(** Consistent snapshots of a running adaptive execution, and the
    versioned on-disk checkpoint format.

    A checkpoint captures everything needed to resume the query as a
    forced phase switch (ARCHITECTURE.md "Recovery layer"): the phase
    ledger (every closed phase's spec, captured runtime state, and
    per-source region end positions, plus the in-flight phase at capture
    time), the per-source stream positions, the virtual clock, the
    engine's progress counters, and the observed-statistics dump that
    lets the recovered run re-optimize with everything the interrupted
    one had learned.

    On disk a checkpoint is one {!Adp_storage.Snapshot} container file:
    magic, format version, and named segments ([manifest], [clock],
    [stats], one [phase-<id>] per recorded phase), each protected by a
    CRC-32 and written atomically (temp + rename).  {!load} never throws
    on bad input — every structural problem maps to a structured
    {!Diagnostic.t} with a stable [ckpt-*] code. *)

type phase_record = {
  pr_id : int;
  pr_spec : Plan.spec;
  pr_state : Plan.state;
  pr_emitted : int;  (** root tuples the phase emitted *)
  pr_read : int;  (** source tuples the phase consumed *)
  pr_ends : (string * int) list;
      (** cumulative per-source end positions of the phase's region *)
}

type t = {
  seq : int;  (** checkpoint sequence number within the run *)
  fingerprint : string;  (** {!fingerprint} of the query being executed *)
  clock : Clock.state;
  tuples_read : int;
  tuples_output : int;
  retries : int;
  failovers : int;
  sources_failed : int;
  positions : (string * int) list;  (** per-source positions at capture *)
  stats : Adp_stats.Selectivity.dump;
  completed : phase_record list;  (** closed phases, oldest first *)
  current : phase_record option;
      (** the in-flight phase; [None] when captured at a phase boundary
          or after source exhaustion *)
}

(** Digest identifying the logical query; a checkpoint resumes only
    against the query that wrote it. *)
val fingerprint : Logical.query -> string

(** The checkpoint's phase ledger, oldest first — each phase's id and
    region end positions, the in-flight phase last.  This is what
    {!Adp_analysis.Analyzer.check_checkpoint_regions} validates at
    recovery time. *)
val ledger : t -> (int * (string * int) list) list

(** {2 Files} *)

(** [save ~dir t] writes [t] atomically as [dir/ckpt-<seq>.adpckpt]
    (creating [dir] if needed) and returns the path written. *)
val save : dir:string -> t -> string

(** Highest-sequence checkpoint file in [dir], if any. *)
val latest : dir:string -> string option

(** Load and verify a checkpoint file.  All failures are diagnostics,
    never exceptions: ["ckpt-bad-magic"], ["ckpt-version"],
    ["ckpt-truncated"], ["ckpt-crc-mismatch"], ["ckpt-io-error"],
    ["ckpt-malformed"] (a segment decodes to garbage),
    ["ckpt-segment-missing"]. *)
val load : string -> (t, Diagnostic.t list) result

(** {2 Policies}

    When the corrective driver writes checkpoints. *)

type policy = {
  dir : string;  (** where checkpoint files go *)
  every_tuples : int option;  (** every N consumed source tuples *)
  at_phase_boundary : bool;  (** whenever a phase closes (default on) *)
  on_page_out : bool;
      (** when memory pressure pages state structures out — paged-out
          state is the state most expensive to lose *)
}

(** [policy ~dir ()] — boundary checkpoints on, tuple-count and page-out
    triggers off unless given. *)
val policy :
  ?every_tuples:int ->
  ?at_phase_boundary:bool ->
  ?on_page_out:bool ->
  dir:string ->
  unit ->
  policy
