open Adp_storage
open Adp_exec

(** Binary codecs for the executor-side values a checkpoint carries —
    plan specs (predicates, expressions, aggregates, pre-aggregation
    modes), captured plan runtime state, clock state, and the observed-
    statistics dump.  Built on {!Adp_storage.Snapshot}'s primitives; kept
    here (not in [adp_storage]) so the storage layer stays free of
    executor dependencies.

    Every [read_*] raises {!Adp_storage.Snapshot.Corrupt} on malformed
    input; the checkpoint loader turns that into a structured
    diagnostic. *)

val spec : Snapshot.enc -> Plan.spec -> unit
val read_spec : Snapshot.dec -> Plan.spec

val plan_state : Snapshot.enc -> Plan.state -> unit
val read_plan_state : Snapshot.dec -> Plan.state

val clock_state : Snapshot.enc -> Clock.state -> unit
val read_clock_state : Snapshot.dec -> Clock.state

val stats_dump : Snapshot.enc -> Adp_stats.Selectivity.dump -> unit
val read_stats_dump : Snapshot.dec -> Adp_stats.Selectivity.dump
