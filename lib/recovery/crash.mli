(** Engine-level fault injection for the crash-recovery tests and CLI.

    PR 1's fault layer makes {e sources} fail; this module makes the
    {e engine} fail, deterministically, at interesting points of an
    adaptive execution — mid-phase after a given number of consumed
    tuples, while closing a specific phase, or once stitch-up has begun.
    The corrective driver consults an {!injector} at those points and
    raises {!Crashed}, which a caller (test harness, CLI) treats as the
    process dying; a subsequent run with [resume_from] then exercises the
    recovery path against the last checkpoint written before the
    crash. *)

type point =
  | After_tuples of int
      (** crash once this many source tuples have been consumed *)
  | At_phase_boundary of int
      (** crash while closing the phase with this id, after its boundary
          checkpoint *)
  | During_stitchup  (** crash after stitch-up has started *)

exception Crashed of string

val pp_point : Format.formatter -> point -> unit

(** Mutable trigger set; each point fires at most once. *)
type injector

val injector : point list -> injector

(** Points that have not fired yet. *)
val pending : injector -> point list

(** Call after consuming a tuple (and after any due checkpoint was
    written).  @raise Crashed when an [After_tuples] trigger is due. *)
val tuple_consumed : injector -> total:int -> unit

(** Call after closing phase [id] (and writing its boundary checkpoint).
    @raise Crashed when an [At_phase_boundary id] trigger is due. *)
val phase_closed : injector -> id:int -> unit

(** Call when stitch-up begins.
    @raise Crashed when a [During_stitchup] trigger is armed. *)
val stitchup_started : injector -> unit
