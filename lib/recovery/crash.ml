type point =
  | After_tuples of int
  | At_phase_boundary of int
  | During_stitchup

exception Crashed of string

let () =
  Printexc.register_printer (function
    | Crashed m -> Some ("Crash.Crashed: " ^ m)
    | _ -> None)

let pp_point fmt = function
  | After_tuples n -> Format.fprintf fmt "after %d tuples" n
  | At_phase_boundary id -> Format.fprintf fmt "at phase-%d boundary" id
  | During_stitchup -> Format.pp_print_string fmt "during stitch-up"

type injector = { mutable points : point list }

let injector points = { points }
let pending t = t.points

let fire t p =
  t.points <- List.filter (fun q -> q <> p) t.points;
  raise (Crashed (Format.asprintf "injected crash %a" pp_point p))

let tuple_consumed t ~total =
  match
    List.find_opt
      (function After_tuples n -> total >= n | _ -> false)
      t.points
  with
  | Some p -> fire t p
  | None -> ()

let phase_closed t ~id =
  match
    List.find_opt
      (function At_phase_boundary i -> i = id | _ -> false)
      t.points
  with
  | Some p -> fire t p
  | None -> ()

let stitchup_started t =
  match List.find_opt (fun p -> p = During_stitchup) t.points with
  | Some p -> fire t p
  | None -> ()
