open Adp_relation
open Adp_storage
open Adp_exec
module S = Snapshot

let bad what tag =
  raise (S.Corrupt (Printf.sprintf "bad %s tag %d" what tag))

(* ---------------- scalar expressions ---------------- *)

let rec expr b = function
  | Expr.Col c ->
    S.u8 b 0;
    S.str b c
  | Expr.Const v ->
    S.u8 b 1;
    S.value b v
  | Expr.Add (x, y) ->
    S.u8 b 2;
    expr b x;
    expr b y
  | Expr.Sub (x, y) ->
    S.u8 b 3;
    expr b x;
    expr b y
  | Expr.Mul (x, y) ->
    S.u8 b 4;
    expr b x;
    expr b y
  | Expr.Div (x, y) ->
    S.u8 b 5;
    expr b x;
    expr b y

let rec read_expr d =
  match S.read_u8 d with
  | 0 -> Expr.Col (S.read_str d)
  | 1 -> Expr.Const (S.read_value d)
  | 2 ->
    let x = read_expr d in
    Expr.Add (x, read_expr d)
  | 3 ->
    let x = read_expr d in
    Expr.Sub (x, read_expr d)
  | 4 ->
    let x = read_expr d in
    Expr.Mul (x, read_expr d)
  | 5 ->
    let x = read_expr d in
    Expr.Div (x, read_expr d)
  | n -> bad "expr" n

(* ---------------- predicates ---------------- *)

let cmp_tag = function
  | Predicate.Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5

let read_cmp d =
  match S.read_u8 d with
  | 0 -> Predicate.Eq
  | 1 -> Ne
  | 2 -> Lt
  | 3 -> Le
  | 4 -> Gt
  | 5 -> Ge
  | n -> bad "cmp" n

let rec pred b = function
  | Predicate.True -> S.u8 b 0
  | Predicate.Cmp (c, col, v) ->
    S.u8 b 1;
    S.u8 b (cmp_tag c);
    S.str b col;
    S.value b v
  | Predicate.Col_cmp (c, a, bb) ->
    S.u8 b 2;
    S.u8 b (cmp_tag c);
    S.str b a;
    S.str b bb
  | Predicate.Between (col, lo, hi) ->
    S.u8 b 3;
    S.str b col;
    S.value b lo;
    S.value b hi
  | Predicate.In (col, vs) ->
    S.u8 b 4;
    S.str b col;
    S.list S.value b vs
  | Predicate.Not p ->
    S.u8 b 5;
    pred b p
  | Predicate.And (p, q) ->
    S.u8 b 6;
    pred b p;
    pred b q
  | Predicate.Or (p, q) ->
    S.u8 b 7;
    pred b p;
    pred b q

let rec read_pred d =
  match S.read_u8 d with
  | 0 -> Predicate.True
  | 1 ->
    let c = read_cmp d in
    let col = S.read_str d in
    Predicate.Cmp (c, col, S.read_value d)
  | 2 ->
    let c = read_cmp d in
    let a = S.read_str d in
    Predicate.Col_cmp (c, a, S.read_str d)
  | 3 ->
    let col = S.read_str d in
    let lo = S.read_value d in
    Predicate.Between (col, lo, S.read_value d)
  | 4 ->
    let col = S.read_str d in
    Predicate.In (col, S.read_list S.read_value d)
  | 5 -> Predicate.Not (read_pred d)
  | 6 ->
    let p = read_pred d in
    Predicate.And (p, read_pred d)
  | 7 ->
    let p = read_pred d in
    Predicate.Or (p, read_pred d)
  | n -> bad "predicate" n

(* ---------------- aggregates ---------------- *)

let agg_spec b (a : Aggregate.spec) =
  S.u8 b
    (match a.fn with Count -> 0 | Sum -> 1 | Min -> 2 | Max -> 3 | Avg -> 4);
  expr b a.expr;
  S.str b a.name

let read_agg_spec d : Aggregate.spec =
  let fn =
    match S.read_u8 d with
    | 0 -> Aggregate.Count
    | 1 -> Sum
    | 2 -> Min
    | 3 -> Max
    | 4 -> Avg
    | n -> bad "aggregate fn" n
  in
  let expr = read_expr d in
  { fn; expr; name = S.read_str d }

(* ---------------- plan specs ---------------- *)

let preagg_mode b = function
  | Plan.Windowed { initial; max_window } ->
    S.u8 b 0;
    S.int b initial;
    S.int b max_window
  | Plan.Traditional -> S.u8 b 1
  | Plan.Pseudogroup -> S.u8 b 2
  | Plan.Punctuated -> S.u8 b 3

let read_preagg_mode d =
  match S.read_u8 d with
  | 0 ->
    let initial = S.read_int d in
    Plan.Windowed { initial; max_window = S.read_int d }
  | 1 -> Plan.Traditional
  | 2 -> Plan.Pseudogroup
  | 3 -> Plan.Punctuated
  | n -> bad "preagg mode" n

let rec spec b = function
  | Plan.Scan { source; filter } ->
    S.u8 b 0;
    S.str b source;
    pred b filter
  | Plan.Join { left; right; left_key; right_key } ->
    S.u8 b 1;
    spec b left;
    spec b right;
    S.list S.str b left_key;
    S.list S.str b right_key
  | Plan.Preagg { child; group_cols; aggs; mode } ->
    S.u8 b 2;
    spec b child;
    S.list S.str b group_cols;
    S.list agg_spec b aggs;
    preagg_mode b mode

let rec read_spec d =
  match S.read_u8 d with
  | 0 ->
    let source = S.read_str d in
    Plan.Scan { source; filter = read_pred d }
  | 1 ->
    let left = read_spec d in
    let right = read_spec d in
    let left_key = S.read_list S.read_str d in
    Plan.Join { left; right; left_key; right_key = S.read_list S.read_str d }
  | 2 ->
    let child = read_spec d in
    let group_cols = S.read_list S.read_str d in
    let aggs = S.read_list read_agg_spec d in
    Plan.Preagg { child; group_cols; aggs; mode = read_preagg_mode d }
  | n -> bad "plan spec" n

(* ---------------- plan runtime state ---------------- *)

let rec plan_state b (st : Plan.state) =
  S.list S.tuple b st.st_outputs;
  S.int b st.st_out_count;
  match st.st_impl with
  | Plan.St_leaf { seen } ->
    S.u8 b 0;
    S.int b seen
  | Plan.St_join { st_left; st_right; ltuples; rtuples; lswapped; rswapped }
    ->
    S.u8 b 1;
    plan_state b st_left;
    plan_state b st_right;
    S.list S.tuple b ltuples;
    S.list S.tuple b rtuples;
    S.bool b lswapped;
    S.bool b rswapped
  | Plan.St_preagg { st_child; st_pa } ->
    S.u8 b 2;
    plan_state b st_child;
    S.int b st_pa.ps_window;
    S.int b st_pa.ps_in_window;
    S.int b st_pa.ps_in_total;
    S.int b st_pa.ps_out_total;
    S.list (S.pair S.tuple S.tuple) b st_pa.ps_groups

let rec read_plan_state d : Plan.state =
  let st_outputs = S.read_list S.read_tuple d in
  let st_out_count = S.read_int d in
  let st_impl =
    match S.read_u8 d with
    | 0 -> Plan.St_leaf { seen = S.read_int d }
    | 1 ->
      let st_left = read_plan_state d in
      let st_right = read_plan_state d in
      let ltuples = S.read_list S.read_tuple d in
      let rtuples = S.read_list S.read_tuple d in
      let lswapped = S.read_bool d in
      Plan.St_join
        { st_left; st_right; ltuples; rtuples; lswapped;
          rswapped = S.read_bool d }
    | 2 ->
      let st_child = read_plan_state d in
      let ps_window = S.read_int d in
      let ps_in_window = S.read_int d in
      let ps_in_total = S.read_int d in
      let ps_out_total = S.read_int d in
      let ps_groups = S.read_list (S.read_pair S.read_tuple S.read_tuple) d in
      Plan.St_preagg
        { st_child;
          st_pa =
            { ps_window; ps_in_window; ps_in_total; ps_out_total; ps_groups }
        }
    | n -> bad "plan state" n
  in
  { st_outputs; st_out_count; st_impl }

(* ---------------- clock ---------------- *)

let clock_state b (c : Clock.state) =
  S.f64 b c.s_now;
  S.f64 b c.s_cpu;
  S.f64 b c.s_idle;
  S.f64 b c.s_retry_idle

let read_clock_state d : Clock.state =
  let s_now = S.read_f64 d in
  let s_cpu = S.read_f64 d in
  let s_idle = S.read_f64 d in
  { s_now; s_cpu; s_idle; s_retry_idle = S.read_f64 d }

(* ---------------- observed statistics ---------------- *)

let stats_dump b (s : Adp_stats.Selectivity.dump) =
  S.list (S.pair S.str S.f64) b s.d_sels;
  S.list (S.pair S.str S.f64) b s.d_outs;
  S.list (S.pair S.str S.int) b s.d_cards;
  S.list (S.pair S.str S.int) b s.d_finals;
  S.list (S.pair S.str S.f64) b s.d_mult

let read_stats_dump d : Adp_stats.Selectivity.dump =
  let d_sels = S.read_list (S.read_pair S.read_str S.read_f64) d in
  let d_outs = S.read_list (S.read_pair S.read_str S.read_f64) d in
  let d_cards = S.read_list (S.read_pair S.read_str S.read_int) d in
  let d_finals = S.read_list (S.read_pair S.read_str S.read_int) d in
  { d_sels; d_outs; d_cards; d_finals;
    d_mult = S.read_list (S.read_pair S.read_str S.read_f64) d }
