open Adp_relation
open Adp_exec

type source = { name : string; filter : Predicate.t }

type query = {
  sources : source list;
  join_preds : (string * string) list;
  group_cols : string list;
  aggs : Aggregate.spec list;
  projection : string list;
}

let relation_of_column col =
  match String.index_opt col '.' with
  | Some i -> String.sub col 0 i
  | None -> invalid_arg ("Logical.relation_of_column: unqualified " ^ col)

let source_names q = List.map (fun s -> s.name) q.sources

let preds_between q ~inside ~outside =
  List.filter_map
    (fun (a, b) ->
      let ra = relation_of_column a and rb = relation_of_column b in
      if List.mem ra inside && List.mem rb outside then Some (a, b)
      else if List.mem rb inside && List.mem ra outside then Some (b, a)
      else None)
    q.join_preds

let canon_pred a b = if String.compare a b <= 0 then a ^ "=" ^ b else b ^ "=" ^ a

let preds_within q rels =
  List.filter_map
    (fun (a, b) ->
      if List.mem (relation_of_column a) rels
         && List.mem (relation_of_column b) rels
      then Some (canon_pred a b)
      else None)
    q.join_preds
  |> List.sort String.compare

let connected q rels =
  match rels with
  | [] | [ _ ] -> true
  | first :: _ ->
    let reached = Hashtbl.create 8 in
    Hashtbl.replace reached first ();
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (a, b) ->
          let ra = relation_of_column a and rb = relation_of_column b in
          if List.mem ra rels && List.mem rb rels then begin
            let ha = Hashtbl.mem reached ra and hb = Hashtbl.mem reached rb in
            if ha && not hb then begin
              Hashtbl.replace reached rb ();
              changed := true
            end;
            if hb && not ha then begin
              Hashtbl.replace reached ra ();
              changed := true
            end
          end)
        q.join_preds
    done;
    List.for_all (Hashtbl.mem reached) rels

let scan_token_of q name =
  match List.find_opt (fun s -> s.name = name) q.sources with
  | Some s -> Plan.scan_token ~source:s.name ~filter:s.filter
  | None -> invalid_arg ("Logical.scan_token_of: unknown source " ^ name)

let signature_of_set q rels =
  Plan.signature_of_parts
    ~relations:(List.map (scan_token_of q) rels)
    ~predicates:(preds_within q rels) ~preaggs:[]

let relation_of_column_opt col =
  match String.index_opt col '.' with
  | Some i -> Some (String.sub col 0 i)
  | None -> None

let validate_list ~schema_of q =
  let errs = ref [] in
  let add code msg = errs := (code, msg) :: !errs in
  if q.sources = [] then add "no-sources" "query has no sources";
  let names = source_names q in
  let dup =
    List.filter (fun n -> List.length (List.filter (( = ) n) names) > 1) names
    |> List.sort_uniq String.compare
  in
  if dup <> [] then
    add "duplicate-source" ("duplicate sources " ^ String.concat "," dup);
  let check_col col =
    match relation_of_column_opt col with
    | None -> add "unqualified-column" ("column " ^ col ^ " is unqualified")
    | Some r ->
      if not (List.mem r names) then
        add "unknown-source-for-column"
          ("column " ^ col ^ " has no source in the query")
      else begin
        match schema_of r with
        | exception Not_found ->
          add "unknown-source" ("no schema known for source " ^ r)
        | schema ->
          if not (Schema.mem schema col) then
            add "unknown-column" ("column " ^ col ^ " not in " ^ r)
      end
  in
  List.iter
    (fun s -> List.iter check_col (Predicate.columns s.filter))
    q.sources;
  List.iter
    (fun (a, b) ->
      check_col a;
      check_col b)
    q.join_preds;
  List.iter check_col q.group_cols;
  List.iter
    (fun (a : Aggregate.spec) -> List.iter check_col (Expr.columns a.expr))
    q.aggs;
  List.iter check_col q.projection;
  (* Connectivity of the join graph (avoids accidental cross products).
     Predicates with unqualified columns were already reported above and
     are skipped here. *)
  if List.length names > 1 then begin
    let reached = Hashtbl.create 8 in
    (match names with
     | [] -> ()
     | first :: _ ->
       Hashtbl.replace reached first ();
       let changed = ref true in
       while !changed do
         changed := false;
         List.iter
           (fun (a, b) ->
             match relation_of_column_opt a, relation_of_column_opt b with
             | Some ra, Some rb ->
               let ha = Hashtbl.mem reached ra
               and hb = Hashtbl.mem reached rb in
               if ha && not hb then begin
                 Hashtbl.replace reached rb ();
                 changed := true
               end;
               if hb && not ha then begin
                 Hashtbl.replace reached ra ();
                 changed := true
               end
             | _ -> ())
           q.join_preds
       done);
    let unreached = List.filter (fun n -> not (Hashtbl.mem reached n)) names in
    if unreached <> [] then
      add "disconnected-join-graph"
        ("join graph disconnected at " ^ String.concat "," unreached)
  end;
  List.rev !errs

let validate ~schema_of q =
  match validate_list ~schema_of q with
  | [] -> ()
  | errs ->
    invalid_arg
      ("Logical.validate: " ^ String.concat "; " (List.map snd errs))

let pp fmt q =
  Format.fprintf fmt "SELECT %s"
    (if q.group_cols = [] && q.aggs = [] then
       if q.projection = [] then "*" else String.concat ", " q.projection
     else
       String.concat ", "
         (q.group_cols
         @ List.map
             (fun (a : Aggregate.spec) ->
               Printf.sprintf "%s AS %s" (Expr.to_string a.expr) a.name)
             q.aggs));
  Format.fprintf fmt " FROM %s"
    (String.concat ", " (List.map (fun s -> s.name) q.sources));
  let filters =
    List.filter_map
      (fun s ->
        if s.filter = Predicate.tt then None
        else Some (Predicate.to_string s.filter))
      q.sources
  in
  let joins = List.map (fun (a, b) -> a ^ " = " ^ b) q.join_preds in
  (match filters @ joins with
   | [] -> ()
   | conds -> Format.fprintf fmt " WHERE %s" (String.concat " AND " conds));
  if q.group_cols <> [] then
    Format.fprintf fmt " GROUP BY %s" (String.concat ", " q.group_cols)
