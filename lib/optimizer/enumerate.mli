open Adp_exec

(** Bushy join-tree enumeration via recursion with memoization over
    relation subsets (§4.3) — equivalent to dynamic programming but
    shareable between re-optimizer invocations because the memo lives in
    the {!Cardinality.t} estimates.  Bushy trees matter for data
    integration (the paper cites [11, 8]); the enumerator considers every
    connected split of every subset and never introduces cross products
    when a connected split exists. *)

(** Upper bound on the relation count the enumerator accepts; every entry
    point raises [Invalid_argument] beyond it.  The static analyzer
    ([adp_analysis]) reports the same bound pre-execution. *)
val max_relations : int

(** [best_join_tree q est costs] returns the minimum-estimated-cost join
    tree (scans carry their pushed-down filters) and its estimated cost.
    @raise Invalid_argument for queries over more than {!max_relations}
    relations. *)
val best_join_tree :
  Logical.query -> Cardinality.t -> Cost_model.t -> Plan.spec * float

(** All maximal-quality trees enumerated with their costs, most promising
    first — used by the redundant-computation strategy to pick competing
    plans.  [k] bounds the result (default 3). *)
val top_trees :
  ?k:int -> Logical.query -> Cardinality.t -> Cost_model.t ->
  (Plan.spec * float) list

(** The costliest cross-product-free plan whose top [depth] (default 2)
    split levels are adversarial while deeper subplans stay
    optimizer-quality — the "unlucky" plan a mis-estimating optimizer can
    land on.  Used to reproduce the paper's poorly-chosen initial plans
    deterministically. *)
val worst_join_tree :
  ?depth:int -> Logical.query -> Cardinality.t -> Cost_model.t ->
  Plan.spec * float
