open Adp_relation
open Adp_exec

(** Logical select-project-join-aggregate queries — the query model of the
    paper's optimizer (§4.3): conjunctive equi-joins over base relations
    with pushed-down selections, and one optional grouping/aggregation on
    top.  Columns are qualified as ["relation.column"]; the relation a
    column belongs to is its qualifier. *)

type source = {
  name : string;  (** base relation / source name *)
  filter : Predicate.t;  (** selection pushed down to the scan *)
}

type query = {
  sources : source list;
  join_preds : (string * string) list;
      (** equi-join column pairs, both qualified *)
  group_cols : string list;  (** empty means no aggregation *)
  aggs : Aggregate.spec list;
  projection : string list;
      (** final output columns when no aggregation; empty = all *)
}

(** Relation qualifier of a column name.  @raise Invalid_argument when the
    name is unqualified. *)
val relation_of_column : string -> string

val source_names : query -> string list

(** Join predicates connecting [inside] to [outside] relation sets:
    returns (inside column, outside column) pairs. *)
val preds_between :
  query -> inside:string list -> outside:string list -> (string * string) list

(** All join predicates whose two columns both fall inside the relation
    set, as canonical ["a=b"] strings. *)
val preds_within : query -> string list -> string list

(** Whether the join predicates connect the given relation set (a join
    over a disconnected set contains a cross product). *)
val connected : query -> string list -> bool

(** Scan token (source + filter) used in plan signatures, matching
    {!Adp_exec.Plan.signature_of}. *)
val scan_token_of : query -> string -> string

(** Signature of the subexpression joining exactly this relation set
    (canonical; matches the executor's signatures for pre-aggregation-free
    subtrees). *)
val signature_of_set : query -> string list -> string

(** Relation qualifier of a column name, or [None] when unqualified. *)
val relation_of_column_opt : string -> string option

(** Sanity checks: every join/group/aggregate column resolves to a source,
    and the join graph is connected.  Returns ALL problems found as
    [(code, message)] pairs with stable kebab-case codes
    (["no-sources"], ["duplicate-source"], ["unqualified-column"],
    ["unknown-source-for-column"], ["unknown-source"], ["unknown-column"],
    ["disconnected-join-graph"]), so callers — notably the static analyzer
    in [adp_analysis] — can report every problem at once instead of dying
    on the first.  [schema_of] may raise [Not_found] for unknown sources;
    that is reported, not propagated. *)
val validate_list :
  schema_of:(string -> Schema.t) -> query -> (string * string) list

(** Raising wrapper over {!validate_list}.
    @raise Invalid_argument listing every problem found. *)
val validate : schema_of:(string -> Schema.t) -> query -> unit

val pp : Format.formatter -> query -> unit
