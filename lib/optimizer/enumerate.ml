open Adp_exec

(* Subset enumeration is exponential in the relation count; beyond this
   the optimizer must not even try.  The static analyzer checks the same
   bound before execution (diagnostic code "too-many-relations"). *)
let max_relations = 20

let check_relation_count n =
  if n > max_relations then
    invalid_arg
      (Printf.sprintf "Enumerate: more than %d relations" max_relations)

let rels_of names mask =
  let acc = ref [] in
  Array.iteri (fun i n -> if mask land (1 lsl i) <> 0 then acc := n :: !acc) names;
  List.rev !acc

let scan_spec q name =
  let src = List.find (fun s -> s.Logical.name = name) q.Logical.sources in
  Plan.scan ~filter:src.Logical.filter name

(* (spec, cost, card) of the best plan for each subset. *)
let build_table q est (costs : Cost_model.t) =
  let names = Array.of_list (Logical.source_names q) in
  let n = Array.length names in
  check_relation_count n;
  let full = (1 lsl n) - 1 in
  let memo = Array.make (full + 1) None in
  let rec best mask =
    match memo.(mask) with
    | Some x -> x
    | None ->
      let x = compute mask in
      memo.(mask) <- Some x;
      x
  and splits_of mask =
    (* Proper splits (sub, rest) with sub containing the lowest bit. *)
    let low = mask land -mask in
    let rec go sub acc =
      let acc =
        if sub <> 0 && sub <> mask && sub land low <> 0 then
          (sub, mask lxor sub) :: acc
        else acc
      in
      if sub = 0 then acc else go ((sub - 1) land mask) acc
    in
    go ((mask - 1) land mask) []
    |> List.filter (fun (sub, _) -> sub <> 0)
  and candidates_of mask =
    let join_candidate connected (sub, rest) =
      let inside = rels_of names sub and outside = rels_of names rest in
      let preds = Logical.preds_between q ~inside ~outside in
      if connected && preds = [] then None
      else begin
        let lspec, lcost, lcard = best sub in
        let rspec, rcost, rcard = best rest in
        let out = Cardinality.set_cardinality est (inside @ outside) in
        let work =
          ((lcard +. rcard) *. (costs.hash_build +. costs.hash_probe))
          +. (out *. costs.per_match)
        in
        Some (Plan.join lspec rspec ~on:preds, lcost +. rcost +. work, out)
      end
    in
    let splits = splits_of mask in
    let connected = List.filter_map (join_candidate true) splits in
    if connected <> [] then connected
    else List.filter_map (join_candidate false) splits
  and compute mask =
    match rels_of names mask with
    | [] -> invalid_arg "Enumerate: empty mask"
    | [ r ] ->
      let spec = scan_spec q r in
      let cost, card = Cost.plan_cost costs est spec in
      spec, cost, card
    | _ :: _ :: _ ->
      (match candidates_of mask with
       | [] -> invalid_arg "Enumerate: no candidates (disconnected query?)"
       | first :: rest ->
         List.fold_left
           (fun (bs, bc, bn) (s, c, n_) ->
             if c < bc then s, c, n_ else bs, bc, bn)
           first rest)
  in
  let root_candidates () = candidates_of full in
  best, root_candidates, full

let best_join_tree q est costs =
  let best, _, full = build_table q est costs in
  let spec, cost, _ = best full in
  spec, cost

(* Bounded adversarial enumeration: the costliest cross-product-free plan
   whose top [depth] split levels are chosen adversarially while deeper
   subplans stay optimizer-quality.  This is the deterministic stand-in
   for the "poor plan" a mis-estimating optimizer lands on (§4.4): such an
   optimizer mis-orders the outer joins, it does not construct a globally
   pessimal tree. *)
let rec has_cross = function
  | Plan.Scan _ -> false
  | Plan.Preagg p -> has_cross p.child
  | Plan.Join j -> j.left_key = [] || has_cross j.left || has_cross j.right

let worst_join_tree ?(depth = 2) q est (costs : Cost_model.t) =
  let best, _, full = build_table q est costs in
  let names = Array.of_list (Logical.source_names q) in
  let n = Array.length names in
  check_relation_count n;
  let rec worst depth mask =
    if depth = 0 then begin
      (* Optimizer-quality subplan — but a disconnected subset's best plan
         contains a cross product, which no real optimizer would choose. *)
      let ((spec, _, _) as result) = best mask in
      if has_cross spec then None else Some result
    end
    else
      match rels_of names mask with
      | [] -> None
      | [ r ] ->
        let spec = scan_spec q r in
        let cost, card = Cost.plan_cost costs est spec in
        Some (spec, cost, card)
      | rels ->
        if not (Logical.connected q rels) then None
        else begin
          let low = mask land -mask in
          let rec submasks sub acc =
            let acc =
              if sub <> 0 && sub <> mask && sub land low <> 0 then sub :: acc
              else acc
            in
            if sub = 0 then acc else submasks ((sub - 1) land mask) acc
          in
          let candidates =
            List.filter_map
              (fun sub ->
                let rest = mask lxor sub in
                let inside = rels_of names sub
                and outside = rels_of names rest in
                let preds = Logical.preds_between q ~inside ~outside in
                if preds = [] then None
                else
                  match worst (depth - 1) sub, worst (depth - 1) rest with
                  | Some (ls, lc, ln), Some (rs, rc, rn) ->
                    let out =
                      Cardinality.set_cardinality est (inside @ outside)
                    in
                    let work =
                      ((ln +. rn) *. (costs.hash_build +. costs.hash_probe))
                      +. (out *. costs.per_match)
                    in
                    Some (Plan.join ls rs ~on:preds, lc +. rc +. work, out)
                  | _ -> None)
              (submasks ((mask - 1) land mask) [])
          in
          match candidates with
          | [] -> None
          | first :: rest ->
            Some
              (List.fold_left
                 (fun (bs, bc, bn) (s, c, n_) ->
                   if c > bc then s, c, n_ else bs, bc, bn)
                 first rest)
        end
  in
  match worst depth full with
  | Some (spec, cost, _) -> spec, cost
  | None ->
    (* Disconnected query: fall back to the best (cross-bearing) plan. *)
    best_join_tree q est costs

let top_trees ?(k = 3) q est costs =
  let best, root_candidates, full = build_table q est costs in
  match Logical.source_names q with
  | [ _ ] ->
    let spec, cost, _ = best full in
    [ spec, cost ]
  | _ ->
    root_candidates ()
    |> List.map (fun (s, c, _) -> s, c)
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
    |> List.filteri (fun i _ -> i < k)
