(* The one sanctioned wall-reading module.  Everything here reads
   hardware time (Unix.gettimeofday, Sys.time) and allocator state
   (Gc.quick_stat); the effect lint allowlists exactly this file and
   flags any wall read elsewhere as [lint-wallclock-escape].

   A recorder is a *sidecar*: it observes the engine through the same
   attribution choke points the virtual-time profiler uses
   ([Ctx.charge_span]) but never feeds a value back, so a run with a
   recorder attached is bit-identical — virtual clock, result multiset,
   decision ledger — to a bare run.  Wall self-time is attributed by
   delta-since-last-stamp: each attribution charges the hardware time
   elapsed since the previous one to the span being charged, which is
   exact in aggregate and costs one clock read per charge.  Every
   [sample_every]-th attribution is a sampling-profiler tick: it takes a
   [Gc.quick_stat], charges the allocation delta to the sampled span,
   and records a sample (wall timestamp, reconstructed span stack, GC
   counters) for the collapsed-stack and Perfetto exports. *)

type gc_totals = {
  g_minor_words : float;
  g_major_words : float;
  g_promoted_words : float;
  g_minor_collections : int;
  g_major_collections : int;
  g_compactions : int;
  g_top_heap_words : int;
}

type info = {
  phase : string;
  node : string;
  depth : int;
  order : int;
  self_s : float;
  samples : int;
  minor_words : float;
  major_words : float;
}

type wspan = {
  w_phase : string;
  w_node : string;
  w_depth : int;
  w_order : int;
  w_bucket : bool;  (* wait/unattributed bucket: never a parent *)
  w_parent : wspan option;
  mutable w_self_s : float;
  mutable w_samples : int;
  mutable w_minor_words : float;
  mutable w_major_words : float;
}

type sample = {
  s_at_s : float;  (* seconds since the recorder's epoch *)
  s_minor_words : float;  (* cumulative since epoch *)
  s_major_words : float;
  s_heap_words : int;
  s_stack : string list;  (* root first, leaf last; head is the phase *)
}

type t = {
  sample_every : int;
  epoch : float;
  cpu_epoch : float;
  gc0 : Gc.stat;
  tbl : (string * string, wspan) Hashtbl.t;
  mutable rev : wspan list;  (* newest first *)
  mutable next_order : int;
  mutable cur_phase : string;
  mutable cur_scope : string;
  mutable last_abs : float;  (* monotonic clamp over gettimeofday *)
  mutable last_stamp : float;  (* relative seconds at last attribution *)
  mutable ticks : int;
  mutable memo : (Profile.span * wspan) option;  (* last attribution target *)
  mutable samples : sample list;  (* newest first *)
  mutable marks : (float * string) list;  (* event sidecar, newest first *)
  mutable last_minor : float;  (* words at the previous sampler tick *)
  mutable last_major : float;
}

(* ---------------- timebase ---------------- *)

(* Hybrid timebase: [Unix.gettimeofday] gives real elapsed time but can
   step backwards (NTP); clamping to the last reading makes the local
   view monotonic non-decreasing, which is all span deltas need.
   [Sys.time] rides along as the CPU-seconds shadow. *)

let mono_last = ref neg_infinity

let monotonic_s () =
  let raw = Unix.gettimeofday () in
  if raw < !mono_last then !mono_last
  else begin
    mono_last := raw;
    raw
  end

let cpu_now () = Sys.time ()

let create ?(sample_every = 64) () =
  let epoch = monotonic_s () in
  { sample_every = max 1 sample_every; epoch; cpu_epoch = cpu_now ();
    gc0 = Gc.quick_stat (); tbl = Hashtbl.create 64; rev = [];
    next_order = 0; cur_phase = "phase 0"; cur_scope = "";
    last_abs = epoch; last_stamp = 0.0; ticks = 0; memo = None;
    samples = []; marks = []; last_minor = 0.0; last_major = 0.0 }

let now_s t =
  let raw = Unix.gettimeofday () in
  let abs = if raw < t.last_abs then t.last_abs else raw in
  t.last_abs <- abs;
  abs -. t.epoch

let elapsed_s t = now_s t
let cpu_s t = cpu_now () -. t.cpu_epoch

(* ---------------- phases, scopes and spans ---------------- *)

let phase_key t =
  if t.cur_scope = "" then t.cur_phase
  else t.cur_scope ^ ":" ^ t.cur_phase

let set_phase t phase =
  if phase <> t.cur_phase then begin
    t.cur_phase <- phase;
    t.memo <- None
  end

let set_scope t scope =
  if scope <> t.cur_scope then begin
    t.cur_scope <- scope;
    t.memo <- None
  end

let find_span ?(bucket = false) t ~depth node =
  let ph = phase_key t in
  match Hashtbl.find_opt t.tbl (ph, node) with
  | Some w -> w
  | None ->
    (* Parent: the most recently registered non-bucket span of the same
       phase with a smaller depth — the pre-order ancestor, mirroring
       how [Profile] renders its indented tree.  Buckets hang off the
       phase root and never adopt children. *)
    let parent =
      if bucket then None
      else
        let rec go = function
          | [] -> None
          | w :: rest ->
            if w.w_phase = ph && w.w_depth < depth && not w.w_bucket then
              Some w
            else go rest
        in
        go t.rev
    in
    let w =
      { w_phase = ph; w_node = node; w_depth = depth; w_bucket = bucket;
        w_order = t.next_order; w_parent = parent; w_self_s = 0.0;
        w_samples = 0; w_minor_words = 0.0; w_major_words = 0.0 }
    in
    t.next_order <- t.next_order + 1;
    Hashtbl.add t.tbl (ph, node) w;
    t.rev <- w :: t.rev;
    w

let rec stack_of w =
  match w.w_parent with
  | None -> [ w.w_phase; w.w_node ]
  | Some p -> stack_of p @ [ w.w_node ]

let sample_tick t w at =
  let q = Gc.quick_stat () in
  let minor = q.Gc.minor_words -. t.gc0.Gc.minor_words in
  let major = q.Gc.major_words -. t.gc0.Gc.major_words in
  w.w_minor_words <- w.w_minor_words +. (minor -. t.last_minor);
  w.w_major_words <- w.w_major_words +. (major -. t.last_major);
  t.last_minor <- minor;
  t.last_major <- major;
  w.w_samples <- w.w_samples + 1;
  t.samples <-
    { s_at_s = at; s_minor_words = minor; s_major_words = major;
      s_heap_words = q.Gc.heap_words; s_stack = stack_of w }
    :: t.samples

let stamp t w =
  let at = now_s t in
  w.w_self_s <- w.w_self_s +. (at -. t.last_stamp);
  t.last_stamp <- at;
  t.ticks <- t.ticks + 1;
  if t.ticks mod t.sample_every = 0 then sample_tick t w at

(* [attribute t sp] charges the wall time elapsed since the last stamp
   to the wall shadow of virtual-profile span [sp] (or to the
   "(unattributed)" bucket when the charge carried no span).  The memo
   makes the common case — many consecutive charges to one span — a
   physical-equality check instead of a hash lookup. *)
let attribute t sp =
  let w =
    match sp with
    | None -> find_span ~bucket:true t ~depth:0 "(unattributed)"
    | Some sp -> (
      match t.memo with
      | Some (sp', w) when sp' == sp -> w
      | _ ->
        let w =
          (* The wall registry mirrors Profile's keying, but re-resolves
             the phase itself: Ctx keeps both in lockstep. *)
          find_span t ~depth:(Profile.span_depth sp) (Profile.span_node sp)
        in
        t.memo <- Some (sp, w);
        w)
  in
  stamp t w

(* Wait points (the driver blocking on source arrival or retry backoff)
   stamp into a named bucket so the wall cost of waiting never pollutes
   the next operator's span. *)
let note_wait t name = stamp t (find_span ~bucket:true t ~depth:0 name)

(* Event sidecar: wall timestamps riding the trace, without touching the
   trace's own virtual-time stamps.  Reading the clock here does not
   advance [last_stamp]; the read itself is attributed to whichever span
   is charged next, which is noise-level. *)
let note_event t name = t.marks <- (now_s t, name) :: t.marks
let marks t = List.rev t.marks

(* ---------------- reads ---------------- *)

let info w =
  { phase = w.w_phase; node = w.w_node; depth = w.w_depth;
    order = w.w_order; self_s = w.w_self_s; samples = w.w_samples;
    minor_words = w.w_minor_words; major_words = w.w_major_words }

let spans t = List.rev_map info t.rev

let totals t =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun (i : info) ->
      match Hashtbl.find_opt tbl i.node with
      | None ->
        order := i.node :: !order;
        Hashtbl.add tbl i.node { i with phase = "*" }
      | Some acc ->
        Hashtbl.replace tbl i.node
          { acc with
            self_s = acc.self_s +. i.self_s;
            samples = acc.samples + i.samples;
            minor_words = acc.minor_words +. i.minor_words;
            major_words = acc.major_words +. i.major_words })
    (spans t);
  List.rev_map (Hashtbl.find tbl) !order

let sample_count t = List.length t.samples

let gc_totals t =
  let q = Gc.quick_stat () in
  { g_minor_words = q.Gc.minor_words -. t.gc0.Gc.minor_words;
    g_major_words = q.Gc.major_words -. t.gc0.Gc.major_words;
    g_promoted_words = q.Gc.promoted_words -. t.gc0.Gc.promoted_words;
    g_minor_collections =
      q.Gc.minor_collections - t.gc0.Gc.minor_collections;
    g_major_collections =
      q.Gc.major_collections - t.gc0.Gc.major_collections;
    g_compactions = q.Gc.compactions - t.gc0.Gc.compactions;
    g_top_heap_words = q.Gc.top_heap_words }

(* ---------------- exports ---------------- *)

(* Collapsed-stack ("folded") flamegraph lines: one line per span,
   "phase;ancestor;...;node count", count = sampler ticks that landed in
   the span.  When the run was too short for the sampler to fire at all,
   fall back to weighting by wall self-time in microseconds so the
   export is never empty for a timed run. *)
let to_folded t =
  let use_samples = List.exists (fun w -> w.w_samples > 0) t.rev in
  let lines =
    List.filter_map
      (fun w ->
        let count =
          if use_samples then w.w_samples
          else int_of_float (Float.round (w.w_self_s *. 1e6))
        in
        if count <= 0 then None
        else
          Some (String.concat ";" (stack_of w) ^ " " ^ string_of_int count))
      (List.rev t.rev)
  in
  String.concat "" (List.map (fun l -> l ^ "\n") lines)

(* Perfetto / Chrome trace JSON: a counter track per GC series (ph "C")
   sampled at the profiler ticks, plus instant events (ph "i") for the
   wall timestamps of the trace-event sidecar.  Timestamps are wall
   microseconds since the recorder's epoch. *)
let to_perfetto t =
  let counter at name value =
    Json.Obj
      [ ("name", Json.Str name); ("ph", Json.Str "C");
        ("ts", Json.Num (at *. 1e6)); ("pid", Json.Num 1.0);
        ("tid", Json.Num 1.0);
        ("args", Json.Obj [ ("value", Json.Num value) ]) ]
  in
  let counters =
    List.concat_map
      (fun s ->
        [ counter s.s_at_s "adp_gc_minor_words" s.s_minor_words;
          counter s.s_at_s "adp_gc_major_words" s.s_major_words;
          counter s.s_at_s "adp_gc_heap_words"
            (float_of_int s.s_heap_words) ])
      (List.rev t.samples)
  in
  let instants =
    List.map
      (fun (at, name) ->
        Json.Obj
          [ ("name", Json.Str name); ("ph", Json.Str "i");
            ("ts", Json.Num (at *. 1e6)); ("pid", Json.Num 1.0);
            ("tid", Json.Num 1.0); ("s", Json.Str "t") ])
      (List.rev t.marks)
  in
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.List (counters @ instants));
         ("displayTimeUnit", Json.Str "ms") ])

let sync_metrics t m =
  let g name help v = Metrics.set (Metrics.gauge m ~help name) v in
  let gc = gc_totals t in
  g "adp_wall_elapsed_seconds" "wall-clock seconds since wall capture began"
    (elapsed_s t);
  g "adp_wall_cpu_seconds" "process CPU seconds since wall capture began"
    (cpu_s t);
  g "adp_wall_samples" "sampling-profiler ticks recorded"
    (float_of_int (sample_count t));
  g "adp_gc_minor_words" "words allocated in the minor heap"
    gc.g_minor_words;
  g "adp_gc_major_words" "words allocated in the major heap"
    gc.g_major_words;
  g "adp_gc_promoted_words" "words promoted minor -> major"
    gc.g_promoted_words;
  g "adp_gc_minor_collections" "minor collections"
    (float_of_int gc.g_minor_collections);
  g "adp_gc_major_collections" "major collection cycles"
    (float_of_int gc.g_major_collections);
  g "adp_gc_compactions" "heap compactions"
    (float_of_int gc.g_compactions);
  g "adp_gc_top_heap_words" "largest major heap size reached"
    (float_of_int gc.g_top_heap_words)
