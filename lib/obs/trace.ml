type decision = Keep | Switch

type event =
  | Phase_opened of { id : int; plan : string }
  | Phase_closed of { id : int; read : int; emitted : int }
  | Reopt_poll of {
      phase : int;
      est_cost : float;
      best_cost : float;
      best_plan : string;
      switch_cost : float;
      remaining_fraction : float;
      observed_sel : (string * float) list;
      decision : decision;
    }
  | Plan_switch of { from_plan : string; to_plan : string; reason : string }
  | Comp_join_route of { side : string; routed_to : string; routed : int }
  | Agg_window_resize of {
      node : string;
      from_window : int;
      to_window : int;
      reduction : float;
    }
  | Retry of {
      source : string;
      attempt : int;
      ok : bool;
      next_attempt_s : float;
    }
  | Failover of { source : string; ok : bool }
  | Checkpoint_written of { seq : int; path : string; bytes : int }
  | Checkpoint_resumed of { seq : int; path : string; phases : int }
  | Stitchup_begin of { phases : int; combos : int }
  | Stitchup_end of { output : int; reused : int; recomputed : int }
  | Page_out of { node : string }
  | Node_profile of {
      phase : string;
      node : string;
      depth : int;
      self_us : float;
      tuples_in : int;
      tuples_out : int;
      probes : int;
      builds : int;
      mem_hw : int;
    }
  | Calibration of {
      phase : string;
      point : string;
      node : string;
      est : float;
      actual : float;
      q_error : float;
      blame : bool;
    }
  | Worker_spawned of { worker : int }
  | Worker_died of {
      worker : int;
      query : string;
      last_heartbeat_s : float;
    }
  | Worker_reclaimed of {
      worker : int;
      query : string;
      attempt : int;
      resume_from : string;
    }
  | Poll_interval_changed of { from_s : float; to_s : float; found : int }
  | Admission of {
      query : string;
      accepted : bool;
      queue_depth : int;
      reason : string;
    }
  | Deadline_exceeded of {
      deadline_s : float;
      now_s : float;
      est_finish_s : float;
    }
  | Budget_exhausted of { in_use : int; ceiling : int }
  | Query_degraded of { reason : string; phase : int; coverage : float }
  | Breaker_state_changed of {
      source : string;
      from_state : string;
      to_state : string;
      failures : int;
    }
  | Query_attempt of {
      query : string;
      attempt : int;
      worker : int;
      events : int;  (* length of the re-stamped block that follows *)
    }
  | Slo_violation of {
      slo : string;
      metric : string;
      agg : string;
      op : string;
      value : float;
      bound : float;
    }
  | Slo_recovered of {
      slo : string;
      metric : string;
      agg : string;
      op : string;
      value : float;
      bound : float;
    }

type stamped = float * event

type format = Jsonl | Chrome

type file_sink = {
  path : string;
  fmt : format;
  mutable acc : stamped list;  (* reversed *)
  mutable flushed : bool;
}

type t =
  | Null
  | Memory of stamped list ref
  | File of file_sink

let null = Null
let memory () = Memory (ref [])
let file ~format path = File { path; fmt = format; acc = []; flushed = false }
let enabled = function Null -> false | Memory _ | File _ -> true

let emit t ~at ev =
  match t with
  | Null -> ()
  | Memory r -> r := (at, ev) :: !r
  | File f -> f.acc <- (at, ev) :: f.acc

let events = function
  | Null -> []
  | Memory r -> List.rev !r
  | File f -> List.rev f.acc

(* ------------------------------------------------------------------ *)
(* Serialization                                                      *)
(* ------------------------------------------------------------------ *)

let event_name = function
  | Phase_opened _ -> "phase_opened"
  | Phase_closed _ -> "phase_closed"
  | Reopt_poll _ -> "reopt_poll"
  | Plan_switch _ -> "plan_switch"
  | Comp_join_route _ -> "comp_join_route"
  | Agg_window_resize _ -> "agg_window_resize"
  | Retry _ -> "retry"
  | Failover _ -> "failover"
  | Checkpoint_written _ -> "checkpoint_written"
  | Checkpoint_resumed _ -> "checkpoint_resumed"
  | Stitchup_begin _ -> "stitchup_begin"
  | Stitchup_end _ -> "stitchup_end"
  | Page_out _ -> "page_out"
  | Node_profile _ -> "node_profile"
  | Calibration _ -> "calibration"
  | Worker_spawned _ -> "worker_spawned"
  | Worker_died _ -> "worker_died"
  | Worker_reclaimed _ -> "worker_reclaimed"
  | Poll_interval_changed _ -> "poll_interval_changed"
  | Admission _ -> "admission"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Budget_exhausted _ -> "budget_exhausted"
  | Query_degraded _ -> "query_degraded"
  | Breaker_state_changed _ -> "breaker_state_changed"
  | Query_attempt _ -> "query_attempt"
  | Slo_violation _ -> "slo_violation"
  | Slo_recovered _ -> "slo_recovered"

let decision_str = function Keep -> "keep" | Switch -> "switch"

let fields ev : (string * Json.t) list =
  let num f = Json.Num f in
  let int i = Json.Num (float_of_int i) in
  let str s = Json.Str s in
  match ev with
  | Phase_opened { id; plan } -> [ ("id", int id); ("plan", str plan) ]
  | Phase_closed { id; read; emitted } ->
    [ ("id", int id); ("read", int read); ("emitted", int emitted) ]
  | Reopt_poll
      { phase; est_cost; best_cost; best_plan; switch_cost;
        remaining_fraction; observed_sel; decision } ->
    [ ("phase", int phase); ("est_cost", num est_cost);
      ("best_cost", num best_cost); ("best_plan", str best_plan);
      ("switch_cost", num switch_cost);
      ("remaining_fraction", num remaining_fraction);
      ( "observed_sel",
        Json.Obj (List.map (fun (k, v) -> (k, num v)) observed_sel) );
      ("decision", str (decision_str decision)) ]
  | Plan_switch { from_plan; to_plan; reason } ->
    [ ("from", str from_plan); ("to", str to_plan); ("reason", str reason) ]
  | Comp_join_route { side; routed_to; routed } ->
    [ ("side", str side); ("to", str routed_to); ("routed", int routed) ]
  | Agg_window_resize { node; from_window; to_window; reduction } ->
    [ ("node", str node); ("from", int from_window); ("to", int to_window);
      ("reduction", num reduction) ]
  | Retry { source; attempt; ok; next_attempt_s } ->
    [ ("source", str source); ("attempt", int attempt); ("ok", Json.Bool ok);
      ("next_attempt_s", num next_attempt_s) ]
  | Failover { source; ok } -> [ ("source", str source); ("ok", Json.Bool ok) ]
  | Checkpoint_written { seq; path; bytes } ->
    [ ("seq", int seq); ("path", str path); ("bytes", int bytes) ]
  | Checkpoint_resumed { seq; path; phases } ->
    [ ("seq", int seq); ("path", str path); ("phases", int phases) ]
  | Stitchup_begin { phases; combos } ->
    [ ("phases", int phases); ("combos", int combos) ]
  | Stitchup_end { output; reused; recomputed } ->
    [ ("output", int output); ("reused", int reused);
      ("recomputed", int recomputed) ]
  | Page_out { node } -> [ ("node", str node) ]
  | Node_profile
      { phase; node; depth; self_us; tuples_in; tuples_out; probes; builds;
        mem_hw } ->
    [ ("phase", str phase); ("node", str node); ("depth", int depth);
      ("self_us", num self_us); ("in", int tuples_in);
      ("out", int tuples_out); ("probes", int probes);
      ("builds", int builds); ("mem_hw", int mem_hw) ]
  | Calibration { phase; point; node; est; actual; q_error; blame } ->
    [ ("phase", str phase); ("point", str point); ("node", str node);
      ("est", num est); ("actual", num actual); ("q_error", num q_error);
      ("blame", Json.Bool blame) ]
  | Worker_spawned { worker } -> [ ("worker", int worker) ]
  | Worker_died { worker; query; last_heartbeat_s } ->
    [ ("worker", int worker); ("query", str query);
      ("last_heartbeat_s", num last_heartbeat_s) ]
  | Worker_reclaimed { worker; query; attempt; resume_from } ->
    [ ("worker", int worker); ("query", str query); ("attempt", int attempt);
      ("resume_from", str resume_from) ]
  | Poll_interval_changed { from_s; to_s; found } ->
    [ ("from_s", num from_s); ("to_s", num to_s); ("found", int found) ]
  | Admission { query; accepted; queue_depth; reason } ->
    [ ("query", str query); ("accepted", Json.Bool accepted);
      ("queue_depth", int queue_depth); ("reason", str reason) ]
  | Deadline_exceeded { deadline_s; now_s; est_finish_s } ->
    [ ("deadline_s", num deadline_s); ("now_s", num now_s);
      ("est_finish_s", num est_finish_s) ]
  | Budget_exhausted { in_use; ceiling } ->
    [ ("in_use", int in_use); ("ceiling", int ceiling) ]
  | Query_degraded { reason; phase; coverage } ->
    [ ("reason", str reason); ("phase", int phase);
      ("coverage", num coverage) ]
  | Breaker_state_changed { source; from_state; to_state; failures } ->
    [ ("source", str source); ("from", str from_state);
      ("to", str to_state); ("failures", int failures) ]
  | Query_attempt { query; attempt; worker; events } ->
    [ ("query", str query); ("attempt", int attempt);
      ("worker", int worker); ("events", int events) ]
  | Slo_violation { slo; metric; agg; op; value; bound }
  | Slo_recovered { slo; metric; agg; op; value; bound } ->
    [ ("slo", str slo); ("metric", str metric); ("agg", str agg);
      ("op", str op); ("value", num value); ("bound", num bound) ]

let to_json (at, ev) =
  Json.Obj
    (("ts", Json.Num at) :: ("ev", Json.Str (event_name ev)) :: fields ev)

exception Bad of string

let req j k f =
  match Json.member k j with
  | None -> raise (Bad (Printf.sprintf "missing field %S" k))
  | Some v -> (
    match f v with
    | Some x -> x
    | None -> raise (Bad (Printf.sprintf "bad field %S" k)))

let of_json j =
  try
    let int k = req j k Json.get_int in
    let num k = req j k Json.get_num in
    let str k = req j k Json.get_str in
    let bool k = req j k Json.get_bool in
    let at = req j "ts" Json.get_num in
    let ev =
      match req j "ev" Json.get_str with
      | "phase_opened" -> Phase_opened { id = int "id"; plan = str "plan" }
      | "phase_closed" ->
        Phase_closed
          { id = int "id"; read = int "read"; emitted = int "emitted" }
      | "reopt_poll" ->
        let observed_sel =
          match Json.member "observed_sel" j with
          | Some (Json.Obj kvs) ->
            List.map
              (fun (k, v) ->
                match Json.get_num v with
                | Some f -> (k, f)
                | None -> raise (Bad "bad selectivity entry"))
              kvs
          | _ -> raise (Bad "missing field \"observed_sel\"")
        in
        let decision =
          match str "decision" with
          | "keep" -> Keep
          | "switch" -> Switch
          | _ -> raise (Bad "bad field \"decision\"")
        in
        Reopt_poll
          { phase = int "phase"; est_cost = num "est_cost";
            best_cost = num "best_cost"; best_plan = str "best_plan";
            switch_cost = num "switch_cost";
            remaining_fraction = num "remaining_fraction"; observed_sel;
            decision }
      | "plan_switch" ->
        Plan_switch
          { from_plan = str "from"; to_plan = str "to"; reason = str "reason" }
      | "comp_join_route" ->
        Comp_join_route
          { side = str "side"; routed_to = str "to"; routed = int "routed" }
      | "agg_window_resize" ->
        Agg_window_resize
          { node = str "node"; from_window = int "from";
            to_window = int "to"; reduction = num "reduction" }
      | "retry" ->
        Retry
          { source = str "source"; attempt = int "attempt"; ok = bool "ok";
            next_attempt_s = num "next_attempt_s" }
      | "failover" -> Failover { source = str "source"; ok = bool "ok" }
      | "checkpoint_written" ->
        Checkpoint_written
          { seq = int "seq"; path = str "path"; bytes = int "bytes" }
      | "checkpoint_resumed" ->
        Checkpoint_resumed
          { seq = int "seq"; path = str "path"; phases = int "phases" }
      | "stitchup_begin" ->
        Stitchup_begin { phases = int "phases"; combos = int "combos" }
      | "stitchup_end" ->
        Stitchup_end
          { output = int "output"; reused = int "reused";
            recomputed = int "recomputed" }
      | "page_out" -> Page_out { node = str "node" }
      | "node_profile" ->
        Node_profile
          { phase = str "phase"; node = str "node"; depth = int "depth";
            self_us = num "self_us"; tuples_in = int "in";
            tuples_out = int "out"; probes = int "probes";
            builds = int "builds"; mem_hw = int "mem_hw" }
      | "calibration" ->
        Calibration
          { phase = str "phase"; point = str "point"; node = str "node";
            est = num "est"; actual = num "actual"; q_error = num "q_error";
            blame = bool "blame" }
      | "worker_spawned" -> Worker_spawned { worker = int "worker" }
      | "worker_died" ->
        Worker_died
          { worker = int "worker"; query = str "query";
            last_heartbeat_s = num "last_heartbeat_s" }
      | "worker_reclaimed" ->
        Worker_reclaimed
          { worker = int "worker"; query = str "query";
            attempt = int "attempt"; resume_from = str "resume_from" }
      | "poll_interval_changed" ->
        Poll_interval_changed
          { from_s = num "from_s"; to_s = num "to_s"; found = int "found" }
      | "admission" ->
        Admission
          { query = str "query"; accepted = bool "accepted";
            queue_depth = int "queue_depth"; reason = str "reason" }
      | "deadline_exceeded" ->
        Deadline_exceeded
          { deadline_s = num "deadline_s"; now_s = num "now_s";
            est_finish_s = num "est_finish_s" }
      | "budget_exhausted" ->
        Budget_exhausted { in_use = int "in_use"; ceiling = int "ceiling" }
      | "query_degraded" ->
        Query_degraded
          { reason = str "reason"; phase = int "phase";
            coverage = num "coverage" }
      | "breaker_state_changed" ->
        Breaker_state_changed
          { source = str "source"; from_state = str "from";
            to_state = str "to"; failures = int "failures" }
      | "query_attempt" ->
        Query_attempt
          { query = str "query"; attempt = int "attempt";
            worker = int "worker"; events = int "events" }
      | "slo_violation" ->
        Slo_violation
          { slo = str "slo"; metric = str "metric"; agg = str "agg";
            op = str "op"; value = num "value"; bound = num "bound" }
      | "slo_recovered" ->
        Slo_recovered
          { slo = str "slo"; metric = str "metric"; agg = str "agg";
            op = str "op"; value = num "value"; bound = num "bound" }
      | other -> raise (Bad (Printf.sprintf "unknown event %S" other))
    in
    Ok (at, ev)
  with Bad msg -> Error msg

let to_jsonl evs =
  let b = Buffer.create 4096 in
  List.iter
    (fun ev ->
      Json.to_buffer b (to_json ev);
      Buffer.add_char b '\n')
    evs;
  Buffer.contents b

(* Chrome trace_event JSON (loadable in Perfetto / about://tracing).
   Phases and the stitch-up become duration (B/E) slices; every other
   event is an instant.  Timestamps are virtual µs, which trace_event's
   [ts] field expects. *)
let to_chrome evs =
  let record (at, ev) =
    let name, ph =
      match ev with
      | Phase_opened { id; _ } -> (Printf.sprintf "phase %d" id, "B")
      | Phase_closed { id; _ } -> (Printf.sprintf "phase %d" id, "E")
      | Stitchup_begin _ -> ("stitch-up", "B")
      | Stitchup_end _ -> ("stitch-up", "E")
      | ev -> (event_name ev, "i")
    in
    let base =
      [ ("name", Json.Str name); ("ph", Json.Str ph); ("ts", Json.Num at);
        ("pid", Json.Num 1.0); ("tid", Json.Num 1.0) ]
    in
    let scope = if ph = "i" then [ ("s", Json.Str "t") ] else [] in
    Json.Obj (base @ scope @ [ ("args", Json.Obj (fields ev)) ])
  in
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.List (List.map record evs));
         ("displayTimeUnit", Json.Str "ms") ])

let close t =
  match t with
  | Null | Memory _ -> ()
  | File f ->
    if not f.flushed then begin
      f.flushed <- true;
      let evs = List.rev f.acc in
      let body =
        match f.fmt with Jsonl -> to_jsonl evs | Chrome -> to_chrome evs
      in
      Adp_storage.Snapshot.write_text ~path:f.path body
    end

let read_jsonl path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else begin
    let ic = open_in_bin path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    let lines = List.rev !lines in
    let rec go lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else begin
          match Json.parse line with
          | Error msg ->
            Error (Printf.sprintf "%s:%d: %s" path lineno msg)
          | Ok j -> (
            match of_json j with
            | Error msg ->
              Error (Printf.sprintf "%s:%d: %s" path lineno msg)
            | Ok ev -> go (lineno + 1) (ev :: acc) rest)
        end
    in
    go 1 [] lines
  end

(* ------------------------------------------------------------------ *)
(* Replay                                                             *)
(* ------------------------------------------------------------------ *)

let fnum = Json.float_str

let pp_event ppf ev =
  match ev with
  | Phase_opened { id; plan } ->
    Format.fprintf ppf "phase %d opened: %s" id plan
  | Phase_closed { id; read; emitted } ->
    Format.fprintf ppf "phase %d closed: read %d source tuples, emitted %d"
      id read emitted
  | Reopt_poll
      { phase; est_cost; best_cost; best_plan; switch_cost;
        remaining_fraction; decision; _ } ->
    Format.fprintf ppf
      "re-opt poll (phase %d): cost-to-go %s, best %s via %s, switch cost \
       %s, %.0f%% of input remaining -> %s"
      phase (fnum est_cost) (fnum best_cost) best_plan (fnum switch_cost)
      (100.0 *. remaining_fraction)
      (match decision with Keep -> "keep current plan" | Switch -> "SWITCH")
  | Plan_switch { from_plan; to_plan; reason } ->
    Format.fprintf ppf "plan switch: %s => %s (%s)" from_plan to_plan reason
  | Comp_join_route { side; routed_to; routed } ->
    Format.fprintf ppf
      "comp-join router: side %s now feeds the %s join (%d tuples routed \
       before the flip)"
      side routed_to routed
  | Agg_window_resize { node; from_window; to_window; reduction } ->
    Format.fprintf ppf
      "pre-agg window resize: %s, %d -> %d (observed reduction %.2f)" node
      from_window to_window reduction
  | Retry { source; attempt; ok; next_attempt_s } ->
    if ok then
      Format.fprintf ppf "retry: %s reconnected on attempt %d" source attempt
    else
      Format.fprintf ppf
        "retry: %s attempt %d failed, next attempt at %s s" source attempt
        (fnum next_attempt_s)
  | Failover { source; ok } ->
    if ok then Format.fprintf ppf "failover: mirror took over for %s" source
    else
      Format.fprintf ppf
        "failover: %s lost with no mirror left, continuing partial" source
  | Checkpoint_written { seq; path; bytes } ->
    Format.fprintf ppf "checkpoint #%d written (%d bytes) -> %s" seq bytes
      path
  | Checkpoint_resumed { seq; path; phases } ->
    Format.fprintf ppf
      "resumed from checkpoint #%d (%d restored phase%s) <- %s" seq phases
      (if phases = 1 then "" else "s")
      path
  | Stitchup_begin { phases; combos } ->
    Format.fprintf ppf
      "stitch-up begin: %d phases, %d cross-phase combinations" phases
      combos
  | Stitchup_end { output; reused; recomputed } ->
    Format.fprintf ppf
      "stitch-up end: %d rows (%d registry tuples reused, %d recomputed)"
      output reused recomputed
  | Page_out { node } ->
    Format.fprintf ppf "page-out: %s" node
  | Node_profile { phase; node; self_us; tuples_in; tuples_out; _ } ->
    Format.fprintf ppf
      "node profile [%s] %s: self %s s, in %d, out %d" phase node
      (fnum (self_us /. 1e6))
      tuples_in tuples_out
  | Calibration { phase; point; node; est; actual; q_error; blame } ->
    Format.fprintf ppf
      "calibration [%s, %s] %s: est %s, actual %s, q-error %s%s" phase point
      node (fnum est) (fnum actual) (fnum q_error)
      (if blame then " <- blame" else "")
  | Worker_spawned { worker } ->
    Format.fprintf ppf "worker %d spawned" worker
  | Worker_died { worker; query; last_heartbeat_s } ->
    Format.fprintf ppf
      "worker %d died running %s (last heartbeat at %s s)" worker query
      (fnum last_heartbeat_s)
  | Worker_reclaimed { worker; query; attempt; resume_from } ->
    if resume_from = "" then
      Format.fprintf ppf
        "query %s reclaimed from worker %d (attempt %d, no checkpoint: \
         restarting fresh)"
        query worker attempt
    else
      Format.fprintf ppf
        "query %s reclaimed from worker %d (attempt %d, resuming <- %s)"
        query worker attempt resume_from
  | Poll_interval_changed { from_s; to_s; found } ->
    Format.fprintf ppf
      "dispatcher poll interval %s s -> %s s (%d ready)" (fnum from_s)
      (fnum to_s) found
  | Admission { query; accepted; queue_depth; reason } ->
    if accepted then
      Format.fprintf ppf "admission: %s accepted (queue depth %d)" query
        queue_depth
    else
      Format.fprintf ppf "admission: %s REJECTED (%s, queue depth %d)" query
        reason queue_depth
  | Deadline_exceeded { deadline_s; now_s; est_finish_s } ->
    Format.fprintf ppf
      "deadline exceeded: limit %s s, now %s s, estimated finish %s s"
      (fnum deadline_s) (fnum now_s) (fnum est_finish_s)
  | Budget_exhausted { in_use; ceiling } ->
    Format.fprintf ppf
      "memory budget exhausted: %d resident tuples over ceiling %d" in_use
      ceiling
  | Query_degraded { reason; phase; coverage } ->
    Format.fprintf ppf
      "query DEGRADED (%s) in phase %d: finishing with what arrived \
       (coverage %.2f)"
      reason phase coverage
  | Breaker_state_changed { source; from_state; to_state; failures } ->
    Format.fprintf ppf
      "circuit breaker: %s %s -> %s (%d failure%s in window)" source
      from_state to_state failures
      (if failures = 1 then "" else "s")
  | Query_attempt { query; attempt; worker; events } ->
    Format.fprintf ppf
      "query %s attempt %d on worker %d: %d re-stamped event%s" query
      attempt worker events
      (if events = 1 then "" else "s")
  | Slo_violation { slo; metric; agg; op; value; bound } ->
    Format.fprintf ppf "SLO %s VIOLATED: %s %s = %s (objective %s %s)" slo
      metric agg (fnum value) op (fnum bound)
  | Slo_recovered { slo; metric; agg; op; value; bound } ->
    Format.fprintf ppf "SLO %s recovered: %s %s = %s (objective %s %s)" slo
      metric agg (fnum value) op (fnum bound)

(* Rebuild a [Profile.t] from the Node_profile events a profiled run
   appends to its trace; emission preserved registration order, so the
   rendered tree is the run's own pre-order. *)
let profile_of_events evs =
  let p = Profile.create () in
  let any = ref false in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Node_profile
          { phase; node; depth; self_us; tuples_in; tuples_out; probes;
            builds; mem_hw } ->
        any := true;
        Profile.set_phase p phase;
        let sp = Profile.span p ~depth node in
        Profile.add_time sp self_us;
        Profile.add_in sp tuples_in;
        Profile.add_out sp tuples_out;
        Profile.add_probes sp probes;
        Profile.add_builds sp builds;
        Profile.note_mem sp mem_hw
      | _ -> ())
    evs;
  if !any then Some p else None

let explain ppf evs =
  match evs with
  | [] -> Format.fprintf ppf "(empty trace)@."
  | (first, _) :: _ ->
    let last = List.fold_left (fun _ (at, _) -> at) first evs in
    (* Profile/calibration events are end-of-run summaries; render them
       as sections below rather than as timeline lines. *)
    let summary_ev = function
      | Node_profile _ | Calibration _ -> true
      | _ -> false
    in
    (* Server traces mark each contiguous re-stamped block with a
       [Query_attempt] header; render the block's events as a per-query
       lane (prefixed with the query id) instead of anonymous flat
       lines.  Traces without markers are untouched. *)
    let lane = ref "" in
    let lane_left = ref 0 in
    List.iter
      (fun (at, ev) ->
        let prefix =
          if !lane_left > 0 then begin
            decr lane_left;
            !lane ^ "| "
          end
          else ""
        in
        if summary_ev ev then ()
        else
          Format.fprintf ppf "[%12.6f s] %s%a@." (at /. 1e6) prefix pp_event
            ev;
        (match ev with
         | Query_attempt { query; events; _ } ->
           lane := query;
           lane_left := events
         | _ -> ());
        match ev with
        | Reopt_poll { observed_sel; _ } when observed_sel <> [] ->
          let shown, rest =
            let rec split n = function
              | x :: tl when n > 0 ->
                let a, b = split (n - 1) tl in
                (x :: a, b)
              | l -> ([], l)
            in
            split 8 observed_sel
          in
          List.iter
            (fun (sg, v) ->
              Format.fprintf ppf "%16s evidence: sel %s = %.4f@." "" sg v)
            shown;
          if rest <> [] then
            Format.fprintf ppf "%16s evidence: (+%d more)@." ""
              (List.length rest)
        | _ -> ())
      evs;
    let count f = List.length (List.filter (fun (_, ev) -> f ev) evs) in
    let phases = count (function Phase_opened _ -> true | _ -> false) in
    let polls = count (function Reopt_poll _ -> true | _ -> false) in
    let switches = count (function Plan_switch _ -> true | _ -> false) in
    let routes = count (function Comp_join_route _ -> true | _ -> false) in
    let resizes =
      count (function Agg_window_resize _ -> true | _ -> false)
    in
    let retries = count (function Retry _ -> true | _ -> false) in
    let failovers = count (function Failover _ -> true | _ -> false) in
    let ckpts =
      count (function Checkpoint_written _ -> true | _ -> false)
    in
    let pageouts = count (function Page_out _ -> true | _ -> false) in
    (match profile_of_events evs with
     | None -> ()
     | Some p ->
       let blames =
         List.filter_map
           (function
             | _, Calibration { node; blame = true; _ } -> Some node
             | _ -> None)
           evs
       in
       let annot ~node =
         if List.mem node blames then Some "<- blame" else None
       in
       Format.fprintf ppf "-- per-node profile:@.";
       Profile.render ~annot ppf p);
    let has_calibration =
      List.exists (function _, Calibration _ -> true | _ -> false) evs
    in
    if has_calibration then begin
      Format.fprintf ppf "-- calibration (latest per node):@.";
      List.iter
        (fun (_, ev) ->
          match ev with
          | Calibration _ ->
            Format.fprintf ppf "   %a@." pp_event ev
          | _ -> ())
        evs
    end;
    Format.fprintf ppf
      "-- %d events spanning %s virtual seconds@.-- phases %d; polls %d; \
       switches %d; routing flips %d; window resizes %d; retries %d; \
       failovers %d; checkpoints %d; page-outs %d@."
      (List.length evs)
      (fnum ((last -. first) /. 1e6))
      phases polls switches routes resizes retries failovers ckpts pageouts;
    (* Server-level events only appear in [tukwila serve] traces; keep
       single-query replays byte-identical by printing the extra summary
       line only when they are present. *)
    let spawns = count (function Worker_spawned _ -> true | _ -> false) in
    let deaths = count (function Worker_died _ -> true | _ -> false) in
    let reclaims =
      count (function Worker_reclaimed _ -> true | _ -> false)
    in
    let interval_moves =
      count (function Poll_interval_changed _ -> true | _ -> false)
    in
    let sheds =
      count (function Admission { accepted = false; _ } -> true | _ -> false)
    in
    if spawns + deaths + reclaims + interval_moves + sheds > 0 then
      Format.fprintf ppf
        "-- server: workers spawned %d; deaths %d; reclaims %d; \
         poll-interval moves %d; load-shed %d@."
        spawns deaths reclaims interval_moves sheds;
    (* Lane markers and SLO transitions only appear in telemetry-enabled
       server traces; older replays stay byte-identical. *)
    let lanes = count (function Query_attempt _ -> true | _ -> false) in
    if lanes > 0 then
      Format.fprintf ppf "-- lanes: %d query-attempt block%s@." lanes
        (if lanes = 1 then "" else "s");
    let violations = count (function Slo_violation _ -> true | _ -> false) in
    let recoveries = count (function Slo_recovered _ -> true | _ -> false) in
    if violations + recoveries > 0 then
      Format.fprintf ppf "-- slo: violations %d; recoveries %d@." violations
        recoveries;
    (* Governance events likewise only appear when deadlines, budgets or
       breakers are configured; ungoverned replays stay byte-identical. *)
    let deadline_hits =
      count (function Deadline_exceeded _ -> true | _ -> false)
    in
    let budget_hits =
      count (function Budget_exhausted _ -> true | _ -> false)
    in
    let degradations =
      count (function Query_degraded _ -> true | _ -> false)
    in
    let breaker_moves =
      count (function Breaker_state_changed _ -> true | _ -> false)
    in
    let breaker_trips =
      count (function
        | Breaker_state_changed { to_state = "open"; _ } -> true
        | _ -> false)
    in
    if deadline_hits + budget_hits + degradations + breaker_moves > 0 then
      Format.fprintf ppf
        "-- governance: deadline hits %d; budget hits %d; degradations %d; \
         breaker transitions %d (trips %d)@."
        deadline_hits budget_hits degradations breaker_moves breaker_trips
