(** Variance-aware comparison of two {!Bjson} documents — the gating
    logic behind [tukwila bench-diff].

    Deterministic kinds gate as before ([time] within a relative
    tolerance, [count]/[bool] exactly), with the zero/NaN hazards
    closed: two values at or below 1 ns compare equal, relative error
    denominators are floored, and non-finite values are explicit
    breaches.

    Wall cells gate only as repetition trios
    ([<base>-wall-min]/[-median]/[-p95] present in both documents):
    median-vs-median, one-sided (only slowdowns breach), under an
    effective tolerance [max(wall_tol, 2 * max(spread_base,
    spread_new))] where a document's spread is [(p95 - min) /
    max(median, 5ms)].  Trios with both medians under the 5 ms noise
    floor, and lone wall cells, are informational. *)

type outcome = {
  o_bench : string;
  o_gated : int;  (** deterministic cells compared under a gate *)
  o_wall_gated : int;  (** wall medians gated variance-aware *)
  o_wall_info : int;  (** wall cells that stayed informational *)
  o_breaches : string list;  (** printable breach lines; empty = pass *)
  o_notes : string list;  (** non-gating observations *)
}

(** [diff ~baseline ~current ()] compares cell-by-cell.  [Error _] means
    the documents are not comparable — bench id mismatch, scale
    mismatch, or a cell {e shape} mismatch (any id missing from or extra
    to the baseline, reported as sorted lists) — distinct from a value
    breach: the CLI exits 2 on [Error] and 1 on breaches.  [time_tol]
    defaults to 0.10, [wall_tol] to 0.5. *)
val diff :
  ?time_tol:float ->
  ?wall_tol:float ->
  baseline:Bjson.doc ->
  current:Bjson.doc ->
  unit ->
  (outcome, string) result
