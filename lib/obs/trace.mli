(** Structured execution traces: every adaptive decision the engine makes
    — re-optimizer polls, plan switches, complementary-join routing flips,
    pre-aggregation window resizes, retries, failovers, checkpoints,
    page-outs and the stitch-up — as typed events stamped with the
    virtual clock.

    Emission is explicitly zero-cost when disabled: the engine guards
    every hook with {!enabled}, so against the {!null} sink neither the
    event payload nor its timestamp is ever constructed, and emitting
    never touches the clock — a traced run and an untraced run are
    virtual-time identical by construction.

    File sinks buffer in memory and are flushed by {!close} through
    {!Adp_storage.Snapshot.write_text} (atomic temp + rename), in one of
    two formats: JSONL (one event object per line, replayable with
    [tukwila explain]) or the Chrome [trace_event] JSON understood by
    Perfetto and about://tracing. *)

(** Did the re-optimizer keep the running plan or switch? *)
type decision = Keep | Switch

type event =
  | Phase_opened of { id : int; plan : string }
  | Phase_closed of { id : int; read : int; emitted : int }
      (** [read]/[emitted]: source tuples consumed / result tuples
          produced by the closing phase *)
  | Reopt_poll of {
      phase : int;
      est_cost : float;  (** cost-to-go of the running plan *)
      best_cost : float;  (** estimated cost of the re-optimized plan *)
      best_plan : string;
      switch_cost : float;  (** estimated stitch-up price of switching *)
      remaining_fraction : float;
      observed_sel : (string * float) list;
          (** the monitor's selectivity evidence, by signature *)
      decision : decision;
    }
  | Plan_switch of { from_plan : string; to_plan : string; reason : string }
  | Comp_join_route of { side : string; routed_to : string; routed : int }
      (** the router's target for side [side] ("L"/"R") changed to
          [routed_to] ("merge"/"hash"); [routed] tuples had been routed
          on that side before the flip *)
  | Agg_window_resize of {
      node : string;
      from_window : int;
      to_window : int;
      reduction : float;  (** observed window reduction factor *)
    }
  | Retry of {
      source : string;
      attempt : int;
      ok : bool;  (** did the reconnect succeed? *)
      next_attempt_s : float;
          (** virtual time of the next scheduled attempt (0 when none) *)
    }
  | Failover of { source : string; ok : bool }
      (** [ok]: a mirror took over; otherwise the source is lost *)
  | Checkpoint_written of { seq : int; path : string; bytes : int }
  | Checkpoint_resumed of { seq : int; path : string; phases : int }
      (** [phases]: phases restored from the checkpoint *)
  | Stitchup_begin of { phases : int; combos : int }
  | Stitchup_end of { output : int; reused : int; recomputed : int }
  | Page_out of { node : string }
  | Node_profile of {
      phase : string;
      node : string;
      depth : int;  (** pre-order depth in the phase's plan tree *)
      self_us : float;  (** virtual microseconds attributed to the node *)
      tuples_in : int;
      tuples_out : int;
      probes : int;
      builds : int;
      mem_hw : int;  (** high-water resident tuple count *)
    }
      (** End-of-run profiler summary, one per span (see
          {!Adp_obs.Profile}); emitted only when a run is both traced and
          profiled. *)
  | Calibration of {
      phase : string;
      point : string;  (** "poll" | "phase-close" | "stitch-up" *)
      node : string;
      est : float;  (** cardinality frozen when the phase opened *)
      actual : float;  (** refreshed estimate under observed stats *)
      q_error : float;
      blame : bool;  (** the worst-misestimated node of the run *)
    }
      (** End-of-run calibration summary: the latest est-vs-actual record
          per node (see {!Adp_obs.Calibrate}). *)
  | Worker_spawned of { worker : int }
      (** server: a pool worker came up (initial spawn or a replacement
          after a death) *)
  | Worker_died of {
      worker : int;
      query : string;
      last_heartbeat_s : float;  (** server virtual time of the last beat *)
    }
      (** server: the supervisor declared a worker dead after missed
          heartbeats; [query] is what it was running *)
  | Worker_reclaimed of {
      worker : int;
      query : string;
      attempt : int;  (** 1-based attempt number being abandoned *)
      resume_from : string;
          (** checkpoint dir the retry resumes from ("" when the worker
              died before writing any checkpoint: the retry restarts) *)
    }
  | Poll_interval_changed of { from_s : float; to_s : float; found : int }
      (** server: the adaptive dispatcher moved its poll interval;
          [found] is the ready-job count the triggering poll observed *)
  | Admission of {
      query : string;
      accepted : bool;
      queue_depth : int;  (** waiting jobs after the decision *)
      reason : string;  (** "" when accepted; why when shed *)
    }
  | Deadline_exceeded of {
      deadline_s : float;  (** the query's deadline, virtual seconds *)
      now_s : float;
      est_finish_s : float;
          (** [now + cost-to-go] when the poll concluded the deadline
              cannot be met (equals [now_s] when already past it) *)
    }
  | Budget_exhausted of {
      in_use : int;  (** resident tuples across builds + pre-agg windows *)
      ceiling : int;  (** the hard memory ceiling that was crossed *)
    }
  | Query_degraded of {
      reason : string;  (** "deadline" | "memory" *)
      phase : int;  (** phase in which degradation was decided *)
      coverage : float;  (** fraction of source input consumed so far *)
    }
      (** The governance layer decided to finish early: the current phase
          closes, stitch-up runs over what arrived, and the report carries
          [degraded_reason] instead of the run timing out with nothing. *)
  | Breaker_state_changed of {
      source : string;
      from_state : string;  (** "closed" | "open" | "half-open" *)
      to_state : string;
      failures : int;  (** failures in the sliding window at transition *)
    }
  | Query_attempt of {
      query : string;
      attempt : int;  (** 1-based attempt number *)
      worker : int;
      events : int;
          (** length of the contiguous re-stamped inner-event block that
              follows this marker in the server trace — what lets
              [tukwila explain] group a serve replay into per-query
              lanes *)
    }
  | Slo_violation of {
      slo : string;  (** objective name as declared ([--slo NAME=...]) *)
      metric : string;  (** series the objective watches *)
      agg : string;  (** "last" | "rate" | "min" | "median" | "p95" | "max" *)
      op : string;  (** "<" | "<=" | ">" | ">=" *)
      value : float;  (** the aggregate at the violating sample *)
      bound : float;
    }
  | Slo_recovered of {
      slo : string;
      metric : string;
      agg : string;
      op : string;
      value : float;
      bound : float;
    }
      (** SLO transitions from the telemetry monitor: emitted only at
          state changes (violated <-> healthy), not at every sample. *)

(** Events are stamped with the virtual clock (µs). *)
type stamped = float * event

type format = Jsonl | Chrome

type t

(** The disabled sink: {!enabled} is [false], {!emit} is a no-op. *)
val null : t

(** In-memory sink (tests, [explain] of a live run). *)
val memory : unit -> t

(** File sink; nothing is written until {!close}. *)
val file : format:format -> string -> t

val enabled : t -> bool

(** [emit t ~at ev] records [ev] at virtual time [at] (µs).  Call sites
    must guard with {!enabled} so payload construction is skipped against
    {!null}. *)
val emit : t -> at:float -> event -> unit

(** Events recorded so far, in emission order. *)
val events : t -> stamped list

(** Flush a file sink to disk (atomic temp + rename).  No-op for [null]
    and memory sinks.  Idempotent. *)
val close : t -> unit

(** {2 Serialization} *)

val event_name : event -> string
val to_json : stamped -> Json.t
val of_json : Json.t -> (stamped, string) result
val to_jsonl : stamped list -> string
val to_chrome : stamped list -> string

(** Parse a JSONL trace file.  [Error] carries the first offending line
    number and reason. *)
val read_jsonl : string -> (stamped list, string) result

(** {2 Replay} *)

val pp_event : Format.formatter -> event -> unit

(** Render a recorded trace as a human-readable timeline: one line per
    event at its virtual time, the re-optimizer's selectivity evidence
    under each poll, and a closing summary of decision counts. *)
val explain : Format.formatter -> stamped list -> unit
