(** Per-node span profiler over the virtual clock.

    A span is one plan node (or engine component) within one phase.  The
    engine attributes work to spans at the exact points where it charges
    the virtual clock — the amount added to a span is the same float that
    was charged — so attribution is exact and profiling never reads or
    perturbs the clock.  Alongside self time, spans accumulate tuples
    in/out, hash-table probes and builds, and a memory high-water mark.

    Spans are registered in pre-order within each phase (the engine walks
    the plan tree top-down), each carrying its depth; that is enough to
    render an indented EXPLAIN-ANALYZE-style tree where the cumulative
    time of a node is its own self time plus that of the contiguous
    deeper spans that follow it.

    The same registry lives across phase switches: [set_phase] names the
    current phase ("phase 0", "phase 1", "stitch-up", ...), and
    [totals] aggregates the same node across all phases — mirroring how
    the metrics registry keeps per-signature cells across re-planning. *)

type t
type span

(** Immutable view of a span's accumulated numbers. *)
type info = {
  phase : string;
  node : string;
  depth : int;
  order : int;  (** registration order within the whole profile *)
  self_us : float;  (** virtual microseconds attributed to this span *)
  tuples_in : int;
  tuples_out : int;
  probes : int;
  builds : int;
  mem_hw : int;  (** high-water resident tuple count *)
}

val create : unit -> t

(** Name the phase under which subsequent [span] calls register.
    Defaults to ["phase 0"]. *)
val set_phase : t -> string -> unit

val phase : t -> string

(** [span t ~depth node] returns the span for [node] in the current
    phase, registering it (at the current phase's next pre-order slot)
    on first use.  Idempotent per (phase, node). *)
val span : t -> ?depth:int -> string -> span

(** {2 Identity} — cheap field reads used by the wall-clock shadow to
    mirror a span without touching the registry. *)

val span_phase : span -> string
val span_node : span -> string
val span_depth : span -> int

(** {2 Accumulation} — all O(1), no clock access. *)

val add_time : span -> float -> unit
(** [add_time sp us] adds virtual microseconds; call with the same value
    passed to [Ctx.charge]. *)

val add_in : span -> int -> unit
val add_out : span -> int -> unit
val add_probes : span -> int -> unit
val add_builds : span -> int -> unit

val note_mem : span -> int -> unit
(** Raise the high-water mark to [n] if larger. *)

(** {2 Reads} *)

val info : span -> info

(** All spans in registration order (pre-order within each phase). *)
val spans : t -> info list

(** Aggregate across phases, keyed by node, ordered by first
    registration.  The [phase] field of each entry is ["*"]. *)
val totals : t -> info list

(** Self time plus the contiguous run of deeper spans that follows [i]
    in [l] — the cumulative virtual microseconds of the subtree rooted
    at the [i]th span of a pre-order phase listing [l]. *)
val cumulative_us : info list -> int -> float

(** {2 Rendering} *)

val render :
  ?annot:(node:string -> string option) -> Format.formatter -> t -> unit
(** Indented per-phase tree: self and cumulative virtual seconds, tuple
    and hash counts, memory high-water.  [annot] may append extra text
    (est-vs-actual, blame marker) after a node's line. *)

val to_json : t -> Json.t
