(** The [BENCH_<id>.json] schema (version 1) shared by the benchmark
    harness, [tukwila bench-diff] and the tests.

    A document is a bench id, the TPC scale factor it ran at, and a list
    of cells.  Cell kinds carry their diff semantics (see {!Benchdiff}):
    [Time] gates with a relative tolerance, [Count] and [Bool] must
    match exactly, [Wall] gates variance-aware when emitted as a
    repetition trio ([<base>-wall-min] / [-median] / [-p95]) and is
    informational otherwise. *)

type kind = Time | Count | Bool | Wall

type cell = { id : string; kind : kind; value : float }

type doc = { bench : string; scale : float; cells : cell list }

(** {2 Cell constructors} *)

val time : string -> float -> cell
val count : string -> int -> cell

(** A [Count]-kind cell holding a non-integer exact value. *)
val num : string -> float -> cell

val flag : string -> bool -> cell
val wall : string -> float -> cell

val kind_name : kind -> string
val kind_of_name : string -> kind option

(** Path-like slug for cell ids: lowercase, [[a-z0-9./%+-]] kept,
    everything else collapsed to ['-']. *)
val slug : string -> string

(** {2 Serialization} *)

val to_string : doc -> string
val of_json : Json.t -> (doc, string) result
val of_string : string -> (doc, string) result
val load : string -> (doc, string) result
val write : string -> doc -> unit
