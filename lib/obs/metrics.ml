type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  h_le : float array;  (* ascending upper bounds, +Inf excluded *)
  h_counts : int array;  (* one slot per bound, non-cumulative *)
  mutable h_inf : int;  (* observations above the last bound *)
  mutable h_sum : float;
  mutable h_n : int;
  mutable h_max : float;  (* exact largest observation *)
}

type cell =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type entry = {
  name : string;
  labels : (string * string) list;
  help : string;
  cell : cell;
}

(* The shared store behind every view of a registry.  [entries] keeps
   reversed registration order for the dumps; [index] makes registration
   O(1) — before it, every [Plan.build] of a multi-query server rescanned
   a list that grows with (queries × nodes). *)
type store = {
  mutable entries : entry list;  (* reversed registration order *)
  index : (string * (string * string) list, entry) Hashtbl.t;
}

(* A registry handle is a view: the shared store plus a label scope that
   is prepended to every registration.  Two concurrent queries asking for
   the same per-node counter through differently-scoped views get two
   distinct cells instead of silently sharing (and clobbering) one. *)
type t = { store : store; scope : (string * string) list }

let create () =
  { store = { entries = []; index = Hashtbl.create 64 }; scope = [] }

let with_labels t extra = { t with scope = t.scope @ extra }
let scope t = t.scope

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find t name labels = Hashtbl.find_opt t.store.index (name, labels)

let register t ~labels ~help name make same =
  let labels = t.scope @ labels in
  match find t name labels with
  | Some e -> (
    match same e.cell with
    | Some h -> h
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %s re-registered as a different kind (%s)"
           name (kind_name e.cell)))
  | None ->
    let h, cell = make () in
    let e = { name; labels; help; cell } in
    t.store.entries <- e :: t.store.entries;
    Hashtbl.replace t.store.index (name, labels) e;
    h

(* Retire every cell whose labels carry all of the view's scope pairs —
   how a server drops a finished (or re-run) query's cells so the store
   stays bounded however many queries pass through.  On an unscoped view
   this clears the whole registry. *)
let prune t =
  let carries e =
    List.for_all (fun kv -> List.mem kv e.labels) t.scope
  in
  let keep, drop = List.partition (fun e -> not (carries e)) t.store.entries in
  List.iter (fun e -> Hashtbl.remove t.store.index (e.name, e.labels)) drop;
  t.store.entries <- keep

let cells t = List.length t.store.entries

let counter t ?(labels = []) ?(help = "") name =
  register t ~labels ~help name
    (fun () ->
      let c = { c = 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge t ?(labels = []) ?(help = "") name =
  register t ~labels ~help name
    (fun () ->
      let g = { g = 0.0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let default_buckets =
  [ 1.0; 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0 ]

let histogram t ?(labels = []) ?(help = "") ?(buckets = default_buckets) name
    =
  register t ~labels ~help name
    (fun () ->
      let le = Array.of_list (List.sort_uniq compare buckets) in
      let h =
        { h_le = le; h_counts = Array.make (Array.length le) 0; h_inf = 0;
          h_sum = 0.0; h_n = 0; h_max = 0.0 }
      in
      (h, Histogram h))
    (function Histogram h -> Some h | _ -> None)

let incr ?(by = 1) c = c.c <- c.c + by
let count c = c.c
let set_count c n = c.c <- n
let set g v = g.g <- v
let value g = g.g

let observe h v =
  h.h_sum <- h.h_sum +. v;
  h.h_n <- h.h_n + 1;
  if h.h_n = 1 || v > h.h_max then h.h_max <- v;
  let rec slot i =
    if i >= Array.length h.h_le then h.h_inf <- h.h_inf + 1
    else if v <= h.h_le.(i) then h.h_counts.(i) <- h.h_counts.(i) + 1
    else slot (i + 1)
  in
  slot 0

let histogram_count h = h.h_n
let histogram_sum h = h.h_sum
let histogram_max h = if h.h_n = 0 then 0.0 else h.h_max

(* Prometheus-style bucket interpolation: find the bucket holding the
   q-rank, interpolate linearly inside it.  The +Inf bucket has no upper
   bound, so the exact tracked maximum stands in for it (which also caps
   the estimate at something actually observed). *)
let histogram_quantile h q =
  if h.h_n = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.h_n in
    let rec go i cum lower =
      if i >= Array.length h.h_le then h.h_max
      else begin
        let cum' = cum + h.h_counts.(i) in
        if float_of_int cum' >= rank then begin
          let upper = Float.min h.h_le.(i) h.h_max in
          if h.h_counts.(i) = 0 then upper
          else
            lower
            +. (upper -. lower)
               *. ((rank -. float_of_int cum) /. float_of_int h.h_counts.(i))
        end
        else go (i + 1) cum' h.h_le.(i)
      end
    in
    go 0 0 0.0
  end

(* Point-in-time snapshot of a cell, the read side the telemetry
   sampler consumes: histograms are collapsed to the count/sum plus the
   p50/p95/max the dashboards plot, so one reading is a handful of
   floats however many buckets back it. *)
type reading =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      hr_n : int;
      hr_sum : float;
      hr_p50 : float;
      hr_p95 : float;
      hr_max : float;
    }

let counter_total t name =
  List.fold_left
    (fun acc e ->
      match e.cell with
      | Counter c when e.name = name -> acc + c.c
      | _ -> acc)
    0 t.store.entries

(* Deterministic dump order: by name, then by labels. *)
let sorted t =
  List.sort
    (fun a b ->
      match String.compare a.name b.name with
      | 0 -> compare a.labels b.labels
      | c -> c)
    t.store.entries

let read_cell = function
  | Counter c -> Counter_v c.c
  | Gauge g -> Gauge_v g.g
  | Histogram h ->
    Histogram_v
      { hr_n = h.h_n; hr_sum = h.h_sum;
        hr_p50 = histogram_quantile h 0.5;
        hr_p95 = histogram_quantile h 0.95; hr_max = histogram_max h }

let readings t =
  List.map (fun e -> (e.name, e.labels, read_cell e.cell)) (sorted t)

let to_json t =
  let labels_json labels =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)
  in
  let entry e =
    let base =
      [ ("name", Json.Str e.name); ("labels", labels_json e.labels);
        ("type", Json.Str (kind_name e.cell)) ]
    in
    let body =
      match e.cell with
      | Counter c -> [ ("value", Json.Num (float_of_int c.c)) ]
      | Gauge g -> [ ("value", Json.Num g.g) ]
      | Histogram h ->
        let cum = ref 0 in
        let buckets =
          Array.to_list
            (Array.mapi
               (fun i le ->
                 cum := !cum + h.h_counts.(i);
                 Json.Obj
                   [ ("le", Json.Num le);
                     ("count", Json.Num (float_of_int !cum)) ])
               h.h_le)
        in
        [ ("buckets", Json.List buckets);
          ("count", Json.Num (float_of_int h.h_n));
          ("sum", Json.Num h.h_sum) ]
    in
    Json.Obj (base @ body)
  in
  Json.Obj [ ("metrics", Json.List (List.map entry (sorted t))) ]

(* Prometheus text exposition format. *)

let prom_escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape_label v))
           labels)
    ^ "}"

let prom_num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(* Scrape-format discipline: every family gets exactly one HELP and one
   TYPE line (a synthesized HELP when none was registered), and all of a
   family's samples stay contiguous — which is why the p50/p95/max
   quantile estimates of a histogram cannot ride inline next to its
   buckets.  A {quantile=...} label would clash with the histogram TYPE
   declaration, so they are exported as sibling gauge families
   (name_p50, ...) appended after every primary family. *)
let to_prometheus t =
  let b = Buffer.create 4096 in
  let siblings = Buffer.create 512 in
  let header buf name kind help =
    let help = if help = "" then name else help in
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  let rec families = function
    | [] -> []
    | e :: rest ->
      let same, rest = List.partition (fun e' -> e'.name = e.name) rest in
      (e :: same) :: families rest
  in
  List.iter
    (fun family ->
      let first = List.hd family in
      let help =
        match List.find_opt (fun e -> e.help <> "") family with
        | Some e -> e.help
        | None -> ""
      in
      header b first.name (kind_name first.cell) help;
      List.iter
        (fun e ->
          match e.cell with
          | Counter c ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %d\n" e.name (prom_labels e.labels) c.c)
          | Gauge g ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" e.name (prom_labels e.labels)
                 (prom_num g.g))
          | Histogram h ->
            let cum = ref 0 in
            Array.iteri
              (fun i le ->
                cum := !cum + h.h_counts.(i);
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" e.name
                     (prom_labels (e.labels @ [ ("le", prom_num le) ]))
                     !cum))
              h.h_le;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" e.name
                 (prom_labels (e.labels @ [ ("le", "+Inf") ]))
                 h.h_n);
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %s\n" e.name (prom_labels e.labels)
                 (prom_num h.h_sum));
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" e.name (prom_labels e.labels)
                 h.h_n))
        family;
      (match first.cell with
       | Histogram _ ->
         List.iter
           (fun (suffix, what, read) ->
             header siblings (first.name ^ "_" ^ suffix) "gauge"
               (Printf.sprintf "%s of %s." what first.name);
             List.iter
               (fun e ->
                 match e.cell with
                 | Histogram h ->
                   Buffer.add_string siblings
                     (Printf.sprintf "%s_%s%s %s\n" e.name suffix
                        (prom_labels e.labels) (prom_num (read h)))
                 | _ -> ())
               family)
           [ ("p50", "Estimated 0.5 quantile",
              fun h -> histogram_quantile h 0.5);
             ("p95", "Estimated 0.95 quantile",
              fun h -> histogram_quantile h 0.95);
             ("max", "Largest observation", histogram_max) ]
       | _ -> ()))
    (families (sorted t));
  Buffer.add_buffer b siblings;
  Buffer.contents b
