(** Longitudinal benchmark trajectories — the library behind
    [tukwila bench-history].

    Each run of a benchmark appends its [BENCH_<id>.json] document as
    one line of [<dir>/<id>.jsonl] (seq-numbered, atomic rewrite);
    {!render} draws the per-cell trend and {!gate} checks the newest run
    against its history: [time] cells within a relative tolerance of the
    {e median of the prior runs}, [count]/[bool] cells exactly against
    the most recent prior run, [wall] cells never (histories may span
    machines). *)

type entry = { e_seq : int; e_doc : Bjson.doc }

(** [<dir>/<bench>.jsonl]. *)
val path : dir:string -> bench:string -> string

(** Entries oldest-first; [Ok []] when the file does not exist yet.
    [Error] carries the first offending line. *)
val load : string -> (entry list, string) result

(** Append [doc] to its history under [dir] (created if missing) and
    return the new entry's seq (1-based, monotonic). *)
val append : dir:string -> Bjson.doc -> (int, string) result

(** Trend table of the newest entry's cells: one sparkline per cell
    across the history, first/last/median values. *)
val render : Format.formatter -> entry list -> unit

(** Breach lines gating the newest entry against its predecessors
    (empty = pass; fewer than two entries trivially passes).
    [time_tol] defaults to 0.10. *)
val gate : ?time_tol:float -> entry list -> string list
