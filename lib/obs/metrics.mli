(** Metrics registry: named counters, gauges and histograms with
    Prometheus-style labels.

    The engine registers its global tuple/fault counters here (via
    [Ctx]), and [Plan.build] registers per-node counters (tuples in/out,
    hash-table probes and builds) labelled with the node's signature, so
    the same logical operator accumulates across phases.  Registration is
    idempotent: asking for an existing (name, labels) cell returns the
    same cell, which is exactly what lets a re-built plan keep counting
    into the counters of its predecessor phases.

    Handles are plain mutable records — an increment is one load, one
    add, one store — so the hot path pays nothing measurable.  Dumps are
    deterministic (sorted by name, then labels) in two formats: a JSON
    object tree, and the Prometheus text exposition format. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Label scopes}

    A registry handle is a {e view} onto a shared store: {!with_labels}
    derives a view whose label pairs are prepended to every registration
    made through it.  This is what keeps a multi-query server sound: two
    concurrent queries registering the same per-node counter (same node
    signature) through views scoped [("query", qid)] get two distinct
    cells, where a shared unscoped registry would silently hand both the
    same cell — and a checkpoint restore in one query would clobber the
    other's counts.  Dumps and {!counter_total} always cover the whole
    store, whichever view they are called on. *)

val with_labels : t -> (string * string) list -> t

(** The view's label scope ([[]] for {!create}'s root view). *)
val scope : t -> (string * string) list

(** Retire every cell whose labels carry all of this view's scope pairs,
    so retiring a query bounds the store however many queries pass
    through one server registry.  On the root view this clears the whole
    registry.  Handles to pruned cells stay usable but orphaned: they no
    longer appear in dumps, and a re-registration makes a fresh cell. *)
val prune : t -> unit

(** Number of live cells in the whole store (boundedness tests). *)
val cells : t -> int

(** {2 Registration} — idempotent per (name, scope @ labels).  Asking for
    an existing name with a different metric kind raises
    [Invalid_argument]. *)

val counter :
  t -> ?labels:(string * string) list -> ?help:string -> string -> counter

val gauge :
  t -> ?labels:(string * string) list -> ?help:string -> string -> gauge

(** [buckets] are upper bounds (le); a [+Inf] bucket is implicit. *)
val histogram :
  t ->
  ?labels:(string * string) list ->
  ?help:string ->
  ?buckets:float list ->
  string ->
  histogram

(** {2 Updates and reads} *)

val incr : ?by:int -> counter -> unit
val count : counter -> int

(** Overwrite a counter (checkpoint restore only). *)
val set_count : counter -> int -> unit

val set : gauge -> float -> unit
val value : gauge -> float
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** Exact largest observation (0 when empty). *)
val histogram_max : histogram -> float

(** Prometheus-style linear interpolation inside the bucket holding the
    rank; the +Inf bucket is capped by {!histogram_max}. *)
val histogram_quantile : histogram -> float -> float

(** Sum of all counter cells with this name (any labels); 0 when none. *)
val counter_total : t -> string -> int

(** {2 Snapshots}

    A point-in-time read of one cell: histograms collapse to count/sum
    plus the p50/p95/max estimates the telemetry layer plots, so a
    reading is a handful of floats however many buckets back it. *)

type reading =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      hr_n : int;
      hr_sum : float;
      hr_p50 : float;
      hr_p95 : float;
      hr_max : float;
    }

(** Every live cell of the whole store in dump order (sorted by name,
    then labels) — the deterministic iteration the time-series sampler
    is built on. *)
val readings : t -> (string * (string * string) list * reading) list

(** {2 Dumps} *)

val to_json : t -> Json.t

(** Prometheus text exposition format, scrape-validator clean: every
    family (including the [_p50]/[_p95]/[_max] gauge siblings derived
    from each histogram) carries exactly one [# HELP] and one [# TYPE]
    line, and a family's samples are contiguous. *)
val to_prometheus : t -> string
