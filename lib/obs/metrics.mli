(** Metrics registry: named counters, gauges and histograms with
    Prometheus-style labels.

    The engine registers its global tuple/fault counters here (via
    [Ctx]), and [Plan.build] registers per-node counters (tuples in/out,
    hash-table probes and builds) labelled with the node's signature, so
    the same logical operator accumulates across phases.  Registration is
    idempotent: asking for an existing (name, labels) cell returns the
    same cell, which is exactly what lets a re-built plan keep counting
    into the counters of its predecessor phases.

    Handles are plain mutable records — an increment is one load, one
    add, one store — so the hot path pays nothing measurable.  Dumps are
    deterministic (sorted by name, then labels) in two formats: a JSON
    object tree, and the Prometheus text exposition format. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Registration} — idempotent per (name, labels).  Asking for an
    existing name with a different metric kind raises [Invalid_argument]. *)

val counter :
  t -> ?labels:(string * string) list -> ?help:string -> string -> counter

val gauge :
  t -> ?labels:(string * string) list -> ?help:string -> string -> gauge

(** [buckets] are upper bounds (le); a [+Inf] bucket is implicit. *)
val histogram :
  t ->
  ?labels:(string * string) list ->
  ?help:string ->
  ?buckets:float list ->
  string ->
  histogram

(** {2 Updates and reads} *)

val incr : ?by:int -> counter -> unit
val count : counter -> int

(** Overwrite a counter (checkpoint restore only). *)
val set_count : counter -> int -> unit

val set : gauge -> float -> unit
val value : gauge -> float
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** Exact largest observation (0 when empty). *)
val histogram_max : histogram -> float

(** Prometheus-style linear interpolation inside the bucket holding the
    rank; the +Inf bucket is capped by {!histogram_max}. *)
val histogram_quantile : histogram -> float -> float

(** Sum of all counter cells with this name (any labels); 0 when none. *)
val counter_total : t -> string -> int

(** {2 Dumps} *)

val to_json : t -> Json.t
val to_prometheus : t -> string
