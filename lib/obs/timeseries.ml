(* Telemetry over time: fixed-capacity ring-buffer series recording
   every registered metric cell, sampled at server dispatcher polls with
   the server's virtual clock as the time axis (an optional wall shadow
   rides along when the caller supplies one via the sanctioned
   [Wallclock] readings).  The sampler only *reads* the registry — it
   never touches the clock or the event heap — so a telemetered serve is
   bit-identical to a bare one by construction.

   Alongside the metric history the recorder keeps the server-side
   journal the [tukwila top] dashboard renders: per-query span
   transitions (submitted/started/.../done), warm-start provenance edges
   (which inherited signatures fed a query), and the SLO monitor's
   violation/recovery ledger. *)

type point = { p_t : float; p_v : float }

type series = {
  sr_name : string;
  sr_labels : (string * string) list;
  sr_kind : string;  (* "counter" | "gauge" *)
  sr_ring : point array;
  mutable sr_len : int;
  mutable sr_next : int;  (* next write slot *)
  mutable sr_total : int;  (* points ever recorded *)
}

type span = {
  sp_t : float;
  sp_query : string;
  sp_state : string;
  sp_worker : int;  (* -1 when not applicable *)
  sp_attempt : int;  (* 0 when not applicable *)
}

type prov = { pv_t : float; pv_query : string; pv_signatures : string list }

type slo_rec = {
  sl_t : float;
  sl_slo : string;
  sl_metric : string;
  sl_agg : string;
  sl_op : string;
  sl_value : float;
  sl_bound : float;
  sl_violated : bool;
}

type t = {
  capacity : int;
  window : int;
  monitor : Slo.monitor;
  index : (string * (string * string) list, series) Hashtbl.t;
  mutable series : series list;  (* reversed insertion order *)
  mutable samples : int;
  mutable sample_log : (float * float option) list;  (* reversed *)
  mutable spans : span list;  (* reversed *)
  mutable provs : prov list;  (* reversed *)
  mutable slo_log : slo_rec list;  (* reversed *)
}

let create ?(capacity = 512) ?(window = 32) ?(slos = []) () =
  if capacity < 1 then invalid_arg "Timeseries.create: capacity < 1";
  if window < 1 then invalid_arg "Timeseries.create: window < 1";
  { capacity; window; monitor = Slo.monitor slos;
    index = Hashtbl.create 64; series = []; samples = 0; sample_log = [];
    spans = []; provs = []; slo_log = [] }

let samples t = t.samples
let series_count t = List.length t.series
let objectives t = Slo.objectives t.monitor
let active_violations t = Slo.active_violations t.monitor

(* ------------------------------------------------------------------ *)
(* Rings                                                              *)
(* ------------------------------------------------------------------ *)

let push t name labels kind p =
  let sr =
    match Hashtbl.find_opt t.index (name, labels) with
    | Some sr -> sr
    | None ->
      let sr =
        { sr_name = name; sr_labels = labels; sr_kind = kind;
          sr_ring = Array.make t.capacity { p_t = 0.0; p_v = 0.0 };
          sr_len = 0; sr_next = 0; sr_total = 0 }
      in
      Hashtbl.replace t.index (name, labels) sr;
      t.series <- sr :: t.series;
      sr
  in
  sr.sr_ring.(sr.sr_next) <- p;
  sr.sr_next <- (sr.sr_next + 1) mod t.capacity;
  sr.sr_len <- min t.capacity (sr.sr_len + 1);
  sr.sr_total <- sr.sr_total + 1

(* Retained points in time order. *)
let points cap sr =
  let start =
    if sr.sr_len < cap then 0 else sr.sr_next
  in
  List.init sr.sr_len (fun i -> sr.sr_ring.((start + i) mod cap))

(* ------------------------------------------------------------------ *)
(* Windowed aggregates                                                *)
(* ------------------------------------------------------------------ *)

let quantile sorted q =
  let n = Array.length sorted in
  let r = int_of_float (Float.round (q *. float_of_int (n - 1))) in
  sorted.(max 0 (min (n - 1) r))

let aggregate_points ~window pts (agg : Slo.agg) =
  let pts =
    let n = List.length pts in
    if n <= window then pts
    else List.filteri (fun i _ -> i >= n - window) pts
  in
  match pts with
  | [] -> None
  | pts -> (
    match agg with
    | Slo.Last ->
      Some (List.fold_left (fun _ p -> p.p_v) 0.0 pts)
    | Slo.Rate -> (
      match pts with
      | [] | [ _ ] -> Some 0.0
      | first :: _ ->
        let last = List.fold_left (fun _ p -> p) first pts in
        let dt = last.p_t -. first.p_t in
        if dt <= 0.0 then Some 0.0
        else Some ((last.p_v -. first.p_v) /. dt))
    | Slo.Min | Slo.Median | Slo.P95 | Slo.Max ->
      let sorted =
        Array.of_list (List.sort compare (List.map (fun p -> p.p_v) pts))
      in
      Some
        (match agg with
         | Slo.Min -> sorted.(0)
         | Slo.Median -> quantile sorted 0.5
         | Slo.P95 -> quantile sorted 0.95
         | Slo.Max -> sorted.(Array.length sorted - 1)
         | _ -> assert false))

(* Current aggregate for every series carrying [metric] (one entry per
   label-set), in insertion order — the value provider the SLO monitor
   evaluates against. *)
let values t ~metric agg =
  List.rev t.series
  |> List.filter_map (fun sr ->
         if sr.sr_name = metric then
           aggregate_points ~window:t.window (points t.capacity sr) agg
         else None)

let aggregate t ?(labels = []) ~metric agg =
  match Hashtbl.find_opt t.index (metric, labels) with
  | None -> None
  | Some sr -> aggregate_points ~window:t.window (points t.capacity sr) agg

(* ------------------------------------------------------------------ *)
(* Recording                                                          *)
(* ------------------------------------------------------------------ *)

let sample t ~now_s ?wall_s metrics =
  t.samples <- t.samples + 1;
  t.sample_log <- (now_s, wall_s) :: t.sample_log;
  List.iter
    (fun (name, labels, reading) ->
      let pt v = { p_t = now_s; p_v = v } in
      match (reading : Metrics.reading) with
      | Metrics.Counter_v n ->
        push t name labels "counter" (pt (float_of_int n))
      | Metrics.Gauge_v g -> push t name labels "gauge" (pt g)
      | Metrics.Histogram_v { hr_n; hr_p50; hr_p95; hr_max; _ } ->
        push t (name ^ "_count") labels "counter" (pt (float_of_int hr_n));
        push t (name ^ "_p50") labels "gauge" (pt hr_p50);
        push t (name ^ "_p95") labels "gauge" (pt hr_p95);
        push t (name ^ "_max") labels "gauge" (pt hr_max))
    (Metrics.readings metrics);
  let transitions = Slo.evaluate t.monitor ~values:(values t) in
  List.iter
    (fun (tr : Slo.transition) ->
      let o = tr.Slo.t_objective in
      t.slo_log <-
        { sl_t = now_s; sl_slo = o.Slo.o_name; sl_metric = o.Slo.o_metric;
          sl_agg = Slo.agg_name o.Slo.o_agg; sl_op = Slo.op_name o.Slo.o_op;
          sl_value = tr.Slo.t_value; sl_bound = o.Slo.o_bound;
          sl_violated = tr.Slo.t_violated }
        :: t.slo_log)
    transitions;
  transitions

let span t ~at_s ~query ~state ?(worker = -1) ?(attempt = 0) () =
  t.spans <-
    { sp_t = at_s; sp_query = query; sp_state = state; sp_worker = worker;
      sp_attempt = attempt }
    :: t.spans

let provenance t ~at_s ~query ~signatures =
  t.provs <-
    { pv_t = at_s; pv_query = query; pv_signatures = signatures } :: t.provs

(* ------------------------------------------------------------------ *)
(* JSONL export                                                       *)
(* ------------------------------------------------------------------ *)

let sorted_series t =
  List.sort
    (fun a b ->
      match String.compare a.sr_name b.sr_name with
      | 0 -> compare a.sr_labels b.sr_labels
      | c -> c)
    t.series

let spans_list t = List.rev t.spans
let provs_list t = List.rev t.provs
let slo_list t = List.rev t.slo_log

let to_jsonl t =
  let b = Buffer.create 4096 in
  let line j =
    Json.to_buffer b j;
    Buffer.add_char b '\n'
  in
  let num f = Json.Num f in
  let int i = Json.Num (float_of_int i) in
  let str s = Json.Str s in
  let wall = List.exists (fun (_, w) -> w <> None) t.sample_log in
  line
    (Json.Obj
       [ ("k", str "meta"); ("v", int 1); ("capacity", int t.capacity);
         ("window", int t.window);
         ( "slos",
           Json.List
             (List.map
                (fun o -> str (Slo.to_string o))
                (Slo.objectives t.monitor)) );
         ("samples", int t.samples); ("wall", Json.Bool wall) ]);
  List.iteri
    (fun i (ts, w) ->
      let base = [ ("k", str "sample"); ("i", int (i + 1)); ("t", num ts) ] in
      let shadow = match w with None -> [] | Some w -> [ ("wall", num w) ] in
      line (Json.Obj (base @ shadow)))
    (List.rev t.sample_log);
  List.iter
    (fun sp ->
      line
        (Json.Obj
           [ ("k", str "span"); ("t", num sp.sp_t);
             ("query", str sp.sp_query); ("state", str sp.sp_state);
             ("worker", int sp.sp_worker); ("attempt", int sp.sp_attempt) ]))
    (spans_list t);
  List.iter
    (fun pv ->
      line
        (Json.Obj
           [ ("k", str "prov"); ("t", num pv.pv_t);
             ("query", str pv.pv_query);
             ("signatures", Json.List (List.map str pv.pv_signatures)) ]))
    (provs_list t);
  List.iter
    (fun sl ->
      line
        (Json.Obj
           [ ("k", str "slo"); ("t", num sl.sl_t); ("slo", str sl.sl_slo);
             ("metric", str sl.sl_metric); ("agg", str sl.sl_agg);
             ("op", str sl.sl_op); ("value", num sl.sl_value);
             ("bound", num sl.sl_bound);
             ("violated", Json.Bool sl.sl_violated) ]))
    (slo_list t);
  List.iter
    (fun sr ->
      line
        (Json.Obj
           [ ("k", str "series"); ("name", str sr.sr_name);
             ( "labels",
               Json.Obj (List.map (fun (k, v) -> (k, str v)) sr.sr_labels) );
             ("kind", str sr.sr_kind); ("total", int sr.sr_total);
             ( "points",
               Json.List
                 (List.map
                    (fun p -> Json.List [ num p.p_t; num p.p_v ])
                    (points t.capacity sr)) ) ]))
    (sorted_series t);
  Buffer.contents b

let write t ~path = Adp_storage.Snapshot.write_text ~path (to_jsonl t)

(* ------------------------------------------------------------------ *)
(* Loading                                                            *)
(* ------------------------------------------------------------------ *)

type dseries = {
  ds_name : string;
  ds_labels : (string * string) list;
  ds_kind : string;
  ds_total : int;
  ds_points : (float * float) list;
}

type doc = {
  d_capacity : int;
  d_window : int;
  d_slos : string list;
  d_samples : (float * float option) list;
  d_spans : span list;
  d_provs : prov list;
  d_slo_log : slo_rec list;
  d_series : dseries list;
}

exception Bad of string

let req j k f =
  match Json.member k j with
  | None -> raise (Bad (Printf.sprintf "missing field %S" k))
  | Some v -> (
    match f v with
    | Some x -> x
    | None -> raise (Bad (Printf.sprintf "bad field %S" k)))

let doc_of_lines lines =
  let empty =
    { d_capacity = 0; d_window = 0; d_slos = []; d_samples = [];
      d_spans = []; d_provs = []; d_slo_log = []; d_series = [] }
  in
  let parse_line doc j =
    let int k = req j k Json.get_int in
    let num k = req j k Json.get_num in
    let str k = req j k Json.get_str in
    match req j "k" Json.get_str with
    | "meta" ->
      let slos =
        match Json.member "slos" j with
        | Some (Json.List l) ->
          List.map
            (fun s ->
              match Json.get_str s with
              | Some s -> s
              | None -> raise (Bad "bad slo entry"))
            l
        | _ -> raise (Bad "missing field \"slos\"")
      in
      { doc with d_capacity = int "capacity"; d_window = int "window";
        d_slos = slos }
    | "sample" ->
      let wall = Option.bind (Json.member "wall" j) Json.get_num in
      { doc with d_samples = (num "t", wall) :: doc.d_samples }
    | "span" ->
      { doc with
        d_spans =
          { sp_t = num "t"; sp_query = str "query"; sp_state = str "state";
            sp_worker = int "worker"; sp_attempt = int "attempt" }
          :: doc.d_spans }
    | "prov" ->
      let signatures =
        match Json.member "signatures" j with
        | Some (Json.List l) ->
          List.map
            (fun s ->
              match Json.get_str s with
              | Some s -> s
              | None -> raise (Bad "bad signature entry"))
            l
        | _ -> raise (Bad "missing field \"signatures\"")
      in
      { doc with
        d_provs =
          { pv_t = num "t"; pv_query = str "query";
            pv_signatures = signatures }
          :: doc.d_provs }
    | "slo" ->
      let violated = req j "violated" Json.get_bool in
      { doc with
        d_slo_log =
          { sl_t = num "t"; sl_slo = str "slo"; sl_metric = str "metric";
            sl_agg = str "agg"; sl_op = str "op"; sl_value = num "value";
            sl_bound = num "bound"; sl_violated = violated }
          :: doc.d_slo_log }
    | "series" ->
      let labels =
        match Json.member "labels" j with
        | Some (Json.Obj kvs) ->
          List.map
            (fun (k, v) ->
              match Json.get_str v with
              | Some v -> (k, v)
              | None -> raise (Bad "bad label entry"))
            kvs
        | _ -> raise (Bad "missing field \"labels\"")
      in
      let pts =
        match Json.member "points" j with
        | Some (Json.List l) ->
          List.map
            (fun p ->
              match p with
              | Json.List [ a; b ] -> (
                match (Json.get_num a, Json.get_num b) with
                | Some a, Some b -> (a, b)
                | _ -> raise (Bad "bad point entry"))
              | _ -> raise (Bad "bad point entry"))
            l
        | _ -> raise (Bad "missing field \"points\"")
      in
      { doc with
        d_series =
          { ds_name = str "name"; ds_labels = labels; ds_kind = str "kind";
            ds_total = int "total"; ds_points = pts }
          :: doc.d_series }
    | other -> raise (Bad (Printf.sprintf "unknown line kind %S" other))
  in
  let rec go lineno doc = function
    | [] ->
      Ok
        { doc with d_samples = List.rev doc.d_samples;
          d_spans = List.rev doc.d_spans; d_provs = List.rev doc.d_provs;
          d_slo_log = List.rev doc.d_slo_log;
          d_series = List.rev doc.d_series }
    | line :: rest ->
      if String.trim line = "" then go (lineno + 1) doc rest
      else begin
        match Json.parse line with
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
        | Ok j -> (
          match parse_line doc j with
          | doc -> go (lineno + 1) doc rest
          | exception Bad msg ->
            Error (Printf.sprintf "line %d: %s" lineno msg))
      end
  in
  go 1 empty lines

let read path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else begin
    let ic = open_in_bin path in
    let lines = ref [] in
    (try
       while true do
         lines := input_line ic :: !lines
       done
     with End_of_file -> close_in ic);
    match doc_of_lines (List.rev !lines) with
    | Ok doc -> Ok doc
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  end

(* ------------------------------------------------------------------ *)
(* The [tukwila top] dashboard                                        *)
(* ------------------------------------------------------------------ *)

let fnum = Json.float_str

(* ASCII intensity ramp for sparklines (low -> high). *)
let ramp = " .:-=+*#%@"

let sparkline width pts =
  let vals = List.map snd pts in
  let n = List.length vals in
  let vals =
    if n <= width then vals
    else List.filteri (fun i _ -> i >= n - width) vals
  in
  match vals with
  | [] -> ""
  | v :: tl ->
    let lo = List.fold_left Float.min v tl in
    let hi = List.fold_left Float.max v tl in
    let levels = String.length ramp - 1 in
    String.concat ""
      (List.map
         (fun v ->
           let i =
             if hi -. lo <= 0.0 then 0
             else
               int_of_float
                 (Float.round ((v -. lo) /. (hi -. lo) *. float_of_int levels))
           in
           String.make 1 ramp.[max 0 (min levels i)])
         vals)

let terminal_char = function
  | "done" -> Some 'D'
  | "failed" -> Some 'X'
  | "cancelled" -> Some 'C'
  | "rejected" -> Some 'R'
  | _ -> None

(* Per-query lanes on the server clock: '.' while queued, '=' while
   running, '!' at a reclaim, a terminal letter at the end state. *)
let render_lanes ppf ~t0 ~t1 spans =
  let width = 44 in
  let col ts =
    if t1 <= t0 then 0
    else
      max 0
        (min (width - 1)
           (int_of_float
              (Float.round
                 ((ts -. t0) /. (t1 -. t0) *. float_of_int (width - 1)))))
  in
  let queries =
    List.fold_left
      (fun acc sp -> if List.mem sp.sp_query acc then acc else sp.sp_query :: acc)
      [] spans
    |> List.rev
  in
  let name_w =
    List.fold_left (fun w q -> max w (String.length q)) 5 queries
  in
  List.iter
    (fun q ->
      let evs = List.filter (fun sp -> sp.sp_query = q) spans in
      let lane = Bytes.make width ' ' in
      let fill a b c =
        for i = col a to col b do
          Bytes.set lane i c
        done
      in
      let find state =
        List.find_opt (fun sp -> sp.sp_state = state) evs
      in
      let terminal =
        List.find_opt (fun sp -> terminal_char sp.sp_state <> None) evs
      in
      let submit = find "submitted" in
      let started = find "started" in
      let t_end =
        match terminal with Some sp -> sp.sp_t | None -> t1
      in
      (match (submit, started) with
       | Some s, Some r -> fill s.sp_t r.sp_t '.'
       | Some s, None -> fill s.sp_t t_end '.'
       | None, _ -> ());
      (match started with Some r -> fill r.sp_t t_end '=' | None -> ());
      List.iter
        (fun sp ->
          if sp.sp_state = "reclaimed" then Bytes.set lane (col sp.sp_t) '!')
        evs;
      (match terminal with
       | Some sp -> (
         match terminal_char sp.sp_state with
         | Some c -> Bytes.set lane (col sp.sp_t) c
         | None -> ())
       | None -> ());
      let attempts =
        List.fold_left (fun a sp -> max a sp.sp_attempt) 0 evs
      in
      let outcome =
        match terminal with
        | Some sp -> Printf.sprintf "%s at %ss" sp.sp_state (fnum sp.sp_t)
        | None -> "unfinished"
      in
      Format.fprintf ppf "  %-*s |%s| %s%s@." name_w q
        (Bytes.to_string lane) outcome
        (if attempts > 1 then Printf.sprintf " (attempts %d)" attempts
         else ""))
    queries

let top ppf doc =
  let sample_times = List.map fst doc.d_samples in
  let all_times =
    sample_times
    @ List.map (fun sp -> sp.sp_t) doc.d_spans
    @ List.concat_map (fun ds -> List.map fst ds.ds_points) doc.d_series
  in
  let t0 = List.fold_left Float.min infinity all_times in
  let t0 = if t0 = infinity then 0.0 else t0 in
  let t1 = List.fold_left Float.max t0 all_times in
  Format.fprintf ppf
    "== tukwila top: %d sample%s on the server clock %ss .. %ss (capacity \
     %d, window %d)%s@."
    (List.length doc.d_samples)
    (if List.length doc.d_samples = 1 then "" else "s")
    (fnum t0) (fnum t1) doc.d_capacity doc.d_window
    (if List.exists (fun (_, w) -> w <> None) doc.d_samples then
       " [wall shadow]"
     else "");
  if doc.d_spans <> [] then begin
    Format.fprintf ppf
      "-- query lanes ('.' queued, '=' running, '!' reclaim; D done, X \
       failed, C cancelled, R rejected):@.";
    render_lanes ppf ~t0 ~t1 doc.d_spans
  end;
  let unlabelled, labelled =
    List.partition (fun ds -> ds.ds_labels = []) doc.d_series
  in
  if unlabelled <> [] then begin
    Format.fprintf ppf "-- series (sparkline; window aggregates):@.";
    let name_w =
      List.fold_left
        (fun w ds -> max w (String.length ds.ds_name))
        0 unlabelled
    in
    List.iter
      (fun ds ->
        let pts =
          List.map (fun (t, v) -> { p_t = t; p_v = v }) ds.ds_points
        in
        let agg a =
          match aggregate_points ~window:doc.d_window pts a with
          | Some v -> fnum v
          | None -> "-"
        in
        Format.fprintf ppf "  %-*s %-7s [%-20s] last %s min %s median %s \
                            p95 %s@."
          name_w ds.ds_name ds.ds_kind
          (sparkline 20 ds.ds_points)
          (agg Slo.Last) (agg Slo.Min) (agg Slo.Median) (agg Slo.P95))
      unlabelled;
    if labelled <> [] then
      Format.fprintf ppf "  (+%d labelled series in the JSONL)@."
        (List.length labelled)
  end;
  if doc.d_slos <> [] then begin
    Format.fprintf ppf "-- slo:@.";
    List.iter
      (fun decl ->
        let name =
          match String.index_opt decl '=' with
          | Some i -> String.sub decl 0 i
          | None -> decl
        in
        let log =
          List.filter (fun sl -> sl.sl_slo = name) doc.d_slo_log
        in
        let violations =
          List.length (List.filter (fun sl -> sl.sl_violated) log)
        in
        let state =
          match List.rev log with
          | last :: _ when last.sl_violated -> "VIOLATED"
          | _ -> "healthy"
        in
        Format.fprintf ppf "  %-40s %s (%d violation%s)@." decl state
          violations
          (if violations = 1 then "" else "s");
        List.iter
          (fun sl ->
            Format.fprintf ppf "    [%ss] %s: %s %s = %s (objective %s %s)@."
              (fnum sl.sl_t)
              (if sl.sl_violated then "VIOLATED" else "recovered")
              sl.sl_metric sl.sl_agg (fnum sl.sl_value) sl.sl_op
              (fnum sl.sl_bound))
          log)
      doc.d_slos
  end;
  if doc.d_provs <> [] then begin
    Format.fprintf ppf "-- warm-start provenance:@.";
    List.iter
      (fun pv ->
        Format.fprintf ppf "  [%ss] %s inherited %d signature%s: %s@."
          (fnum pv.pv_t) pv.pv_query
          (List.length pv.pv_signatures)
          (if List.length pv.pv_signatures = 1 then "" else "s")
          (String.concat ", " pv.pv_signatures))
      doc.d_provs
  end
