(** Service-level objectives over telemetry series.

    An objective is declared as a one-line expression
    ["NAME=METRIC [AGG] OP BOUND"] (the [--slo] flag of
    [tukwila serve]), e.g.:

    {v
      queue=adp_server_queue_depth p95 < 4
      degraded=adp_server_queries_total rate <= 0.5
      alive=adp_server_workers_alive >= 1
    v}

    where [AGG] is one of [last] (default), [rate], [min], [median],
    [p95] or [max], evaluated by {!Adp_obs.Timeseries} over the trailing
    sample window of the named series.

    The {!monitor} tracks per-objective health across samples and
    reports only {e transitions} — entering violation and recovering —
    which the server turns into [Slo_violation]/[Slo_recovered] trace
    events and [adp_slo_*] metrics. *)

type agg = Last | Rate | Min | Median | P95 | Max
type op = Lt | Le | Gt | Ge

type objective = {
  o_name : string;  (** declared name, e.g. ["queue"] *)
  o_metric : string;  (** telemetry series name to watch *)
  o_agg : agg;
  o_op : op;
  o_bound : float;
}

val agg_name : agg -> string
val op_name : op -> string

(** [holds op value bound] — does [value OP bound] hold? *)
val holds : op -> float -> float -> bool

(** Re-render an objective in the declaration grammar. *)
val to_string : objective -> string

(** Parse ["NAME=METRIC [AGG] OP BOUND"]; [Error] explains the
    offending token. *)
val parse : string -> (objective, string) result

(** {2 Monitor} *)

type monitor

type transition = {
  t_objective : objective;
  t_violated : bool;  (** [true]: entered violation; [false]: recovered *)
  t_value : float;  (** the aggregate that decided the transition *)
}

(** All objectives start healthy. *)
val monitor : objective list -> monitor

val objectives : monitor -> objective list

(** Objectives currently in violation, in declaration order. *)
val active_violations : monitor -> objective list

(** Evaluate every objective at one sample point and flip states.
    [values ~metric agg] returns the current aggregate for each series
    carrying [metric] (one entry per label-set; [[]] before any sample —
    treated as healthy).  An objective is violated when any matching
    series breaks it.  Returns only the objectives whose state changed,
    in declaration order. *)
val evaluate :
  monitor ->
  values:(metric:string -> agg -> float list) ->
  transition list
