(** Minimal JSON tree, printer and parser.

    The observability layer speaks three textual formats — JSONL traces,
    Chrome [trace_event] files and metrics dumps — and must also read its
    own JSONL back for [tukwila explain].  Rather than pull a dependency
    into the build, this is a small self-contained JSON implementation:
    a value tree, a compact printer with round-trippable float formatting,
    and a recursive-descent parser for standard JSON. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_buffer : Buffer.t -> t -> unit

(** Shortest decimal form that parses back to the same float; integral
    values print without a fractional part.  Non-finite floats (which
    JSON cannot represent) print as [null]. *)
val float_str : float -> string

val parse : string -> (t, string) result

(** {2 Accessors} — total; [None] on shape mismatch. *)

val member : string -> t -> t option
val get_num : t -> float option
val get_int : t -> int option
val get_str : t -> string option
val get_bool : t -> bool option
val get_list : t -> t list option
