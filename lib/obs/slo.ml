(* Service-level objectives over telemetry series: a tiny declaration
   grammar ("NAME=METRIC [AGG] OP BOUND") and a monitor that tracks, per
   objective, whether the watched aggregate currently satisfies it —
   reporting only the *transitions* (healthy -> violated and back), which
   is what the trace and the metrics want. *)

type agg = Last | Rate | Min | Median | P95 | Max
type op = Lt | Le | Gt | Ge

type objective = {
  o_name : string;
  o_metric : string;
  o_agg : agg;
  o_op : op;
  o_bound : float;
}

let agg_name = function
  | Last -> "last"
  | Rate -> "rate"
  | Min -> "min"
  | Median -> "median"
  | P95 -> "p95"
  | Max -> "max"

let agg_of_name = function
  | "last" -> Some Last
  | "rate" -> Some Rate
  | "min" -> Some Min
  | "median" -> Some Median
  | "p95" -> Some P95
  | "max" -> Some Max
  | _ -> None

let op_name = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let op_of_name = function
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

let holds op value bound =
  match op with
  | Lt -> value < bound
  | Le -> value <= bound
  | Gt -> value > bound
  | Ge -> value >= bound

let to_string o =
  Printf.sprintf "%s=%s %s %s %s" o.o_name o.o_metric (agg_name o.o_agg)
    (op_name o.o_op) (Json.float_str o.o_bound)

let usage = "expected NAME=METRIC [last|rate|min|median|p95|max] OP BOUND"

let parse text =
  match String.index_opt text '=' with
  | None -> Error (Printf.sprintf "%S: missing '='; %s" text usage)
  | Some i ->
    let name = String.trim (String.sub text 0 i) in
    let rest =
      String.sub text (i + 1) (String.length text - i - 1)
    in
    let tokens =
      List.filter (fun t -> t <> "") (String.split_on_char ' ' rest)
    in
    if name = "" then Error (Printf.sprintf "%S: empty name; %s" text usage)
    else begin
      let finish metric agg op bound =
        match (op_of_name op, float_of_string_opt bound) with
        | None, _ ->
          Error (Printf.sprintf "%S: unknown operator %S; %s" text op usage)
        | _, None ->
          Error (Printf.sprintf "%S: bad bound %S; %s" text bound usage)
        | Some o_op, Some o_bound ->
          Ok { o_name = name; o_metric = metric; o_agg = agg; o_op; o_bound }
      in
      match tokens with
      | [ metric; agg; op; bound ] -> (
        match agg_of_name agg with
        | Some a -> finish metric a op bound
        | None ->
          Error
            (Printf.sprintf "%S: unknown aggregate %S; %s" text agg usage))
      | [ metric; op; bound ] -> finish metric Last op bound
      | _ ->
        Error (Printf.sprintf "%S: expected 3 or 4 tokens after '='; %s"
                 text usage)
    end

(* ------------------------------------------------------------------ *)
(* Monitor                                                            *)
(* ------------------------------------------------------------------ *)

type state = { s_objective : objective; mutable s_violated : bool }
type monitor = state list

type transition = {
  t_objective : objective;
  t_violated : bool;
  t_value : float;
}

let monitor objectives =
  List.map (fun o -> { s_objective = o; s_violated = false }) objectives

let objectives m = List.map (fun s -> s.s_objective) m
let active_violations m =
  List.filter_map
    (fun s -> if s.s_violated then Some s.s_objective else None)
    m

(* One evaluation pass at a sample point.  [values ~metric agg] yields
   the current aggregate for every series carrying that name (one entry
   per label-set; empty when nothing has been sampled yet — treated as
   healthy).  An objective is violated when ANY matching series breaks
   it; the reported value is the worst offender (largest for upper
   bounds, smallest for lower bounds). *)
let evaluate m ~values =
  List.filter_map
    (fun s ->
      let o = s.s_objective in
      let vs = values ~metric:o.o_metric o.o_agg in
      let violating = List.filter (fun v -> not (holds o.o_op v o.o_bound)) vs in
      let violated = violating <> [] in
      if violated = s.s_violated then None
      else begin
        s.s_violated <- violated;
        let worst l =
          match (o.o_op, l) with
          | _, [] -> 0.0
          | (Lt | Le), v :: tl -> List.fold_left Float.max v tl
          | (Gt | Ge), v :: tl -> List.fold_left Float.min v tl
        in
        let value = if violated then worst violating else worst vs in
        Some { t_objective = o; t_violated = violated; t_value = value }
      end)
    m
