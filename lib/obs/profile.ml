type span = {
  sp_phase : string;
  sp_node : string;
  sp_depth : int;
  sp_order : int;
  mutable sp_self_us : float;
  mutable sp_in : int;
  mutable sp_out : int;
  mutable sp_probes : int;
  mutable sp_builds : int;
  mutable sp_mem_hw : int;
}

type t = {
  tbl : (string * string, span) Hashtbl.t;
  mutable rev : span list;  (* newest first *)
  mutable cur_phase : string;
  mutable next_order : int;
}

type info = {
  phase : string;
  node : string;
  depth : int;
  order : int;
  self_us : float;
  tuples_in : int;
  tuples_out : int;
  probes : int;
  builds : int;
  mem_hw : int;
}

let create () =
  { tbl = Hashtbl.create 64; rev = []; cur_phase = "phase 0"; next_order = 0 }

let set_phase t phase = t.cur_phase <- phase
let phase t = t.cur_phase

let span t ?(depth = 0) node =
  let key = (t.cur_phase, node) in
  match Hashtbl.find_opt t.tbl key with
  | Some sp -> sp
  | None ->
    let sp =
      { sp_phase = t.cur_phase; sp_node = node; sp_depth = depth;
        sp_order = t.next_order; sp_self_us = 0.0; sp_in = 0; sp_out = 0;
        sp_probes = 0; sp_builds = 0; sp_mem_hw = 0 }
    in
    t.next_order <- t.next_order + 1;
    Hashtbl.add t.tbl key sp;
    t.rev <- sp :: t.rev;
    sp

let span_phase sp = sp.sp_phase
let span_node sp = sp.sp_node
let span_depth sp = sp.sp_depth

let add_time sp us = sp.sp_self_us <- sp.sp_self_us +. us
let add_in sp n = sp.sp_in <- sp.sp_in + n
let add_out sp n = sp.sp_out <- sp.sp_out + n
let add_probes sp n = sp.sp_probes <- sp.sp_probes + n
let add_builds sp n = sp.sp_builds <- sp.sp_builds + n
let note_mem sp n = if n > sp.sp_mem_hw then sp.sp_mem_hw <- n

let info sp =
  { phase = sp.sp_phase; node = sp.sp_node; depth = sp.sp_depth;
    order = sp.sp_order; self_us = sp.sp_self_us; tuples_in = sp.sp_in;
    tuples_out = sp.sp_out; probes = sp.sp_probes; builds = sp.sp_builds;
    mem_hw = sp.sp_mem_hw }

let spans t = List.rev_map info t.rev

let totals t =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun (i : info) ->
      match Hashtbl.find_opt tbl i.node with
      | None ->
        order := i.node :: !order;
        Hashtbl.add tbl i.node { i with phase = "*" }
      | Some acc ->
        Hashtbl.replace tbl i.node
          { acc with
            self_us = acc.self_us +. i.self_us;
            tuples_in = acc.tuples_in + i.tuples_in;
            tuples_out = acc.tuples_out + i.tuples_out;
            probes = acc.probes + i.probes;
            builds = acc.builds + i.builds;
            mem_hw = max acc.mem_hw i.mem_hw })
    (spans t);
  List.rev_map (Hashtbl.find tbl) !order

let cumulative_us l i =
  let arr = Array.of_list l in
  if i < 0 || i >= Array.length arr then 0.0
  else begin
    let base = arr.(i).depth in
    let acc = ref arr.(i).self_us in
    let j = ref (i + 1) in
    while !j < Array.length arr && arr.(!j).depth > base do
      acc := !acc +. arr.(!j).self_us;
      incr j
    done;
    !acc
  end

let seconds us = us /. 1e6

let render ?annot ppf t =
  let all = spans t in
  let phases =
    List.fold_left
      (fun acc (i : info) ->
        if List.mem i.phase acc then acc else i.phase :: acc)
      [] all
    |> List.rev
  in
  List.iter
    (fun ph ->
      let l = List.filter (fun (i : info) -> i.phase = ph) all in
      Format.fprintf ppf "%s:@." ph;
      List.iteri
        (fun idx (i : info) ->
          let extra =
            match annot with
            | None -> ""
            | Some f ->
              (match f ~node:i.node with None -> "" | Some s -> " " ^ s)
          in
          Format.fprintf ppf
            "  %s%s  (self %.6fs, cum %.6fs, in %d, out %d, probes %d, \
             builds %d, mem %d)%s@."
            (String.make (2 * i.depth) ' ')
            i.node (seconds i.self_us)
            (seconds (cumulative_us l idx))
            i.tuples_in i.tuples_out i.probes i.builds i.mem_hw extra)
        l)
    phases

let info_to_json (i : info) =
  Json.Obj
    [ ("phase", Json.Str i.phase); ("node", Json.Str i.node);
      ("depth", Json.Num (float_of_int i.depth));
      ("self_us", Json.Num i.self_us);
      ("tuples_in", Json.Num (float_of_int i.tuples_in));
      ("tuples_out", Json.Num (float_of_int i.tuples_out));
      ("probes", Json.Num (float_of_int i.probes));
      ("builds", Json.Num (float_of_int i.builds));
      ("mem_hw", Json.Num (float_of_int i.mem_hw)) ]

let to_json t =
  Json.Obj
    [ ("spans", Json.List (List.map info_to_json (spans t)));
      ("totals", Json.List (List.map info_to_json (totals t))) ]
