(** Telemetry over time: ring-buffer metric history, the SLO monitor,
    and the server-side journal behind [tukwila top].

    A recorder samples every registered cell of a {!Metrics} registry
    (counters, gauges, and each histogram's count/p50/p95/max) into
    fixed-capacity ring-buffer series.  The server calls {!sample} once
    per dispatcher poll with the {e virtual} clock as the time axis — an
    optional wall shadow rides along when the caller supplies one from
    the sanctioned {!Wallclock} module.  Sampling only reads; it never
    touches the clock or the event heap, so a telemetered serve stays
    bit-identical to a bare one, and repeated serves of the same script
    export byte-identical JSONL (wall shadow off).

    Alongside the metric history the recorder keeps per-query span
    transitions, warm-start provenance edges, and the {!Slo} monitor's
    violation/recovery ledger; {!to_jsonl} exports everything as one
    line-oriented document, {!read} loads it back, and {!top} renders
    the text dashboard. *)

type t

(** [capacity] bounds each series ring (points retained); [window] is
    the trailing sample count aggregates cover; [slos] are evaluated at
    every {!sample}. *)
val create :
  ?capacity:int -> ?window:int -> ?slos:Slo.objective list -> unit -> t

(** Samples taken so far. *)
val samples : t -> int

(** Live series count (tests). *)
val series_count : t -> int

val objectives : t -> Slo.objective list
val active_violations : t -> Slo.objective list

(** Record one sample at virtual time [now_s] (seconds): snapshot every
    cell of [metrics] into its series, then evaluate the SLO monitor
    over the updated windows.  Returns the SLO transitions this sample
    caused (also appended to the exported ledger).  [wall_s] attaches a
    wall-clock shadow to the sample — callers must source it from
    {!Wallclock} and leave it off when byte-identical exports matter. *)
val sample :
  t -> now_s:float -> ?wall_s:float -> Metrics.t -> Slo.transition list

(** Windowed aggregate of one series ([None] when absent or empty). *)
val aggregate :
  t -> ?labels:(string * string) list -> metric:string -> Slo.agg ->
  float option

(** Aggregates of every series named [metric], one per label-set. *)
val values : t -> metric:string -> Slo.agg -> float list

(** {2 Journal} *)

(** Record a query lifecycle transition ([state] is one of
    ["submitted"], ["started"], ["done"], ["failed"], ["cancelled"],
    ["rejected"], ["reclaimed"]). *)
val span :
  t ->
  at_s:float ->
  query:string ->
  state:string ->
  ?worker:int ->
  ?attempt:int ->
  unit ->
  unit

(** Record which inherited selectivity signatures fed [query]'s
    warm-started plan. *)
val provenance :
  t -> at_s:float -> query:string -> signatures:string list -> unit

(** {2 Export} *)

(** One JSONL document: a [meta] header, one [sample] line per poll,
    [span]/[prov]/[slo] journal lines in emission order, then one
    [series] line per ring (sorted by name, then labels) carrying the
    retained points.  Deterministic byte-for-byte given the same
    recording. *)
val to_jsonl : t -> string

(** {!to_jsonl} through atomic temp + rename. *)
val write : t -> path:string -> unit

(** {2 Loading and rendering} *)

type span = {
  sp_t : float;
  sp_query : string;
  sp_state : string;
  sp_worker : int;  (** [-1] when not applicable *)
  sp_attempt : int;  (** [0] when not applicable *)
}

type prov = { pv_t : float; pv_query : string; pv_signatures : string list }

type slo_rec = {
  sl_t : float;
  sl_slo : string;
  sl_metric : string;
  sl_agg : string;
  sl_op : string;
  sl_value : float;
  sl_bound : float;
  sl_violated : bool;
}

type dseries = {
  ds_name : string;
  ds_labels : (string * string) list;
  ds_kind : string;  (** ["counter"] or ["gauge"] *)
  ds_total : int;  (** points ever recorded (>= retained) *)
  ds_points : (float * float) list;  (** retained, in time order *)
}

type doc = {
  d_capacity : int;
  d_window : int;
  d_slos : string list;  (** declared objectives, {!Slo.to_string} form *)
  d_samples : (float * float option) list;  (** (virtual, wall shadow) *)
  d_spans : span list;
  d_provs : prov list;
  d_slo_log : slo_rec list;
  d_series : dseries list;
}

(** Parse an exported telemetry JSONL file.  [Error] carries the first
    offending line number and reason. *)
val read : string -> (doc, string) result

(** Parse from lines (tests). *)
val doc_of_lines : string list -> (doc, string) result

(** [sparkline width points] maps the last [width] values onto the
    ASCII intensity ramp [" .:-=+*#%@"] (scaled to the rendered min/max;
    [""] when empty).  Shared by {!top} and [tukwila bench-history]. *)
val sparkline : int -> (float * float) list -> string

(** Render the [tukwila top] dashboard: header, per-query span lanes on
    the server clock, sparkline series with window aggregates, SLO
    status with the transition ledger, and warm-start provenance. *)
val top : Format.formatter -> doc -> unit
