type point = Poll | Phase_close | Stitchup

type observation = {
  o_phase : string;
  o_at : float;
  o_point : point;
  o_node : string;
  o_est : float;
  o_actual : float;
  o_q : float;
}

type verdict =
  | Switched
  | Kept_same_plan
  | Kept_cost
  | Kept_guard of string

type decision = {
  d_phase : string;
  d_at : float;
  d_verdict : verdict;
  d_current_cost : float;
  d_best_cost : float;
  d_switch_cost : float;
  d_threshold : float;
  d_margin : float;
  d_blame : (string * float) option;
}

type t = {
  mutable obs_rev : observation list;
  mutable dec_rev : decision list;
}

let create () = { obs_rev = []; dec_rev = [] }

let q_error ~est ~actual =
  let est = Float.max 1.0 est and actual = Float.max 1.0 actual in
  Float.max 1.0 (Float.max (est /. actual) (actual /. est))

let observe t ~phase ~at ~point ~node ~est ~actual =
  t.obs_rev <-
    { o_phase = phase; o_at = at; o_point = point; o_node = node;
      o_est = est; o_actual = actual; o_q = q_error ~est ~actual }
    :: t.obs_rev

let observations t = List.rev t.obs_rev
let decisions t = List.rev t.dec_rev

let latest_by_node t =
  (* Walk oldest -> newest so insertion order is first appearance and the
     stored observation ends up the latest. *)
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun o ->
      if not (Hashtbl.mem tbl o.o_node) then order := o.o_node :: !order;
      Hashtbl.replace tbl o.o_node o)
    (observations t);
  List.rev_map (fun node -> (node, Hashtbl.find tbl node)) !order

let worst t =
  List.fold_left
    (fun acc (node, o) ->
      match acc with
      | Some (_, q) when q >= o.o_q -> acc
      | _ -> Some (node, o.o_q))
    None (latest_by_node t)

let decide t ~phase ~at ~verdict ~current_cost ~best_cost ~switch_cost
    ~threshold =
  t.dec_rev <-
    { d_phase = phase; d_at = at; d_verdict = verdict;
      d_current_cost = current_cost; d_best_cost = best_cost;
      d_switch_cost = switch_cost; d_threshold = threshold;
      d_margin = switch_cost -. (threshold *. current_cost);
      d_blame = worst t }
    :: t.dec_rev

let point_name = function
  | Poll -> "poll"
  | Phase_close -> "phase-close"
  | Stitchup -> "stitch-up"

let verdict_name = function
  | Switched -> "switch"
  | Kept_same_plan -> "keep (same plan)"
  | Kept_cost -> "keep (switch too expensive)"
  | Kept_guard g -> "keep (guard: " ^ g ^ ")"

let pp_decision ppf d =
  Format.fprintf ppf
    "[%12.6f s] %s: %s@.    cost-to-go %.0f, best %.0f, switch cost %.0f \
     vs. bar %.2f x %.0f = %.0f (margin %+.0f)@."
    d.d_at d.d_phase (verdict_name d.d_verdict) d.d_current_cost d.d_best_cost
    d.d_switch_cost d.d_threshold d.d_current_cost
    (d.d_threshold *. d.d_current_cost)
    d.d_margin;
  match d.d_blame with
  | Some (node, q) ->
    Format.fprintf ppf "    blame: %s (q-error %.2f)@." node q
  | None -> Format.fprintf ppf "    blame: none (no observations yet)@."

let render ppf t =
  let latest = latest_by_node t in
  if latest <> [] then begin
    Format.fprintf ppf "calibration (latest per node):@.";
    List.iter
      (fun (node, o) ->
        Format.fprintf ppf
          "  %-40s est %10.0f  actual %10.0f  q-error %8.2f  (%s, %s)@."
          node o.o_est o.o_actual o.o_q o.o_phase (point_name o.o_point))
      latest
  end;
  let ds = decisions t in
  if ds <> [] then begin
    Format.fprintf ppf "decisions:@.";
    List.iter (pp_decision ppf) ds
  end

let observation_to_json o =
  Json.Obj
    [ ("phase", Json.Str o.o_phase); ("at", Json.Num o.o_at);
      ("point", Json.Str (point_name o.o_point));
      ("node", Json.Str o.o_node); ("est", Json.Num o.o_est);
      ("actual", Json.Num o.o_actual); ("q_error", Json.Num o.o_q) ]

let decision_to_json d =
  Json.Obj
    ([ ("phase", Json.Str d.d_phase); ("at", Json.Num d.d_at);
       ("verdict", Json.Str (verdict_name d.d_verdict));
       ("current_cost", Json.Num d.d_current_cost);
       ("best_cost", Json.Num d.d_best_cost);
       ("switch_cost", Json.Num d.d_switch_cost);
       ("threshold", Json.Num d.d_threshold);
       ("margin", Json.Num d.d_margin) ]
    @
    match d.d_blame with
    | Some (node, q) ->
      [ ("blame", Json.Str node); ("blame_q", Json.Num q) ]
    | None -> [])

let to_json t =
  Json.Obj
    [ ("observations",
       Json.List (List.map observation_to_json (observations t)));
      ("decisions", Json.List (List.map decision_to_json (decisions t))) ]
