(* The BENCH_<id>.json schema (version 1): the machine-readable
   companion every benchmark writes and [tukwila bench-diff] gates on.
   Lives in the library (rather than the bench harness) so the CLI and
   the tests parse and render through the same code.

     { "schema": 1, "bench": "<id>", "scale": <SF>,
       "cells": [ { "id": "...", "kind": "...", "value": <num> }, ... ] }

   Cell kinds and their diff semantics (see Benchdiff):
     time   deterministic virtual seconds — compared with a relative
            tolerance (plans may legitimately drift a little across
            estimator tweaks);
     count  deterministic integer/exact value — must match exactly;
     bool   invariant flag (1/0) — must match exactly;
     wall   wall-clock measurement.  A repetition trio
            <base>-wall-min / <base>-wall-median / <base>-wall-p95
            gates median-vs-median under a variance-aware tolerance;
            lone wall cells stay informational. *)

type kind = Time | Count | Bool | Wall

type cell = { id : string; kind : kind; value : float }

type doc = { bench : string; scale : float; cells : cell list }

let time id v = { id; kind = Time; value = v }
let count id n = { id; kind = Count; value = float_of_int n }
let num id v = { id; kind = Count; value = v }
let flag id b = { id; kind = Bool; value = (if b then 1.0 else 0.0) }
let wall id v = { id; kind = Wall; value = v }

let kind_name = function
  | Time -> "time"
  | Count -> "count"
  | Bool -> "bool"
  | Wall -> "wall"

let kind_of_name = function
  | "time" -> Some Time
  | "count" -> Some Count
  | "bool" -> Some Bool
  | "wall" -> Some Wall
  | _ -> None

(* Cell ids are path-like slugs: lowercase, [a-z0-9./%+-] kept,
   everything else collapsed to '-'. *)
let slug s =
  let b = Buffer.create (String.length s) in
  let last_dash = ref false in
  String.iter
    (fun c ->
      let c = Char.lowercase_ascii c in
      match c with
      | 'a' .. 'z' | '0' .. '9' | '.' | '/' | '%' | '+' ->
        Buffer.add_char b c;
        last_dash := false
      | _ ->
        if not !last_dash then Buffer.add_char b '-';
        last_dash := true)
    (String.trim s);
  let s = Buffer.contents b in
  (* strip trailing dashes *)
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = '-' do decr n done;
  String.sub s 0 !n

let to_string { bench; scale; cells } =
  let cell_line c =
    Printf.sprintf "    { \"id\": %S, \"kind\": %S, \"value\": %s }" c.id
      (kind_name c.kind) (Json.float_str c.value)
  in
  Printf.sprintf
    "{\n  \"schema\": 1,\n  \"bench\": %S,\n  \"scale\": %s,\n  \
     \"cells\": [\n%s\n  ]\n}\n"
    bench (Json.float_str scale)
    (String.concat ",\n" (List.map cell_line cells))

let of_json j =
  let member name get =
    match Option.bind (Json.member name j) get with
    | Some v -> Ok v
    | None ->
      Error (Printf.sprintf "missing or malformed %S field" name)
  in
  let ( let* ) = Result.bind in
  let* schema = member "schema" Json.get_int in
  if schema <> 1 then Error "unsupported schema version"
  else
    let* bench = member "bench" Json.get_str in
    let* scale = member "scale" Json.get_num in
    let* raw = member "cells" Json.get_list in
    let* cells =
      List.fold_left
        (fun acc c ->
          let* acc = acc in
          match
            ( Option.bind (Json.member "id" c) Json.get_str,
              Option.bind (Json.member "kind" c) Json.get_str,
              Option.bind (Json.member "value" c) Json.get_num )
          with
          | Some id, Some kind, Some value -> (
            match kind_of_name kind with
            | Some kind -> Ok ({ id; kind; value } :: acc)
            | None -> Error (Printf.sprintf "unknown cell kind %S" kind))
          | _ -> Error ("malformed cell " ^ Json.to_string c))
        (Ok []) raw
    in
    Ok { bench; scale; cells = List.rev cells }

let of_string s =
  match Json.parse s with Ok j -> of_json j | Error m -> Error m

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> (
    match of_string s with
    | Ok d -> Ok d
    | Error m -> Error (path ^ ": " ^ m))
  | exception Sys_error m -> Error m

let write path doc =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_string doc))
