(** Wall-clock shadow of the virtual-time observability stack.

    This is the {e one} module allowed to read hardware time and GC
    state — the effect lint structurally allowlists this file and flags
    any wall read elsewhere as [lint-wallclock-escape].

    A recorder attaches to a run as a sidecar: [Ctx.charge_span] calls
    {!attribute} at the exact points it charges the virtual clock, so
    every virtual-time measurement gains a hardware-time shadow.  The
    recorder only ever {e reads}; nothing it computes flows back into
    the engine, and a run with wall capture on is bit-identical to a
    bare run (virtual clock, result multiset, decision ledger).

    Attribution is delta-since-last-stamp: each call charges the wall
    time elapsed since the previous call to the span being charged
    (exact in aggregate, one clock read per charge).  Every
    [sample_every]-th attribution is a sampler tick: it captures a
    [Gc.quick_stat] delta, charges the allocation to the sampled span,
    and records a (timestamp, span stack, GC counters) sample that the
    collapsed-stack ({!to_folded}) and Perfetto ({!to_perfetto})
    exports fold up. *)

type t

(** Cumulative GC activity since the recorder was created. *)
type gc_totals = {
  g_minor_words : float;
  g_major_words : float;
  g_promoted_words : float;
  g_minor_collections : int;
  g_major_collections : int;
  g_compactions : int;
  g_top_heap_words : int;
}

(** Immutable view of one wall span (the wall shadow of a profile
    span). *)
type info = {
  phase : string;
  node : string;
  depth : int;
  order : int;
  self_s : float;  (** wall seconds attributed to this span *)
  samples : int;  (** sampler ticks that landed in this span *)
  minor_words : float;  (** minor-heap words allocated under this span *)
  major_words : float;
}

(** [sample_every] is the sampler period in attribution ticks
    (default 64): smaller = finer flamegraphs, more [Gc.quick_stat]
    calls. *)
val create : ?sample_every:int -> unit -> t

(** {2 Timebase} *)

(** Monotonically-clamped [Unix.gettimeofday]: real elapsed seconds
    that never step backwards.  The module-level probe is for harness
    code (bench repetitions, progress reporting) that needs a wall
    reading without a recorder. *)
val monotonic_s : unit -> float

(** Process CPU seconds ([Sys.time]), for harness code. *)
val cpu_now : unit -> float

(** Wall seconds since this recorder was created. *)
val elapsed_s : t -> float

(** Same, relative seconds (alias used at stamp points). *)
val now_s : t -> float

(** CPU seconds since this recorder was created. *)
val cpu_s : t -> float

(** {2 Attribution} — called from [Ctx] at the charge points. *)

(** Mirror of [Profile.set_phase]: subsequent spans register under this
    phase. *)
val set_phase : t -> string -> unit

(** Server-side per-query scope: a non-empty scope prefixes phase keys
    as ["scope:phase"].  Reset with [""]. *)
val set_scope : t -> string -> unit

(** Charge the wall time since the last stamp to the wall shadow of
    [sp] ([None] goes to the "(unattributed)" bucket). *)
val attribute : t -> Profile.span option -> unit

(** Stamp into a named bucket (e.g. ["(driver wait)"]) so waiting time
    never pollutes the next operator's span. *)
val note_wait : t -> string -> unit

(** Record a wall timestamp for a trace event (the sidecar annotation
    channel); shows up as instant events in the Perfetto export. *)
val note_event : t -> string -> unit

(** Recorded (wall seconds, event name) marks, oldest first. *)
val marks : t -> (float * string) list

(** {2 Reads} *)

val spans : t -> info list
(** All wall spans in registration order. *)

val totals : t -> info list
(** Aggregated across phases, keyed by node; [phase] is ["*"]. *)

val sample_count : t -> int
val gc_totals : t -> gc_totals

(** {2 Exports} *)

val to_folded : t -> string
(** Collapsed-stack flamegraph lines ("phase;anc;...;node count", one
    per span, count = sampler ticks; falls back to µs-of-self-time
    weights when the run was too short for any tick). *)

val to_perfetto : t -> string
(** Chrome/Perfetto trace JSON: GC counter tracks (ph ["C"]) at the
    sampler ticks plus instant events for the trace-event sidecar. *)

val sync_metrics : t -> Metrics.t -> unit
(** Publish [adp_wall_*] / [adp_gc_*] gauges into a metrics registry. *)
