(* Longitudinal benchmark trajectories: [tukwila bench-history] appends
   each BENCH_<id>.json document as one line of bench/history/<id>.jsonl
   and renders/gates the per-cell trend — the across-runs counterpart of
   [tukwila bench-diff]'s two-document comparison.

   Gating is deliberately asymmetric by cell kind, mirroring Benchdiff:
   time cells gate against the *median of the prior runs* (robust to a
   single outlier run in the history), count/bool cells against the most
   recent prior run exactly, and wall cells never gate — a history file
   may span machines, so absolute wall trends are informational. *)

type entry = { e_seq : int; e_doc : Bjson.doc }

let path ~dir ~bench = Filename.concat dir (bench ^ ".jsonl")

let entry_to_line e =
  let d = e.e_doc in
  Json.to_string
    (Json.Obj
       [ ("seq", Json.Num (float_of_int e.e_seq));
         ("bench", Json.Str d.Bjson.bench);
         ("scale", Json.Num d.Bjson.scale);
         ( "cells",
           Json.List
             (List.map
                (fun (c : Bjson.cell) ->
                  Json.Obj
                    [ ("id", Json.Str c.Bjson.id);
                      ("kind", Json.Str (Bjson.kind_name c.Bjson.kind));
                      ("value", Json.Num c.Bjson.value) ])
                d.Bjson.cells) ) ])

let entry_of_line line =
  match Json.parse line with
  | Error m -> Error m
  | Ok j -> (
    let get name f = Option.bind (Json.member name j) f in
    match
      ( get "seq" Json.get_int, get "bench" Json.get_str,
        get "scale" Json.get_num, get "cells" Json.get_list )
    with
    | Some seq, Some bench, Some scale, Some raw -> (
      let cell c =
        match
          ( Option.bind (Json.member "id" c) Json.get_str,
            Option.bind
              (Option.bind (Json.member "kind" c) Json.get_str)
              Bjson.kind_of_name,
            Option.bind (Json.member "value" c) Json.get_num )
        with
        | Some id, Some kind, Some value ->
          Some { Bjson.id; kind; value }
        | _ -> None
      in
      match List.map cell raw with
      | cells when List.for_all Option.is_some cells ->
        Ok
          { e_seq = seq;
            e_doc =
              { Bjson.bench; scale;
                cells = List.filter_map Fun.id cells } }
      | _ -> Error "malformed cell"
      )
    | _ -> Error "malformed history entry")

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let lines =
      String.split_on_char '\n'
        (In_channel.with_open_bin path In_channel.input_all)
    in
    let rec go lineno acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        if String.trim line = "" then go (lineno + 1) acc rest
        else begin
          match entry_of_line line with
          | Ok e -> go (lineno + 1) (e :: acc) rest
          | Error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m)
        end
    in
    go 1 [] lines
  end

let append ~dir (doc : Bjson.doc) =
  let file = path ~dir ~bench:doc.Bjson.bench in
  match load file with
  | Error m -> Error m
  | Ok entries ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let seq =
      1 + List.fold_left (fun a e -> max a e.e_seq) 0 entries
    in
    let entries = entries @ [ { e_seq = seq; e_doc = doc } ] in
    Adp_storage.Snapshot.write_text ~path:file
      (String.concat "" (List.map (fun e -> entry_to_line e ^ "\n") entries));
    Ok seq

(* ------------------------------------------------------------------ *)
(* Trends                                                             *)
(* ------------------------------------------------------------------ *)

(* Values of cell [id] across the history, oldest first, with each
   entry's seq as the x coordinate. *)
let trajectory entries id =
  List.filter_map
    (fun e ->
      List.find_opt (fun (c : Bjson.cell) -> c.Bjson.id = id) e.e_doc.Bjson.cells
      |> Option.map (fun (c : Bjson.cell) ->
             (float_of_int e.e_seq, c.Bjson.value)))
    entries

let median values =
  match List.sort compare values with
  | [] -> 0.0
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    arr.(max 0 (min (n - 1) (int_of_float (Float.round (0.5 *. float_of_int (n - 1))))))

let render ppf entries =
  match List.rev entries with
  | [] -> Format.fprintf ppf "(empty history)@."
  | last :: _ ->
    Format.fprintf ppf "== %s: %d run%s (seq %d..%d, scale %s)@."
      last.e_doc.Bjson.bench (List.length entries)
      (if List.length entries = 1 then "" else "s")
      (List.fold_left (fun a e -> min a e.e_seq) last.e_seq entries)
      last.e_seq
      (Json.float_str last.e_doc.Bjson.scale);
    let name_w =
      List.fold_left
        (fun w (c : Bjson.cell) -> max w (String.length c.Bjson.id))
        0 last.e_doc.Bjson.cells
    in
    List.iter
      (fun (c : Bjson.cell) ->
        let traj = trajectory entries c.Bjson.id in
        let vals = List.map snd traj in
        Format.fprintf ppf "  %-*s %-5s [%-16s] %s -> %s (median %s over %d)@."
          name_w c.Bjson.id
          (Bjson.kind_name c.Bjson.kind)
          (Timeseries.sparkline 16 traj)
          (Json.float_str (List.hd vals))
          (Json.float_str c.Bjson.value)
          (Json.float_str (median vals))
          (List.length vals))
      last.e_doc.Bjson.cells

(* Gate the newest run against its history.  Returns breach lines
   (empty = pass); fewer than two runs trivially passes. *)
let gate ?(time_tol = 0.10) entries =
  match List.rev entries with
  | [] | [ _ ] -> []
  | last :: prev_rev ->
    let prev = List.rev prev_rev in
    List.filter_map
      (fun (c : Bjson.cell) ->
        let history = List.map snd (trajectory prev c.Bjson.id) in
        match (c.Bjson.kind, history) with
        | _, [] -> None  (* new cell: no history to gate against *)
        | Bjson.Wall, _ -> None
        | Bjson.Time, vs ->
          let m = median vs in
          let rel =
            Float.abs (c.Bjson.value -. m) /. Float.max (Float.abs m) 1e-9
          in
          if Float.abs m <= 1e-9 && Float.abs c.Bjson.value <= 1e-9 then None
          else if rel > time_tol then
            Some
              (Printf.sprintf
                 "BREACH time       %s: %s vs history median %s (%+.1f%%, \
                  tolerance %.0f%%)"
                 c.Bjson.id
                 (Json.float_str c.Bjson.value)
                 (Json.float_str m) (100.0 *. rel) (100.0 *. time_tol))
          else None
        | (Bjson.Count | Bjson.Bool), vs ->
          let latest = List.nth vs (List.length vs - 1) in
          if c.Bjson.value <> latest then
            Some
              (Printf.sprintf
                 "BREACH %-10s %s: %s -> %s (must match the previous run)"
                 (Bjson.kind_name c.Bjson.kind)
                 c.Bjson.id (Json.float_str latest)
                 (Json.float_str c.Bjson.value))
          else None)
      last.e_doc.Bjson.cells
