(** Calibration ledger: optimizer estimates vs. observed reality.

    The corrective engine records, at every re-optimization poll, phase
    close and stitch-up, the cardinality the optimizer *estimated* for
    each plan node when the phase opened next to the value it *observes*
    now (the §4.2 extrapolated final cardinality under current
    selectivities).  The divergence is summarized as the q-error
    [max (est/actual, actual/est)], and every switch decision — taken or
    declined, including the §4.3 guarded-rule declines — is annotated
    with the worst-misestimated node as its *blame*.

    Everything here is engine-agnostic strings and floats; estimates are
    computed by the optimizer, which never charges the virtual clock, so
    calibration is zero-perturbation by construction. *)

type t

type point = Poll | Phase_close | Stitchup

type observation = {
  o_phase : string;
  o_at : float;  (** virtual seconds *)
  o_point : point;
  o_node : string;
  o_est : float;  (** cardinality frozen when the phase opened *)
  o_actual : float;  (** refreshed estimate under observed selectivities *)
  o_q : float;  (** q-error, >= 1.0 *)
}

type verdict =
  | Switched
  | Kept_same_plan  (** re-optimization returned the current plan *)
  | Kept_cost  (** switch cost did not beat the threshold *)
  | Kept_guard of string  (** §4.3 guard fired before costing *)

type decision = {
  d_phase : string;
  d_at : float;
  d_verdict : verdict;
  d_current_cost : float;  (** cost-to-go of the running plan *)
  d_best_cost : float;
  d_switch_cost : float;
  d_threshold : float;
  d_margin : float;
      (** [switch_cost -. threshold *. current_cost]: negative means the
          switch was (or would have been) justified by that much. *)
  d_blame : (string * float) option;  (** worst q-error node at the time *)
}

val create : unit -> t

val q_error : est:float -> actual:float -> float
(** [max (est/actual, actual/est)] floored at 1.0; treats values below
    one tuple as one tuple so empty nodes do not blow up. *)

val observe :
  t ->
  phase:string ->
  at:float ->
  point:point ->
  node:string ->
  est:float ->
  actual:float ->
  unit

val decide :
  t ->
  phase:string ->
  at:float ->
  verdict:verdict ->
  current_cost:float ->
  best_cost:float ->
  switch_cost:float ->
  threshold:float ->
  unit
(** Records a decision; the blame is the node with the worst latest
    q-error among observations made so far. *)

val observations : t -> observation list
(** In recording order. *)

val decisions : t -> decision list

val worst : t -> (string * float) option
(** Worst latest-per-node q-error so far. *)

val latest_by_node : t -> (string * observation) list
(** Latest observation per node, ordered by first appearance. *)

val point_name : point -> string
val verdict_name : verdict -> string

val pp_decision : Format.formatter -> decision -> unit
(** One decision with its [blame: <node> (q-error <q>)] line. *)

val render : Format.formatter -> t -> unit
(** The full ledger: per-node est/actual/q table then every decision. *)

val to_json : t -> Json.t
