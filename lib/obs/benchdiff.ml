(* Variance-aware comparison of two BENCH_<id>.json documents — the
   library behind [tukwila bench-diff], factored out of the CLI so the
   gating rules are unit-testable.

   Deterministic kinds are gated as before: [time] within a relative
   tolerance, [count]/[bool] exactly.  The division-by-zero hazard of
   the old CLI math is closed here: values at or below [eps] (1 ns of
   virtual time) are treated as zero, two zeros compare equal, and the
   relative error denominator is floored at [eps]; non-finite values
   (NaN/inf, e.g. from a corrupted run) are explicit breaches rather
   than silently passing every [<>] or [>] test.

   Wall cells gate only as repetition trios.  A benchmark that runs its
   kernel K times emits <base>-wall-min / -median / -p95; when both
   documents carry the full trio, the medians are compared one-sided
   (only slowdowns breach — baselines are machine-specific, so a faster
   machine must never fail the gate) under an effective tolerance that
   widens with the measured noise:

     spread(d)  = (p95 - min) / max(median, floor)
     tol_eff    = max(wall_tol, 2 * max(spread_base, spread_new))
     breach    <=> median_new > max(median_base, floor) * (1 + tol_eff)

   and trios whose medians both sit under [floor] (5 ms) are noise by
   definition and stay informational.  Lone wall cells (no trio in both
   documents) remain informational, as before. *)

type outcome = {
  o_bench : string;
  o_gated : int;  (* deterministic cells compared under a gate *)
  o_wall_gated : int;  (* wall medians gated variance-aware *)
  o_wall_info : int;  (* wall cells that stayed informational *)
  o_breaches : string list;
  o_notes : string list;
}

let eps = 1e-9
let floor_s = 5e-3

let finite v = Float.is_finite v

let median_suffix = "-wall-median"

let strip_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  if n >= m && String.sub s (n - m) m = suffix then
    Some (String.sub s 0 (n - m))
  else None

(* The wall trio rooted at [base], when all three cells are present. *)
let trio cells base =
  let find id =
    List.find_opt (fun (c : Bjson.cell) -> c.id = id && c.kind = Bjson.Wall)
      cells
  in
  match
    ( find (base ^ "-wall-min"),
      find (base ^ "-wall-median"),
      find (base ^ "-wall-p95") )
  with
  | Some mn, Some md, Some p95 ->
    Some (mn.Bjson.value, md.Bjson.value, p95.Bjson.value)
  | _ -> None

let spread ~mn ~md ~p95 = (p95 -. mn) /. Float.max md floor_s

let diff ?(time_tol = 0.10) ?(wall_tol = 0.5) ~(baseline : Bjson.doc)
    ~(current : Bjson.doc) () =
  if baseline.Bjson.bench <> current.Bjson.bench then
    Error
      (Printf.sprintf "bench id mismatch: %S vs %S" baseline.Bjson.bench
         current.Bjson.bench)
  else if baseline.Bjson.scale <> current.Bjson.scale then
    Error
      (Printf.sprintf
         "scale factor mismatch (%g vs %g): results are not comparable"
         baseline.Bjson.scale current.Bjson.scale)
  else begin
    (* Shape gate: both documents must carry exactly the same cell ids.
       A missing or extra cell means the bench's schema changed — a
       different program, not a regression — and is reported as
       [Error] (exit 2 at the CLI) with the sorted offender lists,
       distinct from a value breach (exit 1). *)
    let ids cells = List.map (fun (c : Bjson.cell) -> c.Bjson.id) cells in
    let bids = ids baseline.Bjson.cells and nids = ids current.Bjson.cells in
    let missing =
      List.sort compare (List.filter (fun id -> not (List.mem id nids)) bids)
    and extra =
      List.sort compare (List.filter (fun id -> not (List.mem id bids)) nids)
    in
    if missing <> [] || extra <> [] then
      let part label = function
        | [] -> []
        | l ->
          [ Printf.sprintf "%s %d cell%s: %s" label (List.length l)
              (if List.length l = 1 then "" else "s")
              (String.concat ", " l) ]
      in
      Error
        (String.concat "; "
           ("cell shape mismatch"
           :: (part "missing" missing @ part "extra" extra)))
    else begin
    let breaches = ref [] and notes = ref [] in
    let gated = ref 0 and wall_gated = ref 0 and wall_info = ref 0 in
    let breach fmt = Printf.ksprintf (fun s -> breaches := s :: !breaches) fmt in
    let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
    let ncells = current.Bjson.cells in
    let lookup id = List.find_opt (fun (c : Bjson.cell) -> c.id = id) ncells in
    (* Wall trios gate through their median; every wall id belonging to a
       gated trio is accounted for there. *)
    let gated_wall_ids =
      List.concat_map
        (fun (c : Bjson.cell) ->
          if c.kind <> Bjson.Wall then []
          else
            match strip_suffix ~suffix:median_suffix c.id with
            | None -> []
            | Some base ->
              if
                trio baseline.Bjson.cells base <> None
                && trio ncells base <> None
              then
                [ base ^ "-wall-min"; base ^ "-wall-median";
                  base ^ "-wall-p95" ]
              else [])
        baseline.Bjson.cells
    in
    List.iter
      (fun (b : Bjson.cell) ->
        let kind = Bjson.kind_name b.kind in
        match lookup b.id with
        | None -> ()  (* unreachable: the shape gate already passed *)
        | Some n when n.Bjson.kind <> b.kind ->
          breach "BREACH %-10s %s: kind changed to %s" kind b.id
            (Bjson.kind_name n.Bjson.kind)
        | Some n -> (
          let bv = b.Bjson.value and nv = n.Bjson.value in
          match b.kind with
          | Bjson.Wall ->
            if not (List.mem b.id gated_wall_ids) then begin
              incr wall_info;
              if not (finite nv) then
                note "note: wall cell %s is non-finite (%s)" b.id
                  (Json.float_str nv)
            end
            else if
              strip_suffix ~suffix:median_suffix b.id <> None
            then begin
              (* One gate per trio, keyed off the median cell. *)
              let base = Option.get (strip_suffix ~suffix:median_suffix b.id) in
              let bmn, bmd, bp95 = Option.get (trio baseline.Bjson.cells base) in
              let nmn, nmd, np95 = Option.get (trio ncells base) in
              if
                not
                  (List.for_all finite [ bmn; bmd; bp95; nmn; nmd; np95 ])
              then
                breach "BREACH %-10s %s: non-finite value in repetition trio"
                  kind b.id
              else if bmd < floor_s && nmd < floor_s then begin
                incr wall_info;
                note
                  "note: wall trio %s under the %.0f ms noise floor \
                   (informational)"
                  base (floor_s *. 1e3)
              end
              else begin
                incr wall_gated;
                let tol_eff =
                  Float.max wall_tol
                    (2.0
                    *. Float.max
                         (spread ~mn:bmn ~md:bmd ~p95:bp95)
                         (spread ~mn:nmn ~md:nmd ~p95:np95))
                in
                if nmd > Float.max bmd floor_s *. (1.0 +. tol_eff) then
                  breach
                    "BREACH %-10s %s: median %s -> %s s (%+.0f%%, effective \
                     tolerance %.0f%%)"
                    kind b.id (Json.float_str bmd) (Json.float_str nmd)
                    (100.0 *. ((nmd /. Float.max bmd eps) -. 1.0))
                    (100.0 *. tol_eff)
              end
            end
          | Bjson.Time ->
            incr gated;
            if not (finite bv && finite nv) then
              breach "BREACH %-10s %s: non-finite value (%s -> %s)" kind b.id
                (Json.float_str bv) (Json.float_str nv)
            else if Float.abs bv <= eps && Float.abs nv <= eps then ()
            else begin
              let rel = Float.abs (nv -. bv) /. Float.max (Float.abs bv) eps in
              if rel > time_tol then
                breach
                  "BREACH %-10s %s: %s -> %s (%+.1f%%, tolerance %.0f%%)"
                  kind b.id (Json.float_str bv) (Json.float_str nv)
                  (100.0 *. rel) (100.0 *. time_tol)
            end
          | Bjson.Count | Bjson.Bool ->
            (* count and bool are deterministic under the virtual clock:
               any drift is a behavior change, not noise. *)
            incr gated;
            if not (finite bv && finite nv) then
              breach "BREACH %-10s %s: non-finite value (%s -> %s)" kind b.id
                (Json.float_str bv) (Json.float_str nv)
            else if nv <> bv then
              breach "BREACH %-10s %s: %s -> %s (must match exactly)" kind
                b.id (Json.float_str bv) (Json.float_str nv)))
      baseline.Bjson.cells;
    Ok
      { o_bench = baseline.Bjson.bench; o_gated = !gated;
        o_wall_gated = !wall_gated; o_wall_info = !wall_info;
        o_breaches = List.rev !breaches; o_notes = List.rev !notes }
    end
  end
