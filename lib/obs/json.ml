type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* Shortest of %.15g / %.16g / %.17g that round-trips; integers print
   bare so timestamps and counters stay readable. *)
let float_str f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_to b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (float_str f)
  | Str s -> escape_to b s
  | List vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b v)
      vs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_to b k;
        Buffer.add_char b ':';
        to_buffer b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* Recursive-descent parser over the input string. *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           if !pos + 4 > n then fail "truncated \\u escape";
           let code =
             try int_of_string ("0x" ^ String.sub s !pos 4)
             with _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           (* Encode the BMP code point as UTF-8; our own writer only
              emits \u for control characters, so this covers reads of
              traces we wrote plus reasonable foreign input. *)
           if code < 0x80 then Buffer.add_char b (Char.chr code)
           else if code < 0x800 then begin
             Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
           else begin
             Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
             Buffer.add_char b
               (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
             Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
           end
         | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elements [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let get_num = function Num f -> Some f | _ -> None

let get_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_str = function Str s -> Some s | _ -> None
let get_bool = function Bool b -> Some b | _ -> None
let get_list = function List vs -> Some vs | _ -> None
