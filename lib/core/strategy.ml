open Adp_relation
open Adp_exec
open Adp_optimizer

type t =
  | Static
  | Corrective of Corrective.config
  | Plan_partitioned of { break_after : int }
  | Competitive of { candidates : int; explore_budget : float }
  | Eddying

let corrective_default = Corrective (Corrective.default_config)

type outcome = {
  result : Relation.t;
  report : Report.run;
  corrective_stats : Corrective.stats option;
}

let us_to_s v = v /. 1e6

let run ?(preagg = Optimizer.No_preagg) ?(costs = Cost_model.default)
    ?(label = "run") ?initial_plan ?retry ?trace ?metrics ?profile ?calibrate
    ?wall strategy query catalog ~sources =
  (* Wall timing goes through the one sanctioned wall-reading module;
     no per-site lint waiver needed. *)
  let wall0 = Adp_obs.Wallclock.monotonic_s () in
  (* The wall shadow attributes by profile span, so wall capture without
     an explicit profiler gets a private one (attaching a profiler is
     itself perturbation-free, see test_obs). *)
  let profile =
    match profile, wall with
    | None, Some _ -> Some (Adp_obs.Profile.create ())
    | _ -> profile
  in
  (* Static analysis of the query before any strategy runs: catches what
     used to die as [Eddy: unknown relation] or an unqualified column deep
     inside execution, reporting every problem at once. *)
  Adp_analysis.Diagnostic.raise_if_errors ~where:"strategy"
    (Adp_analysis.Analyzer.check_query
       ~lookup:(fun r ->
         try Some (Catalog.schema_of catalog r) with Not_found -> None)
       query);
  let outcome =
    match strategy with
    | Static | Corrective _ ->
      let config =
        match strategy with
        | Corrective c ->
          { c with preagg; costs; initial_plan;
            retry = Option.value ~default:c.retry retry;
            trace = Option.value ~default:c.Corrective.trace trace;
            metrics =
              (match metrics with Some _ -> metrics | None -> c.metrics);
            profile =
              (match profile with Some _ -> profile | None -> c.profile);
            calibrate =
              (match calibrate with
               | Some _ -> calibrate
               | None -> c.calibrate);
            wall = (match wall with Some _ -> wall | None -> c.wall) }
        | Static | Plan_partitioned _ | Competitive _ | Eddying ->
          (* Static = corrective that never polls and never switches. *)
          { Corrective.default_config with
            poll_interval = infinity; max_phases = 1; preagg; costs;
            initial_plan;
            retry =
              Option.value ~default:Corrective.default_config.retry retry;
            trace = Option.value ~default:Adp_obs.Trace.null trace;
            metrics; profile; calibrate; wall }
      in
      let result, stats = Corrective.run ~config query catalog (sources ()) in
      let report =
        { Report.label; time_s = us_to_s stats.total_time;
          cpu_s = us_to_s stats.cpu; idle_s = us_to_s stats.idle;
          wall_s = 0.0; phases = stats.phases;
          stitch_time_s = us_to_s stats.stitch.Stitchup.time;
          reused = stats.reused_tuples; discarded = stats.discarded_tuples;
          result_card = stats.result_card; coverage = stats.coverage;
          retries = stats.retries; failovers = stats.failovers;
          paged_out = stats.paged_out; checkpoints = stats.checkpoints;
          degraded_reason = stats.degraded_reason }
      in
      { result; report; corrective_stats = Some stats }
    | Plan_partitioned { break_after } ->
      let result, stats =
        Plan_partition.run ~preagg ~costs ~break_after ?initial_plan query
          catalog (sources ())
      in
      let report =
        { Report.label; time_s = us_to_s stats.total_time;
          cpu_s = us_to_s stats.cpu; idle_s = us_to_s stats.idle;
          wall_s = 0.0; phases = stats.stages; stitch_time_s = 0.0;
          reused = 0; discarded = 0; result_card = stats.result_card;
          coverage = 1.0; retries = 0; failovers = 0; paged_out = 0;
          checkpoints = 0; degraded_reason = None }
      in
      { result; report; corrective_stats = None }
    | Competitive { candidates; explore_budget } ->
      let result, stats =
        Competition.run ~costs ~candidates ~explore_budget query catalog
          ~sources
      in
      let report =
        { Report.label; time_s = us_to_s stats.total_time;
          cpu_s = us_to_s stats.cpu; idle_s = us_to_s stats.idle;
          wall_s = 0.0; phases = 1; stitch_time_s = 0.0; reused = 0;
          discarded = 0; result_card = stats.result_card; coverage = 1.0;
          retries = 0; failovers = 0; paged_out = 0; checkpoints = 0;
          degraded_reason = None }
      in
      { result; report; corrective_stats = None }
    | Eddying ->
      let ctx = Ctx.create ~costs ?trace ?metrics ?wall () in
      let eddy =
        Eddy.create ctx
          ~sources:
            (List.map
               (fun (s : Logical.source) ->
                 s.Logical.name, Catalog.schema_of catalog s.Logical.name)
               query.Logical.sources)
          ~filters:
            (List.map
               (fun (s : Logical.source) -> s.Logical.name, s.Logical.filter)
               query.Logical.sources)
          ~preds:query.Logical.join_preds
      in
      let sink = Sink.create ctx query ~canonical:(Eddy.schema eddy) in
      let consume src tuple =
        let outs = Eddy.insert eddy ~source:(Source.name src) tuple in
        Sink.feed sink ~from:(Eddy.schema eddy) outs
      in
      let srcs = sources () in
      (match Driver.run ctx ~sources:srcs ~consume ?retry () with
       | Driver.Exhausted -> ()
       | Driver.Switched | Driver.Stopped -> assert false);
      let result = Sink.result sink in
      Ctx.sync_metrics ctx;
      let coverage =
        let delivered, total =
          List.fold_left
            (fun (d, t) src ->
              d + Source.consumed src, t + Source.cardinality src)
            (0, 0) srcs
        in
        if total = 0 then 1.0 else float_of_int delivered /. float_of_int total
      in
      let report =
        { Report.label; time_s = us_to_s (Ctx.now ctx);
          cpu_s = us_to_s (Clock.cpu ctx.Ctx.clock);
          idle_s = us_to_s (Clock.idle ctx.Ctx.clock); wall_s = 0.0;
          phases = 1; stitch_time_s = 0.0; reused = 0; discarded = 0;
          result_card = Relation.cardinality result; coverage;
          retries = Adp_obs.Metrics.count ctx.Ctx.retries;
          failovers = Adp_obs.Metrics.count ctx.Ctx.failovers;
          paged_out = 0; checkpoints = 0; degraded_reason = None }
      in
      { result; report; corrective_stats = None }
  in
  let wall_s = Adp_obs.Wallclock.monotonic_s () -. wall0 in
  { outcome with report = { outcome.report with Report.wall_s } }

(* ------------------------------------------------------------------ *)
(* Naive reference evaluator (test oracle)                             *)
(* ------------------------------------------------------------------ *)

let reference (query : Logical.query) catalog ~sources =
  let srcs = sources () in
  let relation_of name =
    let src = List.find (fun s -> Source.name s = name) srcs in
    let filter =
      let lsrc = List.find (fun s -> s.Logical.name = name) query.sources in
      Predicate.compile lsrc.Logical.filter (Source.schema src)
    in
    let rel = Relation.create (Source.schema src) in
    let rec drain () =
      match Source.next src with
      | None -> ()
      | Some (tuple, _) ->
        if filter tuple then Relation.append rel tuple;
        drain ()
    in
    drain ();
    rel
  in
  ignore catalog;
  (* Join predicates are applied as soon as both columns are in scope, and
     checked per tuple pair while the nested loop runs — never materialize
     an unfiltered cross product. *)
  let applied = Hashtbl.create 16 in
  let ready_checks schema =
    List.filter_map
      (fun (a, b) ->
        if (not (Hashtbl.mem applied (a, b)))
           && Schema.mem schema a && Schema.mem schema b
        then begin
          Hashtbl.replace applied (a, b) ();
          let ia = Schema.index schema a and ib = Schema.index schema b in
          Some (fun (t : Tuple.t) -> Value.eq_sql t.(ia) t.(ib))
        end
        else None)
      query.join_preds
  in
  let joined =
    match query.sources with
    | [] -> invalid_arg "Strategy.reference: no sources"
    | first :: rest ->
      List.fold_left
        (fun acc (s : Logical.source) ->
          let r = relation_of s.name in
          let schema = Schema.concat (Relation.schema acc) (Relation.schema r) in
          let checks = ready_checks schema in
          let out = Relation.create schema in
          Relation.iter
            (fun t1 ->
              Relation.iter
                (fun t2 ->
                  let t = Tuple.concat t1 t2 in
                  if List.for_all (fun chk -> chk t) checks then
                    Relation.append out t)
                r)
            acc;
          out)
        (relation_of first.Logical.name)
        rest
  in
  if query.aggs = [] && query.group_cols = [] then begin
    match query.projection with
    | [] -> joined
    | cols ->
      let schema = Relation.schema joined in
      let idx = Array.of_list (List.map (Schema.index schema) cols) in
      Relation.of_list (Schema.project schema cols)
        (List.map (fun t -> Tuple.project t idx) (Relation.to_list joined))
  end
  else begin
    let ctx = Ctx.create () in
    let agg =
      Agg.create ctx ~group_cols:query.group_cols ~aggs:query.aggs
        ~input:Agg.Raw (Relation.schema joined)
    in
    Relation.iter (Agg.add agg) joined;
    Agg.result agg
  end
