open Adp_relation
open Adp_exec
open Adp_optimizer

type stats = {
  stages : int;
  materialized_card : int;
  total_time : float;
  cpu : float;
  idle : float;
  result_card : int;
}

(* One statically optimized execution of [query] over [sources], charging
   the shared context.  [spec] overrides the optimizer's plan choice. *)
let run_stage ?(preagg = Optimizer.No_preagg) ?spec ~costs ctx query catalog
    sources =
  let spec =
    match spec with
    | Some s -> s
    | None ->
      let sels = Adp_stats.Selectivity.create () in
      (Optimizer.optimize ~preagg ~costs query catalog sels).Optimizer.spec
  in
  let plan =
    (* Single-stage executions never stitch: skip intermediate recording. *)
    Plan.instantiate ~record_outputs:false ctx spec
      ~schema_of:(Catalog.schema_of catalog)
  in
  let sink = Sink.create ctx query ~canonical:(Plan.schema plan) in
  let consume src tuple =
    let outs = Plan.push plan ~source:(Source.name src) tuple in
    Sink.feed sink ~from:(Plan.schema plan) outs
  in
  (match Driver.run ctx ~sources ~consume () with
   | Driver.Exhausted -> ()
   | Driver.Switched | Driver.Stopped -> assert false);
  Sink.feed sink ~from:(Plan.schema plan) (Plan.flush plan);
  Sink.result sink

let bare_of col =
  match String.rindex_opt col '.' with
  | None -> col
  | Some i -> String.sub col (i + 1) (String.length col - i - 1)

(* Greedy choice of the stage-1 relation set: start from the smallest
   estimated leaf and repeatedly add the connected relation minimizing the
   estimated intermediate size. *)
let stage1_set query catalog ~size =
  let est = Cardinality.create query catalog (Adp_stats.Selectivity.create ()) in
  let names = Logical.source_names query in
  let start =
    List.fold_left
      (fun best r ->
        match best with
        | None -> Some r
        | Some b ->
          if Cardinality.leaf_cardinality est r
             < Cardinality.leaf_cardinality est b
          then Some r
          else best)
      None names
  in
  let rec grow set =
    if List.length set >= size then set
    else begin
      let candidates =
        List.filter
          (fun r ->
            (not (List.mem r set))
            && Logical.preds_between query ~inside:set ~outside:[ r ] <> [])
          names
      in
      match candidates with
      | [] -> set
      | first :: _ ->
        let best =
          List.fold_left
            (fun b r ->
              if Cardinality.set_cardinality est (r :: set)
                 < Cardinality.set_cardinality est (b :: set)
              then r
              else b)
            first candidates
        in
        grow (best :: set)
    end
  in
  match start with None -> [] | Some s -> grow [ s ]

(* When the first stage comes from a given (possibly poor) plan, cut that
   plan after [size] relations by descending into its larger subtree. *)
let rec descend_to_stage1 spec ~size =
  if List.length (Plan.relations spec) <= size then spec
  else
    match spec with
    | Plan.Join j ->
      let bigger =
        if List.length (Plan.relations j.left)
           >= List.length (Plan.relations j.right)
        then j.left
        else j.right
      in
      descend_to_stage1 bigger ~size
    | Plan.Scan _ | Plan.Preagg _ -> spec

let run ?(preagg = Optimizer.No_preagg) ?(costs = Cost_model.default)
    ?(break_after = 3) ?initial_plan (query : Logical.query) catalog sources =
  let ctx = Ctx.create ~costs () in
  let n = List.length query.sources in
  let finish stages materialized result =
    ( result,
      { stages; materialized_card = materialized;
        total_time = Ctx.now ctx; cpu = Clock.cpu ctx.Ctx.clock;
        idle = Clock.idle ctx.Ctx.clock;
        result_card = Relation.cardinality result } )
  in
  if n <= break_after + 1 then
    finish 1 0
      (run_stage ~preagg ?spec:initial_plan ~costs ctx query catalog sources)
  else begin
    let stage1_spec =
      Option.map (descend_to_stage1 ~size:(break_after + 1)) initial_plan
    in
    let set =
      match stage1_spec with
      | Some spec -> Plan.relations spec
      | None -> stage1_set query catalog ~size:(break_after + 1)
    in
    let in_set r = List.mem r set in
    let stage1_query =
      { Logical.sources = List.filter (fun s -> in_set s.Logical.name) query.sources;
        join_preds =
          List.filter
            (fun (a, b) ->
              in_set (Logical.relation_of_column a)
              && in_set (Logical.relation_of_column b))
            query.join_preds;
        group_cols = []; aggs = []; projection = [] }
    in
    let stage1_sources =
      List.filter (fun s -> in_set (Source.name s)) sources
    in
    let m =
      run_stage ?spec:stage1_spec ~costs ctx stage1_query catalog
        stage1_sources
    in
    (* Rebase the remainder of the query on the materialized result. *)
    let rename c =
      if in_set (Logical.relation_of_column c) then "_m1." ^ bare_of c else c
    in
    let m_schema = Schema.rename_qualifier (Relation.schema m) "_m1" in
    let m_rel = Relation.of_list m_schema (Relation.to_list m) in
    let stage2_query =
      { Logical.sources =
          { Logical.name = "_m1"; filter = Predicate.tt }
          :: List.filter (fun s -> not (in_set s.Logical.name)) query.sources;
        join_preds =
          List.filter_map
            (fun (a, b) ->
              let ia = in_set (Logical.relation_of_column a)
              and ib = in_set (Logical.relation_of_column b) in
              if ia && ib then None else Some (rename a, rename b))
            query.join_preds;
        group_cols = List.map rename query.group_cols;
        aggs =
          List.map
            (fun (a : Aggregate.spec) ->
              { a with expr = Rewrite.expr rename a.expr })
            query.aggs;
        projection = List.map rename query.projection }
    in
    let catalog2 = Catalog.create () in
    List.iter
      (fun s ->
        if not (in_set s.Logical.name) then
          Catalog.add catalog2 s.Logical.name (Catalog.info catalog s.Logical.name))
      query.sources;
    Catalog.add catalog2 "_m1"
      { Catalog.schema = m_schema;
        cardinality = Some (float_of_int (Relation.cardinality m));
        key = None };
    let stage2_sources =
      Source.create ~name:"_m1" m_rel Source.Local
      :: List.filter (fun s -> not (in_set (Source.name s))) sources
    in
    let result = run_stage ~preagg ~costs ctx stage2_query catalog2 stage2_sources in
    finish 2 (Relation.cardinality m) result
  end
