open Adp_relation
open Adp_exec
open Adp_optimizer

(** Corrective query processing (§4).

    The query starts on the optimizer's initial plan.  A re-optimizer polls
    execution on a fixed virtual-time interval (the paper uses an extreme 1
    second): it folds the monitor's observed selectivities into the
    estimator, re-optimizes, and — when a plan substantially better than
    the cost-to-go of the running plan appears — suspends the current
    phase mid-pipeline, brings it to a consistent state (pre-aggregation
    windows flushed), and routes the remaining source data into the new
    plan.  After the sources are exhausted, the stitch-up phase combines
    the cross-phase regions, and the shared sink finalizes the answer. *)

type config = {
  poll_interval : float;  (** virtual µs between re-optimizer polls *)
  switch_threshold : float;
      (** switch when [best < threshold × cost-to-go(current)] *)
  max_phases : int;  (** stop switching after this many phases *)
  min_leaf_seen : int;
      (** ignore selectivity observations until every participating leaf
          has produced this many tuples *)
  preagg : Optimizer.preagg_strategy;
  costs : Cost_model.t;
  reuse_intermediates : bool;
      (** when false, stitch-up ignores the registry and recomputes all
          uniform combinations (ablation of §3.4's reuse) *)
  initial_plan : Adp_exec.Plan.spec option;
      (** start from this plan instead of the optimizer's choice (used by
          experiments that reproduce a specific Phase 0) *)
  memory_budget : int option;
      (** cap (in tuples) on resident join state structures; beyond it,
          structures are paged out most-complex-first (§3.4.2) and their
          probes pay the I/O penalty *)
  min_remaining_fraction : float;
      (** §4.3: the optimizer "factors in the amount of computation that
          has already been performed" — a switch is only worthwhile while
          enough input remains for the better plan to pay for the
          stitch-up; below this remaining fraction of the expected total
          input, the running plan is kept (default 0.25) *)
  use_histograms : bool;
      (** §4.5 extension (off by default, as in Tukwila): attach
          incremental histograms + order detectors to every source join
          attribute and feed predicted two-way join selectivities to the
          re-optimizer — predictions cover joins the current plan is not
          executing, at the cost of per-tuple maintenance *)
  retry : Retry.policy;
      (** timeout/retry/backoff policy applied to every source; a
          permanent source failure triggers an immediate re-optimizer
          poll (a dead build-side input changes the best remaining
          plan) *)
  deadline : float option;
      (** virtual-µs budget for the whole query.  The re-optimizer poll
          compares the running plan's cost-to-go against the remaining
          budget; once the deadline cannot be met (or has passed), the
          engine {e degrades deliberately}: the phase closes early,
          stitch-up runs over what arrived, and the partial answer is
          reported with [degraded_reason = Some "deadline"] and the
          coverage machinery quantifying what was delivered *)
  memory_ceiling : int option;
      (** hard cap (in tuples) on the query's total resident footprint —
          join build sides {e plus} pre-aggregation windows (unlike
          [memory_budget], which counts only pageable join state).  When
          the footprint exceeds the ceiling even after paging, the query
          degrades exactly like a missed deadline, with
          [degraded_reason = Some "memory"] *)
  breaker : Breaker.policy option;
      (** when set, each source gets a circuit breaker (salted by source
          index).  Repeated connection failures within the policy window
          trip the breaker open: retries stop burning the retry budget,
          arrival events are deferred to the next seeded probe time, and
          the re-optimizer treats the source as stalled (its remaining
          input is costed at zero through a transient statistics overlay,
          biasing plan choice toward the healthy sources and mirrors).
          Live data or a successful probe closes the breaker. *)
  checkpoint : Adp_recovery.Checkpoint.policy option;
      (** when set, write consistent snapshots of the execution (phase
          ledger, operator state, stream positions, clock, observed
          statistics) to the policy's directory at the policy's trigger
          points *)
  resume_from : string option;
      (** recovery: path to a checkpoint file (or a directory, meaning
          its latest checkpoint).  The run closes the interrupted phase at
          its recorded positions and continues the residual input in a
          new, freshly re-optimized phase; stitch-up joins the cross-phase
          combinations, so the answer equals an uninterrupted run's *)
  crash : Adp_recovery.Crash.point list;
      (** engine-level fault injection: raise
          {!Adp_recovery.Crash.Crashed} at the given execution points
          (after any due checkpoint has been written) *)
  trace : Adp_obs.Trace.t;
      (** trace sink; {!Adp_obs.Trace.null} (the default) disables all
          event emission at zero cost and zero clock perturbation *)
  metrics : Adp_obs.Metrics.t option;
      (** record counters into this registry instead of a fresh private
          one (so a caller can dump them after the run) *)
  profile : Adp_obs.Profile.t option;
      (** per-node span profiler: virtual time, tuple and hash counts,
          memory high-water, attributed at the exact clock-charge sites —
          a profiled run is bit-identical to an unprofiled one *)
  calibrate : Adp_obs.Calibrate.t option;
      (** calibration ledger: per-node estimated vs. observed
          cardinality at every re-optimizer poll, phase close and
          stitch-up, plus every switch decision (taken or declined) with
          its blame node *)
  wall : Adp_obs.Wallclock.t option;
      (** wall-clock/GC shadow recorder: hardware self-time, allocation
          and sampling-profiler capture at the same charge sites the
          profiler uses.  Read-only sidecar — a wall-captured run is
          bit-identical to a bare one *)
  stats_seed : Adp_stats.Selectivity.dump option;
      (** cross-query warm start: seed the selectivity monitor with
          statistics learned by earlier executions (a server's shared
          store), so the initial plan is optimized with their evidence.
          Signatures carry the per-source filters and join predicates, so
          only logically equivalent subexpressions match.  A checkpoint's
          statistics (on resume) override seeded entries. *)
}

val default_config : config
(** 1 virtual second polls, threshold 0.7, at most 8 phases, 100-tuple
    observation guard, no pre-aggregation, reuse enabled. *)

type phase_info = {
  id : int;
  plan_desc : string;
  emitted : int;  (** result tuples this phase emitted *)
  read : int;  (** source tuples this phase consumed *)
}

type stats = {
  phases : int;
  stitch : Stitchup.stats;
  total_time : float;  (** virtual µs, including stitch-up *)
  cpu : float;
  idle : float;
  result_card : int;
  reused_tuples : int;  (** registry tuples reused by stitch-up *)
  discarded_tuples : int;  (** registry tuples never reused *)
  phase_log : phase_info list;
  coverage : float;
      (** fraction of source tuples delivered; < 1.0 only when a source
          was permanently lost (all mirrors exhausted) *)
  retries : int;  (** reconnect attempts issued *)
  failovers : int;  (** mirror failovers performed *)
  sources_failed : int;  (** sources permanently lost *)
  checkpoints : int;  (** checkpoint files written by this run *)
  paged_out : int;
      (** state structures paged out by memory pressure over the run *)
  resumed_phases : int;
      (** phases restored from a checkpoint (0 for a fresh run) *)
  degraded_reason : string option;
      (** [Some "deadline"] / [Some "memory"] when the run finished early
          under resource governance; [None] for a complete run (coverage
          < 1.0 with [None] means fault exhaustion, not governance) *)
  breaker_trips : int;  (** circuit-breaker closed→open transitions *)
  learned : Adp_stats.Selectivity.dump;
      (** everything the monitor observed over the run (seed included),
          ready to be absorbed into a server's shared store *)
}

(** Execute the query under corrective query processing.  Sources are
    consumed sequentially and never rewound. *)
val run :
  ?config:config ->
  Logical.query ->
  Catalog.t ->
  Source.t list ->
  Relation.t * stats
